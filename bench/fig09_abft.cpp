// Reproduces paper Fig. 9: overhead and correctness of the ABFT schemes under
// BSR (r = 0.25) with overclocking-induced SDCs.
//
// The paper repeats a 30720^2 LU decomposition 100,000 times on real hardware;
// we run reduced-size *numeric* decompositions on the numeric_demo platform
// (paper-scale op durations, real math, real injection, real checksums) for a
// configurable number of trials per scheme. Overheads come from the timing
// model; correctness from the actual residuals.
//
// Both grids run through bsr::Sweep. The overhead sweep's cache removes the
// seed bench's duplicated timing runs (the no-FT denominator was executed
// once standalone and again for its own row, and "Single + recovery" repeated
// "Single" — recovery does not change a timing-only run), and the trials
// grid parallelizes the real numeric work across the thread pool.
//
// Campaign mode (--campaign, beyond the paper): instead of numeric trials,
// run a statistical bsr::FaultCampaign (bsr/faults.hpp) over the same five
// schemes in timing-only mode — seeded fault processes against one shared
// no-fault baseline per scheme. Same world (platform, exposure compression,
// BSR r = 0.25), but scalable to any --n and any trial count, reporting
// coverage / overhead / tail latency instead of residual correctness. The
// scheme rows map recovery onto the fault block's rollback knob.
#include <cstdio>

#include "bsr/bsr.hpp"

using namespace bsr;

namespace {

/// The five Fig. 9 protection schemes, shared by both modes.
struct Scheme {
  const char* policy;
  bool recover;
  const char* name;
};
constexpr Scheme kSchemes[] = {
    {"none", false, "No FT"},
    {"single", false, "Single-ABFT"},
    {"single", true, "Single + recovery"},
    {"full", false, "Full-ABFT"},
    {"adaptive", false, "Adaptive ABFT"},
};

/// Campaign mode: N seeded statistical fault realizations per scheme in
/// timing-only mode, emitted through the requested sink.
int run_campaign(const RunConfig& numeric_base, const Cli& cli) {
  const std::string format = cli.get("format");
  require_result_sink_or_exit(format);
  const int trials = static_cast<int>(positive_int_or_exit(cli, "trials"));

  RunConfig base = numeric_base;
  base.mode = ExecutionMode::TimingOnly;
  // An explicit --faults off is honored (a trivial campaign); the
  // registered default for this driver is the statistical preset.
  apply_fault_flags_or_exit(cli, base);
  const std::string preset = cli.get("faults");

  Axis scheme_axis{"scheme", {}};
  for (const Scheme& s : kSchemes) {
    const std::string policy = s.policy;
    const bool recover = s.recover;
    scheme_axis.points.push_back({s.name, [policy, recover](RunConfig& c) {
                                    c.abft_policy = policy;
                                    // Recovery is a scheme property in
                                    // Fig. 9; here it is the rollback knob
                                    // of the fault block.
                                    c.faults.rollback = recover;
                                  }});
  }
  CampaignResult result;
  try {
    result = FaultCampaign(base, trials).over(scheme_axis).run();
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  if (format == "table") {
    std::printf(
        "== Fig. 9 campaign mode: statistical fault injection, LU "
        "timing-only ==\n"
        "   n=%lld b=%lld trials=%d/scheme preset=%s rate_multiplier=%.0f "
        "(platform\n   exposure compression), BSR r=0.25 on the %s "
        "platform\n\n",
        static_cast<long long>(base.n), static_cast<long long>(base.block()),
        trials, preset.c_str(), base.error_rate_multiplier,
        base.platform.c_str());
  }
  auto sink = make_result_sink(format, stdout_stream());
  emit(result, *sink);
  if (format == "table") {
    std::printf("campaign: %zu unique runs for %zu requested\n",
                result.unique_runs, result.requested_runs);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  cli.arg_int("n", 768, "matrix order")
      .arg_int("b", 32, "block (panel) size")
      .arg_int("trials", 40, "numeric (or campaign) trials per scheme")
      .arg_double("rate_multiplier", 150.0,
                  "SDC exposure compression factor (see DESIGN.md)")
      .arg_flag("campaign",
                "run the statistical fault campaign (timing-only, "
                "bsr/faults.hpp) over the schemes instead of numeric trials")
      .arg_string("format", "table",
                  "campaign-mode output: table, csv, or json");
  add_fault_flags(cli, "poisson");  // campaign-mode only, guarded below
  add_list_flag(cli);
  add_version_flag(cli);
  if (!cli.parse_or_exit(argc, argv)) return 0;
  if (handled_list_flag(cli)) return 0;
  if (handled_version_flag(cli, "bench_fig09_abft")) return 0;
  if (!cli.get_bool("campaign") && !cli.get("faults", "").empty()) {
    // The statistical preset only drives campaign mode; numeric mode
    // injects real faults. Fail loudly instead of silently ignoring it.
    std::fprintf(stderr,
                 "error: --faults selects the campaign-mode fault preset; "
                 "combine it with --campaign\n");
    return 2;
  }
  const std::int64_t n = cli.get_int("n");
  const std::int64_t b = cli.get_int("b");
  const int trials = static_cast<int>(positive_int_or_exit(cli, "trials"));
  const double mult = cli.get_double("rate_multiplier");

  RunConfig base;
  base.factorization = Factorization::LU;
  base.n = n;
  base.b = b;
  base.strategy = "bsr";
  base.reclamation_ratio = 0.25;
  base.fc_desired = 0.999;
  base.error_rate_multiplier = mult;
  base.platform = "numeric_demo";

  if (cli.get_bool("campaign")) return run_campaign(base, cli);

  std::printf(
      "== Fig. 9: ABFT overhead and correctness, LU numeric runs ==\n"
      "   n=%lld b=%lld trials=%d/scheme rate_multiplier=%.0f (exposure\n"
      "   compression, see DESIGN.md), BSR r=0.25 on the numeric_demo platform\n\n",
      static_cast<long long>(n), static_cast<long long>(b), trials, mult);

  Axis scheme_axis{"scheme", {}};
  for (const auto& s : kSchemes) {
    const std::string policy = s.policy;
    const bool recover = s.recover;
    scheme_axis.points.push_back({s.name, [policy, recover](RunConfig& c) {
                                    c.abft_policy = policy;
                                    c.recover_uncorrectable = recover;
                                  }});
  }

  // Timing-only overhead grid: 5 scheme rows, 4 unique runs (the cache
  // collapses No FT onto the denominator and the two Single rows together).
  RunConfig timing = base;
  timing.mode = ExecutionMode::TimingOnly;
  Sweep overhead_sweep(timing);
  const SweepResult overhead = overhead_sweep.over(scheme_axis).run();
  const double t_none = overhead.at({{"scheme", "No FT"}}).report->seconds();

  // Numeric correctness grid: trials per scheme, per-cell derived seeds.
  RunConfig numeric = base;
  numeric.mode = ExecutionMode::Numeric;
  Sweep numeric_sweep(numeric);
  const SweepResult runs =
      numeric_sweep.over(scheme_axis).over(trial_axis(trials, 1000)).run();

  TablePrinter t({"Scheme", "Overhead", "Correct runs (95% CI)", "Injected",
                  "Corrected", "Uncorrectable", "Recoveries"});
  for (const auto& scheme : kSchemes) {
    int correct = 0;
    long injected = 0;
    long corrected = 0;
    long uncorrectable = 0;
    long recoveries = 0;
    for (const SweepRow* row : runs.where("scheme", scheme.name)) {
      const RunReport& r = *row->report;
      if (r.numeric_correct) ++correct;
      injected += r.abft.errors_injected_total();
      corrected += r.abft.corrected_0d + r.abft.corrected_1d;
      uncorrectable += r.abft.uncorrectable;
      recoveries += r.abft.recoveries;
    }
    const double oh =
        overhead.at({{"scheme", scheme.name}}).report->seconds() / t_none - 1.0;
    const stats::Proportion ci = stats::wilson_interval(correct, trials);
    t.add_row({scheme.name, TablePrinter::pct(oh),
               TablePrinter::pct(ci.estimate) + " [" +
                   TablePrinter::pct(ci.lo, 0) + ", " +
                   TablePrinter::pct(ci.hi, 0) + "]",
               std::to_string(injected), std::to_string(corrected),
               std::to_string(uncorrectable), std::to_string(recoveries)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "(paper, 100k trials at n=30720: No FT 23.28%% correct / 0%% overhead,\n"
      " Single 76.11%% / 8%%, Full 100%% / 12%%, Adaptive 100%% / 4%%)\n"
      "sweeps: timing %zu unique/%zu requested, numeric %zu unique/%zu "
      "requested\n",
      overhead.unique_runs, overhead.requested_runs, runs.unique_runs,
      runs.requested_runs);
  return 0;
}
