// Reproduces paper Fig. 9: overhead and correctness of the ABFT schemes under
// BSR (r = 0.25) with overclocking-induced SDCs.
//
// The paper repeats a 30720^2 LU decomposition 100,000 times on real hardware;
// we run reduced-size *numeric* decompositions on the numeric_demo platform
// (paper-scale op durations, real math, real injection, real checksums) for a
// configurable number of trials per scheme. Overheads come from the timing
// model; correctness from the actual residuals.
#include <cstdio>

#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table_printer.hpp"
#include "core/decomposer.hpp"

using namespace bsr;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const std::int64_t n = cli.get_int("n", 768);
  const std::int64_t b = cli.get_int("b", 32);
  const int trials = static_cast<int>(cli.get_int("trials", 40));
  const double mult = cli.get_double("rate_multiplier", 150.0);

  std::printf(
      "== Fig. 9: ABFT overhead and correctness, LU numeric runs ==\n"
      "   n=%lld b=%lld trials=%d/scheme rate_multiplier=%.0f (exposure\n"
      "   compression, see DESIGN.md), BSR r=0.25 on the numeric_demo platform\n\n",
      static_cast<long long>(n), static_cast<long long>(b), trials, mult);

  const core::Decomposer dec(hw::PlatformProfile::numeric_demo());
  core::RunOptions base;
  base.factorization = predict::Factorization::LU;
  base.n = n;
  base.b = b;
  base.strategy = core::StrategyKind::BSR;
  base.reclamation_ratio = 0.25;
  base.fc_desired = 0.999;
  base.mode = core::ExecutionMode::Numeric;
  base.error_rate_multiplier = mult;

  // Baseline wall time without any protection, for the overhead column.
  core::RunOptions timing = base;
  timing.mode = core::ExecutionMode::TimingOnly;
  const double t_none =
      dec.run(timing, core::ExtendedOptions{core::AbftPolicy::ForceNone})
          .seconds();

  TablePrinter t({"Scheme", "Overhead", "Correct runs (95% CI)", "Injected",
                  "Corrected", "Uncorrectable", "Recoveries"});
  const struct {
    core::AbftPolicy policy;
    bool recover;
    const char* name;
  } schemes[] = {
      {core::AbftPolicy::ForceNone, false, "No FT"},
      {core::AbftPolicy::ForceSingle, false, "Single-ABFT"},
      {core::AbftPolicy::ForceSingle, true, "Single + recovery"},
      {core::AbftPolicy::ForceFull, false, "Full-ABFT"},
      {core::AbftPolicy::Adaptive, false, "Adaptive ABFT"},
  };
  for (const auto& scheme : schemes) {
    int correct = 0;
    long injected = 0;
    long corrected = 0;
    long uncorrectable = 0;
    long recoveries = 0;
    for (int trial = 0; trial < trials; ++trial) {
      core::RunOptions o = base;
      o.seed = 1000 + static_cast<std::uint64_t>(trial);
      o.recover_uncorrectable = scheme.recover;
      const core::RunReport r =
          dec.run(o, core::ExtendedOptions{scheme.policy});
      if (r.numeric_correct) ++correct;
      injected += r.abft.errors_injected_total();
      corrected += r.abft.corrected_0d + r.abft.corrected_1d;
      uncorrectable += r.abft.uncorrectable;
      recoveries += r.abft.recoveries;
    }
    const double overhead =
        dec.run(timing, core::ExtendedOptions{scheme.policy}).seconds() /
            t_none -
        1.0;
    const stats::Proportion ci = stats::wilson_interval(correct, trials);
    t.add_row({scheme.name, TablePrinter::pct(overhead),
               TablePrinter::pct(ci.estimate) + " [" +
                   TablePrinter::pct(ci.lo, 0) + ", " +
                   TablePrinter::pct(ci.hi, 0) + "]",
               std::to_string(injected), std::to_string(corrected),
               std::to_string(uncorrectable), std::to_string(recoveries)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "(paper, 100k trials at n=30720: No FT 23.28%% correct / 0%% overhead,\n"
      " Single 76.11%% / 8%%, Full 100%% / 12%%, Adaptive 100%% / 4%%)\n");
  return 0;
}
