// Reproduces paper Table 2: between-iteration complexity ratios, comparing
// the paper's printed closed forms against the exact flop-count ratios the
// predictor uses.
#include <cstdio>

#include "bsr/bsr.hpp"
#include "predict/complexity_ratios.hpp"

using namespace bsr;
using predict::OpKind;
using predict::Table2Column;

int main(int argc, char** argv) {
  Cli cli;
  cli.arg_int("n", 30720, "matrix order")
      .arg_int("b", 512, "block (panel) size")
      .arg_int("k", 10, "iteration whose ratio to the next is printed");
  add_version_flag(cli);
  if (!cli.parse_or_exit(argc, argv)) return 0;
  if (handled_version_flag(cli, "bench_table2_ratios")) return 0;
  const std::int64_t n = cli.get_int("n");
  const std::int64_t b = cli.get_int("b");
  const int k = static_cast<int>(cli.get_int("k"));

  std::printf("== Table 2: complexity ratios iteration %d -> %d (n=%lld, b=%lld) ==\n\n",
              k, k + 1, static_cast<long long>(n), static_cast<long long>(b));
  TablePrinter t({"Operation", "paper formula", "exact flop ratio", "delta"});
  const struct {
    Factorization fact;
    OpKind op;
    const char* name;
  } rows[] = {
      {Factorization::Cholesky, OpKind::PD, "PD-Cho."},
      {Factorization::Cholesky, OpKind::TMU, "TMU-Cho."},
      {Factorization::LU, OpKind::PD, "PD-LU"},
      {Factorization::LU, OpKind::PU, "PU-LU"},
      {Factorization::LU, OpKind::TMU, "TMU-LU"},
      {Factorization::QR, OpKind::PD, "PD-QR"},
      {Factorization::QR, OpKind::TMU, "TMU-QR"},
  };
  for (const auto& row : rows) {
    const predict::WorkloadModel wl{row.fact, n, b, 8};
    const auto paper = predict::paper_table2_ratio(
        row.fact, row.op, Table2Column::ComputationAndChecksumUpdate, k, n, b);
    const double exact = wl.complexity_ratio(row.op, k, k + 1);
    if (paper.has_value()) {
      t.add_row({row.name, TablePrinter::fmt(*paper, 5),
                 TablePrinter::fmt(exact, 5),
                 TablePrinter::fmt(exact - *paper, 5)});
    } else {
      t.add_row({row.name, "N/A", TablePrinter::fmt(exact, 5), ""});
    }
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "Note: the printed TMU-Cholesky formula carries the paper's (1+k)\n"
      "prefactor verbatim, which diverges from the exact syrk flop ratio —\n"
      "see EXPERIMENTS.md for the discussion of this (likely) typo.\n");
  return 0;
}
