// Fig. 15 (beyond the paper): seeded fault-injection campaigns — ABFT
// coverage, recovery overhead, and tail latency across fault rate x strategy
// x device count.
//
// Fig. 9 demonstrates the paper's safety claim with real numerics on one
// bounded matrix; this driver stresses the same claim statistically, at any
// scale: every cell runs N seeded Poisson fault realizations (bsr/faults.hpp)
// against one shared no-fault baseline, on the single-node pipeline
// (--devices 0) and the event-driven cluster engine alike. Coverage is the
// fraction of injected faults corrected in place or recovered by rollback;
// overhead is the mean wall-time cost of living with the faults; p50/p95/p99
// are the trial wall-time percentiles (fault-induced tail latency).
//
// The --rates axis plays the role of fig09's --rate_multiplier: it scales
// the fault process's arrival rates (exposure compression for reduced-size
// campaigns) without re-shaping the SDC world ABFT-OC reasons about.
//
// Campaigns are bitwise reproducible for a fixed --seed at any sweep thread
// count. The committed BENCH_faults.json is `--n 4096 --format=json`.
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "bsr/bsr.hpp"

using namespace bsr;

int main(int argc, char** argv) {
  Cli cli;
  cli.arg_int("n", 4096, "matrix order")
      .arg_int("b", 0, "block (panel) size; 0 = auto-tune")
      .arg_int("trials", 6, "seeded fault realizations per cell")
      .arg_double("r", 0.25, "BSR reclamation ratio in [0, 1]")
      .arg_string("rates", "25,75,225",
                  "comma-separated fault-rate multipliers (the axis; scales "
                  "the preset's arrival process only)")
      .arg_string("strategies", "sr,bsr",
                  "comma-separated strategy registry keys (the axis)")
      .arg_string("devices", "0,4",
                  "comma-separated device counts (0 = single-node pipeline)")
      .arg_string("cluster", "paper_cluster", "cluster profile registry key")
      .arg_string("format", "table", "output: table, csv, or json");
  add_fault_flags(cli, "poisson");
  add_variability_flags(cli);
  add_list_flag(cli);
  add_trace_flag(cli);
  add_version_flag(cli);
  if (!cli.parse_or_exit(argc, argv)) return 0;
  if (handled_list_flag(cli)) return 0;
  if (handled_version_flag(cli, "bench_fig15_faults")) return 0;
  const std::string format = cli.get("format");
  require_result_sink_or_exit(format);
  const int trials = static_cast<int>(positive_int_or_exit(cli, "trials"));
  const std::vector<double> rates = parse_double_list_or_exit(
      "rates", cli.get("rates"), 0.0, "a rate multiplier >= 0", "25,75,225");
  const std::vector<std::string> strategies = parse_string_list_or_exit(
      "strategies", cli.get("strategies"), "a strategy registry key list",
      "sr,bsr");
  // The 4096 ceiling matches RunConfig::validate(); 0 = single-node.
  const std::vector<long long> device_counts = parse_int_list_or_exit(
      "devices", cli.get("devices"), 0, 4096,
      "a device count in [0, 4096] (0 = single-node)", "0,4");

  RunConfig base;
  base.factorization = Factorization::LU;
  base.n = cli.get_int("n");
  base.b = cli.get_int("b");
  base.reclamation_ratio = cli.get_double("r");
  base.cluster = cli.get("cluster");
  apply_variability_flags_or_exit(cli, base);
  // An explicit --faults off is honored: the campaign then runs trivially
  // (every trial equals its baseline), which is the user's call to make.
  apply_fault_flags_or_exit(cli, base);
  const std::string preset = cli.get("faults");

  Axis rate_axis{"rate", {}};
  for (const double m : rates) {
    rate_axis.points.push_back({TablePrinter::num(m), [m](RunConfig& c) {
                                  c.faults.rate_multiplier = m;
                                }});
  }
  Axis devices_ax{"devices", {}};
  for (const long long dv : device_counts) {
    const int g = static_cast<int>(dv);
    devices_ax.points.push_back(
        {std::to_string(g), [g](RunConfig& c) { c.devices = g; }});
  }

  CampaignResult result;
  try {
    result = FaultCampaign(base, trials)
                 .over(rate_axis)
                 .over(strategy_axis(strategies))
                 .over(devices_ax)
                 .run();
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  // --trace records the campaign's first cell (first rate / strategy /
  // device count) so recovery and fault spans show up in the timeline.
  if (const std::string tpath = trace_path(cli); !tpath.empty()) {
    RunConfig traced = base;
    traced.faults.rate_multiplier = rates.front();
    traced.strategy = strategies.front();
    traced.devices = static_cast<int>(device_counts.front());
    try {
      run_traced(traced, tpath, "bench_fig15_faults");
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
    std::fprintf(stderr, "trace: wrote %s\n", tpath.c_str());
  }

  if (format != "table") {
    auto sink = make_result_sink(format, stdout_stream());
    emit(result, *sink);
    return 0;
  }

  std::printf(
      "== Fig. 15: seeded fault campaigns, LU n=%lld, %s preset, %d "
      "trials/cell ==\n"
      "   coverage = corrected+recovered over injected; overhead = mean "
      "trial time\n   over the no-fault baseline; p50/p95/p99 = trial "
      "wall-time percentiles\n\n",
      static_cast<long long>(base.n), preset.c_str(), trials);
  auto sink = make_result_sink("table", stdout_stream());
  emit(result, *sink);
  std::printf("campaign: %zu unique runs for %zu requested, %.1f ms\n",
              result.unique_runs, result.requested_runs,
              result.wall_seconds * 1e3);
  return 0;
}
