// Google Benchmark micro-benchmarks for the numeric substrate — the BLAS-3
// and factorization kernels that back the numeric execution mode, plus the
// ABFT checksum primitives — and for the simulator's own hot loop: cluster
// sweep and fault-campaign throughput in cells (runs) per second. The kernel
// numbers are host-side sanity benchmarks (the *simulated* device performance
// comes from hw::PerfModel, not from these numbers); the throughput numbers
// are the product metric the committed BENCH_kernels.json trajectory and the
// CI perf gate (tools/perf_gate.py) defend.
#include <benchmark/benchmark.h>

#include "abft/checksum.hpp"
#include "abft/update.hpp"
#include "bsr/bsr.hpp"
#include "common/rng.hpp"
#include "la/lapack.hpp"

using namespace bsr;
using la::idx;
using la::Matrix;

namespace {

Matrix<double> random_matrix(idx m, idx n, std::uint64_t seed) {
  Matrix<double> a(m, n);
  Rng rng(seed);
  la::fill_random(a.view(), rng);
  return a;
}

void BM_Gemm(benchmark::State& state) {
  const idx n = state.range(0);
  const Matrix<double> a = random_matrix(n, n, 1);
  const Matrix<double> b = random_matrix(n, n, 2);
  Matrix<double> c(n, n);
  for (auto _ : state) {
    la::gemm(la::Op::NoTrans, la::Op::NoTrans, 1.0, a.view(), b.view(), 0.0,
             c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * n * n * n * state.iterations() / 1e9, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Gemm)->Arg(128)->Arg(256)->Arg(512);

void BM_Potrf(benchmark::State& state) {
  const idx n = state.range(0);
  Matrix<double> spd(n, n);
  Rng rng(3);
  la::fill_spd(spd.view(), rng);
  for (auto _ : state) {
    Matrix<double> a = spd;
    benchmark::DoNotOptimize(la::potrf(a.view(), 64));
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      n * n * n / 3.0 * state.iterations() / 1e9, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Potrf)->Arg(256)->Arg(512);

void BM_Getrf(benchmark::State& state) {
  const idx n = state.range(0);
  const Matrix<double> src = random_matrix(n, n, 4);
  std::vector<idx> ipiv;
  for (auto _ : state) {
    Matrix<double> a = src;
    benchmark::DoNotOptimize(la::getrf(a.view(), 64, ipiv));
  }
  state.counters["GFLOP/s"] =
      benchmark::Counter(2.0 * n * n * n / 3.0 * state.iterations() / 1e9,
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Getrf)->Arg(256)->Arg(512);

void BM_Geqrf(benchmark::State& state) {
  const idx n = state.range(0);
  const Matrix<double> src = random_matrix(n, n, 5);
  std::vector<double> tau;
  for (auto _ : state) {
    Matrix<double> a = src;
    benchmark::DoNotOptimize(la::geqrf(a.view(), 64, tau));
  }
  state.counters["GFLOP/s"] =
      benchmark::Counter(4.0 * n * n * n / 3.0 * state.iterations() / 1e9,
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Geqrf)->Arg(256)->Arg(512);

void BM_ChecksumEncode(benchmark::State& state) {
  const idx n = state.range(0);
  const Matrix<double> a = random_matrix(n, n, 6);
  abft::BlockChecksums<double> chk(n, n, 64, abft::ChecksumMode::Full);
  for (auto _ : state) {
    chk.encode(a.view());
    benchmark::DoNotOptimize(chk.col_checksums().data());
  }
}
BENCHMARK(BM_ChecksumEncode)->Arg(256)->Arg(512);

void BM_ChecksumVerify(benchmark::State& state) {
  const idx n = state.range(0);
  Matrix<double> a = random_matrix(n, n, 7);
  abft::BlockChecksums<double> chk(n, n, 64, abft::ChecksumMode::Full);
  chk.encode(a.view());
  for (auto _ : state) {
    const auto r = chk.verify_and_correct(
        a.view(), abft::BlockChecksums<double>::suggested_tolerance(
                      a.view(), 64));
    benchmark::DoNotOptimize(&r);
  }
}
BENCHMARK(BM_ChecksumVerify)->Arg(256)->Arg(512);

void BM_ProtectedGemmUpdate(benchmark::State& state) {
  const idx n = state.range(0);
  const idx kb = 64;
  const Matrix<double> l = random_matrix(n, kb, 8);
  const Matrix<double> u = random_matrix(kb, n, 9);
  Matrix<double> c0 = random_matrix(n, n, 10);
  abft::BlockChecksums<double> chk(n, n, 64, abft::ChecksumMode::Full);
  chk.encode(c0.view());
  for (auto _ : state) {
    Matrix<double> c = c0;
    abft::BlockChecksums<double> k2 = chk;
    abft::protected_gemm_update(c.view(), l.view(), u.view(), k2);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_ProtectedGemmUpdate)->Arg(256)->Arg(512);

// Simulator throughput: cells (unique runs) per second through the full Sweep
// engine — config expansion, fingerprinting, cluster event simulation, and
// aggregation. A fresh Sweep is built every iteration because the result
// cache would otherwise serve every repeat for free; unique_runs counts what
// was actually simulated.
void BM_ClusterSweep(benchmark::State& state) {
  std::int64_t cells = 0;
  for (auto _ : state) {
    RunConfig base;
    base.n = 2048;
    base.b = 128;
    Sweep sweep(base);
    sweep.over(trial_axis(2, /*root_seed=*/99))
        .over(devices_axis({1, 4, 8}))
        .over(strategy_axis({"original", "bsr"}));
    const SweepResult grid = sweep.run();
    benchmark::DoNotOptimize(&grid);
    cells += grid.unique_runs;
  }
  state.counters["cells/s"] = benchmark::Counter(
      static_cast<double>(cells), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ClusterSweep);

// Fault-campaign throughput: seeded Poisson injection, recovery-cost
// simulation, and per-cell aggregation on top of the sweep engine. Same
// fresh-object-per-iteration rule as BM_ClusterSweep.
void BM_FaultCampaign(benchmark::State& state) {
  std::int64_t runs = 0;
  for (auto _ : state) {
    RunConfig base;
    base.n = 2048;
    base.b = 128;
    base.faults = make_faults("poisson");
    FaultCampaign camp(base, /*trials=*/20);
    camp.over(devices_axis({1, 4, 8}))
        .over(strategy_axis({"original", "bsr"}));
    const CampaignResult result = camp.run();
    benchmark::DoNotOptimize(&result);
    runs += result.unique_runs;
  }
  state.counters["runs/s"] = benchmark::Counter(
      static_cast<double>(runs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FaultCampaign);

}  // namespace
