// Reproduces paper Fig. 10: time and energy-saving breakdown of the 2nd and
// 50th LU iteration under Original / R2H / SR / BSR(r = 0 .. 0.25).
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/table_printer.hpp"
#include "core/decomposer.hpp"

using namespace bsr;

namespace {

struct Config {
  const char* name;
  core::StrategyKind strategy;
  double r;
};

const std::vector<Config>& configs() {
  static const std::vector<Config> c = {
      {"Org", core::StrategyKind::Original, 0.0},
      {"R2H", core::StrategyKind::R2H, 0.0},
      {"SR", core::StrategyKind::SR, 0.0},
      {"BSR r=0", core::StrategyKind::BSR, 0.0},
      {"BSR r=0.05", core::StrategyKind::BSR, 0.05},
      {"BSR r=0.10", core::StrategyKind::BSR, 0.10},
      {"BSR r=0.15", core::StrategyKind::BSR, 0.15},
      {"BSR r=0.20", core::StrategyKind::BSR, 0.20},
      {"BSR r=0.25", core::StrategyKind::BSR, 0.25},
  };
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const std::int64_t n = cli.get_int("n", 30720);
  const std::int64_t b = cli.get_int("b", 512);

  std::printf("== Fig. 10: per-iteration time and energy breakdown, LU n=%lld ==\n\n",
              static_cast<long long>(n));
  const core::Decomposer dec;

  // Reference energies from the Original run for the saving columns.
  core::RunOptions base;
  base.n = n;
  base.b = b;
  base.strategy = core::StrategyKind::Original;
  const core::RunReport org = dec.run(base);

  for (int iter : {2, 50}) {
    std::printf("-- iteration %d (%s-side slack in the Original schedule) --\n",
                iter,
                org.trace.iterations[iter].slack > SimTime::zero() ? "CPU"
                                                                    : "GPU");
    TablePrinter t({"Config", "PD ms", "Xfer ms", "TMU+PU ms", "ABFT ms",
                    "DVFS ms", "span ms", "CPU dE (J)", "GPU dE (J)"});
    for (const auto& cfg : configs()) {
      core::RunOptions o = base;
      o.strategy = cfg.strategy;
      o.reclamation_ratio = cfg.r;
      const core::RunReport rep = dec.run(o);
      const sched::IterationOutcome& it = rep.trace.iterations[iter];
      const sched::IterationOutcome& ref = org.trace.iterations[iter];
      t.add_row({cfg.name, TablePrinter::fmt(it.pd.millis(), 1),
                 TablePrinter::fmt(it.transfer.millis(), 1),
                 TablePrinter::fmt(it.pu_tmu.millis(), 1),
                 TablePrinter::fmt(it.abft_time.millis(), 1),
                 TablePrinter::fmt((it.cpu_dvfs + it.gpu_dvfs).millis(), 1),
                 TablePrinter::fmt(it.span.millis(), 1),
                 TablePrinter::fmt(ref.cpu_energy_j - it.cpu_energy_j, 1),
                 TablePrinter::fmt(ref.gpu_energy_j - it.gpu_energy_j, 1)});
    }
    std::printf("%s\n", t.to_string().c_str());
  }
  std::printf(
      "(positive dE = energy saved vs Original for that iteration; the paper\n"
      " observes max energy saving at r=0 and max performance near r=0.25)\n");
  return 0;
}
