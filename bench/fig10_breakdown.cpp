// Reproduces paper Fig. 10: time and energy-saving breakdown of the 2nd and
// 50th LU iteration under Original / R2H / SR / BSR(r = 0 .. 0.25).
//
// The config axis runs through bsr::Sweep with an Original baseline; the
// "Org" row and the per-iteration reference energies share one cached run
// (the seed bench executed Original twice).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bsr/bsr.hpp"

using namespace bsr;

int main(int argc, char** argv) {
  Cli cli;
  cli.arg_int("n", 30720, "matrix order")
      .arg_int("b", 512, "block (panel) size");
  add_version_flag(cli);
  if (!cli.parse_or_exit(argc, argv)) return 0;
  if (handled_version_flag(cli, "bench_fig10_breakdown")) return 0;
  const std::int64_t n = cli.get_int("n");

  std::printf("== Fig. 10: per-iteration time and energy breakdown, LU n=%lld ==\n\n",
              static_cast<long long>(n));

  RunConfig base;
  base.n = n;
  base.b = cli.get_int("b");

  Axis configs =
      strategy_axis_labeled({{"original", "Org"}, {"r2h", "R2H"}, {"sr", "SR"}});
  configs.name = "config";
  for (double r : {0.0, 0.05, 0.10, 0.15, 0.20, 0.25}) {
    const std::string label =
        r == 0.0 ? "BSR r=0" : "BSR r=" + TablePrinter::fmt(r, 2);
    configs.points.push_back({label, [r](RunConfig& c) {
                                c.strategy = "bsr";
                                c.reclamation_ratio = r;
                              }});
  }

  const SweepResult grid =
      Sweep(base).over(configs).baseline("original").run();
  const RunReport& org = *grid.rows.front().baseline;

  // The paper shows iterations 2 (CPU-side slack) and 50 (GPU-side); clamp
  // for small --n so the bench stays usable at any size.
  const int last = static_cast<int>(org.trace.iterations.size()) - 1;
  std::vector<int> iters;
  for (int iter : {2, 50}) {
    const int clamped = std::min(iter, last);
    if (iters.empty() || iters.back() != clamped) iters.push_back(clamped);
  }
  for (int iter : iters) {
    std::printf("-- iteration %d (%s-side slack in the Original schedule) --\n",
                iter,
                org.trace.iterations[iter].slack > SimTime::zero() ? "CPU"
                                                                    : "GPU");
    TablePrinter t({"Config", "PD ms", "Xfer ms", "TMU+PU ms", "ABFT ms",
                    "DVFS ms", "span ms", "CPU dE (J)", "GPU dE (J)"});
    for (const SweepRow& row : grid.rows) {
      const sched::IterationOutcome& it = row.report->trace.iterations[iter];
      const sched::IterationOutcome& ref = org.trace.iterations[iter];
      t.add_row({row.coords.at("config"), TablePrinter::fmt(it.pd.millis(), 1),
                 TablePrinter::fmt(it.transfer.millis(), 1),
                 TablePrinter::fmt(it.pu_tmu.millis(), 1),
                 TablePrinter::fmt(it.abft_time.millis(), 1),
                 TablePrinter::fmt((it.cpu_dvfs + it.gpu_dvfs).millis(), 1),
                 TablePrinter::fmt(it.span.millis(), 1),
                 TablePrinter::fmt(ref.cpu_energy_j - it.cpu_energy_j, 1),
                 TablePrinter::fmt(ref.gpu_energy_j - it.gpu_energy_j, 1)});
    }
    std::printf("%s\n", t.to_string().c_str());
  }
  std::printf(
      "(positive dE = energy saved vs Original for that iteration; the paper\n"
      " observes max energy saving at r=0 and max performance near r=0.25)\n");
  return 0;
}
