// Reproduces paper Table 1: theoretical ABFT fault coverage of the TMU
// operation at the 5th, 10th and 15th iteration of LU (n=30720, b=512) across
// overclocking frequencies 1800-2200 MHz.
#include <cstdio>
#include <string>

#include "abft/coverage.hpp"
#include "bsr/bsr.hpp"

using namespace bsr;

namespace {

std::string label(double fc, bool fault_free) {
  if (const char* s = abft::coverage_label_static(fc, fault_free)) return s;
  return TablePrinter::pct(fc, 2);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  cli.arg_int("n", 30720, "matrix order")
      .arg_int("b", 512, "block (panel) size");
  add_version_flag(cli);
  if (!cli.parse_or_exit(argc, argv)) return 0;
  if (handled_version_flag(cli, "bench_table1_coverage")) return 0;
  const std::int64_t n = cli.get_int("n");
  const std::int64_t b = cli.get_int("b");
  const auto platform = make_platform("paper_default");
  const predict::WorkloadModel wl{predict::Factorization::LU, n, b, 8};
  const std::int64_t blocks = (n / b) * (n / b);

  std::printf("== Table 1: ABFT fault coverage, LU TMU, n=%lld b=%lld ==\n\n",
              static_cast<long long>(n), static_cast<long long>(b));
  TablePrinter t({"Iter", "ABFT", "1800MHz", "1900MHz", "2000MHz", "2100MHz",
                  "2200MHz"});
  for (int iter : {5, 10, 15}) {
    const double tmu_flops = wl.iteration(iter).tmu_flops;
    std::vector<std::string> single_row = {std::to_string(iter) + "th", "Single"};
    std::vector<std::string> full_row = {"", "Full"};
    for (hw::Mhz f = 1800; f <= 2200; f += 100) {
      const double t_op =
          platform.gpu.perf
              .time_for_flops(tmu_flops, hw::KernelClass::Blas3, f,
                              platform.gpu.freq)
              .seconds();
      const hw::ErrorRates rates =
          platform.gpu.errors.rates(f, hw::Guardband::Optimized);
      single_row.push_back(
          label(abft::fc_single(rates, t_op, blocks), rates.fault_free()));
      full_row.push_back(
          label(abft::fc_full(rates, t_op, blocks), rates.fault_free()));
    }
    t.add_row(single_row);
    t.add_row(full_row);
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("(\"Full Coverage\" = FC > 99.9999%%, as in the paper)\n");
  return 0;
}
