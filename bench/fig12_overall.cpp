// Reproduces paper Fig. 12: overall energy saving (a) and ED2P reduction (b)
// of R2H / SR / BSR relative to the Original design, n=30720 dp, r=0.
#include <cstdio>

#include "common/cli.hpp"
#include "common/table_printer.hpp"
#include "core/decomposer.hpp"

using namespace bsr;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const std::int64_t n = cli.get_int("n", 30720);
  const std::int64_t b = cli.get_int("b", 512);
  const core::Decomposer dec;

  std::printf("== Fig. 12: overall energy saving and ED2P reduction, n=%lld ==\n\n",
              static_cast<long long>(n));
  TablePrinter ta({"Factorization", "R2H", "SR", "BSR (ours)"});
  TablePrinter tb({"Factorization", "R2H", "SR", "BSR (ours)"});
  for (auto f : {predict::Factorization::Cholesky, predict::Factorization::LU,
                 predict::Factorization::QR}) {
    core::RunOptions o;
    o.factorization = f;
    o.n = n;
    o.b = b;
    o.strategy = core::StrategyKind::Original;
    const core::RunReport org = dec.run(o);
    o.strategy = core::StrategyKind::R2H;
    const core::RunReport r2h = dec.run(o);
    o.strategy = core::StrategyKind::SR;
    const core::RunReport sr = dec.run(o);
    o.strategy = core::StrategyKind::BSR;
    const core::RunReport bsr = dec.run(o);
    ta.add_row({predict::to_string(f),
                TablePrinter::pct(r2h.energy_saving_vs(org)),
                TablePrinter::pct(sr.energy_saving_vs(org)),
                TablePrinter::pct(bsr.energy_saving_vs(org))});
    tb.add_row({predict::to_string(f),
                TablePrinter::pct(r2h.ed2p_reduction_vs(org)),
                TablePrinter::pct(sr.ed2p_reduction_vs(org)),
                TablePrinter::pct(bsr.ed2p_reduction_vs(org))});
  }
  std::printf("-- (a) energy saving vs Original --\n%s\n", ta.to_string().c_str());
  std::printf("-- (b) ED2P reduction vs Original --\n%s\n", tb.to_string().c_str());
  std::printf(
      "(paper (a): R2H ~13-14%%, SR ~20-21%%, BSR 28.2-30.7%%;\n"
      " paper (b): BSR 29.3-31.6%% vs Original, 10.8-14.1%% vs SR)\n");
  return 0;
}
