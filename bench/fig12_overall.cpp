// Reproduces paper Fig. 12: overall energy saving (a) and ED2P reduction (b)
// of R2H / SR / BSR relative to the Original design, n=30720 dp, r=0.
//
// The strategy x factorization grid runs through bsr::Sweep: each
// factorization's Original baseline executes once and is shared by all its
// comparison rows via the sweep's result cache; cells run in parallel on the
// process thread pool. --format=csv|json dumps the full grid through a
// ResultSink for machine consumption.
#include <cstdio>
#include <stdexcept>

#include "bsr/bsr.hpp"

using namespace bsr;

int main(int argc, char** argv) {
  Cli cli;
  cli.arg_int("n", 30720, "matrix order")
      .arg_int("b", 512, "block (panel) size")
      .arg_int("devices", 0,
               "accelerator count: 0 = classic single-node CPU+GPU pipeline, "
               ">= 1 = event-driven cluster engine")
      .arg_string("cluster", "paper_cluster",
                  "cluster profile registry key (used when --devices >= 1)")
      .arg_string("format", "table", "output: table, csv, or json");
  add_variability_flags(cli);
  add_list_flag(cli);
  add_trace_flag(cli);
  add_version_flag(cli);
  if (!cli.parse_or_exit(argc, argv)) return 0;
  if (handled_list_flag(cli)) return 0;
  if (handled_version_flag(cli, "bench_fig12_overall")) return 0;
  const std::int64_t n = cli.get_int("n");
  const std::string format = cli.get("format");
  require_result_sink_or_exit(format);

  RunConfig base;
  base.n = n;
  base.b = cli.get_int("b");
  base.devices = static_cast<int>(cli.get_int("devices"));
  base.cluster = cli.get("cluster");
  apply_variability_flags_or_exit(cli, base);

  SweepResult grid;
  try {
    grid = Sweep(base)
               .over(factorization_axis({Factorization::Cholesky,
                                         Factorization::LU, Factorization::QR}))
               .over(strategy_axis({"r2h", "sr", "bsr"}))
               .baseline("original")
               .run();
  } catch (const std::invalid_argument& e) {
    // Cell validation failures (unknown --cluster, bad device count) fail
    // loudly, in the same style as Cli::parse_or_exit.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  // --trace re-runs the grid's representative BSR cell with a recorder
  // attached; the recorded run is byte-identical to the grid's cached one.
  if (const std::string tpath = trace_path(cli); !tpath.empty()) {
    RunConfig traced = base;
    traced.strategy = "bsr";
    try {
      run_traced(traced, tpath, "bench_fig12_overall");
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
    std::fprintf(stderr, "trace: wrote %s\n", tpath.c_str());
  }

  if (format != "table") {
    emit(grid, *make_result_sink(format, stdout_stream()));
    return 0;
  }

  std::printf("== Fig. 12: overall energy saving and ED2P reduction, n=%lld ==\n\n",
              static_cast<long long>(n));
  TablePrinter ta({"Factorization", "R2H", "SR", "BSR (ours)"});
  TablePrinter tb({"Factorization", "R2H", "SR", "BSR (ours)"});
  for (auto f : {predict::Factorization::Cholesky, predict::Factorization::LU,
                 predict::Factorization::QR}) {
    const char* fact = predict::to_string(f);
    const auto& r2h = grid.at({{"factorization", fact}, {"strategy", "r2h"}});
    const auto& sr = grid.at({{"factorization", fact}, {"strategy", "sr"}});
    const auto& bsr = grid.at({{"factorization", fact}, {"strategy", "bsr"}});
    ta.add_row({fact, TablePrinter::pct(r2h.energy_saving()),
                TablePrinter::pct(sr.energy_saving()),
                TablePrinter::pct(bsr.energy_saving())});
    tb.add_row({fact, TablePrinter::pct(r2h.ed2p_reduction()),
                TablePrinter::pct(sr.ed2p_reduction()),
                TablePrinter::pct(bsr.ed2p_reduction())});
  }
  std::printf("-- (a) energy saving vs Original --\n%s\n", ta.to_string().c_str());
  std::printf("-- (b) ED2P reduction vs Original --\n%s\n", tb.to_string().c_str());
  std::printf(
      "(paper (a): R2H ~13-14%%, SR ~20-21%%, BSR 28.2-30.7%%;\n"
      " paper (b): BSR 29.3-31.6%% vs Original, 10.8-14.1%% vs SR)\n");
  std::printf(
      "sweep: %zu unique runs for %zu requested (%zu baseline cache hits), "
      "%.1f ms\n",
      grid.unique_runs, grid.requested_runs, grid.cache_hits,
      grid.wall_seconds * 1e3);
  return 0;
}
