// Reproduces the paper's §3.2.3 analysis: the energy-neutral reclamation
// ratio r* obtained by solving dE_CPU(r) + dE_GPU(r) = 0 per iteration and
// averaging (paper: 0.28 Cholesky / 0.26 LU / 0.31 QR at n=30720).
#include <cstdio>

#include "bsr/bsr.hpp"

using namespace bsr;

int main(int argc, char** argv) {
  Cli cli;
  cli.arg_int("n", 30720, "matrix order");
  add_version_flag(cli);
  if (!cli.parse_or_exit(argc, argv)) return 0;
  if (handled_version_flag(cli, "bench_rstar_solver")) return 0;
  const std::int64_t n = cli.get_int("n");

  RunConfig base;
  base.n = n;
  base.b = 0;  // auto-tune
  base.strategy = "original";

  const SweepResult grid =
      Sweep(base)
          .over(factorization_axis({Factorization::Cholesky, Factorization::LU,
                                    Factorization::QR}))
          .run();
  const hw::PlatformProfile platform = make_platform(base.platform);

  std::printf("== Energy-neutral reclamation ratio r* (paper §3.2.3) ==\n\n");
  TablePrinter t({"Factorization", "analytic r*", "paper r*"});
  const char* paper_vals[] = {"0.28", "0.26", "0.31"};
  int i = 0;
  for (const SweepRow& row : grid.rows) {
    const double r_star =
        energy::average_energy_neutral_r(row.report->trace, platform);
    t.add_row({row.coords.at("factorization"), TablePrinter::fmt(r_star, 3),
               paper_vals[i++]});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "(our calibrated guardband alpha is deeper than the authors' measured\n"
      " curve, which shifts the analytic neutral point upward; the ordering\n"
      " Cholesky < QR and the existence of an interior optimum reproduce)\n");
  return 0;
}
