// Reproduces the paper's §3.2.3 analysis: the energy-neutral reclamation
// ratio r* obtained by solving dE_CPU(r) + dE_GPU(r) = 0 per iteration and
// averaging (paper: 0.28 Cholesky / 0.26 LU / 0.31 QR at n=30720).
#include <cstdio>

#include "common/cli.hpp"
#include "common/table_printer.hpp"
#include "core/decomposer.hpp"
#include "energy/pareto.hpp"

using namespace bsr;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const std::int64_t n = cli.get_int("n", 30720);
  const core::Decomposer dec;

  std::printf("== Energy-neutral reclamation ratio r* (paper §3.2.3) ==\n\n");
  TablePrinter t({"Factorization", "analytic r*", "paper r*"});
  const char* paper_vals[] = {"0.28", "0.26", "0.31"};
  int i = 0;
  for (auto f : {predict::Factorization::Cholesky, predict::Factorization::LU,
                 predict::Factorization::QR}) {
    core::RunOptions o;
    o.factorization = f;
    o.n = n;
    o.b = core::tuned_block(n);
    o.strategy = core::StrategyKind::Original;
    const core::RunReport org = dec.run(o);
    const double r_star =
        energy::average_energy_neutral_r(org.trace, dec.platform());
    t.add_row({predict::to_string(f), TablePrinter::fmt(r_star, 3),
               paper_vals[i++]});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "(our calibrated guardband alpha is deeper than the authors' measured\n"
      " curve, which shifts the analytic neutral point upward; the ordering\n"
      " Cholesky < QR and the existence of an interior optimum reproduce)\n");
  return 0;
}
