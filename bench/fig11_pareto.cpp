// Reproduces paper Fig. 11: the Pareto-efficient performance/energy trade-off
// enabled by the reclamation ratio, against Original / R2H / SR.
//
// One bsr::Sweep per paper panel: a custom "config" axis unions the three
// baseline strategies with the BSR r-scan, and the Original row is the same
// cached run the sweep uses as every cell's baseline (the seed bench re-ran
// it as a separate call).
#include <algorithm>
#include <cstdio>

#include "bsr/bsr.hpp"

using namespace bsr;

int main(int argc, char** argv) {
  Cli cli;
  cli.arg_int("n", 30720, "matrix order")
      .arg_int("b", 512, "block (panel) size");
  add_list_flag(cli);
  add_version_flag(cli);
  if (!cli.parse_or_exit(argc, argv)) return 0;
  if (handled_list_flag(cli)) return 0;
  if (handled_version_flag(cli, "bench_fig11_pareto")) return 0;
  const std::int64_t n = cli.get_int("n");

  RunConfig base;
  base.n = n;
  base.b = cli.get_int("b");

  // Original / R2H / SR, then the BSR r-scan, as one axis.
  Axis configs = strategy_axis_labeled(
      {{"original", "Original"}, {"r2h", "R2H"}, {"sr", "SR"}});
  configs.name = "config";
  for (double r : {0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.40, 0.50}) {
    configs.points.push_back({"BSR r=" + TablePrinter::fmt(r, 2),
                              [r](RunConfig& c) {
                                c.strategy = "bsr";
                                c.reclamation_ratio = r;
                              }});
  }

  Sweep sweep(base);
  sweep.over(factorization_axis({Factorization::Cholesky, Factorization::LU,
                                 Factorization::QR}))
      .over(configs)
      .baseline("original");
  const SweepResult grid = sweep.run();

  std::printf("== Fig. 11: Pareto performance-energy trade-off, n=%lld dp ==\n\n",
              static_cast<long long>(n));
  for (auto f : {predict::Factorization::Cholesky, predict::Factorization::LU,
                 predict::Factorization::QR}) {
    TablePrinter t({"Config", "Perf (GFLOP/s)", "Energy (J)", "vs Org perf",
                    "vs Org energy"});
    double max_speedup_free = 1.0;
    double max_saving = 0.0;
    for (const SweepRow* row : grid.where("factorization", predict::to_string(f))) {
      const RunReport& rep = *row->report;
      t.add_row({row->coords.at("config"), TablePrinter::fmt(rep.gflops(), 1),
                 TablePrinter::fmt(rep.total_energy_j(), 0),
                 TablePrinter::fmt(row->speedup(), 2) + "x",
                 TablePrinter::pct(-row->energy_saving(), 1)});
      if (row->config.strategy == "bsr") {
        max_saving = std::max(max_saving, row->energy_saving());
        if (rep.total_energy_j() <= row->baseline->total_energy_j()) {
          max_speedup_free = std::max(max_speedup_free, row->speedup());
        }
      }
    }
    std::printf("-- %s --\n%s", predict::to_string(f), t.to_string().c_str());
    std::printf("Max energy saving: %s   Max perf. improvement at <= Org energy: %.2fx\n\n",
                TablePrinter::pct(max_saving).c_str(), max_speedup_free);
  }
  std::printf(
      "(paper: max savings 28.2-30.7%%; max free perf improvement 1.38-1.51x)\n"
      "sweep: %zu unique runs for %zu requested (%zu cache hits)\n",
      grid.unique_runs, grid.requested_runs, grid.cache_hits);
  return 0;
}
