// Reproduces paper Fig. 11: the Pareto-efficient performance/energy trade-off
// enabled by the reclamation ratio, against Original / R2H / SR.
#include <cstdio>

#include "common/cli.hpp"
#include "common/table_printer.hpp"
#include "core/decomposer.hpp"

using namespace bsr;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const std::int64_t n = cli.get_int("n", 30720);
  const std::int64_t b = cli.get_int("b", 512);
  const core::Decomposer dec;

  std::printf("== Fig. 11: Pareto performance-energy trade-off, n=%lld dp ==\n\n",
              static_cast<long long>(n));
  for (auto f : {predict::Factorization::Cholesky, predict::Factorization::LU,
                 predict::Factorization::QR}) {
    core::RunOptions o;
    o.factorization = f;
    o.n = n;
    o.b = b;

    TablePrinter t({"Config", "Perf (GFLOP/s)", "Energy (J)", "vs Org perf",
                    "vs Org energy"});
    o.strategy = core::StrategyKind::Original;
    const core::RunReport org = dec.run(o);
    auto add = [&](const char* name, const core::RunReport& r) {
      t.add_row({name, TablePrinter::fmt(r.gflops(), 1),
                 TablePrinter::fmt(r.total_energy_j(), 0),
                 TablePrinter::fmt(r.speedup_vs(org), 2) + "x",
                 TablePrinter::pct(-r.energy_saving_vs(org), 1)});
    };
    add("Original", org);
    o.strategy = core::StrategyKind::R2H;
    add("R2H", dec.run(o));
    o.strategy = core::StrategyKind::SR;
    add("SR", dec.run(o));
    o.strategy = core::StrategyKind::BSR;
    double max_speedup_free = 1.0;
    double max_saving = 0.0;
    for (double r : {0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.40, 0.50}) {
      o.reclamation_ratio = r;
      const core::RunReport rep = dec.run(o);
      add(("BSR r=" + TablePrinter::fmt(r, 2)).c_str(), rep);
      max_saving = std::max(max_saving, rep.energy_saving_vs(org));
      if (rep.total_energy_j() <= org.total_energy_j()) {
        max_speedup_free = std::max(max_speedup_free, rep.speedup_vs(org));
      }
    }
    std::printf("-- %s --\n%s", predict::to_string(f), t.to_string().c_str());
    std::printf("Max energy saving: %s   Max perf. improvement at <= Org energy: %.2fx\n\n",
                TablePrinter::pct(max_saving).c_str(), max_speedup_free);
  }
  std::printf(
      "(paper: max savings 28.2-30.7%%; max free perf improvement 1.38-1.51x)\n");
  return 0;
}
