// Reproduces paper Fig. 8: relative online slack-prediction error of the
// first-iteration (GreenLA) approach vs the enhanced online-calibration
// approach across the LU decomposition.
//
// Two modes:
//
//   * Default (no --drift, --format=table): the classic single trace at the
//     pipeline's calibrated noise model, one row per sampled iteration.
//   * Drift sweep (--drift and/or --format=csv|json): enables the seeded
//     variability subsystem (bsr/variability.hpp) and sweeps the efficiency
//     random-walk amplitude, reporting each predictor's mean absolute
//     relative prediction error (MAE) per amplitude. This is the regime the
//     paper argues for: under real-machine drift the enhanced predictor
//     stays calibrated while first-iteration profiling accumulates error.
//     CI records `--n 8192 --b 256 --format=json` as BENCH_predict.json.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bsr/bsr.hpp"
#include "energy/baselines.hpp"
#include "predict/slack_predictor.hpp"

using namespace bsr;
using predict::OpKind;

namespace {

/// Prediction-error summary of one pipeline trace under one variability
/// configuration: both predictors fed the same measured profiles, errors
/// taken on the one-step-ahead prediction of the GPU task (the slack driver).
struct PredictionErrors {
  std::vector<double> first;
  std::vector<double> enhanced;
  std::vector<double> first_late;  ///< last third of the run
  std::vector<double> enhanced_late;
  int iters = 0;

  [[nodiscard]] double first_mae() const { return stats::mean(first); }
  [[nodiscard]] double enhanced_mae() const { return stats::mean(enhanced); }
};

/// Runs the Original-strategy pipeline (base clocks) once and scores both
/// predictors online. The callback sees each scored iteration (for the
/// default mode's table rows); pass nullptr to skip it.
PredictionErrors measure(const predict::WorkloadModel& wl,
                         const VariabilityConfig& variability,
                         std::uint64_t seed,
                         TablePrinter* table) {
  sched::PipelineConfig cfg;
  cfg.workload = wl;
  cfg.noise.enabled = true;
  cfg.seed = seed;
  cfg.variability = variability;
  sched::HybridPipeline pipe(make_platform("paper_default"), cfg);

  predict::FirstIterationPredictor first(wl);
  predict::EnhancedPredictor enhanced(wl);
  energy::OriginalStrategy original;

  PredictionErrors errs;
  errs.iters = pipe.num_iterations();
  for (int k = 0; k < errs.iters; ++k) {
    double pf = 0.0;
    double pe = 0.0;
    if (k >= 1) {
      pf = first.predict(OpKind::TMU, k);
      pe = enhanced.predict(OpKind::TMU, k);
    }
    const sched::IterationOutcome o =
        pipe.run_iteration(k, original.decide(k, pipe));
    const double truth = o.pu_tmu_base_s;
    if (k >= 1 && truth > 0.0) {
      const double ef = std::abs(pf - truth) / truth;
      const double ee = std::abs(pe - truth) / truth;
      errs.first.push_back(ef);
      errs.enhanced.push_back(ee);
      if (k > (2 * errs.iters) / 3) {
        errs.first_late.push_back(ef);
        errs.enhanced_late.push_back(ee);
      }
      if (table != nullptr && k % 4 == 2) {
        table->add_row({std::to_string(k), TablePrinter::pct(ef),
                        TablePrinter::pct(ee)});
      }
    }
    first.record(OpKind::TMU, k, truth);
    enhanced.record(OpKind::TMU, k, truth);
    first.record(OpKind::PD, k, o.pd_base_s);
    enhanced.record(OpKind::PD, k, o.pd_base_s);
  }
  return errs;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  cli.arg_int("n", 30720, "matrix order")
      .arg_int("b", 512, "block (panel) size")
      .arg_int("seed", 42, "noise and variability seed")
      .arg_string("drift", "0,0.01,0.02,0.04",
                  "comma-separated drift amplitudes for the variability "
                  "sweep (per-iteration sigma of the per-device efficiency "
                  "random walk); passing this flag, or a non-table --format, "
                  "selects the sweep mode")
      .arg_string("format", "table", "output: table, csv, or json");
  add_version_flag(cli);
  if (!cli.parse_or_exit(argc, argv)) return 0;
  if (handled_version_flag(cli, "bench_fig08_prediction")) return 0;
  const std::int64_t n = cli.get_int("n");
  const std::int64_t b = cli.get_int("b");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const std::string format = cli.get("format");
  require_result_sink_or_exit(format);
  const predict::WorkloadModel wl{predict::Factorization::LU, n, b, 8};

  if (!cli.has("drift") && format == "table") {
    // -- classic mode: one trace at the calibrated noise model ---------------
    std::printf("== Fig. 8: slack prediction error, LU n=%lld b=%lld ==\n\n",
                static_cast<long long>(n), static_cast<long long>(b));
    TablePrinter t({"iter", "first-iteration err", "enhanced err"});
    const PredictionErrors e = measure(wl, VariabilityConfig{}, seed, &t);
    std::printf("%s\n", t.to_string().c_str());
    std::printf("Average error      : first-iteration %s, enhanced %s\n",
                TablePrinter::pct(e.first_mae()).c_str(),
                TablePrinter::pct(e.enhanced_mae()).c_str());
    std::printf("Late-third average : first-iteration %s, enhanced %s\n",
                TablePrinter::pct(stats::mean(e.first_late)).c_str(),
                TablePrinter::pct(stats::mean(e.enhanced_late)).c_str());
    std::printf(
        "(paper: ~11.4%% late-run average vs ~4%% with enhanced prediction)\n");
    return 0;
  }

  // -- drift sweep: prediction error vs efficiency-drift amplitude -----------
  const std::vector<double> drifts = parse_double_list_or_exit(
      "drift", cli.get("drift"), 0.0, "an amplitude >= 0", "0,0.01,0.02,0.04");
  std::vector<PredictionErrors> results;
  results.reserve(drifts.size());
  for (const double a : drifts) {
    VariabilityConfig v;
    v.enabled = true;
    v.drift = a;
    results.push_back(measure(wl, v, seed, nullptr));
  }

  if (format != "table") {
    auto sink = make_result_sink(format, stdout_stream());
    sink->begin({"drift", "n", "iters", "first_mae", "enhanced_mae",
                 "first_late_mae", "enhanced_late_mae"});
    for (std::size_t i = 0; i < drifts.size(); ++i) {
      const PredictionErrors& e = results[i];
      sink->add_row({TablePrinter::num(drifts[i]), std::to_string(n),
                     std::to_string(e.iters),
                     TablePrinter::num(e.first_mae()),
                     TablePrinter::num(e.enhanced_mae()),
                     TablePrinter::num(stats::mean(e.first_late)),
                     TablePrinter::num(stats::mean(e.enhanced_late))});
    }
    sink->end();
    return 0;
  }

  std::printf(
      "== Fig. 8 (drift sweep): prediction MAE vs drift amplitude, "
      "LU n=%lld b=%lld seed=%llu ==\n\n",
      static_cast<long long>(n), static_cast<long long>(b),
      static_cast<unsigned long long>(seed));
  TablePrinter t({"drift", "first-iteration MAE", "enhanced MAE",
                  "first late-third", "enhanced late-third"});
  for (std::size_t i = 0; i < drifts.size(); ++i) {
    const PredictionErrors& e = results[i];
    t.add_row({TablePrinter::num(drifts[i]), TablePrinter::pct(e.first_mae()),
               TablePrinter::pct(e.enhanced_mae()),
               TablePrinter::pct(stats::mean(e.first_late)),
               TablePrinter::pct(stats::mean(e.enhanced_late))});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "(the paper's direction: enhanced stays calibrated under drift while\n"
      " first-iteration profiling accumulates the walk's excursion)\n");
  return 0;
}
