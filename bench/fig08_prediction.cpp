// Reproduces paper Fig. 8: relative online slack-prediction error of the
// first-iteration (GreenLA) approach vs the enhanced online-calibration
// approach across the LU decomposition.
#include <cmath>
#include <cstdio>

#include "bsr/bsr.hpp"
#include "energy/baselines.hpp"
#include "predict/slack_predictor.hpp"

using namespace bsr;
using predict::OpKind;

int main(int argc, char** argv) {
  Cli cli;
  cli.arg_int("n", 30720, "matrix order")
      .arg_int("b", 512, "block (panel) size")
      .arg_int("seed", 42, "noise seed");
  if (!cli.parse_or_exit(argc, argv)) return 0;
  const std::int64_t n = cli.get_int("n");
  const std::int64_t b = cli.get_int("b");

  // Drive the pipeline with the Original strategy (base clocks) and feed both
  // predictors the same measured profiles; compare their one-step-ahead
  // prediction of the GPU task (the slack driver) against the measurement.
  // This bench exercises the pipeline internals directly (sched/, predict/),
  // below the stable bsr/ facade.
  const predict::WorkloadModel wl{predict::Factorization::LU, n, b, 8};
  sched::PipelineConfig cfg;
  cfg.workload = wl;
  cfg.noise.enabled = true;
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  sched::HybridPipeline pipe(make_platform("paper_default"), cfg);

  predict::FirstIterationPredictor first(wl);
  predict::EnhancedPredictor enhanced(wl);
  energy::OriginalStrategy original;

  std::printf("== Fig. 8: slack prediction error, LU n=%lld b=%lld ==\n\n",
              static_cast<long long>(n), static_cast<long long>(b));
  TablePrinter t({"iter", "first-iteration err", "enhanced err"});
  std::vector<double> first_errs;
  std::vector<double> enhanced_errs;
  std::vector<double> first_late;
  std::vector<double> enhanced_late;
  const int iters = pipe.num_iterations();
  for (int k = 0; k < iters; ++k) {
    if (k >= 1) {
      const double pf = first.predict(OpKind::TMU, k);
      const double pe = enhanced.predict(OpKind::TMU, k);
      const sched::IterationOutcome o =
          pipe.run_iteration(k, original.decide(k, pipe));
      const double truth = o.pu_tmu_base_s;
      if (truth > 0.0) {
        const double ef = std::abs(pf - truth) / truth;
        const double ee = std::abs(pe - truth) / truth;
        first_errs.push_back(ef);
        enhanced_errs.push_back(ee);
        if (k > (2 * iters) / 3) {
          first_late.push_back(ef);
          enhanced_late.push_back(ee);
        }
        if (k % 4 == 2) {
          t.add_row({std::to_string(k), TablePrinter::pct(ef),
                     TablePrinter::pct(ee)});
        }
      }
      first.record(OpKind::TMU, k, truth);
      enhanced.record(OpKind::TMU, k, truth);
      first.record(OpKind::PD, k, o.pd_base_s);
      enhanced.record(OpKind::PD, k, o.pd_base_s);
    } else {
      const sched::IterationOutcome o =
          pipe.run_iteration(k, original.decide(k, pipe));
      first.record(OpKind::TMU, k, o.pu_tmu_base_s);
      enhanced.record(OpKind::TMU, k, o.pu_tmu_base_s);
      first.record(OpKind::PD, k, o.pd_base_s);
      enhanced.record(OpKind::PD, k, o.pd_base_s);
    }
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("Average error      : first-iteration %s, enhanced %s\n",
              TablePrinter::pct(stats::mean(first_errs)).c_str(),
              TablePrinter::pct(stats::mean(enhanced_errs)).c_str());
  std::printf("Late-third average : first-iteration %s, enhanced %s\n",
              TablePrinter::pct(stats::mean(first_late)).c_str(),
              TablePrinter::pct(stats::mean(enhanced_late)).c_str());
  std::printf("(paper: ~11.4%% late-run average vs ~4%% with enhanced prediction)\n");
  return 0;
}
