// Ablation study: which ingredient buys BSR's advantage over SR?
//
// DESIGN.md calls out three design choices beyond single-directional slack
// reclamation: (1) the optimized voltage guardband (power reduction factor
// alpha < 1 on both devices), (2) ABFT-protected overclocking of the
// critical path, (3) the enhanced slack predictor. Each column disables one
// of them; "DVFS only" disables guardband *and* overclocking, which reduces
// BSR to a bi-directional-DVFS variant of SR.
#include <cstdio>

#include "bsr/bsr.hpp"

using namespace bsr;

int main(int argc, char** argv) {
  Cli cli;
  cli.arg_int("n", 30720, "matrix order")
      .arg_double("r", 0.25, "BSR reclamation ratio");
  add_list_flag(cli);
  add_version_flag(cli);
  if (!cli.parse_or_exit(argc, argv)) return 0;
  if (handled_list_flag(cli)) return 0;
  if (handled_version_flag(cli, "bench_ablation")) return 0;
  const std::int64_t n = cli.get_int("n");
  const double r = cli.get_double("r");

  std::printf("== Ablation: BSR component contributions (n=%lld, r=%.2f) ==\n\n",
              static_cast<long long>(n), r);

  RunConfig base;
  base.n = n;
  base.b = 0;  // auto-tune
  base.strategy = "bsr";
  base.reclamation_ratio = r;

  Axis variants{"variant", {}};
  variants.points.push_back(
      {"SR (baseline)", [](RunConfig& c) { c.strategy = "sr"; }});
  variants.points.push_back({"BSR (full)", [](RunConfig&) {}});
  variants.points.push_back({"- guardband", [](RunConfig& c) {
                               c.bsr_use_optimized_guardband = false;
                             }});
  variants.points.push_back({"- overclocking", [](RunConfig& c) {
                               c.bsr_allow_overclocking = false;
                             }});
  variants.points.push_back({"- enhanced pred.", [](RunConfig& c) {
                               c.bsr_use_enhanced_predictor = false;
                             }});
  variants.points.push_back({"DVFS only", [](RunConfig& c) {
                               c.bsr_use_optimized_guardband = false;
                               c.bsr_allow_overclocking = false;
                             }});

  const SweepResult grid =
      Sweep(base)
          .over(factorization_axis({Factorization::Cholesky, Factorization::LU,
                                    Factorization::QR}))
          .over(variants)
          .baseline("original")
          .run();

  for (auto f : {predict::Factorization::Cholesky, predict::Factorization::LU,
                 predict::Factorization::QR}) {
    TablePrinter t({"Variant", "energy (J)", "saving vs Org", "speedup"});
    for (const SweepRow* row : grid.where("factorization", predict::to_string(f))) {
      t.add_row({row->coords.at("variant"),
                 TablePrinter::fmt(row->report->total_energy_j(), 0),
                 TablePrinter::pct(row->energy_saving()),
                 TablePrinter::fmt(row->speedup(), 2) + "x"});
    }
    std::printf("-- %s --\n%s\n", predict::to_string(f), t.to_string().c_str());
  }
  return 0;
}
