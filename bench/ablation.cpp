// Ablation study: which ingredient buys BSR's advantage over SR?
//
// DESIGN.md calls out three design choices beyond single-directional slack
// reclamation: (1) the optimized voltage guardband (power reduction factor
// alpha < 1 on both devices), (2) ABFT-protected overclocking of the
// critical path, (3) the enhanced slack predictor. Each column disables one
// of them; "DVFS only" disables guardband *and* overclocking, which reduces
// BSR to a bi-directional-DVFS variant of SR.
#include <cstdio>

#include "common/cli.hpp"
#include "common/table_printer.hpp"
#include "core/decomposer.hpp"

using namespace bsr;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const std::int64_t n = cli.get_int("n", 30720);
  const double r = cli.get_double("r", 0.25);
  const core::Decomposer dec;

  std::printf("== Ablation: BSR component contributions (n=%lld, r=%.2f) ==\n\n",
              static_cast<long long>(n), r);
  for (auto f : {predict::Factorization::Cholesky, predict::Factorization::LU,
                 predict::Factorization::QR}) {
    core::RunOptions o;
    o.factorization = f;
    o.n = n;
    o.b = core::tuned_block(n);
    o.strategy = core::StrategyKind::Original;
    const core::RunReport org = dec.run(o);
    o.strategy = core::StrategyKind::SR;
    const core::RunReport sr = dec.run(o);

    o.strategy = core::StrategyKind::BSR;
    o.reclamation_ratio = r;

    struct Variant {
      const char* name;
      core::ExtendedOptions ext;
    };
    std::vector<Variant> variants;
    variants.push_back({"BSR (full)", {}});
    {
      core::ExtendedOptions e;
      e.bsr_use_optimized_guardband = false;
      variants.push_back({"- guardband", e});
    }
    {
      core::ExtendedOptions e;
      e.bsr_allow_overclocking = false;
      variants.push_back({"- overclocking", e});
    }
    {
      core::ExtendedOptions e;
      e.bsr_use_enhanced_predictor = false;
      variants.push_back({"- enhanced pred.", e});
    }
    {
      core::ExtendedOptions e;
      e.bsr_use_optimized_guardband = false;
      e.bsr_allow_overclocking = false;
      variants.push_back({"DVFS only", e});
    }

    TablePrinter t({"Variant", "energy (J)", "saving vs Org", "speedup"});
    t.add_row({"SR (baseline)", TablePrinter::fmt(sr.total_energy_j(), 0),
               TablePrinter::pct(sr.energy_saving_vs(org)),
               TablePrinter::fmt(sr.speedup_vs(org), 2) + "x"});
    for (const auto& v : variants) {
      const core::RunReport rep = dec.run(o, v.ext);
      t.add_row({v.name, TablePrinter::fmt(rep.total_energy_j(), 0),
                 TablePrinter::pct(rep.energy_saving_vs(org)),
                 TablePrinter::fmt(rep.speedup_vs(org), 2) + "x"});
    }
    std::printf("-- %s --\n%s\n", predict::to_string(f), t.to_string().c_str());
  }
  return 0;
}
