// Reproduces paper Fig. 5: hardware profiling of the simulated platform.
//  (a) GPU energy efficiency vs clock, default vs optimized guardband, plus
//      the power reduction factor alpha(f);
//  (b) GPU SDC error rates vs clock (0D / 1D / 2D);
//  (c) CPU energy efficiency vs clock, both guardbands;
//  (d,e) maximum sustained core temperature vs clock, both guardbands.
#include <cstdio>

#include "bsr/bsr.hpp"

using namespace bsr;
using hw::Guardband;

namespace {

void efficiency_table(const hw::DeviceModel& dev, const char* label) {
  std::printf("-- %s energy efficiency (GFLOP/s per Watt, BLAS-3 kernel) --\n",
              label);
  TablePrinter t({"MHz", "default gb", "optimized gb", "alpha(f)", "SDC rate/s"});
  for (hw::Mhz f = dev.freq.min_mhz; f <= dev.freq.max_oc_mhz;
       f += dev.freq.step_mhz) {
    const bool reachable_default = f <= dev.freq.max_default_mhz;
    const double eff_def =
        reachable_default ? dev.efficiency_gflops_per_watt(f, Guardband::Default)
                          : 0.0;
    const double eff_opt = dev.efficiency_gflops_per_watt(f, Guardband::Optimized);
    const double alpha = dev.guardband.alpha(f, Guardband::Optimized, dev.freq);
    const double sdc = dev.errors.rates(f, Guardband::Optimized).total();
    t.add_row({std::to_string(f),
               reachable_default ? TablePrinter::fmt(eff_def, 3) : "n/a",
               TablePrinter::fmt(eff_opt, 3), TablePrinter::fmt(alpha, 3),
               sdc > 0 ? TablePrinter::fmt(sdc, 4) : "0 (fault-free)"});
  }
  std::printf("%s\n", t.to_string().c_str());
}

void thermal_table(const hw::DeviceModel& dev, const char* label) {
  std::printf("-- %s maximum sustained core temperature (C) --\n", label);
  TablePrinter t({"MHz", "default gb", "optimized gb"});
  for (hw::Mhz f = dev.freq.min_mhz; f <= dev.freq.max_oc_mhz;
       f += 2 * dev.freq.step_mhz) {
    const double td = dev.thermal.max_sustained_temp(f, Guardband::Default,
                                                     dev.power, dev.guardband,
                                                     dev.freq);
    const double to = dev.thermal.max_sustained_temp(f, Guardband::Optimized,
                                                     dev.power, dev.guardband,
                                                     dev.freq);
    t.add_row({std::to_string(f), TablePrinter::fmt(td, 1),
               TablePrinter::fmt(to, 1)});
  }
  std::printf("%s\n", t.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  cli.arg_string("platform", "paper_default",
                 "platform profile (bsr::platforms() registry key)");
  add_version_flag(cli);
  if (!cli.parse_or_exit(argc, argv)) return 0;
  if (handled_version_flag(cli, "bench_fig05_profiling")) return 0;
  const auto p = make_platform(cli.get("platform"));
  std::printf("== Fig. 5: profiling of the simulated CPU and GPU ==\n\n");
  efficiency_table(p.gpu, "GPU (a,b)");
  efficiency_table(p.cpu, "CPU (c)");
  thermal_table(p.gpu, "GPU (d)");
  thermal_table(p.cpu, "CPU (e)");
  std::printf("GPU fault-free overclocking limit: %d MHz\n",
              p.gpu.fault_free_max());
  return 0;
}
