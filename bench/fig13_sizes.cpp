// Reproduces paper Fig. 13: overall energy saving of LU vs input matrix size,
// with the block size tuned per size as in the paper. The size x strategy
// grid runs through bsr::Sweep (one cached Original baseline per size);
// --format=csv|json dumps the grid through a ResultSink.
#include <cstdio>
#include <stdexcept>

#include "bsr/bsr.hpp"

using namespace bsr;

int main(int argc, char** argv) {
  Cli cli;
  cli.arg_int("devices", 0,
              "accelerator count: 0 = classic single-node CPU+GPU pipeline, "
              ">= 1 = event-driven cluster engine")
      .arg_string("cluster", "paper_cluster",
                  "cluster profile registry key (used when --devices >= 1)")
      .arg_string("format", "table", "output: table, csv, or json");
  add_variability_flags(cli);
  add_list_flag(cli);
  add_trace_flag(cli);
  add_version_flag(cli);
  if (!cli.parse_or_exit(argc, argv)) return 0;
  if (handled_list_flag(cli)) return 0;
  if (handled_version_flag(cli, "bench_fig13_sizes")) return 0;
  const std::string format = cli.get("format");
  require_result_sink_or_exit(format);

  RunConfig base;
  base.devices = static_cast<int>(cli.get_int("devices"));
  base.cluster = cli.get("cluster");
  apply_variability_flags_or_exit(cli, base);

  const std::vector<std::int64_t> sizes = {5120,  10240, 15360,
                                           20480, 25600, 30720};
  SweepResult grid;
  try {
    grid = Sweep(base)
               .over(size_axis(sizes))  // retunes b per size
               .over(strategy_axis({"r2h", "sr", "bsr"}))
               .baseline("original")
               .run();
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  // --trace re-runs the smallest size's BSR cell with a recorder attached;
  // the recorded run is byte-identical to the grid's cached one.
  if (const std::string tpath = trace_path(cli); !tpath.empty()) {
    RunConfig traced = base;
    traced.n = sizes.front();
    traced.b = 0;  // auto-tune, matching size_axis
    traced.strategy = "bsr";
    try {
      run_traced(traced, tpath, "bench_fig13_sizes");
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
    std::fprintf(stderr, "trace: wrote %s\n", tpath.c_str());
  }

  if (format != "table") {
    emit(grid, *make_result_sink(format, stdout_stream()));
    return 0;
  }

  std::printf("== Fig. 13: LU energy saving vs matrix size ==\n\n");
  TablePrinter t({"n", "block", "R2H", "SR", "BSR (ours)"});
  for (const std::int64_t n : sizes) {
    const std::string ns = std::to_string(n);
    const auto& r2h = grid.at({{"n", ns}, {"strategy", "r2h"}});
    const auto& sr = grid.at({{"n", ns}, {"strategy", "sr"}});
    const auto& bsr = grid.at({{"n", ns}, {"strategy", "bsr"}});
    t.add_row({ns, std::to_string(r2h.config.block()),
               TablePrinter::pct(r2h.energy_saving()),
               TablePrinter::pct(sr.energy_saving()),
               TablePrinter::pct(bsr.energy_saving())});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "(paper: BSR saves stably from 5120 up; small matrices are harder —\n"
      " short slacks relative to the DVFS latency limit what is reclaimable)\n");
  return 0;
}
