// Reproduces paper Fig. 13: overall energy saving of LU vs input matrix size,
// with the block size tuned per size as in the paper.
#include <cstdio>

#include "common/cli.hpp"
#include "common/table_printer.hpp"
#include "core/decomposer.hpp"

using namespace bsr;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const core::Decomposer dec;

  std::printf("== Fig. 13: LU energy saving vs matrix size ==\n\n");
  TablePrinter t({"n", "block", "R2H", "SR", "BSR (ours)"});
  for (std::int64_t n : {5120, 10240, 15360, 20480, 25600, 30720}) {
    core::RunOptions o;
    o.n = n;
    o.b = core::tuned_block(n);
    o.strategy = core::StrategyKind::Original;
    const core::RunReport org = dec.run(o);
    o.strategy = core::StrategyKind::R2H;
    const core::RunReport r2h = dec.run(o);
    o.strategy = core::StrategyKind::SR;
    const core::RunReport sr = dec.run(o);
    o.strategy = core::StrategyKind::BSR;
    const core::RunReport bsr = dec.run(o);
    t.add_row({std::to_string(n), std::to_string(o.b),
               TablePrinter::pct(r2h.energy_saving_vs(org)),
               TablePrinter::pct(sr.energy_saving_vs(org)),
               TablePrinter::pct(bsr.energy_saving_vs(org))});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "(paper: BSR saves stably from 5120 up; small matrices are harder —\n"
      " short slacks relative to the DVFS latency limit what is reclaimable)\n");
  return 0;
}
