// Fig. 14 (beyond the paper): strong and weak scaling of the energy
// strategies over 1-8 GPUs on the event-driven cluster engine.
//
// The paper evaluates BSR on exactly one CPU+GPU pair; its slack-reclamation
// model is per-device-pair and nothing in it is limited to two devices
// (ISSUE 3). This driver stresses that claim at cluster scale: the same
// factorization distributed block-cyclically over N replicated paper GPUs,
// swept through bsr::Sweep.
//
//   strong scaling: fixed n, devices in {1, 2, 4, 8};
//   weak scaling:   n grows as devices^(1/3), constant flops per device.
//
// --format=csv|json emits one machine-readable result set with a `device`
// column: per-device rows ("host", "gpu0", ...) plus a "total" row per cell,
// so per-device and total energy/time/ED2P flow through every ResultSink.
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "bsr/bsr.hpp"

using namespace bsr;

namespace {

/// Fail-fast parser for --devices (common/cli.hpp list helper): a bad token
/// names itself and exits 2 instead of escaping as std::terminate. The 4096
/// ceiling matches RunConfig::validate() and keeps the int cast exact.
std::vector<int> parse_counts_or_exit(const std::string& csv) {
  std::vector<int> out;
  for (const long long v : parse_int_list_or_exit(
           "devices", csv, 1, 4096, "a GPU count in [1, 4096]", "1,2,4,8")) {
    out.push_back(static_cast<int>(v));
  }
  return out;
}

/// One scaling curve: pointers into the single sweep's rows, in GPU-count
/// order, with the device count recovered from each cell label.
struct Curve {
  const char* scaling;
  std::vector<const SweepRow*> rows;
  std::vector<int> counts;
};

/// Emits per-device rows plus a total row for every cell of the curve.
void emit_device_rows(const Curve& curve, ResultSink& sink) {
  for (std::size_t i = 0; i < curve.rows.size(); ++i) {
    const core::RunReport& r = *curve.rows[i]->report;
    const std::string devices = std::to_string(curve.counts[i]);
    const std::string n = std::to_string(r.options.n);
    int gpu = 0;
    for (const DeviceUsage& d : r.device_usage) {
      const bool host = &d == &r.device_usage.front();
      const double t = d.busy_s + d.idle_s + d.dvfs_s;
      sink.add_row({curve.scaling, devices, n,
                    host ? "host" : "gpu" + std::to_string(gpu++),
                    TablePrinter::num(t), TablePrinter::num(d.energy_j),
                    TablePrinter::num(d.ed2p()),
                    TablePrinter::num(d.gflops())});
    }
    sink.add_row({curve.scaling, devices, n, "total",
                  TablePrinter::num(r.seconds()),
                  TablePrinter::num(r.total_energy_j()),
                  TablePrinter::num(r.ed2p()), TablePrinter::num(r.gflops())});
  }
}

void print_totals_table(const Curve& curve, const char* title) {
  TablePrinter t({"GPUs", "n", "Time (s)", "Energy (J)", "ED2P",
                  "GFLOP/s", "Speedup", "Efficiency"});
  const core::RunReport& first = *curve.rows.front()->report;
  for (std::size_t i = 0; i < curve.rows.size(); ++i) {
    const core::RunReport& r = *curve.rows[i]->report;
    // Weak-scaling cells grow n, so speedup is work-scaled ("scaled
    // speedup"); for strong scaling the flops ratio is exactly 1.
    const double speedup = first.seconds() / r.seconds() *
                           r.options.workload().total_flops() /
                           first.options.workload().total_flops();
    char sp[32];
    std::snprintf(sp, sizeof(sp), "%.2fx", speedup);
    // Efficiency relative to the curve's own base point: speedup per
    // *added* device scaling, so a curve starting at 2 GPUs reads 100%.
    const double scale = static_cast<double>(curve.counts[i]) /
                         static_cast<double>(curve.counts.front());
    t.add_row({std::to_string(curve.counts[i]), std::to_string(r.options.n),
               TablePrinter::num(r.seconds()),
               TablePrinter::num(r.total_energy_j()),
               TablePrinter::num(r.ed2p()), TablePrinter::num(r.gflops()), sp,
               TablePrinter::pct(speedup / scale)});
  }
  std::printf("-- %s --\n%s\n", title, t.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  cli.arg_int("n", 30720, "matrix order (fixed for strong scaling)")
      .arg_int("b", 0, "block (panel) size; 0 = auto-tune per n "
                       "(weak-scaled cells with grown n always re-tune)")
      .arg_string("strategy", "bsr", "strategy registry key")
      .arg_double("r", 0.0, "BSR reclamation ratio in [0, 1]")
      .arg_string("cluster", "paper_cluster", "cluster profile registry key")
      .arg_string("devices", "1,2,4,8", "comma-separated GPU counts")
      .arg_string("nodes", "",
                  "comma-separated rack node counts; each count runs "
                  "devices = nodes x devices_per_node of --cluster (rack "
                  "profiles only; overrides --devices)")
      .arg_string("grid", "auto",
                  "process grid PxQ (e.g. 4x2; P*Q must equal each device "
                  "count) or auto (near-square on racks, 1-D on flat)")
      .arg_string("collective", "auto",
                  "panel-broadcast schedule registry key (auto, relay, "
                  "ring, tree)")
      .arg_flag("rebalance",
                "re-weight per-device work shares every iteration by "
                "predicted throughput (straggler rebalancing)")
      .arg_string("format", "table", "output: table, csv, or json");
  add_variability_flags(cli);
  add_list_flag(cli);
  add_trace_flag(cli);
  add_version_flag(cli);
  if (!cli.parse_or_exit(argc, argv)) return 0;
  if (handled_list_flag(cli)) return 0;
  if (handled_version_flag(cli, "bench_fig14_scale")) return 0;
  const std::string format = cli.get("format");
  require_result_sink_or_exit(format);
  const std::int64_t n = cli.get_int("n");

  RunConfig base;
  base.n = n;
  base.b = cli.get_int("b");
  base.strategy = cli.get("strategy");
  base.reclamation_ratio = cli.get_double("r");
  base.cluster = cli.get("cluster");
  base.collective = cli.get("collective");
  base.rebalance = cli.get_bool("rebalance");
  if (const std::string grid = cli.get("grid"); grid != "auto") {
    int p = 0;
    int q = 0;
    char tail = '\0';
    if (std::sscanf(grid.c_str(), "%dx%d%c", &p, &q, &tail) != 2 || p < 1 ||
        q < 1) {
      std::fprintf(stderr,
                   "error: --grid wants PxQ with positive integers (e.g. "
                   "4x2) or auto; got \"%s\"\n",
                   grid.c_str());
      return 2;
    }
    base.grid_p = p;
    base.grid_q = q;
  }
  apply_variability_flags_or_exit(cli, base);

  // --nodes axes run whole rack chassis: each count lowers to
  // nodes x devices_per_node accelerators of the profile. Flat profiles
  // have no node size, so the flag fails loudly naming the profile.
  std::vector<int> counts;
  if (const std::string nodes = cli.get("nodes"); !nodes.empty()) {
    const ClusterProfileInfo info = cluster_profile_info(base.cluster);
    if (info.devices_per_node <= 0) {
      std::fprintf(stderr,
                   "error: --nodes needs a rack profile with a per-node "
                   "device count; profile \"%s\" is flat (use --devices)\n",
                   base.cluster.c_str());
      return 2;
    }
    for (const long long v : parse_int_list_or_exit(
             "nodes", nodes, 1, 4096, "a node count in [1, 4096]", "1,2,4")) {
      counts.push_back(static_cast<int>(v) * info.devices_per_node);
    }
  } else {
    counts = parse_counts_or_exit(cli.get("devices"));
  }

  // Both curves run as one grid so the shared result cache executes the
  // 1-GPU cell — identical in strong and weak scaling, and the single most
  // expensive simulation — exactly once.
  Axis cells{"cell", {}};
  for (const int g : counts) {
    cells.points.push_back(
        {"strong/" + std::to_string(g), [g](RunConfig& c) { c.devices = g; }});
  }
  for (const AxisPoint& p : weak_devices_axis(counts, n).points) {
    cells.points.push_back({"weak/" + p.label, p.apply});
  }
  SweepResult grid;
  try {
    grid = Sweep(base).over(cells).run();
  } catch (const std::invalid_argument& e) {
    // Cell validation failures (--r 2, unknown --strategy / --cluster) fail
    // loudly, in the same style as Cli::parse_or_exit.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  // --trace re-runs the first strong-scaling cell (smallest cluster) with a
  // recorder attached; the recorded run is byte-identical to the grid's.
  if (const std::string tpath = trace_path(cli); !tpath.empty()) {
    RunConfig traced = base;
    traced.devices = counts.front();
    try {
      run_traced(traced, tpath, "bench_fig14_scale");
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
    std::fprintf(stderr, "trace: wrote %s\n", tpath.c_str());
  }

  Curve strong{"strong", {}, counts};
  Curve weak{"weak", {}, counts};
  for (std::size_t i = 0; i < counts.size(); ++i) {
    strong.rows.push_back(&grid.rows[i]);
    weak.rows.push_back(&grid.rows[counts.size() + i]);
  }

  if (format != "table") {
    auto sink = make_result_sink(format, stdout_stream());
    sink->begin({"scaling", "devices", "n", "device", "time_s", "energy_j",
                 "ed2p", "gflops"});
    emit_device_rows(strong, *sink);
    emit_device_rows(weak, *sink);
    sink->end();
    return 0;
  }

  std::printf(
      "== Fig. 14: strong / weak scaling, %s on %s, base n=%lld ==\n\n",
      base.strategy.c_str(), base.cluster.c_str(), static_cast<long long>(n));
  print_totals_table(strong, "strong scaling (fixed n)");
  print_totals_table(weak, "weak scaling (constant flops per GPU)");

  // Per-device breakdown of the largest strong-scaling cell.
  const SweepRow& big = *strong.rows.back();
  TablePrinter t({"Device", "Busy (s)", "Idle (s)", "Energy (J)", "GFLOP/s",
                  "Final MHz", "ABFT iters"});
  for (const DeviceUsage& d : big.report->device_usage) {
    t.add_row({d.name, TablePrinter::num(d.busy_s),
               TablePrinter::num(d.idle_s), TablePrinter::num(d.energy_j),
               TablePrinter::num(d.gflops()), std::to_string(d.final_mhz),
               std::to_string(d.iters_single + d.iters_full)});
  }
  std::printf("-- per-device breakdown, %d GPUs (strong) --\n%s\n",
              counts.back(), t.to_string().c_str());
  std::printf("sweep: %zu unique runs for %zu requested, %.1f ms\n",
              grid.unique_runs, grid.requested_runs, grid.wall_seconds * 1e3);
  return 0;
}
