// Reproduces paper Fig. 2: per-iteration slack length while decomposing a
// 30720 x 30720 matrix (double and single precision), Original schedule.
// Positive values = slack on the CPU side, negative = GPU side.
#include <cstdio>

#include "common/cli.hpp"
#include "common/table_printer.hpp"
#include "core/decomposer.hpp"

using namespace bsr;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const std::int64_t n = cli.get_int("n", 30720);
  const std::int64_t b = cli.get_int("b", core::tuned_block(n));

  std::printf("== Fig. 2: slack per iteration (n=%lld, b=%lld, Original)\n",
              static_cast<long long>(n), static_cast<long long>(b));
  std::printf("   positive = CPU-side slack, negative = GPU-side slack\n\n");

  const core::Decomposer dec;
  for (int elem_bytes : {8, 4}) {
    TablePrinter table({"iter", "Cholesky (ms)", "LU (ms)", "QR (ms)"});
    std::vector<std::vector<double>> series;
    for (auto f : {predict::Factorization::Cholesky, predict::Factorization::LU,
                   predict::Factorization::QR}) {
      core::RunOptions o;
      o.factorization = f;
      o.n = n;
      o.b = b;
      o.strategy = core::StrategyKind::Original;
      o.elem_bytes = elem_bytes;
      series.push_back(dec.run(o).trace.slack_seconds());
    }
    const int iters = static_cast<int>(series[0].size());
    const int stride = iters > 20 ? iters / 20 : 1;
    for (int k = 0; k < iters; k += stride) {
      table.add_row({std::to_string(k), TablePrinter::fmt(series[0][k] * 1e3, 1),
                     TablePrinter::fmt(series[1][k] * 1e3, 1),
                     TablePrinter::fmt(series[2][k] * 1e3, 1)});
    }
    std::printf("-- %s precision --\n", elem_bytes == 8 ? "Double" : "Single");
    std::printf("%s\n", table.to_string().c_str());
    // The headline shape: slack starts on the CPU side and flips late.
    for (std::size_t s = 0; s < series.size(); ++s) {
      int flip = -1;
      for (std::size_t k = 1; k + 1 < series[s].size(); ++k) {
        if (series[s][k] > 0 && series[s][k + 1] < 0) {
          flip = static_cast<int>(k + 1);
        }
      }
      std::printf("   %-8s crossover at iteration %d of %d\n",
                  predict::to_string(static_cast<predict::Factorization>(s)),
                  flip, iters);
    }
    std::printf("\n");
  }
  return 0;
}
