// Reproduces paper Fig. 2: per-iteration slack length while decomposing a
// 30720 x 30720 matrix (double and single precision), Original schedule.
// Positive values = slack on the CPU side, negative = GPU side.
#include <cstdio>
#include <vector>

#include "bsr/bsr.hpp"

using namespace bsr;

int main(int argc, char** argv) {
  Cli cli;
  cli.arg_int("n", 30720, "matrix order")
      .arg_int("b", 0, "block (panel) size (0 = auto-tune)");
  add_variability_flags(cli);
  add_version_flag(cli);
  if (!cli.parse_or_exit(argc, argv)) return 0;
  if (handled_version_flag(cli, "bench_fig02_slack")) return 0;
  const std::int64_t n = cli.get_int("n");

  RunConfig base;
  base.n = n;
  base.b = cli.get_int("b");
  base.strategy = "original";
  apply_variability_flags_or_exit(cli, base);

  std::printf("== Fig. 2: slack per iteration (n=%lld, b=%lld, Original)\n",
              static_cast<long long>(n), static_cast<long long>(base.block()));
  std::printf("   positive = CPU-side slack, negative = GPU-side slack\n\n");

  const SweepResult grid =
      Sweep(base)
          .over(precision_axis({8, 4}))
          .over(factorization_axis({Factorization::Cholesky, Factorization::LU,
                                    Factorization::QR}))
          .run();

  for (const char* precision : {"double", "single"}) {
    TablePrinter table({"iter", "Cholesky (ms)", "LU (ms)", "QR (ms)"});
    std::vector<std::vector<double>> series;
    for (const SweepRow* row : grid.where("precision", precision)) {
      series.push_back(row->report->trace.slack_seconds());
    }
    const int iters = static_cast<int>(series[0].size());
    const int stride = iters > 20 ? iters / 20 : 1;
    for (int k = 0; k < iters; k += stride) {
      table.add_row({std::to_string(k), TablePrinter::fmt(series[0][k] * 1e3, 1),
                     TablePrinter::fmt(series[1][k] * 1e3, 1),
                     TablePrinter::fmt(series[2][k] * 1e3, 1)});
    }
    std::printf("-- %s precision --\n", precision[0] == 'd' ? "Double" : "Single");
    std::printf("%s\n", table.to_string().c_str());
    // The headline shape: slack starts on the CPU side and flips late.
    for (std::size_t s = 0; s < series.size(); ++s) {
      int flip = -1;
      for (std::size_t k = 1; k + 1 < series[s].size(); ++k) {
        if (series[s][k] > 0 && series[s][k + 1] < 0) {
          flip = static_cast<int>(k + 1);
        }
      }
      std::printf("   %-8s crossover at iteration %d of %d\n",
                  predict::to_string(static_cast<predict::Factorization>(s)),
                  flip, iters);
    }
    std::printf("\n");
  }
  return 0;
}
