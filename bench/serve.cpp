// Load generator for the serving subsystem (bsr/serve.hpp): drives a
// bsr_served instance with a configurable request mix and reports QPS plus
// client-observed latency percentiles per scenario.
//
// Each --repeats entry is one scenario: a repeat ratio R maps to a pool of
// round(requests * (1 - R)) unique configurations (distinct seeds, identical
// cost), and the request schedule — first occurrence of every pool config
// plus repeats drawn uniformly — is shuffled deterministically so cold
// executions, memory hits, and coalesced flights interleave the way a shared
// daemon sees them rather than front-loading all the misses. A --stats-share
// fraction of stats ops rides along as the cheap-control-plane part of the
// mix (tallied separately, never in the run percentiles).
//
// By default the daemon runs in-process on an ephemeral localhost TCP port
// (memory-only unless --store names a directory); --port connects to an
// already-running bsr_served instead, in which case scenario seeds are still
// disjoint so a warm external cache cannot turn scenario 2 into a no-op.
//
//   --format=json > BENCH_serve.json   # via tools/perf_gate.py --mode serve
//
// QPS is the gated throughput counter (tools/perf_gate.py); the percentiles
// are committed as informational trajectory, never gated — wall-clock tails
// move with the host, order-of-magnitude QPS collapses do not.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bsr/bsr.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "serve/client.hpp"
#include "serve/report_json.hpp"
#include "serve/server.hpp"

using namespace bsr;

namespace {

/// What one client thread observed: per-request latencies plus the source
/// tags the daemon answered with.
struct ClientTally {
  std::vector<double> latencies_s;
  std::uint64_t executed = 0;
  std::uint64_t memory = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t store = 0;
  std::uint64_t stats_ops = 0;
};

/// One scenario's aggregated result row.
struct ScenarioResult {
  double repeat_ratio = 0.0;
  int pool_size = 0;
  ClientTally total;
  double wall_s = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  [[nodiscard]] std::uint64_t run_requests() const {
    return total.executed + total.memory + total.coalesced + total.store;
  }
  [[nodiscard]] double qps() const {
    return wall_s > 0.0 ? static_cast<double>(run_requests()) / wall_s : 0.0;
  }
};

/// The serialized "config" objects of one scenario's pool: the base config
/// with a distinct seed per entry, so every pool member costs the same but
/// fingerprints apart. Scenario seeds are disjoint (see seed_base) so no
/// scenario inherits another's cache entries, in-process or external.
std::vector<std::string> build_pool(const RunConfig& base,
                                    std::uint64_t seed_base, int pool_size) {
  std::vector<std::string> pool;
  pool.reserve(static_cast<std::size_t>(pool_size));
  for (int i = 0; i < pool_size; ++i) {
    RunConfig cfg = base;
    cfg.seed = seed_base + static_cast<std::uint64_t>(i);
    pool.push_back(serve::serialize_config(cfg));
  }
  return pool;
}

/// The shuffled request schedule: indices into the pool, every config
/// appearing at least once, repeats drawn uniformly.
std::vector<int> build_schedule(int requests, int pool_size, Rng& rng) {
  std::vector<int> schedule;
  schedule.reserve(static_cast<std::size_t>(requests));
  for (int i = 0; i < requests; ++i) {
    schedule.push_back(i < pool_size
                           ? i
                           : static_cast<int>(rng.next_below(
                                 static_cast<std::uint64_t>(pool_size))));
  }
  for (std::size_t i = schedule.size(); i > 1; --i) {  // Fisher-Yates
    std::swap(schedule[i - 1], schedule[rng.next_below(i)]);
  }
  return schedule;
}

void tally_source(ClientTally& tally, const std::string& source) {
  if (source == "executed") {
    ++tally.executed;
  } else if (source == "memory") {
    ++tally.memory;
  } else if (source == "coalesced") {
    ++tally.coalesced;
  } else if (source == "store") {
    ++tally.store;
  } else {
    throw std::runtime_error("bench_serve: unknown source tag \"" + source +
                             "\"");
  }
}

/// One client thread: drains the shared schedule through one persistent
/// connection, timing every call.
void client_thread(std::uint16_t port, const std::vector<std::string>& pool,
                   const std::vector<int>& schedule, std::atomic<int>& next,
                   double stats_share, std::uint64_t seed, ClientTally& out) {
  serve::Client client = serve::Client::connect_tcp(port);
  Rng rng(seed);
  for (;;) {
    const int k = next.fetch_add(1);
    if (k >= static_cast<int>(schedule.size())) break;
    const auto t0 = std::chrono::steady_clock::now();
    const JsonValue response = client.run(pool[static_cast<std::size_t>(
        schedule[static_cast<std::size_t>(k)])]);
    const auto t1 = std::chrono::steady_clock::now();
    if (!response.at("ok").as_bool()) {
      throw std::runtime_error("bench_serve: daemon refused a run: " +
                               response.at("error").as_string());
    }
    out.latencies_s.push_back(std::chrono::duration<double>(t1 - t0).count());
    tally_source(out, response.at("source").as_string());
    if (rng.next_double() < stats_share) {  // the control-plane slice
      if (!client.stats().at("ok").as_bool()) {
        throw std::runtime_error("bench_serve: stats op failed");
      }
      ++out.stats_ops;
    }
  }
}

ScenarioResult run_scenario(std::uint16_t port, const RunConfig& base,
                            double repeat_ratio, int requests, int clients,
                            double stats_share, std::uint64_t seed_base) {
  ScenarioResult result;
  result.repeat_ratio = repeat_ratio;
  result.pool_size = std::max(
      1, static_cast<int>(
             std::llround(static_cast<double>(requests) * (1 - repeat_ratio))));
  const std::vector<std::string> pool =
      build_pool(base, seed_base, result.pool_size);
  Rng rng(seed_base);
  const std::vector<int> schedule =
      build_schedule(requests, result.pool_size, rng);

  std::atomic<int> next{0};
  std::vector<ClientTally> tallies(static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  const auto wall0 = std::chrono::steady_clock::now();
  for (int i = 0; i < clients; ++i) {
    threads.emplace_back(client_thread, port, std::cref(pool),
                         std::cref(schedule), std::ref(next), stats_share,
                         seed_base + 7919u * static_cast<std::uint64_t>(i + 1),
                         std::ref(tallies[static_cast<std::size_t>(i)]));
  }
  for (std::thread& t : threads) t.join();
  result.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();

  std::vector<double> latencies;
  for (const ClientTally& t : tallies) {
    latencies.insert(latencies.end(), t.latencies_s.begin(),
                     t.latencies_s.end());
    result.total.executed += t.executed;
    result.total.memory += t.memory;
    result.total.coalesced += t.coalesced;
    result.total.store += t.store;
    result.total.stats_ops += t.stats_ops;
  }
  std::sort(latencies.begin(), latencies.end());
  result.p50_ms = stats::percentile(latencies, 0.50) * 1e3;
  result.p95_ms = stats::percentile(latencies, 0.95) * 1e3;
  result.p99_ms = stats::percentile(latencies, 0.99) * 1e3;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  cli.arg_int("requests", 240, "run requests per scenario")
      .arg_int("clients", 4, "concurrent client connections")
      .arg_int("workers", 4, "daemon worker threads (in-process mode)")
      .arg_int("queue-depth", 256,
               "daemon admission-control queue depth (in-process mode)")
      .arg_string("repeats", "0,0.5,0.9",
                  "comma-separated repeat ratios in [0, 1), one scenario each")
      .arg_double("stats-share", 0.05,
                  "fraction of run requests followed by a stats op")
      .arg_int("n", 1024, "matrix order of the benchmark configs")
      .arg_int("b", 128, "block (panel) size of the benchmark configs")
      .arg_int("seed", 1, "base seed; scenarios use disjoint seed ranges")
      .arg_int("port", 0,
               "connect to a running bsr_served on this localhost TCP port "
               "instead of serving in-process (0 = in-process)")
      .arg_string("store", "",
                  "durable store directory for the in-process daemon "
                  "(empty = memory-only)")
      .arg_string("format", "table", "output: table, csv, or json");
  add_version_flag(cli);
  if (!cli.parse_or_exit(argc, argv)) return 0;
  if (handled_version_flag(cli, "bench_serve")) return 0;
  require_result_sink_or_exit(cli.get("format"));
  const int requests =
      static_cast<int>(positive_int_or_exit(cli, "requests", 1000000));
  const int clients =
      static_cast<int>(positive_int_or_exit(cli, "clients", 256));
  const int workers =
      static_cast<int>(positive_int_or_exit(cli, "workers", 256));
  const int queue_depth =
      static_cast<int>(positive_int_or_exit(cli, "queue-depth", 1 << 20));
  const std::uint16_t external_port = static_cast<std::uint16_t>(
      int_flag_in_range_or_exit(cli, "port", 0, 65535));
  const double stats_share = cli.get_double("stats-share");
  std::vector<double> repeats;
  for (const double r : parse_double_list_or_exit(
           "repeats", cli.get("repeats"), 0.0,
           "a repeat ratio in [0, 1)", "0,0.5,0.9")) {
    if (r >= 1.0) {
      std::fprintf(stderr,
                   "error: --repeats: %g is out of range (expected 0 <= r < "
                   "1)\n",
                   r);
      return 2;
    }
    repeats.push_back(r);
  }

  RunConfig base;
  base.n = cli.get_int("n");
  base.b = cli.get_int("b");
  try {
    base.validate();
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  try {
    // In-process daemon unless --port points at a live one. A fresh server
    // per invocation keeps counters and the memory cache scenario-scoped.
    std::unique_ptr<serve::Server> server;
    std::uint16_t port = external_port;
    if (external_port == 0) {
      serve::ServerConfig server_cfg;
      server_cfg.tcp_port = 0;  // ephemeral
      server_cfg.workers = workers;
      server_cfg.queue_depth = queue_depth;
      server_cfg.store_dir = cli.get("store");
      server = std::make_unique<serve::Server>(std::move(server_cfg));
      server->start();
      port = server->port();
    }

    std::vector<ScenarioResult> results;
    for (std::size_t s = 0; s < repeats.size(); ++s) {
      // Disjoint seed blocks: scenario s's pool can never collide with
      // another scenario's fingerprints, even on a long-lived external
      // daemon.
      const std::uint64_t seed_base =
          static_cast<std::uint64_t>(cli.get_int("seed")) +
          (s + 1) * 10'000'000ull;
      results.push_back(run_scenario(port, base, repeats[s], requests,
                                     clients, stats_share, seed_base));
    }
    if (server) server->stop();

    auto sink = make_result_sink(cli.get("format"), stdout_stream());
    sink->begin({"repeat", "requests", "clients", "workers", "unique",
                 "executed", "memory", "coalesced", "store", "stats_ops",
                 "qps", "p50_ms", "p95_ms", "p99_ms"});
    for (const ScenarioResult& r : results) {
      sink->add_row({TablePrinter::num(r.repeat_ratio),
                     std::to_string(r.run_requests()),
                     std::to_string(clients), std::to_string(workers),
                     std::to_string(r.pool_size),
                     std::to_string(r.total.executed),
                     std::to_string(r.total.memory),
                     std::to_string(r.total.coalesced),
                     std::to_string(r.total.store),
                     std::to_string(r.total.stats_ops),
                     TablePrinter::num(r.qps()), TablePrinter::num(r.p50_ms),
                     TablePrinter::num(r.p95_ms), TablePrinter::num(r.p99_ms)});
    }
    sink->end();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
