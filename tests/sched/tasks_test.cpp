#include "sched/tasks.hpp"

#include <gtest/gtest.h>

namespace bsr::sched {
namespace {

hw::PlatformProfile platform() { return hw::PlatformProfile::paper_default(); }

predict::WorkloadModel lu() {
  return {predict::Factorization::LU, 30720, 512, 8};
}

TEST(Tasks, DurationsArePositiveEarly) {
  const TaskDurations d = compute_durations(lu(), 0, platform(), 3500, 1300,
                                            abft::ChecksumMode::None);
  EXPECT_GT(d.pd.ns(), 0);
  EXPECT_GT(d.pu.ns(), 0);
  EXPECT_GT(d.tmu.ns(), 0);
  EXPECT_GT(d.transfer.ns(), 0);
  EXPECT_EQ(d.chk_update, SimTime::zero());
  EXPECT_EQ(d.chk_verify, SimTime::zero());
}

TEST(Tasks, HigherGpuClockShortensGpuTasks) {
  const TaskDurations base = compute_durations(lu(), 0, platform(), 3500, 1300,
                                               abft::ChecksumMode::None);
  const TaskDurations oc = compute_durations(lu(), 0, platform(), 3500, 2200,
                                             abft::ChecksumMode::None);
  EXPECT_LT(oc.tmu, base.tmu);
  EXPECT_LT(oc.pu, base.pu);
  EXPECT_EQ(oc.pd, base.pd);  // CPU unaffected
}

TEST(Tasks, LowerCpuClockStretchesPd) {
  const TaskDurations base = compute_durations(lu(), 0, platform(), 3500, 1300,
                                               abft::ChecksumMode::None);
  const TaskDurations slow = compute_durations(lu(), 0, platform(), 800, 1300,
                                               abft::ChecksumMode::None);
  EXPECT_GT(slow.pd, base.pd);
  EXPECT_EQ(slow.tmu, base.tmu);
}

TEST(Tasks, AbftModesAddIncreasingOverhead) {
  const TaskDurations none = compute_durations(lu(), 5, platform(), 3500, 1300,
                                               abft::ChecksumMode::None);
  const TaskDurations single = compute_durations(
      lu(), 5, platform(), 3500, 1300, abft::ChecksumMode::SingleSide);
  const TaskDurations full = compute_durations(lu(), 5, platform(), 3500, 1300,
                                               abft::ChecksumMode::Full);
  EXPECT_EQ(none.chk_update, SimTime::zero());
  EXPECT_GT(single.chk_update, SimTime::zero());
  EXPECT_GT(full.chk_update, single.chk_update);
  EXPECT_GT(full.chk_verify, single.chk_verify);
}

TEST(Tasks, AbftOverheadIsModestFractionOfGpuWork) {
  // The paper measures ~8% (single) / ~12% (full) overall overhead; per
  // iteration the checksum lane cost must stay a small fraction.
  const TaskDurations full = compute_durations(lu(), 5, platform(), 3500, 1300,
                                               abft::ChecksumMode::Full);
  const double gpu_op = (full.pu + full.tmu).seconds();
  const double abft = (full.chk_update + full.chk_verify).seconds();
  EXPECT_GT(abft / gpu_op, 0.01);
  EXPECT_LT(abft / gpu_op, 0.30);
}

TEST(Tasks, EarlyIterationsAreGpuBound) {
  // Paper Fig. 2 / Fig. 10(a): slack on the CPU side at the start.
  const TaskDurations d = compute_durations(lu(), 1, platform(), 3500, 1300,
                                            abft::ChecksumMode::None);
  EXPECT_GT((d.pu + d.tmu).seconds(), (d.pd + d.transfer).seconds());
}

TEST(Tasks, LateIterationsAreCpuBound) {
  // Paper Fig. 10(b): slack flips to the GPU side near the end.
  const auto wl = lu();
  const int k = wl.num_iterations() - 5;
  const TaskDurations d =
      compute_durations(wl, k, platform(), 3500, 1300, abft::ChecksumMode::None);
  EXPECT_LT((d.pu + d.tmu).seconds(), (d.pd + d.transfer).seconds());
}

TEST(Tasks, DecisionDefaultsAreInert) {
  const IterationDecision d{};
  EXPECT_FALSE(d.adjust_cpu);
  EXPECT_FALSE(d.adjust_gpu);
  EXPECT_EQ(d.abft_mode, abft::ChecksumMode::None);
  EXPECT_EQ(d.cpu_guardband, hw::Guardband::Default);
}

}  // namespace
}  // namespace bsr::sched
