#include "sched/pipeline.hpp"

#include <gtest/gtest.h>

namespace bsr::sched {
namespace {

PipelineConfig config(std::int64_t n = 30720, std::int64_t b = 512,
                      bool noise = false) {
  PipelineConfig c;
  c.workload = {predict::Factorization::LU, n, b, 8};
  c.noise.enabled = noise;
  c.seed = 7;
  return c;
}

IterationDecision base_decision(const hw::PlatformProfile& p) {
  IterationDecision d;
  d.cpu_freq = p.cpu.freq.base_mhz;
  d.gpu_freq = p.gpu.freq.base_mhz;
  d.adjust_cpu = true;
  d.adjust_gpu = true;
  return d;
}

TEST(Pipeline, SpanIsMaxOfLanes) {
  const auto platform = hw::PlatformProfile::paper_default();
  HybridPipeline pipe(platform, config());
  const IterationOutcome o = pipe.run_iteration(0, base_decision(platform));
  EXPECT_EQ(o.span, max(o.cpu_lane, o.gpu_lane));
  EXPECT_EQ(o.slack, o.gpu_lane - o.cpu_lane);
}

TEST(Pipeline, ClockAdvancesBySpan) {
  const auto platform = hw::PlatformProfile::paper_default();
  HybridPipeline pipe(platform, config());
  EXPECT_EQ(pipe.now(), SimTime::zero());
  const IterationOutcome o0 = pipe.run_iteration(0, base_decision(platform));
  EXPECT_EQ(pipe.now(), o0.span);
  const IterationOutcome o1 = pipe.run_iteration(1, base_decision(platform));
  EXPECT_EQ(pipe.now(), o0.span + o1.span);
}

TEST(Pipeline, EnergyMatchesMeter) {
  const auto platform = hw::PlatformProfile::paper_default();
  HybridPipeline pipe(platform, config());
  double sum = 0.0;
  for (int k = 0; k < 10; ++k) {
    sum += pipe.run_iteration(k, base_decision(platform)).energy_j();
  }
  EXPECT_NEAR(pipe.meter().total_joules(), sum, 1e-6);
}

TEST(Pipeline, SlackStartsPositiveFlipsNegative) {
  // Paper Fig. 2: CPU-side slack early, GPU-side slack late.
  const auto platform = hw::PlatformProfile::paper_default();
  HybridPipeline pipe(platform, config());
  std::vector<double> slack;
  for (int k = 0; k < pipe.num_iterations(); ++k) {
    slack.push_back(
        pipe.run_iteration(k, base_decision(platform)).slack.seconds());
  }
  EXPECT_GT(slack[1], 0.0);
  EXPECT_LT(slack[pipe.num_iterations() - 2], 0.0);
  // Exactly one sign change (monotone workload shrink).
  int flips = 0;
  for (std::size_t i = 1; i + 1 < slack.size(); ++i) {
    if ((slack[i] > 0) != (slack[i + 1] > 0)) ++flips;
  }
  EXPECT_EQ(flips, 1);
}

TEST(Pipeline, DvfsLatencyChargedOnChange) {
  const auto platform = hw::PlatformProfile::paper_default();
  HybridPipeline pipe(platform, config());
  pipe.run_iteration(0, base_decision(platform));
  IterationDecision d = base_decision(platform);
  d.gpu_freq = 1000;
  const IterationOutcome o = pipe.run_iteration(1, d);
  EXPECT_EQ(o.gpu_dvfs, platform.gpu.dvfs_latency);
  // Unchanged request is free.
  const IterationOutcome o2 = pipe.run_iteration(2, d);
  EXPECT_EQ(o2.gpu_dvfs, SimTime::zero());
}

TEST(Pipeline, KeepsFrequencyWhenNotAdjusting) {
  const auto platform = hw::PlatformProfile::paper_default();
  HybridPipeline pipe(platform, config());
  IterationDecision d = base_decision(platform);
  d.gpu_freq = 900;
  pipe.run_iteration(0, d);
  EXPECT_EQ(pipe.gpu_freq(), 900);
  IterationDecision keep;  // adjust flags false
  const IterationOutcome o = pipe.run_iteration(1, keep);
  EXPECT_EQ(o.gpu_freq, 900);
}

TEST(Pipeline, HaltIdleReducesEnergy) {
  const auto platform = hw::PlatformProfile::paper_default();
  HybridPipeline a(platform, config());
  HybridPipeline b(platform, config());
  IterationDecision d = base_decision(platform);
  const IterationOutcome oa = a.run_iteration(1, d);
  d.halt_idle_cpu = true;
  d.halt_idle_gpu = true;
  const IterationOutcome ob = b.run_iteration(1, d);
  // Iteration 1 has CPU-side slack -> halting the idle CPU must save energy.
  EXPECT_LT(ob.cpu_energy_j, oa.cpu_energy_j);
  EXPECT_EQ(ob.span, oa.span);  // performance untouched
}

TEST(Pipeline, AbftAddsGpuLaneTimeAndEnergy) {
  const auto platform = hw::PlatformProfile::paper_default();
  HybridPipeline a(platform, config());
  HybridPipeline b(platform, config());
  IterationDecision d = base_decision(platform);
  const IterationOutcome oa = a.run_iteration(0, d);
  d.abft_mode = abft::ChecksumMode::Full;
  const IterationOutcome ob = b.run_iteration(0, d);
  EXPECT_GT(ob.abft_time, SimTime::zero());
  EXPECT_GT(ob.gpu_lane, oa.gpu_lane);
  EXPECT_GT(ob.gpu_energy_j, oa.gpu_energy_j);
}

TEST(Pipeline, OptimizedGuardbandSavesBusyEnergy) {
  const auto platform = hw::PlatformProfile::paper_default();
  HybridPipeline a(platform, config());
  HybridPipeline b(platform, config());
  IterationDecision d = base_decision(platform);
  const IterationOutcome oa = a.run_iteration(0, d);
  d.cpu_guardband = hw::Guardband::Optimized;
  d.gpu_guardband = hw::Guardband::Optimized;
  const IterationOutcome ob = b.run_iteration(0, d);
  EXPECT_LT(ob.gpu_energy_j, oa.gpu_energy_j);
  EXPECT_LT(ob.cpu_energy_j, oa.cpu_energy_j);
  EXPECT_EQ(ob.span, oa.span);
}

TEST(Pipeline, NoiseIsDeterministicPerSeed) {
  const auto platform = hw::PlatformProfile::paper_default();
  HybridPipeline a(platform, config(30720, 512, true));
  HybridPipeline b(platform, config(30720, 512, true));
  for (int k = 0; k < 5; ++k) {
    const auto oa = a.run_iteration(k, base_decision(platform));
    const auto ob = b.run_iteration(k, base_decision(platform));
    ASSERT_EQ(oa.span, ob.span);
    ASSERT_EQ(oa.cpu_energy_j, ob.cpu_energy_j);
  }
}

TEST(Pipeline, NoiseFactorGrowsWithProgress) {
  const auto platform = hw::PlatformProfile::paper_default();
  HybridPipeline pipe(platform, config(30720, 512, true));
  const int last = pipe.num_iterations() - 1;
  EXPECT_GT(pipe.noise_factor(hw::DeviceId::Gpu, last),
            pipe.noise_factor(hw::DeviceId::Gpu, 0));
}

TEST(Pipeline, BaseNormalizedProfilesUndoFrequencyScaling) {
  const auto platform = hw::PlatformProfile::paper_default();
  HybridPipeline a(platform, config());
  HybridPipeline b(platform, config());
  IterationDecision d = base_decision(platform);
  const auto oa = a.run_iteration(0, d);
  d.gpu_freq = 2600;  // clamped to 1300 under default guardband... use opt
  d.gpu_guardband = hw::Guardband::Optimized;
  d.gpu_freq = 2200;
  const auto ob = b.run_iteration(0, d);
  // Normalized GPU profile should agree regardless of the running clock.
  EXPECT_NEAR(oa.pu_tmu_base_s, ob.pu_tmu_base_s, 1e-9);
}

}  // namespace
}  // namespace bsr::sched
