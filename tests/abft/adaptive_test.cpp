#include "abft/adaptive.hpp"

#include <gtest/gtest.h>

#include "abft/coverage.hpp"

namespace bsr::abft {
namespace {

hw::DeviceModel gpu() { return hw::PlatformProfile::paper_default().gpu; }

TEST(AdaptiveAbft, FaultFreeFrequencyDisablesAbft) {
  const AbftDecision d = abft_oc(0.999999, 1700, gpu(), 2.0, 3600);
  EXPECT_EQ(d.mode, ChecksumMode::None);
  EXPECT_EQ(d.freq, 1700);
  EXPECT_DOUBLE_EQ(d.coverage, 1.0);
}

TEST(AdaptiveAbft, BaseClockNeedsNothing) {
  const AbftDecision d = abft_oc(0.999999, 1300, gpu(), 2.0, 3600);
  EXPECT_EQ(d.mode, ChecksumMode::None);
}

TEST(AdaptiveAbft, Mild0DOverclockUsesSingleSide) {
  // 1800-1900 MHz: 0D-only regime, cheap single-side checksums suffice.
  const AbftDecision d = abft_oc(0.999, 1900, gpu(), 1.0, 3600);
  EXPECT_EQ(d.freq, 1900);
  EXPECT_EQ(d.mode, ChecksumMode::SingleSide);
  EXPECT_GE(d.coverage, 0.999);
}

TEST(AdaptiveAbft, D1RegimeRequiresFull) {
  // At 2200 MHz 1D errors appear; single-side cannot reach the target.
  const AbftDecision d = abft_oc(0.99, 2200, gpu(), 1.0, 3600);
  EXPECT_EQ(d.freq, 2200);
  EXPECT_EQ(d.mode, ChecksumMode::Full);
  EXPECT_GE(d.coverage, 0.99);
}

TEST(AdaptiveAbft, ImpossibleTargetLowersFrequency) {
  // Demanding ~certainty with a long exposure: Algorithm 1 walks the clock
  // down until the rates vanish (fault-free), disabling ABFT.
  const AbftDecision d = abft_oc(0.99999999, 2200, gpu(), 1000.0, 3600);
  EXPECT_LE(d.freq, 1700);
  EXPECT_EQ(d.mode, ChecksumMode::None);
}

TEST(AdaptiveAbft, ClampsAboveRangeRequests) {
  const AbftDecision d = abft_oc(0.5, 9999, gpu(), 0.001, 3600);
  EXPECT_LE(d.freq, gpu().freq.max_oc_mhz);
}

TEST(AdaptiveAbft, ShortExposureToleratesHighClock) {
  // Tiny ops accumulate almost no Poisson mass: even 2200 MHz is coverable
  // with single-side at a modest target.
  const AbftDecision d = abft_oc(0.999, 2200, gpu(), 0.001, 3600);
  EXPECT_EQ(d.freq, 2200);
  EXPECT_NE(d.mode, ChecksumMode::None);
}

TEST(AdaptiveAbft, PrefersSingleOverFullWhenBothSuffice) {
  // In the 0D-only regime both schemes cover; Algorithm 1 must pick single.
  const AbftDecision d = abft_oc(0.99, 1800, gpu(), 1.0, 3600);
  EXPECT_EQ(d.mode, ChecksumMode::SingleSide);
}

TEST(AdaptiveAbft, CoverageMonotoneInFrequencyChoice) {
  // The decision's reported coverage always meets the request when ABFT is on.
  for (hw::Mhz f = 1800; f <= 2200; f += 100) {
    const AbftDecision d = abft_oc(0.999, f, gpu(), 0.5, 3600);
    if (d.mode != ChecksumMode::None) {
      EXPECT_GE(d.coverage, 0.999) << f;
    }
  }
}

}  // namespace
}  // namespace bsr::abft
