#include "abft/coverage.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace bsr::abft {
namespace {

TEST(Coverage, FaultFreeIsCertain) {
  const hw::ErrorRates r{};
  EXPECT_DOUBLE_EQ(fc_single(r, 10.0, 3600), 1.0);
  EXPECT_DOUBLE_EQ(fc_full(r, 10.0, 3600), 1.0);
}

TEST(Coverage, Pure0DSingleNearOne) {
  // Only 0D errors; single-side handles them, so coverage limited only by
  // the distinct-block collision probability.
  const hw::ErrorRates r{.d0 = 0.1, .d1 = 0.0, .d2 = 0.0};
  const double fc = fc_single(r, 1.0, 3600);
  EXPECT_GT(fc, 0.9999);
  EXPECT_LT(fc, 1.0);
}

TEST(Coverage, D1ErrorsKillSingleButNotFull) {
  const hw::ErrorRates r{.d0 = 0.0, .d1 = 0.5, .d2 = 0.0};
  const double t = 1.0;
  EXPECT_NEAR(fc_single(r, t, 3600), std::exp(-0.5), 1e-6);
  EXPECT_GT(fc_full(r, t, 3600), 0.999);
}

TEST(Coverage, D2ErrorsKillBoth) {
  const hw::ErrorRates r{.d0 = 0.0, .d1 = 0.0, .d2 = 1.0};
  EXPECT_NEAR(fc_single(r, 2.0, 3600), std::exp(-2.0), 1e-9);
  EXPECT_NEAR(fc_full(r, 2.0, 3600), std::exp(-2.0), 1e-9);
}

TEST(Coverage, FullAlwaysAtLeastSingle) {
  for (double d0 : {0.01, 0.5, 2.0}) {
    for (double d1 : {0.0, 0.05, 0.5}) {
      const hw::ErrorRates r{.d0 = d0, .d1 = d1, .d2 = 1e-6};
      EXPECT_GE(fc_full(r, 1.5, 3600) + 1e-12, fc_single(r, 1.5, 3600));
    }
  }
}

TEST(Coverage, DecreasesWithExposureTime) {
  const hw::ErrorRates r{.d0 = 0.3, .d1 = 0.01, .d2 = 0.0};
  double prev = 1.0;
  for (double t : {0.1, 0.5, 1.0, 2.0, 5.0}) {
    const double fc = fc_single(r, t, 3600);
    EXPECT_LT(fc, prev);
    prev = fc;
  }
}

TEST(Coverage, MoreBlocksImproveCollisionTerm) {
  const hw::ErrorRates r{.d0 = 5.0, .d1 = 0.0, .d2 = 0.0};
  EXPECT_GT(fc_single(r, 1.0, 36000), fc_single(r, 1.0, 360));
}

TEST(Coverage, HighRateDrivesCoverageDown) {
  const hw::ErrorRates r{.d0 = 50.0, .d1 = 0.0, .d2 = 0.0};
  // Many 0D errors: collisions become likely even with many blocks.
  EXPECT_LT(fc_single(r, 1.0, 100), 0.05);
}

TEST(Coverage, LabelHelper) {
  EXPECT_STREQ(coverage_label_static(1.0, true), "Fault-free");
  EXPECT_STREQ(coverage_label_static(0.9999995, false), "Full Coverage");
  EXPECT_EQ(coverage_label_static(0.99, false), nullptr);
}

TEST(Coverage, BoundedInUnitInterval) {
  for (double d0 : {0.0, 1.0, 10.0, 100.0}) {
    const hw::ErrorRates r{.d0 = d0, .d1 = d0 / 10, .d2 = d0 / 100};
    for (double t : {0.01, 1.0, 10.0}) {
      const double s = fc_single(r, t, 3600);
      const double f = fc_full(r, t, 3600);
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0 + 1e-12);
      EXPECT_GE(f, 0.0);
      EXPECT_LE(f, 1.0 + 1e-12);
    }
  }
}

}  // namespace
}  // namespace bsr::abft
