#include "abft/update.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace bsr::abft {
namespace {

using la::idx;
using la::Matrix;

/// The load-bearing ABFT identity: checksums propagated *through* a GEMM must
/// equal checksums re-encoded from the GEMM result.
TEST(ChecksumUpdate, PropagationMatchesReencodingSingleSide) {
  const idx n = 32;
  const idx kb = 8;
  Rng rng(1);
  Matrix<double> c(n, n);
  Matrix<double> l(n, kb);
  Matrix<double> u(kb, n);
  la::fill_random(c.view(), rng);
  la::fill_random(l.view(), rng);
  la::fill_random(u.view(), rng);

  BlockChecksums<double> propagated(n, n, 8, ChecksumMode::SingleSide);
  propagated.encode(c.view());
  protected_gemm_update(c.view(), l.view().as_const(), u.view().as_const(), propagated);

  BlockChecksums<double> reencoded(n, n, 8, ChecksumMode::SingleSide);
  reencoded.encode(c.view());

  for (idx i = 0; i < propagated.col_checksums().rows(); ++i) {
    for (idx j = 0; j < n; ++j) {
      ASSERT_NEAR(propagated.col_checksums()(i, j),
                  reencoded.col_checksums()(i, j), 1e-9)
          << i << "," << j;
    }
  }
}

TEST(ChecksumUpdate, PropagationMatchesReencodingFull) {
  const idx n = 24;
  const idx kb = 6;
  Rng rng(2);
  Matrix<double> c(n, n);
  Matrix<double> l(n, kb);
  Matrix<double> u(kb, n);
  la::fill_random(c.view(), rng);
  la::fill_random(l.view(), rng);
  la::fill_random(u.view(), rng);

  BlockChecksums<double> propagated(n, n, 8, ChecksumMode::Full);
  propagated.encode(c.view());
  protected_gemm_update(c.view(), l.view().as_const(), u.view().as_const(), propagated);

  BlockChecksums<double> reencoded(n, n, 8, ChecksumMode::Full);
  reencoded.encode(c.view());

  for (idx i = 0; i < n; ++i) {
    for (idx j = 0; j < propagated.row_checksums().cols(); ++j) {
      ASSERT_NEAR(propagated.row_checksums()(i, j),
                  reencoded.row_checksums()(i, j), 1e-9);
    }
  }
}

TEST(ChecksumUpdate, ProtectedUpdateComputesCorrectProduct) {
  const idx n = 16;
  const idx kb = 4;
  Rng rng(3);
  Matrix<double> c(n, n);
  Matrix<double> l(n, kb);
  Matrix<double> u(kb, n);
  la::fill_random(c.view(), rng);
  la::fill_random(l.view(), rng);
  la::fill_random(u.view(), rng);
  Matrix<double> expected = c;
  la::gemm(la::Op::NoTrans, la::Op::NoTrans, -1.0, l.view().as_const(),
           u.view().as_const(), 1.0, expected.view());

  BlockChecksums<double> chk(n, n, 8, ChecksumMode::SingleSide);
  chk.encode(c.view());
  protected_gemm_update(c.view(), l.view().as_const(), u.view().as_const(), chk);
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i < n; ++i) ASSERT_NEAR(c(i, j), expected(i, j), 1e-10);
  }
}

TEST(ChecksumUpdate, DetectsInjectionAfterPropagatedUpdate) {
  const idx n = 32;
  const idx kb = 8;
  Rng rng(4);
  Matrix<double> c(n, n);
  Matrix<double> l(n, kb);
  Matrix<double> u(kb, n);
  la::fill_random(c.view(), rng);
  la::fill_random(l.view(), rng);
  la::fill_random(u.view(), rng);

  BlockChecksums<double> chk(n, n, 8, ChecksumMode::SingleSide);
  chk.encode(c.view());
  protected_gemm_update(c.view(), l.view().as_const(), u.view().as_const(), chk);
  const Matrix<double> correct = c;
  c(10, 10) += 12345.0;
  const VerifyResult r = chk.verify_and_correct(
      c.view(), BlockChecksums<double>::suggested_tolerance(c.view(), 8));
  EXPECT_EQ(r.corrected_0d, 1);
  EXPECT_NEAR(c(10, 10), correct(10, 10), 1e-6);
}

TEST(ChecksumUpdate, ChainsAcrossMultipleUpdates) {
  // Mimics several decomposition iterations updating the same trailing block.
  const idx n = 24;
  Rng rng(5);
  Matrix<double> c(n, n);
  la::fill_random(c.view(), rng);
  BlockChecksums<double> chk(n, n, 8, ChecksumMode::SingleSide);
  chk.encode(c.view());
  for (int step = 0; step < 3; ++step) {
    Matrix<double> l(n, 4);
    Matrix<double> u(4, n);
    la::fill_random(l.view(), rng);
    la::fill_random(u.view(), rng);
    protected_gemm_update(c.view(), l.view().as_const(), u.view().as_const(), chk);
  }
  const VerifyResult r = chk.verify_and_correct(
      c.view(), BlockChecksums<double>::suggested_tolerance(c.view(), 8));
  EXPECT_TRUE(r.clean());
}

}  // namespace
}  // namespace bsr::abft
