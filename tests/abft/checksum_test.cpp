#include "abft/checksum.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "la/blas.hpp"

namespace bsr::abft {
namespace {

using la::idx;
using la::Matrix;

Matrix<double> random_matrix(idx m, idx n, std::uint64_t seed) {
  Matrix<double> a(m, n);
  Rng rng(seed);
  la::fill_random(a.view(), rng);
  return a;
}

TEST(Checksum, CleanDataVerifiesClean) {
  Matrix<double> a = random_matrix(32, 32, 1);
  BlockChecksums<double> chk(32, 32, 8, ChecksumMode::Full);
  chk.encode(a.view());
  const VerifyResult r = chk.verify_and_correct(
      a.view(), BlockChecksums<double>::suggested_tolerance(a.view(), 8));
  EXPECT_TRUE(r.clean());
  EXPECT_EQ(r.corrected_0d, 0);
}

TEST(Checksum, EncodedColumnSumsMatchDefinition) {
  Matrix<double> a = random_matrix(8, 8, 2);
  BlockChecksums<double> chk(8, 8, 4, ChecksumMode::SingleSide);
  chk.encode(a.view());
  // Block row 0 covers rows 0..3; plain sum of column 5:
  double s = 0;
  for (idx i = 0; i < 4; ++i) s += a(i, 5);
  EXPECT_NEAR(chk.col_checksums()(0, 5), s, 1e-12);
  // Weighted sum with local weights 1..4:
  double w = 0;
  for (idx i = 0; i < 4; ++i) w += (i + 1) * a(i, 5);
  EXPECT_NEAR(chk.col_checksums()(1, 5), w, 1e-12);
}

TEST(Checksum, SingleSideCorrects0DError) {
  Matrix<double> a = random_matrix(24, 24, 3);
  const Matrix<double> pristine = a;
  BlockChecksums<double> chk(24, 24, 8, ChecksumMode::SingleSide);
  chk.encode(a.view());
  a(13, 7) += 1000.0;
  const VerifyResult r = chk.verify_and_correct(
      a.view(), BlockChecksums<double>::suggested_tolerance(a.view(), 8));
  EXPECT_EQ(r.corrected_0d, 1);
  EXPECT_EQ(r.uncorrectable, 0);
  EXPECT_NEAR(a(13, 7), pristine(13, 7), 1e-9);
}

TEST(Checksum, SingleSideCorrectsMultiple0DInDistinctColumns) {
  Matrix<double> a = random_matrix(32, 32, 4);
  const Matrix<double> pristine = a;
  BlockChecksums<double> chk(32, 32, 8, ChecksumMode::SingleSide);
  chk.encode(a.view());
  a(3, 2) -= 500.0;
  a(17, 20) += 250.0;
  a(30, 31) *= 100.0;
  const VerifyResult r = chk.verify_and_correct(
      a.view(), BlockChecksums<double>::suggested_tolerance(a.view(), 8));
  EXPECT_EQ(r.corrected_0d, 3);
  EXPECT_EQ(r.uncorrectable, 0);
  for (idx j = 0; j < 32; ++j) {
    for (idx i = 0; i < 32; ++i) ASSERT_NEAR(a(i, j), pristine(i, j), 1e-8);
  }
}

TEST(Checksum, SingleSideDetectsButCannotCorrectColumnError) {
  Matrix<double> a = random_matrix(16, 16, 5);
  BlockChecksums<double> chk(16, 16, 8, ChecksumMode::SingleSide);
  chk.encode(a.view());
  for (idx i = 0; i < 8; ++i) a(i, 3) += 100.0 + i;  // 1D column corruption
  const VerifyResult r = chk.verify_and_correct(
      a.view(), BlockChecksums<double>::suggested_tolerance(a.view(), 8));
  EXPECT_GT(r.blocks_flagged, 0);
  EXPECT_GT(r.uncorrectable, 0);
}

TEST(Checksum, FullCorrectsColumnError) {
  Matrix<double> a = random_matrix(24, 24, 6);
  const Matrix<double> pristine = a;
  BlockChecksums<double> chk(24, 24, 8, ChecksumMode::Full);
  chk.encode(a.view());
  for (idx i = 8; i < 16; ++i) a(i, 5) += 300.0 + i;  // full block-column hit
  const VerifyResult r = chk.verify_and_correct(
      a.view(), BlockChecksums<double>::suggested_tolerance(a.view(), 8));
  EXPECT_EQ(r.uncorrectable, 0);
  EXPECT_GE(r.corrected_1d + r.corrected_0d, 1);
  for (idx j = 0; j < 24; ++j) {
    for (idx i = 0; i < 24; ++i) ASSERT_NEAR(a(i, j), pristine(i, j), 1e-8);
  }
}

TEST(Checksum, FullCorrectsPartialColumnError) {
  Matrix<double> a = random_matrix(24, 24, 7);
  const Matrix<double> pristine = a;
  BlockChecksums<double> chk(24, 24, 8, ChecksumMode::Full);
  chk.encode(a.view());
  // Only three elements of one block-column corrupted.
  a(9, 12) += 77.0;
  a(11, 12) -= 55.0;
  a(14, 12) += 33.0;
  const VerifyResult r = chk.verify_and_correct(
      a.view(), BlockChecksums<double>::suggested_tolerance(a.view(), 8));
  EXPECT_EQ(r.uncorrectable, 0);
  for (idx i = 8; i < 16; ++i) ASSERT_NEAR(a(i, 12), pristine(i, 12), 1e-8);
}

TEST(Checksum, TwoErrorsInSameBlockColumnAreUncorrectableBySingle) {
  Matrix<double> a = random_matrix(16, 16, 8);
  BlockChecksums<double> chk(16, 16, 8, ChecksumMode::SingleSide);
  chk.encode(a.view());
  a(1, 4) += 100.0;
  a(5, 4) += 50.0;  // same column, same block; deltas do not alias
  const VerifyResult r = chk.verify_and_correct(
      a.view(), BlockChecksums<double>::suggested_tolerance(a.view(), 8));
  EXPECT_GT(r.uncorrectable, 0);
}

TEST(Checksum, AliasedDoubleErrorSilentlyEvadesSingleSide) {
  // Known fundamental limit: deltas (+100 at local row 1, +100 at local row
  // 5) project onto the (sum, weighted-sum) checksum space exactly like a
  // single +200 error at local row 3, so single-side "corrects" the wrong
  // element and the block re-verifies clean. This is precisely why 1D/multi
  // errors need full checksums (paper §3.1.2).
  Matrix<double> a = random_matrix(16, 16, 88);
  const Matrix<double> pristine = a;
  BlockChecksums<double> chk(16, 16, 8, ChecksumMode::SingleSide);
  chk.encode(a.view());
  a(1, 4) += 100.0;
  a(5, 4) += 100.0;
  const VerifyResult r = chk.verify_and_correct(
      a.view(), BlockChecksums<double>::suggested_tolerance(a.view(), 8));
  EXPECT_GT(r.blocks_flagged, 0);
  EXPECT_EQ(r.uncorrectable, 0);          // it *thinks* it fixed things
  EXPECT_NE(a(1, 4), pristine(1, 4));     // but the data stays corrupted
}

TEST(Checksum, FullModeCatchesAliasedDoubleError) {
  // The row-side cross-check rejects the aliased 0D fix and the 1D repair
  // path restores the column exactly.
  Matrix<double> a = random_matrix(16, 16, 89);
  const Matrix<double> pristine = a;
  BlockChecksums<double> chk(16, 16, 8, ChecksumMode::Full);
  chk.encode(a.view());
  a(1, 4) += 100.0;
  a(5, 4) += 100.0;
  const VerifyResult r = chk.verify_and_correct(
      a.view(), BlockChecksums<double>::suggested_tolerance(a.view(), 8));
  EXPECT_EQ(r.uncorrectable, 0);
  for (idx i = 0; i < 16; ++i) ASSERT_NEAR(a(i, 4), pristine(i, 4), 1e-8);
}

TEST(Checksum, FullHandles2DPatchAsUncorrectable) {
  Matrix<double> a = random_matrix(24, 24, 9);
  BlockChecksums<double> chk(24, 24, 8, ChecksumMode::Full);
  chk.encode(a.view());
  for (idx j = 2; j < 6; ++j) {
    for (idx i = 1; i < 5; ++i) a(i, j) += 400.0;  // 2D patch in one block
  }
  const VerifyResult r = chk.verify_and_correct(
      a.view(), BlockChecksums<double>::suggested_tolerance(a.view(), 8));
  EXPECT_GT(r.blocks_flagged, 0);
  EXPECT_GT(r.uncorrectable, 0);
}

TEST(Checksum, NonDivisibleBlockSizes) {
  Matrix<double> a = random_matrix(21, 19, 10);
  const Matrix<double> pristine = a;
  BlockChecksums<double> chk(21, 19, 8, ChecksumMode::Full);
  chk.encode(a.view());
  a(20, 18) += 640.0;  // in the ragged corner block
  const VerifyResult r = chk.verify_and_correct(
      a.view(), BlockChecksums<double>::suggested_tolerance(a.view(), 8));
  EXPECT_EQ(r.corrected_0d, 1);
  EXPECT_NEAR(a(20, 18), pristine(20, 18), 1e-9);
}

TEST(Checksum, ModeNoneIsInert) {
  Matrix<double> a = random_matrix(8, 8, 11);
  BlockChecksums<double> chk(8, 8, 4, ChecksumMode::None);
  chk.encode(a.view());
  a(0, 0) += 100.0;
  const VerifyResult r = chk.verify_and_correct(a.view(), 1e-6);
  EXPECT_TRUE(r.clean());
}

TEST(Checksum, ErrorsInMultipleBlocksAllCorrected) {
  Matrix<double> a = random_matrix(40, 40, 12);
  const Matrix<double> pristine = a;
  BlockChecksums<double> chk(40, 40, 8, ChecksumMode::SingleSide);
  chk.encode(a.view());
  // One 0D error per block row, far apart.
  a(2, 6) += 111.0;
  a(12, 22) += 222.0;
  a(25, 33) -= 333.0;
  a(39, 0) += 444.0;
  const VerifyResult r = chk.verify_and_correct(
      a.view(), BlockChecksums<double>::suggested_tolerance(a.view(), 8));
  EXPECT_EQ(r.corrected_0d, 4);
  EXPECT_EQ(r.uncorrectable, 0);
  for (idx j = 0; j < 40; ++j) {
    for (idx i = 0; i < 40; ++i) ASSERT_NEAR(a(i, j), pristine(i, j), 1e-8);
  }
}

TEST(Checksum, FloatInstantiation) {
  Matrix<float> a(16, 16);
  Rng rng(13);
  la::fill_random(a.view(), rng);
  const Matrix<float> pristine = a;
  BlockChecksums<float> chk(16, 16, 8, ChecksumMode::SingleSide);
  chk.encode(a.view());
  a(5, 5) += 1000.0f;
  const VerifyResult r = chk.verify_and_correct(
      a.view(), BlockChecksums<float>::suggested_tolerance(a.view(), 8));
  EXPECT_EQ(r.corrected_0d, 1);
  EXPECT_NEAR(a(5, 5), pristine(5, 5), 1e-2f);
}

TEST(Checksum, ToStringLabels) {
  EXPECT_STREQ(to_string(ChecksumMode::None), "None");
  EXPECT_STREQ(to_string(ChecksumMode::SingleSide), "SingleSide");
  EXPECT_STREQ(to_string(ChecksumMode::Full), "Full");
}

}  // namespace
}  // namespace bsr::abft
