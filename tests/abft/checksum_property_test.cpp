// Property-based sweeps over the ABFT machinery: for randomized shapes,
// block sizes, and error patterns, the invariants that make ABFT sound must
// hold — encode->verify is clean, propagation == re-encode, every single 0D
// error is exactly repaired, and full mode repairs any single-column pattern.
#include <gtest/gtest.h>

#include <tuple>

#include "abft/update.hpp"
#include "common/rng.hpp"
#include "fault/injector.hpp"
#include "la/verify.hpp"

namespace bsr::abft {
namespace {

using la::idx;
using la::Matrix;

struct Shape {
  idx m;
  idx n;
  idx b;
};

class ChecksumShapes
    : public ::testing::TestWithParam<std::tuple<Shape, ChecksumMode>> {};

TEST_P(ChecksumShapes, EncodeThenVerifyIsClean) {
  const auto [shape, mode] = GetParam();
  Rng rng(shape.m * 131 + shape.n * 17 + shape.b);
  Matrix<double> a(shape.m, shape.n);
  la::fill_random(a.view(), rng);
  BlockChecksums<double> chk(shape.m, shape.n, shape.b, mode);
  chk.encode(a.view());
  const VerifyResult r = chk.verify_and_correct(
      a.view(),
      BlockChecksums<double>::suggested_tolerance(a.view(), shape.b));
  EXPECT_TRUE(r.clean());
}

TEST_P(ChecksumShapes, Single0DAlwaysExactlyRepaired) {
  const auto [shape, mode] = GetParam();
  if (mode == ChecksumMode::None) return;
  Rng rng(shape.m * 7919 + shape.n * 13 + shape.b);
  for (int trial = 0; trial < 10; ++trial) {
    Matrix<double> a(shape.m, shape.n);
    la::fill_random(a.view(), rng);
    const Matrix<double> pristine = a;
    BlockChecksums<double> chk(shape.m, shape.n, shape.b, mode);
    chk.encode(a.view());
    const idx i = static_cast<idx>(rng.next_below(shape.m));
    const idx j = static_cast<idx>(rng.next_below(shape.n));
    a(i, j) += rng.uniform(32.0, 4096.0) * (rng.next_double() < 0.5 ? -1 : 1);
    const VerifyResult r = chk.verify_and_correct(
        a.view(),
        BlockChecksums<double>::suggested_tolerance(a.view(), shape.b));
    ASSERT_EQ(r.corrected_0d, 1) << "trial " << trial;
    ASSERT_EQ(r.uncorrectable, 0);
    ASSERT_NEAR(a(i, j), pristine(i, j), 1e-7 * std::abs(pristine(i, j)) + 1e-7);
  }
}

TEST_P(ChecksumShapes, FullModeRepairsAnySingleColumnPattern) {
  const auto [shape, mode] = GetParam();
  if (mode != ChecksumMode::Full) return;
  Rng rng(shape.m * 31 + shape.n * 101 + shape.b);
  for (int trial = 0; trial < 10; ++trial) {
    Matrix<double> a(shape.m, shape.n);
    la::fill_random(a.view(), rng);
    const Matrix<double> pristine = a;
    BlockChecksums<double> chk(shape.m, shape.n, shape.b, mode);
    chk.encode(a.view());
    // Corrupt a random set of rows in one random column.
    const idx j = static_cast<idx>(rng.next_below(shape.n));
    int corrupted = 0;
    for (idx i = 0; i < shape.m; ++i) {
      if (rng.next_double() < 0.4) {
        a(i, j) += rng.uniform(64.0, 1024.0);
        ++corrupted;
      }
    }
    if (corrupted == 0) continue;
    const VerifyResult r = chk.verify_and_correct(
        a.view(),
        BlockChecksums<double>::suggested_tolerance(a.view(), shape.b));
    ASSERT_EQ(r.uncorrectable, 0) << "trial " << trial;
    for (idx i = 0; i < shape.m; ++i) {
      ASSERT_NEAR(a(i, j), pristine(i, j),
                  1e-7 * std::abs(pristine(i, j)) + 1e-7)
          << "row " << i << " trial " << trial;
    }
  }
}

TEST_P(ChecksumShapes, PropagationEqualsReencodeUnderRandomUpdates) {
  const auto [shape, mode] = GetParam();
  if (mode == ChecksumMode::None) return;
  if (shape.m != shape.n) return;  // the trailing update is square
  Rng rng(shape.m * 3 + shape.b * 7);
  Matrix<double> c(shape.m, shape.n);
  la::fill_random(c.view(), rng);
  BlockChecksums<double> chk(shape.m, shape.n, shape.b, mode);
  chk.encode(c.view());
  for (int step = 0; step < 3; ++step) {
    const idx kb = 1 + static_cast<idx>(rng.next_below(shape.b));
    Matrix<double> l(shape.m, kb);
    Matrix<double> u(kb, shape.n);
    la::fill_random(l.view(), rng);
    la::fill_random(u.view(), rng);
    protected_gemm_update(c.view(), l.view().as_const(), u.view().as_const(),
                          chk);
  }
  BlockChecksums<double> ref(shape.m, shape.n, shape.b, mode);
  ref.encode(c.view());
  for (idx i = 0; i < chk.col_checksums().rows(); ++i) {
    for (idx j = 0; j < shape.n; ++j) {
      ASSERT_NEAR(chk.col_checksums()(i, j), ref.col_checksums()(i, j),
                  1e-7 * (std::abs(ref.col_checksums()(i, j)) + 1.0));
    }
  }
  if (mode == ChecksumMode::Full) {
    for (idx i = 0; i < shape.m; ++i) {
      for (idx j = 0; j < ref.row_checksums().cols(); ++j) {
        ASSERT_NEAR(chk.row_checksums()(i, j), ref.row_checksums()(i, j),
                    1e-7 * (std::abs(ref.row_checksums()(i, j)) + 1.0));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ChecksumShapes,
    ::testing::Combine(
        ::testing::Values(Shape{16, 16, 8}, Shape{32, 32, 8}, Shape{48, 48, 16},
                          Shape{33, 29, 8}, Shape{64, 40, 16},
                          Shape{25, 25, 25}, Shape{100, 100, 32}),
        ::testing::Values(ChecksumMode::SingleSide, ChecksumMode::Full)));

TEST(ChecksumInjectorProperty, RandomInjectionNeverEscapesFullAbftSilently) {
  // For randomized 0D/1D injections, full ABFT either repairs everything or
  // reports uncorrectable — it must never return "clean" on corrupted data.
  Rng rng(424242);
  fault::Injector inj{Rng(171717)};
  for (int trial = 0; trial < 50; ++trial) {
    const idx n = 24 + static_cast<idx>(rng.next_below(40));
    const idx b = 8;
    Matrix<double> a(n, n);
    la::fill_random(a.view(), rng);
    const Matrix<double> pristine = a;
    BlockChecksums<double> chk(n, n, b, ChecksumMode::Full);
    chk.encode(a.view());
    const int n0 = static_cast<int>(rng.next_below(3));
    const int n1 = static_cast<int>(rng.next_below(2));
    for (int i = 0; i < n0; ++i) inj.inject_0d(a.view());
    for (int i = 0; i < n1; ++i) inj.inject_1d(a.view());
    if (n0 + n1 == 0) continue;
    const VerifyResult r = chk.verify_and_correct(
        a.view(), BlockChecksums<double>::suggested_tolerance(a.view(), b));
    if (r.uncorrectable == 0) {
      // Claimed fully repaired: the data must actually match.
      double max_err = 0.0;
      for (idx j = 0; j < n; ++j) {
        for (idx i = 0; i < n; ++i) {
          max_err = std::max(max_err, std::abs(a(i, j) - pristine(i, j)));
        }
      }
      ASSERT_LT(max_err, 1e-6) << "trial " << trial;
    }
  }
}

}  // namespace
}  // namespace bsr::abft
