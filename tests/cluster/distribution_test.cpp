#include "cluster/distribution.hpp"

#include <gtest/gtest.h>

namespace bsr::cluster {
namespace {

predict::WorkloadModel workload(std::int64_t n, std::int64_t b) {
  return predict::WorkloadModel{predict::Factorization::LU, n, b, 8};
}

TEST(BlockCyclic, OwnerCycles) {
  const BlockCyclic dist{4};
  EXPECT_EQ(dist.owner(0), 0);
  EXPECT_EQ(dist.owner(1), 1);
  EXPECT_EQ(dist.owner(4), 0);
  EXPECT_EQ(dist.owner(7), 3);
}

TEST(BlockCyclic, LocalColsPartitionTheTrailingMatrix) {
  const predict::WorkloadModel wl = workload(4096, 256);  // 16 iterations
  for (const int devices : {1, 2, 3, 4, 8}) {
    const BlockCyclic dist{devices};
    for (int k = 0; k < wl.num_iterations(); ++k) {
      std::int64_t sum = 0;
      for (int d = 0; d < devices; ++d) sum += dist.local_cols(wl, k, d);
      EXPECT_EQ(sum, wl.num_iterations() - k - 1)
          << "devices=" << devices << " k=" << k;
    }
  }
}

TEST(BlockCyclic, SharesSumToOneWhileWorkRemains) {
  const predict::WorkloadModel wl = workload(4096, 256);
  const BlockCyclic dist{5};
  for (int k = 0; k + 1 < wl.num_iterations(); ++k) {
    double sum = 0.0;
    for (int d = 0; d < dist.devices; ++d) sum += dist.share(wl, k, d);
    EXPECT_NEAR(sum, 1.0, 1e-12) << "k=" << k;
  }
  // Final iteration: no trailing matrix, all shares zero.
  const int last = wl.num_iterations() - 1;
  for (int d = 0; d < dist.devices; ++d) {
    EXPECT_EQ(dist.share(wl, last, d), 0.0);
  }
}

TEST(BlockCyclic, BalancedEarlySingleOwnerLate) {
  const predict::WorkloadModel wl = workload(4096, 256);  // K = 16
  const BlockCyclic dist{4};
  // Early: 15 trailing cols over 4 devices: shares within one column.
  std::int64_t lo = 1000, hi = 0;
  for (int d = 0; d < 4; ++d) {
    const std::int64_t c = dist.local_cols(wl, 0, d);
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  EXPECT_LE(hi - lo, 1);
  // Late (one trailing column): exactly one device owns it.
  const int k = wl.num_iterations() - 2;
  int owners = 0;
  for (int d = 0; d < 4; ++d) {
    owners += dist.local_cols(wl, k, d) > 0 ? 1 : 0;
  }
  EXPECT_EQ(owners, 1);
  EXPECT_GT(dist.local_cols(wl, k, dist.owner(wl.num_iterations() - 1)), 0);
}

TEST(BlockCyclic, MoreDevicesThanColumns) {
  const predict::WorkloadModel wl = workload(1024, 256);  // K = 4
  const BlockCyclic dist{8};
  std::int64_t sum = 0;
  for (int d = 0; d < 8; ++d) sum += dist.local_cols(wl, 0, d);
  EXPECT_EQ(sum, 3);
  EXPECT_EQ(dist.local_cols(wl, 0, 5), 0);  // cols 1..3 only
}

}  // namespace
}  // namespace bsr::cluster
