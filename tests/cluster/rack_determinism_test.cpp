// Satellite (slow tier): determinism stress at full rack scale. A 64-device
// rack_8x8 sweep under the hostile variability preset plus a Poisson fault
// campaign exercises every stochastic stream the engine owns (efficiency
// drift, transfer jitter, DVFS quantization, thermal budget, fault arrivals,
// recovery rollbacks) on the largest event graph the registry can build —
// and must still be bitwise identical across sweep thread counts for both
// the ring and tree collectives, whose equal-time event ties are the exact
// place a scheduling race would first show up.
#include <gtest/gtest.h>

#include "bsr/bsr.hpp"

namespace bsr {
namespace {

Sweep rack_sweep(int threads) {
  RunConfig base;
  base.n = 8192;
  base.b = 256;
  base.devices = 64;
  base.cluster = "rack_8x8";
  base.variability = make_variability("hostile");
  base.faults = make_faults("poisson");
  Sweep sweep(base);
  Axis schedule{"collective", {}};
  for (const char* key : {"ring", "tree"}) {
    schedule.points.push_back(
        {key, [key](RunConfig& c) { c.collective = key; }});
  }
  sweep.over(trial_axis(2, /*root_seed=*/1234))
      .over(schedule)
      .over(strategy_axis({"original", "bsr"}))
      .threads(threads);
  return sweep;
}

TEST(RackDeterminism, HostileFaultySixtyFourDeviceSweepIsThreadInvariant) {
  const SweepResult serial = rack_sweep(1).run();
  const SweepResult parallel = rack_sweep(4).run();
  ASSERT_EQ(serial.rows.size(), parallel.rows.size());
  ASSERT_EQ(serial.rows.size(), 8u);  // 2 trials x 2 schedules x 2 strategies
  for (std::size_t i = 0; i < serial.rows.size(); ++i) {
    const SweepRow& a = serial.rows[i];
    const SweepRow& b = parallel.rows[i];
    EXPECT_EQ(a.coords, b.coords);
    EXPECT_EQ(a.config.fingerprint(), b.config.fingerprint());
    // Bitwise identity, not tolerance: any cross-thread leak (shared RNG,
    // event-tie nondeterminism, rebalance state) breaks exact equality.
    EXPECT_EQ(a.report->seconds(), b.report->seconds()) << "row " << i;
    EXPECT_EQ(a.report->total_energy_j(), b.report->total_energy_j());
    EXPECT_EQ(a.report->ed2p(), b.report->ed2p());
    ASSERT_EQ(a.report->device_usage.size(), 65u);  // host + 64 accelerators
    ASSERT_EQ(b.report->device_usage.size(), 65u);
    for (std::size_t d = 0; d < a.report->device_usage.size(); ++d) {
      EXPECT_EQ(a.report->device_usage[d].busy_s,
                b.report->device_usage[d].busy_s)
          << "row " << i << " lane " << d;
      EXPECT_EQ(a.report->device_usage[d].energy_j,
                b.report->device_usage[d].energy_j);
      EXPECT_EQ(a.report->device_usage[d].iters_single,
                b.report->device_usage[d].iters_single);
      EXPECT_EQ(a.report->device_usage[d].iters_full,
                b.report->device_usage[d].iters_full);
      EXPECT_EQ(a.report->device_usage[d].final_mhz,
                b.report->device_usage[d].final_mhz);
    }
  }
  // The campaign genuinely ran: hostile variability + Poisson faults must
  // perturb the runs away from the deterministic baseline, otherwise this
  // stress proves nothing.
  RunConfig quiet;
  quiet.n = 8192;
  quiet.b = 256;
  quiet.devices = 64;
  quiet.cluster = "rack_8x8";
  quiet.collective = "ring";
  quiet.strategy = "original";
  EXPECT_NE(run(quiet).seconds(), serial.rows.front().report->seconds());
}

TEST(RackDeterminism, RerunOfTheFullRackSweepReproducesTheBytes) {
  // Same sweep built twice from scratch (no shared cache): every row's
  // numbers must come out identical — the cross-process reproducibility
  // claim CI's sanitizer job re-executes under ASan+UBSan.
  const SweepResult a = rack_sweep(0).run();
  const SweepResult b = rack_sweep(0).run();
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(a.rows[i].report->seconds(), b.rows[i].report->seconds());
    EXPECT_EQ(a.rows[i].report->total_energy_j(),
              b.rows[i].report->total_energy_j());
  }
}

}  // namespace
}  // namespace bsr
