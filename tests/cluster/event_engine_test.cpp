#include "cluster/event_engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace bsr::cluster {
namespace {

TEST(EventEngine, FiresInTimeOrder) {
  EventEngine e;
  std::vector<int> order;
  e.schedule_at(SimTime(30), [&] { order.push_back(3); });
  e.schedule_at(SimTime(10), [&] { order.push_back(1); });
  e.schedule_at(SimTime(20), [&] { order.push_back(2); });
  const SimTime end = e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(end, SimTime(30));
  EXPECT_EQ(e.processed(), 3u);
}

TEST(EventEngine, EqualTimesFireInScheduleOrder) {
  EventEngine e;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    e.schedule_at(SimTime(5), [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventEngine, HandlersMayScheduleFurtherEvents) {
  EventEngine e;
  std::vector<int> order;
  e.schedule_at(SimTime(10), [&] {
    order.push_back(1);
    e.schedule_after(SimTime(5), [&] { order.push_back(2); });
  });
  const SimTime end = e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(end, SimTime(15));
}

TEST(EventEngine, PastSchedulingClampsToNow) {
  EventEngine e;
  std::vector<int> order;
  e.schedule_at(SimTime(10), [&] {
    order.push_back(1);
    // "In the past": fires immediately after already queued time-10 events.
    e.schedule_at(SimTime(3), [&] { order.push_back(3); });
  });
  e.schedule_at(SimTime(10), [&] { order.push_back(2); });
  const SimTime end = e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(end, SimTime(10));  // clock never runs backwards
}

TEST(EventEngine, NowAdvancesMonotonically) {
  EventEngine e;
  SimTime last = SimTime::zero();
  for (int i = 0; i < 50; ++i) {
    e.schedule_at(SimTime(i % 7), [&, i] {
      EXPECT_GE(e.now(), last);
      last = e.now();
      (void)i;
    });
  }
  e.run();
}

}  // namespace
}  // namespace bsr::cluster
