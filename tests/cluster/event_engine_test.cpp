#include "cluster/event_engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace bsr::cluster {
namespace {

TEST(EventEngine, FiresInTimeOrder) {
  EventEngine e;
  std::vector<int> order;
  e.schedule_at(SimTime(30), [&] { order.push_back(3); });
  e.schedule_at(SimTime(10), [&] { order.push_back(1); });
  e.schedule_at(SimTime(20), [&] { order.push_back(2); });
  const SimTime end = e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(end, SimTime(30));
  EXPECT_EQ(e.processed(), 3u);
}

TEST(EventEngine, EqualTimesFireInScheduleOrder) {
  EventEngine e;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    e.schedule_at(SimTime(5), [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventEngine, HandlersMayScheduleFurtherEvents) {
  EventEngine e;
  std::vector<int> order;
  e.schedule_at(SimTime(10), [&] {
    order.push_back(1);
    e.schedule_after(SimTime(5), [&] { order.push_back(2); });
  });
  const SimTime end = e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(end, SimTime(15));
}

TEST(EventEngine, PastSchedulingClampsToNow) {
  EventEngine e;
  std::vector<int> order;
  e.schedule_at(SimTime(10), [&] {
    order.push_back(1);
    // "In the past": fires immediately after already queued time-10 events.
    e.schedule_at(SimTime(3), [&] { order.push_back(3); });
  });
  e.schedule_at(SimTime(10), [&] { order.push_back(2); });
  const SimTime end = e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(end, SimTime(10));  // clock never runs backwards
}

TEST(EventEngine, NowAdvancesMonotonically) {
  EventEngine e;
  SimTime last = SimTime::zero();
  for (int i = 0; i < 50; ++i) {
    e.schedule_at(SimTime(i % 7), [&, i] {
      EXPECT_GE(e.now(), last);
      last = e.now();
      (void)i;
    });
  }
  e.run();
}

// The flat-payload engine the cluster simulator runs on: events are POD
// records in preallocated storage, dispatched by a functor, and the (time,
// sequence) tie-break contract must hold exactly as it does for the
// std::function engine — the sweep's bitwise thread-count invariance rests
// on it.
TEST(BasicEventEngine, PodPayloadEqualTimesFireInScheduleOrder) {
  BasicEventEngine<int> e;
  e.reserve(64);
  std::vector<int> order;
  // Interleave two equal-time groups with distinct times: within each time,
  // schedule order must be preserved regardless of heap internals.
  for (int i = 0; i < 8; ++i) {
    e.schedule_at(SimTime(20), 100 + i);
    e.schedule_at(SimTime(10), i);
  }
  const SimTime end = e.run([&order](int v) { order.push_back(v); });
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
    EXPECT_EQ(order[static_cast<size_t>(8 + i)], 100 + i);
  }
  EXPECT_EQ(end, SimTime(20));
  EXPECT_EQ(e.processed(), 16u);
}

TEST(BasicEventEngine, ReserveDoesNotPerturbOrdering) {
  // Same schedule with and without a pre-sized heap: identical firing order.
  auto drive = [](std::size_t reserve) {
    BasicEventEngine<int> e;
    if (reserve > 0) e.reserve(reserve);
    for (int i = 0; i < 32; ++i) {
      e.schedule_at(SimTime((i * 13) % 5), i);
    }
    std::vector<int> order;
    e.run([&order](int v) { order.push_back(v); });
    return order;
  };
  EXPECT_EQ(drive(0), drive(1024));
}

TEST(BasicEventEngine, HandlersScheduleFurtherPodEvents) {
  BasicEventEngine<int> e;
  std::vector<int> order;
  e.schedule_at(SimTime(10), 1);
  const SimTime end = e.run([&](int v) {
    order.push_back(v);
    if (v < 3) e.schedule_after(SimTime(5), v + 1);
  });
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(end, SimTime(20));
}

TEST(BasicEventEngine, StressManyEqualTimeGroups) {
  // Deterministic scramble of 1000 events into 10 time buckets; within each
  // bucket the firing order must equal the schedule order.
  BasicEventEngine<int> e;
  std::vector<std::vector<int>> expected(10);
  std::uint64_t s = 7;
  for (int i = 0; i < 1000; ++i) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    const int bucket = static_cast<int>(s >> 61);  // 0..7
    e.schedule_at(SimTime(bucket), i);
    expected[static_cast<size_t>(bucket)].push_back(i);
  }
  std::vector<std::vector<int>> fired(10);
  e.run([&](int v) { fired[static_cast<size_t>(e.now().ns())].push_back(v); });
  EXPECT_EQ(fired, expected);
}

}  // namespace
}  // namespace bsr::cluster
