#include "cluster/topology.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace bsr::cluster {
namespace {

LinkTopology two_device_topology() {
  LinkTopology t;
  t.host_links = {hw::TransferModel{.bandwidth_gbs = 10.0,
                                    .latency = SimTime::from_micros(10.0)},
                  hw::TransferModel{.bandwidth_gbs = 5.0,
                                    .latency = SimTime::from_micros(20.0)}};
  t.host_bus = {.bandwidth_gbs = 100.0, .latency = SimTime::from_micros(1.0)};
  t.staging_latency = SimTime::from_micros(50.0);
  return t;
}

TEST(LinkTopology, HostLinkLatencyPlusBandwidthComposition) {
  const LinkTopology t = two_device_topology();
  // 10 GB over the 10 GB/s link: 1 s + 10 us (link slower than the bus).
  EXPECT_NEAR(t.host_to_device(0, 10e9).seconds(), 1.0 + 10e-6, 1e-9);
  // Device 1's link is half the bandwidth and twice the latency.
  EXPECT_NEAR(t.host_to_device(1, 10e9).seconds(), 2.0 + 20e-6, 1e-9);
  // Links are symmetric.
  EXPECT_EQ(t.device_to_host(1, 10e9), t.host_to_device(1, 10e9));
}

TEST(LinkTopology, SharedBusDominatesWhenSlower) {
  LinkTopology t = two_device_topology();
  t.host_bus = {.bandwidth_gbs = 2.0, .latency = SimTime::from_micros(1.0)};
  // The 10 GB/s link would take ~1 s, but the 2 GB/s bus takes 5 s: the
  // transfer runs at the slower of the two.
  EXPECT_NEAR(t.host_to_device(0, 10e9).seconds(), 5.0 + 1e-6, 1e-9);
}

TEST(LinkTopology, DeviceToDeviceStagesThroughHost) {
  const LinkTopology t = two_device_topology();
  const SimTime expected = t.device_to_host(0, 1e9) + t.staging_latency +
                           t.host_to_device(1, 1e9);
  EXPECT_EQ(t.device_to_device(0, 1, 1e9), expected);
  EXPECT_EQ(t.device_to_device(0, 0, 1e9), SimTime::zero());
}

TEST(LinkTopology, PeerLinkBypassesHostStagingBothDirections) {
  LinkTopology t = two_device_topology();
  t.peer_links.emplace(std::make_pair(0, 1),
                       hw::TransferModel{.bandwidth_gbs = 40.0,
                                         .latency = SimTime::from_micros(3.0)});
  const SimTime direct = t.device_to_device(0, 1, 4e9);
  EXPECT_NEAR(direct.seconds(), 0.1 + 3e-6, 1e-9);
  // One registration covers both orientations.
  EXPECT_EQ(t.device_to_device(1, 0, 4e9), direct);
  ASSERT_NE(t.peer(1, 0), nullptr);
  EXPECT_EQ(t.peer(0, 1), t.peer(1, 0));
}

TEST(LinkTopology, UnknownDeviceThrows) {
  const LinkTopology t = two_device_topology();
  EXPECT_THROW((void)t.host_to_device(2, 1.0), std::out_of_range);
  EXPECT_THROW((void)t.host_to_device(-1, 1.0), std::out_of_range);
}

TEST(ClusterProfile, PaperScaleoutSingleGpuMatchesPaperPlatform) {
  const ClusterProfile c = ClusterProfile::paper_scaleout(1);
  const hw::PlatformProfile p = hw::PlatformProfile::paper_default();
  ASSERT_EQ(c.num_devices(), 1);
  EXPECT_EQ(c.host.name, p.cpu.name);
  EXPECT_EQ(c.host.freq.base_mhz, p.cpu.freq.base_mhz);
  EXPECT_EQ(c.devices[0].freq.base_mhz, p.gpu.freq.base_mhz);
  EXPECT_EQ(c.devices[0].perf.blas3_gflops_base, p.gpu.perf.blas3_gflops_base);
  EXPECT_EQ(c.links.host_links[0].bandwidth_gbs, p.link.bandwidth_gbs);
  EXPECT_EQ(c.links.host_links[0].latency, p.link.latency);
}

TEST(ClusterProfile, PaperScaleoutReplicatesAndNames) {
  const ClusterProfile c = ClusterProfile::paper_scaleout(4);
  ASSERT_EQ(c.num_devices(), 4);
  EXPECT_EQ(c.links.num_devices(), 4u);
  EXPECT_NE(c.devices[0].name, c.devices[3].name);
  for (const hw::DeviceModel& d : c.devices) {
    EXPECT_EQ(d.freq.max_oc_mhz, c.devices[0].freq.max_oc_mhz);
  }
  // The shared bus sustains about two x16 streams.
  EXPECT_NEAR(c.links.host_bus.bandwidth_gbs,
              2.0 * c.links.host_links[0].bandwidth_gbs, 1e-12);
  EXPECT_THROW(ClusterProfile::paper_scaleout(0), std::invalid_argument);
}

TEST(LinkTopology, HierarchyKeysOffShapeNotDeviceCount) {
  // Flat topologies are non-hierarchical however many devices they hold;
  // rack profiles are hierarchical from a single device up (the scheduling
  // rules follow the profile's shape, so a rack's scaling curve is one
  // consistent model across every point).
  EXPECT_FALSE(ClusterProfile::paper_scaleout(8).links.hierarchical());
  const ClusterProfile one = ClusterProfile::rack(1, 8, 8, "rack_8x8");
  EXPECT_TRUE(one.links.hierarchical());
  EXPECT_EQ(one.links.num_nodes(), 1);
  const ClusterProfile rack = ClusterProfile::rack(20, 8, 8, "rack_8x8");
  EXPECT_EQ(rack.links.num_nodes(), 3);  // 8 + 8 + 4 devices
  EXPECT_EQ(rack.links.node(0), 0);
  EXPECT_EQ(rack.links.node(7), 0);
  EXPECT_EQ(rack.links.node(8), 1);
  EXPECT_EQ(rack.links.node(19), 2);
  // Flat topologies report node 0 for everything.
  EXPECT_EQ(ClusterProfile::paper_scaleout(4).links.node(3), 0);
}

TEST(LinkTopology, RemoteNodeTransfersCrossTheInternodeSegment) {
  LinkTopology t = two_device_topology();
  t.node_of = {0, 1};  // device 1 sits on a remote node
  t.node_bus = t.host_bus;
  t.internode = {.bandwidth_gbs = 1.0, .latency = SimTime::from_micros(1.0)};
  // Device 0 stays on the host's node: the slow fabric is not consulted.
  EXPECT_NEAR(t.host_to_device(0, 10e9).seconds(), 1.0 + 10e-6, 1e-9);
  // Device 1's transfer is pipelined through link, bus, fabric, and node
  // bus; the 1 GB/s inter-node segment is the slowest and sets the time.
  EXPECT_NEAR(t.host_to_device(1, 10e9).seconds(), 10.0 + 1e-6, 1e-9);
}

TEST(ClusterProfile, RackUpgradesLinksAndWiresIntraNodePeers) {
  const ClusterProfile c = ClusterProfile::rack(16, 8, 4, "rack_4x8");
  ASSERT_EQ(c.num_devices(), 16);
  EXPECT_EQ(c.devices_per_node, 8);
  // Gen4-class chassis: faster per-device links than the paper's gen3
  // testbed, bus still sized for two concurrent streams.
  const ClusterProfile paper = ClusterProfile::paper_scaleout(1);
  EXPECT_GT(c.links.host_links[0].bandwidth_gbs,
            paper.links.host_links[0].bandwidth_gbs);
  EXPECT_NEAR(c.links.host_bus.bandwidth_gbs,
              2.0 * c.links.host_links[0].bandwidth_gbs, 1e-12);
  EXPECT_GT(c.links.internode.bandwidth_gbs, 0.0);
  // All-to-all NVLink inside a node; chassis-crossing pairs stage through
  // the hosts.
  EXPECT_NE(c.links.peer(0, 7), nullptr);
  EXPECT_NE(c.links.peer(9, 15), nullptr);
  EXPECT_EQ(c.links.peer(7, 8), nullptr);
  EXPECT_LT(c.links.device_to_device(0, 7, 1e9),
            c.links.device_to_device(7, 8, 1e9));
}

TEST(ClusterProfile, RackCapacityFailsLoudlyWithProfileNameAndLimit) {
  try {
    (void)ClusterProfile::rack(33, 8, 4, "rack_4x8");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rack_4x8"), std::string::npos) << what;
    EXPECT_NE(what.find("32"), std::string::npos) << what;
    EXPECT_NE(what.find("33"), std::string::npos) << what;
  }
  EXPECT_NO_THROW((void)ClusterProfile::rack(32, 8, 4, "rack_4x8"));
}

TEST(ClusterProfile, NvlinkPairsAddsAdjacentPeerLinks) {
  const ClusterProfile c = ClusterProfile::nvlink_pairs(4);
  EXPECT_NE(c.links.peer(0, 1), nullptr);
  EXPECT_NE(c.links.peer(2, 3), nullptr);
  EXPECT_EQ(c.links.peer(1, 2), nullptr);  // across pairs: host-staged
  EXPECT_LT(c.links.device_to_device(0, 1, 1e9),
            c.links.device_to_device(1, 2, 1e9));
}

}  // namespace
}  // namespace bsr::cluster
