// Satellite: event-engine determinism through the Sweep engine — an 8-device
// cluster sweep on a 4-wide thread pool is bitwise identical to the 1-thread
// run, under the same splitmix64 per-cell seed-derivation contract as PR 2.
#include <gtest/gtest.h>

#include "bsr/bsr.hpp"

namespace bsr {
namespace {

Sweep scaling_sweep(int threads) {
  RunConfig base;
  base.n = 2048;
  base.b = 128;
  Sweep sweep(base);
  sweep.over(trial_axis(2, /*root_seed=*/99))
      .over(devices_axis({1, 4, 8}))
      .over(strategy_axis({"original", "bsr"}))
      .threads(threads);
  return sweep;
}

TEST(ClusterDeterminism, EightDeviceSweepIsThreadCountInvariant) {
  SweepResult serial = scaling_sweep(1).run();
  SweepResult parallel = scaling_sweep(4).run();
  ASSERT_EQ(serial.rows.size(), parallel.rows.size());
  ASSERT_EQ(serial.rows.size(), 12u);
  for (std::size_t i = 0; i < serial.rows.size(); ++i) {
    const SweepRow& a = serial.rows[i];
    const SweepRow& b = parallel.rows[i];
    EXPECT_EQ(a.coords, b.coords);
    EXPECT_EQ(a.config.fingerprint(), b.config.fingerprint());
    // Bitwise identity: exact double equality, not tolerance.
    EXPECT_EQ(a.report->seconds(), b.report->seconds()) << "row " << i;
    EXPECT_EQ(a.report->total_energy_j(), b.report->total_energy_j());
    EXPECT_EQ(a.report->ed2p(), b.report->ed2p());
    ASSERT_EQ(a.report->device_usage.size(), b.report->device_usage.size());
    for (std::size_t d = 0; d < a.report->device_usage.size(); ++d) {
      EXPECT_EQ(a.report->device_usage[d].energy_j,
                b.report->device_usage[d].energy_j);
      EXPECT_EQ(a.report->device_usage[d].busy_s,
                b.report->device_usage[d].busy_s);
      EXPECT_EQ(a.report->device_usage[d].idle_s,
                b.report->device_usage[d].idle_s);
      EXPECT_EQ(a.report->device_usage[d].final_mhz,
                b.report->device_usage[d].final_mhz);
    }
  }
}

TEST(ClusterDeterminism, PerCellSeedsFollowTheSplitmixContract) {
  const SweepResult grid = scaling_sweep(1).run();
  // trial_axis points derive seed = derive_cell_seed(root, trial) regardless
  // of the other axes' coordinates or the executing thread.
  for (const SweepRow& row : grid.rows) {
    const std::uint64_t trial = std::stoull(row.coords.at("trial"));
    EXPECT_EQ(row.config.seed, derive_cell_seed(99, trial));
  }
}

TEST(ClusterDeterminism, RepeatedSweepServedEntirelyFromCache) {
  Sweep sweep = scaling_sweep(0);  // shared pool, whatever its width
  const SweepResult first = sweep.run();
  EXPECT_EQ(first.unique_runs, 12u);
  const SweepResult again = sweep.run();
  EXPECT_EQ(again.unique_runs, 0u);  // all cache hits
  for (std::size_t i = 0; i < first.rows.size(); ++i) {
    EXPECT_EQ(first.rows[i].report.get(), again.rows[i].report.get());
  }
}

}  // namespace
}  // namespace bsr
