// End-to-end behavior of the event-driven cluster engine and its facade:
// accounting consistency, determinism, scaling direction, strategy ordering,
// ABFT coverage accounting per device, and RunConfig dispatch/validation.
#include <gtest/gtest.h>

#include "bsr/bsr.hpp"
#include "cluster/engine.hpp"
#include "energy/baselines.hpp"

namespace bsr {
namespace {

predict::WorkloadModel workload(std::int64_t n, std::int64_t b) {
  return predict::WorkloadModel{predict::Factorization::LU, n, b, 8};
}

cluster::ClusterOptions options(cluster::ClusterStrategy s) {
  cluster::ClusterOptions o;
  o.strategy = s;
  return o;
}

TEST(ClusterEngine, RunsAllStrategiesWithConsistentAccounting) {
  const cluster::ClusterProfile profile =
      cluster::ClusterProfile::paper_scaleout(3);
  const predict::WorkloadModel wl = workload(4096, 256);
  for (const auto s :
       {cluster::ClusterStrategy::Original, cluster::ClusterStrategy::R2H,
        cluster::ClusterStrategy::SR, cluster::ClusterStrategy::BSR}) {
    const cluster::ClusterReport r =
        cluster::run_cluster(profile, wl, options(s));
    EXPECT_GT(r.makespan, SimTime::zero());
    EXPECT_GT(r.total_energy_j(), 0.0);
    ASSERT_EQ(r.devices.size(), 3u);
    // Every lane's busy + idle + dvfs time accounts for the full makespan.
    const auto check_lane = [&](const cluster::DeviceUsage& d) {
      EXPECT_NEAR(d.busy_s + d.idle_s + d.dvfs_s, r.makespan.seconds(), 1e-6)
          << d.name;
      EXPECT_GT(d.energy_j, 0.0) << d.name;
    };
    check_lane(r.host);
    for (const cluster::DeviceUsage& d : r.devices) check_lane(d);
    // The devices share exactly the factorization's GPU flops; the host ran
    // every panel.
    double dev_flops = 0.0;
    for (const cluster::DeviceUsage& d : r.devices) dev_flops += d.flops;
    double expect_gpu = 0.0;
    double expect_pd = 0.0;
    for (int k = 0; k < wl.num_iterations(); ++k) {
      expect_gpu += wl.iteration(k).gpu_flops();
      expect_pd += wl.iteration(k).pd_flops;
    }
    if (s == cluster::ClusterStrategy::Original) {
      EXPECT_NEAR(dev_flops, expect_gpu, 1e-3 * expect_gpu);
      EXPECT_NEAR(r.host.flops, expect_pd, 1e-6 * expect_pd);
    }
  }
}

TEST(ClusterEngine, BitwiseDeterministic) {
  const cluster::ClusterProfile profile =
      cluster::ClusterProfile::paper_scaleout(4);
  const predict::WorkloadModel wl = workload(4096, 256);
  const cluster::ClusterReport a =
      cluster::run_cluster(profile, wl, options(cluster::ClusterStrategy::BSR));
  const cluster::ClusterReport b =
      cluster::run_cluster(profile, wl, options(cluster::ClusterStrategy::BSR));
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.total_energy_j(), b.total_energy_j());  // exact, not near
  for (std::size_t d = 0; d < a.devices.size(); ++d) {
    EXPECT_EQ(a.devices[d].energy_j, b.devices[d].energy_j);
    EXPECT_EQ(a.devices[d].busy_s, b.devices[d].busy_s);
    EXPECT_EQ(a.devices[d].final_mhz, b.devices[d].final_mhz);
  }
}

TEST(ClusterEngine, SeedChangesTheRunNoiseOffDoesNot) {
  const cluster::ClusterProfile profile =
      cluster::ClusterProfile::paper_scaleout(2);
  const predict::WorkloadModel wl = workload(4096, 256);
  cluster::ClusterOptions o1 = options(cluster::ClusterStrategy::BSR);
  cluster::ClusterOptions o2 = o1;
  o2.seed = o1.seed + 1;
  EXPECT_NE(cluster::run_cluster(profile, wl, o1).total_energy_j(),
            cluster::run_cluster(profile, wl, o2).total_energy_j());
  o1.noise.enabled = false;
  o2.noise.enabled = false;
  EXPECT_EQ(cluster::run_cluster(profile, wl, o1).total_energy_j(),
            cluster::run_cluster(profile, wl, o2).total_energy_j());
}

TEST(ClusterEngine, MoreDevicesShortenTheMakespan) {
  const predict::WorkloadModel wl = workload(16384, 512);
  const cluster::ClusterOptions o = options(cluster::ClusterStrategy::Original);
  const double t1 =
      cluster::run_cluster(cluster::ClusterProfile::paper_scaleout(1), wl, o)
          .seconds();
  const double t4 =
      cluster::run_cluster(cluster::ClusterProfile::paper_scaleout(4), wl, o)
          .seconds();
  EXPECT_LT(t4, t1);
  EXPECT_GT(t4, t1 / 4.0);  // sublinear: panel + links bound it
}

TEST(ClusterEngine, SharedBusCarriesTwoStreamsBeforeQueueing) {
  // The bus is occupied only for a transfer's *service time* (its share of
  // the aggregate bus bandwidth), so the default 2x-link bus genuinely
  // overlaps two broadcasts; throttling the bus to link speed serializes
  // them and must slow the run down.
  const predict::WorkloadModel wl = workload(16384, 512);
  const cluster::ClusterOptions o = options(cluster::ClusterStrategy::Original);
  cluster::ClusterProfile wide = cluster::ClusterProfile::paper_scaleout(8);
  cluster::ClusterProfile narrow = wide;
  narrow.links.host_bus.bandwidth_gbs = wide.links.host_links[0].bandwidth_gbs;
  const double t_wide = cluster::run_cluster(wide, wl, o).seconds();
  const double t_narrow = cluster::run_cluster(narrow, wl, o).seconds();
  EXPECT_LT(t_wide, t_narrow);
}

TEST(ClusterEngine, DeviceFlopsExcludeChecksumOverhead) {
  // DeviceUsage::flops reports useful factorization throughput: forcing full
  // checksums must cost time/energy without inflating the flop count.
  const cluster::ClusterProfile profile =
      cluster::ClusterProfile::paper_scaleout(2);
  const predict::WorkloadModel wl = workload(4096, 256);
  cluster::ClusterOptions o = options(cluster::ClusterStrategy::Original);
  o.forced_abft = abft::ChecksumMode::Full;
  const cluster::ClusterReport full = cluster::run_cluster(profile, wl, o);
  o.forced_abft = abft::ChecksumMode::None;
  const cluster::ClusterReport none = cluster::run_cluster(profile, wl, o);
  for (std::size_t d = 0; d < full.devices.size(); ++d) {
    EXPECT_DOUBLE_EQ(full.devices[d].flops, none.devices[d].flops);
  }
}

TEST(ClusterEngine, CholeskyBroadcastsTheFullPanelNotTheDiagonalBlock) {
  // The distributed trailing update A22 -= L21*L21^T needs the whole m x b
  // L21 panel at every device; if the engine reused the single-node Cholesky
  // transfer volume (the b x b diagonal block only), links would be nearly
  // free and uncapping their bandwidth would change almost nothing.
  const predict::WorkloadModel chol{predict::Factorization::Cholesky, 16384,
                                    512, 8};
  const cluster::ClusterOptions o = options(cluster::ClusterStrategy::Original);
  const cluster::ClusterProfile paper =
      cluster::ClusterProfile::paper_scaleout(8);
  cluster::ClusterProfile fat = paper;
  for (hw::TransferModel& link : fat.links.host_links) {
    link.bandwidth_gbs *= 100.0;
  }
  fat.links.host_bus.bandwidth_gbs *= 100.0;
  const double t_paper = cluster::run_cluster(paper, chol, o).seconds();
  const double t_fat = cluster::run_cluster(fat, chol, o).seconds();
  EXPECT_GT(t_paper, 1.05 * t_fat);
}

TEST(ClusterEngine, PeerLinksRelayTheBroadcastOffTheBus) {
  // nvlink_pairs forwards the panel to odd devices over the pair's peer link
  // instead of a second host-bus transfer, so it must beat the pure-PCIe
  // topology (and in particular must not be bit-identical to it).
  const predict::WorkloadModel wl = workload(16384, 512);
  const cluster::ClusterOptions o = options(cluster::ClusterStrategy::Original);
  const double t_pcie =
      cluster::run_cluster(cluster::ClusterProfile::paper_scaleout(8), wl, o)
          .seconds();
  const double t_nvlink =
      cluster::run_cluster(cluster::ClusterProfile::nvlink_pairs(8), wl, o)
          .seconds();
  EXPECT_LT(t_nvlink, t_pcie);
}

TEST(ClusterEngine, ReclaimingStrategiesParkRetiredLanes) {
  // Block-cyclic ownership only shrinks, so every device eventually runs its
  // last update; SR/BSR then drop the retired lane to the floor clock while
  // Original keeps clocks pinned at base to the end.
  const cluster::ClusterProfile profile =
      cluster::ClusterProfile::paper_scaleout(4);
  const predict::WorkloadModel wl = workload(4096, 256);
  const cluster::ClusterReport bsr =
      cluster::run_cluster(profile, wl, options(cluster::ClusterStrategy::BSR));
  for (const cluster::DeviceUsage& d : bsr.devices) {
    EXPECT_EQ(d.final_mhz, profile.devices[0].freq.min_mhz) << d.name;
  }
  const cluster::ClusterReport org = cluster::run_cluster(
      profile, wl, options(cluster::ClusterStrategy::Original));
  for (const cluster::DeviceUsage& d : org.devices) {
    EXPECT_EQ(d.final_mhz, profile.devices[0].freq.base_mhz) << d.name;
  }
}

TEST(ClusterEngine, BsrSavesEnergyOverOriginal) {
  const cluster::ClusterProfile profile =
      cluster::ClusterProfile::paper_scaleout(4);
  const predict::WorkloadModel wl = workload(16384, 512);
  const double e_org =
      cluster::run_cluster(profile, wl,
                           options(cluster::ClusterStrategy::Original))
          .total_energy_j();
  const double e_bsr =
      cluster::run_cluster(profile, wl, options(cluster::ClusterStrategy::BSR))
          .total_energy_j();
  EXPECT_LT(e_bsr, e_org);
}

TEST(ClusterEngine, ForcedAbftCountsPerDevice) {
  const cluster::ClusterProfile profile =
      cluster::ClusterProfile::paper_scaleout(2);
  const predict::WorkloadModel wl = workload(4096, 256);
  cluster::ClusterOptions o = options(cluster::ClusterStrategy::Original);
  o.forced_abft = abft::ChecksumMode::Full;
  const cluster::ClusterReport r = cluster::run_cluster(profile, wl, o);
  for (const cluster::DeviceUsage& d : r.devices) {
    EXPECT_GT(d.iters_full, 0) << d.name;
    EXPECT_EQ(d.iters_unprotected, 0) << d.name;
  }
  EXPECT_EQ(r.iters_protected(),
            r.devices[0].iters_full + r.devices[1].iters_full);
  // Checksums cost time and energy.
  o.forced_abft = abft::ChecksumMode::None;
  const cluster::ClusterReport none = cluster::run_cluster(profile, wl, o);
  EXPECT_GT(r.makespan, none.makespan);
}

// ---- facade: RunConfig dispatch, ClusterConfig, validation ------------------

TEST(ClusterFacade, RunConfigDispatchesToClusterEngine) {
  RunConfig cfg;
  cfg.n = 4096;
  cfg.b = 256;
  cfg.devices = 2;
  const core::RunReport r = run(cfg);
  ASSERT_EQ(r.device_usage.size(), 3u);  // host + 2 accelerators
  EXPECT_GT(r.seconds(), 0.0);
  EXPECT_GT(r.gflops(), 0.0);
  // Totals aggregate the per-device breakdown exactly.
  EXPECT_DOUBLE_EQ(r.cpu_energy_j(), r.device_usage[0].energy_j);
  EXPECT_DOUBLE_EQ(r.gpu_energy_j(), r.device_usage[1].energy_j +
                                         r.device_usage[2].energy_j);
  // Single-node runs carry no per-device breakdown.
  cfg.devices = 0;
  EXPECT_TRUE(run(cfg).device_usage.empty());
}

TEST(ClusterFacade, ClusterConfigMatchesLoweredRunConfig) {
  ClusterConfig cc;
  cc.base.n = 4096;
  cc.base.b = 256;
  cc.devices = 3;
  cc.profile = "nvlink_pairs";
  EXPECT_EQ(cc.lowered().devices, 3);
  EXPECT_EQ(cc.lowered().cluster, "nvlink_pairs");
  const core::RunReport a = run_cluster(cc);
  const core::RunReport b = run(cc.lowered());
  EXPECT_DOUBLE_EQ(a.total_energy_j(), b.total_energy_j());
  EXPECT_EQ(a.seconds(), b.seconds());
  const cluster::ClusterReport detailed = run_cluster_detailed(cc);
  EXPECT_DOUBLE_EQ(detailed.total_energy_j(), a.total_energy_j());
  ASSERT_EQ(detailed.devices.size(), 3u);
}

TEST(ClusterFacade, ValidateRejectsBadClusterConfigs) {
  RunConfig cfg;
  cfg.devices = -1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.devices = 1;
  cfg.mode = ExecutionMode::Numeric;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.mode = ExecutionMode::TimingOnly;
  cfg.cluster = "no_such_topology";
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.cluster = "paper_cluster";
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ClusterFacade, RegistryOnlyStrategiesAreRejectedForClusterRuns) {
  if (!strategies().contains("cluster_test_registry_only")) {
    strategies().add("cluster_test_registry_only",
                     {std::nullopt,
                      [](const RunConfig&, const predict::WorkloadModel&)
                          -> std::unique_ptr<energy::Strategy> {
                        return std::make_unique<energy::OriginalStrategy>();
                      }});
  }
  RunConfig cfg;
  cfg.strategy = "cluster_test_registry_only";
  cfg.devices = 2;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.devices = 0;  // single-node path still accepts it
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ClusterFacade, FingerprintSeparatesDeviceCountsAndProfiles) {
  RunConfig a;
  RunConfig b;
  b.devices = 4;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  RunConfig c = b;
  c.cluster = "nvlink_pairs";
  EXPECT_NE(b.fingerprint(), c.fingerprint());
  // The profile is normalized out on single-node runs — it has no effect.
  RunConfig d;
  d.cluster = "nvlink_pairs";
  EXPECT_EQ(a.fingerprint(), d.fingerprint());
  // Aliases canonicalize.
  RunConfig e = b;
  e.cluster = "PCIE";
  EXPECT_EQ(b.fingerprint(), e.fingerprint());
}

TEST(ClusterFacade, FcDesiredStaysSignificantForNonBsrClusterRuns) {
  // The cluster engine's per-device ABFT-OC consults fc_desired under every
  // strategy, so fc must not normalize out of cluster fingerprints (it does
  // on single-node non-BSR runs, where only BsrStrategy reads it).
  RunConfig a;
  a.strategy = "r2h";
  RunConfig b = a;
  b.fc_desired = 0.5;
  EXPECT_EQ(a.fingerprint(), b.fingerprint());  // single-node: normalized
  a.devices = 4;
  b.devices = 4;
  EXPECT_NE(a.fingerprint(), b.fingerprint());  // cluster: significant
}

TEST(ClusterFacade, ValidateMessagePrefixedExactlyOnce) {
  if (!strategies().contains("cluster_test_prefix_probe")) {
    strategies().add("cluster_test_prefix_probe",
                     {std::nullopt,
                      [](const RunConfig&, const predict::WorkloadModel&)
                          -> std::unique_ptr<energy::Strategy> {
                        return std::make_unique<energy::OriginalStrategy>();
                      }});
  }
  RunConfig cfg;
  cfg.strategy = "cluster_test_prefix_probe";
  cfg.devices = 2;
  try {
    cfg.validate();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_EQ(what.rfind("RunConfig: ", 0), 0u) << what;
    EXPECT_EQ(what.find("RunConfig:", 10), std::string::npos)
        << "doubled prefix: " << what;
  }
}

TEST(ClusterFacade, ProfileRegistryListsBuiltinsAndAliases) {
  EXPECT_TRUE(cluster_profiles().contains("paper_cluster"));
  EXPECT_TRUE(cluster_profiles().contains("pcie"));
  EXPECT_TRUE(cluster_profiles().contains("nvlink"));
  EXPECT_EQ(cluster_profiles().canonical("NVLINK"), "nvlink_pairs");
  const cluster::ClusterProfile p = make_cluster_profile("paper_cluster", 2);
  EXPECT_EQ(p.num_devices(), 2);
  EXPECT_THROW(make_cluster_profile("bogus", 2), std::invalid_argument);
}

TEST(ClusterFacade, WeakAxisGrowsNWithDeviceCount) {
  const Axis axis = weak_devices_axis({1, 2, 8}, 8192);
  ASSERT_EQ(axis.points.size(), 3u);
  RunConfig c1;
  c1.n = 8192;
  c1.b = 512;
  RunConfig c8 = c1;
  axis.points[0].apply(c1);
  axis.points[2].apply(c8);
  EXPECT_EQ(c1.devices, 1);
  // The 1-device point is the base cell verbatim: n and b untouched (even
  // off the 256 grid), so it shares a fingerprint — and one cached run —
  // with a strong-scaling base at the same config.
  EXPECT_EQ(c1.n, 8192);
  EXPECT_EQ(c1.b, 512);
  EXPECT_EQ(c8.devices, 8);
  EXPECT_EQ(c8.n, 16384);  // 8192 * 8^(1/3), on the 256 grid
  EXPECT_EQ(c8.b, 0);      // block re-tunes for the grown size
  RunConfig strong_base;
  strong_base.n = 2000;
  strong_base.devices = 1;
  RunConfig weak_base;
  weak_base.n = 2000;
  weak_devices_axis({1, 2}, 2000).points[0].apply(weak_base);
  EXPECT_EQ(strong_base.fingerprint(), weak_base.fingerprint());
}

TEST(ClusterFacade, SingleNodePlatformKeyNormalizedOutOfClusterFingerprints) {
  // Cluster runs ignore RunConfig::platform (the profile comes from
  // `cluster`), so a platform axis over cluster cells must cache as one run.
  RunConfig a;
  a.devices = 4;
  RunConfig b = a;
  b.platform = "test_small";
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  a.devices = 0;
  b.devices = 0;
  EXPECT_NE(a.fingerprint(), b.fingerprint());  // single-node: significant
}

}  // namespace
}  // namespace bsr
