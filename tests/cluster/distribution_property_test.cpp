// Satellite: distribution-invariant property suite for the 2-D block-cyclic
// layout. Rather than pinning individual owner values, these tests assert the
// partition laws that make any process grid a valid distribution — every
// trailing block owned exactly once, per-device counts balanced to within one
// block row plus one block column, the 1-D layout recovered bit-for-bit at
// q = 1, and flop conservation through the engine under every grid shape —
// swept over every factor pair of several device counts.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "bsr/bsr.hpp"
#include "cluster/distribution.hpp"

namespace bsr::cluster {
namespace {

predict::WorkloadModel workload(std::int64_t n, std::int64_t b) {
  return predict::WorkloadModel{predict::Factorization::LU, n, b, 8};
}

/// Every (p, q) with p * q == devices, in ascending p.
std::vector<BlockCyclic> all_grids(int devices) {
  std::vector<BlockCyclic> grids;
  for (int p = 1; p <= devices; ++p) {
    if (devices % p != 0) continue;
    grids.push_back(BlockCyclic{devices, p, devices / p});
  }
  return grids;
}

TEST(DistributionProperty, EveryTrailingBlockOwnedExactlyOnce) {
  const predict::WorkloadModel wl = workload(4096, 256);  // K = 16
  const std::int64_t K = wl.num_iterations();
  for (const int devices : {1, 2, 4, 6, 8, 12}) {
    for (const BlockCyclic& dist : all_grids(devices)) {
      for (int k = 0; k < K; ++k) {
        // Direct census of the trailing block set [k+1, K)^2: owner_block is
        // a total function into [0, devices), so counting it per device and
        // matching local_blocks proves each block has exactly one owner.
        std::vector<std::int64_t> census(static_cast<std::size_t>(devices), 0);
        for (std::int64_t i = k + 1; i < K; ++i) {
          for (std::int64_t j = k + 1; j < K; ++j) {
            const int owner = dist.owner_block(i, j);
            ASSERT_GE(owner, 0);
            ASSERT_LT(owner, devices);
            ++census[static_cast<std::size_t>(owner)];
          }
        }
        const std::int64_t trailing = K - k - 1;
        std::int64_t sum = 0;
        for (int d = 0; d < devices; ++d) {
          EXPECT_EQ(census[static_cast<std::size_t>(d)],
                    dist.local_blocks(wl, k, d))
              << "grid " << dist.p() << "x" << dist.q() << " k=" << k
              << " d=" << d;
          sum += dist.local_blocks(wl, k, d);
        }
        EXPECT_EQ(sum, trailing * trailing)
            << "grid " << dist.p() << "x" << dist.q() << " k=" << k;
      }
    }
  }
}

TEST(DistributionProperty, PerDeviceCountsBalancedWithinOnePanel) {
  const predict::WorkloadModel wl = workload(8192, 256);  // K = 32
  for (const int devices : {2, 4, 8, 16}) {
    for (const BlockCyclic& dist : all_grids(devices)) {
      for (int k = 0; k + 1 < wl.num_iterations(); ++k) {
        const std::int64_t t = wl.num_iterations() - k - 1;
        std::int64_t lo = t * t;
        std::int64_t hi = 0;
        for (int d = 0; d < devices; ++d) {
          const std::int64_t c = dist.local_blocks(wl, k, d);
          lo = std::min(lo, c);
          hi = std::max(hi, c);
        }
        // Block-cyclic balance: a device's count is (cols in its column
        // group) x (rows in its row group), each within one of the even
        // split, so the spread is at most one trailing block column plus one
        // trailing block row.
        const std::int64_t col_ceil = (t + dist.p() - 1) / dist.p();
        const std::int64_t row_ceil = (t + dist.q() - 1) / dist.q();
        EXPECT_LE(hi - lo, col_ceil + row_ceil)
            << "grid " << dist.p() << "x" << dist.q() << " k=" << k;
      }
    }
  }
}

TEST(DistributionProperty, ExplicitQ1RecoversTheOneDLayoutExactly) {
  const predict::WorkloadModel wl = workload(4096, 256);
  for (const int devices : {1, 3, 4, 8}) {
    const BlockCyclic oned{devices};                   // default 1-D layout
    const BlockCyclic grid{devices, devices, 1};       // explicit D x 1
    for (int k = 0; k < wl.num_iterations(); ++k) {
      for (int d = 0; d < devices; ++d) {
        EXPECT_EQ(grid.owner(k), oned.owner(k));
        EXPECT_EQ(grid.local_cols(wl, k, d), oned.local_cols(wl, k, d));
        EXPECT_EQ(grid.local_blocks(wl, k, d), oned.local_blocks(wl, k, d));
        EXPECT_EQ(grid.has_work(wl, k, d), oned.has_work(wl, k, d));
        // Bitwise, not approximate: q = 1 must route through the same
        // arithmetic, so the doubles are identical.
        EXPECT_EQ(grid.share(wl, k, d), oned.share(wl, k, d));
      }
      EXPECT_EQ(grid.row_slice(wl, k, 0), oned.row_slice(wl, k, 0));
    }
  }
}

TEST(DistributionProperty, SharesAndRowSlicesPartitionUnityOnEveryGrid) {
  const predict::WorkloadModel wl = workload(4096, 256);
  for (const BlockCyclic& dist : all_grids(8)) {
    for (int k = 0; k + 1 < wl.num_iterations(); ++k) {
      double share_sum = 0.0;
      for (int d = 0; d < dist.devices; ++d) share_sum += dist.share(wl, k, d);
      EXPECT_NEAR(share_sum, 1.0, 1e-12)
          << "grid " << dist.p() << "x" << dist.q() << " k=" << k;
      double slice_sum = 0.0;
      for (int rg = 0; rg < dist.q(); ++rg) {
        const double s = dist.row_slice(wl, k, rg);
        EXPECT_GE(s, 0.0);
        EXPECT_LE(s, 1.0);
        slice_sum += s;
      }
      EXPECT_NEAR(slice_sum, 1.0, 1e-12)
          << "grid " << dist.p() << "x" << dist.q() << " k=" << k;
    }
  }
}

TEST(DistributionProperty, EngineConservesFlopsUnderEveryGrid) {
  // The distribution moves work between devices; it must never create or
  // destroy it. Total useful flops (host panels + device updates) match the
  // workload model under every grid shape of an 8-device rack.
  RunConfig base;
  base.n = 4096;
  base.b = 256;
  base.devices = 8;
  base.cluster = "rack_8x8";
  const predict::WorkloadModel wl = base.workload();
  double expect = 0.0;
  for (int k = 0; k < wl.num_iterations(); ++k) {
    expect += wl.iteration(k).pd_flops + wl.iteration(k).gpu_flops();
  }
  for (const BlockCyclic& dist : all_grids(8)) {
    RunConfig cfg = base;
    cfg.grid_p = dist.p();
    cfg.grid_q = dist.q();
    const core::RunReport r = run(cfg);
    double total = 0.0;
    for (const DeviceUsage& d : r.device_usage) total += d.flops;
    EXPECT_NEAR(total, expect, 1e-6 * expect)
        << "grid " << dist.p() << "x" << dist.q();
  }
}

TEST(DistributionProperty, ExplicitOneDGridMatchesDefaultRunBitForBit) {
  // RunConfig-level corollary of the q = 1 recovery: an explicit devices x 1
  // grid resolves to the same layout as the flat default, shares its
  // fingerprint (one result-cache entry), and reproduces the same bytes.
  RunConfig flat;
  flat.n = 4096;
  flat.b = 256;
  flat.devices = 4;
  RunConfig explicit_grid = flat;
  explicit_grid.grid_p = 4;
  explicit_grid.grid_q = 1;
  explicit_grid.collective = "relay";
  EXPECT_EQ(flat.fingerprint(), explicit_grid.fingerprint());
  const core::RunReport a = run(flat);
  const core::RunReport b = run(explicit_grid);
  EXPECT_EQ(a.seconds(), b.seconds());
  EXPECT_EQ(a.total_energy_j(), b.total_energy_j());
}

}  // namespace
}  // namespace bsr::cluster
