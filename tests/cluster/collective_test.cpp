// Satellite: golden-schedule contracts for the panel-broadcast collectives.
// On a flat two-device profile the relay, ring, and tree schedules degenerate
// to the same single transfer, so their reports must be bitwise identical
// (the golden-equivalence guard that keeps new schedules honest); on a
// multi-node rack their hop structures genuinely differ and ring/tree must
// beat the host-staged relay strictly. Fingerprints keep every resolved
// layout in its own result-cache key.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "bsr/bsr.hpp"

namespace bsr {
namespace {

core::RunReport run_with(const std::string& cluster, int devices,
                         const std::string& collective) {
  RunConfig cfg;
  cfg.n = 4096;
  cfg.b = 256;
  cfg.devices = devices;
  cfg.cluster = cluster;
  cfg.collective = collective;
  return run(cfg);
}

TEST(Collectives, AllSchedulesBitwiseEqualWhenTimingsCoincide) {
  // Two devices on a flat profile: every schedule sends the panel to device 0
  // then forwards once over the pair's peer link, in the same legacy order
  // (the owner-first rotation only engages on hierarchical profiles). The
  // reports must agree to the last bit — exact double equality, no tolerance.
  const core::RunReport relay = run_with("nvlink_pairs", 2, "relay");
  for (const char* schedule : {"ring", "tree"}) {
    const core::RunReport other = run_with("nvlink_pairs", 2, schedule);
    EXPECT_EQ(relay.seconds(), other.seconds()) << schedule;
    EXPECT_EQ(relay.total_energy_j(), other.total_energy_j()) << schedule;
    EXPECT_EQ(relay.ed2p(), other.ed2p()) << schedule;
    ASSERT_EQ(relay.device_usage.size(), other.device_usage.size());
    for (std::size_t d = 0; d < relay.device_usage.size(); ++d) {
      EXPECT_EQ(relay.device_usage[d].busy_s, other.device_usage[d].busy_s)
          << schedule << " lane " << d;
      EXPECT_EQ(relay.device_usage[d].energy_j, other.device_usage[d].energy_j)
          << schedule << " lane " << d;
    }
  }
}

TEST(Collectives, RingAndTreeStrictlyBeatRelayAcrossNodes) {
  // Two rack nodes: relay stages every panel through the host and its
  // serial send port, while ring/tree factor panels on the owning device and
  // fan out over peer/inter-node hops — a structurally shorter critical
  // path, so the makespan win must be strict, not a tie.
  const double relay = run_with("rack_8x8", 16, "relay").seconds();
  const double ring = run_with("rack_8x8", 16, "ring").seconds();
  const double tree = run_with("rack_8x8", 16, "tree").seconds();
  EXPECT_LT(ring, relay);
  EXPECT_LT(tree, relay);
}

TEST(Collectives, AutoResolvesPerTopology) {
  // Flat profiles keep the pre-collective relay bit-for-bit; racks pick the
  // binomial tree and a near-square grid.
  RunConfig flat;
  flat.devices = 4;
  ResolvedClusterLayout layout = resolved_cluster_layout(flat);
  EXPECT_EQ(layout.schedule, cluster::BroadcastSchedule::Relay);
  EXPECT_EQ(layout.grid_p, 4);
  EXPECT_EQ(layout.grid_q, 1);
  RunConfig rack;
  rack.devices = 8;
  rack.cluster = "rack_8x8";
  layout = resolved_cluster_layout(rack);
  EXPECT_EQ(layout.schedule, cluster::BroadcastSchedule::Tree);
  EXPECT_EQ(layout.grid_p * layout.grid_q, 8);
  EXPECT_GT(layout.grid_q, 1);  // near-square, not 1-D
}

TEST(Collectives, FingerprintSeparatesEveryResolvedLayout) {
  RunConfig base;
  base.devices = 8;
  base.cluster = "rack_8x8";
  RunConfig grid = base;
  grid.grid_p = 8;
  grid.grid_q = 1;
  EXPECT_NE(base.fingerprint(), grid.fingerprint());  // auto is near-square
  RunConfig ring = base;
  ring.collective = "ring";
  EXPECT_NE(base.fingerprint(), ring.fingerprint());  // auto is tree
  RunConfig rebal = base;
  rebal.rebalance = true;
  EXPECT_NE(base.fingerprint(), rebal.fingerprint());
  // Spelling out what auto resolves to is the *same* experiment, so it must
  // alias to the same cache key.
  RunConfig resolved = base;
  const ResolvedClusterLayout layout = resolved_cluster_layout(base);
  resolved.grid_p = layout.grid_p;
  resolved.grid_q = layout.grid_q;
  resolved.collective = "tree";
  EXPECT_EQ(base.fingerprint(), resolved.fingerprint());
  // Single-node runs have no layout: the knobs normalize out entirely.
  RunConfig single = ring;
  single.devices = 0;
  RunConfig single_default = base;
  single_default.devices = 0;
  EXPECT_EQ(single.fingerprint(), single_default.fingerprint());
}

TEST(Collectives, OversizedDeviceCountsFailLoudlyWithProfileAndCapacity) {
  const auto expect_names = [](const auto& fn, const std::string& profile,
                               const std::string& capacity) {
    try {
      fn();
      FAIL() << "expected std::invalid_argument for " << profile;
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find(profile), std::string::npos) << what;
      EXPECT_NE(what.find(capacity), std::string::npos) << what;
    }
  };
  RunConfig cfg;
  cfg.devices = 100;
  cfg.cluster = "rack_8x8";
  expect_names([&] { cfg.validate(); }, "rack_8x8", "64");
  expect_names([] { (void)make_cluster_profile("rack_4x8", 33); }, "rack_4x8",
               "32");
  expect_names([] { (void)make_cluster_profile("paper_cluster", 17); },
               "paper_cluster", "16");
  // In range: both paths accept the exact capacity.
  cfg.devices = 64;
  EXPECT_NO_THROW(cfg.validate());
  EXPECT_EQ(make_cluster_profile("rack_4x8", 32).num_devices(), 32);
}

TEST(Collectives, GridMustCoverTheDeviceCountExactly) {
  RunConfig cfg;
  cfg.devices = 8;
  cfg.grid_p = 3;
  cfg.grid_q = 3;
  try {
    cfg.validate();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("3x3"), std::string::npos) << what;
    EXPECT_NE(what.find("devices=8"), std::string::npos) << what;
  }
  cfg.grid_q = 0;  // half-specified grids are rejected too
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.grid_p = 4;
  cfg.grid_q = 2;
  EXPECT_NO_THROW(cfg.validate());
}

}  // namespace
}  // namespace bsr
