// The tracing determinism contract (include/bsr/observability.hpp): a run
// with a recorder attached produces a byte-identical RunReport on both
// engines, the recorder never enters the fingerprint, and the Chrome
// trace-event export is valid JSON that renders byte-identically from the
// same recorded state.
#include "bsr/observability.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "bsr/bsr.hpp"
#include "common/json.hpp"
#include "serve/report_json.hpp"

namespace bsr {
namespace {

RunConfig small_config() {
  RunConfig cfg;
  cfg.n = 1024;
  cfg.b = 128;
  return cfg;
}

RunConfig cluster_config() {
  RunConfig cfg = small_config();
  cfg.devices = 2;
  return cfg;
}

bool has_kind(const TraceRecorder& rec, TraceSpanKind kind) {
  return std::any_of(rec.spans().begin(), rec.spans().end(),
                     [kind](const TraceSpan& s) { return s.kind == kind; });
}

TEST(Trace, SingleNodeReportIsByteIdenticalWithTracingOn) {
  const RunConfig cfg = small_config();
  const std::string untraced = serve::serialize_report(run(cfg));

  TraceRecorder rec;
  RunConfig traced_cfg = cfg;
  traced_cfg.trace = &rec;
  const std::string traced = serve::serialize_report(run(traced_cfg));

  EXPECT_EQ(traced, untraced);
  EXPECT_FALSE(rec.empty());
}

TEST(Trace, ClusterReportIsByteIdenticalWithTracingOn) {
  const RunConfig cfg = cluster_config();
  const std::string untraced = serve::serialize_report(run(cfg));

  TraceRecorder rec;
  RunConfig traced_cfg = cfg;
  traced_cfg.trace = &rec;
  const std::string traced = serve::serialize_report(run(traced_cfg));

  EXPECT_EQ(traced, untraced);
  EXPECT_FALSE(rec.empty());
}

TEST(Trace, SingleNodeEmitsTheSchedTaxonomy) {
  TraceRecorder rec;
  RunConfig cfg = small_config();
  cfg.trace = &rec;
  run(cfg);

  EXPECT_TRUE(has_kind(rec, TraceSpanKind::Iteration));
  EXPECT_TRUE(has_kind(rec, TraceSpanKind::CpuLane));
  EXPECT_TRUE(has_kind(rec, TraceSpanKind::GpuLane));
  for (const TraceSpan& s : rec.spans()) {
    EXPECT_GE(s.start_ns, 0) << "span starts before the run";
    EXPECT_GE(s.dur_ns, 0) << "negative busy window";
  }
  // One Iteration span per pipeline iteration, each with its lane pair.
  const auto iterations = static_cast<std::size_t>(
      std::count_if(rec.spans().begin(), rec.spans().end(),
                    [](const TraceSpan& s) {
                      return s.kind == TraceSpanKind::Iteration;
                    }));
  EXPECT_GT(iterations, 1u);
  EXPECT_GE(rec.size(), 3 * iterations);
}

TEST(Trace, ClusterEmitsTheClusterTaxonomy) {
  TraceRecorder rec;
  RunConfig cfg = cluster_config();
  cfg.trace = &rec;
  run(cfg);

  EXPECT_TRUE(has_kind(rec, TraceSpanKind::Panel));
  EXPECT_TRUE(has_kind(rec, TraceSpanKind::Update));
  EXPECT_TRUE(has_kind(rec, TraceSpanKind::Transfer));
  // Update spans cover every device lane (1..devices).
  std::set<std::int32_t> update_lanes;
  for (const TraceSpan& s : rec.spans())
    if (s.kind == TraceSpanKind::Update) update_lanes.insert(s.lane);
  EXPECT_EQ(update_lanes.size(), 2u);
}

TEST(Trace, RecorderNeverEntersTheFingerprint) {
  RunConfig cfg = small_config();
  const std::string bare = cfg.fingerprint();
  TraceRecorder rec;
  cfg.trace = &rec;
  EXPECT_EQ(cfg.fingerprint(), bare)
      << "a traced config must hit the same cache entries as an untraced one";
}

TEST(Trace, ChromeExportIsValidJsonWithTheDocumentedShape) {
  TraceRecorder rec;
  RunConfig cfg = small_config();
  cfg.trace = &rec;
  run(cfg);

  const std::string json =
      chrome_trace_json(rec, trace_meta_for(cfg, "trace_test"));
  const JsonValue doc = JsonValue::parse(json);
  ASSERT_TRUE(doc.is_object());

  const JsonValue& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  EXPECT_GT(events.items().size(), rec.size());  // spans + metadata + counters

  const JsonValue& other = doc.at("otherData");
  EXPECT_EQ(other.at("tool").as_string(), "trace_test");
  EXPECT_EQ(other.at("fingerprint").as_string(), cfg.fingerprint());
  EXPECT_EQ(other.at("strategy").as_string(), "bsr");
  EXPECT_FALSE(other.at("version").as_string().empty());
  EXPECT_EQ(other.at("spans").to_int64(),
            static_cast<std::int64_t>(rec.size()));
}

TEST(Trace, ChromeExportIsDeterministic) {
  TraceRecorder rec;
  RunConfig cfg = small_config();
  cfg.trace = &rec;
  run(cfg);

  const TraceMeta meta = trace_meta_for(cfg, "trace_test");
  EXPECT_EQ(chrome_trace_json(rec, meta), chrome_trace_json(rec, meta));

  // Same config, fresh run, fresh recorder: still the same bytes — traces
  // are as reproducible as the runs they observe.
  TraceRecorder rec2;
  RunConfig cfg2 = small_config();
  cfg2.trace = &rec2;
  run(cfg2);
  EXPECT_EQ(chrome_trace_json(rec2, trace_meta_for(cfg2, "trace_test")),
            chrome_trace_json(rec, meta));
}

TEST(Trace, FaultCampaignSpansCarryFaultCounts) {
  TraceRecorder rec;
  RunConfig cfg = small_config();
  cfg.faults.enabled = true;
  cfg.faults.rate_multiplier = 50.0;  // make a strike near-certain
  cfg.trace = &rec;
  const core::RunReport report = run(cfg);

  std::int64_t traced_faults = 0;
  for (const TraceSpan& s : rec.spans())
    if (s.kind == TraceSpanKind::Recovery) traced_faults += s.faults_injected;
  EXPECT_EQ(traced_faults, report.faults_injected())
      << "spans must account for exactly the faults the report counts";
}

}  // namespace
}  // namespace bsr
