#include "predict/workload.hpp"

#include <gtest/gtest.h>

namespace bsr::predict {
namespace {

WorkloadModel lu(std::int64_t n = 30720, std::int64_t b = 512) {
  return {Factorization::LU, n, b, 8};
}

TEST(Workload, IterationCount) {
  EXPECT_EQ(lu(30720, 512).num_iterations(), 60);
  EXPECT_EQ(lu(1000, 512).num_iterations(), 2);  // ragged tail
  EXPECT_EQ(lu(512, 512).num_iterations(), 1);
}

TEST(Workload, RemainingShrinksByBlock) {
  const WorkloadModel w = lu();
  EXPECT_EQ(w.remaining(0), 30720);
  EXPECT_EQ(w.remaining(1), 30208);
}

TEST(Workload, LuFirstIterationFlopCounts) {
  const WorkloadModel w = lu();
  const IterationWork it = w.iteration(0);
  const double m = 30720;
  const double b = 512;
  EXPECT_NEAR(it.pd_flops, m * b * b - b * b * b / 3.0, 1.0);
  EXPECT_NEAR(it.tmu_flops, 2.0 * (m - b) * (m - b) * b, 1.0);
  EXPECT_NEAR(it.pu_flops, b * b * (m - b), 1.0);
  EXPECT_NEAR(it.transfer_bytes, 2.0 * m * b * 8, 1.0);
}

TEST(Workload, LastIterationHasNoTrailingWork) {
  const WorkloadModel w = lu(1024, 512);
  const IterationWork it = w.iteration(1);
  EXPECT_DOUBLE_EQ(it.tmu_flops, 0.0);
  EXPECT_DOUBLE_EQ(it.pu_flops, 0.0);
  EXPECT_GT(it.pd_flops, 0.0);
}

TEST(Workload, CholeskyPdConstantPerIteration) {
  const WorkloadModel w{Factorization::Cholesky, 30720, 512, 8};
  // Table 2: the PD-Cholesky ratio is exactly 1 (b x b potf2 every time).
  EXPECT_DOUBLE_EQ(w.iteration(3).pd_flops, w.iteration(17).pd_flops);
  EXPECT_DOUBLE_EQ(w.iteration(0).transfer_bytes, w.iteration(10).transfer_bytes);
}

TEST(Workload, GpuFlopsDecreaseMonotonically) {
  for (Factorization f :
       {Factorization::Cholesky, Factorization::LU, Factorization::QR}) {
    const WorkloadModel w{f, 8192, 512, 8};
    double prev = 1e300;
    for (int k = 0; k < w.num_iterations(); ++k) {
      const double g = w.iteration(k).gpu_flops();
      EXPECT_LE(g, prev) << to_string(f) << " iter " << k;
      prev = g;
    }
  }
}

TEST(Workload, TotalFlopsFormulae) {
  const double n = 4096;
  EXPECT_NEAR((WorkloadModel{Factorization::Cholesky, 4096, 256, 8}).total_flops(),
              n * n * n / 3.0, 1.0);
  EXPECT_NEAR((WorkloadModel{Factorization::LU, 4096, 256, 8}).total_flops(),
              2.0 * n * n * n / 3.0, 1.0);
  EXPECT_NEAR((WorkloadModel{Factorization::QR, 4096, 256, 8}).total_flops(),
              4.0 * n * n * n / 3.0, 1.0);
}

TEST(Workload, SumOfIterationFlopsApproximatesTotal) {
  // The per-iteration decomposition must account for (almost) all the work.
  for (Factorization f : {Factorization::Cholesky, Factorization::LU}) {
    const WorkloadModel w{f, 8192, 256, 8};
    double sum = 0.0;
    for (int k = 0; k < w.num_iterations(); ++k) {
      const IterationWork it = w.iteration(k);
      sum += it.pd_flops + it.pu_flops + it.tmu_flops;
    }
    EXPECT_NEAR(sum / w.total_flops(), 1.0, 0.15) << to_string(f);
  }
}

TEST(Workload, FullChecksumCostsDoubleSingle) {
  const WorkloadModel w = lu();
  const IterationWork it = w.iteration(5);
  EXPECT_DOUBLE_EQ(it.checksum_update_flops_full,
                   2.0 * it.checksum_update_flops_single);
  EXPECT_DOUBLE_EQ(it.checksum_verify_bytes_full,
                   2.0 * it.checksum_verify_bytes_single);
}

TEST(Workload, ChecksumOverheadIsSmallFraction) {
  const WorkloadModel w = lu();
  const IterationWork it = w.iteration(0);
  EXPECT_LT(it.checksum_update_flops_full, 0.05 * it.gpu_flops());
}

TEST(Workload, ComplexityRatioIdentityAndSymmetry) {
  const WorkloadModel w = lu(8192, 512);
  EXPECT_DOUBLE_EQ(w.complexity_ratio(OpKind::TMU, 3, 3), 1.0);
  const double fwd = w.complexity_ratio(OpKind::TMU, 2, 5);
  const double bwd = w.complexity_ratio(OpKind::TMU, 5, 2);
  EXPECT_NEAR(fwd * bwd, 1.0, 1e-12);
}

TEST(Workload, RatioLessThanOneGoingForward) {
  const WorkloadModel w = lu(8192, 512);
  // Work shrinks: complexity at k+1 is below k for every shrinking op.
  for (int k = 0; k + 2 < w.num_iterations(); ++k) {
    EXPECT_LT(w.complexity_ratio(OpKind::TMU, k, k + 1), 1.0);
    EXPECT_LT(w.complexity_ratio(OpKind::PD, k, k + 1), 1.0);
  }
}

TEST(Workload, OpComplexityMatchesIterationFields) {
  const WorkloadModel w = lu(4096, 256);
  const IterationWork it = w.iteration(4);
  EXPECT_DOUBLE_EQ(w.op_complexity(OpKind::PD, 4), it.pd_flops);
  EXPECT_DOUBLE_EQ(w.op_complexity(OpKind::Transfer, 4), it.transfer_bytes);
  EXPECT_DOUBLE_EQ(w.op_complexity(OpKind::ChecksumVerify, 4),
                   it.checksum_verify_bytes_single);
}

TEST(Workload, ToStringNames) {
  EXPECT_STREQ(to_string(Factorization::Cholesky), "Cholesky");
  EXPECT_STREQ(to_string(OpKind::TMU), "TMU");
  EXPECT_STREQ(to_string(OpKind::ChecksumVerify), "ChecksumVerify");
}

}  // namespace
}  // namespace bsr::predict
