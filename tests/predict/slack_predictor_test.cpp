#include "predict/slack_predictor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace bsr::predict {
namespace {

WorkloadModel lu() { return {Factorization::LU, 16384, 512, 8}; }

/// Synthetic "ground truth": duration proportional to complexity with an
/// efficiency drift that grows over the run (what real kernels do).
double true_time(const WorkloadModel& w, OpKind op, int k, double drift) {
  const double progress =
      static_cast<double>(k) / static_cast<double>(w.num_iterations() - 1);
  return w.op_complexity(op, k) * 1e-11 * (1.0 + drift * progress * progress);
}

TEST(FirstIterationPredictor, ExactWhenEfficiencyConstant) {
  const WorkloadModel w = lu();
  FirstIterationPredictor p(w);
  p.record(OpKind::TMU, 0, true_time(w, OpKind::TMU, 0, 0.0));
  for (int k = 1; k < w.num_iterations() - 1; ++k) {
    EXPECT_NEAR(p.predict(OpKind::TMU, k), true_time(w, OpKind::TMU, k, 0.0),
                1e-9 * true_time(w, OpKind::TMU, k, 0.0))
        << k;
  }
}

TEST(FirstIterationPredictor, ZeroWithoutProfile) {
  FirstIterationPredictor p(lu());
  EXPECT_DOUBLE_EQ(p.predict(OpKind::TMU, 5), 0.0);
}

TEST(EnhancedPredictor, ExactWhenEfficiencyConstant) {
  const WorkloadModel w = lu();
  EnhancedPredictor p(w);
  for (int k = 0; k < 6; ++k) {
    p.record(OpKind::TMU, k, true_time(w, OpKind::TMU, k, 0.0));
  }
  EXPECT_NEAR(p.predict(OpKind::TMU, 6), true_time(w, OpKind::TMU, 6, 0.0),
              1e-9);
}

TEST(EnhancedPredictor, TracksEfficiencyDriftBetterThanFirstIteration) {
  const WorkloadModel w = lu();
  const double drift = 0.25;
  FirstIterationPredictor first(w);
  EnhancedPredictor enhanced(w);
  double first_err_late = 0.0;
  double enhanced_err_late = 0.0;
  int late_count = 0;
  const int iters = w.num_iterations();
  for (int k = 0; k < iters - 1; ++k) {
    const double t = true_time(w, OpKind::TMU, k, drift);
    first.record(OpKind::TMU, k, t);
    enhanced.record(OpKind::TMU, k, t);
    if (k + 1 < iters - 1) {
      const double truth = true_time(w, OpKind::TMU, k + 1, drift);
      if (k + 1 > (2 * iters) / 3) {
        first_err_late += std::abs(first.predict(OpKind::TMU, k + 1) - truth) / truth;
        enhanced_err_late +=
            std::abs(enhanced.predict(OpKind::TMU, k + 1) - truth) / truth;
        ++late_count;
      }
    }
  }
  ASSERT_GT(late_count, 0);
  // Paper Fig. 8: first-iteration error accumulates (~11% late), enhanced
  // stays low (~4%).
  EXPECT_GT(first_err_late / late_count, 2.0 * enhanced_err_late / late_count);
  EXPECT_LT(enhanced_err_late / late_count, 0.05);
}

TEST(EnhancedPredictor, RobustToNoisyProfiles) {
  const WorkloadModel w = lu();
  Rng rng(1);
  EnhancedPredictor p(w);
  for (int k = 0; k < 10; ++k) {
    const double noise = std::exp(rng.normal(0.0, 0.05));
    p.record(OpKind::TMU, k, true_time(w, OpKind::TMU, k, 0.0) * noise);
  }
  const double truth = true_time(w, OpKind::TMU, 10, 0.0);
  // The weighted 4-neighbor average smooths 5% noise well below 5% error.
  EXPECT_NEAR(p.predict(OpKind::TMU, 10), truth, 0.05 * truth);
}

TEST(EnhancedPredictor, HandlesMissingNeighbors) {
  const WorkloadModel w = lu();
  EnhancedPredictor p(w);
  p.record(OpKind::TMU, 0, true_time(w, OpKind::TMU, 0, 0.0));
  // k=8 with only iteration 0 profiled: falls back to ratio extrapolation.
  const double pred = p.predict(OpKind::TMU, 8);
  EXPECT_NEAR(pred, true_time(w, OpKind::TMU, 8, 0.0), 1e-9);
}

TEST(EnhancedPredictor, UsesPartialWindowEarly) {
  const WorkloadModel w = lu();
  EnhancedPredictor p(w);
  p.record(OpKind::PD, 0, true_time(w, OpKind::PD, 0, 0.0));
  p.record(OpKind::PD, 1, true_time(w, OpKind::PD, 1, 0.0));
  // Only two neighbors available at k=2; weights renormalize.
  EXPECT_NEAR(p.predict(OpKind::PD, 2), true_time(w, OpKind::PD, 2, 0.0), 1e-9);
}

TEST(EnhancedPredictor, FallbackUsesMostRecentKnownPoint) {
  const WorkloadModel w = lu();
  EnhancedPredictor p(w);
  // Iterations 0 and 3 profiled with *different* efficiencies; the window
  // {5, 6, 7, 8} at k=9 is empty, so the fallback must ratio-extrapolate
  // from the most recent known point (3) — not from iteration 0.
  const double t0 = w.op_complexity(OpKind::TMU, 0) * 1e-11;
  const double t3 = w.op_complexity(OpKind::TMU, 3) * 1e-11 * 1.5;
  p.record(OpKind::TMU, 0, t0);
  p.record(OpKind::TMU, 3, t3);
  const double expected = w.complexity_ratio(OpKind::TMU, 3, 9) * t3;
  EXPECT_DOUBLE_EQ(p.predict(OpKind::TMU, 9), expected);
}

TEST(EnhancedPredictor, SingleNeighborWindowAtKOne) {
  const WorkloadModel w = lu();
  EnhancedPredictor p(w);
  // k=1 has exactly one history entry: the 1/2 weight renormalizes to 1 and
  // the prediction is pure ratio extrapolation from iteration 0.
  const double t0 = 3.25e-3;
  p.record(OpKind::TMU, 0, t0);
  EXPECT_DOUBLE_EQ(p.predict(OpKind::TMU, 1),
                   w.complexity_ratio(OpKind::TMU, 0, 1) * t0);
}

TEST(EnhancedPredictor, WindowRenormalizesExactlyAtKTwo) {
  const WorkloadModel w = lu();
  EnhancedPredictor p(w);
  // k=2 with two entries of deliberately inconsistent efficiency: the result
  // must be the {1/2, 1/4}-weighted combination renormalized by 3/4 — any
  // other normalization (e.g. dividing by the full weight sum 1) fails.
  const double t0 = w.op_complexity(OpKind::TMU, 0) * 1e-11;
  const double t1 = w.op_complexity(OpKind::TMU, 1) * 1e-11 * 2.0;
  p.record(OpKind::TMU, 0, t0);
  p.record(OpKind::TMU, 1, t1);
  const double expected = (0.5 * w.complexity_ratio(OpKind::TMU, 1, 2) * t1 +
                           0.25 * w.complexity_ratio(OpKind::TMU, 0, 2) * t0) /
                          0.75;
  EXPECT_DOUBLE_EQ(p.predict(OpKind::TMU, 2), expected);
}

TEST(EnhancedPredictor, SkipsHolesInsideTheWindow) {
  const WorkloadModel w = lu();
  EnhancedPredictor p(w);
  // k=3 with iteration 1 missing: the window contributions are i=1 (k-1=2,
  // weight 1/2) and i=3 (k-3=0, weight 1/8); the i=2 slot is a hole and its
  // 1/4 weight must drop out of the normalization.
  const double t0 = w.op_complexity(OpKind::TMU, 0) * 1e-11;
  const double t2 = w.op_complexity(OpKind::TMU, 2) * 1e-11 * 1.25;
  p.record(OpKind::TMU, 0, t0);
  p.record(OpKind::TMU, 2, t2);
  const double expected = (0.5 * w.complexity_ratio(OpKind::TMU, 2, 3) * t2 +
                           0.125 * w.complexity_ratio(OpKind::TMU, 0, 3) * t0) /
                          0.625;
  EXPECT_DOUBLE_EQ(p.predict(OpKind::TMU, 3), expected);
}

TEST(FirstIterationPredictor, IgnoresLaterProfileWithoutIterationZero) {
  const WorkloadModel w = lu();
  FirstIterationPredictor p(w);
  // First-iteration profiling is *defined* by T0; with only iteration 4
  // profiled it has nothing to extrapolate from and reports "unknown".
  p.record(OpKind::TMU, 4, 1.0);
  EXPECT_DOUBLE_EQ(p.predict(OpKind::TMU, 6), 0.0);
}

TEST(EnhancedPredictor, NothingKnownGivesZero) {
  EnhancedPredictor p(lu());
  EXPECT_DOUBLE_EQ(p.predict(OpKind::PD, 3), 0.0);
  EXPECT_DOUBLE_EQ(p.predict(OpKind::PD, 0), 0.0);
}

TEST(Predictors, IndependentPerOpKind) {
  const WorkloadModel w = lu();
  EnhancedPredictor p(w);
  p.record(OpKind::PD, 0, 1.0);
  EXPECT_DOUBLE_EQ(p.predict(OpKind::TMU, 1), 0.0);  // TMU never profiled
  EXPECT_GT(p.predict(OpKind::PD, 1), 0.0);
}

}  // namespace
}  // namespace bsr::predict
