#include "predict/complexity_ratios.hpp"

#include <gtest/gtest.h>

namespace bsr::predict {
namespace {

constexpr std::int64_t kN = 30720;
constexpr std::int64_t kB = 512;

TEST(Table2, CholeskyPdIsOne) {
  for (int k = 0; k < 50; k += 7) {
    const auto r = paper_table2_ratio(
        Factorization::Cholesky, OpKind::PD,
        Table2Column::ComputationAndChecksumUpdate, k, kN, kB);
    ASSERT_TRUE(r.has_value());
    EXPECT_DOUBLE_EQ(*r, 1.0);
  }
}

TEST(Table2, NaCellsReturnNullopt) {
  EXPECT_FALSE(paper_table2_ratio(Factorization::Cholesky, OpKind::TMU,
                                  Table2Column::DataTransfer, 3, kN, kB)
                   .has_value());
  EXPECT_FALSE(paper_table2_ratio(Factorization::LU, OpKind::PU,
                                  Table2Column::DataTransfer, 3, kN, kB)
                   .has_value());
}

TEST(Table2, LuTmuFormula) {
  // 1 - 2b/(n-kb) at k=0: 1 - 1024/30720.
  const auto r = paper_table2_ratio(Factorization::LU, OpKind::TMU,
                                    Table2Column::ComputationAndChecksumUpdate,
                                    0, kN, kB);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(*r, 1.0 - 1024.0 / 30720.0, 1e-12);
}

TEST(Table2, RatiosBelowOneMidDecomposition) {
  for (Factorization f :
       {Factorization::LU, Factorization::QR}) {
    for (OpKind op : {OpKind::PD, OpKind::TMU}) {
      const auto r = paper_table2_ratio(
          f, op, Table2Column::ComputationAndChecksumUpdate, 10, kN, kB);
      if (!r.has_value()) continue;
      EXPECT_LT(*r, 1.0);
      EXPECT_GT(*r, 0.5);
    }
  }
}

TEST(Table2, PrintedLuTmuMatchesExactFlopRatioClosely) {
  // The printed closed forms are first-order approximations of the exact
  // flop-count ratios used by the predictor; mid-decomposition they agree to
  // a few percent.
  const WorkloadModel wl{Factorization::LU, kN, kB, 8};
  for (int k = 1; k < 40; k += 6) {
    const double exact = wl.complexity_ratio(OpKind::TMU, k, k + 1);
    const auto printed = paper_table2_ratio(
        Factorization::LU, OpKind::TMU,
        Table2Column::ComputationAndChecksumUpdate, k, kN, kB);
    ASSERT_TRUE(printed.has_value());
    EXPECT_NEAR(exact, *printed, 0.02) << "k=" << k;
  }
}

TEST(Table2, PrintedLuPuMatchesExactClosely) {
  const WorkloadModel wl{Factorization::LU, kN, kB, 8};
  for (int k = 1; k < 40; k += 6) {
    const double exact = wl.complexity_ratio(OpKind::PU, k, k + 1);
    const auto printed =
        paper_table2_ratio(Factorization::LU, OpKind::PU,
                           Table2Column::ComputationAndChecksumUpdate, k, kN, kB);
    ASSERT_TRUE(printed.has_value());
    EXPECT_NEAR(exact, *printed, 0.02) << "k=" << k;
  }
}

TEST(Table2, QrTmuFormulaStructure) {
  const auto r = paper_table2_ratio(Factorization::QR, OpKind::TMU,
                                    Table2Column::ComputationAndChecksumUpdate,
                                    5, kN, kB);
  ASSERT_TRUE(r.has_value());
  const double m = 30720.0 - 5 * 512.0;
  const double expected = 1.0 - 512.0 / (m - 512.0) - 512.0 / (m + 512.0) +
                          512.0 * 512.0 / ((m - 512.0) * (m + 512.0));
  EXPECT_NEAR(*r, expected, 1e-12);
}

TEST(Table2, VerificationColumnTracksComputeColumn) {
  // For LU PU/TMU the paper prints identical compute and verification ratios.
  const auto compute =
      paper_table2_ratio(Factorization::LU, OpKind::TMU,
                         Table2Column::ComputationAndChecksumUpdate, 8, kN, kB);
  const auto verify = paper_table2_ratio(
      Factorization::LU, OpKind::TMU, Table2Column::ChecksumVerification, 8, kN,
      kB);
  ASSERT_TRUE(compute && verify);
  EXPECT_DOUBLE_EQ(*compute, *verify);
}

TEST(RatioProperties, TransitivityAcrossIterations) {
  // r_{j,k} must compose: r_{j,i} * r_{i,k} == r_{j,k} for every op.
  for (Factorization f :
       {Factorization::Cholesky, Factorization::LU, Factorization::QR}) {
    const WorkloadModel wl{f, 16384, 512, 8};
    for (OpKind op : {OpKind::PD, OpKind::PU, OpKind::TMU, OpKind::Transfer,
                      OpKind::ChecksumUpdate, OpKind::ChecksumVerify}) {
      const double direct = wl.complexity_ratio(op, 2, 20);
      const double composed =
          wl.complexity_ratio(op, 2, 9) * wl.complexity_ratio(op, 9, 20);
      EXPECT_NEAR(direct, composed, 1e-12 * std::abs(direct) + 1e-15)
          << to_string(f) << "/" << to_string(op);
    }
  }
}

TEST(RatioProperties, PaperFormulasStayInUnitIntervalMidRun) {
  // Every printed shrinking-op formula must stay in (0, 1] away from the tail.
  for (Factorization f : {Factorization::LU, Factorization::QR}) {
    for (int k = 0; k < 45; ++k) {
      for (OpKind op : {OpKind::PD, OpKind::PU, OpKind::TMU}) {
        const auto r = paper_table2_ratio(
            f, op, Table2Column::ComputationAndChecksumUpdate, k, 30720, 512);
        if (!r.has_value()) continue;
        EXPECT_GT(*r, 0.0) << to_string(f) << " k=" << k;
        EXPECT_LE(*r, 1.0) << to_string(f) << " k=" << k;
      }
    }
  }
}

}  // namespace
}  // namespace bsr::predict
