// Registry coverage (ISSUE 2 satellite): built-in round-trips, duplicate
// rejection, helpful lookup-miss diagnostics, and end-to-end extension via a
// runtime-registered strategy.
#include "bsr/registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "bsr/sweep.hpp"
#include "core/decomposer.hpp"
#include "energy/baselines.hpp"

namespace bsr {
namespace {

TEST(Registry, BuiltInStrategiesRoundTrip) {
  // Containment, not exact size: sibling tests legitimately register extra
  // strategies into the process-global registry, and test order is not
  // guaranteed (--gtest_shuffle).
  for (const char* name : {"original", "r2h", "sr", "bsr"}) {
    const std::string key = name;
    ASSERT_TRUE(strategies().contains(key)) << key;
    // Every built-in carries a legacy StrategyKind whose printed name lowers
    // back to the canonical registry key.
    const StrategyEntry& entry = strategies().get(key);
    ASSERT_TRUE(entry.kind.has_value()) << key;
    std::string printed = core::to_string(*entry.kind);
    std::transform(printed.begin(), printed.end(), printed.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    EXPECT_EQ(printed, key);
    // And the legacy parser is a thin wrapper over the same entry.
    EXPECT_EQ(core::strategy_from_string(key), *entry.kind);
    // The factory builds a real strategy object.
    RunConfig cfg;
    cfg.strategy = key;
    EXPECT_NE(entry.make(cfg, cfg.workload()), nullptr);
  }
  // Case-insensitivity and aliases keep working through the registry.
  EXPECT_EQ(core::strategy_from_string("BSR"), StrategyKind::BSR);
  EXPECT_EQ(core::strategy_from_string("org"), StrategyKind::Original);
}

TEST(Registry, BuiltInPlatformsRoundTrip) {
  for (const char* name : {"paper_default", "test_small", "numeric_demo"}) {
    ASSERT_TRUE(platforms().contains(name)) << name;
    const hw::PlatformProfile p = make_platform(name);
    EXPECT_FALSE(p.cpu.name.empty()) << name;
    EXPECT_FALSE(p.gpu.name.empty()) << name;
  }
  EXPECT_TRUE(platforms().contains("paper"));        // alias
  EXPECT_TRUE(platforms().contains("PAPER_DEFAULT"));  // case-insensitive
}

TEST(Registry, BuiltInAbftPoliciesRoundTrip) {
  EXPECT_EQ(core::abft_policy_from_string("adaptive"),
            core::AbftPolicy::Adaptive);
  EXPECT_EQ(core::abft_policy_from_string("none"), core::AbftPolicy::ForceNone);
  EXPECT_EQ(core::abft_policy_from_string("force_single"),
            core::AbftPolicy::ForceSingle);
  EXPECT_EQ(core::abft_policy_from_string("Full"), core::AbftPolicy::ForceFull);
}

TEST(Registry, DuplicateRegistrationRejected) {
  Registry<int> reg("thing");
  reg.add("a", 1);
  EXPECT_THROW(reg.add("a", 2), std::invalid_argument);
  EXPECT_THROW(reg.add("A", 2), std::invalid_argument);  // case-insensitive
  reg.alias("b", "a");
  EXPECT_THROW(reg.add("b", 3), std::invalid_argument);
  EXPECT_THROW(reg.alias("b", "a"), std::invalid_argument);
  EXPECT_THROW(reg.alias("c", "missing"), std::invalid_argument);
  EXPECT_EQ(reg.get("b"), 1);  // alias resolves to the canonical entry
  EXPECT_EQ(reg.keys(), std::vector<std::string>{"a"});  // aliases not listed
}

TEST(Registry, LookupMissListsKnownKeys) {
  try {
    (void)strategies().get("warp");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("strategy"), std::string::npos) << what;
    EXPECT_NE(what.find("warp"), std::string::npos) << what;
    for (const char* key : {"bsr", "original", "r2h", "sr"}) {
      EXPECT_NE(what.find(key), std::string::npos) << what;
    }
  }
}

TEST(Registry, RuntimeRegisteredStrategyRunsEverywhere) {
  // A scenario plugs in without touching core/: register a strategy that
  // reuses the Original policy under a new name and drive it through the
  // whole RunConfig -> Decomposer -> Sweep stack.
  if (!strategies().contains("registry_test_original_twin")) {
    strategies().add(
        "registry_test_original_twin",
        {std::nullopt,
         [](const RunConfig&, const predict::WorkloadModel&)
             -> std::unique_ptr<energy::Strategy> {
           return std::make_unique<energy::OriginalStrategy>();
         }});
  }

  RunConfig cfg;
  cfg.n = 4096;
  cfg.strategy = "registry_test_original_twin";
  cfg.validate();  // registry-backed validation accepts the new key
  const core::RunReport twin = run(cfg);

  RunConfig orig = cfg;
  orig.strategy = "original";
  const core::RunReport original = run(orig);
  EXPECT_DOUBLE_EQ(twin.total_energy_j(), original.total_energy_j());
  EXPECT_DOUBLE_EQ(twin.seconds(), original.seconds());
  // The report carries the real registry name, not a BSR placeholder.
  EXPECT_EQ(twin.strategy_name, "registry_test_original_twin");
  EXPECT_NE(core::summarize(twin).find("registry_test_original_twin"),
            std::string::npos);

  // The legacy enum surface refuses registry-only strategies with a pointer
  // to the new API instead of misbehaving.
  EXPECT_THROW(core::strategy_from_string("registry_test_original_twin"),
               std::invalid_argument);

  // And the Sweep engine treats it like any built-in.
  const SweepResult grid =
      Sweep(cfg)
          .over(strategy_axis({"registry_test_original_twin", "bsr"}))
          .baseline("original")
          .run();
  ASSERT_EQ(grid.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(
      grid.at({{"strategy", "registry_test_original_twin"}}).energy_saving(),
      0.0);
}

}  // namespace
}  // namespace bsr
