// Sweep engine: grid expansion, deterministic parallel execution (N threads
// vs 1 thread bitwise-identical, ISSUE 2 satellite), and the baseline cache
// (cached == fresh bitwise, ISSUE 2 satellite).
#include "bsr/sweep.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>

#include "bsr/registry.hpp"
#include "core/decomposer.hpp"
#include "energy/bsr_strategy.hpp"

namespace bsr {
namespace {

RunConfig small_base() {
  RunConfig cfg;
  cfg.n = 4096;
  cfg.b = 512;
  return cfg;
}

/// Bitwise equality of two doubles (no tolerance: determinism means identity).
bool same_bits(double a, double b) {
  std::uint64_t ba = 0;
  std::uint64_t bb = 0;
  std::memcpy(&ba, &a, sizeof(a));
  std::memcpy(&bb, &b, sizeof(b));
  return ba == bb;
}

/// Bitwise equality of everything a report derives its metrics from.
void expect_identical_reports(const RunReport& a, const RunReport& b) {
  EXPECT_TRUE(same_bits(a.seconds(), b.seconds()));
  EXPECT_TRUE(same_bits(a.total_energy_j(), b.total_energy_j()));
  EXPECT_TRUE(same_bits(a.cpu_energy_j(), b.cpu_energy_j()));
  EXPECT_TRUE(same_bits(a.gpu_energy_j(), b.gpu_energy_j()));
  EXPECT_TRUE(same_bits(a.ed2p(), b.ed2p()));
  ASSERT_EQ(a.trace.iterations.size(), b.trace.iterations.size());
  for (std::size_t k = 0; k < a.trace.iterations.size(); ++k) {
    const auto& ia = a.trace.iterations[k];
    const auto& ib = b.trace.iterations[k];
    EXPECT_EQ(ia.span.ns(), ib.span.ns());
    EXPECT_TRUE(same_bits(ia.cpu_energy_j, ib.cpu_energy_j));
    EXPECT_TRUE(same_bits(ia.gpu_energy_j, ib.gpu_energy_j));
    EXPECT_EQ(ia.cpu_freq, ib.cpu_freq);
    EXPECT_EQ(ia.gpu_freq, ib.gpu_freq);
    EXPECT_EQ(ia.abft_mode, ib.abft_mode);
  }
  EXPECT_EQ(a.abft.iterations_protected_single, b.abft.iterations_protected_single);
  EXPECT_EQ(a.abft.iterations_protected_full, b.abft.iterations_protected_full);
}

TEST(Sweep, ExpansionOrderIsRowMajorFirstAxisOutermost) {
  SweepResult grid = Sweep(small_base())
                         .over(strategy_axis({"original", "bsr"}))
                         .over(ratio_axis({0.0, 0.25}))
                         .threads(1)
                         .run();
  ASSERT_EQ(grid.rows.size(), 4u);
  EXPECT_EQ(grid.rows[0].coords.at("strategy"), "original");
  EXPECT_EQ(grid.rows[0].coords.at("r"), "0");
  EXPECT_EQ(grid.rows[1].coords.at("strategy"), "original");
  EXPECT_EQ(grid.rows[1].coords.at("r"), "0.25");
  EXPECT_EQ(grid.rows[2].coords.at("strategy"), "bsr");
  EXPECT_EQ(grid.rows[3].coords.at("r"), "0.25");
  EXPECT_EQ(grid.axis_names, (std::vector<std::string>{"strategy", "r"}));
  for (std::size_t i = 0; i < grid.rows.size(); ++i) {
    EXPECT_EQ(grid.rows[i].index, i);
    ASSERT_NE(grid.rows[i].report, nullptr);
  }
}

// The headline determinism guarantee (ISSUE 2): an 8-cell grid on one thread
// and on N worker threads yields identical ordering and bitwise-identical
// values, because seeds derive per cell, never per worker.
TEST(Sweep, OneThreadVsManyThreadsBitwiseIdentical) {
  const auto build = [](Sweep& sweep) -> SweepResult {
    return sweep.over(strategy_axis({"original", "bsr"}))
        .over(trial_axis(4, 99))
        .baseline("original")
        .run();
  };
  Sweep serial(small_base());
  serial.threads(1);
  Sweep parallel(small_base());
  parallel.threads(4);  // a real 4-worker pool even on 1-core machines
  const SweepResult a = build(serial);
  const SweepResult b = build(parallel);

  ASSERT_EQ(a.rows.size(), 8u);
  ASSERT_EQ(b.rows.size(), 8u);
  EXPECT_EQ(a.requested_runs, b.requested_runs);
  EXPECT_EQ(a.unique_runs, b.unique_runs);
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(a.rows[i].coords, b.rows[i].coords) << "row " << i;
    EXPECT_EQ(a.rows[i].config.seed, b.rows[i].config.seed) << "row " << i;
    EXPECT_EQ(a.rows[i].config.fingerprint(), b.rows[i].config.fingerprint());
    expect_identical_reports(*a.rows[i].report, *b.rows[i].report);
    expect_identical_reports(*a.rows[i].baseline, *b.rows[i].baseline);
  }
}

// The baseline cache satellite: a report served from the cache is bitwise
// identical to a fresh standalone run of the same configuration.
TEST(Sweep, CachedBaselineBitwiseIdenticalToFreshRun) {
  Sweep sweep(small_base());
  const SweepResult grid = sweep.over(ratio_axis({0.0, 0.1, 0.2}))
                               .baseline("original")
                               .run();
  ASSERT_EQ(grid.rows.size(), 3u);
  // All three r-cells share one baseline execution...
  EXPECT_EQ(grid.requested_runs, 6u);
  EXPECT_EQ(grid.unique_runs, 4u);
  EXPECT_EQ(grid.cache_hits, 2u);
  EXPECT_EQ(grid.rows[0].baseline.get(), grid.rows[1].baseline.get());
  EXPECT_EQ(grid.rows[0].baseline.get(), grid.rows[2].baseline.get());

  // ...and that cached report matches a from-scratch run bit for bit.
  RunConfig fresh_cfg = small_base();
  fresh_cfg.strategy = "original";
  const RunReport fresh = run(fresh_cfg);
  expect_identical_reports(*grid.rows[0].baseline, fresh);

  // A second run() of the same grid is served entirely from the cache and
  // returns the same values.
  const SweepResult again = sweep.run();
  EXPECT_EQ(again.unique_runs, 0u);
  EXPECT_EQ(again.cache_hits, again.requested_runs);
  for (std::size_t i = 0; i < grid.rows.size(); ++i) {
    expect_identical_reports(*grid.rows[i].report, *again.rows[i].report);
  }
}

TEST(Sweep, OriginalCellSharesBaselineRun) {
  // When Original is both a displayed cell and the baseline, the sweep
  // executes it once (the seed benches ran it twice).
  const SweepResult grid = Sweep(small_base())
                               .over(strategy_axis({"original", "r2h"}))
                               .baseline("original")
                               .threads(1)
                               .run();
  EXPECT_EQ(grid.requested_runs, 4u);
  EXPECT_EQ(grid.unique_runs, 2u);
  const SweepRow& org = grid.at({{"strategy", "original"}});
  EXPECT_EQ(org.report.get(), org.baseline.get());
  EXPECT_DOUBLE_EQ(org.energy_saving(), 0.0);
  EXPECT_DOUBLE_EQ(org.speedup(), 1.0);
}

TEST(Sweep, NonBsrCellsDedupeAcrossRatioAxis) {
  // r only steers BSR; the Original column of a (strategy x r) grid is one
  // run shared by every r row.
  const SweepResult grid = Sweep(small_base())
                               .over(strategy_axis({"original", "bsr"}))
                               .over(ratio_axis({0.0, 0.25}))
                               .threads(1)
                               .run();
  EXPECT_EQ(grid.requested_runs, 4u);
  EXPECT_EQ(grid.unique_runs, 3u);
  EXPECT_EQ(grid.rows[0].report.get(), grid.rows[1].report.get());
  EXPECT_NE(grid.rows[2].report.get(), grid.rows[3].report.get());
}

TEST(Sweep, BaselineKeyIsCanonicalized) {
  // "BSR" must behave exactly like "bsr": the baseline keeps the cell's BSR
  // knobs (r, fc, ablation flags) and shares the cell's cached run.
  RunConfig base = small_base();
  base.strategy = "bsr";
  base.reclamation_ratio = 0.25;
  const SweepResult grid =
      Sweep(base).over(trial_axis(1, 5)).baseline("BSR").threads(1).run();
  ASSERT_EQ(grid.rows.size(), 1u);
  EXPECT_EQ(grid.rows[0].report.get(), grid.rows[0].baseline.get());
  EXPECT_EQ(grid.unique_runs, 1u);
}

TEST(Sweep, CustomBaselineKeepsCellKnobs) {
  // Runtime-registered baseline strategies may read any RunConfig field, so
  // the baseline keeps each cell's knobs (no default-reset as for the
  // built-in non-BSR baselines) — one baseline run per distinct r here.
  if (!strategies().contains("sweep_test_r_reader")) {
    strategies().add(
        "sweep_test_r_reader",
        {std::nullopt,
         [](const RunConfig& cfg, const predict::WorkloadModel& wl)
             -> std::unique_ptr<energy::Strategy> {
           energy::BsrConfig c;
           c.reclamation_ratio = cfg.reclamation_ratio;
           return std::make_unique<energy::BsrStrategy>(wl, c);
         }});
  }
  RunConfig base = small_base();
  base.strategy = "bsr";
  const SweepResult grid = Sweep(base)
                               .over(ratio_axis({0.1, 0.3}))
                               .baseline("sweep_test_r_reader")
                               .threads(1)
                               .run();
  ASSERT_EQ(grid.rows.size(), 2u);
  EXPECT_EQ(grid.unique_runs, 4u);  // 2 cells + 2 distinct baselines
  EXPECT_NE(grid.rows[0].baseline.get(), grid.rows[1].baseline.get());
}

TEST(Sweep, InvalidCellFailsFast) {
  Sweep sweep(small_base());
  sweep.over(ratio_axis({0.0, 2.0}));  // r = 2 is invalid
  EXPECT_THROW((void)sweep.run(), std::invalid_argument);
}

TEST(Sweep, WorkerExceptionsPropagate) {
  if (!strategies().contains("sweep_test_throws")) {
    strategies().add("sweep_test_throws",
                     {std::nullopt,
                      [](const RunConfig&, const predict::WorkloadModel&)
                          -> std::unique_ptr<energy::Strategy> {
                        throw std::runtime_error("boom from factory");
                      }});
  }
  Sweep sweep(small_base());
  sweep.over(strategy_axis({"original", "sweep_test_throws"}));
  EXPECT_THROW((void)sweep.run(), std::runtime_error);
}

TEST(Sweep, AtRejectsAmbiguousAndMissingCoords) {
  const SweepResult grid = Sweep(small_base())
                               .over(strategy_axis({"original", "bsr"}))
                               .over(ratio_axis({0.0, 0.25}))
                               .threads(1)
                               .run();
  EXPECT_THROW((void)grid.at({{"strategy", "original"}}), std::out_of_range);
  EXPECT_THROW((void)grid.at({{"strategy", "nope"}}), std::out_of_range);
  EXPECT_EQ(grid.at({{"strategy", "bsr"}, {"r", "0.25"}}).index, 3u);
  EXPECT_EQ(grid.where("strategy", "bsr").size(), 2u);
}

TEST(Sweep, TrialAxisSeedsAreIndexDerived) {
  const SweepResult grid = Sweep(small_base())
                               .over(trial_axis(3, 1000))
                               .threads(1)
                               .run();
  ASSERT_EQ(grid.rows.size(), 3u);
  for (std::size_t t = 0; t < 3; ++t) {
    EXPECT_EQ(grid.rows[t].config.seed, derive_cell_seed(1000, t));
  }
}

/// In-memory ResultStore double: counts loads/saves and can be pre-warmed,
/// standing in for serve::DiskResultStore without touching the filesystem.
class FakeStore final : public ResultStore {
 public:
  std::shared_ptr<const RunReport> load(
      const std::string& fingerprint) override {
    ++loads;
    const auto it = records.find(fingerprint);
    return it == records.end() ? nullptr : it->second;
  }
  void save(const std::string& fingerprint, const RunReport& report) override {
    ++saves;
    records[fingerprint] = std::make_shared<const RunReport>(report);
  }

  std::map<std::string, std::shared_ptr<const RunReport>> records;
  int loads = 0;
  int saves = 0;
};

TEST(SweepCountersTest, InvariantAndExecutedOnColdRun) {
  Sweep sweep(small_base());
  const SweepResult grid = sweep.over(strategy_axis({"original", "bsr"}))
                               .threads(1)
                               .run();
  ASSERT_EQ(grid.rows.size(), 2u);
  const SweepCounters& c = sweep.counters();
  EXPECT_EQ(c.requested, 2u);
  EXPECT_EQ(c.executed, 2u);
  EXPECT_EQ(c.memory_hits, 0u);
  EXPECT_EQ(c.store_hits, 0u);
  EXPECT_EQ(c.requested,
            c.memory_hits + c.coalesced + c.store_hits + c.executed);
}

TEST(SweepCountersTest, RepeatRunsHitTheMemoryCache) {
  Sweep sweep(small_base());
  sweep.over(ratio_axis({0.0, 0.25})).threads(1);
  (void)sweep.run();
  (void)sweep.run();
  const SweepCounters& c = sweep.counters();
  EXPECT_EQ(c.requested, 4u);
  EXPECT_EQ(c.executed, 2u);
  EXPECT_EQ(c.memory_hits, 2u);
  EXPECT_EQ(c.requested,
            c.memory_hits + c.coalesced + c.store_hits + c.executed);
}

TEST(SweepCountersTest, DedupedCellsCountAsCoalesced) {
  // Non-BSR strategies normalize r out of the fingerprint, so the original
  // rows across the ratio axis coalesce onto one job within the run.
  Sweep sweep(small_base());
  (void)sweep.over(strategy_axis({"original"}))
      .over(ratio_axis({0.0, 0.25}))
      .threads(1)
      .run();
  const SweepCounters& c = sweep.counters();
  EXPECT_EQ(c.requested, 2u);
  EXPECT_EQ(c.executed, 1u);
  EXPECT_EQ(c.coalesced, 1u);
}

TEST(SweepStoreTest, ExecutedRunsAreSavedAndServedBackAfterClearCache) {
  auto store = std::make_shared<FakeStore>();
  Sweep sweep(small_base());
  sweep.store(store).over(strategy_axis({"original", "bsr"})).threads(1);

  const SweepResult cold = sweep.run();
  EXPECT_EQ(store->saves, 2);
  EXPECT_EQ(sweep.counters().executed, 2u);
  EXPECT_EQ(cold.store_hits, 0u);

  sweep.clear_cache();  // drops the memory tier, NOT the store
  const SweepResult warm = sweep.run();
  EXPECT_EQ(warm.store_hits, 2u);
  EXPECT_EQ(sweep.counters().store_hits, 2u);
  EXPECT_EQ(sweep.counters().executed, 2u);  // nothing re-executed
  EXPECT_EQ(store->saves, 2);

  ASSERT_EQ(cold.rows.size(), warm.rows.size());
  for (std::size_t i = 0; i < cold.rows.size(); ++i) {
    expect_identical_reports(*cold.rows[i].report, *warm.rows[i].report);
  }
  const SweepCounters& c = sweep.counters();
  EXPECT_EQ(c.requested,
            c.memory_hits + c.coalesced + c.store_hits + c.executed);
}

TEST(SweepStoreTest, PreWarmedStoreAvoidsAllExecution) {
  auto store = std::make_shared<FakeStore>();
  {
    Sweep producer(small_base());
    (void)producer.store(store).over(ratio_axis({0.0, 0.1})).threads(1).run();
  }
  Sweep consumer(small_base());
  const SweepResult grid =
      consumer.store(store).over(ratio_axis({0.0, 0.1})).threads(1).run();
  ASSERT_EQ(grid.rows.size(), 2u);
  EXPECT_EQ(consumer.counters().executed, 0u);
  EXPECT_EQ(consumer.counters().store_hits, 2u);
}

}  // namespace
}  // namespace bsr
