// ResultSink backends: Table/CSV/JSON rendering, escaping, width checking,
// and registry resolution, plus emit() over a real SweepResult.
#include "bsr/result_sink.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "bsr/registry.hpp"
#include "bsr/sweep.hpp"

namespace bsr {
namespace {

TEST(ResultSink, CsvEscapesDelimitersAndQuotes) {
  std::ostringstream out;
  CsvSink sink(out);
  sink.begin({"name", "value"});
  sink.add_row({"plain", "1.5"});
  sink.add_row({"with,comma", "say \"hi\""});
  sink.end();
  EXPECT_EQ(out.str(),
            "name,value\n"
            "plain,1.5\n"
            "\"with,comma\",\"say \"\"hi\"\"\"\n");
}

TEST(ResultSink, JsonQuotesStringsAndPassesNumbers) {
  std::ostringstream out;
  JsonSink sink(out);
  sink.begin({"strategy", "energy_j", "note"});
  sink.add_row({"bsr", "123.5", "all \"good\""});
  sink.add_row({"sr", "130", "a\nb"});
  sink.end();
  const std::string json = out.str();
  EXPECT_NE(json.find("\"strategy\": \"bsr\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"energy_j\": 123.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"note\": \"all \\\"good\\\"\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"a\\nb\""), std::string::npos) << json;
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.size() - 2], ']');
}

TEST(ResultSink, JsonQuotesStrtodAcceptedNonJsonTokens) {
  // strtod accepts these, but strict JSON parsers do not — they must be
  // emitted as strings, not bare tokens.
  std::ostringstream out;
  JsonSink sink(out);
  sink.begin({"a", "b", "c", "d", "e"});
  sink.add_row({".5", "+5", "0x1f", "5.", "01"});
  sink.end();
  const std::string json = out.str();
  EXPECT_NE(json.find("\".5\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"+5\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"0x1f\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"5.\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"01\""), std::string::npos) << json;
  // Valid JSON numbers still pass through bare.
  std::ostringstream out2;
  JsonSink sink2(out2);
  sink2.begin({"a", "b", "c"});
  sink2.add_row({"-0.5", "1e5", "0"});
  sink2.end();
  EXPECT_NE(out2.str().find("\"a\": -0.5"), std::string::npos) << out2.str();
  EXPECT_NE(out2.str().find("\"b\": 1e5"), std::string::npos) << out2.str();
  EXPECT_NE(out2.str().find("\"c\": 0"), std::string::npos) << out2.str();
}

TEST(ResultSink, TableRendersHeadersAndRows) {
  std::ostringstream out;
  TableSink sink(out);
  sink.begin({"Strategy", "Energy"});
  sink.add_row({"bsr", "123"});
  sink.end();
  const std::string table = out.str();
  EXPECT_NE(table.find("Strategy"), std::string::npos);
  EXPECT_NE(table.find("bsr"), std::string::npos);
  EXPECT_NE(table.find("123"), std::string::npos);
}

TEST(ResultSink, RowWidthMismatchThrows) {
  std::ostringstream out;
  CsvSink sink(out);
  sink.begin({"a", "b"});
  EXPECT_THROW(sink.add_row({"only-one"}), std::invalid_argument);
}

TEST(ResultSink, RegistryResolvesAllBackends) {
  std::ostringstream out;
  for (const std::string& key : result_sinks().keys()) {
    EXPECT_NE(make_result_sink(key, out), nullptr) << key;
  }
  EXPECT_THROW((void)make_result_sink("xml", out), std::invalid_argument);
}

TEST(ResultSink, EmitStreamsASweepGrid) {
  RunConfig base;
  base.n = 4096;
  const SweepResult grid = Sweep(base)
                               .over(strategy_axis({"original", "bsr"}))
                               .baseline("original")
                               .threads(1)
                               .run();
  std::ostringstream out;
  CsvSink sink(out);
  emit(grid, sink);
  const std::string csv = out.str();
  // Header: axis column + metrics + baseline-relative columns.
  EXPECT_NE(csv.find("strategy,time_s,gflops,energy_j,ed2p,saving"),
            std::string::npos)
      << csv;
  // One line per row plus the header.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
  EXPECT_NE(csv.find("original,"), std::string::npos);
  EXPECT_NE(csv.find("bsr,"), std::string::npos);
}

}  // namespace
}  // namespace bsr
