// RunConfig: validation, legacy lowering, fingerprint semantics, and
// equivalence of the new facade with the deprecated RunOptions path.
#include "bsr/run_config.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "bsr/registry.hpp"
#include "core/decomposer.hpp"

namespace bsr {
namespace {

TEST(RunConfig, DefaultsMatchPaperHeadline) {
  const RunConfig cfg;
  EXPECT_EQ(cfg.factorization, Factorization::LU);
  EXPECT_EQ(cfg.n, 30720);
  EXPECT_EQ(cfg.block(), 512);  // auto-tuned
  EXPECT_EQ(cfg.strategy, "bsr");
  EXPECT_EQ(cfg.abft_policy, "adaptive");
  EXPECT_EQ(cfg.platform, "paper_default");
  EXPECT_NO_THROW(cfg.validate());
}

TEST(RunConfig, BlockAutoTuneClampsToN) {
  RunConfig cfg;
  cfg.n = 48;  // tuned_block would be 64 > n
  EXPECT_EQ(cfg.block(), 48);
  EXPECT_NO_THROW(cfg.validate());
  cfg.b = 32;
  EXPECT_EQ(cfg.block(), 32);
}

TEST(RunConfig, ValidateRejectsOutOfRangeFields) {
  const auto expect_invalid = [](void (*mutate)(RunConfig&)) {
    RunConfig cfg;
    mutate(cfg);
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  };
  expect_invalid([](RunConfig& c) { c.n = 0; });
  expect_invalid([](RunConfig& c) { c.n = -5; });
  expect_invalid([](RunConfig& c) { c.b = -1; });
  expect_invalid([](RunConfig& c) { c.b = c.n + 1; });        // b > n
  expect_invalid([](RunConfig& c) { c.reclamation_ratio = -0.1; });
  expect_invalid([](RunConfig& c) { c.reclamation_ratio = 1.5; });
  expect_invalid([](RunConfig& c) { c.fc_desired = 0.0; });   // bad fc
  expect_invalid([](RunConfig& c) { c.fc_desired = 1.0; });
  expect_invalid([](RunConfig& c) { c.fc_desired = -3.0; });
  expect_invalid([](RunConfig& c) { c.elem_bytes = 2; });
  expect_invalid([](RunConfig& c) { c.error_rate_multiplier = -1.0; });
  expect_invalid([](RunConfig& c) { c.strategy = "warp"; });
  expect_invalid([](RunConfig& c) { c.abft_policy = "sometimes"; });
  expect_invalid([](RunConfig& c) { c.platform = "laptop"; });
}

TEST(RunConfig, ValidateMessageNamesTheField) {
  RunConfig cfg;
  cfg.reclamation_ratio = 2.0;
  try {
    cfg.validate();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("RunConfig"), std::string::npos) << what;
    EXPECT_NE(what.find("reclamation_ratio"), std::string::npos) << what;
  }
}

TEST(RunConfig, LegacyLoweringRoundTrips) {
  RunConfig cfg;
  cfg.factorization = Factorization::QR;
  cfg.n = 8192;
  cfg.b = 256;
  cfg.strategy = "sr";
  cfg.abft_policy = "single";
  cfg.seed = 7;
  cfg.noise_enabled = false;
  cfg.bsr_allow_overclocking = false;

  const core::RunOptions opts = cfg.options();
  EXPECT_EQ(opts.strategy, StrategyKind::SR);
  EXPECT_EQ(opts.n, 8192);
  EXPECT_EQ(opts.b, 256);
  EXPECT_EQ(opts.seed, 7u);
  EXPECT_FALSE(opts.noise_enabled);
  const core::ExtendedOptions ext = cfg.extended();
  EXPECT_EQ(ext.abft_policy, AbftPolicy::ForceSingle);
  EXPECT_FALSE(ext.bsr_allow_overclocking);

  const RunConfig back = from_legacy(opts, ext);
  EXPECT_EQ(back.strategy, "sr");
  EXPECT_EQ(back.abft_policy, "single");
  EXPECT_EQ(back.fingerprint(), cfg.fingerprint());
}

TEST(RunConfig, NewAndLegacyPathsProduceIdenticalReports) {
  RunConfig cfg;
  cfg.n = 4096;
  cfg.strategy = "bsr";
  cfg.reclamation_ratio = 0.25;

  const core::Decomposer dec;
  const core::RunReport via_config = dec.run(cfg);
  const core::RunReport via_legacy = dec.run(cfg.options(), cfg.extended());
  EXPECT_DOUBLE_EQ(via_config.total_energy_j(), via_legacy.total_energy_j());
  EXPECT_DOUBLE_EQ(via_config.seconds(), via_legacy.seconds());
  EXPECT_DOUBLE_EQ(via_config.ed2p(), via_legacy.ed2p());
  ASSERT_EQ(via_config.trace.iterations.size(),
            via_legacy.trace.iterations.size());
}

TEST(RunConfig, FingerprintDistinguishesResultRelevantFields) {
  const RunConfig base;
  RunConfig other = base;
  EXPECT_EQ(base.fingerprint(), other.fingerprint());
  other.reclamation_ratio = 0.1;
  EXPECT_NE(base.fingerprint(), other.fingerprint());
  other = base;
  other.strategy = "sr";
  EXPECT_NE(base.fingerprint(), other.fingerprint());
  other = base;
  other.seed = 43;
  EXPECT_NE(base.fingerprint(), other.fingerprint());
  // b = 0 and the explicit tuned value are the same effective config.
  other = base;
  other.b = base.block();
  EXPECT_EQ(base.fingerprint(), other.fingerprint());
  // Case and alias spellings of registry keys fingerprint identically, so
  // the sweep cache treats them as one configuration.
  RunConfig org1 = base;
  org1.strategy = "org";
  RunConfig org2 = base;
  org2.strategy = "Original";
  EXPECT_EQ(org1.fingerprint(), org2.fingerprint());
  org2.platform = "PAPER";
  EXPECT_EQ(org1.fingerprint(), org2.fingerprint());
}

TEST(RunConfig, FingerprintNormalizesBsrKnobsForBuiltinNonBsrStrategies) {
  // Original/R2H/SR ignore the BSR-only knobs, so configs differing only in
  // them are one cached run; BSR itself (and registry-registered strategies,
  // whose factories see the whole config) keep the full fingerprint.
  RunConfig a;
  a.strategy = "original";
  RunConfig b = a;
  b.reclamation_ratio = 0.25;
  b.fc_desired = 0.9;
  b.bsr_allow_overclocking = false;
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  RunConfig c;
  c.strategy = "bsr";
  RunConfig d = c;
  d.reclamation_ratio = 0.25;
  EXPECT_NE(c.fingerprint(), d.fingerprint());
}

TEST(RunConfig, FingerprintNormalizesTimingIrrelevantRecovery) {
  RunConfig timing;
  timing.recover_uncorrectable = true;
  RunConfig plain = timing;
  plain.recover_uncorrectable = false;
  // Recovery never triggers in timing-only mode -> one cache entry...
  EXPECT_EQ(timing.fingerprint(), plain.fingerprint());
  // ...but numeric runs genuinely differ.
  timing.mode = plain.mode = ExecutionMode::Numeric;
  EXPECT_NE(timing.fingerprint(), plain.fingerprint());
}

TEST(RunConfig, FreeRunResolvesPlatformFromRegistry) {
  RunConfig cfg;
  cfg.n = 1024;
  cfg.b = 128;
  cfg.platform = "test_small";
  const core::RunReport report = run(cfg);
  EXPECT_GT(report.total_energy_j(), 0.0);
  cfg.platform = "nonexistent";
  EXPECT_THROW((void)run(cfg), std::invalid_argument);
}

TEST(RunConfig, DeriveCellSeedIsPerCellAndStable) {
  EXPECT_EQ(derive_cell_seed(42, 0), derive_cell_seed(42, 0));
  EXPECT_NE(derive_cell_seed(42, 0), derive_cell_seed(42, 1));
  EXPECT_NE(derive_cell_seed(42, 0), derive_cell_seed(43, 0));
  EXPECT_NE(derive_cell_seed(42, 0), 42u);  // never the root itself
}

}  // namespace
}  // namespace bsr
