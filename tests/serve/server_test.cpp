// The bsr_served server loop end to end, over localhost TCP with an
// injectable runner: cold/warm/restart byte-identity, deterministic
// single-flight coalescing (N concurrent identical requests -> exactly one
// execution), admission control, the sweep op, and graceful shutdown.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "serve/report_json.hpp"

namespace bsr::serve {
namespace {

constexpr const char* kSmallConfig = R"({"n":1024,"b":128})";

RunConfig small_config() {
  RunConfig cfg;
  cfg.n = 1024;
  cfg.b = 128;
  return cfg;
}

std::string fresh_dir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "bsr_serve_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

/// A started memory-only TCP server whose runner counts executions.
struct TestServer {
  explicit TestServer(ServerConfig config = {}) {
    config.socket_path.clear();
    config.tcp_port = 0;  // ephemeral
    if (!config.runner) {
      config.runner = [this](const RunConfig& cfg) {
        ++executions;
        return bsr::run(cfg);
      };
    }
    server = std::make_unique<Server>(std::move(config));
    server->start();
  }

  [[nodiscard]] Client client() const {
    return Client::connect_tcp(server->port());
  }

  std::atomic<int> executions{0};
  std::unique_ptr<Server> server;
};

std::string run_request(const std::string& config_json) {
  return std::string(R"({"op":"run","config":)") + config_json + "}";
}

TEST(ServerTest, ColdRunExecutesOnceAndRepeatIsByteIdenticalFromMemory) {
  TestServer ts;
  Client c = ts.client();

  const std::string cold = c.call_raw(run_request(kSmallConfig));
  const std::string warm = c.call_raw(run_request(kSmallConfig));
  EXPECT_EQ(ts.executions.load(), 1);

  const JsonValue v1 = JsonValue::parse(cold);
  const JsonValue v2 = JsonValue::parse(warm);
  EXPECT_TRUE(v1.at("ok").as_bool());
  EXPECT_EQ(v1.at("source").as_string(), "executed");
  EXPECT_EQ(v2.at("source").as_string(), "memory");
  EXPECT_EQ(v1.at("fingerprint").as_string(),
            small_config().fingerprint());
  // The report payload — not the envelope, whose source tag legitimately
  // differs — must be byte-identical.
  EXPECT_EQ(v1.at("report").dump(), v2.at("report").dump());

  const ServeStats stats = ts.server->stats();
  EXPECT_EQ(stats.runs, 2u);
  EXPECT_EQ(stats.executed, 1u);
  EXPECT_EQ(stats.memory_hits, 1u);
  ts.server->stop();
}

TEST(ServerTest, RestartOverTheSameStoreServesByteIdenticalWithoutRerun) {
  const std::string dir = fresh_dir("restart");
  std::string cold_report;
  {
    ServerConfig cfg;
    cfg.store_dir = dir;
    TestServer ts(std::move(cfg));
    Client c = ts.client();
    const JsonValue v = JsonValue::parse(c.call_raw(run_request(kSmallConfig)));
    EXPECT_EQ(v.at("source").as_string(), "executed");
    cold_report = v.at("report").dump();
    EXPECT_EQ(ts.executions.load(), 1);
    ts.server->stop();
  }
  {
    ServerConfig cfg;
    cfg.store_dir = dir;
    TestServer ts(std::move(cfg));  // the restarted daemon
    Client c = ts.client();
    const JsonValue v = JsonValue::parse(c.call_raw(run_request(kSmallConfig)));
    EXPECT_EQ(v.at("source").as_string(), "store");
    EXPECT_EQ(v.at("report").dump(), cold_report);
    EXPECT_EQ(ts.executions.load(), 0);  // never re-executed
    EXPECT_EQ(ts.server->stats().store_hits, 1u);
    ts.server->stop();
  }
}

TEST(ServerTest, ConcurrentIdenticalRequestsCoalesceToExactlyOneExecution) {
  // Deterministic, not statistical: the runner BLOCKS until the single-
  // flight group proves all other requests joined its flight, so the workers
  // cannot sneak through sequentially.
  constexpr int kClients = 4;
  const std::string fp = small_config().fingerprint();

  std::atomic<int> executions{0};
  std::unique_ptr<Server> server;  // the runner below queries it
  ServerConfig cfg;
  cfg.workers = kClients;
  cfg.runner = [&](const RunConfig& rc) {
    ++executions;
    while (server->flights().waiters(fp) <
           static_cast<std::uint64_t>(kClients - 1)) {
      std::this_thread::yield();
    }
    return bsr::run(rc);
  };
  server = std::make_unique<Server>(std::move(cfg));
  server->start();

  std::vector<std::thread> threads;
  std::vector<std::string> responses(kClients);
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      Client c = Client::connect_tcp(server->port());
      responses[i] = c.call_raw(run_request(kSmallConfig));
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(executions.load(), 1);  // the acceptance assertion
  int leaders = 0;
  std::string report;
  for (const std::string& r : responses) {
    const JsonValue v = JsonValue::parse(r);
    EXPECT_TRUE(v.at("ok").as_bool());
    const std::string source = v.at("source").as_string();
    leaders += source == "executed" ? 1 : 0;
    if (source != "executed") {
      EXPECT_EQ(source, "coalesced");
    }
    if (report.empty()) {
      report = v.at("report").dump();
    } else {
      EXPECT_EQ(v.at("report").dump(), report);  // all share one result
    }
  }
  EXPECT_EQ(leaders, 1);
  const ServeStats stats = server->stats();
  EXPECT_EQ(stats.executed, 1u);
  EXPECT_EQ(stats.coalesced, static_cast<std::uint64_t>(kClients - 1));
  server->stop();
}

TEST(ServerTest, AdmissionControlRefusesBeyondQueueDepth) {
  // One worker, queue depth one. Connection A occupies the worker inside a
  // gated runner; connection B fills the queue; connection C must get the
  // explicit overloaded rejection. Accept order is kernel-FIFO, so the
  // sequence is deterministic once the runner is provably entered.
  std::atomic<bool> in_runner{false};
  std::atomic<bool> release{false};
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.queue_depth = 1;
  cfg.runner = [&](const RunConfig& rc) {
    in_runner.store(true);
    while (!release.load()) std::this_thread::yield();
    return bsr::run(rc);
  };
  TestServer ts(std::move(cfg));

  std::thread a_thread([&] {
    // Scoped client: closes its connection once answered, freeing the one
    // worker for the queued connection B.
    Client a = ts.client();
    const JsonValue v = JsonValue::parse(a.call_raw(run_request(kSmallConfig)));
    EXPECT_TRUE(v.at("ok").as_bool());
  });
  while (!in_runner.load()) std::this_thread::yield();

  Client b = ts.client();  // sits in the queue (depth 1: now full)
  Client c = ts.client();  // must be refused

  const JsonValue rejection = c.call(R"({"op":"stats"})");
  EXPECT_FALSE(rejection.at("ok").as_bool());
  EXPECT_EQ(rejection.at("error").as_string(), "overloaded");
  EXPECT_TRUE(rejection.at("retry").as_bool());

  release.store(true);
  a_thread.join();
  // B gets served once the worker frees up.
  EXPECT_TRUE(b.stats().at("ok").as_bool());
  EXPECT_EQ(ts.server->stats().overloaded, 1u);
  ts.server->stop();
}

TEST(ServerTest, SweepOpExpandsAxesAndDedupesViaFingerprints) {
  TestServer ts;
  Client c = ts.client();
  const JsonValue v = c.call(
      R"({"op":"sweep","config":{"n":1024,"b":128},)"
      R"("axes":{"strategy":["sr","bsr"],"r":[0,0.5]}})");
  ASSERT_TRUE(v.at("ok").as_bool());
  EXPECT_EQ(v.at("cells").to_int64(), 4);
  ASSERT_EQ(v.at("rows").items().size(), 4u);

  const JsonValue& first = v.at("rows").items()[0];
  EXPECT_EQ(first.at("coords").at("strategy").as_string(), "sr");
  EXPECT_EQ(first.at("coords").at("r").as_string(), "0");
  EXPECT_TRUE(first.at("time_s").is_number());
  EXPECT_TRUE(first.at("energy_j").is_number());

  // SR ignores r, so its r=0.5 cell dedupes onto r=0 ("memory"); BSR's two
  // r values are distinct runs: 3 executions for 4 cells.
  EXPECT_EQ(ts.executions.load(), 3);
  EXPECT_EQ(ts.server->stats().runs, 4u);
  ts.server->stop();
}

TEST(ServerTest, BadRequestsAnswerOkFalseAndKeepTheConnectionUsable) {
  TestServer ts;
  Client c = ts.client();

  const JsonValue bad1 = c.call(R"({"op":"warp_drive"})");
  EXPECT_FALSE(bad1.at("ok").as_bool());
  const JsonValue bad2 = c.call(R"({"op":"run","config":{"n":-5}})");
  EXPECT_FALSE(bad2.at("ok").as_bool());
  EXPECT_FALSE(bad2.at("retry").as_bool());
  const JsonValue bad3 = c.call(R"({"op":"run","config":{"typo_knob":1}})");
  EXPECT_FALSE(bad3.at("ok").as_bool());

  // Same connection still serves good requests afterwards.
  const JsonValue good = c.call(R"({"op":"stats"})");
  EXPECT_TRUE(good.at("ok").as_bool());
  EXPECT_EQ(good.at("bad_requests").to_int64(), 3);
  EXPECT_EQ(ts.executions.load(), 0);
  ts.server->stop();
}

TEST(ServerTest, StatsOpReportsCountersAndConfig) {
  ServerConfig cfg;
  cfg.workers = 2;
  cfg.queue_depth = 5;
  cfg.store_dir = fresh_dir("stats");
  TestServer ts(std::move(cfg));
  Client c = ts.client();
  (void)c.call_raw(run_request(kSmallConfig));

  const JsonValue v = c.stats();
  ASSERT_TRUE(v.at("ok").as_bool());
  EXPECT_EQ(v.at("workers").to_int64(), 2);
  EXPECT_EQ(v.at("queue_depth").to_int64(), 5);
  EXPECT_EQ(v.at("executed").to_int64(), 1);
  EXPECT_EQ(v.at("cache_entries").to_int64(), 1);
  EXPECT_EQ(v.at("store").at("saves").to_int64(), 1);
  ts.server->stop();
}

/// Minimal Prometheus text-exposition parser: sample name (labels included)
/// -> value token, comment lines indexed separately by metric name.
struct Exposition {
  std::map<std::string, std::string> samples;
  std::map<std::string, std::string> types;  // name -> TYPE annotation
  explicit Exposition(const std::string& text) { parse_text(text); }

 private:
  // gtest fatal assertions need a void function, so the ctor delegates here.
  void parse_text(const std::string& text) {
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
      ASSERT_FALSE(line.empty()) << "blank line in exposition";
      if (line.rfind("# TYPE ", 0) == 0) {
        std::istringstream fields(line.substr(7));
        std::string name;
        std::string type;
        fields >> name >> type;
        types[name] = type;
        continue;
      }
      if (line[0] == '#') continue;  // HELP or free comment
      const std::size_t space = line.rfind(' ');
      ASSERT_NE(space, std::string::npos) << line;
      samples[line.substr(0, space)] = line.substr(space + 1);
    }
  }
};

TEST(ServerTest, MetricsOpExposesCountersHistogramsAndBuildInfo) {
  ServerConfig cfg;
  cfg.store_dir = fresh_dir("metrics");
  TestServer ts(std::move(cfg));
  Client c = ts.client();
  (void)c.call_raw(run_request(kSmallConfig));
  (void)c.call_raw(run_request(kSmallConfig));  // memory hit

  const JsonValue v = JsonValue::parse(c.call_raw(R"({"op":"metrics"})"));
  ASSERT_TRUE(v.at("ok").as_bool());
  EXPECT_EQ(v.at("op").as_string(), "metrics");
  EXPECT_FALSE(v.at("version").as_string().empty());

  Exposition exp(v.at("exposition").as_string());
  // Counters are process-cumulative (other tests in this binary contribute),
  // so assert lower bounds, kinds, and internal consistency — not equality.
  EXPECT_EQ(exp.types.at("bsr_serve_requests_total"), "counter");
  EXPECT_GE(std::stoull(exp.samples.at("bsr_serve_requests_total")), 3u);
  EXPECT_GE(std::stoull(exp.samples.at("bsr_serve_executed_total")), 1u);
  EXPECT_GE(std::stoull(exp.samples.at("bsr_serve_memory_hits_total")), 1u);

  // The request-latency histogram observed the two run requests (the metrics
  // request itself is timed after its exposition snapshot, so it is not in
  // this count) and the +Inf bucket equals the count.
  EXPECT_EQ(exp.types.at("bsr_serve_request_latency_seconds"), "histogram");
  const auto count =
      std::stoull(exp.samples.at("bsr_serve_request_latency_seconds_count"));
  EXPECT_GE(count, 2u);
  EXPECT_EQ(std::stoull(exp.samples.at(
                "bsr_serve_request_latency_seconds_bucket{le=\"+Inf\"}")),
            count);

  // Point-in-time gauges refreshed by the metrics op itself.
  EXPECT_EQ(exp.types.at("bsr_serve_cache_entries"), "gauge");
  EXPECT_EQ(exp.samples.at("bsr_serve_cache_entries"), "1");
  EXPECT_EQ(exp.samples.at("bsr_build_info"), "1");
  EXPECT_EQ(exp.samples.at("bsr_serve_store_record_saves"), "1");
  ts.server->stop();
}

TEST(ServerTest, ShutdownOpStopsTheDaemon) {
  TestServer ts;
  std::thread waiter([&] { ts.server->wait(); });

  Client c = ts.client();
  const JsonValue v = c.shutdown();
  EXPECT_TRUE(v.at("ok").as_bool());
  EXPECT_EQ(v.at("op").as_string(), "shutdown");

  waiter.join();  // wait() returns only when the daemon is down
  EXPECT_FALSE(ts.server->running());
}

TEST(ServerTest, StopIsIdempotentAndUnlinksTheUnixSocket) {
  const std::string path = ::testing::TempDir() + "bsr_serve_sock_test.sock";
  ServerConfig cfg;
  cfg.socket_path = path;
  Server server(std::move(cfg));
  server.start();
  EXPECT_TRUE(std::filesystem::exists(path));
  {
    Client c = Client::connect_unix_socket(path);
    EXPECT_TRUE(c.stats().at("ok").as_bool());
  }
  server.stop();
  server.stop();  // idempotent
  EXPECT_FALSE(std::filesystem::exists(path));
}

}  // namespace
}  // namespace bsr::serve
