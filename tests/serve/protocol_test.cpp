#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace bsr::serve {
namespace {

TEST(Protocol, ParsesTheFourOps) {
  EXPECT_EQ(parse_request(R"({"op":"run"})").op, "run");
  EXPECT_EQ(parse_request(R"({"op":"sweep","axes":{}})").op, "sweep");
  EXPECT_EQ(parse_request(R"({"op":"stats"})").op, "stats");
  EXPECT_EQ(parse_request(R"({"op":"shutdown"})").op, "shutdown");
}

TEST(Protocol, BodyCarriesTheWholeRequestObject) {
  const Request req = parse_request(R"({"op":"run","config":{"n":4096}})");
  EXPECT_EQ(req.body.at("config").at("n").to_int64(), 4096);
}

TEST(Protocol, RejectsMalformedRequests) {
  EXPECT_THROW((void)parse_request("not json"), std::runtime_error);
  EXPECT_THROW((void)parse_request("[1,2]"), std::runtime_error);
  EXPECT_THROW((void)parse_request(R"({"config":{}})"), std::runtime_error);
  EXPECT_THROW((void)parse_request(R"({"op":42})"), std::runtime_error);
  try {
    (void)parse_request(R"({"op":"launch_missiles"})");
    FAIL() << "expected a protocol error";
  } catch (const std::runtime_error& e) {
    // The error names the known ops so a typo is self-diagnosing.
    EXPECT_NE(std::string(e.what()).find("run, sweep, stats, metrics, shutdown"),
              std::string::npos);
  }
}

TEST(Protocol, ErrorResponsesAreWellFormedJson) {
  const JsonValue v = JsonValue::parse(error_response("bad \"thing\"", false));
  EXPECT_FALSE(v.at("ok").as_bool());
  EXPECT_EQ(v.at("error").as_string(), "bad \"thing\"");
  EXPECT_FALSE(v.at("retry").as_bool());
}

TEST(Protocol, OverloadedResponseAsksForRetry) {
  const JsonValue v = JsonValue::parse(overloaded_response());
  EXPECT_FALSE(v.at("ok").as_bool());
  EXPECT_EQ(v.at("error").as_string(), "overloaded");
  EXPECT_TRUE(v.at("retry").as_bool());
}

}  // namespace
}  // namespace bsr::serve
