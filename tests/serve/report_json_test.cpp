// The serialization fixpoint the serving subsystem's byte-identity guarantee
// reduces to: serialize(deserialize(s)) == s, on reports with every optional
// section populated (iteration traces, device_usage, lane_faults, campaign
// counters), plus loud rejection of anything malformed.
#include "serve/report_json.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "bsr/faults.hpp"
#include "bsr/variability.hpp"

namespace bsr::serve {
namespace {

RunConfig small_config() {
  RunConfig cfg;
  cfg.n = 1024;
  cfg.b = 128;
  return cfg;
}

/// A single-node run with variability AND fault campaigning on, so the
/// report carries populated lane_faults and the stochastic knobs.
RunConfig faulty_config() {
  RunConfig cfg = small_config();
  cfg.variability = make_variability("jitter");
  cfg.faults = make_faults("poisson");
  cfg.faults.rate_multiplier = 225.0;
  return cfg;
}

/// A cluster run (devices >= 1), so the report carries device_usage.
RunConfig cluster_config() {
  RunConfig cfg = small_config();
  cfg.devices = 2;
  return cfg;
}

void expect_fixpoint(const core::RunReport& report) {
  const std::string cold = serialize_report(report);
  const core::RunReport restored = deserialize_report(cold);
  const std::string warm = serialize_report(restored);
  EXPECT_EQ(cold, warm) << "serialize(deserialize(s)) != s";
}

TEST(ReportJson, DefaultConfigReportRoundTripsByteIdentically) {
  expect_fixpoint(bsr::run(small_config()));
}

TEST(ReportJson, FaultyReportRoundTripsWithPopulatedLaneFaults) {
  const core::RunReport report = bsr::run(faulty_config());
  ASSERT_FALSE(report.lane_faults.empty());
  expect_fixpoint(report);

  const core::RunReport restored =
      deserialize_report(serialize_report(report));
  ASSERT_EQ(restored.lane_faults.size(), report.lane_faults.size());
  for (std::size_t i = 0; i < report.lane_faults.size(); ++i) {
    EXPECT_EQ(restored.lane_faults[i].lane, report.lane_faults[i].lane);
    EXPECT_EQ(restored.lane_faults[i].injected,
              report.lane_faults[i].injected);
    EXPECT_EQ(restored.lane_faults[i].unrecovered,
              report.lane_faults[i].unrecovered);
  }
  EXPECT_EQ(restored.fault_coverage(), report.fault_coverage());
}

TEST(ReportJson, ClusterReportRoundTripsWithPopulatedDeviceUsage) {
  const core::RunReport report = bsr::run(cluster_config());
  ASSERT_FALSE(report.device_usage.empty());
  expect_fixpoint(report);

  const core::RunReport restored =
      deserialize_report(serialize_report(report));
  ASSERT_EQ(restored.device_usage.size(), report.device_usage.size());
  for (std::size_t i = 0; i < report.device_usage.size(); ++i) {
    EXPECT_EQ(restored.device_usage[i].name, report.device_usage[i].name);
    EXPECT_EQ(restored.device_usage[i].energy_j,
              report.device_usage[i].energy_j);
  }
}

TEST(ReportJson, MetricsSurviveTheRoundTrip) {
  const core::RunReport report = bsr::run(small_config());
  const core::RunReport restored =
      deserialize_report(serialize_report(report));
  // Bitwise, not approximate: the store serves these as authoritative.
  EXPECT_EQ(restored.seconds(), report.seconds());
  EXPECT_EQ(restored.total_energy_j(), report.total_energy_j());
  EXPECT_EQ(restored.ed2p(), report.ed2p());
  EXPECT_EQ(restored.gflops(), report.gflops());
  ASSERT_EQ(restored.trace.iterations.size(), report.trace.iterations.size());
}

TEST(ReportJson, MalformedInputIsRejectedLoudly) {
  EXPECT_THROW((void)deserialize_report("{"), std::runtime_error);
  EXPECT_THROW((void)deserialize_report("[]"), std::runtime_error);
  EXPECT_THROW((void)deserialize_report(R"({"surprise":1})"),
               std::runtime_error);
  // Truncated mid-document.
  const std::string good = serialize_report(bsr::run(small_config()));
  EXPECT_THROW((void)deserialize_report(good.substr(0, good.size() / 2)),
               std::runtime_error);
}

TEST(ConfigJson, RoundTripPreservesTheFingerprint) {
  RunConfig cfg = faulty_config();
  cfg.strategy = "sr";
  cfg.seed = 123456789012345ULL;
  const RunConfig restored =
      config_from_json(JsonValue::parse(serialize_config(cfg)));
  EXPECT_EQ(restored.fingerprint(), cfg.fingerprint());
  EXPECT_EQ(restored.seed, cfg.seed);
  EXPECT_EQ(restored.strategy, cfg.strategy);
}

TEST(ConfigJson, AbsentFieldsKeepDefaults) {
  const RunConfig cfg =
      config_from_json(JsonValue::parse(R"({"n":2048,"strategy":"sr"})"));
  EXPECT_EQ(cfg.n, 2048);
  EXPECT_EQ(cfg.strategy, "sr");
  const RunConfig defaults;
  EXPECT_EQ(cfg.abft_policy, defaults.abft_policy);
  EXPECT_EQ(cfg.seed, defaults.seed);
  EXPECT_EQ(cfg.platform, defaults.platform);
}

TEST(ConfigJson, UnknownKeysThrowInsteadOfRunningTheWrongExperiment) {
  EXPECT_THROW(
      (void)config_from_json(JsonValue::parse(R"({"reclamationratio":0.5})")),
      std::runtime_error);
  EXPECT_THROW((void)config_from_json(
                   JsonValue::parse(R"({"variability":{"dirft":0.01}})")),
               std::runtime_error);
}

}  // namespace
}  // namespace bsr::serve
