// DiskResultStore: durable save/load round-trips, byte-identical serialized
// records, and LOUD misses (never crashes, never wrong results) on corrupt,
// old-schema, or fingerprint-mismatched records.
#include "serve/store.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "common/metrics.hpp"
#include "serve/report_json.hpp"

namespace bsr::serve {
namespace {

RunConfig small_config() {
  RunConfig cfg;
  cfg.n = 1024;
  cfg.b = 128;
  return cfg;
}

/// A fresh per-test store directory under the test's temp dir (leftovers
/// from a previous ctest run are wiped so first-load-misses stay misses).
std::string fresh_dir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "bsr_store_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

void overwrite(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  ASSERT_TRUE(out.good()) << path;
  out << content;
}

TEST(DiskResultStore, MissThenSaveThenHit) {
  DiskResultStore store(fresh_dir("roundtrip"));
  const RunConfig cfg = small_config();
  const std::string fp = cfg.fingerprint() + ":roundtrip";

  EXPECT_EQ(store.load(fp), nullptr);
  EXPECT_EQ(store.stats().misses, 1u);

  const core::RunReport report = bsr::run(cfg);
  store.save(fp, report);
  EXPECT_EQ(store.stats().saves, 1u);

  const std::shared_ptr<const core::RunReport> loaded = store.load(fp);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(store.stats().hits, 1u);
  EXPECT_EQ(store.stats().rejected, 0u);
  EXPECT_EQ(serialize_report(*loaded), serialize_report(report));
}

TEST(DiskResultStore, SerializedPathIsByteIdentical) {
  DiskResultStore store(fresh_dir("serialized"));
  const std::string fp = "fp-serialized";
  const std::string cold = serialize_report(bsr::run(small_config()));

  store.save_serialized(fp, cold);
  const std::shared_ptr<const std::string> warm = store.load_serialized(fp);
  ASSERT_NE(warm, nullptr);
  EXPECT_EQ(*warm, cold);  // the byte-identity contract, cross-process
}

TEST(DiskResultStore, SurvivesReopen) {
  const std::string dir = fresh_dir("reopen");
  const std::string fp = "fp-reopen";
  const std::string cold = serialize_report(bsr::run(small_config()));
  {
    DiskResultStore store(dir);
    store.save_serialized(fp, cold);
  }
  DiskResultStore reopened(dir);  // a daemon restart
  const std::shared_ptr<const std::string> warm =
      reopened.load_serialized(fp);
  ASSERT_NE(warm, nullptr);
  EXPECT_EQ(*warm, cold);
}

TEST(DiskResultStore, CorruptRecordIsALoudMissNotACrash) {
  DiskResultStore store(fresh_dir("corrupt"));
  const std::string fp = "fp-corrupt";
  store.save_serialized(fp, serialize_report(bsr::run(small_config())));

  overwrite(store.record_path(fp), "{\"schema\":1,\"fingerpr");  // truncated
  EXPECT_EQ(store.load(fp), nullptr);
  EXPECT_EQ(store.load_serialized(fp), nullptr);
  EXPECT_EQ(store.stats().rejected, 2u);
  EXPECT_EQ(store.stats().hits, 0u);
}

TEST(DiskResultStore, OldSchemaVersionIsRejected) {
  DiskResultStore store(fresh_dir("schema"));
  const std::string fp = "fp-schema";
  const std::string report_json = serialize_report(bsr::run(small_config()));
  store.save_serialized(fp, report_json);

  // Rewrite the record claiming a pre-historic schema version.
  overwrite(store.record_path(fp),
            "{\"schema\":0,\"fingerprint\":\"" + fp +
                "\",\"report\":" + report_json + "}");
  EXPECT_EQ(store.load_serialized(fp), nullptr);
  EXPECT_EQ(store.stats().rejected, 1u);
}

TEST(DiskResultStore, FingerprintMismatchIsRejected) {
  // A record copied to the wrong path (or a hash collision) must never be
  // served as the requested configuration's result.
  DiskResultStore store(fresh_dir("mismatch"));
  store.save_serialized("fp-A", serialize_report(bsr::run(small_config())));

  std::ifstream in(store.record_path("fp-A"), std::ios::binary);
  const std::string record((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
  overwrite(store.record_path("fp-B"), record);

  EXPECT_EQ(store.load_serialized("fp-B"), nullptr);
  EXPECT_EQ(store.stats().rejected, 1u);
  // The original record still loads fine.
  EXPECT_NE(store.load_serialized("fp-A"), nullptr);
}

TEST(DiskResultStore, DeserializationFailureInsideAValidEnvelopeRejects) {
  DiskResultStore store(fresh_dir("badreport"));
  const std::string fp = "fp-badreport";
  overwrite(store.record_path(fp),
            "{\"schema\":1,\"fingerprint\":\"" + fp +
                "\",\"report\":{\"not_a_report\":true}}");
  // load_serialized trusts the envelope; load() must still reject loudly.
  EXPECT_EQ(store.load(fp), nullptr);
  EXPECT_GE(store.stats().rejected, 1u);
}

TEST(DiskResultStore, EveryCorruptionClassCountsTheRejectedMetric) {
  // Satellite contract (docs/OBSERVABILITY.md): each corruption class —
  // truncated record, garbage JSON, schema drift — is a loud miss that
  // bumps the process-wide bsr_store_rejected_records_total counter, never
  // a crash and never a stale answer.
  common::Counter& rejected = common::MetricsRegistry::global().counter(
      "bsr_store_rejected_records_total", "");
  DiskResultStore store(fresh_dir("metric"));
  const std::string good = serialize_report(bsr::run(small_config()));

  const std::uint64_t before = rejected.value();

  store.save_serialized("fp-trunc", "{\"schema\":1,\"report\":" + good + "}");
  overwrite(store.record_path("fp-trunc"), "{\"schema\":1,\"fing");
  EXPECT_EQ(store.load_serialized("fp-trunc"), nullptr);
  EXPECT_EQ(rejected.value(), before + 1);

  overwrite(store.record_path("fp-garbage"), "not json at all\n");
  EXPECT_EQ(store.load_serialized("fp-garbage"), nullptr);
  EXPECT_EQ(rejected.value(), before + 2);

  overwrite(store.record_path("fp-drift"),
            "{\"schema\":999,\"fingerprint\":\"fp-drift\",\"report\":" + good +
                "}");
  EXPECT_EQ(store.load_serialized("fp-drift"), nullptr);
  EXPECT_EQ(rejected.value(), before + 3);

  // A valid record written after the carnage still round-trips: corruption
  // of one record never poisons the store.
  store.save_serialized("fp-ok", good);
  const std::shared_ptr<const std::string> ok = store.load_serialized("fp-ok");
  ASSERT_NE(ok, nullptr);
  EXPECT_EQ(*ok, good);
}

TEST(DiskResultStore, UnreadableDirectoryThrowsAtConstruction) {
  EXPECT_THROW(DiskResultStore("/proc/definitely/not/creatable"),
               std::runtime_error);
}

}  // namespace
}  // namespace bsr::serve
