#include "serve/single_flight.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace bsr::serve {
namespace {

TEST(SingleFlight, UncontendedCallLeadsAndReturnsTheValue) {
  SingleFlight<int> group;
  const auto result = group.do_call("k", [] { return 7; });
  EXPECT_TRUE(result.leader);
  EXPECT_EQ(result.value, 7);
  EXPECT_EQ(group.led(), 1u);
  EXPECT_EQ(group.coalesced(), 0u);
  EXPECT_EQ(group.waiters("k"), 0u);  // the flight is forgotten after publish
}

TEST(SingleFlight, NConcurrentIdenticalKeysExecuteExactlyOnce) {
  // The acceptance-test shape from ISSUE 7, made deterministic: the leader's
  // work function BLOCKS until waiters("k") proves all N-1 followers joined
  // the flight, so coalescing cannot be a lucky race.
  constexpr int kThreads = 8;
  SingleFlight<int> group;
  std::atomic<int> executions{0};

  std::vector<std::thread> threads;
  std::vector<SingleFlight<int>::Result> results(kThreads);
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      results[i] = group.do_call("k", [&] {
        ++executions;
        while (group.waiters("k") <
               static_cast<std::uint64_t>(kThreads - 1)) {
          std::this_thread::yield();
        }
        return 42;
      });
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(executions.load(), 1);
  int leaders = 0;
  for (const auto& r : results) {
    EXPECT_EQ(r.value, 42);
    leaders += r.leader ? 1 : 0;
  }
  EXPECT_EQ(leaders, 1);
  EXPECT_EQ(group.led(), 1u);
  EXPECT_EQ(group.coalesced(), static_cast<std::uint64_t>(kThreads - 1));
}

TEST(SingleFlight, DistinctKeysDoNotCoalesce) {
  SingleFlight<int> group;
  (void)group.do_call("a", [] { return 1; });
  (void)group.do_call("b", [] { return 2; });
  EXPECT_EQ(group.led(), 2u);
  EXPECT_EQ(group.coalesced(), 0u);
}

TEST(SingleFlight, SequentialCallsReExecute) {
  // Single-flight dedupes IN-FLIGHT work only; remembering completed values
  // is the cache tiers' business.
  SingleFlight<int> group;
  int calls = 0;
  (void)group.do_call("k", [&] { return ++calls; });
  const auto second = group.do_call("k", [&] { return ++calls; });
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(second.value, 2);
}

TEST(SingleFlight, LeaderExceptionRethrownInEveryFollower) {
  SingleFlight<int> group;
  std::atomic<bool> leader_in_fn{false};

  std::thread leader([&] {
    EXPECT_THROW(
        (void)group.do_call("k",
                            [&]() -> int {
                              leader_in_fn.store(true);
                              // Throw only once the follower provably joined.
                              while (group.waiters("k") == 0) {
                                std::this_thread::yield();
                              }
                              throw std::runtime_error("simulated failure");
                            }),
        std::runtime_error);
  });
  std::thread follower([&] {
    // The flight certainly exists once the leader is inside its fn.
    while (!leader_in_fn.load()) std::this_thread::yield();
    EXPECT_THROW((void)group.do_call("k", []() -> int { return 0; }),
                 std::runtime_error);
  });
  leader.join();
  follower.join();

  // A failed flight is forgotten too: the next call for the key re-executes.
  const auto retry = group.do_call("k", [] { return 9; });
  EXPECT_EQ(retry.value, 9);
}

}  // namespace
}  // namespace bsr::serve
