// End-to-end tests for the fault-campaign subsystem behind bsr/faults.hpp:
// zero-rate inertness (bitwise equality with the no-fault path), seeded
// determinism, coverage semantics per policy, rollback accounting, per-lane
// fault+recovery reconciliation with the makespan on both engines, campaign
// thread-count bitwise identity, the preset registry, and validation.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "bsr/bsr.hpp"

namespace bsr {
namespace {

/// The fig09 world, timing-only: numeric_demo op durations with compressed
/// SDC exposure, BSR r = 0.25 — overclocked enough that the error table is
/// genuinely live. Fast: ~24 simulated iterations.
RunConfig fig09_world() {
  RunConfig cfg;
  cfg.factorization = Factorization::LU;
  cfg.n = 768;
  cfg.b = 32;
  cfg.strategy = "bsr";
  cfg.reclamation_ratio = 0.25;
  cfg.fc_desired = 0.999;
  cfg.error_rate_multiplier = 150.0;
  cfg.platform = "numeric_demo";
  return cfg;
}

TEST(FaultRun, ZeroRateIsBitwiseInert) {
  RunConfig off = fig09_world();
  RunConfig zero = off;
  zero.faults.enabled = true;
  zero.faults.rate_multiplier = 0.0;
  zero.faults.background_rate_per_s = 0.0;
  zero.faults.correction_s = 5e-3;

  const auto a = run(off);
  const auto b = run(zero);
  EXPECT_EQ(a.seconds(), b.seconds());
  EXPECT_EQ(a.total_energy_j(), b.total_energy_j());
  ASSERT_EQ(a.trace.iterations.size(), b.trace.iterations.size());
  for (std::size_t k = 0; k < a.trace.iterations.size(); ++k) {
    EXPECT_EQ(a.trace.iterations[k].span, b.trace.iterations[k].span) << k;
    EXPECT_EQ(a.trace.iterations[k].gpu_energy_j,
              b.trace.iterations[k].gpu_energy_j)
        << k;
  }
  EXPECT_TRUE(a.lane_faults.empty());
  ASSERT_EQ(b.lane_faults.size(), 1u);
  EXPECT_EQ(b.lane_faults[0].injected, 0);
  EXPECT_EQ(b.lane_faults[0].recovery_s, 0.0);
}

TEST(FaultRun, SeededRealizationsAreDeterministic) {
  RunConfig cfg = fig09_world();
  cfg.faults = make_faults("poisson");
  cfg.faults.seed = 1234;

  const auto a = run(cfg);
  const auto b = run(cfg);
  EXPECT_EQ(a.seconds(), b.seconds());
  ASSERT_EQ(a.lane_faults.size(), 1u);
  EXPECT_GT(a.lane_faults[0].injected, 0);
  EXPECT_EQ(a.lane_faults[0].injected, b.lane_faults[0].injected);

  cfg.faults.seed = 99;
  const auto c = run(cfg);
  EXPECT_NE(a.lane_faults[0].injected, c.lane_faults[0].injected);
}

TEST(FaultRun, AdaptiveCoversWhatNoneLeaksAndReportReconciles) {
  RunConfig cfg = fig09_world();
  cfg.faults = make_faults("paper_fig09");  // deterministic replay

  cfg.abft_policy = "adaptive";
  const auto adaptive = run(cfg);
  ASSERT_EQ(adaptive.lane_faults.size(), 1u);
  const core::LaneFaults& af = adaptive.lane_faults[0];
  EXPECT_GT(af.injected, 0);
  EXPECT_EQ(af.injected, af.corrected + af.recovered + af.unrecovered);
  EXPECT_EQ(af.unrecovered, 0);
  EXPECT_EQ(adaptive.fault_coverage(), 1.0);
  EXPECT_GT(adaptive.fault_recovery_s(), 0.0);
  // The run-level ABFT stats carry the same story.
  EXPECT_EQ(adaptive.abft.errors_injected_total(),
            static_cast<int>(af.injected));

  cfg.abft_policy = "none";
  const auto none = run(cfg);
  ASSERT_EQ(none.lane_faults.size(), 1u);
  EXPECT_GT(none.lane_faults[0].injected, 0);
  EXPECT_EQ(none.lane_faults[0].corrected, 0);
  EXPECT_EQ(none.lane_faults[0].unrecovered, none.lane_faults[0].injected);
  EXPECT_LT(none.fault_coverage(), 1.0);
  EXPECT_EQ(none.fault_recovery_s(), 0.0);
}

TEST(FaultRun, RollbackPaysTimeAndRecoversSingleSideLeaks) {
  // Forced single-side checksums + the deterministic 1D replay: without
  // rollback the 1D faults stand unrecovered; with rollback they are
  // recovered and the redo time is charged in-lane.
  RunConfig cfg = fig09_world();
  cfg.abft_policy = "single";
  cfg.faults = make_faults("paper_fig09");

  cfg.faults.rollback = false;
  const auto leaky = run(cfg);
  ASSERT_EQ(leaky.lane_faults.size(), 1u);
  EXPECT_GT(leaky.lane_faults[0].unrecovered, 0);
  EXPECT_EQ(leaky.lane_faults[0].rollbacks, 0);

  cfg.faults.rollback = true;
  const auto recovered = run(cfg);
  ASSERT_EQ(recovered.lane_faults.size(), 1u);
  EXPECT_EQ(recovered.lane_faults[0].unrecovered, 0);
  EXPECT_GT(recovered.lane_faults[0].rollbacks, 0);
  EXPECT_EQ(recovered.fault_coverage(), 1.0);
  EXPECT_GT(recovered.seconds(), leaky.seconds());
  EXPECT_GT(recovered.fault_recovery_s(), leaky.fault_recovery_s());
  EXPECT_EQ(recovered.abft.recoveries, recovered.lane_faults[0].rollbacks);
}

TEST(FaultRun, SingleNodeRecoveryReconcilesWithTrace) {
  RunConfig cfg = fig09_world();
  cfg.faults = make_faults("paper_fig09");
  const auto report = run(cfg);
  ASSERT_EQ(report.lane_faults.size(), 1u);
  double recovery = 0.0;
  std::int64_t injected = 0;
  for (const sched::IterationOutcome& o : report.trace.iterations) {
    recovery += o.recovery.seconds();
    injected += o.faults.injected.total();
    // Recovery lives inside the lane (and span), never beyond it.
    EXPECT_LE(o.recovery, o.gpu_lane);
    EXPECT_LE(o.gpu_lane, o.span);
  }
  EXPECT_DOUBLE_EQ(report.lane_faults[0].recovery_s, recovery);
  EXPECT_EQ(report.lane_faults[0].injected, injected);

  // Against the identical no-fault world: faults only ever cost time, and
  // at most the charged recovery (slack can absorb part of it).
  RunConfig off = cfg;
  off.faults = FaultConfig{};
  const auto base = run(off);
  EXPECT_GE(report.seconds(), base.seconds());
  EXPECT_LE(report.seconds() - base.seconds(), recovery + 1e-9);
}

TEST(FaultRun, ClusterLaneAccountingReconcilesWithMakespan) {
  RunConfig cfg;
  cfg.n = 2048;
  cfg.b = 0;
  cfg.strategy = "bsr";
  cfg.reclamation_ratio = 0.25;
  cfg.abft_policy = "full";  // every window protected: corrections certain
  cfg.devices = 4;
  cfg.faults.enabled = true;
  cfg.faults.background_rate_per_s = 50.0;  // strikes every device lane
  cfg.faults.correction_s = 1e-3;

  const ClusterConfig cc{cfg, cfg.devices, cfg.cluster};
  const cluster::ClusterReport r = run_cluster_detailed(cc);
  std::int64_t injected = 0;
  for (const DeviceUsage& d : r.devices) {
    // busy + idle + dvfs still accounts for the full makespan with the
    // recovery time folded into busy_s (recovery_s is its sub-bucket).
    EXPECT_NEAR(d.busy_s + d.idle_s + d.dvfs_s, r.makespan.seconds(), 1e-6)
        << d.name;
    EXPECT_LE(d.recovery_s, d.busy_s);
    EXPECT_EQ(d.faults_injected,
              d.faults_corrected + d.faults_recovered + d.faults_unrecovered);
    if (d.faults_corrected + d.faults_recovered > 0) {
      EXPECT_GT(d.recovery_s, 0.0) << d.name;
    }
    injected += d.faults_injected;
  }
  EXPECT_GT(injected, 0);

  // The facade aggregation carries the same per-lane story.
  const auto report = run(cfg);
  ASSERT_EQ(report.lane_faults.size(), 4u);
  std::int64_t facade_injected = 0;
  for (const core::LaneFaults& lf : report.lane_faults) {
    facade_injected += lf.injected;
  }
  EXPECT_EQ(facade_injected, injected);
  EXPECT_EQ(report.fault_coverage(), 1.0);
}

TEST(FaultCampaignRun, BitwiseIdenticalAcrossThreadCounts) {
  RunConfig base = fig09_world();
  base.faults = make_faults("poisson");
  const Axis schemes = abft_axis({"single", "full", "adaptive"});

  const auto render = [&](int threads) {
    CampaignResult result =
        FaultCampaign(base, /*trials=*/4).over(schemes).threads(threads).run();
    std::ostringstream out;
    auto sink = make_result_sink("json", out);
    emit(result, *sink);
    return out.str();
  };
  const std::string serial = render(1);
  const std::string parallel = render(4);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

TEST(FaultCampaignRun, AggregatesAndSharedBaselines) {
  RunConfig base = fig09_world();
  base.faults = make_faults("poisson");
  Axis rates{"rate", {}};
  for (const double m : {1.0, 8.0}) {
    rates.points.push_back({TablePrinter::num(m), [m](RunConfig& c) {
                              c.faults.rate_multiplier = m;
                            }});
  }
  const int trials = 4;
  CampaignResult result = FaultCampaign(base, trials).over(rates).run();
  ASSERT_EQ(result.cells.size(), 2u);
  ASSERT_EQ(result.axis_names, std::vector<std::string>{"rate"});
  // The rate axis only touches the fault block, so both cells' faults-off
  // baselines share one cached run: 2 x (4 trials + baseline) requested,
  // the baseline executed once.
  EXPECT_EQ(result.requested_runs, 2u * (trials + 1));
  EXPECT_EQ(result.unique_runs, 2u * trials + 1);

  for (const CampaignCell& cell : result.cells) {
    ASSERT_EQ(cell.trials.size(), static_cast<std::size_t>(trials));
    ASSERT_NE(cell.baseline, nullptr);
    EXPECT_TRUE(cell.baseline->lane_faults.empty());
    std::int64_t injected = 0;
    for (const auto& trial : cell.trials) {
      for (const core::LaneFaults& lf : trial->lane_faults) {
        injected += lf.injected;
      }
    }
    EXPECT_EQ(cell.injected, injected);
    EXPECT_EQ(cell.injected,
              cell.corrected + cell.recovered + cell.unrecovered);
    EXPECT_GE(cell.overhead, 0.0);
    EXPECT_LE(cell.p50_s, cell.p95_s);
    EXPECT_LE(cell.p95_s, cell.p99_s);
  }
  // 8x the arrival rate: strictly more faults.
  EXPECT_GT(result.cells[1].injected, result.cells[0].injected);

  EXPECT_THROW((void)FaultCampaign(base, 0).run(), std::invalid_argument);
}

TEST(FaultPresets, RegistryRoundTripsAndLists) {
  EXPECT_FALSE(make_faults("off").enabled);
  EXPECT_TRUE(make_faults("poisson").enabled);
  EXPECT_EQ(make_faults("paper_fig09").process, faultcamp::ProcessKind::Fixed);
  EXPECT_GT(make_faults("hostile").burst_mean, 1.0);
  EXPECT_EQ(fault_presets().canonical("fig09"), "paper_fig09");
  EXPECT_EQ(fault_presets().canonical("on"), "poisson");
  try {
    (void)make_faults("nope");
    FAIL() << "unknown preset accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("paper_fig09"), std::string::npos);
  }
  std::ostringstream out;
  print_registered_keys(out);
  EXPECT_NE(out.str().find("fault presets"), std::string::npos);
  EXPECT_NE(out.str().find("poisson"), std::string::npos);
}

TEST(FaultConfigValidation, NumericModeAndFingerprints) {
  RunConfig cfg = fig09_world();
  cfg.faults = make_faults("poisson");
  cfg.mode = ExecutionMode::Numeric;
  try {
    cfg.validate();
    FAIL() << "numeric mode with statistical faults accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("faults"), std::string::npos);
  }

  // Disabled block fingerprints exactly like a config without one; every
  // live knob separates cache keys.
  RunConfig off = fig09_world();
  RunConfig noisy_off = off;
  noisy_off.faults.rate_multiplier = 77.0;  // irrelevant while disabled
  EXPECT_EQ(off.fingerprint(), noisy_off.fingerprint());
  RunConfig on = off;
  on.faults = make_faults("poisson");
  EXPECT_NE(on.fingerprint(), off.fingerprint());
  RunConfig on2 = on;
  on2.faults.seed = 5;
  EXPECT_NE(on.fingerprint(), on2.fingerprint());
}

}  // namespace
}  // namespace bsr
