// Unit tests for the seeded fault processes (faultcamp/process.hpp):
// validation, fingerprint collapse, stream determinism and decorrelation,
// clock-dependent rate scaling, burst/hazard variants, the deterministic
// fixed replay, and the resolution rules per checksum mode.
#include "faultcamp/process.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace bsr::faultcamp {
namespace {

Spec poisson_spec(double mult = 1.0) {
  Spec s;
  s.enabled = true;
  s.process = ProcessKind::Poisson;
  s.rate_multiplier = mult;
  return s;
}

const hw::ErrorRates kMidRates{.d0 = 0.03, .d1 = 0.0, .d2 = 0.0};
const hw::ErrorRates kTopRates{.d0 = 0.35, .d1 = 0.025, .d2 = 3e-7};
const hw::ErrorRates kSafeRates{};

TEST(FaultSpecValidate, RejectsOutOfRangeFields) {
  const auto expect_reject = [](Spec s, const char* what) {
    try {
      validate(s);
      FAIL() << "expected rejection: " << what;
    } catch (const std::invalid_argument& e) {
      EXPECT_EQ(std::string(e.what()).rfind("faults:", 0), 0) << e.what();
    }
  };
  Spec s;
  s.rate_multiplier = -1.0;
  expect_reject(s, "negative rate_multiplier");
  s = Spec{};
  s.background_rate_per_s = -0.5;
  expect_reject(s, "negative background rate");
  s = Spec{};
  s.burst_mean = 0.5;
  expect_reject(s, "burst_mean below 1");
  s = Spec{};
  s.hazard_sigma = -0.1;
  expect_reject(s, "negative hazard sigma");
  s = Spec{};
  s.fixed_d1 = -1;
  expect_reject(s, "negative fixed count");
  s = Spec{};
  s.correction_s = -1e-3;
  expect_reject(s, "negative correction latency");
  validate(Spec{});  // the default is valid
}

TEST(FaultSpecFingerprint, DisabledCollapsesToOneKey) {
  Spec loud;
  loud.rate_multiplier = 99.0;
  loud.burst_mean = 7.0;
  loud.seed = 123;
  EXPECT_EQ(fingerprint_fragment(loud), "flt=0");
  EXPECT_EQ(fingerprint_fragment(Spec{}), "flt=0");

  loud.enabled = true;
  const std::string on = fingerprint_fragment(loud);
  EXPECT_NE(on, "flt=0");
  Spec other = loud;
  other.rate_multiplier = 98.0;
  EXPECT_NE(fingerprint_fragment(other), on);
  other = loud;
  other.rollback = !other.rollback;
  EXPECT_NE(fingerprint_fragment(other), on);
}

TEST(FaultProcess, DisabledOrZeroRateDrawsNothing) {
  FaultProcess off;
  EXPECT_FALSE(off.enabled());
  EXPECT_EQ(off.sample(kTopRates, SimTime::from_seconds(100.0)).total(), 0);

  FaultProcess zero(poisson_spec(0.0), 42, 1);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(zero.sample(kTopRates, SimTime::from_seconds(100.0)).total(), 0);
  }
  // Safe clocks produce no faults whatever the multiplier.
  FaultProcess hot(poisson_spec(1e4), 42, 1);
  EXPECT_EQ(hot.sample(kSafeRates, SimTime::from_seconds(100.0)).total(), 0);
}

TEST(FaultProcess, SampleSequenceIsSeedDeterministic) {
  const Spec spec = poisson_spec(40.0);
  FaultProcess a(spec, 42, 1);
  FaultProcess b(spec, 42, 1);
  FaultProcess other_seed(spec, 43, 1);
  FaultProcess other_lane(spec, 42, 2);
  std::int64_t total = 0;
  bool seed_differs = false;
  bool lane_differs = false;
  for (int i = 0; i < 32; ++i) {
    const SimTime w = SimTime::from_seconds(0.5);
    const FaultCounts ca = a.sample(kTopRates, w);
    const FaultCounts cb = b.sample(kTopRates, w);
    EXPECT_EQ(ca.d0, cb.d0);
    EXPECT_EQ(ca.d1, cb.d1);
    EXPECT_EQ(ca.d2, cb.d2);
    total += ca.total();
    seed_differs |= other_seed.sample(kTopRates, w).total() != ca.total();
    lane_differs |= other_lane.sample(kTopRates, w).total() != ca.total();
  }
  EXPECT_GT(total, 0);
  EXPECT_TRUE(seed_differs) << "seed 43 replayed seed 42's stream";
  EXPECT_TRUE(lane_differs) << "lane 2 replayed lane 1's stream";
}

TEST(FaultProcess, RateScalesWithClock) {
  // The same process samples far more faults at the top overclocked state
  // than at the mildly overclocked one — the paper's premise.
  FaultProcess p(poisson_spec(10.0), 7, 1);
  std::int64_t mid = 0;
  std::int64_t top = 0;
  for (int i = 0; i < 64; ++i) {
    mid += p.sample(kMidRates, SimTime::from_seconds(0.25)).total();
    top += p.sample(kTopRates, SimTime::from_seconds(0.25)).total();
  }
  EXPECT_GT(top, 4 * mid) << "top=" << top << " mid=" << mid;
}

TEST(FaultProcess, ScalesWithMultiplierAndBackground) {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  FaultProcess plo(poisson_spec(5.0), 11, 1);
  FaultProcess phi(poisson_spec(50.0), 11, 1);
  for (int i = 0; i < 64; ++i) {
    lo += plo.sample(kMidRates, SimTime::from_seconds(0.5)).total();
    hi += phi.sample(kMidRates, SimTime::from_seconds(0.5)).total();
  }
  EXPECT_GT(hi, 4 * lo);

  // Background arrivals strike even the fault-free state, as 0D.
  Spec bg = poisson_spec(0.0);
  bg.background_rate_per_s = 2.0;
  FaultProcess pbg(bg, 11, 1);
  FaultCounts c;
  for (int i = 0; i < 32; ++i) {
    const FaultCounts s = pbg.sample(kSafeRates, SimTime::from_seconds(1.0));
    c.d0 += s.d0;
    c.d1 += s.d1;
    c.d2 += s.d2;
  }
  EXPECT_GT(c.d0, 0);
  EXPECT_EQ(c.d1, 0);
  EXPECT_EQ(c.d2, 0);
}

TEST(FaultProcess, BurstsMultiplyArrivals) {
  Spec plain = poisson_spec(10.0);
  Spec bursty = plain;
  bursty.burst_mean = 4.0;
  std::int64_t plain_total = 0;
  std::int64_t burst_total = 0;
  FaultProcess pp(plain, 3, 1);
  FaultProcess pb(bursty, 3, 1);
  for (int i = 0; i < 128; ++i) {
    plain_total += pp.sample(kMidRates, SimTime::from_seconds(0.5)).total();
    burst_total += pb.sample(kMidRates, SimTime::from_seconds(0.5)).total();
  }
  // Same arrival stream, ~4 faults per arrival: expect roughly 4x, and
  // certainly more than 2x.
  EXPECT_GT(burst_total, 2 * plain_total);
}

TEST(FaultProcess, HazardIsPerLaneAndReproducible) {
  Spec s = poisson_spec(1.0);
  EXPECT_DOUBLE_EQ(FaultProcess(s, 5, 1).hazard(), 1.0);
  s.hazard_sigma = 0.8;
  const double h1 = FaultProcess(s, 5, 1).hazard();
  const double h2 = FaultProcess(s, 5, 2).hazard();
  EXPECT_DOUBLE_EQ(FaultProcess(s, 5, 1).hazard(), h1);
  EXPECT_NE(h1, h2);
  EXPECT_GT(h1, 0.0);
  EXPECT_GT(h2, 0.0);
}

TEST(FaultProcess, FixedReplayGatesEachClassOnItsRate) {
  Spec s;
  s.enabled = true;
  s.process = ProcessKind::Fixed;
  s.fixed_d0 = 2;
  s.fixed_d1 = 1;
  s.fixed_d2 = 3;
  FaultProcess p(s, 42, 1);
  const SimTime w = SimTime::from_seconds(0.1);

  const FaultCounts top = p.sample(kTopRates, w);
  EXPECT_EQ(top.d0, 2);
  EXPECT_EQ(top.d1, 1);
  EXPECT_EQ(top.d2, 3);
  // 1800-MHz regime: only 0D exposed.
  const FaultCounts mid = p.sample(kMidRates, w);
  EXPECT_EQ(mid.d0, 2);
  EXPECT_EQ(mid.d1, 0);
  EXPECT_EQ(mid.d2, 0);
  EXPECT_EQ(p.sample(kSafeRates, w).total(), 0);
  EXPECT_EQ(p.sample(kTopRates, SimTime::zero()).total(), 0);

  // The rate multiplier scales the fixed counts too (rounded), so a
  // campaign's rate axis means the same thing under both processes.
  s.rate_multiplier = 3.0;
  FaultProcess tripled(s, 42, 1);
  const FaultCounts t3 = tripled.sample(kTopRates, w);
  EXPECT_EQ(t3.d0, 6);
  EXPECT_EQ(t3.d1, 3);
  EXPECT_EQ(t3.d2, 9);
  s.rate_multiplier = 0.0;
  FaultProcess zeroed(s, 42, 1);
  EXPECT_EQ(zeroed.sample(kTopRates, w).total(), 0);
}

TEST(FaultResolve, PerModeRulesAndInvariant) {
  const FaultCounts counts{.d0 = 5, .d1 = 3, .d2 = 2};

  const Resolution none = resolve(counts, abft::ChecksumMode::None, true);
  EXPECT_EQ(none.corrected(), 0);
  EXPECT_EQ(none.unrecovered, 10);
  EXPECT_EQ(none.rollbacks, 0);

  const Resolution single =
      resolve(counts, abft::ChecksumMode::SingleSide, true);
  EXPECT_EQ(single.corrected_d0, 5);
  EXPECT_EQ(single.corrected_d1, 0);
  EXPECT_EQ(single.uncorrectable, 5);
  EXPECT_EQ(single.recovered, 5);
  EXPECT_EQ(single.rollbacks, 1);

  const Resolution single_norb =
      resolve(counts, abft::ChecksumMode::SingleSide, false);
  EXPECT_EQ(single_norb.recovered, 0);
  EXPECT_EQ(single_norb.unrecovered, 5);
  EXPECT_EQ(single_norb.rollbacks, 0);

  const Resolution full = resolve(counts, abft::ChecksumMode::Full, true);
  EXPECT_EQ(full.corrected_d0, 5);
  EXPECT_EQ(full.corrected_d1, 3);
  EXPECT_EQ(full.uncorrectable, 2);
  EXPECT_EQ(full.recovered, 2);
  EXPECT_EQ(full.rollbacks, 1);

  for (const Resolution& r : {none, single, single_norb, full}) {
    EXPECT_EQ(r.corrected() + r.recovered + r.unrecovered,
              r.injected.total());
  }

  // A clean window triggers nothing.
  const Resolution clean =
      resolve(FaultCounts{}, abft::ChecksumMode::SingleSide, true);
  EXPECT_EQ(clean.rollbacks, 0);
  EXPECT_EQ(clean.injected.total(), 0);
}

}  // namespace
}  // namespace bsr::faultcamp
