#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "la/blas.hpp"

namespace bsr::la {
namespace {

TEST(Blas1, Axpy) {
  std::vector<double> x = {1, 2, 3};
  std::vector<double> y = {10, 20, 30};
  axpy<double>(3, 2.0, x.data(), 1, y.data(), 1);
  EXPECT_EQ(y, (std::vector<double>{12, 24, 36}));
}

TEST(Blas1, AxpyStrided) {
  std::vector<double> x = {1, 0, 2, 0};
  std::vector<double> y = {5, 5};
  axpy<double>(2, 1.0, x.data(), 2, y.data(), 1);
  EXPECT_EQ(y, (std::vector<double>{6, 7}));
}

TEST(Blas1, Scal) {
  std::vector<double> x = {1, -2, 3};
  scal<double>(3, -2.0, x.data(), 1);
  EXPECT_EQ(x, (std::vector<double>{-2, 4, -6}));
}

TEST(Blas1, Dot) {
  std::vector<double> x = {1, 2, 3};
  std::vector<double> y = {4, 5, 6};
  EXPECT_DOUBLE_EQ((dot<double>(3, x.data(), 1, y.data(), 1)), 32.0);
}

TEST(Blas1, Nrm2MatchesDefinition) {
  std::vector<double> x = {3, 4};
  EXPECT_DOUBLE_EQ((nrm2<double>(2, x.data(), 1)), 5.0);
}

TEST(Blas1, Nrm2HandlesLargeValuesWithoutOverflow) {
  std::vector<double> x = {1e200, 1e200};
  const double n = nrm2<double>(2, x.data(), 1);
  EXPECT_TRUE(std::isfinite(n));
  EXPECT_NEAR(n, std::sqrt(2.0) * 1e200, 1e188);
}

TEST(Blas1, NrmZeroVector) {
  std::vector<double> x = {0, 0, 0};
  EXPECT_DOUBLE_EQ((nrm2<double>(3, x.data(), 1)), 0.0);
}

TEST(Blas1, IamaxFindsFirstMaxAbs) {
  std::vector<double> x = {1, -7, 7, 2};
  EXPECT_EQ((iamax<double>(4, x.data(), 1)), 1);
  EXPECT_EQ((iamax<double>(0, x.data(), 1)), -1);
}

TEST(Blas1, SwapExchanges) {
  std::vector<double> x = {1, 2};
  std::vector<double> y = {3, 4};
  swap<double>(2, x.data(), 1, y.data(), 1);
  EXPECT_EQ(x, (std::vector<double>{3, 4}));
  EXPECT_EQ(y, (std::vector<double>{1, 2}));
}

TEST(Blas1, FloatInstantiationWorks) {
  std::vector<float> x = {1.f, 2.f};
  std::vector<float> y = {1.f, 1.f};
  axpy<float>(2, 0.5f, x.data(), 1, y.data(), 1);
  EXPECT_FLOAT_EQ(y[1], 2.f);
}

}  // namespace
}  // namespace bsr::la
