#include <gtest/gtest.h>

#include <vector>

#include "la/blas.hpp"

namespace bsr::la {
namespace {

Matrix<double> make_matrix(std::initializer_list<std::initializer_list<double>> rows) {
  const idx m = static_cast<idx>(rows.size());
  const idx n = static_cast<idx>(rows.begin()->size());
  Matrix<double> a(m, n);
  idx i = 0;
  for (const auto& row : rows) {
    idx j = 0;
    for (double v : row) a(i, j++) = v;
    ++i;
  }
  return a;
}

TEST(Blas2, GemvNoTrans) {
  const Matrix<double> a = make_matrix({{1, 2}, {3, 4}});
  std::vector<double> x = {1, 1};
  std::vector<double> y = {100, 100};
  gemv<double>(Op::NoTrans, 1.0, a.view(), x.data(), 0.0, y.data());
  EXPECT_EQ(y, (std::vector<double>{3, 7}));
}

TEST(Blas2, GemvTrans) {
  const Matrix<double> a = make_matrix({{1, 2}, {3, 4}});
  std::vector<double> x = {1, 1};
  std::vector<double> y = {0, 0};
  gemv<double>(Op::Trans, 1.0, a.view(), x.data(), 0.0, y.data());
  EXPECT_EQ(y, (std::vector<double>{4, 6}));
}

TEST(Blas2, GemvAlphaBeta) {
  const Matrix<double> a = make_matrix({{2}});
  std::vector<double> x = {3};
  std::vector<double> y = {10};
  gemv<double>(Op::NoTrans, 2.0, a.view(), x.data(), 0.5, y.data());
  EXPECT_DOUBLE_EQ(y[0], 17.0);  // 0.5*10 + 2*2*3
}

TEST(Blas2, GerRankOneUpdate) {
  Matrix<double> a(2, 2);
  std::vector<double> x = {1, 2};
  std::vector<double> y = {3, 4};
  ger<double>(1.0, x.data(), 1, y.data(), 1, a.view());
  EXPECT_DOUBLE_EQ(a(0, 0), 3);
  EXPECT_DOUBLE_EQ(a(1, 0), 6);
  EXPECT_DOUBLE_EQ(a(0, 1), 4);
  EXPECT_DOUBLE_EQ(a(1, 1), 8);
}

TEST(Blas2, TrsvLowerNoTrans) {
  const Matrix<double> a = make_matrix({{2, 0}, {1, 4}});
  std::vector<double> x = {2, 9};  // solves L z = x -> z = {1, 2}
  trsv<double>(Uplo::Lower, Op::NoTrans, Diag::NonUnit, a.view(), x.data());
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
}

TEST(Blas2, TrsvUpperNoTrans) {
  const Matrix<double> a = make_matrix({{2, 1}, {0, 4}});
  std::vector<double> x = {4, 8};  // z = {1.5, 2}
  trsv<double>(Uplo::Upper, Op::NoTrans, Diag::NonUnit, a.view(), x.data());
  EXPECT_DOUBLE_EQ(x[1], 2.0);
  EXPECT_DOUBLE_EQ(x[0], 1.0);
}

TEST(Blas2, TrsvUnitDiagIgnoresDiagonal) {
  const Matrix<double> a = make_matrix({{999, 0}, {1, 999}});
  std::vector<double> x = {1, 3};
  trsv<double>(Uplo::Lower, Op::NoTrans, Diag::Unit, a.view(), x.data());
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
}

TEST(Blas2, TrsvTransposeConsistentWithGemv) {
  const Matrix<double> a = make_matrix({{3, 0, 0}, {1, 2, 0}, {4, 5, 6}});
  std::vector<double> z = {1, 2, 3};
  // b = L^T z, then solving L^T x = b must return z.
  std::vector<double> b(3, 0.0);
  gemv<double>(Op::Trans, 1.0, a.view(), z.data(), 0.0, b.data());
  // zero out strict upper contributions not in L: gemv used full a; rebuild b
  // from the lower triangle explicitly instead.
  b = {3 * 1 + 1 * 2 + 4 * 3, 2 * 2 + 5 * 3, 6 * 3.0};
  trsv<double>(Uplo::Lower, Op::Trans, Diag::NonUnit, a.view(), b.data());
  EXPECT_NEAR(b[0], 1.0, 1e-12);
  EXPECT_NEAR(b[1], 2.0, 1e-12);
  EXPECT_NEAR(b[2], 3.0, 1e-12);
}

}  // namespace
}  // namespace bsr::la
