#include "la/solve.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "la/lapack.hpp"
#include "la/verify.hpp"

namespace bsr::la {
namespace {

/// max |A x - b| over all right-hand sides.
double solve_residual(ConstMatrixView<double> a, ConstMatrixView<double> x,
                      ConstMatrixView<double> b) {
  Matrix<double> r = to_matrix(b);
  gemm(Op::NoTrans, Op::NoTrans, -1.0, a, x, 1.0, r.view());
  return norm_max(r.view().as_const());
}

TEST(Potrs, SolvesSpdSystem) {
  Rng rng(1);
  const idx n = 32;
  Matrix<double> a(n, n);
  fill_spd(a.view(), rng);
  Matrix<double> b(n, 3);
  fill_random(b.view(), rng);
  Matrix<double> l = a;
  ASSERT_EQ(potrf(l.view(), 8), 0);
  Matrix<double> x = b;
  potrs(l.view().as_const(), x.view());
  EXPECT_LT(solve_residual(a.view().as_const(), x.view().as_const(), b.view().as_const()), 1e-9);
}

TEST(Getrs, SolvesGeneralSystem) {
  Rng rng(2);
  const idx n = 40;
  Matrix<double> a(n, n);
  fill_random(a.view(), rng);
  Matrix<double> b(n, 2);
  fill_random(b.view(), rng);
  Matrix<double> lu = a;
  std::vector<idx> ipiv;
  ASSERT_EQ(getrf(lu.view(), 8, ipiv), 0);
  Matrix<double> x = b;
  getrs(lu.view().as_const(), ipiv, x.view());
  EXPECT_LT(solve_residual(a.view().as_const(), x.view().as_const(), b.view().as_const()), 1e-8);
}

TEST(Getrs, PivotingHandledOnIllOrderedMatrix) {
  // Leading tiny pivot forces interchanges; solve must still be accurate.
  Matrix<double> a(2, 2);
  a(0, 0) = 1e-16;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 2.0;
  Matrix<double> b(2, 1);
  b(0, 0) = 3.0;
  b(1, 0) = 4.0;
  Matrix<double> lu = a;
  std::vector<idx> ipiv;
  ASSERT_EQ(getrf(lu.view(), 1, ipiv), 0);
  Matrix<double> x = b;
  getrs(lu.view().as_const(), ipiv, x.view());
  EXPECT_LT(solve_residual(a.view().as_const(), x.view().as_const(), b.view().as_const()), 1e-12);
}

TEST(ApplyQt, QtTimesQIsIdentityAction) {
  Rng rng(3);
  const idx n = 24;
  Matrix<double> a(n, n);
  fill_random(a.view(), rng);
  std::vector<double> tau;
  Matrix<double> qr = a;
  ASSERT_EQ(geqrf(qr.view(), 8, tau), 0);
  // y = Q^T b, then Q y must give back b: verify via explicit Q.
  Matrix<double> b(n, 1);
  fill_random(b.view(), rng);
  Matrix<double> y = b;
  apply_qt(qr.view().as_const(), tau, y.view());
  const Matrix<double> q = form_q(qr.view().as_const(), tau);
  Matrix<double> qy(n, 1);
  gemm(Op::NoTrans, Op::NoTrans, 1.0, q.view(), y.view().as_const(), 0.0,
       qy.view());
  for (idx i = 0; i < n; ++i) EXPECT_NEAR(qy(i, 0), b(i, 0), 1e-10);
}

TEST(Geqrs, SolvesSquareSystem) {
  Rng rng(4);
  const idx n = 30;
  Matrix<double> a(n, n);
  fill_random(a.view(), rng);
  Matrix<double> b(n, 2);
  fill_random(b.view(), rng);
  Matrix<double> qr = a;
  std::vector<double> tau;
  ASSERT_EQ(geqrf(qr.view(), 8, tau), 0);
  Matrix<double> x = b;
  geqrs(qr.view().as_const(), tau, x.view());
  EXPECT_LT(solve_residual(a.view().as_const(), x.block(0, 0, n, 2).as_const(),
                           b.view().as_const()),
            1e-9);
}

TEST(Geqrs, LeastSquaresRecoversPlantedSolution) {
  // Overdetermined consistent system: b = A x_true must recover x_true.
  Rng rng(5);
  const idx m = 50;
  const idx n = 10;
  Matrix<double> a(m, n);
  fill_random(a.view(), rng);
  Matrix<double> x_true(n, 1);
  fill_random(x_true.view(), rng);
  Matrix<double> b(m, 1);
  gemm(Op::NoTrans, Op::NoTrans, 1.0, a.view().as_const(),
       x_true.view().as_const(), 0.0, b.view());
  Matrix<double> qr = a;
  std::vector<double> tau;
  ASSERT_EQ(geqrf(qr.view(), 4, tau), 0);
  Matrix<double> x = b;
  geqrs(qr.view().as_const(), tau, x.view());
  for (idx i = 0; i < n; ++i) EXPECT_NEAR(x(i, 0), x_true(i, 0), 1e-9);
}

class SolveRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(SolveRoundTrip, AllThreeFactorizationsAgree) {
  // The same SPD system solved through Cholesky, LU, and QR must agree.
  const int n = GetParam();
  Rng rng(100 + n);
  Matrix<double> a(n, n);
  fill_spd(a.view(), rng);
  Matrix<double> b(n, 1);
  fill_random(b.view(), rng);

  Matrix<double> xc = b;
  {
    Matrix<double> l = a;
    ASSERT_EQ(potrf(l.view(), 8), 0);
    potrs(l.view().as_const(), xc.view());
  }
  Matrix<double> xl = b;
  {
    Matrix<double> lu = a;
    std::vector<idx> ipiv;
    ASSERT_EQ(getrf(lu.view(), 8, ipiv), 0);
    getrs(lu.view().as_const(), ipiv, xl.view());
  }
  Matrix<double> xq = b;
  {
    Matrix<double> qr = a;
    std::vector<double> tau;
    ASSERT_EQ(geqrf(qr.view(), 8, tau), 0);
    geqrs(qr.view().as_const(), tau, xq.view());
  }
  for (idx i = 0; i < n; ++i) {
    EXPECT_NEAR(xc(i, 0), xl(i, 0), 1e-8);
    EXPECT_NEAR(xc(i, 0), xq(i, 0), 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SolveRoundTrip,
                         ::testing::Values(8, 16, 33, 64));

}  // namespace
}  // namespace bsr::la
