#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "la/blas.hpp"

namespace bsr::la {
namespace {

/// Naive reference gemm for validation.
Matrix<double> ref_gemm(Op opa, Op opb, double alpha, const Matrix<double>& a,
                        const Matrix<double>& b, double beta,
                        const Matrix<double>& c0) {
  const idx m = c0.rows();
  const idx n = c0.cols();
  const idx k = opa == Op::NoTrans ? a.cols() : a.rows();
  Matrix<double> c = c0;
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i < m; ++i) {
      double s = 0;
      for (idx p = 0; p < k; ++p) {
        const double av = opa == Op::NoTrans ? a(i, p) : a(p, i);
        const double bv = opb == Op::NoTrans ? b(p, j) : b(j, p);
        s += av * bv;
      }
      c(i, j) = beta * c(i, j) + alpha * s;
    }
  }
  return c;
}

class GemmShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int, Op, Op>> {};

TEST_P(GemmShapes, MatchesReference) {
  const auto [m, n, k, opa, opb] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 10007 + n * 101 + k));
  Matrix<double> a(opa == Op::NoTrans ? m : k, opa == Op::NoTrans ? k : m);
  Matrix<double> b(opb == Op::NoTrans ? k : n, opb == Op::NoTrans ? n : k);
  Matrix<double> c(m, n);
  fill_random(a.view(), rng);
  fill_random(b.view(), rng);
  fill_random(c.view(), rng);
  const Matrix<double> expected = ref_gemm(opa, opb, 1.5, a, b, -0.5, c);
  gemm<double>(opa, opb, 1.5, a.view(), b.view(), -0.5, c.view());
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i < m; ++i) {
      ASSERT_NEAR(c(i, j), expected(i, j), 1e-10 * (k + 1))
          << "at (" << i << "," << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GemmShapes,
    ::testing::Values(
        std::make_tuple(1, 1, 1, Op::NoTrans, Op::NoTrans),
        std::make_tuple(5, 3, 4, Op::NoTrans, Op::NoTrans),
        std::make_tuple(5, 3, 4, Op::Trans, Op::NoTrans),
        std::make_tuple(5, 3, 4, Op::NoTrans, Op::Trans),
        std::make_tuple(5, 3, 4, Op::Trans, Op::Trans),
        std::make_tuple(64, 64, 64, Op::NoTrans, Op::NoTrans),
        std::make_tuple(33, 17, 29, Op::Trans, Op::Trans),
        std::make_tuple(128, 96, 61, Op::NoTrans, Op::Trans),
        std::make_tuple(200, 150, 100, Op::NoTrans, Op::NoTrans)));

TEST(Gemm, BetaZeroOverwritesGarbage) {
  Matrix<double> a(2, 2);
  Matrix<double> b(2, 2);
  fill_identity(a.view());
  fill_identity(b.view());
  Matrix<double> c(2, 2);
  c.fill(std::numeric_limits<double>::quiet_NaN());
  gemm<double>(Op::NoTrans, Op::NoTrans, 1.0, a.view(), b.view(), 0.0, c.view());
  EXPECT_DOUBLE_EQ(c(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 0.0);
}

TEST(Gemm, LargeThreadedMatchesSmallChunks) {
  // Large enough to cross the threading threshold.
  const idx n = 160;
  Rng rng(4);
  Matrix<double> a(n, n);
  Matrix<double> b(n, n);
  Matrix<double> c(n, n);
  fill_random(a.view(), rng);
  fill_random(b.view(), rng);
  const Matrix<double> expected = ref_gemm(Op::NoTrans, Op::NoTrans, 1.0, a, b, 0.0, c);
  gemm<double>(Op::NoTrans, Op::NoTrans, 1.0, a.view(), b.view(), 0.0, c.view());
  double max_err = 0;
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i < n; ++i) {
      max_err = std::max(max_err, std::abs(c(i, j) - expected(i, j)));
    }
  }
  EXPECT_LT(max_err, 1e-9);
}

TEST(Trsm, LeftLowerNoTransUnit) {
  // L (unit lower) X = B  =>  X = L^{-1} B; verify by multiplying back.
  Rng rng(8);
  const idx n = 24;
  const idx nrhs = 7;
  Matrix<double> l(n, n);
  fill_random(l.view(), rng);
  Matrix<double> b(n, nrhs);
  fill_random(b.view(), rng);
  Matrix<double> x = b;
  trsm<double>(Side::Left, Uplo::Lower, Op::NoTrans, Diag::Unit, 1.0, l.view(),
               x.view());
  // Recompute L*X using only the unit lower triangle.
  for (idx j = 0; j < nrhs; ++j) {
    for (idx i = n - 1; i >= 0; --i) {
      double s = x(i, j);
      for (idx p = 0; p < i; ++p) s += l(i, p) * x(p, j);
      EXPECT_NEAR(s, b(i, j), 1e-9);
    }
  }
}

TEST(Trsm, RightLowerTransNonUnit) {
  // X * L^T = B; verify X L^T == B.
  Rng rng(9);
  const idx n = 16;
  const idx m = 10;
  Matrix<double> l(n, n);
  fill_random(l.view(), rng);
  for (idx i = 0; i < n; ++i) l(i, i) += 4.0;  // well-conditioned
  Matrix<double> b(m, n);
  fill_random(b.view(), rng);
  Matrix<double> x = b;
  trsm<double>(Side::Right, Uplo::Lower, Op::Trans, Diag::NonUnit, 1.0, l.view(),
               x.view());
  for (idx i = 0; i < m; ++i) {
    for (idx j = 0; j < n; ++j) {
      double s = 0;
      // (X L^T)(i,j) = sum_{p<=j} X(i,p) * L(j,p).
      for (idx p = 0; p <= j; ++p) s += x(i, p) * l(j, p);
      EXPECT_NEAR(s, b(i, j), 1e-9);
    }
  }
}

TEST(Trsm, AlphaScalesRhs) {
  Matrix<double> l(2, 2);
  fill_identity(l.view());
  Matrix<double> b(2, 2);
  b.fill(3.0);
  trsm<double>(Side::Left, Uplo::Lower, Op::NoTrans, Diag::NonUnit, 2.0,
               l.view(), b.view());
  EXPECT_DOUBLE_EQ(b(0, 0), 6.0);
}

TEST(Trsm, RightUpperNoTrans) {
  Rng rng(10);
  const idx n = 12;
  const idx m = 5;
  Matrix<double> u(n, n);
  fill_random(u.view(), rng);
  for (idx i = 0; i < n; ++i) u(i, i) += 4.0;
  Matrix<double> b(m, n);
  fill_random(b.view(), rng);
  Matrix<double> x = b;
  trsm<double>(Side::Right, Uplo::Upper, Op::NoTrans, Diag::NonUnit, 1.0,
               u.view(), x.view());
  for (idx i = 0; i < m; ++i) {
    for (idx j = 0; j < n; ++j) {
      double s = 0;
      for (idx p = 0; p <= j; ++p) s += x(i, p) * u(p, j);
      EXPECT_NEAR(s, b(i, j), 1e-9);
    }
  }
}

TEST(Trsm, LeftUpperTrans) {
  Rng rng(11);
  const idx n = 12;
  Matrix<double> u(n, n);
  fill_random(u.view(), rng);
  for (idx i = 0; i < n; ++i) u(i, i) += 4.0;
  Matrix<double> b(n, 3);
  fill_random(b.view(), rng);
  Matrix<double> x = b;
  trsm<double>(Side::Left, Uplo::Upper, Op::Trans, Diag::NonUnit, 1.0, u.view(),
               x.view());
  // U^T X == B
  for (idx j = 0; j < 3; ++j) {
    for (idx i = 0; i < n; ++i) {
      double s = 0;
      for (idx p = 0; p <= i; ++p) s += u(p, i) * x(p, j);
      EXPECT_NEAR(s, b(i, j), 1e-9);
    }
  }
}

TEST(Syrk, LowerNoTransMatchesGemm) {
  Rng rng(12);
  const idx n = 20;
  const idx k = 9;
  Matrix<double> a(n, k);
  fill_random(a.view(), rng);
  Matrix<double> c(n, n);
  fill_random(c.view(), rng);
  Matrix<double> expected = c;
  Matrix<double> full(n, n);
  gemm<double>(Op::NoTrans, Op::Trans, 2.0, a.view(), a.view(), 0.0, full.view());
  for (idx j = 0; j < n; ++j) {
    for (idx i = j; i < n; ++i) expected(i, j) = 0.5 * expected(i, j) + full(i, j);
  }
  syrk<double>(Uplo::Lower, Op::NoTrans, 2.0, a.view(), 0.5, c.view());
  for (idx j = 0; j < n; ++j) {
    for (idx i = j; i < n; ++i) ASSERT_NEAR(c(i, j), expected(i, j), 1e-10);
    for (idx i = 0; i < j; ++i) ASSERT_EQ(c(i, j), expected(i, j));  // untouched
  }
}

TEST(Syrk, UpperTrans) {
  Rng rng(13);
  const idx n = 10;
  const idx k = 6;
  Matrix<double> a(k, n);
  fill_random(a.view(), rng);
  Matrix<double> c(n, n);
  syrk<double>(Uplo::Upper, Op::Trans, 1.0, a.view(), 0.0, c.view());
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i <= j; ++i) {
      double s = 0;
      for (idx p = 0; p < k; ++p) s += a(p, i) * a(p, j);
      ASSERT_NEAR(c(i, j), s, 1e-10);
    }
  }
}

}  // namespace
}  // namespace bsr::la
