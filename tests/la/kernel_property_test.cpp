// Satellite: property-based equivalence of the blocked factorization drivers
// against their unblocked references across seeded random shapes, including
// the ragged edges the tiling logic has to get right (n not divisible by b,
// b = 1, b = n, b > n, n = 1). The blocked and unblocked algorithms perform
// different floating-point operation orders, so factors are compared with a
// rounding-sized tolerance (the factorizations themselves are unique given
// the pivot choices); residuals against the original matrix are checked on
// both sides so a "match" can never be two equally wrong answers.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "la/lapack.hpp"
#include "la/verify.hpp"

namespace bsr::la {
namespace {

// (n, b) shape grid shared by all three factorizations. Covers b = 1 (pure
// unblocked path through the blocked driver), b = n and b > n (single panel),
// n = 1, ragged tails of every size relative to b, and a few dense interior
// shapes.
const std::vector<std::pair<idx, idx>>& shapes() {
  static const std::vector<std::pair<idx, idx>> s = {
      {1, 1},  {1, 4},   {5, 1},   {7, 7},   {8, 3},   {16, 16},
      {17, 4}, {33, 8},  {47, 16}, {63, 64}, {64, 64}, {65, 16},
      {96, 32}, {100, 48},
  };
  return s;
}

std::uint64_t shape_seed(idx n, idx b, std::uint64_t trial) {
  return static_cast<std::uint64_t>(n) * 1000003u +
         static_cast<std::uint64_t>(b) * 101u + trial;
}

// Rounding-difference budget for comparing two correct factorizations of the
// same matrix: scaled by the largest magnitude in the factor so it tracks the
// problem's natural scale.
double factor_tolerance(ConstMatrixView<double> f) {
  double amax = 1.0;
  for (idx j = 0; j < f.cols(); ++j) {
    for (idx i = 0; i < f.rows(); ++i) {
      amax = std::max(amax, std::abs(f(i, j)));
    }
  }
  return 1e-9 * amax;
}

void expect_factors_close(ConstMatrixView<double> blocked,
                          ConstMatrixView<double> unblocked,
                          bool upper_only = false) {
  ASSERT_EQ(blocked.rows(), unblocked.rows());
  ASSERT_EQ(blocked.cols(), unblocked.cols());
  const double tol = factor_tolerance(unblocked);
  for (idx j = 0; j < blocked.cols(); ++j) {
    const idx i_end = upper_only ? std::min(j + 1, blocked.rows()) : blocked.rows();
    for (idx i = 0; i < i_end; ++i) {
      EXPECT_NEAR(blocked(i, j), unblocked(i, j), tol)
          << "at (" << i << ", " << j << ")";
    }
  }
}

TEST(KernelProperty, BlockedPotrfMatchesPotf2AcrossShapes) {
  for (const auto& [n, b] : shapes()) {
    for (std::uint64_t trial = 0; trial < 2; ++trial) {
      Rng rng(shape_seed(n, b, trial));
      Matrix<double> a0(n, n);
      fill_spd(a0.view(), rng);

      Matrix<double> blocked = a0;
      Matrix<double> reference = a0;
      ASSERT_EQ(potrf(blocked.view(), b), 0) << "n=" << n << " b=" << b;
      ASSERT_EQ(potf2(reference.view()), 0) << "n=" << n;

      // Both must actually factor a0, not merely agree with each other.
      EXPECT_LT(cholesky_residual(a0.view().as_const(), blocked.view().as_const()), 1e-11)
          << "n=" << n << " b=" << b;
      EXPECT_LT(cholesky_residual(a0.view().as_const(), reference.view().as_const()),
                1e-11);
      // The Cholesky factor is unique, so elementwise agreement is exact up
      // to rounding-order differences.
      expect_factors_close(blocked.view().as_const(),
                           reference.view().as_const());
    }
  }
}

TEST(KernelProperty, BlockedGetrfMatchesGetf2AcrossShapes) {
  for (const auto& [n, b] : shapes()) {
    for (std::uint64_t trial = 0; trial < 2; ++trial) {
      Rng rng(shape_seed(n, b, trial) ^ 0x9e3779b97f4a7c15ULL);
      Matrix<double> a0(n, n);
      fill_random(a0.view(), rng);

      Matrix<double> blocked = a0;
      Matrix<double> reference = a0;
      std::vector<idx> ipiv_blocked;
      std::vector<idx> ipiv_reference;
      ASSERT_EQ(getrf(blocked.view(), b, ipiv_blocked), 0)
          << "n=" << n << " b=" << b;
      ASSERT_EQ(getf2(reference.view(), ipiv_reference), 0) << "n=" << n;

      EXPECT_LT(
          lu_residual(a0.view().as_const(), blocked.view().as_const(), ipiv_blocked),
          1e-11)
          << "n=" << n << " b=" << b;
      EXPECT_LT(
          lu_residual(a0.view().as_const(), reference.view().as_const(), ipiv_reference),
          1e-11);
      // Partial pivoting on a continuous random matrix has no ties, so both
      // algorithms select identical pivot rows; given equal pivots the LU
      // factors are unique up to rounding.
      ASSERT_EQ(ipiv_blocked, ipiv_reference) << "n=" << n << " b=" << b;
      expect_factors_close(blocked.view().as_const(),
                           reference.view().as_const());
    }
  }
}

TEST(KernelProperty, BlockedGeqrfMatchesGeqr2AcrossShapes) {
  for (const auto& [n, b] : shapes()) {
    for (std::uint64_t trial = 0; trial < 2; ++trial) {
      Rng rng(shape_seed(n, b, trial) ^ 0xbf58476d1ce4e5b9ULL);
      Matrix<double> a0(n, n);
      fill_random(a0.view(), rng);

      Matrix<double> blocked = a0;
      Matrix<double> reference = a0;
      std::vector<double> tau_blocked;
      std::vector<double> tau_reference;
      ASSERT_EQ(geqrf(blocked.view(), b, tau_blocked), 0)
          << "n=" << n << " b=" << b;
      ASSERT_EQ(geqr2(reference.view(), tau_reference), 0) << "n=" << n;

      EXPECT_LT(
          qr_residual(a0.view().as_const(), blocked.view().as_const(), tau_blocked),
          1e-11)
          << "n=" << n << " b=" << b;
      EXPECT_LT(
          qr_residual(a0.view().as_const(), reference.view().as_const(), tau_reference),
          1e-11);
      // Householder QR is deterministic: same reflectors, same R, same tau —
      // up to the blocked driver's larfb-vs-larf rounding differences.
      ASSERT_EQ(tau_blocked.size(), tau_reference.size());
      const double ttol = factor_tolerance(reference.view().as_const());
      for (std::size_t k = 0; k < tau_blocked.size(); ++k) {
        EXPECT_NEAR(tau_blocked[k], tau_reference[k], ttol) << "tau " << k;
      }
      expect_factors_close(blocked.view().as_const(),
                           reference.view().as_const());
    }
  }
}

// Rectangular panels: getrf and geqrf accept m x n with m != n; the blocked
// tiling must handle tall and wide shapes with ragged tails.
TEST(KernelProperty, RectangularGeqrfMatchesReference) {
  const std::vector<std::pair<idx, idx>> rects = {
      {13, 5}, {40, 8}, {64, 17}, {33, 32}};
  for (const auto& [m, n] : rects) {
    Rng rng(shape_seed(m, n, 7));
    Matrix<double> a0(m, n);
    fill_random(a0.view(), rng);

    Matrix<double> blocked = a0;
    Matrix<double> reference = a0;
    std::vector<double> tau_blocked;
    std::vector<double> tau_reference;
    ASSERT_EQ(geqrf(blocked.view(), 8, tau_blocked), 0)
        << "m=" << m << " n=" << n;
    ASSERT_EQ(geqr2(reference.view(), tau_reference), 0);

    EXPECT_LT(qr_residual(a0.view().as_const(), blocked.view().as_const(), tau_blocked),
              1e-11);
    expect_factors_close(blocked.view().as_const(),
                         reference.view().as_const());
  }
}

}  // namespace
}  // namespace bsr::la
