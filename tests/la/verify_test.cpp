#include "la/verify.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "la/lapack.hpp"

namespace bsr::la {
namespace {

TEST(Norms, FrobeniusKnownValue) {
  Matrix<double> a(2, 2);
  a(0, 0) = 3;
  a(1, 1) = 4;
  EXPECT_DOUBLE_EQ(norm_fro(a.view().as_const()), 5.0);
}

TEST(Norms, MaxAbs) {
  Matrix<double> a(2, 2);
  a(0, 1) = -7;
  a(1, 0) = 3;
  EXPECT_DOUBLE_EQ(norm_max(a.view().as_const()), 7.0);
}

TEST(Residuals, CleanFactorizationsAreTiny) {
  Rng rng(21);
  Matrix<double> spd(24, 24);
  fill_spd(spd.view(), rng);
  Matrix<double> chol = spd;
  potrf(chol.view(), 8);
  EXPECT_LT(cholesky_residual(spd.view().as_const(), chol.view().as_const()), 1e-12);
}

TEST(Residuals, CorruptionIsVisible) {
  Rng rng(22);
  Matrix<double> a(24, 24);
  fill_random(a.view(), rng);
  const Matrix<double> a0 = a;
  std::vector<idx> ipiv;
  getrf(a.view(), 8, ipiv);
  EXPECT_LT(lu_residual(a0.view(), a.view().as_const(), ipiv), 1e-12);
  // Corrupt one factor entry: residual must blow up by many orders.
  a(20, 20) += 1000.0;
  EXPECT_GT(lu_residual(a0.view(), a.view().as_const(), ipiv), 1e-2);
}

TEST(Residuals, QrOrthogonalityDetectsCorruption) {
  Rng rng(23);
  Matrix<double> a(16, 16);
  fill_random(a.view(), rng);
  std::vector<double> tau;
  geqrf(a.view(), 4, tau);
  Matrix<double> q = form_q(a.view().as_const(), tau);
  EXPECT_LT(orthogonality_error(q.view().as_const()), 1e-12);
  q(3, 3) += 0.5;
  EXPECT_GT(orthogonality_error(q.view().as_const()), 0.1);
}

TEST(Residuals, ZeroMatrixDenominatorSafe) {
  Matrix<double> z(4, 4);
  Matrix<double> f(4, 4);
  // original all-zero: residual must not divide by zero.
  const double r = cholesky_residual(z.view().as_const(), f.view().as_const());
  EXPECT_GE(r, 0.0);
}

}  // namespace
}  // namespace bsr::la
