#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "la/lapack.hpp"
#include "la/verify.hpp"

namespace bsr::la {
namespace {

TEST(Potf2, FactorsSmallSpd) {
  Rng rng(1);
  Matrix<double> a(8, 8);
  fill_spd(a.view(), rng);
  const Matrix<double> a0 = a;
  EXPECT_EQ(potf2(a.view()), 0);
  EXPECT_LT(cholesky_residual(a0.view(), a.view().as_const()), 1e-12);
}

TEST(Potf2, DetectsNonPositiveDefinite) {
  Matrix<double> a(2, 2);
  a(0, 0) = 1;
  a(1, 1) = -1;  // not PD
  EXPECT_GT(potf2(a.view()), 0);
}

class PotrfSizes : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(PotrfSizes, BlockedMatchesResidual) {
  const auto [n, nb] = GetParam();
  Rng rng(n * 31 + nb);
  Matrix<double> a(n, n);
  fill_spd(a.view(), rng);
  const Matrix<double> a0 = a;
  EXPECT_EQ(potrf(a.view(), nb), 0);
  EXPECT_LT(cholesky_residual(a0.view(), a.view().as_const()), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PotrfSizes,
                         ::testing::Values(std::pair{16, 4}, std::pair{32, 8},
                                           std::pair{50, 16}, std::pair{64, 64},
                                           std::pair{100, 32},
                                           std::pair{128, 17}));

TEST(Getf2, FactorsAndPivots) {
  Rng rng(2);
  Matrix<double> a(12, 12);
  fill_random(a.view(), rng);
  const Matrix<double> a0 = a;
  std::vector<idx> ipiv;
  EXPECT_EQ(getf2(a.view(), ipiv), 0);
  EXPECT_EQ(ipiv.size(), 12u);
  EXPECT_LT(lu_residual(a0.view(), a.view().as_const(), ipiv), 1e-12);
}

TEST(Getf2, TallPanel) {
  Rng rng(3);
  Matrix<double> a(40, 8);
  fill_random(a.view(), rng);
  const Matrix<double> a0 = a;
  std::vector<idx> ipiv;
  EXPECT_EQ(getf2(a.view(), ipiv), 0);
  EXPECT_EQ(ipiv.size(), 8u);
  EXPECT_LT(lu_residual(a0.view(), a.view().as_const(), ipiv), 1e-12);
}

TEST(Getf2, ReportsSingular) {
  Matrix<double> a(3, 3);  // all zeros
  std::vector<idx> ipiv;
  EXPECT_GT(getf2(a.view(), ipiv), 0);
}

class GetrfSizes : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(GetrfSizes, BlockedResidualSmall) {
  const auto [n, nb] = GetParam();
  Rng rng(n * 7 + nb);
  Matrix<double> a(n, n);
  fill_random(a.view(), rng);
  const Matrix<double> a0 = a;
  std::vector<idx> ipiv;
  EXPECT_EQ(getrf(a.view(), nb, ipiv), 0);
  EXPECT_LT(lu_residual(a0.view(), a.view().as_const(), ipiv), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Sweep, GetrfSizes,
                         ::testing::Values(std::pair{16, 4}, std::pair{32, 8},
                                           std::pair{48, 12}, std::pair{64, 64},
                                           std::pair{96, 32},
                                           std::pair{120, 13}));

TEST(Getrf, PivotingBeatsNaiveOnHardMatrix) {
  // A matrix needing row interchanges: tiny leading pivot.
  Matrix<double> a(2, 2);
  a(0, 0) = 1e-18;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 1.0;
  const Matrix<double> a0 = a;
  std::vector<idx> ipiv;
  EXPECT_EQ(getrf(a.view(), 1, ipiv), 0);
  EXPECT_EQ(ipiv[0], 1);  // swapped
  EXPECT_LT(lu_residual(a0.view(), a.view().as_const(), ipiv), 1e-14);
}

TEST(Larfg, ZeroTailGivesZeroTau) {
  double alpha = 3.0;
  double tau = -1.0;
  std::vector<double> x = {0.0, 0.0};
  larfg<double>(3, alpha, x.data(), 1, tau);
  EXPECT_DOUBLE_EQ(tau, 0.0);
  EXPECT_DOUBLE_EQ(alpha, 3.0);
}

TEST(Geqr2, SmallQrResidual) {
  Rng rng(4);
  Matrix<double> a(10, 6);
  fill_random(a.view(), rng);
  const Matrix<double> a0 = a;
  std::vector<double> tau;
  EXPECT_EQ(geqr2(a.view(), tau), 0);
  EXPECT_EQ(tau.size(), 6u);
  EXPECT_LT(qr_residual(a0.view(), a.view().as_const(), tau), 1e-12);
}

TEST(Geqr2, QIsOrthogonal) {
  Rng rng(5);
  Matrix<double> a(12, 12);
  fill_random(a.view(), rng);
  std::vector<double> tau;
  geqr2(a.view(), tau);
  const Matrix<double> q = form_q(a.view().as_const(), tau);
  EXPECT_LT(orthogonality_error(q.view().as_const()), 1e-12);
}

class GeqrfSizes : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(GeqrfSizes, BlockedResidualSmall) {
  const auto [n, nb] = GetParam();
  Rng rng(n * 13 + nb);
  Matrix<double> a(n, n);
  fill_random(a.view(), rng);
  const Matrix<double> a0 = a;
  std::vector<double> tau;
  EXPECT_EQ(geqrf(a.view(), nb, tau), 0);
  EXPECT_LT(qr_residual(a0.view(), a.view().as_const(), tau), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Sweep, GeqrfSizes,
                         ::testing::Values(std::pair{16, 4}, std::pair{32, 8},
                                           std::pair{48, 16}, std::pair{64, 64},
                                           std::pair{80, 20},
                                           std::pair{72, 11}));

TEST(Geqrf, TallMatrix) {
  Rng rng(6);
  Matrix<double> a(60, 20);
  fill_random(a.view(), rng);
  const Matrix<double> a0 = a;
  std::vector<double> tau;
  EXPECT_EQ(geqrf(a.view(), 8, tau), 0);
  EXPECT_LT(qr_residual(a0.view(), a.view().as_const(), tau), 1e-12);
}

TEST(BlockedVsUnblocked, LuSameResultModuloRounding) {
  Rng rng(7);
  Matrix<double> a(40, 40);
  fill_random(a.view(), rng);
  Matrix<double> b = a;
  std::vector<idx> p1;
  std::vector<idx> p2;
  getf2(a.view(), p1);
  getrf(b.view(), 8, p2);
  // Pivot sequences must agree (same partial-pivoting rule).
  EXPECT_EQ(p1, p2);
  double max_diff = 0;
  for (idx j = 0; j < 40; ++j) {
    for (idx i = 0; i < 40; ++i) {
      max_diff = std::max(max_diff, std::abs(a(i, j) - b(i, j)));
    }
  }
  EXPECT_LT(max_diff, 1e-10);
}

}  // namespace
}  // namespace bsr::la
