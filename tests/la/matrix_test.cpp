#include "la/matrix.hpp"

#include <gtest/gtest.h>

namespace bsr::la {
namespace {

TEST(Matrix, ColumnMajorLayout) {
  Matrix<double> a(3, 2);
  a(0, 0) = 1;
  a(1, 0) = 2;
  a(2, 0) = 3;
  a(0, 1) = 4;
  EXPECT_EQ(a.data()[0], 1);
  EXPECT_EQ(a.data()[1], 2);
  EXPECT_EQ(a.data()[2], 3);
  EXPECT_EQ(a.data()[3], 4);
}

TEST(Matrix, BlockViewAliasesParent) {
  Matrix<double> a(4, 4);
  auto blk = a.block(1, 1, 2, 2);
  blk(0, 0) = 9.0;
  EXPECT_EQ(a(1, 1), 9.0);
  EXPECT_EQ(blk.ld(), 4);
}

TEST(Matrix, NestedBlockViews) {
  Matrix<double> a(6, 6);
  auto outer = a.block(2, 2, 4, 4);
  auto inner = outer.block(1, 1, 2, 2);
  inner(0, 0) = 5.0;
  EXPECT_EQ(a(3, 3), 5.0);
}

TEST(Matrix, FillAndFillIdentity) {
  Matrix<double> a(3, 3);
  a.fill(7.0);
  EXPECT_EQ(a(2, 1), 7.0);
  fill_identity(a.view());
  EXPECT_EQ(a(1, 1), 1.0);
  EXPECT_EQ(a(1, 2), 0.0);
}

TEST(Matrix, ToMatrixCopiesStridedView) {
  Matrix<double> a(4, 4);
  for (idx j = 0; j < 4; ++j) {
    for (idx i = 0; i < 4; ++i) a(i, j) = static_cast<double>(i * 10 + j);
  }
  Matrix<double> sub = to_matrix(a.block(1, 2, 2, 2).as_const());
  EXPECT_EQ(sub.rows(), 2);
  EXPECT_EQ(sub(0, 0), a(1, 2));
  EXPECT_EQ(sub(1, 1), a(2, 3));
  sub(0, 0) = -1;
  EXPECT_NE(a(1, 2), -1);  // deep copy
}

TEST(Matrix, CopyIntoTransfersValues) {
  Matrix<double> src(2, 2);
  src(0, 0) = 1;
  src(1, 1) = 4;
  Matrix<double> dst(4, 4);
  copy_into(src.view().as_const(), dst.block(1, 1, 2, 2));
  EXPECT_EQ(dst(1, 1), 1);
  EXPECT_EQ(dst(2, 2), 4);
}

TEST(Matrix, FillRandomIsDeterministicPerSeed) {
  Matrix<double> a(5, 5);
  Matrix<double> b(5, 5);
  Rng r1(99);
  Rng r2(99);
  fill_random(a.view(), r1);
  fill_random(b.view(), r2);
  for (idx j = 0; j < 5; ++j) {
    for (idx i = 0; i < 5; ++i) EXPECT_EQ(a(i, j), b(i, j));
  }
}

TEST(Matrix, FillSpdIsSymmetricWithHeavyDiagonal) {
  Matrix<double> a(8, 8);
  Rng rng(5);
  fill_spd(a.view(), rng);
  for (idx j = 0; j < 8; ++j) {
    for (idx i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(a(i, j), a(j, i));
    EXPECT_GT(a(j, j), 0.0);
  }
}

TEST(Matrix, AsConstMatchesView) {
  Matrix<double> a(3, 3);
  a(1, 2) = 8.0;
  auto v = a.view();
  auto cv = v.as_const();
  EXPECT_EQ(cv(1, 2), 8.0);
  EXPECT_EQ(cv.ld(), v.ld());
}

TEST(Matrix, EmptyViews) {
  Matrix<double> a(0, 0);
  EXPECT_TRUE(a.view().empty());
  Matrix<double> b(3, 3);
  EXPECT_TRUE(b.block(0, 0, 0, 3).empty());
}

}  // namespace
}  // namespace bsr::la
