#include "energy/pareto.hpp"

#include <gtest/gtest.h>

#include "energy/baselines.hpp"
#include "energy/strategy.hpp"

namespace bsr::energy {
namespace {

EnergyDeltaParams typical() {
  EnergyDeltaParams p;
  p.t_cpu_s = 0.3;
  p.t_gpu_s = 2.0;
  p.slack_s = 1.6;
  p.alpha_cpu = 0.88;
  p.alpha_gpu = 0.82;
  p.d_cpu = 0.65;
  p.d_gpu = 0.72;
  p.p_cpu_total_w = 95.0;
  p.p_gpu_total_w = 250.0;
  p.exponent = 2.4;
  return p;
}

TEST(Pareto, CpuDynamicSavingPositiveWhenSlowingIntoSlack) {
  // r=0: the CPU stretches into the whole slack — the dynamic component of
  // the paper's closed form saves energy. (The printed *static* term charges
  // the stretched time against the saving, so the total CPU delta can be
  // negative on its own; the sum with the GPU delta is what matters.)
  const EnergyDeltaParams p = typical();
  const double dyn_only_saving =
      delta_e_cpu(p, 0.0) -
      (p.t_cpu_s - p.alpha_cpu * (p.t_cpu_s + p.slack_s)) * (1.0 - p.d_cpu) *
          p.p_cpu_total_w;
  EXPECT_GT(dyn_only_saving, 0.0);
}

TEST(Pareto, CombinedDeltaPositiveAtRZero) {
  // The paper's conclusion: maximum saving at r = 0.
  const EnergyDeltaParams p = typical();
  EXPECT_GT(delta_e_cpu(p, 0.0) + delta_e_gpu(p, 0.0), 0.0);
}

TEST(Pareto, CpuDeltaGrowsWithR) {
  // Less stretching -> the printed static-time charge shrinks.
  const EnergyDeltaParams p = typical();
  EXPECT_LT(delta_e_cpu(p, 0.0), delta_e_cpu(p, 0.5));
  EXPECT_LT(delta_e_cpu(p, 0.5), delta_e_cpu(p, 1.0));
}

TEST(Pareto, GpuCostGrowsWithR) {
  const EnergyDeltaParams p = typical();
  // Speeding the GPU up costs increasingly more energy.
  EXPECT_GT(delta_e_gpu(p, 0.1), delta_e_gpu(p, 0.5));
}

TEST(Pareto, GpuAtR0StillSavesViaGuardband) {
  // With alpha < 1 and r = 0, the optimized guardband alone saves GPU energy
  // (the effect the paper credits for BSR > SR at r=0).
  EXPECT_GT(delta_e_gpu(typical(), 0.0), 0.0);
}

TEST(Pareto, TotalDeltaMonotoneDecreasingInR) {
  const EnergyDeltaParams p = typical();
  double prev = 1e300;
  for (double r = 0.0; r <= 1.0; r += 0.1) {
    const double d = delta_e_cpu(p, r) + delta_e_gpu(p, r);
    EXPECT_LE(d, prev + 1e-9);
    prev = d;
  }
}

TEST(Pareto, SolverFindsRoot) {
  const EnergyDeltaParams p = typical();
  const double r = solve_energy_neutral_r(p);
  EXPECT_GT(r, 0.0);
  EXPECT_LT(r, 1.0);
  EXPECT_NEAR(delta_e_cpu(p, r) + delta_e_gpu(p, r), 0.0,
              1e-6 * p.p_gpu_total_w);
}

TEST(Pareto, SolverReturnsZeroWhenNothingToSave) {
  // With no guardband benefit (alpha = 1) the static-time charge makes even
  // r = 0 a net loss under the paper's accounting -> the solver floors at 0.
  EnergyDeltaParams p = typical();
  p.alpha_cpu = 1.0;
  p.alpha_gpu = 1.0;
  p.d_cpu = 0.1;  // almost all static: slowing down cannot pay off
  p.d_gpu = 0.1;
  EXPECT_DOUBLE_EQ(solve_energy_neutral_r(p), 0.0);
}

TEST(Pareto, AverageOverTraceInPaperRange) {
  // Build an Original trace at paper scale, then the averaged r* should land
  // in the regime the paper reports (~0.26 for LU; we accept a broad band).
  sched::PipelineConfig cfg;
  cfg.workload = {predict::Factorization::LU, 30720, 512, 8};
  cfg.noise.enabled = false;
  const auto platform = hw::PlatformProfile::paper_default();
  sched::HybridPipeline pipe(platform, cfg);
  OriginalStrategy org;
  const sched::RunTrace trace = run_under_strategy(pipe, org);
  const double r = average_energy_neutral_r(trace, platform);
  // Our calibrated guardband saves more than the authors' measured alpha, so
  // the analytic neutral point sits above the paper's 0.26-0.31; the bench
  // (bench_rstar) prints the exact value next to the paper's.
  EXPECT_GT(r, 0.05);
  EXPECT_LT(r, 0.8);
}

TEST(Pareto, DegenerateParamsReturnZeroDelta) {
  EnergyDeltaParams p = typical();
  p.t_cpu_s = 0.0;
  EXPECT_DOUBLE_EQ(delta_e_cpu(p, 0.2), 0.0);
  p = typical();
  p.t_gpu_s = 0.0;
  EXPECT_DOUBLE_EQ(delta_e_gpu(p, 0.2), 0.0);
}

}  // namespace
}  // namespace bsr::energy
