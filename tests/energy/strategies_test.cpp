#include <gtest/gtest.h>

#include "energy/baselines.hpp"
#include "energy/bsr_strategy.hpp"
#include "energy/sr.hpp"

namespace bsr::energy {
namespace {

sched::PipelineConfig config(bool noise = true) {
  sched::PipelineConfig c;
  c.workload = {predict::Factorization::LU, 30720, 512, 8};
  c.noise.enabled = noise;
  c.seed = 11;
  return c;
}

sched::RunTrace run(Strategy& s, bool noise = true) {
  sched::HybridPipeline pipe(hw::PlatformProfile::paper_default(), config(noise));
  return run_under_strategy(pipe, s);
}

TEST(Helpers, TimeAtFreqInverseScaling) {
  const auto gpu = hw::PlatformProfile::paper_default().gpu;  // eta = 1
  EXPECT_NEAR(time_at_freq(1.0, 2600, gpu), 0.5, 1e-12);
  EXPECT_NEAR(time_at_freq(1.0, 650, gpu), 2.0, 1e-12);
}

TEST(Helpers, FreqForTimeRoundsUpAndClamps) {
  const auto gpu = hw::PlatformProfile::paper_default().gpu;
  // Need 1.17x speedup -> 1521 MHz -> round to 1600.
  EXPECT_EQ(freq_for_time(1.17, 1.0, gpu, true), 1600);
  // Impossible speedup clamps to max overclock.
  EXPECT_EQ(freq_for_time(10.0, 1.0, gpu, true), 2200);
  EXPECT_EQ(freq_for_time(10.0, 1.0, gpu, false), 1300);
  // Slowing down rounds up within range.
  EXPECT_EQ(freq_for_time(1.0, 2.0, gpu, false), 700);
}

TEST(Helpers, FreqForTimeDegenerateInputs) {
  const auto gpu = hw::PlatformProfile::paper_default().gpu;
  EXPECT_EQ(freq_for_time(1.0, 0.0, gpu, true), 2200);   // want zero time
  EXPECT_EQ(freq_for_time(0.0, 1.0, gpu, true), 1300);   // nothing to do
}

TEST(Original, KeepsBaseClocksThroughout) {
  OriginalStrategy s;
  sched::HybridPipeline pipe(hw::PlatformProfile::paper_default(), config());
  const sched::RunTrace t = run_under_strategy(pipe, s);
  for (const auto& o : t.iterations) {
    EXPECT_EQ(o.cpu_freq, 3500);
    EXPECT_EQ(o.gpu_freq, 1300);
    EXPECT_EQ(o.abft_mode, abft::ChecksumMode::None);
  }
}

TEST(R2H, SavesEnergyVsOriginalAtSimilarPerformance) {
  OriginalStrategy org;
  RaceToHaltStrategy r2h;
  const sched::RunTrace t_org = run(org);
  const sched::RunTrace t_r2h = run(r2h);
  EXPECT_LT(t_r2h.total_energy_j(), t_org.total_energy_j());
  // Racing can only help or match performance.
  EXPECT_LE(t_r2h.total_time.seconds(), t_org.total_time.seconds() * 1.02);
}

TEST(SR, SavesMoreThanR2H) {
  // Paper Fig. 12(a): SR > R2H in energy saving.
  OriginalStrategy org;
  RaceToHaltStrategy r2h;
  SlackReclamationStrategy sr(config().workload);
  const double e_org = run(org).total_energy_j();
  const double e_r2h = run(r2h).total_energy_j();
  const double e_sr = run(sr).total_energy_j();
  EXPECT_LT(e_sr, e_r2h);
  EXPECT_LT(e_r2h, e_org);
}

TEST(SR, NeverOverclocksAndNeverAbft) {
  SlackReclamationStrategy sr(config().workload);
  sched::HybridPipeline pipe(hw::PlatformProfile::paper_default(), config());
  const sched::RunTrace t = run_under_strategy(pipe, sr);
  for (const auto& o : t.iterations) {
    EXPECT_LE(o.cpu_freq, 3500);
    EXPECT_LE(o.gpu_freq, 1300);
    EXPECT_EQ(o.abft_mode, abft::ChecksumMode::None);
  }
}

TEST(SR, SlowsCpuDuringCpuSideSlack) {
  SlackReclamationStrategy sr(config().workload);
  sched::HybridPipeline pipe(hw::PlatformProfile::paper_default(), config());
  const sched::RunTrace t = run_under_strategy(pipe, sr);
  // Iteration 2 has large CPU-side slack: the CPU must be well below base.
  EXPECT_LT(t.iterations[2].cpu_freq, 2000);
}

TEST(SR, PerformanceWithinFewPercentOfOriginal) {
  OriginalStrategy org;
  SlackReclamationStrategy sr(config().workload);
  const double t_org = run(org).total_time.seconds();
  const double t_sr = run(sr).total_time.seconds();
  EXPECT_LT(t_sr, t_org * 1.05);
}

TEST(BSR, R0SavesMoreThanSR) {
  // The headline claim: BSR(r=0) beats SR on energy.
  SlackReclamationStrategy sr(config().workload);
  BsrStrategy bsr(config().workload, BsrConfig{0.0, 0.999999});
  const double e_sr = run(sr).total_energy_j();
  const double e_bsr = run(bsr).total_energy_j();
  EXPECT_LT(e_bsr, e_sr);
}

TEST(BSR, HigherRImprovesPerformance) {
  BsrStrategy bsr0(config().workload, BsrConfig{0.0, 0.999999});
  BsrStrategy bsr25(config().workload, BsrConfig{0.25, 0.999999});
  const double t0 = run(bsr0).total_time.seconds();
  const double t25 = run(bsr25).total_time.seconds();
  EXPECT_LT(t25, t0 * 0.97);
}

TEST(BSR, R0StaysFaultFreeAndUnprotected) {
  // With r=0 nothing is sped up, so the GPU never overclocks past the
  // fault-free limit and adaptive ABFT stays off.
  BsrStrategy bsr(config().workload, BsrConfig{0.0, 0.999999});
  sched::HybridPipeline pipe(hw::PlatformProfile::paper_default(), config());
  const sched::RunTrace t = run_under_strategy(pipe, bsr);
  for (const auto& o : t.iterations) {
    EXPECT_EQ(o.abft_mode, abft::ChecksumMode::None) << o.k;
  }
}

TEST(BSR, HighREventuallyEngagesAbft) {
  // Paper Fig. 9 (r=0.25): late iterations overclock into the SDC regime and
  // adaptive ABFT turns on.
  BsrStrategy bsr(config().workload, BsrConfig{0.25, 0.999999});
  sched::HybridPipeline pipe(hw::PlatformProfile::paper_default(), config());
  const sched::RunTrace t = run_under_strategy(pipe, bsr);
  int protected_iters = 0;
  int overclocked = 0;
  for (const auto& o : t.iterations) {
    if (o.abft_mode != abft::ChecksumMode::None) ++protected_iters;
    if (o.gpu_freq > 1700) ++overclocked;
  }
  EXPECT_GT(overclocked, 0);
  EXPECT_GT(protected_iters, 0);
}

TEST(BSR, AbftModeMatchesRunningFrequency) {
  // Whenever the GPU runs above the fault-free limit, protection must be on.
  const auto platform = hw::PlatformProfile::paper_default();
  BsrStrategy bsr(config().workload, BsrConfig{0.3, 0.999999});
  sched::HybridPipeline pipe(platform, config());
  const sched::RunTrace t = run_under_strategy(pipe, bsr);
  const hw::Mhz ff = platform.gpu.fault_free_max();
  for (const auto& o : t.iterations) {
    if (o.gpu_freq > ff) {
      EXPECT_NE(o.abft_mode, abft::ChecksumMode::None) << "iter " << o.k;
    }
  }
}

TEST(BSR, UsesOptimizedGuardbandEnergySaving) {
  // Even at r=0, the optimized guardband alone must cut busy power vs SR.
  SlackReclamationStrategy sr(config().workload);
  BsrStrategy bsr(config().workload, BsrConfig{0.0, 0.999999});
  const sched::RunTrace t_sr = run(sr);
  const sched::RunTrace t_bsr = run(bsr);
  EXPECT_LT(t_bsr.gpu_energy_j, t_sr.gpu_energy_j);
}

TEST(RunTrace, AggregatesConsistent) {
  OriginalStrategy org;
  const sched::RunTrace t = run(org);
  double e = 0.0;
  SimTime total;
  for (const auto& o : t.iterations) {
    e += o.energy_j();
    total += o.span;
  }
  EXPECT_NEAR(t.total_energy_j(), e, 1e-9);
  EXPECT_EQ(t.total_time, total);
  EXPECT_GT(t.ed2p(), 0.0);
}

}  // namespace
}  // namespace bsr::energy
