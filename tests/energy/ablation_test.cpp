// Ablation tests: each BSR ingredient must contribute measurably, and
// disabling all hardware tricks must collapse BSR toward SR.
#include <gtest/gtest.h>

#include "core/decomposer.hpp"

namespace bsr::core {
namespace {

RunOptions opts(double r) {
  RunOptions o;
  o.n = 30720;
  o.b = 512;
  o.strategy = StrategyKind::BSR;
  o.reclamation_ratio = r;
  return o;
}

TEST(Ablation, GuardbandIsTheBiggestEnergyLever) {
  const Decomposer dec;
  const RunReport full = dec.run(opts(0.0));
  ExtendedOptions no_gb;
  no_gb.bsr_use_optimized_guardband = false;
  const RunReport without = dec.run(opts(0.0), no_gb);
  // Removing the guardband must cost energy, and a lot of it.
  EXPECT_GT(without.total_energy_j(), full.total_energy_j() * 1.05);
}

TEST(Ablation, OverclockingBuysTheSpeedup) {
  const Decomposer dec;
  const RunReport full = dec.run(opts(0.25));
  ExtendedOptions no_oc;
  no_oc.bsr_allow_overclocking = false;
  const RunReport without = dec.run(opts(0.25), no_oc);
  EXPECT_GT(without.seconds(), full.seconds() * 1.05);
}

TEST(Ablation, NoOverclockingMeansNoAbftEver) {
  const Decomposer dec;
  ExtendedOptions no_oc;
  no_oc.bsr_allow_overclocking = false;
  const RunReport r = dec.run(opts(0.3), no_oc);
  EXPECT_EQ(r.abft.iterations_protected_single, 0);
  EXPECT_EQ(r.abft.iterations_protected_full, 0);
  for (const auto& it : r.trace.iterations) {
    EXPECT_LE(it.gpu_freq, dec.platform().gpu.freq.base_mhz);
    EXPECT_LE(it.cpu_freq, dec.platform().cpu.freq.base_mhz);
  }
}

TEST(Ablation, DvfsOnlyVariantLandsNearSr) {
  // Guardband off + overclocking off leaves bi-directional DVFS with a better
  // predictor: energy should land within a few percent of SR.
  const Decomposer dec;
  RunOptions sr_opts = opts(0.0);
  sr_opts.strategy = StrategyKind::SR;
  const RunReport sr = dec.run(sr_opts);
  ExtendedOptions dvfs_only;
  dvfs_only.bsr_use_optimized_guardband = false;
  dvfs_only.bsr_allow_overclocking = false;
  const RunReport r = dec.run(opts(0.0), dvfs_only);
  EXPECT_NEAR(r.total_energy_j() / sr.total_energy_j(), 1.0, 0.06);
}

TEST(Ablation, EnhancedPredictorNotWorseOnEnergy) {
  const Decomposer dec;
  const RunReport full = dec.run(opts(0.0));
  ExtendedOptions first_iter;
  first_iter.bsr_use_enhanced_predictor = false;
  const RunReport without = dec.run(opts(0.0), first_iter);
  // Worse predictions -> worse (or at best equal) reclamation decisions.
  EXPECT_LE(full.total_energy_j(), without.total_energy_j() * 1.01);
}

TEST(Ablation, FullBsrDominatesEveryAblatedVariant) {
  const Decomposer dec;
  const RunReport full = dec.run(opts(0.0));
  for (int variant = 0; variant < 3; ++variant) {
    ExtendedOptions e;
    if (variant == 0) e.bsr_use_optimized_guardband = false;
    if (variant == 1) e.bsr_allow_overclocking = false;
    if (variant == 2) e.bsr_use_enhanced_predictor = false;
    const RunReport ablated = dec.run(opts(0.0), e);
    EXPECT_LE(full.total_energy_j(), ablated.total_energy_j() * 1.01)
        << "variant " << variant;
  }
}

}  // namespace
}  // namespace bsr::core
