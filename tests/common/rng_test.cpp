#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace bsr {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, NextBelowNeverReachesBound) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(Rng, NextBelowZeroIsZero) {
  Rng r(11);
  EXPECT_EQ(r.next_below(0), 0u);
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng r(13);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.25);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng r(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, PoissonZeroMeanIsZero) {
  Rng r(19);
  EXPECT_EQ(r.poisson(0.0), 0u);
  EXPECT_EQ(r.poisson(-1.0), 0u);
}

TEST(Rng, PoissonSmallMeanMatches) {
  Rng r(23);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(r.poisson(2.5));
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(Rng, PoissonLargeMeanUsesNormalApprox) {
  Rng r(29);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(r.poisson(200.0));
  EXPECT_NEAR(sum / n, 200.0, 2.0);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(31);
  Rng child = a.split();
  // The child stream should not replay the parent's outputs.
  Rng b(31);
  b.split();
  EXPECT_NE(child.next_u64(), a.next_u64());
}

class RngPoissonParam : public ::testing::TestWithParam<double> {};

TEST_P(RngPoissonParam, MeanTracksParameter) {
  const double mean = GetParam();
  Rng r(static_cast<std::uint64_t>(mean * 1000) + 1);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(r.poisson(mean));
  EXPECT_NEAR(sum / n, mean, std::max(0.05, mean * 0.05));
}

INSTANTIATE_TEST_SUITE_P(Sweep, RngPoissonParam,
                         ::testing::Values(0.01, 0.1, 0.5, 1.0, 5.0, 20.0, 80.0,
                                           150.0));

}  // namespace
}  // namespace bsr
