#include "common/json.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace bsr {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(JsonValue::parse("null").is_null());
  EXPECT_TRUE(JsonValue::parse("true").as_bool());
  EXPECT_FALSE(JsonValue::parse("false").as_bool());
  EXPECT_EQ(JsonValue::parse("\"hi\"").as_string(), "hi");
  EXPECT_EQ(JsonValue::parse("42").to_int64(), 42);
  EXPECT_DOUBLE_EQ(JsonValue::parse("-3.25e2").to_double(), -325.0);
}

TEST(JsonParse, ObjectPreservesMemberOrder) {
  const JsonValue v = JsonValue::parse(R"({"z":1,"a":2,"m":3})");
  ASSERT_TRUE(v.is_object());
  ASSERT_EQ(v.members().size(), 3u);
  EXPECT_EQ(v.members()[0].first, "z");
  EXPECT_EQ(v.members()[1].first, "a");
  EXPECT_EQ(v.members()[2].first, "m");
  EXPECT_EQ(v.at("a").to_int64(), 2);
  EXPECT_EQ(v.find("nope"), nullptr);
  EXPECT_THROW((void)v.at("nope"), std::runtime_error);
}

TEST(JsonParse, NumberTokensAreVerbatim) {
  // The byte-identity contract of the serve store: dump() re-emits the
  // source token, not a re-formatted double.
  const JsonValue v = JsonValue::parse("[1.50, 1e2, -0.0, 10000000000]");
  EXPECT_EQ(v.items()[0].number_token(), "1.50");
  EXPECT_EQ(v.items()[1].number_token(), "1e2");
  EXPECT_EQ(v.dump(), "[1.50,1e2,-0.0,10000000000]");
}

TEST(JsonParse, ParseDumpIsIdentityOnWriterOutput) {
  const std::string doc =
      R"({"a":[1,2.5,"x"],"b":{"c":true,"d":null},"e":"q\"uo\\te","f":-1.25e-3})";
  EXPECT_EQ(JsonValue::parse(doc).dump(), doc);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(JsonValue::parse(R"("a\nb\tc\\d\"e")").as_string(),
            "a\nb\tc\\d\"e");
  // \u0041 = 'A'; a surrogate pair decodes to UTF-8.
  EXPECT_EQ(JsonValue::parse(R"("\u0041")").as_string(), "A");
  EXPECT_EQ(JsonValue::parse(R"("\uD83D\uDE00")").as_string(),
            "\xF0\x9F\x98\x80");
}

TEST(JsonParse, ErrorsAreLoud) {
  EXPECT_THROW((void)JsonValue::parse(""), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("{"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("[1,]"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("{\"a\":1} trailing"),
               std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("nul"), std::runtime_error);
  try {
    (void)JsonValue::parse("[1, @]");
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("json:"), std::string::npos);
  }
}

TEST(JsonParse, TypeMismatchedAccessorsThrow) {
  const JsonValue v = JsonValue::parse("[1]");
  EXPECT_THROW((void)v.as_string(), std::runtime_error);
  EXPECT_THROW((void)v.as_bool(), std::runtime_error);
  EXPECT_THROW((void)v.members(), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("1.5").to_int64(), std::runtime_error);
}

TEST(JsonParse, Uint64RoundTripsAsQuotedString) {
  // Seeds above int64 range travel as strings (see common/json.hpp).
  const std::uint64_t big = std::numeric_limits<std::uint64_t>::max();
  JsonWriter w;
  w.value_u64(big);
  const JsonValue v = JsonValue::parse(w.str());
  ASSERT_TRUE(v.is_string());
  EXPECT_EQ(v.to_uint64(), big);
  // Integer number tokens convert too.
  EXPECT_EQ(JsonValue::parse("42").to_uint64(), 42u);
}

TEST(JsonWriter, BuildsCompactDocuments) {
  JsonWriter w;
  w.obj_open();
  w.key("n").value(std::int64_t{4096});
  w.key("name").value("bsr");
  w.key("on").value(true);
  w.key("xs").arr_open();
  w.value(1.5);
  w.value(std::int64_t{-2});
  w.arr_close();
  w.key("nested").obj_open();
  w.obj_close();
  w.key("spliced").raw(R"([1,2])");
  w.obj_close();
  EXPECT_EQ(w.str(),
            R"({"n":4096,"name":"bsr","on":true,"xs":[1.5,-2],)"
            R"("nested":{},"spliced":[1,2]})");
}

TEST(JsonWriter, DoublesUseShortestExactForm) {
  JsonWriter w;
  w.arr_open();
  w.value(0.1);
  w.value(1.0);
  w.arr_close();
  const JsonValue v = JsonValue::parse(w.str());
  EXPECT_DOUBLE_EQ(v.items()[0].to_double(), 0.1);
  EXPECT_DOUBLE_EQ(v.items()[1].to_double(), 1.0);
  // Shortest form re-serializes byte-identically (the store fixpoint).
  EXPECT_EQ(json_double(v.items()[0].to_double()),
            v.items()[0].number_token());
}

TEST(JsonHelpers, QuoteEscapes) {
  EXPECT_EQ(json_quote("plain"), "\"plain\"");
  EXPECT_EQ(json_quote("a\"b\\c\nd"), R"("a\"b\\c\nd")");
  EXPECT_EQ(json_quote(std::string(1, '\x01')), "\"\\u0001\"");
}

TEST(JsonHelpers, DoubleClampsNonFinite) {
  EXPECT_EQ(json_double(std::numeric_limits<double>::infinity()), "0");
  EXPECT_EQ(json_double(std::numeric_limits<double>::quiet_NaN()), "0");
}

}  // namespace
}  // namespace bsr
