#include "common/sim_time.hpp"

#include <gtest/gtest.h>

namespace bsr {
namespace {

TEST(SimTime, Conversions) {
  EXPECT_EQ(SimTime::from_seconds(1.5).ns(), 1'500'000'000);
  EXPECT_EQ(SimTime::from_millis(2.0).ns(), 2'000'000);
  EXPECT_EQ(SimTime::from_micros(3.0).ns(), 3'000);
  EXPECT_DOUBLE_EQ(SimTime(250'000'000).seconds(), 0.25);
  EXPECT_DOUBLE_EQ(SimTime(1'000'000).millis(), 1.0);
}

TEST(SimTime, Arithmetic) {
  const SimTime a = SimTime::from_seconds(1.0);
  const SimTime b = SimTime::from_seconds(0.5);
  EXPECT_DOUBLE_EQ((a + b).seconds(), 1.5);
  EXPECT_DOUBLE_EQ((a - b).seconds(), 0.5);
  EXPECT_DOUBLE_EQ((a * 2.0).seconds(), 2.0);
  EXPECT_DOUBLE_EQ((0.25 * a).seconds(), 0.25);
}

TEST(SimTime, CompoundAssignment) {
  SimTime t;
  t += SimTime::from_seconds(1.0);
  t -= SimTime::from_millis(500.0);
  EXPECT_DOUBLE_EQ(t.seconds(), 0.5);
}

TEST(SimTime, Comparisons) {
  EXPECT_LT(SimTime(1), SimTime(2));
  EXPECT_EQ(SimTime::zero(), SimTime(0));
  EXPECT_GT(SimTime::from_seconds(-0.1), SimTime::from_seconds(-0.2));
}

TEST(SimTime, MinMaxHelpers) {
  const SimTime a(10);
  const SimTime b(20);
  EXPECT_EQ(max(a, b), b);
  EXPECT_EQ(min(a, b), a);
}

TEST(SimTime, NegativeDurationsRoundCorrectly) {
  EXPECT_EQ(SimTime::from_seconds(-1.5).ns(), -1'500'000'000);
}

}  // namespace
}  // namespace bsr
