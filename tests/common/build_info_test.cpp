// Build stamping: every tool reports the same non-empty version / compiler /
// flags tuple, and build_info_line renders it in the documented shape.
#include "common/build_info.hpp"

#include <gtest/gtest.h>

#include <string>

namespace bsr::common {
namespace {

TEST(BuildInfo, FieldsAreStamped) {
  const BuildInfo& info = build_info();
  EXPECT_FALSE(info.version.empty());
  EXPECT_FALSE(info.compiler.empty());
  EXPECT_FALSE(info.build_type.empty());
  // flags may legitimately be empty for an unflagged build type, so only the
  // identifying fields are required.
}

TEST(BuildInfo, LineHasTheDocumentedShape) {
  // "<tool> <version> (<compiler>, <build_type>[, <flags>])" — the same line
  // benches print for --version and traces embed in otherData.
  const std::string line = build_info_line("bsr_test_tool");
  const BuildInfo& info = build_info();
  EXPECT_EQ(line.rfind("bsr_test_tool ", 0), 0u);
  EXPECT_NE(line.find(info.version), std::string::npos);
  EXPECT_NE(line.find("(" + info.compiler), std::string::npos);
  EXPECT_NE(line.find(info.build_type), std::string::npos);
  EXPECT_EQ(line.back(), ')');
}

TEST(BuildInfo, StableAcrossCalls) {
  EXPECT_EQ(build_info_line("t"), build_info_line("t"));
  EXPECT_EQ(&build_info(), &build_info());
}

}  // namespace
}  // namespace bsr::common
