// Satellite: the arena allocation layer backing kernel scratch, the cluster
// event heap, and campaign aggregation. Covers the contracts kernel code
// relies on: alignment, reset/reuse without new chunks, growth past the first
// chunk (out-of-arena fallback), coalescing on reset, ArenaScope nesting, and
// thread-locality of Arena::scratch().
#include "common/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

namespace bsr {
namespace {

bool aligned_to(const void* p, std::size_t align) {
  return reinterpret_cast<std::uintptr_t>(p) % align == 0;
}

TEST(Arena, AllocationsAreDisjointAndWritable) {
  Arena arena;
  double* a = arena.alloc<double>(100);
  double* b = arena.alloc<double>(100);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  // Fill both and cross-check: overlapping regions would clobber each other.
  for (int i = 0; i < 100; ++i) a[i] = 1.0 + i;
  for (int i = 0; i < 100; ++i) b[i] = -2.0 - i;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a[i], 1.0 + i);
    EXPECT_EQ(b[i], -2.0 - i);
  }
}

TEST(Arena, EveryAllocationAtLeastMaxAlign) {
  Arena arena;
  // Odd byte counts force the bump cursor off alignment between requests.
  for (std::size_t bytes : {1u, 3u, 7u, 13u, 64u, 129u}) {
    void* p = arena.alloc_bytes(bytes, 1);
    EXPECT_TRUE(aligned_to(p, alignof(std::max_align_t))) << bytes;
  }
  char* c = arena.alloc<char>(5);
  EXPECT_TRUE(aligned_to(c, alignof(std::max_align_t)));
}

TEST(Arena, WiderAlignmentHonored) {
  Arena arena;
  (void)arena.alloc<char>(1);  // skew the cursor
  void* p = arena.alloc_bytes(256, 64);
  EXPECT_TRUE(aligned_to(p, 64));
}

TEST(Arena, ZeroCountReturnsValidUniquePointers) {
  Arena arena;
  double* a = arena.alloc<double>(0);
  double* b = arena.alloc<double>(0);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
}

TEST(Arena, ResetReusesCapacityWithoutNewChunks) {
  Arena arena(/*initial_bytes=*/64 * 1024);
  (void)arena.alloc<double>(1000);
  const std::size_t cap = arena.capacity();
  const std::size_t chunks = arena.chunks();
  ASSERT_EQ(chunks, 1u);
  // Steady state: many reset/alloc rounds, zero additional heap chunks.
  for (int round = 0; round < 100; ++round) {
    arena.reset();
    EXPECT_EQ(arena.used(), 0u);
    double* p = arena.alloc<double>(1000);
    p[0] = 1.0;
    p[999] = 2.0;
  }
  EXPECT_EQ(arena.capacity(), cap);
  EXPECT_EQ(arena.chunks(), 1u);
}

TEST(Arena, OverflowFallsBackToNewChunkAndNeverFails) {
  Arena arena(/*initial_bytes=*/4 * 1024);  // minimum chunk size
  (void)arena.alloc<double>(8);  // materialize the (lazy) first chunk
  // Far larger than the first chunk: must grow, not crash or return null.
  double* big = arena.alloc<double>(100000);  // 800 KB
  ASSERT_NE(big, nullptr);
  big[0] = 1.0;
  big[99999] = 2.0;
  EXPECT_GE(arena.chunks(), 2u);
  EXPECT_GE(arena.capacity(), 800000u);
}

TEST(Arena, ResetAfterOverflowCoalescesToOneChunk) {
  Arena arena(/*initial_bytes=*/4 * 1024);
  (void)arena.alloc<double>(8);  // materialize the (lazy) first chunk
  (void)arena.alloc<double>(100000);
  ASSERT_GE(arena.chunks(), 2u);
  arena.reset();
  // The same workload now fits in the single coalesced chunk.
  (void)arena.alloc<double>(100000);
  EXPECT_EQ(arena.chunks(), 1u);
  const std::size_t cap = arena.capacity();
  arena.reset();
  (void)arena.alloc<double>(100000);
  EXPECT_EQ(arena.chunks(), 1u);
  EXPECT_EQ(arena.capacity(), cap);
}

TEST(Arena, UsedTracksHandedOutBytes) {
  Arena arena;
  EXPECT_EQ(arena.used(), 0u);
  (void)arena.alloc<double>(10);
  EXPECT_GE(arena.used(), 80u);
  arena.reset();
  EXPECT_EQ(arena.used(), 0u);
}

TEST(ArenaScope, RewindsToConstructionPoint) {
  Arena arena;
  double* outer = arena.alloc<double>(16);
  outer[0] = 42.0;
  double* inner_first = nullptr;
  {
    ArenaScope scope(arena);
    inner_first = scope.alloc<double>(64);
    inner_first[0] = 1.0;
  }
  // The frame's storage is reusable: the next allocation lands where the
  // scope's first one did, and the outer allocation survived untouched.
  double* reused = arena.alloc<double>(64);
  EXPECT_EQ(reused, inner_first);
  EXPECT_EQ(outer[0], 42.0);
}

TEST(ArenaScope, FramesNestLikeAStack) {
  Arena arena;
  std::size_t base_used = arena.used();
  {
    ArenaScope a(arena);
    (void)a.alloc<double>(32);
    const std::size_t after_a = arena.used();
    {
      ArenaScope b(arena);
      (void)b.alloc<double>(1024);
      EXPECT_GT(arena.used(), after_a);
    }
    EXPECT_EQ(arena.used(), after_a);  // b unwound, a's frame intact
  }
  EXPECT_EQ(arena.used(), base_used);
}

TEST(ArenaScope, UnwindsAcrossChunkOverflow) {
  Arena arena(/*initial_bytes=*/4 * 1024);
  (void)arena.alloc<double>(64);
  const std::size_t used_before = arena.used();
  {
    ArenaScope scope(arena);
    (void)scope.alloc<double>(100000);  // forces a new chunk mid-frame
    ASSERT_GE(arena.chunks(), 2u);
  }
  EXPECT_EQ(arena.used(), used_before);
  // The overflow chunk is retained and reusable after the unwind.
  const std::size_t cap = arena.capacity();
  (void)arena.alloc<double>(100000);
  EXPECT_EQ(arena.capacity(), cap);
}

TEST(ArenaScope, StressRandomNestedFrames) {
  // Deterministic LCG drives a nest of frames with mixed sizes; the invariant
  // is that used() returns to its pre-frame value after every unwind and no
  // write tramples a live outer allocation.
  Arena arena(/*initial_bytes=*/4 * 1024);
  std::uint64_t s = 12345;
  auto next = [&s] { return s = s * 6364136223846793005ULL + 1442695040888963407ULL; };
  for (int outer = 0; outer < 50; ++outer) {
    ArenaScope frame(arena);
    const std::size_t n = 1 + next() % 4096;
    double* sentinel = frame.alloc<double>(n);
    sentinel[0] = static_cast<double>(outer);
    sentinel[n - 1] = -static_cast<double>(outer);
    const std::size_t used_mid = arena.used();
    for (int inner = 0; inner < 20; ++inner) {
      ArenaScope sub(arena);
      double* p = sub.alloc<double>(1 + next() % 8192);
      p[0] = 3.14;
    }
    EXPECT_EQ(arena.used(), used_mid);
    EXPECT_EQ(sentinel[0], static_cast<double>(outer));
    EXPECT_EQ(sentinel[n - 1], -static_cast<double>(outer));
  }
}

TEST(ArenaScratch, IsThreadLocal) {
  Arena* main_arena = &Arena::scratch();
  ASSERT_NE(main_arena, nullptr);
  EXPECT_EQ(main_arena, &Arena::scratch());  // stable within a thread
  std::vector<Arena*> seen(4, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&seen, t] {
      Arena& a = Arena::scratch();
      ArenaScope scope(a);
      double* p = scope.alloc<double>(256);
      p[0] = static_cast<double>(t);
      seen[static_cast<std::size_t>(t)] = &a;
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 0; t < 4; ++t) {
    ASSERT_NE(seen[static_cast<std::size_t>(t)], nullptr);
    EXPECT_NE(seen[static_cast<std::size_t>(t)], main_arena) << t;
    for (int u = t + 1; u < 4; ++u) {
      EXPECT_NE(seen[static_cast<std::size_t>(t)],
                seen[static_cast<std::size_t>(u)]);
    }
  }
}

}  // namespace
}  // namespace bsr
