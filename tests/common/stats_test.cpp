#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <array>
#include <stdexcept>

namespace bsr::stats {
namespace {

TEST(Stats, MeanAndVariance) {
  const std::array<double, 5> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_DOUBLE_EQ(variance(xs), 2.5);
  EXPECT_NEAR(stddev(xs), 1.5811, 1e-3);
}

TEST(Stats, EmptyInputsAreZero) {
  EXPECT_EQ(mean({}), 0.0);
  EXPECT_EQ(variance({}), 0.0);
  EXPECT_EQ(median({}), 0.0);
  EXPECT_EQ(min({}), 0.0);
  EXPECT_EQ(max({}), 0.0);
}

TEST(Stats, MedianOddEven) {
  const std::array<double, 3> odd = {3, 1, 2};
  EXPECT_DOUBLE_EQ(median(odd), 2.0);
  const std::array<double, 4> even = {4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Stats, PercentileInterpolates) {
  const std::array<double, 5> xs = {10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 20.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.125), 15.0);
}

TEST(Stats, MinMax) {
  const std::array<double, 4> xs = {-2, 7, 0, 3};
  EXPECT_DOUBLE_EQ(min(xs), -2.0);
  EXPECT_DOUBLE_EQ(max(xs), 7.0);
}

TEST(Stats, LinearFitRecoversLine) {
  const std::array<double, 4> xs = {0, 1, 2, 3};
  const std::array<double, 4> ys = {1, 3, 5, 7};  // y = 1 + 2x
  const LinearFit f = linear_fit(xs, ys);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
}

TEST(Stats, LinearFitRejectsBadInput) {
  const std::array<double, 1> one = {1};
  EXPECT_THROW(linear_fit(one, one), std::invalid_argument);
}

TEST(Stats, GeomeanBasics) {
  const std::array<double, 3> xs = {1, 10, 100};
  EXPECT_NEAR(geomean(xs), 10.0, 1e-9);
  const std::array<double, 2> bad = {1, -1};
  EXPECT_THROW(geomean(bad), std::invalid_argument);
}

TEST(Stats, WilsonIntervalBasics) {
  const Proportion p = wilson_interval(50, 100);
  EXPECT_NEAR(p.estimate, 0.5, 1e-12);
  EXPECT_LT(p.lo, 0.5);
  EXPECT_GT(p.hi, 0.5);
  EXPECT_NEAR(p.hi - p.lo, 0.195, 0.01);  // ~2*1.96*sqrt(.25/100)
}

TEST(Stats, WilsonIntervalNarrowsWithTrials) {
  const Proportion small = wilson_interval(8, 10);
  const Proportion large = wilson_interval(8000, 10000);
  EXPECT_LT(large.hi - large.lo, small.hi - small.lo);
  EXPECT_NEAR(large.estimate, 0.8, 1e-12);
}

TEST(Stats, WilsonIntervalEdgeCases) {
  const Proportion zero = wilson_interval(0, 20);
  EXPECT_DOUBLE_EQ(zero.estimate, 0.0);
  EXPECT_GE(zero.lo, 0.0);
  EXPECT_GT(zero.hi, 0.0);  // never certain from finite trials
  const Proportion all = wilson_interval(20, 20);
  EXPECT_DOUBLE_EQ(all.estimate, 1.0);
  EXPECT_LT(all.lo, 1.0);
  EXPECT_LE(all.hi, 1.0);
  const Proportion none = wilson_interval(0, 0);
  EXPECT_DOUBLE_EQ(none.estimate, 0.0);
  EXPECT_DOUBLE_EQ(none.hi, 1.0);
}

// The degenerate-input contract documented in common/stats.hpp: short
// series (the fault benches run 3-trial campaigns whose p99 is asked of a
// 3-sample series) must degrade predictably, never throw or index past the
// end.
TEST(Stats, SingleSampleIsEveryPercentile) {
  const std::array<double, 1> one = {42.0};
  EXPECT_DOUBLE_EQ(percentile(one, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(percentile(one, 0.5), 42.0);
  EXPECT_DOUBLE_EQ(percentile(one, 0.99), 42.0);
  EXPECT_DOUBLE_EQ(percentile(one, 1.0), 42.0);
  EXPECT_DOUBLE_EQ(median(one), 42.0);
  EXPECT_DOUBLE_EQ(variance(one), 0.0);
  EXPECT_DOUBLE_EQ(stddev(one), 0.0);
}

TEST(Stats, TailPercentileOfShortSeries) {
  // p99 of two samples interpolates 99% of the way to the larger one; it
  // must stay within [min, max] and reach max exactly at p=1.
  const std::array<double, 2> two = {1.0, 3.0};
  EXPECT_NEAR(percentile(two, 0.99), 2.98, 1e-12);
  EXPECT_LE(percentile(two, 0.99), max(two));
  EXPECT_GE(percentile(two, 0.99), min(two));
  const std::array<double, 3> three = {5.0, 1.0, 3.0};  // unsorted on purpose
  EXPECT_DOUBLE_EQ(percentile(three, 1.0), 5.0);
  EXPECT_NEAR(percentile(three, 0.95), 4.8, 1e-12);
}

TEST(Stats, PercentileClampsOutOfRangeP) {
  const std::array<double, 4> xs = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, -0.5), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.5), 40.0);
}

TEST(Stats, EmptySeriesPercentilesAreZero) {
  EXPECT_DOUBLE_EQ(percentile({}, 0.99), 0.0);
  EXPECT_DOUBLE_EQ(min({}), 0.0);
  EXPECT_DOUBLE_EQ(max({}), 0.0);
}

TEST(Stats, AccumulatorMatchesBatch) {
  const std::array<double, 6> xs = {2, 4, 4, 4, 5, 7};
  Accumulator acc;
  for (double x : xs) acc.add(x);
  EXPECT_EQ(acc.count(), 6u);
  EXPECT_NEAR(acc.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(acc.variance(), variance(xs), 1e-12);
}

}  // namespace
}  // namespace bsr::stats
