// The unified metrics registry: instrument semantics (counter, gauge,
// histogram bucketing), registration rules (get-or-create, kind collisions
// throw), probes, and the deterministic Prometheus-style exposition.
#include "common/metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace bsr::common {
namespace {

TEST(Metrics, CounterAndGaugeBasics) {
  MetricsRegistry reg;
  Counter& c = reg.counter("bsr_test_events_total", "events");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);

  Gauge& g = reg.gauge("bsr_test_depth", "depth");
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(7.5);
  EXPECT_DOUBLE_EQ(g.value(), 7.5);
  g.set(-1.0);  // gauges go down
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
}

TEST(Metrics, GetOrCreateReturnsTheSameInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.counter("bsr_test_total", "first");
  Counter& b = reg.counter("bsr_test_total", "ignored on re-request");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
}

TEST(Metrics, KindCollisionAndBadNamesThrow) {
  MetricsRegistry reg;
  reg.counter("bsr_test_collide", "a counter");
  EXPECT_THROW(reg.gauge("bsr_test_collide", "now a gauge"),
               std::logic_error);
  EXPECT_THROW(reg.histogram("bsr_test_collide", "now a histogram", {1.0}),
               std::logic_error);
  EXPECT_THROW(reg.counter("0starts_with_digit", ""), std::logic_error);
  EXPECT_THROW(reg.counter("has-dash", ""), std::logic_error);
  EXPECT_THROW(reg.counter("", ""), std::logic_error);
}

TEST(Metrics, HistogramBucketsAreUpperBoundsInclusive) {
  Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);  // bucket 0
  h.observe(1.0);  // bucket 0: le="1" includes the bound itself
  h.observe(1.5);  // bucket 1
  h.observe(4.0);  // bucket 2
  h.observe(9.0);  // +Inf bucket
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(3), 1u);  // +Inf
  EXPECT_DOUBLE_EQ(h.sum(), 16.0);
}

TEST(Metrics, HistogramEdgeCases) {
  // Fewer observations than buckets (a daemon scraped after 2 requests with
  // 13 latency buckets) leaves most buckets at exactly zero — and the
  // cumulative exposition must stay monotone with the +Inf bucket == count.
  Histogram sparse(Histogram::default_latency_buckets_s());
  sparse.observe(0.002);
  sparse.observe(250.0);  // beyond the last bound -> +Inf
  EXPECT_EQ(sparse.count(), 2u);
  EXPECT_EQ(sparse.bucket(sparse.upper_bounds().size()), 1u);

  // Empty histogram: count 0, sum 0, every bucket 0 — no poison values.
  Histogram empty({1.0});
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_DOUBLE_EQ(empty.sum(), 0.0);

  // Negative observations land in the first finite bucket (le upper bounds).
  Histogram neg({0.0, 1.0});
  neg.observe(-3.0);
  EXPECT_EQ(neg.bucket(0), 1u);

  // Unsorted or duplicated bounds are construction bugs.
  EXPECT_THROW(Histogram({2.0, 1.0}), std::logic_error);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::logic_error);
}

TEST(Metrics, HistogramConcurrentObserveLosesNothing) {
  Histogram h({0.5});
  std::vector<std::thread> threads;
  constexpr int kThreads = 4;
  constexpr int kEach = 10000;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kEach; ++i) h.observe(1.0);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kEach));
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(kThreads * kEach));
  EXPECT_EQ(h.bucket(1), static_cast<std::uint64_t>(kThreads * kEach));
}

TEST(Metrics, ProbesSampleAtExpositionTimeAndReplaceOnReRegister) {
  MetricsRegistry reg;
  double live = 1.0;
  reg.register_probe("bsr_test_live", "sampled late", "gauge",
                     [&live] { return live; });
  live = 99.0;  // changed after registration, before exposition
  EXPECT_NE(reg.exposition().find("bsr_test_live 99"), std::string::npos);

  reg.register_probe("bsr_test_live", "replaced", "gauge", [] { return 5.0; });
  EXPECT_NE(reg.exposition().find("bsr_test_live 5"), std::string::npos);
  EXPECT_THROW(reg.register_probe("bsr_test_live", "", "neither", [] {
    return 0.0;
  }),
               std::logic_error);
}

TEST(Metrics, ExpositionIsDeterministicAndPrometheusShaped) {
  MetricsRegistry reg;
  reg.counter("bsr_test_requests_total", "requests served").inc(3);
  reg.gauge("bsr_test_queue", "queue depth").set(2.0);
  Histogram& h = reg.histogram("bsr_test_latency_seconds", "latency",
                               {0.1, 1.0});
  h.observe(0.05);
  h.observe(0.5);
  h.observe(30.0);

  const std::string expected =
      "# HELP bsr_test_requests_total requests served\n"
      "# TYPE bsr_test_requests_total counter\n"
      "bsr_test_requests_total 3\n"
      "# HELP bsr_test_queue queue depth\n"
      "# TYPE bsr_test_queue gauge\n"
      "bsr_test_queue 2\n"
      "# HELP bsr_test_latency_seconds latency\n"
      "# TYPE bsr_test_latency_seconds histogram\n"
      "bsr_test_latency_seconds_bucket{le=\"0.1\"} 1\n"
      "bsr_test_latency_seconds_bucket{le=\"1\"} 2\n"
      "bsr_test_latency_seconds_bucket{le=\"+Inf\"} 3\n"
      "bsr_test_latency_seconds_sum 30.55\n"
      "bsr_test_latency_seconds_count 3\n";
  EXPECT_EQ(reg.exposition(), expected);
  // Identical state renders byte-identically on every snapshot.
  EXPECT_EQ(reg.exposition(), expected);
}

TEST(Metrics, GlobalRegistryIsOneInstance) {
  EXPECT_EQ(&MetricsRegistry::global(), &MetricsRegistry::global());
  Counter& c =
      MetricsRegistry::global().counter("bsr_test_global_total", "global");
  c.inc();
  EXPECT_GE(c.value(), 1u);
}

}  // namespace
}  // namespace bsr::common
