#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace bsr {
namespace {

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelRangesPartitionIsExact) {
  ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  pool.parallel_ranges(
      1237, [&](std::size_t b, std::size_t e) { total.fetch_add(e - b); });
  EXPECT_EQ(total.load(), 1237u);
}

TEST(ThreadPool, NestedCallsFallBackToSerial) {
  ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  pool.parallel_for(8, [&](std::size_t) {
    // Re-entrant use from a worker must not deadlock.
    pool.parallel_for(10, [&](std::size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 80);
}

TEST(ThreadPool, SumMatchesSerial) {
  ThreadPool pool(8);
  std::vector<long> values(100000);
  std::iota(values.begin(), values.end(), 0L);
  std::atomic<long> sum{0};
  pool.parallel_ranges(values.size(), [&](std::size_t b, std::size_t e) {
    long local = 0;
    for (std::size_t i = b; i < e; ++i) local += values[i];
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), std::accumulate(values.begin(), values.end(), 0L));
}

TEST(ThreadPool, SharedPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::shared(), &ThreadPool::shared());
  EXPECT_GE(ThreadPool::shared().size(), 1u);
}

TEST(ThreadPool, ManySmallBatchesDoNotHang) {
  ThreadPool pool(3);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> n{0};
    pool.parallel_for(7, [&](std::size_t) { n.fetch_add(1); });
    ASSERT_EQ(n.load(), 7);
  }
}

}  // namespace
}  // namespace bsr
