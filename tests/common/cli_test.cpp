#include "common/cli.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace bsr {
namespace {

Cli make_cli(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  storage.insert(storage.begin(), "prog");
  static std::vector<char*> argv;
  argv.clear();
  for (auto& s : storage) argv.push_back(s.data());
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, ParsesKeyValue) {
  const Cli cli = make_cli({"--n=4096", "--fact=lu"});
  EXPECT_EQ(cli.get_int("n", 0), 4096);
  EXPECT_EQ(cli.get("fact", ""), "lu");
}

TEST(Cli, BareFlagIsTrue) {
  const Cli cli = make_cli({"--verbose"});
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_TRUE(cli.has("verbose"));
}

TEST(Cli, DefaultsWhenMissing) {
  const Cli cli = make_cli({});
  EXPECT_EQ(cli.get_int("n", 42), 42);
  EXPECT_DOUBLE_EQ(cli.get_double("r", 0.25), 0.25);
  EXPECT_FALSE(cli.has("n"));
}

TEST(Cli, ParsesDouble) {
  const Cli cli = make_cli({"--r=0.15"});
  EXPECT_DOUBLE_EQ(cli.get_double("r", 0.0), 0.15);
}

TEST(Cli, BoolVariants) {
  const Cli cli = make_cli({"--a=true", "--b=0", "--c=yes"});
  EXPECT_TRUE(cli.get_bool("a", false));
  EXPECT_FALSE(cli.get_bool("b", true));
  EXPECT_TRUE(cli.get_bool("c", false));
}

TEST(Cli, RejectsPositional) {
  EXPECT_THROW(make_cli({"positional"}), std::invalid_argument);
}

TEST(Cli, IgnoresBenchmarkFlags) {
  const Cli cli = make_cli({"--benchmark_filter=.*", "--n=8"});
  EXPECT_EQ(cli.get_int("n", 0), 8);
  EXPECT_FALSE(cli.has("benchmark_filter"));
}

}  // namespace
}  // namespace bsr
