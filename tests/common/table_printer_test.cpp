#include "common/table_printer.hpp"

#include <gtest/gtest.h>

namespace bsr {
namespace {

TEST(TablePrinter, FormatsNumbers) {
  EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::fmt(1.0, 0), "1");
}

TEST(TablePrinter, FormatsPercent) {
  EXPECT_EQ(TablePrinter::pct(0.283), "28.3%");
  EXPECT_EQ(TablePrinter::pct(1.0, 0), "100%");
}

TEST(TablePrinter, RendersHeaderAndRows) {
  TablePrinter t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TablePrinter, ToleratesShortRows) {
  TablePrinter t({"a", "b", "c"});
  t.add_row({"only-one"});
  EXPECT_NE(t.to_string().find("only-one"), std::string::npos);
}

TEST(TablePrinter, ColumnsAlignToWidestCell) {
  TablePrinter t({"x"});
  t.add_row({"wide-cell-content"});
  const std::string s = t.to_string();
  // The header line must be padded at least as wide as the widest cell.
  const auto first_newline = s.find('\n');
  EXPECT_GE(first_newline, std::string("wide-cell-content").size());
}

}  // namespace
}  // namespace bsr
