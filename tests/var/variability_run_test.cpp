// The variability subsystem end to end: the off/on contract on both engines,
// bitwise determinism at any sweep thread count, thermal throttling of BSR's
// overclocked lane, per-lane accounting invariants under jitter, and the
// paper's Fig. 8 direction (enhanced prediction beats first-iteration
// profiling under drift).
#include <gtest/gtest.h>

#include <cmath>

#include "bsr/bsr.hpp"
#include "energy/baselines.hpp"
#include "predict/slack_predictor.hpp"
#include "sched/pipeline.hpp"

namespace bsr {
namespace {

RunConfig small_lu() {
  RunConfig cfg;
  cfg.n = 8192;
  cfg.b = 512;
  return cfg;
}

TEST(VariabilityRun, DisabledBlockIsBitwiseTheBaselineSimulator) {
  const RunConfig plain = small_lu();
  RunConfig off = small_lu();
  // A *disabled* block is inert even with every model parameterized: the
  // enabled flag, not the field values, is the contract.
  off.variability.drift = 0.1;
  off.variability.transfer_jitter = 0.3;
  off.variability.boost_budget_s = 1.0;
  off.variability.freq_quantum_mhz = 400;
  const core::RunReport a = run(plain);
  const core::RunReport b = run(off);
  EXPECT_EQ(a.seconds(), b.seconds());
  EXPECT_EQ(a.total_energy_j(), b.total_energy_j());
  EXPECT_EQ(plain.fingerprint(), off.fingerprint());
}

TEST(VariabilityRun, EnabledDriftChangesTheOutcomeDeterministically) {
  RunConfig noisy = small_lu();
  noisy.variability = make_variability("drift");
  const core::RunReport a = run(noisy);
  const core::RunReport b = run(noisy);
  EXPECT_EQ(a.seconds(), b.seconds());  // bitwise repeatable
  EXPECT_EQ(a.total_energy_j(), b.total_energy_j());
  EXPECT_NE(run(small_lu()).seconds(), a.seconds());  // and genuinely on

  RunConfig other_seed = noisy;
  other_seed.seed = 43;
  EXPECT_NE(run(other_seed).seconds(), a.seconds());
  EXPECT_NE(noisy.fingerprint(), small_lu().fingerprint());
}

TEST(VariabilityRun, ClusterRunsAreDeterministicUnderJitter) {
  RunConfig cfg = small_lu();
  cfg.devices = 4;
  cfg.variability = make_variability("jitter");
  const core::RunReport a = run(cfg);
  const core::RunReport b = run(cfg);
  EXPECT_EQ(a.seconds(), b.seconds());
  EXPECT_EQ(a.total_energy_j(), b.total_energy_j());
  ASSERT_EQ(a.device_usage.size(), b.device_usage.size());
  for (std::size_t d = 0; d < a.device_usage.size(); ++d) {
    EXPECT_EQ(a.device_usage[d].energy_j, b.device_usage[d].energy_j);
    EXPECT_EQ(a.device_usage[d].busy_s, b.device_usage[d].busy_s);
  }

  RunConfig off = small_lu();
  off.devices = 4;
  EXPECT_NE(run(off).seconds(), a.seconds());
}

TEST(VariabilityRun, ClusterLaneAccountingStaysClosedUnderJitter) {
  // Per-lane busy + idle + dvfs must still tile the makespan exactly when
  // every duration is jittered — jitter moves work, it must not leak time.
  ClusterConfig cc;
  cc.base = small_lu();
  cc.base.variability = make_variability("hostile");
  cc.devices = 4;
  const cluster::ClusterReport r = run_cluster_detailed(cc);
  const double makespan = r.makespan.seconds();
  const auto check = [makespan](const cluster::DeviceUsage& u) {
    EXPECT_NEAR(u.busy_s + u.idle_s + u.dvfs_s, makespan, 1e-9 * makespan)
        << u.name;
  };
  check(r.host);
  for (const cluster::DeviceUsage& u : r.devices) check(u);
}

TEST(VariabilityRun, SweepIsThreadCountInvariantWithVariabilityOn) {
  const auto sweep = [](int threads) {
    RunConfig base = small_lu();
    base.n = 2048;
    base.b = 128;
    base.variability = make_variability("hostile");
    Sweep s(base);
    s.over(trial_axis(4, /*root_seed=*/1234))
        .over(strategy_axis({"original", "bsr"}))
        .threads(threads);
    return s;
  };
  SweepResult serial = sweep(1).run();
  SweepResult parallel = sweep(4).run();
  ASSERT_EQ(serial.rows.size(), parallel.rows.size());
  ASSERT_EQ(serial.rows.size(), 8u);
  for (std::size_t i = 0; i < serial.rows.size(); ++i) {
    // Bitwise identity: exact double equality, not tolerance. Each trial's
    // variability streams derive from its cell seed, never from the worker.
    EXPECT_EQ(serial.rows[i].report->seconds(),
              parallel.rows[i].report->seconds())
        << "row " << i;
    EXPECT_EQ(serial.rows[i].report->total_energy_j(),
              parallel.rows[i].report->total_energy_j());
  }
  // Different trials genuinely sample different worlds.
  EXPECT_NE(serial.rows[0].report->seconds(),
            serial.rows[2].report->seconds());
}

TEST(VariabilityRun, BoostBudgetThrottlesBsrsOverclockedLane) {
  RunConfig bsr = small_lu();
  bsr.n = 30720;
  bsr.b = 512;
  bsr.strategy = "bsr";
  bsr.reclamation_ratio = 0.5;  // r > 0: BSR overclocks the critical lane
  RunConfig throttled = bsr;
  throttled.variability.enabled = true;
  throttled.variability.boost_budget_s = 0.5;
  throttled.variability.boost_recovery = 0.1;

  const core::RunReport free_run = run(bsr);
  const core::RunReport tight_run = run(throttled);
  const auto boosted_iters = [](const core::RunReport& r) {
    int count = 0;
    for (const auto& o : r.trace.iterations) {
      if (o.gpu_freq > 1300 || o.cpu_freq > 3500) ++count;
    }
    return count;
  };
  // The unthrottled BSR boosts for most of the run; the tight budget forces
  // the overclocked lane back to base for a strictly positive share of it.
  ASSERT_GT(boosted_iters(free_run), 0);
  EXPECT_LT(boosted_iters(tight_run), boosted_iters(free_run));
  // Paying for the boost costs wall time.
  EXPECT_GT(tight_run.seconds(), free_run.seconds());
}

TEST(VariabilityRun, DriftSeparatesThePredictorsFig08Direction) {
  // The acceptance direction of Fig. 8: under calibrated efficiency drift
  // the enhanced predictor's mean absolute prediction error stays strictly
  // below first-iteration profiling's.
  const predict::WorkloadModel wl{predict::Factorization::LU, 16384, 512, 8};
  sched::PipelineConfig cfg;
  cfg.workload = wl;
  cfg.noise.enabled = true;
  cfg.seed = 42;
  cfg.variability = make_variability("drift");
  sched::HybridPipeline pipe(make_platform("paper_default"), cfg);
  predict::FirstIterationPredictor first(wl);
  predict::EnhancedPredictor enhanced(wl);
  energy::OriginalStrategy original;
  double first_err = 0.0;
  double enhanced_err = 0.0;
  int scored = 0;
  for (int k = 0; k < pipe.num_iterations(); ++k) {
    const double pf = first.predict(predict::OpKind::TMU, k);
    const double pe = enhanced.predict(predict::OpKind::TMU, k);
    const sched::IterationOutcome o =
        pipe.run_iteration(k, original.decide(k, pipe));
    if (k >= 1 && o.pu_tmu_base_s > 0.0) {
      first_err += std::abs(pf - o.pu_tmu_base_s) / o.pu_tmu_base_s;
      enhanced_err += std::abs(pe - o.pu_tmu_base_s) / o.pu_tmu_base_s;
      ++scored;
    }
    first.record(predict::OpKind::TMU, k, o.pu_tmu_base_s);
    enhanced.record(predict::OpKind::TMU, k, o.pu_tmu_base_s);
  }
  ASSERT_GT(scored, 10);
  EXPECT_LT(enhanced_err, first_err);
}

TEST(VariabilityRun, PresetRegistryRoundTrips) {
  EXPECT_FALSE(make_variability("off").enabled);
  EXPECT_FALSE(make_variability("none").enabled);  // alias
  EXPECT_TRUE(make_variability("drift").enabled);
  EXPECT_GT(make_variability("fig08").drift, 0.0);  // alias of drift
  EXPECT_GT(make_variability("hostile").boost_budget_s, 0.0);
  EXPECT_THROW((void)make_variability("nope"), std::invalid_argument);
}

TEST(VariabilityRun, ValidationFlowsThroughRunConfig) {
  RunConfig cfg = small_lu();
  cfg.variability.enabled = true;
  cfg.variability.drift = -0.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  try {
    cfg.validate();
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("RunConfig: variability:"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace bsr
