#include "var/models.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "hw/platform.hpp"

namespace bsr::var {
namespace {

Spec enabled_spec() {
  Spec s;
  s.enabled = true;
  s.drift = 0.02;
  s.transfer_jitter = 0.1;
  s.dvfs_jitter = 0.1;
  return s;
}

// ---- validation -------------------------------------------------------------

TEST(Validate, AcceptsDefaultsAndPresLikeSpecs) {
  EXPECT_NO_THROW(validate(Spec{}));
  EXPECT_NO_THROW(validate(enabled_spec()));
}

TEST(Validate, RejectsOutOfRangeFields) {
  const auto expect_reject = [](auto&& mutate, const char* what) {
    Spec s = enabled_spec();
    mutate(s);
    EXPECT_THROW(validate(s), std::invalid_argument) << what;
  };
  expect_reject([](Spec& s) { s.drift = -0.01; }, "negative drift");
  expect_reject([](Spec& s) { s.drift_cap = 0.0; }, "zero drift cap");
  expect_reject([](Spec& s) { s.transfer_jitter = -1.0; },
                "negative transfer jitter");
  expect_reject([](Spec& s) { s.dvfs_jitter = -0.5; }, "negative dvfs jitter");
  expect_reject([](Spec& s) { s.freq_quantum_mhz = -100; },
                "negative quantum");
  expect_reject([](Spec& s) { s.boost_budget_s = -1.0; }, "negative budget");
  expect_reject([](Spec& s) { s.boost_recovery = 0.0; }, "zero recovery");
  const auto nan = std::nan("");
  expect_reject([nan](Spec& s) { s.drift = nan; }, "NaN drift");
}

// ---- fingerprint fragment ---------------------------------------------------

TEST(FingerprintFragment, DisabledCollapsesToConstant) {
  Spec s = enabled_spec();
  s.enabled = false;
  EXPECT_EQ(fingerprint_fragment(s), "var=0");
  EXPECT_EQ(fingerprint_fragment(Spec{}), "var=0");
}

TEST(FingerprintFragment, EveryFieldSignificantWhenEnabled) {
  const std::string base = fingerprint_fragment(enabled_spec());
  const auto differs = [&base](auto&& mutate) {
    Spec s = enabled_spec();
    mutate(s);
    return fingerprint_fragment(s) != base;
  };
  EXPECT_TRUE(differs([](Spec& s) { s.drift = 0.03; }));
  EXPECT_TRUE(differs([](Spec& s) { s.drift_cap = 0.2; }));
  EXPECT_TRUE(differs([](Spec& s) { s.transfer_jitter = 0.2; }));
  EXPECT_TRUE(differs([](Spec& s) { s.dvfs_jitter = 0.2; }));
  EXPECT_TRUE(differs([](Spec& s) { s.freq_quantum_mhz = 200; }));
  EXPECT_TRUE(differs([](Spec& s) { s.boost_budget_s = 3.0; }));
  EXPECT_TRUE(differs([](Spec& s) { s.boost_recovery = 0.9; }));
  EXPECT_TRUE(differs([](Spec& s) { s.seed = 7; }));
}

// ---- stream derivation + drift walks ----------------------------------------

TEST(DeriveStreamSeed, MatchesDeriveCellSeedMixing) {
  // Documented contract: identical splitmix64 mixing as bsr::derive_cell_seed
  // so the two derivation families interleave without collisions.
  const std::uint64_t root = 42;
  std::uint64_t z = root + (std::uint64_t{3} + 1) * 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  EXPECT_EQ(derive_stream_seed(root, 3), z);
  EXPECT_NE(derive_stream_seed(root, 0), derive_stream_seed(root, 1));
  EXPECT_NE(derive_stream_seed(root, 0), derive_stream_seed(root + 1, 0));
}

TEST(DriftWalk, DeterministicAndSeedSensitive) {
  const auto a = drift_walk(1, 40, 0.02, 0.35);
  const auto b = drift_walk(1, 40, 0.02, 0.35);
  const auto c = drift_walk(2, 40, 0.02, 0.35);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(DriftWalk, StartsCleanAndActuallyMoves) {
  const auto w = drift_walk(7, 60, 0.02, 0.35);
  ASSERT_EQ(w.size(), 60u);
  EXPECT_DOUBLE_EQ(w[0], 1.0);  // the profiling reference iteration
  double max_dev = 0.0;
  for (const double f : w) max_dev = std::max(max_dev, std::abs(f - 1.0));
  EXPECT_GT(max_dev, 0.01);  // a real walk, not a constant
}

TEST(DriftWalk, RespectsReflectiveCap) {
  // Huge sigma hammers the boundary; every factor must stay in
  // [exp(-cap), exp(cap)].
  const double cap = 0.1;
  const auto w = drift_walk(3, 500, 0.08, cap);
  for (const double f : w) {
    EXPECT_GE(f, std::exp(-cap) - 1e-12);
    EXPECT_LE(f, std::exp(cap) + 1e-12);
  }
}

TEST(DriftWalk, ZeroSigmaIsAllOnes) {
  for (const double f : drift_walk(9, 30, 0.0, 0.35)) {
    EXPECT_DOUBLE_EQ(f, 1.0);
  }
}

// ---- thermal throttle -------------------------------------------------------

TEST(ThermalThrottle, InactiveGrantsEverything) {
  ThermalThrottle t;  // capacity 0 = unlimited
  EXPECT_FALSE(t.active());
  EXPECT_EQ(t.admit(2100, 1350), 2100);
  t.account(2100, 1350, 1e6, 0.0);
  EXPECT_EQ(t.admit(2100, 1350), 2100);
}

TEST(ThermalThrottle, ExhaustedBudgetPinsToBase) {
  ThermalThrottle t(2.0, 0.5);
  const hw::Mhz base = 1350;
  EXPECT_EQ(t.admit(2100, base), 2100);  // budget available
  t.account(2100, base, 2.5, 0.0);       // 2.5 s of boost drains 2.0 s budget
  EXPECT_EQ(t.admit(2100, base), base);  // throttled
  EXPECT_TRUE(t.throttled());
  EXPECT_EQ(t.admit(1200, base), 1200);  // below-base requests pass through
}

TEST(ThermalThrottle, RecoversWithHysteresis) {
  ThermalThrottle t(2.0, 0.5);
  const hw::Mhz base = 1350;
  t.account(2100, base, 2.0, 0.0);  // drain to exactly 0
  EXPECT_EQ(t.admit(2100, base), base);
  // Recovery at 0.5 s/s: 1 s at base regains 0.5 s — still below the 50%
  // hysteresis threshold (1.0 s), so the lane stays throttled.
  t.account(base, base, 1.0, 0.0);
  EXPECT_EQ(t.admit(2100, base), base);
  // Another second (busy at base) plus idle recovery crosses the threshold.
  t.account(base, base, 1.0, 1.0);
  EXPECT_EQ(t.admit(2100, base), 2100);
  EXPECT_FALSE(t.throttled());
}

TEST(ThermalThrottle, OverdraftIsBoundedByOneCapacity) {
  ThermalThrottle t(1.0, 1.0);
  t.account(2000, 1000, 100.0, 0.0);  // marathon boost
  EXPECT_DOUBLE_EQ(t.budget_s(), -1.0);
  // Two seconds of recovery time climbs back from -1.0 to 1.0 (full).
  t.account(1000, 1000, 0.0, 2.0);
  EXPECT_DOUBLE_EQ(t.budget_s(), 1.0);
}

// ---- LaneVariability --------------------------------------------------------

TEST(LaneVariability, DefaultAndDisabledAreInert) {
  const hw::PlatformProfile p = hw::PlatformProfile::paper_default();
  LaneVariability inert;
  EXPECT_FALSE(inert.enabled());
  EXPECT_DOUBLE_EQ(inert.compute_factor(5), 1.0);
  EXPECT_DOUBLE_EQ(inert.transfer_factor(), 1.0);
  EXPECT_EQ(inert.dvfs_latency(SimTime::from_micros(50)),
            SimTime::from_micros(50));
  // Even a wild out-of-domain request passes through untouched: the caller's
  // own clamping stays the single source of truth when variability is off.
  EXPECT_EQ(inert.admit_clock(99999, p.gpu.freq, true), 99999);

  Spec off = enabled_spec();
  off.enabled = false;
  LaneVariability disabled(off, 42, 1, 60, p.gpu.freq.base_mhz);
  EXPECT_FALSE(disabled.enabled());
  EXPECT_DOUBLE_EQ(disabled.compute_factor(10), 1.0);
  EXPECT_DOUBLE_EQ(disabled.transfer_factor(), 1.0);
}

TEST(LaneVariability, LanesGetDecorrelatedStreams) {
  const hw::PlatformProfile p = hw::PlatformProfile::paper_default();
  const Spec s = enabled_spec();
  LaneVariability cpu(s, 42, 0, 60, p.cpu.freq.base_mhz);
  LaneVariability gpu(s, 42, 1, 60, p.gpu.freq.base_mhz);
  bool any_differs = false;
  for (int k = 1; k < 60; ++k) {
    any_differs |= cpu.compute_factor(k) != gpu.compute_factor(k);
  }
  EXPECT_TRUE(any_differs);
}

TEST(LaneVariability, ExplicitSpecSeedOverridesRunSeed) {
  const hw::PlatformProfile p = hw::PlatformProfile::paper_default();
  Spec pinned = enabled_spec();
  pinned.seed = 777;
  LaneVariability a(pinned, /*run_seed=*/1, 1, 60, p.gpu.freq.base_mhz);
  LaneVariability b(pinned, /*run_seed=*/2, 1, 60, p.gpu.freq.base_mhz);
  for (int k = 0; k < 60; ++k) {
    EXPECT_DOUBLE_EQ(a.compute_factor(k), b.compute_factor(k)) << k;
  }
}

TEST(LaneVariability, QuantizesRequestsTowardBaseOnABaseAnchoredGrid) {
  const hw::PlatformProfile p = hw::PlatformProfile::paper_default();
  Spec s;
  s.enabled = true;
  s.freq_quantum_mhz = 400;
  const hw::Mhz base = p.gpu.freq.base_mhz;  // 1300
  LaneVariability v(s, 42, 1, 60, base);
  // Boost request 1990: delta 690 truncates to 400 above base -> 1700.
  EXPECT_EQ(v.admit_clock(1990, p.gpu.freq, true), base + 400);
  // Down-clock request 990: delta -310 truncates to 0 -> base (keeps clock).
  EXPECT_EQ(v.admit_clock(990, p.gpu.freq, true), base);
  // The base clock itself is always on the grid: a lane that never requests
  // a change (Original strategy) must not be nudged off base.
  EXPECT_EQ(v.admit_clock(base, p.gpu.freq, false), base);
}

TEST(LaneVariability, ThrottleClampsLongBoosts) {
  const hw::PlatformProfile p = hw::PlatformProfile::paper_default();
  Spec s;
  s.enabled = true;
  s.boost_budget_s = 1.0;
  s.boost_recovery = 0.5;
  const hw::Mhz base = p.gpu.freq.base_mhz;
  const hw::Mhz boost = p.gpu.freq.max_oc_mhz;
  LaneVariability v(s, 42, 1, 60, base);
  EXPECT_EQ(v.admit_clock(boost, p.gpu.freq, true), boost);
  v.account(boost, 2.0, 0.0);  // long boost exhausts the budget
  EXPECT_EQ(v.admit_clock(boost, p.gpu.freq, true), base);
}

TEST(LaneVariability, JitterStreamsAreDeterministic) {
  const hw::PlatformProfile p = hw::PlatformProfile::paper_default();
  const Spec s = enabled_spec();
  LaneVariability a(s, 42, 1, 60, p.gpu.freq.base_mhz);
  LaneVariability b(s, 42, 1, 60, p.gpu.freq.base_mhz);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.transfer_factor(), b.transfer_factor());
    EXPECT_EQ(a.dvfs_latency(SimTime::from_micros(50)),
              b.dvfs_latency(SimTime::from_micros(50)));
  }
  // Jitter is real: ten draws cannot all equal 1.
  LaneVariability c(s, 42, 1, 60, p.gpu.freq.base_mhz);
  bool moved = false;
  for (int i = 0; i < 10; ++i) moved |= c.transfer_factor() != 1.0;
  EXPECT_TRUE(moved);
}

}  // namespace
}  // namespace bsr::var
