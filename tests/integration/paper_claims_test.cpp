// Paper-claims regression suite: each test pins one published qualitative
// claim to the simulator so refactors cannot silently break the reproduction.
// Quantitative bands are generous — the goal is shape, not absolute numbers.
#include <gtest/gtest.h>

#include "core/decomposer.hpp"

namespace bsr::core {
namespace {

RunOptions paper_opts(predict::Factorization f, StrategyKind s, double r = 0.0) {
  RunOptions o;
  o.factorization = f;
  o.n = 30720;
  o.b = 512;
  o.strategy = s;
  o.reclamation_ratio = r;
  return o;
}

class PaperEnergySaving : public ::testing::TestWithParam<predict::Factorization> {
};

TEST_P(PaperEnergySaving, BsrSavesTwentyToFortyPercent) {
  // Fig. 12(a): 28.2%-30.7% at n=30720 on the authors' testbed; we accept a
  // generous band around that.
  const Decomposer dec;
  const RunReport org = dec.run(paper_opts(GetParam(), StrategyKind::Original));
  const RunReport bsr = dec.run(paper_opts(GetParam(), StrategyKind::BSR));
  const double saving = bsr.energy_saving_vs(org);
  EXPECT_GT(saving, 0.18) << predict::to_string(GetParam());
  EXPECT_LT(saving, 0.45) << predict::to_string(GetParam());
}

TEST_P(PaperEnergySaving, BsrBeatsSrByMeaningfulMargin) {
  // Fig. 11/12: BSR saves 9.6%-11.7% more than SR (of total energy).
  const Decomposer dec;
  const RunReport org = dec.run(paper_opts(GetParam(), StrategyKind::Original));
  const RunReport sr = dec.run(paper_opts(GetParam(), StrategyKind::SR));
  const RunReport bsr = dec.run(paper_opts(GetParam(), StrategyKind::BSR));
  const double margin = bsr.energy_saving_vs(org) - sr.energy_saving_vs(org);
  EXPECT_GT(margin, 0.02) << predict::to_string(GetParam());
  EXPECT_LT(margin, 0.25) << predict::to_string(GetParam());
}

TEST_P(PaperEnergySaving, Ed2pOrderingHolds) {
  // Fig. 12(b): BSR reduces ED2P more than SR more than R2H.
  const Decomposer dec;
  const RunReport org = dec.run(paper_opts(GetParam(), StrategyKind::Original));
  const RunReport r2h = dec.run(paper_opts(GetParam(), StrategyKind::R2H));
  const RunReport sr = dec.run(paper_opts(GetParam(), StrategyKind::SR));
  const RunReport bsr = dec.run(paper_opts(GetParam(), StrategyKind::BSR));
  EXPECT_GT(bsr.ed2p_reduction_vs(org), sr.ed2p_reduction_vs(org));
  EXPECT_GT(sr.ed2p_reduction_vs(org), r2h.ed2p_reduction_vs(org));
  EXPECT_GT(r2h.ed2p_reduction_vs(org), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllFactorizations, PaperEnergySaving,
                         ::testing::Values(predict::Factorization::Cholesky,
                                           predict::Factorization::LU,
                                           predict::Factorization::QR));

TEST(PaperClaims, SlackFlipsFromCpuToGpuSide) {
  // Fig. 2 / Fig. 10: CPU-side slack at iteration 2, GPU-side at iteration 50.
  const Decomposer dec;
  const RunReport org =
      dec.run(paper_opts(predict::Factorization::LU, StrategyKind::Original));
  EXPECT_GT(org.trace.iterations[2].slack.seconds(), 0.0);
  EXPECT_LT(org.trace.iterations[50].slack.seconds(), 0.0);
}

TEST(PaperClaims, AdaptiveAbftFrequencyStaircase) {
  // Fig. 9 narrative (r=0.25): fault-free clocks early; single-side in a
  // middle band; full checksums at the top clocks late.
  const Decomposer dec;
  const RunReport r = dec.run(
      paper_opts(predict::Factorization::LU, StrategyKind::BSR, 0.25));
  const auto& iters = r.trace.iterations;
  // Find the first protected iteration; everything before must be unprotected.
  int first_protected = -1;
  for (std::size_t k = 0; k < iters.size(); ++k) {
    if (iters[k].abft_mode != abft::ChecksumMode::None) {
      first_protected = static_cast<int>(k);
      break;
    }
  }
  ASSERT_GT(first_protected, 10) << "protection must start late";
  // Full checksums (if any) must not precede single-side protection.
  int first_full = -1;
  int first_single = -1;
  for (std::size_t k = 0; k < iters.size(); ++k) {
    if (first_single < 0 &&
        iters[k].abft_mode == abft::ChecksumMode::SingleSide) {
      first_single = static_cast<int>(k);
    }
    if (first_full < 0 && iters[k].abft_mode == abft::ChecksumMode::Full) {
      first_full = static_cast<int>(k);
    }
  }
  if (first_full >= 0 && first_single >= 0) {
    EXPECT_LT(first_single, first_full);
  }
}

TEST(PaperClaims, AdaptiveOverheadBelowAlwaysOnFull) {
  // Fig. 9: adaptive ABFT ~4% overhead vs ~12% for always-on full checksums.
  const Decomposer dec;
  const RunOptions o =
      paper_opts(predict::Factorization::LU, StrategyKind::BSR, 0.25);
  const RunReport none = dec.run(o, ExtendedOptions{AbftPolicy::ForceNone});
  const RunReport full = dec.run(o, ExtendedOptions{AbftPolicy::ForceFull});
  const RunReport adaptive = dec.run(o);
  const double oh_full = full.seconds() / none.seconds() - 1.0;
  const double oh_adaptive = adaptive.seconds() / none.seconds() - 1.0;
  EXPECT_LT(oh_adaptive, 0.6 * oh_full);
  EXPECT_GT(oh_full, 0.02);
  EXPECT_LT(oh_full, 0.25);
}

TEST(PaperClaims, ParetoFrontierEnergyRisesWithR) {
  // Fig. 11: along the front, energy consumption grows as r buys performance.
  const Decomposer dec;
  double prev_energy = 0.0;
  for (double r : {0.0, 0.15, 0.3}) {
    const RunReport rep = dec.run(
        paper_opts(predict::Factorization::Cholesky, StrategyKind::BSR, r));
    EXPECT_GT(rep.total_energy_j(), prev_energy);
    prev_energy = rep.total_energy_j();
  }
}

TEST(PaperClaims, EnergySavingGrowsWithMatrixSizeThenSaturates) {
  // Fig. 13 shape: small matrices are hard to save on.
  const Decomposer dec;
  std::vector<double> savings;
  for (std::int64_t n : {5120, 10240, 20480, 30720}) {
    RunOptions o = paper_opts(predict::Factorization::LU, StrategyKind::Original);
    o.n = n;
    o.b = tuned_block(n);
    const RunReport org = dec.run(o);
    o.strategy = StrategyKind::BSR;
    savings.push_back(dec.run(o).energy_saving_vs(org));
  }
  EXPECT_LT(savings.front(), savings.back());
  for (double s : savings) EXPECT_GT(s, 0.0);
}

}  // namespace
}  // namespace bsr::core
