// Property sweeps over the strategy layer: invariants that must hold for
// every (factorization, size, reclamation ratio, seed) combination, not just
// the calibrated defaults.
#include <gtest/gtest.h>

#include <tuple>

#include "core/decomposer.hpp"

namespace bsr::core {
namespace {

class StrategyGrid
    : public ::testing::TestWithParam<
          std::tuple<predict::Factorization, std::int64_t, double>> {};

TEST_P(StrategyGrid, BsrNeverSlowerAndNeverProtectsFaultFreeClocks) {
  const auto [fact, n, r] = GetParam();
  const Decomposer dec;
  RunOptions o;
  o.factorization = fact;
  o.n = n;
  o.b = tuned_block(n);
  o.strategy = StrategyKind::Original;
  const RunReport org = dec.run(o);
  o.strategy = StrategyKind::BSR;
  o.reclamation_ratio = r;
  const RunReport bsr = dec.run(o);

  // Performance guard: BSR must not lose more than a sliver to Original.
  EXPECT_LT(bsr.seconds(), org.seconds() * 1.03)
      << predict::to_string(fact) << " n=" << n << " r=" << r;

  // Protection exactly matches exposure: ABFT on <=> clock above fault-free.
  const hw::Mhz ff = dec.platform().gpu.fault_free_max();
  for (const auto& it : bsr.trace.iterations) {
    if (it.gpu_freq > ff) {
      EXPECT_NE(it.abft_mode, abft::ChecksumMode::None)
          << "iter " << it.k << " at " << it.gpu_freq;
    } else {
      EXPECT_EQ(it.abft_mode, abft::ChecksumMode::None)
          << "iter " << it.k << " at " << it.gpu_freq;
    }
  }

  // Energy accounting is self-consistent.
  double sum = 0.0;
  for (const auto& it : bsr.trace.iterations) sum += it.energy_j();
  EXPECT_NEAR(sum, bsr.total_energy_j(), 1e-6 * bsr.total_energy_j());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, StrategyGrid,
    ::testing::Combine(::testing::Values(predict::Factorization::Cholesky,
                                         predict::Factorization::LU,
                                         predict::Factorization::QR),
                       ::testing::Values<std::int64_t>(8192, 30720),
                       ::testing::Values(0.0, 0.15, 0.3)));

class SeedSweep : public ::testing::TestWithParam<int> {};

TEST_P(SeedSweep, OrderingRobustToNoiseRealization) {
  // The BSR > SR > R2H energy ordering must survive any noise seed.
  const Decomposer dec;
  RunOptions o;
  o.n = 30720;
  o.b = 512;
  o.seed = static_cast<std::uint64_t>(GetParam()) * 7919 + 3;
  o.strategy = StrategyKind::Original;
  const RunReport org = dec.run(o);
  o.strategy = StrategyKind::R2H;
  const RunReport r2h = dec.run(o);
  o.strategy = StrategyKind::SR;
  const RunReport sr = dec.run(o);
  o.strategy = StrategyKind::BSR;
  const RunReport bsr = dec.run(o);
  EXPECT_LT(bsr.total_energy_j(), sr.total_energy_j());
  EXPECT_LT(sr.total_energy_j(), r2h.total_energy_j());
  EXPECT_LT(r2h.total_energy_j(), org.total_energy_j());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Range(1, 9));

class BlockSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(BlockSweep, PipelineInvariantsAcrossBlockSizes) {
  const std::int64_t b = GetParam();
  const Decomposer dec;
  RunOptions o;
  o.n = 16384;
  o.b = b;
  o.strategy = StrategyKind::BSR;
  const RunReport r = dec.run(o);
  const int expected_iters = static_cast<int>((o.n + b - 1) / b);
  EXPECT_EQ(static_cast<int>(r.trace.iterations.size()), expected_iters);
  for (const auto& it : r.trace.iterations) {
    EXPECT_GE(it.span.ns(), 0);
    EXPECT_EQ(it.span, max(it.cpu_lane, it.gpu_lane));
    EXPECT_GE(it.cpu_energy_j, 0.0);
    EXPECT_GE(it.gpu_energy_j, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Blocks, BlockSweep,
                         ::testing::Values<std::int64_t>(128, 256, 512, 1024,
                                                         2048));

TEST(StrategyProperty, MonotoneEnergyInReclamationRatio) {
  // Along the r sweep, energy must be non-decreasing (Pareto frontier shape)
  // up to small DVFS-grid plateaus.
  const Decomposer dec;
  RunOptions o;
  o.n = 30720;
  o.b = 512;
  o.strategy = StrategyKind::BSR;
  double prev = 0.0;
  for (double r = 0.0; r <= 0.45; r += 0.05) {
    o.reclamation_ratio = r;
    const double e = dec.run(o).total_energy_j();
    EXPECT_GE(e, prev * 0.995) << "r=" << r;  // allow rounding plateaus
    prev = e;
  }
}

TEST(StrategyProperty, TimingModeIndependentOfExecutionMode) {
  // The schedule must be a pure function of options, not of whether the
  // numerics run alongside (numeric runs at a small size for speed).
  const Decomposer dec;
  RunOptions o;
  o.n = 192;
  o.b = 32;
  o.strategy = StrategyKind::SR;
  o.mode = ExecutionMode::TimingOnly;
  const RunReport t = dec.run(o);
  o.mode = ExecutionMode::Numeric;
  const RunReport m = dec.run(o);
  ASSERT_EQ(t.trace.iterations.size(), m.trace.iterations.size());
  for (std::size_t k = 0; k < t.trace.iterations.size(); ++k) {
    EXPECT_EQ(t.trace.iterations[k].span, m.trace.iterations[k].span);
    EXPECT_EQ(t.trace.iterations[k].gpu_freq, m.trace.iterations[k].gpu_freq);
  }
}

}  // namespace
}  // namespace bsr::core
