// End-to-end integration: the whole stack (strategies, pipeline, predictors,
// ABFT, fault injection, numerics) exercised through the public facade.
#include <gtest/gtest.h>

#include "core/decomposer.hpp"
#include "energy/pareto.hpp"

namespace bsr::core {
namespace {

TEST(EndToEnd, FullMatrixOfStrategiesAndFactorizations) {
  const Decomposer dec;
  for (auto f : {predict::Factorization::Cholesky, predict::Factorization::LU,
                 predict::Factorization::QR}) {
    RunOptions base;
    base.factorization = f;
    base.n = 16384;
    base.b = 512;
    base.strategy = StrategyKind::Original;
    const RunReport org = dec.run(base);
    for (auto s : {StrategyKind::R2H, StrategyKind::SR, StrategyKind::BSR}) {
      RunOptions o = base;
      o.strategy = s;
      const RunReport r = dec.run(o);
      EXPECT_GT(r.energy_saving_vs(org), 0.0)
          << predict::to_string(f) << "/" << to_string(s);
      EXPECT_LT(r.seconds(), org.seconds() * 1.06)
          << predict::to_string(f) << "/" << to_string(s);
    }
  }
}

TEST(EndToEnd, ParetoSweepIsMonotoneInPerformance) {
  // Fig. 11: raising r buys performance.
  const Decomposer dec;
  double prev_time = 1e300;
  for (double r : {0.0, 0.1, 0.2, 0.3}) {
    RunOptions o;
    o.n = 30720;
    o.b = 512;
    o.strategy = StrategyKind::BSR;
    o.reclamation_ratio = r;
    const double t = dec.run(o).seconds();
    EXPECT_LT(t, prev_time * 1.005) << "r=" << r;
    prev_time = t;
  }
}

TEST(EndToEnd, MaxPerformanceImprovementIsSubstantial) {
  // Paper: up to 1.38x-1.51x vs Original with equal-or-less energy.
  const Decomposer dec;
  RunOptions o;
  o.n = 30720;
  o.b = 512;
  o.strategy = StrategyKind::Original;
  const RunReport org = dec.run(o);
  o.strategy = StrategyKind::BSR;
  o.reclamation_ratio = 0.3;
  const RunReport bsr = dec.run(o);
  EXPECT_GT(bsr.speedup_vs(org), 1.1);
}

TEST(EndToEnd, SmallMatricesSaveLess) {
  // Fig. 13: energy saving shrinks for small inputs.
  const Decomposer dec;
  auto saving_at = [&](std::int64_t n) {
    RunOptions o;
    o.n = n;
    o.b = tuned_block(n);  // the paper tunes the block size per input size
    o.strategy = StrategyKind::Original;
    const RunReport org = dec.run(o);
    o.strategy = StrategyKind::BSR;
    return dec.run(o).energy_saving_vs(org);
  };
  EXPECT_GT(saving_at(30720), saving_at(5120));
}

TEST(EndToEnd, NumericBsrRunMatchesTimingBsrSchedule) {
  // The numeric path must not perturb the timing path: same options give the
  // same trace whether or not real math runs alongside.
  const Decomposer dec;
  RunOptions o;
  o.factorization = predict::Factorization::LU;
  o.n = 256;
  o.b = 32;
  o.strategy = StrategyKind::BSR;
  o.reclamation_ratio = 0.2;
  o.mode = ExecutionMode::TimingOnly;
  const RunReport timing = dec.run(o);
  o.mode = ExecutionMode::Numeric;
  const RunReport numeric = dec.run(o);
  ASSERT_EQ(timing.trace.iterations.size(), numeric.trace.iterations.size());
  EXPECT_EQ(timing.trace.total_time, numeric.trace.total_time);
  EXPECT_DOUBLE_EQ(timing.total_energy_j(), numeric.total_energy_j());
}

TEST(EndToEnd, AnalyticRStarAgreesWithSweptKnee) {
  // The Newton/bisection r* from the closed forms should sit near the
  // empirical energy-neutral point of a BSR r-sweep.
  const Decomposer dec;
  RunOptions o;
  o.n = 30720;
  o.b = 512;
  o.strategy = StrategyKind::Original;
  const RunReport org = dec.run(o);
  const double r_star =
      energy::average_energy_neutral_r(org.trace, dec.platform());
  EXPECT_GT(r_star, 0.05);
  EXPECT_LT(r_star, 0.8);
  // At r just below r*, BSR should still not exceed Original's energy.
  o.strategy = StrategyKind::BSR;
  o.reclamation_ratio = std::max(0.0, r_star - 0.1);
  const RunReport near_knee = dec.run(o);
  EXPECT_LE(near_knee.total_energy_j(), org.total_energy_j() * 1.02);
}

}  // namespace
}  // namespace bsr::core
