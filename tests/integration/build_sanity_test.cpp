// Build smoke test: the README quickstart path — a Decomposer with the
// paper-default platform run under paper-default RunOptions — must produce a
// finite, positive-energy report for all three factorizations. This is the
// first test a fresh checkout should pass; if it fails, the build or the
// default configuration is broken, not the numerics.
#include <cmath>

#include <gtest/gtest.h>

#include "core/decomposer.hpp"

namespace {

using bsr::core::Decomposer;
using bsr::core::RunOptions;
using bsr::core::RunReport;
using bsr::predict::Factorization;

class BuildSanity : public ::testing::TestWithParam<Factorization> {};

TEST_P(BuildSanity, PaperDefaultRunReportsFiniteEnergy) {
  const Decomposer decomposer;  // paper-default platform

  RunOptions options;  // paper defaults: n=30720, b=512, BSR, timing-only
  options.factorization = GetParam();

  const RunReport report = decomposer.run(options);

  EXPECT_TRUE(std::isfinite(report.total_energy_j()));
  EXPECT_GT(report.total_energy_j(), 0.0);
  EXPECT_TRUE(std::isfinite(report.seconds()));
  EXPECT_GT(report.seconds(), 0.0);
  EXPECT_TRUE(std::isfinite(report.ed2p()));
  EXPECT_GT(report.gflops(), 0.0);
  EXPECT_FALSE(report.trace.iterations.empty());
}

INSTANTIATE_TEST_SUITE_P(AllFactorizations, BuildSanity,
                         ::testing::Values(Factorization::Cholesky,
                                           Factorization::LU,
                                           Factorization::QR),
                         [](const auto& info) {
                           switch (info.param) {
                             case Factorization::Cholesky: return "Cholesky";
                             case Factorization::LU: return "LU";
                             case Factorization::QR: return "QR";
                           }
                           return "Unknown";
                         });

}  // namespace
