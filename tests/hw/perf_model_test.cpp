#include "hw/perf_model.hpp"

#include <gtest/gtest.h>

namespace bsr::hw {
namespace {

FrequencyDomain dom() {
  return {.min_mhz = 300,
          .base_mhz = 1300,
          .max_default_mhz = 1300,
          .max_oc_mhz = 2200,
          .step_mhz = 100};
}

PerfModel gpu_perf() {
  return {.blas3_gflops_base = 420.0,
          .panel_gflops_base = 60.0,
          .checksum_gflops_base = 70.0,
          .mem_bandwidth_gbs = 616.0,
          .freq_exponent = 1.0};
}

TEST(PerfModel, BaseRates) {
  const PerfModel p = gpu_perf();
  EXPECT_DOUBLE_EQ(p.gflops(KernelClass::Blas3, 1300, dom()), 420.0);
  EXPECT_DOUBLE_EQ(p.gflops(KernelClass::Panel, 1300, dom()), 60.0);
  EXPECT_DOUBLE_EQ(p.gflops(KernelClass::ChecksumUpdate, 1300, dom()), 70.0);
}

TEST(PerfModel, LinearFrequencyScaling) {
  const PerfModel p = gpu_perf();
  EXPECT_NEAR(p.gflops(KernelClass::Blas3, 2600, dom()), 840.0, 1e-9);
  EXPECT_NEAR(p.gflops(KernelClass::Blas3, 650, dom()), 210.0, 1e-9);
}

TEST(PerfModel, TimeForFlopsInverse) {
  const PerfModel p = gpu_perf();
  // 420 GFLOP at 420 GFLOP/s = 1 s.
  EXPECT_NEAR(p.time_for_flops(420e9, KernelClass::Blas3, 1300, dom()).seconds(),
              1.0, 1e-9);
  // Doubling the clock halves the time.
  EXPECT_NEAR(p.time_for_flops(420e9, KernelClass::Blas3, 2600, dom()).seconds(),
              0.5, 1e-9);
}

TEST(PerfModel, ZeroFlopsIsZeroTime) {
  const PerfModel p = gpu_perf();
  EXPECT_EQ(p.time_for_flops(0.0, KernelClass::Blas3, 1300, dom()),
            SimTime::zero());
  EXPECT_EQ(p.time_for_bytes(0.0, 1300, dom()), SimTime::zero());
}

TEST(PerfModel, BandwidthPassScalesWeaklyWithClock) {
  const PerfModel p = gpu_perf();
  const double t_base = p.time_for_bytes(616e9, 1300, dom()).seconds();
  EXPECT_NEAR(t_base, 1.0, 1e-9);
  const double t_oc = p.time_for_bytes(616e9, 2200, dom()).seconds();
  EXPECT_LT(t_oc, t_base);        // some improvement
  EXPECT_GT(t_oc, t_base * 0.8);  // but nowhere near 1300/2200
}

TEST(PerfModel, SublinearExponent) {
  PerfModel p = gpu_perf();
  p.freq_exponent = 0.9;
  const double r = p.gflops(KernelClass::Blas3, 2600, dom()) / 420.0;
  EXPECT_LT(r, 2.0);
  EXPECT_GT(r, 1.8);
}

}  // namespace
}  // namespace bsr::hw
