#include "hw/energy_meter.hpp"

#include <gtest/gtest.h>

namespace bsr::hw {
namespace {

TEST(EnergyMeter, IntegratesJoules) {
  EnergyMeter m;
  m.record(DeviceId::Cpu, SimTime::zero(), SimTime::from_seconds(2.0), 50.0,
           "PD");
  EXPECT_DOUBLE_EQ(m.total_joules(), 100.0);
  EXPECT_DOUBLE_EQ(m.joules(DeviceId::Cpu), 100.0);
  EXPECT_DOUBLE_EQ(m.joules(DeviceId::Gpu), 0.0);
}

TEST(EnergyMeter, PerTagBreakdown) {
  EnergyMeter m;
  m.record(DeviceId::Gpu, SimTime::zero(), SimTime::from_seconds(1.0), 200.0,
           "TMU+PU");
  m.record(DeviceId::Gpu, SimTime::from_seconds(1.0), SimTime::from_seconds(0.5),
           100.0, "idle");
  EXPECT_DOUBLE_EQ(m.joules(DeviceId::Gpu, "TMU+PU"), 200.0);
  EXPECT_DOUBLE_EQ(m.joules(DeviceId::Gpu, "idle"), 50.0);
  EXPECT_DOUBLE_EQ(m.joules(DeviceId::Gpu, "missing"), 0.0);
}

TEST(EnergyMeter, IgnoresNonPositiveDurations) {
  EnergyMeter m;
  m.record(DeviceId::Cpu, SimTime::zero(), SimTime::zero(), 100.0, "x");
  m.record(DeviceId::Cpu, SimTime::zero(), SimTime::from_seconds(-1.0), 100.0,
           "x");
  EXPECT_DOUBLE_EQ(m.total_joules(), 0.0);
  EXPECT_TRUE(m.segments().empty());
}

TEST(EnergyMeter, ClearResets) {
  EnergyMeter m;
  m.record(DeviceId::Cpu, SimTime::zero(), SimTime::from_seconds(1.0), 10.0, "a");
  m.clear();
  EXPECT_DOUBLE_EQ(m.total_joules(), 0.0);
  EXPECT_TRUE(m.segments().empty());
  EXPECT_DOUBLE_EQ(m.joules(DeviceId::Cpu, "a"), 0.0);
}

TEST(EnergyMeter, SegmentsPreserveOrderAndFields) {
  EnergyMeter m;
  m.record(DeviceId::Cpu, SimTime::from_seconds(1.0), SimTime::from_seconds(2.0),
           30.0, "PD");
  ASSERT_EQ(m.segments().size(), 1u);
  const auto& s = m.segments()[0];
  EXPECT_EQ(s.device, DeviceId::Cpu);
  EXPECT_DOUBLE_EQ(s.start.seconds(), 1.0);
  EXPECT_DOUBLE_EQ(s.duration.seconds(), 2.0);
  EXPECT_DOUBLE_EQ(s.power_w, 30.0);
  EXPECT_EQ(s.tag, "PD");
}

}  // namespace
}  // namespace bsr::hw
