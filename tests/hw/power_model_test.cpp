#include "hw/power_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace bsr::hw {
namespace {

FrequencyDomain dom() {
  return {.min_mhz = 800,
          .base_mhz = 3500,
          .max_default_mhz = 4500,
          .max_oc_mhz = 4500,
          .step_mhz = 100};
}

PowerModel cpu_power() {
  return {.total_power_base_w = 95.0,
          .dynamic_fraction = 0.65,
          .idle_activity = 0.12,
          .exponent = 2.4};
}

TEST(PowerModel, StaticDynamicSplit) {
  const PowerModel p = cpu_power();
  EXPECT_NEAR(p.static_power(), 95.0 * 0.35, 1e-12);
  EXPECT_NEAR(p.dynamic_power_base(), 95.0 * 0.65, 1e-12);
}

TEST(PowerModel, BusyPowerAtBaseEqualsTotal) {
  const PowerModel p = cpu_power();
  const GuardbandModel g{};
  EXPECT_NEAR(p.busy_power(3500, Guardband::Default, g, dom()), 95.0, 1e-9);
}

TEST(PowerModel, BusyPowerFollowsF24) {
  const PowerModel p = cpu_power();
  const GuardbandModel g{};
  const double at_half =
      p.busy_power(1750, Guardband::Default, g, dom());
  const double expected =
      p.static_power() + p.dynamic_power_base() * std::pow(0.5, 2.4);
  EXPECT_NEAR(at_half, expected, 1e-9);
}

TEST(PowerModel, OptimizedGuardbandCutsBusyPower) {
  const PowerModel p = cpu_power();
  const GuardbandModel g{.alpha_floor = 0.84, .alpha_ceiling = 1.0, .shape = 2.2};
  EXPECT_LT(p.busy_power(3500, Guardband::Optimized, g, dom()),
            p.busy_power(3500, Guardband::Default, g, dom()));
}

TEST(PowerModel, IdleBelowBusyEverywhere) {
  const PowerModel p = cpu_power();
  const GuardbandModel g{};
  for (Mhz f = 800; f <= 4500; f += 100) {
    EXPECT_LT(p.idle_power(f, dom()),
              p.busy_power(f, Guardband::Default, g, dom()));
  }
}

TEST(PowerModel, IdleAtFloorIsNearStatic) {
  const PowerModel p = cpu_power();
  const double idle_floor = p.idle_power(800, dom());
  EXPECT_LT(idle_floor, p.static_power() * 1.1);
  EXPECT_GE(idle_floor, p.static_power());
}

TEST(PowerModel, FrequencyScaleIdentity) {
  const PowerModel p = cpu_power();
  EXPECT_DOUBLE_EQ(p.frequency_scale(3500, 3500), 1.0);
  EXPECT_NEAR(p.frequency_scale(7000, 3500), std::pow(2.0, 2.4), 1e-12);
}

}  // namespace
}  // namespace bsr::hw
