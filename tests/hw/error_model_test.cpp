#include "hw/error_model.hpp"

#include <gtest/gtest.h>

#include <map>

namespace bsr::hw {
namespace {

FrequencyDomain dom() {
  return {.min_mhz = 300,
          .base_mhz = 1300,
          .max_default_mhz = 1300,
          .max_oc_mhz = 2200,
          .step_mhz = 100};
}

ErrorRateModel model() {
  return ErrorRateModel(std::map<Mhz, ErrorRates>{
      {1700, {.d0 = 0.0, .d1 = 0.0, .d2 = 0.0}},
      {1800, {.d0 = 0.03, .d1 = 0.0, .d2 = 0.0}},
      {2000, {.d0 = 0.30, .d1 = 0.010, .d2 = 1e-7}},
      {2200, {.d0 = 1.80, .d1 = 0.080, .d2 = 5e-7}},
  });
}

TEST(ErrorModel, DefaultGuardbandIsAlwaysFaultFree) {
  const ErrorRateModel m = model();
  for (Mhz f = 300; f <= 2200; f += 100) {
    EXPECT_TRUE(m.rates(f, Guardband::Default).fault_free()) << f;
  }
}

TEST(ErrorModel, BelowTableIsFaultFree) {
  const ErrorRateModel m = model();
  EXPECT_TRUE(m.rates(1300, Guardband::Optimized).fault_free());
  EXPECT_TRUE(m.rates(1700, Guardband::Optimized).fault_free());
}

TEST(ErrorModel, ExactGridPointsMatchTable) {
  const ErrorRateModel m = model();
  EXPECT_DOUBLE_EQ(m.lambda(1800, ErrType::D0, Guardband::Optimized), 0.03);
  EXPECT_DOUBLE_EQ(m.lambda(2200, ErrType::D1, Guardband::Optimized), 0.080);
}

TEST(ErrorModel, InterpolatesBetweenGridPoints) {
  const ErrorRateModel m = model();
  // 1900 between 1800 (0.03) and 2000 (0.30): midpoint.
  EXPECT_NEAR(m.lambda(1900, ErrType::D0, Guardband::Optimized), 0.165, 1e-12);
}

TEST(ErrorModel, ExtrapolatesFlatAboveTable) {
  const ErrorRateModel m = model();
  EXPECT_DOUBLE_EQ(m.lambda(2300, ErrType::D0, Guardband::Optimized), 1.80);
}

TEST(ErrorModel, RatesGrowWithFrequency) {
  const ErrorRateModel m = model();
  double prev = -1.0;
  for (Mhz f = 1700; f <= 2200; f += 100) {
    const double t = m.rates(f, Guardband::Optimized).total();
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(ErrorModel, FaultFreeMaxFindsThreshold) {
  const ErrorRateModel m = model();
  EXPECT_EQ(m.fault_free_max(dom()), 1700);
}

TEST(ErrorModel, EmptyModelIsAlwaysFaultFree) {
  const ErrorRateModel m{};
  EXPECT_TRUE(m.rates(2200, Guardband::Optimized).fault_free());
  EXPECT_EQ(m.fault_free_max(dom()), 2200);
}

TEST(ErrorRates, AccessorsAndTotal) {
  const ErrorRates r{.d0 = 1.0, .d1 = 0.5, .d2 = 0.25};
  EXPECT_DOUBLE_EQ(r.of(ErrType::D0), 1.0);
  EXPECT_DOUBLE_EQ(r.of(ErrType::D1), 0.5);
  EXPECT_DOUBLE_EQ(r.of(ErrType::D2), 0.25);
  EXPECT_DOUBLE_EQ(r.total(), 1.75);
  EXPECT_FALSE(r.fault_free());
}

}  // namespace
}  // namespace bsr::hw
