#include "hw/dvfs.hpp"

#include <gtest/gtest.h>

namespace bsr::hw {
namespace {

FrequencyDomain dom() {
  return {.min_mhz = 300,
          .base_mhz = 1300,
          .max_default_mhz = 1300,
          .max_oc_mhz = 2200,
          .step_mhz = 100};
}

TEST(Dvfs, StartsAtBase) {
  DvfsController c(dom(), SimTime::from_millis(8.0));
  EXPECT_EQ(c.current(), 1300);
  EXPECT_EQ(c.transitions(), 0);
}

TEST(Dvfs, TransitionChargesLatency) {
  DvfsController c(dom(), SimTime::from_millis(8.0));
  EXPECT_EQ(c.set_frequency(1000), SimTime::from_millis(8.0));
  EXPECT_EQ(c.current(), 1000);
  EXPECT_EQ(c.transitions(), 1);
}

TEST(Dvfs, NoChangeIsFree) {
  DvfsController c(dom(), SimTime::from_millis(8.0));
  EXPECT_EQ(c.set_frequency(1300), SimTime::zero());
  EXPECT_EQ(c.transitions(), 0);
}

TEST(Dvfs, DefaultGuardbandBlocksOverclock) {
  DvfsController c(dom(), SimTime::from_millis(1.0));
  c.set_frequency(2200);
  EXPECT_EQ(c.current(), 1300);  // clamped
  c.set_guardband(Guardband::Optimized);
  c.set_frequency(2200);
  EXPECT_EQ(c.current(), 2200);
}

TEST(Dvfs, RevokingGuardbandClampsBack) {
  DvfsController c(dom(), SimTime::from_millis(1.0));
  c.set_guardband(Guardband::Optimized);
  c.set_frequency(2000);
  EXPECT_EQ(c.current(), 2000);
  c.set_guardband(Guardband::Default);
  EXPECT_EQ(c.current(), 1300);
}

TEST(Dvfs, ClampToFloor) {
  DvfsController c(dom(), SimTime::from_millis(1.0));
  c.set_frequency(100);
  EXPECT_EQ(c.current(), 300);
}

}  // namespace
}  // namespace bsr::hw
