#include "hw/profile_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace bsr::hw {
namespace {

TEST(ProfileIo, SaveLoadRoundTripPreservesModels) {
  const PlatformProfile original = PlatformProfile::paper_default();
  std::stringstream ss;
  save_profile(original, ss);
  const PlatformProfile loaded = load_profile(ss);

  EXPECT_EQ(loaded.cpu.name, original.cpu.name);
  EXPECT_EQ(loaded.cpu.freq.base_mhz, original.cpu.freq.base_mhz);
  EXPECT_DOUBLE_EQ(loaded.cpu.power.total_power_base_w,
                   original.cpu.power.total_power_base_w);
  EXPECT_DOUBLE_EQ(loaded.gpu.perf.blas3_gflops_base,
                   original.gpu.perf.blas3_gflops_base);
  EXPECT_DOUBLE_EQ(loaded.gpu.guardband.alpha_floor,
                   original.gpu.guardband.alpha_floor);
  EXPECT_EQ(loaded.gpu.dvfs_latency, original.gpu.dvfs_latency);
  EXPECT_DOUBLE_EQ(loaded.link.bandwidth_gbs, original.link.bandwidth_gbs);
  // Error table survives.
  for (Mhz f = 1700; f <= 2200; f += 100) {
    const auto a = original.gpu.errors.rates(f, Guardband::Optimized);
    const auto b = loaded.gpu.errors.rates(f, Guardband::Optimized);
    EXPECT_DOUBLE_EQ(a.d0, b.d0) << f;
    EXPECT_DOUBLE_EQ(a.d1, b.d1) << f;
    EXPECT_DOUBLE_EQ(a.d2, b.d2) << f;
  }
  EXPECT_EQ(loaded.gpu.fault_free_max(), original.gpu.fault_free_max());
}

TEST(ProfileIo, PartialFileOverridesOnlyGivenKeys) {
  std::istringstream is(
      "gpu.perf.blas3_gflops = 999\n"
      "link.bandwidth_gbs = 25\n");
  const PlatformProfile p = load_profile(is);
  EXPECT_DOUBLE_EQ(p.gpu.perf.blas3_gflops_base, 999.0);
  EXPECT_DOUBLE_EQ(p.link.bandwidth_gbs, 25.0);
  // Everything else keeps the paper default.
  const PlatformProfile def = PlatformProfile::paper_default();
  EXPECT_EQ(p.cpu.freq.base_mhz, def.cpu.freq.base_mhz);
  EXPECT_DOUBLE_EQ(p.gpu.power.total_power_base_w,
                   def.gpu.power.total_power_base_w);
}

TEST(ProfileIo, CommentsAndBlankLinesIgnored) {
  std::istringstream is(
      "# a comment\n"
      "\n"
      "   \t  \n"
      "cpu.power.total_w = 80  # trailing comment\n");
  const PlatformProfile p = load_profile(is);
  EXPECT_DOUBLE_EQ(p.cpu.power.total_power_base_w, 80.0);
}

TEST(ProfileIo, UnknownKeyFailsLoudly) {
  std::istringstream is("cpu.powr.total_w = 80\n");
  EXPECT_THROW(load_profile(is), std::runtime_error);
}

TEST(ProfileIo, MalformedLineFailsLoudly) {
  std::istringstream is("cpu.power.total_w 80\n");
  EXPECT_THROW(load_profile(is), std::runtime_error);
}

TEST(ProfileIo, ErrorTableOverrideReplacesWholeTable) {
  std::istringstream is("gpu.errors.2000 = 0.5 0.1 0.01\n");
  const PlatformProfile p = load_profile(is);
  const auto at_2000 = p.gpu.errors.rates(2000, Guardband::Optimized);
  EXPECT_DOUBLE_EQ(at_2000.d0, 0.5);
  EXPECT_DOUBLE_EQ(at_2000.d1, 0.1);
  // The default 1800 entry must be gone (whole-table replacement).
  EXPECT_TRUE(p.gpu.errors.rates(1800, Guardband::Optimized).fault_free());
}

TEST(ProfileIo, FileRoundTrip) {
  const std::string path = "/tmp/bsr_profile_io_test.txt";
  save_profile(PlatformProfile::numeric_demo(), path);
  const PlatformProfile p = load_profile(path);
  EXPECT_NEAR(p.gpu.perf.blas3_gflops_base, 420.0 / 150.0, 1e-9);
}

TEST(ProfileIo, MissingFileThrows) {
  EXPECT_THROW(load_profile("/nonexistent_dir_xyz/p.txt"), std::runtime_error);
}

TEST(ProfileIo, ScaledErrorModelSurvivesRoundTrip) {
  PlatformProfile p = PlatformProfile::paper_default();
  p.gpu.errors = p.gpu.errors.scaled(10.0);
  std::stringstream ss;
  save_profile(p, ss);
  const PlatformProfile loaded = load_profile(ss);
  EXPECT_DOUBLE_EQ(loaded.gpu.errors.rates(2200, Guardband::Optimized).d0,
                   3.5);
}

}  // namespace
}  // namespace bsr::hw
