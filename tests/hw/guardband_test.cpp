#include "hw/guardband.hpp"

#include <gtest/gtest.h>

namespace bsr::hw {
namespace {

FrequencyDomain dom() {
  return {.min_mhz = 300,
          .base_mhz = 1300,
          .max_default_mhz = 1300,
          .max_oc_mhz = 2200,
          .step_mhz = 100};
}

TEST(Guardband, DefaultIsUnity) {
  const GuardbandModel g{};
  EXPECT_DOUBLE_EQ(g.alpha(1300, Guardband::Default, dom()), 1.0);
  EXPECT_DOUBLE_EQ(g.alpha(2200, Guardband::Default, dom()), 1.0);
}

TEST(Guardband, OptimizedReducesPower) {
  const GuardbandModel g{.alpha_floor = 0.76, .alpha_ceiling = 1.0, .shape = 2.0};
  const double a = g.alpha(1300, Guardband::Optimized, dom());
  EXPECT_GT(a, 0.76);
  EXPECT_LT(a, 1.0);
}

TEST(Guardband, FloorAtMinFrequency) {
  const GuardbandModel g{.alpha_floor = 0.8, .alpha_ceiling = 1.0, .shape = 2.0};
  EXPECT_DOUBLE_EQ(g.alpha(300, Guardband::Optimized, dom()), 0.8);
}

TEST(Guardband, CeilingAtMaxOverclock) {
  const GuardbandModel g{.alpha_floor = 0.8, .alpha_ceiling = 1.0, .shape = 2.0};
  EXPECT_DOUBLE_EQ(g.alpha(2200, Guardband::Optimized, dom()), 1.0);
}

TEST(Guardband, MonotonicallyNonDecreasingInFrequency) {
  const GuardbandModel g{.alpha_floor = 0.76, .alpha_ceiling = 1.02, .shape = 2.0};
  double prev = 0.0;
  for (Mhz f = 300; f <= 2200; f += 100) {
    const double a = g.alpha(f, Guardband::Optimized, dom());
    EXPECT_GE(a, prev);
    prev = a;
  }
}

}  // namespace
}  // namespace bsr::hw
