#include "hw/frequency.hpp"

#include <gtest/gtest.h>

namespace bsr::hw {
namespace {

FrequencyDomain gpu_domain() {
  return {.min_mhz = 300,
          .base_mhz = 1300,
          .max_default_mhz = 1300,
          .max_oc_mhz = 2200,
          .step_mhz = 100};
}

TEST(FrequencyDomain, ClampRespectsGuardband) {
  const FrequencyDomain d = gpu_domain();
  EXPECT_EQ(d.clamp(2500, true), 2200);
  EXPECT_EQ(d.clamp(2500, false), 1300);
  EXPECT_EQ(d.clamp(100, true), 300);
  EXPECT_EQ(d.clamp(1000, false), 1000);
}

TEST(FrequencyDomain, RoundUpFromRatio) {
  const FrequencyDomain d = gpu_domain();
  // 1.3 GHz * 1.17 = 1521 -> round up to 1600.
  EXPECT_EQ(d.round_up_from_ratio(1.17, true), 1600);
  // Ratio 1 stays at base.
  EXPECT_EQ(d.round_up_from_ratio(1.0, true), 1300);
  // Slowing down: 1300*0.5 = 650 -> 700.
  EXPECT_EQ(d.round_up_from_ratio(0.5, true), 700);
}

TEST(FrequencyDomain, RoundUpClampsToGuardbandRange) {
  const FrequencyDomain d = gpu_domain();
  EXPECT_EQ(d.round_up_from_ratio(3.0, true), 2200);
  EXPECT_EQ(d.round_up_from_ratio(3.0, false), 1300);
  EXPECT_EQ(d.round_up_from_ratio(0.01, true), 300);
}

TEST(FrequencyDomain, LevelsEnumerateGrid) {
  const FrequencyDomain d = gpu_domain();
  const auto def = d.levels(false);
  EXPECT_EQ(def.front(), 300);
  EXPECT_EQ(def.back(), 1300);
  EXPECT_EQ(def.size(), 11u);
  const auto oc = d.levels(true);
  EXPECT_EQ(oc.back(), 2200);
  EXPECT_EQ(oc.size(), 20u);
}

TEST(FrequencyDomain, ValidChecksGridAndRange) {
  const FrequencyDomain d = gpu_domain();
  EXPECT_TRUE(d.valid(1300, false));
  EXPECT_TRUE(d.valid(2200, true));
  EXPECT_FALSE(d.valid(2200, false));
  EXPECT_FALSE(d.valid(1350, true));  // off grid
  EXPECT_FALSE(d.valid(200, true));
}

}  // namespace
}  // namespace bsr::hw
