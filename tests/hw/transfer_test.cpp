#include "hw/transfer.hpp"

#include <gtest/gtest.h>

namespace bsr::hw {
namespace {

TEST(Transfer, ZeroBytesIsFree) {
  const TransferModel m{.bandwidth_gbs = 12.0,
                        .latency = SimTime::from_micros(10.0)};
  EXPECT_EQ(m.time_for_bytes(0.0), SimTime::zero());
  EXPECT_EQ(m.time_for_bytes(-5.0), SimTime::zero());
}

TEST(Transfer, LatencyPlusBandwidthTerm) {
  const TransferModel m{.bandwidth_gbs = 12.0,
                        .latency = SimTime::from_micros(10.0)};
  // 12 GB at 12 GB/s = 1 s + 10 us latency.
  EXPECT_NEAR(m.time_for_bytes(12e9).seconds(), 1.0 + 10e-6, 1e-9);
}

TEST(Transfer, SmallMessagesAreLatencyBound) {
  const TransferModel m{.bandwidth_gbs = 12.0,
                        .latency = SimTime::from_micros(10.0)};
  const double t = m.time_for_bytes(1024.0).seconds();
  EXPECT_GT(t, 10e-6);
  EXPECT_LT(t, 11e-6);
}

TEST(Transfer, TimeScalesLinearlyInBytes) {
  const TransferModel m{.bandwidth_gbs = 10.0, .latency = SimTime::zero()};
  const double t1 = m.time_for_bytes(1e9).seconds();
  const double t2 = m.time_for_bytes(2e9).seconds();
  EXPECT_NEAR(t2, 2.0 * t1, 1e-12);
}

TEST(Transfer, CompositionPaysLatencyOncePerTransfer) {
  // Splitting a message in two pays the fixed latency twice: time(a + b) ==
  // time(a) + time(b) - latency, the latency+bandwidth composition law.
  const TransferModel m{.bandwidth_gbs = 12.0,
                        .latency = SimTime::from_micros(10.0)};
  const double a = 3e8;
  const double b = 7e8;
  EXPECT_NEAR(m.time_for_bytes(a + b).seconds(),
              m.time_for_bytes(a).seconds() + m.time_for_bytes(b).seconds() -
                  m.latency.seconds(),
              1e-9);
}

TEST(Transfer, HigherBandwidthNeverSlower) {
  const TransferModel slow{.bandwidth_gbs = 6.0,
                           .latency = SimTime::from_micros(10.0)};
  const TransferModel fast{.bandwidth_gbs = 24.0,
                           .latency = SimTime::from_micros(10.0)};
  for (const double bytes : {1.0, 1e3, 1e6, 1e9, 1e12}) {
    // Below ~1 KB the bandwidth-term difference rounds away at nanosecond
    // resolution, so only monotonicity (never slower) is guaranteed.
    EXPECT_LE(fast.time_for_bytes(bytes), slow.time_for_bytes(bytes));
  }
  EXPECT_LT(fast.time_for_bytes(1e9), slow.time_for_bytes(1e9));
}

TEST(Transfer, PanelTransferAtPaperScaleIsMilliseconds) {
  // A 30720 x 512 double panel both ways over PCIe 3 x16: ~2.1 ms + latency.
  const TransferModel m{.bandwidth_gbs = 12.0,
                        .latency = SimTime::from_micros(10.0)};
  const double bytes = 2.0 * 30720.0 * 512.0 * 8.0;
  const double t = m.time_for_bytes(bytes).seconds();
  EXPECT_GT(t, 15e-3);
  EXPECT_LT(t, 25e-3);
}

}  // namespace
}  // namespace bsr::hw
