#include "hw/platform.hpp"

#include <gtest/gtest.h>

namespace bsr::hw {
namespace {

TEST(Platform, PaperDefaultMatchesTable3) {
  const PlatformProfile p = PlatformProfile::paper_default();
  // CPU: i7-9700K — base 3.5 GHz, overclock to 4.5 GHz, 0.1 GHz steps.
  EXPECT_EQ(p.cpu.freq.base_mhz, 3500);
  EXPECT_EQ(p.cpu.freq.max_oc_mhz, 4500);
  EXPECT_EQ(p.cpu.freq.step_mhz, 100);
  // GPU: RTX 2080 Ti — base 1.3 GHz, overclock to 2.2 GHz.
  EXPECT_EQ(p.gpu.freq.base_mhz, 1300);
  EXPECT_EQ(p.gpu.freq.max_oc_mhz, 2200);
}

TEST(Platform, CpuIsFaultFreeEverywhere) {
  const PlatformProfile p = PlatformProfile::paper_default();
  EXPECT_EQ(p.cpu.fault_free_max(), p.cpu.freq.max_oc_mhz);
}

TEST(Platform, GpuFaultFreeThrough1700) {
  const PlatformProfile p = PlatformProfile::paper_default();
  EXPECT_EQ(p.gpu.fault_free_max(), 1700);
  EXPECT_TRUE(p.gpu.errors.rates(1700, Guardband::Optimized).fault_free());
  EXPECT_FALSE(p.gpu.errors.rates(1800, Guardband::Optimized).fault_free());
}

TEST(Platform, GpuSdcClassesAppearInOrder) {
  // 0D from 1800, 1D from 2000 — the regime of Table 1 / Fig. 9.
  const PlatformProfile p = PlatformProfile::paper_default();
  const auto at_1900 = p.gpu.errors.rates(1900, Guardband::Optimized);
  EXPECT_GT(at_1900.d0, 0.0);
  EXPECT_DOUBLE_EQ(at_1900.d1, 0.0);
  const auto at_2100 = p.gpu.errors.rates(2100, Guardband::Optimized);
  EXPECT_GT(at_2100.d1, 0.0);
}

TEST(Platform, EnergyEfficiencyImprovesWithOptimizedGuardband) {
  const PlatformProfile p = PlatformProfile::paper_default();
  for (Mhz f = 700; f <= 1300; f += 100) {
    EXPECT_GT(p.gpu.efficiency_gflops_per_watt(f, Guardband::Optimized),
              p.gpu.efficiency_gflops_per_watt(f, Guardband::Default))
        << f;
  }
}

TEST(Platform, OverclockedStatesCanBeMoreEfficientThanBase) {
  // The motivation for ABFT-OC (paper Fig. 5a): with the optimized guardband,
  // some higher-clock states beat the default-guardband base efficiency.
  const PlatformProfile p = PlatformProfile::paper_default();
  const double base_eff =
      p.gpu.efficiency_gflops_per_watt(1300, Guardband::Default);
  double best_oc = 0.0;
  for (Mhz f = 1400; f <= 2200; f += 100) {
    best_oc = std::max(best_oc,
                       p.gpu.efficiency_gflops_per_watt(f, Guardband::Optimized));
  }
  EXPECT_GT(best_oc, base_eff);
}

TEST(Platform, ThermalRisesWithFrequency) {
  const PlatformProfile p = PlatformProfile::paper_default();
  const double t_base = p.gpu.thermal.max_sustained_temp(
      1300, Guardband::Default, p.gpu.power, p.gpu.guardband, p.gpu.freq);
  const double t_low = p.gpu.thermal.max_sustained_temp(
      700, Guardband::Default, p.gpu.power, p.gpu.guardband, p.gpu.freq);
  EXPECT_GT(t_base, t_low);
}

TEST(Platform, OptimizedGuardbandRunsCooler) {
  const PlatformProfile p = PlatformProfile::paper_default();
  const double t_def = p.cpu.thermal.max_sustained_temp(
      3500, Guardband::Default, p.cpu.power, p.cpu.guardband, p.cpu.freq);
  const double t_opt = p.cpu.thermal.max_sustained_temp(
      3500, Guardband::Optimized, p.cpu.power, p.cpu.guardband, p.cpu.freq);
  EXPECT_LT(t_opt, t_def);
}

TEST(Platform, MakeDvfsInheritsLatency) {
  const PlatformProfile p = PlatformProfile::paper_default();
  DvfsController d = p.gpu.make_dvfs();
  EXPECT_EQ(d.latency(), p.gpu.dvfs_latency);
  EXPECT_EQ(d.current(), 1300);
}

TEST(Platform, TestSmallProfileIsMoreImbalanced) {
  const PlatformProfile small = PlatformProfile::test_small();
  const PlatformProfile paper = PlatformProfile::paper_default();
  EXPECT_LT(small.cpu.perf.panel_gflops_base, paper.cpu.perf.panel_gflops_base);
}

}  // namespace
}  // namespace bsr::hw
