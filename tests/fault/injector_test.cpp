#include "fault/injector.hpp"

#include <gtest/gtest.h>

#include "abft/checksum.hpp"
#include "la/verify.hpp"

namespace bsr::fault {
namespace {

using la::idx;
using la::Matrix;

Matrix<double> ones(idx m, idx n) {
  Matrix<double> a(m, n);
  a.fill(1.0);
  return a;
}

int count_changed(const Matrix<double>& a, double ref = 1.0) {
  int n = 0;
  for (idx j = 0; j < a.cols(); ++j) {
    for (idx i = 0; i < a.rows(); ++i) {
      if (a(i, j) != ref) ++n;
    }
  }
  return n;
}

TEST(Injector, SampleZeroWhenFaultFree) {
  Injector inj{Rng(1)};
  const hw::ErrorRates r{};
  const InjectionCounts c = inj.sample(r, SimTime::from_seconds(100.0));
  EXPECT_EQ(c.total(), 0);
}

TEST(Injector, SampleZeroForZeroTime) {
  Injector inj{Rng(2)};
  const hw::ErrorRates r{.d0 = 100.0, .d1 = 100.0, .d2 = 100.0};
  EXPECT_EQ(inj.sample(r, SimTime::zero()).total(), 0);
}

TEST(Injector, SampleMeansTrackRates) {
  Injector inj{Rng(3)};
  const hw::ErrorRates r{.d0 = 2.0, .d1 = 0.5, .d2 = 0.1};
  double s0 = 0;
  double s1 = 0;
  double s2 = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const InjectionCounts c = inj.sample(r, SimTime::from_seconds(1.0));
    s0 += c.d0;
    s1 += c.d1;
    s2 += c.d2;
  }
  EXPECT_NEAR(s0 / trials, 2.0, 0.05);
  EXPECT_NEAR(s1 / trials, 0.5, 0.02);
  EXPECT_NEAR(s2 / trials, 0.1, 0.01);
}

TEST(Injector, Inject0DChangesExactlyOneElement) {
  Matrix<double> a = ones(20, 20);
  Injector inj{Rng(4)};
  inj.inject_0d(a.view());
  EXPECT_EQ(count_changed(a), 1);
}

TEST(Injector, Inject1DCorruptsSingleColumnRun) {
  Matrix<double> a = ones(32, 32);
  Injector inj{Rng(5)};
  inj.inject_1d(a.view());
  int corrupted_cols = 0;
  for (idx j = 0; j < 32; ++j) {
    int hits = 0;
    for (idx i = 0; i < 32; ++i) {
      if (a(i, j) != 1.0) ++hits;
    }
    if (hits > 0) {
      ++corrupted_cols;
      EXPECT_GE(hits, 2);  // a run, not a point
    }
  }
  EXPECT_EQ(corrupted_cols, 1);
}

TEST(Injector, Inject2DSpansMultipleColumns) {
  Matrix<double> a = ones(32, 32);
  Injector inj{Rng(6)};
  inj.inject_2d(a.view());
  int corrupted_cols = 0;
  for (idx j = 0; j < 32; ++j) {
    for (idx i = 0; i < 32; ++i) {
      if (a(i, j) != 1.0) {
        ++corrupted_cols;
        break;
      }
    }
  }
  EXPECT_GE(corrupted_cols, 2);
}

TEST(Injector, CorruptionIsLargeMagnitude) {
  Matrix<double> a = ones(16, 16);
  Injector inj{Rng(7)};
  for (int i = 0; i < 20; ++i) inj.inject_0d(a.view());
  // Every corrupted value must differ from 1.0 by far more than roundoff.
  for (idx j = 0; j < 16; ++j) {
    for (idx i = 0; i < 16; ++i) {
      if (a(i, j) != 1.0) {
        EXPECT_GT(std::abs(a(i, j) - 1.0), 1.0);
      }
    }
  }
}

TEST(Injector, InjectedErrorsAreDetectableByAbft) {
  Matrix<double> a = ones(32, 32);
  abft::BlockChecksums<double> chk(32, 32, 8, abft::ChecksumMode::Full);
  chk.encode(a.view());
  Injector inj{Rng(8)};
  inj.inject_0d(a.view());
  inj.inject_1d(a.view());
  const auto r = chk.verify_and_correct(
      a.view(), abft::BlockChecksums<double>::suggested_tolerance(a.view(), 8));
  EXPECT_GT(r.blocks_flagged, 0);
}

TEST(Injector, DeterministicForSameSeed) {
  Matrix<double> a = ones(16, 16);
  Matrix<double> b = ones(16, 16);
  Injector ia{Rng(99)};
  Injector ib{Rng(99)};
  const hw::ErrorRates r{.d0 = 5.0, .d1 = 1.0, .d2 = 0.2};
  ia.inject(a.view(), r, SimTime::from_seconds(1.0));
  ib.inject(b.view(), r, SimTime::from_seconds(1.0));
  for (idx j = 0; j < 16; ++j) {
    for (idx i = 0; i < 16; ++i) ASSERT_EQ(a(i, j), b(i, j));
  }
}

TEST(Injector, InjectReturnsCounts) {
  Matrix<double> a = ones(64, 64);
  Injector inj{Rng(10)};
  const hw::ErrorRates r{.d0 = 50.0, .d1 = 0.0, .d2 = 0.0};
  const InjectionCounts c = inj.inject(a.view(), r, SimTime::from_seconds(1.0));
  EXPECT_GT(c.d0, 0);
  EXPECT_EQ(c.d1, 0);
  EXPECT_EQ(c.d2, 0);
  EXPECT_GT(count_changed(a), 0);
}

TEST(Injector, EmptyMatrixIsSafe) {
  Matrix<double> a(0, 0);
  Injector inj{Rng(11)};
  inj.inject_0d(a.view());
  inj.inject_1d(a.view());
  inj.inject_2d(a.view());  // must not crash
  SUCCEED();
}

}  // namespace
}  // namespace bsr::fault
