// Recovery-by-recompute: when ABFT detects a pattern it cannot correct, the
// trailing update is rolled back and redone — the "recovery with high
// overhead" path the paper contrasts against sufficient checksum strength.
#include <gtest/gtest.h>

#include "core/decomposer.hpp"

namespace bsr::core {
namespace {

RunOptions injected_single(std::uint64_t seed) {
  RunOptions o;
  o.factorization = predict::Factorization::LU;
  o.n = 1024;
  o.b = 32;
  o.strategy = StrategyKind::BSR;
  o.reclamation_ratio = 0.25;
  o.fc_desired = 0.999;
  o.mode = ExecutionMode::Numeric;
  // The fig09 regime: BSR still overclocks, and 1D errors (uncorrectable
  // by single-side checksums) appear in a fraction of the seeds.
  o.error_rate_multiplier = 150.0;
  o.seed = seed;
  return o;
}

/// Finds a seed where single-side ABFT hits an uncorrectable pattern; the
/// paper's whole point is that such runs exist at these rates.
std::uint64_t find_corrupting_seed(const Decomposer& dec) {
  for (std::uint64_t seed = 1; seed < 60; ++seed) {
    RunOptions o = injected_single(seed);
    const RunReport r = dec.run(o, ExtendedOptions{AbftPolicy::ForceSingle});
    if (r.abft.uncorrectable > 0 && !r.numeric_correct) return seed;
  }
  return 0;
}

TEST(Recovery, RepairsRunsSingleSideAbftLosesAndChargesTime) {
  const Decomposer dec(hw::PlatformProfile::numeric_demo());
  const std::uint64_t seed = find_corrupting_seed(dec);
  ASSERT_NE(seed, 0u) << "no corrupting seed found — rates too low?";

  RunOptions o = injected_single(seed);
  const RunReport no_recovery =
      dec.run(o, ExtendedOptions{AbftPolicy::ForceSingle});
  EXPECT_FALSE(no_recovery.numeric_correct);
  EXPECT_EQ(no_recovery.abft.recoveries, 0);
  EXPECT_EQ(no_recovery.recovery_time, SimTime::zero());

  o.recover_uncorrectable = true;
  const RunReport recovered =
      dec.run(o, ExtendedOptions{AbftPolicy::ForceSingle});
  EXPECT_TRUE(recovered.numeric_correct) << "residual=" << recovered.residual;
  EXPECT_GT(recovered.abft.recoveries, 0);
  EXPECT_GT(recovered.recovery_time, SimTime::zero());
  EXPECT_GT(recovered.recovery_energy_j, 0.0);
  // Recovery costs show up in the aggregate metrics.
  EXPECT_GT(recovered.seconds(), no_recovery.seconds());
  EXPECT_GT(recovered.total_energy_j(), no_recovery.total_energy_j());
}

TEST(Recovery, NoOpWhenNothingUncorrectable) {
  const Decomposer dec(hw::PlatformProfile::numeric_demo());
  RunOptions o = injected_single(5);
  o.recover_uncorrectable = true;
  // Full ABFT corrects everything: recovery never triggers.
  const RunReport r = dec.run(o, ExtendedOptions{AbftPolicy::ForceFull});
  EXPECT_TRUE(r.numeric_correct);
  EXPECT_EQ(r.abft.recoveries, 0);
  EXPECT_EQ(r.recovery_time, SimTime::zero());
}

TEST(Recovery, WorksForCholeskyAndQr) {
  const Decomposer dec(hw::PlatformProfile::numeric_demo());
  for (auto f : {predict::Factorization::Cholesky, predict::Factorization::QR}) {
    bool saw_recovery = false;
    for (std::uint64_t seed = 1; seed < 40 && !saw_recovery; ++seed) {
      RunOptions o = injected_single(seed);
      o.factorization = f;
      o.n = 512;
      o.recover_uncorrectable = true;
      const RunReport r = dec.run(o, ExtendedOptions{AbftPolicy::ForceSingle});
      if (r.abft.recoveries > 0) {
        saw_recovery = true;
        EXPECT_TRUE(r.numeric_correct)
            << predict::to_string(f) << " residual=" << r.residual;
      }
    }
    EXPECT_TRUE(saw_recovery) << predict::to_string(f);
  }
}

}  // namespace
}  // namespace bsr::core
