#include "core/trace_io.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "core/decomposer.hpp"

namespace bsr::core {
namespace {

RunReport small_run() {
  Decomposer dec;
  RunOptions o;
  o.n = 4096;
  o.b = 512;
  o.strategy = StrategyKind::BSR;
  o.reclamation_ratio = 0.2;
  return dec.run(o);
}

TEST(TraceIo, OneRowPerIterationPlusHeader) {
  const RunReport r = small_run();
  std::ostringstream os;
  write_trace_csv(r, os);
  const std::string text = os.str();
  int lines = 0;
  for (char c : text) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, static_cast<int>(r.trace.iterations.size()) + 1);
}

TEST(TraceIo, HeaderColumnsMatchRowColumns) {
  const RunReport r = small_run();
  std::ostringstream os;
  const std::string header = write_trace_csv(r, os);
  const std::string text = os.str();
  auto count_commas = [](const std::string& s) {
    return std::count(s.begin(), s.end(), ',');
  };
  const auto first_newline = text.find('\n');
  const auto second_newline = text.find('\n', first_newline + 1);
  const std::string row =
      text.substr(first_newline + 1, second_newline - first_newline - 1);
  EXPECT_EQ(count_commas(header), count_commas(row));
}

TEST(TraceIo, ContainsAbftModeLabels) {
  const RunReport r = small_run();
  std::ostringstream os;
  write_trace_csv(r, os);
  EXPECT_NE(os.str().find("None"), std::string::npos);
}

TEST(TraceIo, FileRoundTrip) {
  const RunReport r = small_run();
  const std::string path = "/tmp/bsr_trace_io_test.csv";
  write_trace_csv(r, path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("slack_ms"), std::string::npos);
}

TEST(TraceIo, ThrowsOnBadPath) {
  const RunReport r = small_run();
  EXPECT_THROW(write_trace_csv(r, "/nonexistent_dir_xyz/trace.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace bsr::core
