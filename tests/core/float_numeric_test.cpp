// Single-precision numeric mode: the paper's Fig. 2 includes single precision,
// and the full numeric path (kernels, checksums, injection, repair) must work
// for float as it does for double.
#include <gtest/gtest.h>

#include "core/decomposer.hpp"

namespace bsr::core {
namespace {

RunOptions float_opts(predict::Factorization f) {
  RunOptions o;
  o.factorization = f;
  o.n = 256;
  o.b = 32;
  o.elem_bytes = 4;
  o.mode = ExecutionMode::Numeric;
  o.strategy = StrategyKind::Original;
  o.seed = 9;
  return o;
}

class FloatCleanRuns
    : public ::testing::TestWithParam<predict::Factorization> {};

TEST_P(FloatCleanRuns, ResidualAtSinglePrecisionScale) {
  const Decomposer dec;
  const RunReport r = dec.run(float_opts(GetParam()));
  EXPECT_TRUE(r.numeric_executed);
  EXPECT_TRUE(r.numeric_correct);
  EXPECT_LT(r.residual, 1e-3);   // float roundoff scale
  EXPECT_GT(r.residual, 1e-10);  // and definitely not double precision
}

INSTANTIATE_TEST_SUITE_P(AllFactorizations, FloatCleanRuns,
                         ::testing::Values(predict::Factorization::Cholesky,
                                           predict::Factorization::LU,
                                           predict::Factorization::QR));

TEST(FloatNumeric, TransferBytesHalveVsDouble) {
  // elem_bytes feeds the workload model: single precision halves the panel
  // traffic, which (slightly) widens CPU-side slack as in paper Fig. 2.
  const Decomposer dec;
  RunOptions o = float_opts(predict::Factorization::LU);
  o.mode = ExecutionMode::TimingOnly;
  o.n = 30720;
  o.b = 512;
  const RunReport sp = dec.run(o);
  o.elem_bytes = 8;
  const RunReport dp = dec.run(o);
  EXPECT_LT(sp.trace.iterations[2].transfer, dp.trace.iterations[2].transfer);
  EXPECT_GT(sp.trace.iterations[2].slack, dp.trace.iterations[2].slack);
}

TEST(FloatNumeric, InjectionAndFullAbftRepairInFloat) {
  const Decomposer dec(hw::PlatformProfile::numeric_demo());
  RunOptions o = float_opts(predict::Factorization::LU);
  o.n = 1024;
  o.strategy = StrategyKind::BSR;
  o.reclamation_ratio = 0.25;
  o.fc_desired = 0.999;
  o.error_rate_multiplier = 100.0;
  o.seed = 5;
  const RunReport none = dec.run(o, ExtendedOptions{AbftPolicy::ForceNone});
  EXPECT_GT(none.abft.errors_injected_total(), 0);
  EXPECT_FALSE(none.numeric_correct);
  const RunReport full = dec.run(o, ExtendedOptions{AbftPolicy::ForceFull});
  EXPECT_TRUE(full.numeric_correct) << "residual=" << full.residual;
}

}  // namespace
}  // namespace bsr::core
