#include <gtest/gtest.h>

#include "core/decomposer.hpp"

namespace bsr::core {
namespace {

RunOptions timing_opts(StrategyKind s, double r = 0.0) {
  RunOptions o;
  o.n = 30720;
  o.b = 512;
  o.strategy = s;
  o.reclamation_ratio = r;
  o.mode = ExecutionMode::TimingOnly;
  return o;
}

TEST(DecomposerTiming, RunsAllStrategies) {
  const Decomposer dec;
  for (StrategyKind s : {StrategyKind::Original, StrategyKind::R2H,
                         StrategyKind::SR, StrategyKind::BSR}) {
    const RunReport r = dec.run(timing_opts(s));
    EXPECT_EQ(r.trace.iterations.size(), 60u) << to_string(s);
    EXPECT_GT(r.total_energy_j(), 0.0);
    EXPECT_GT(r.seconds(), 0.0);
    EXPECT_FALSE(r.numeric_executed);
  }
}

TEST(DecomposerTiming, EnergyOrderingMatchesPaper) {
  // Fig. 12(a): BSR > SR > R2H > 0 savings vs Original.
  const Decomposer dec;
  const RunReport org = dec.run(timing_opts(StrategyKind::Original));
  const RunReport r2h = dec.run(timing_opts(StrategyKind::R2H));
  const RunReport sr = dec.run(timing_opts(StrategyKind::SR));
  const RunReport bsr = dec.run(timing_opts(StrategyKind::BSR));
  EXPECT_GT(r2h.energy_saving_vs(org), 0.03);
  EXPECT_GT(sr.energy_saving_vs(org), r2h.energy_saving_vs(org));
  EXPECT_GT(bsr.energy_saving_vs(org), sr.energy_saving_vs(org));
}

TEST(DecomposerTiming, DeterministicAcrossRuns) {
  const Decomposer dec;
  const RunReport a = dec.run(timing_opts(StrategyKind::BSR, 0.15));
  const RunReport b = dec.run(timing_opts(StrategyKind::BSR, 0.15));
  EXPECT_EQ(a.trace.total_time, b.trace.total_time);
  EXPECT_DOUBLE_EQ(a.total_energy_j(), b.total_energy_j());
}

TEST(DecomposerTiming, SeedChangesNoiseButNotOrdering) {
  const Decomposer dec;
  RunOptions a = timing_opts(StrategyKind::Original);
  RunOptions b = a;
  b.seed = 777;
  const RunReport ra = dec.run(a);
  const RunReport rb = dec.run(b);
  EXPECT_NE(ra.trace.total_time, rb.trace.total_time);
  EXPECT_NEAR(ra.seconds() / rb.seconds(), 1.0, 0.05);
}

TEST(DecomposerTiming, AllFactorizationsRun) {
  const Decomposer dec;
  for (auto f : {predict::Factorization::Cholesky, predict::Factorization::LU,
                 predict::Factorization::QR}) {
    RunOptions o = timing_opts(StrategyKind::BSR);
    o.factorization = f;
    const RunReport r = dec.run(o);
    EXPECT_GT(r.gflops(), 0.0) << predict::to_string(f);
  }
}

TEST(DecomposerTiming, RejectsBadGeometry) {
  const Decomposer dec;
  RunOptions o = timing_opts(StrategyKind::Original);
  o.b = 0;
  EXPECT_THROW((void)dec.run(o), std::invalid_argument);
  o.b = 4096;
  o.n = 1024;
  EXPECT_THROW((void)dec.run(o), std::invalid_argument);
}

TEST(DecomposerTiming, ForcedAbftPoliciesChangeCostOrdering) {
  const Decomposer dec;
  const RunOptions o = timing_opts(StrategyKind::BSR, 0.25);
  const RunReport none = dec.run(o, ExtendedOptions{AbftPolicy::ForceNone});
  const RunReport single = dec.run(o, ExtendedOptions{AbftPolicy::ForceSingle});
  const RunReport full = dec.run(o, ExtendedOptions{AbftPolicy::ForceFull});
  const RunReport adaptive = dec.run(o, ExtendedOptions{AbftPolicy::Adaptive});
  // Fig. 9 overhead ordering: none < adaptive < single(always-on) < full.
  // Checksum work can hide inside GPU-side slack, so compare the energy cost
  // (always charged) and keep time as a weak-order check.
  EXPECT_LT(none.total_energy_j(), adaptive.total_energy_j());
  EXPECT_LT(adaptive.total_energy_j(), single.total_energy_j());
  EXPECT_LT(single.total_energy_j(), full.total_energy_j());
  EXPECT_LE(none.seconds(), adaptive.seconds());
  EXPECT_LE(adaptive.seconds(), full.seconds());
}

TEST(DecomposerTiming, AdaptiveProtectsOnlyLateIterationsAtModestR) {
  const Decomposer dec;
  const RunReport r = dec.run(timing_opts(StrategyKind::BSR, 0.25));
  EXPECT_GT(r.abft.iterations_unprotected, 30);
  EXPECT_GT(r.abft.iterations_protected_single + r.abft.iterations_protected_full,
            0);
  // Protection must kick in during the late (short-slack) iterations.
  bool early_protected = false;
  for (int k = 0; k < 20; ++k) {
    if (r.trace.iterations[k].abft_mode != abft::ChecksumMode::None) {
      early_protected = true;
    }
  }
  EXPECT_FALSE(early_protected);
}

TEST(DecomposerTiming, SummaryMentionsStrategyAndNumbers) {
  const Decomposer dec;
  const RunReport r = dec.run(timing_opts(StrategyKind::SR));
  const std::string s = summarize(r);
  EXPECT_NE(s.find("SR"), std::string::npos);
  EXPECT_NE(s.find("LU"), std::string::npos);
  EXPECT_NE(s.find("J"), std::string::npos);
}

TEST(DecomposerTiming, Ed2pReductionPositiveForBsr) {
  const Decomposer dec;
  const RunReport org = dec.run(timing_opts(StrategyKind::Original));
  const RunReport bsr = dec.run(timing_opts(StrategyKind::BSR));
  EXPECT_GT(bsr.ed2p_reduction_vs(org), 0.0);
}

}  // namespace
}  // namespace bsr::core
