#include "core/options.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace bsr::core {
namespace {

TEST(Options, Defaults) {
  const RunOptions o{};
  EXPECT_EQ(o.factorization, predict::Factorization::LU);
  EXPECT_EQ(o.n, 30720);
  EXPECT_EQ(o.b, 512);
  EXPECT_EQ(o.strategy, StrategyKind::BSR);
  EXPECT_EQ(o.mode, ExecutionMode::TimingOnly);
  EXPECT_DOUBLE_EQ(o.reclamation_ratio, 0.0);
}

TEST(Options, WorkloadReflectsFields) {
  RunOptions o;
  o.n = 4096;
  o.b = 256;
  o.factorization = predict::Factorization::QR;
  const auto wl = o.workload();
  EXPECT_EQ(wl.n, 4096);
  EXPECT_EQ(wl.b, 256);
  EXPECT_EQ(wl.fact, predict::Factorization::QR);
  EXPECT_EQ(wl.num_iterations(), 16);
}

TEST(Options, StrategyFromString) {
  EXPECT_EQ(strategy_from_string("bsr"), StrategyKind::BSR);
  EXPECT_EQ(strategy_from_string("BSR"), StrategyKind::BSR);
  EXPECT_EQ(strategy_from_string("original"), StrategyKind::Original);
  EXPECT_EQ(strategy_from_string("org"), StrategyKind::Original);
  EXPECT_EQ(strategy_from_string("r2h"), StrategyKind::R2H);
  EXPECT_EQ(strategy_from_string("sr"), StrategyKind::SR);
  EXPECT_THROW(strategy_from_string("nope"), std::invalid_argument);
}

TEST(Options, FactorizationFromString) {
  EXPECT_EQ(factorization_from_string("lu"), predict::Factorization::LU);
  EXPECT_EQ(factorization_from_string("Cholesky"),
            predict::Factorization::Cholesky);
  EXPECT_EQ(factorization_from_string("cho"), predict::Factorization::Cholesky);
  EXPECT_EQ(factorization_from_string("QR"), predict::Factorization::QR);
  EXPECT_THROW(factorization_from_string("svd"), std::invalid_argument);
}

TEST(Options, TunedBlockMatchesPaperAtFullScale) {
  EXPECT_EQ(tuned_block(30720), 512);
  EXPECT_EQ(tuned_block(20480), 320);
  EXPECT_EQ(tuned_block(5120), 64);
  EXPECT_EQ(tuned_block(512), 64);    // floor
  EXPECT_EQ(tuned_block(100000), 512);  // ceiling
}

TEST(Options, ToStringRoundTrip) {
  EXPECT_STREQ(to_string(StrategyKind::BSR), "BSR");
  EXPECT_STREQ(to_string(StrategyKind::R2H), "R2H");
  EXPECT_STREQ(to_string(ExecutionMode::Numeric), "Numeric");
  EXPECT_STREQ(to_string(ExecutionMode::TimingOnly), "TimingOnly");
}

}  // namespace
}  // namespace bsr::core
