#include <gtest/gtest.h>

#include "core/decomposer.hpp"

namespace bsr::core {
namespace {

RunOptions numeric_opts(predict::Factorization f, StrategyKind s,
                        std::int64_t n = 256, std::int64_t b = 32) {
  RunOptions o;
  o.factorization = f;
  o.n = n;
  o.b = b;
  o.strategy = s;
  o.mode = ExecutionMode::Numeric;
  o.seed = 5;
  return o;
}

/// Fault-injection experiments run on the numeric_demo platform (paper-scale
/// op durations at reduced n, see PlatformProfile::numeric_demo) with a BSR
/// reclamation ratio that overclocks the late iterations into SDC territory.
RunOptions injection_opts(predict::Factorization f, std::int64_t n = 1024,
                          std::int64_t b = 32) {
  RunOptions o = numeric_opts(f, StrategyKind::BSR, n, b);
  o.reclamation_ratio = 0.25;
  o.fc_desired = 0.999;
  o.error_rate_multiplier = 100.0;
  return o;
}

class NumericCleanRuns
    : public ::testing::TestWithParam<std::pair<predict::Factorization,
                                                StrategyKind>> {};

TEST_P(NumericCleanRuns, ResidualTinyWithoutOverclock) {
  const auto [fact, strat] = GetParam();
  const Decomposer dec;
  RunOptions o = numeric_opts(fact, strat);
  o.reclamation_ratio = 0.0;  // no overclocking, no SDCs
  const RunReport r = dec.run(o);
  EXPECT_TRUE(r.numeric_executed);
  EXPECT_LT(r.residual, 1e-10);
  EXPECT_TRUE(r.numeric_correct);
  EXPECT_EQ(r.abft.errors_injected_total(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NumericCleanRuns,
    ::testing::Values(
        std::pair{predict::Factorization::Cholesky, StrategyKind::Original},
        std::pair{predict::Factorization::LU, StrategyKind::Original},
        std::pair{predict::Factorization::QR, StrategyKind::Original},
        std::pair{predict::Factorization::Cholesky, StrategyKind::BSR},
        std::pair{predict::Factorization::LU, StrategyKind::SR},
        std::pair{predict::Factorization::QR, StrategyKind::BSR}));

TEST(Numeric, InjectionWithoutFtCorruptsResult) {
  const Decomposer dec(hw::PlatformProfile::numeric_demo());
  const RunOptions o = injection_opts(predict::Factorization::LU);
  const RunReport r = dec.run(o, ExtendedOptions{AbftPolicy::ForceNone});
  EXPECT_GT(r.abft.errors_injected_total(), 0);
  EXPECT_FALSE(r.numeric_correct);
  EXPECT_GT(r.residual, 1e-3);
}

TEST(Numeric, FullAbftRepairsInjectedErrors) {
  const Decomposer dec(hw::PlatformProfile::numeric_demo());
  const RunOptions o = injection_opts(predict::Factorization::LU);
  const RunReport r = dec.run(o, ExtendedOptions{AbftPolicy::ForceFull});
  EXPECT_GT(r.abft.errors_injected_total(), 0);
  EXPECT_GT(r.abft.corrected_0d + r.abft.corrected_1d, 0);
  EXPECT_TRUE(r.numeric_correct) << "residual=" << r.residual;
}

TEST(Numeric, AdaptiveAbftAlsoRepairs) {
  const Decomposer dec(hw::PlatformProfile::numeric_demo());
  const RunOptions o = injection_opts(predict::Factorization::LU);
  const RunReport r = dec.run(o);
  EXPECT_GT(r.abft.errors_injected_total(), 0);
  EXPECT_TRUE(r.numeric_correct) << "residual=" << r.residual;
  // The staircase: most iterations unprotected, the overclocked tail covered.
  EXPECT_GT(r.abft.iterations_unprotected, 0);
  EXPECT_GT(r.abft.iterations_protected_single + r.abft.iterations_protected_full,
            0);
}

TEST(Numeric, AdaptiveOverclocksIntoSdcTerritory) {
  const Decomposer dec(hw::PlatformProfile::numeric_demo());
  const RunOptions o = injection_opts(predict::Factorization::LU);
  const RunReport r = dec.run(o);
  const hw::Mhz ff = dec.platform().gpu.fault_free_max();
  int overclocked = 0;
  for (const auto& it : r.trace.iterations) {
    if (it.gpu_freq > ff) ++overclocked;
  }
  EXPECT_GT(overclocked, 0);
}

TEST(Numeric, CholeskyWithInjectionAndFullAbft) {
  const Decomposer dec(hw::PlatformProfile::numeric_demo());
  RunOptions o = injection_opts(predict::Factorization::Cholesky, 512, 32);
  o.error_rate_multiplier = 300.0;
  const RunReport r = dec.run(o, ExtendedOptions{AbftPolicy::ForceFull});
  EXPECT_TRUE(r.numeric_correct) << "residual=" << r.residual;
}

TEST(Numeric, QrWithInjectionAndFullAbft) {
  const Decomposer dec(hw::PlatformProfile::numeric_demo());
  RunOptions o = injection_opts(predict::Factorization::QR, 512, 32);
  o.error_rate_multiplier = 300.0;
  const RunReport r = dec.run(o, ExtendedOptions{AbftPolicy::ForceFull});
  EXPECT_TRUE(r.numeric_correct) << "residual=" << r.residual;
}

TEST(Numeric, StatsCountProtectedIterations) {
  const Decomposer dec;
  RunOptions o = numeric_opts(predict::Factorization::LU, StrategyKind::BSR);
  const RunReport forced = dec.run(o, ExtendedOptions{AbftPolicy::ForceSingle});
  EXPECT_EQ(forced.abft.iterations_protected_single,
            static_cast<int>(forced.trace.iterations.size()));
  EXPECT_EQ(forced.abft.iterations_protected_full, 0);
}

TEST(Numeric, DeterministicInjectionPerSeed) {
  const Decomposer dec(hw::PlatformProfile::numeric_demo());
  const RunOptions o = injection_opts(predict::Factorization::LU);
  const RunReport a = dec.run(o, ExtendedOptions{AbftPolicy::ForceNone});
  const RunReport b = dec.run(o, ExtendedOptions{AbftPolicy::ForceNone});
  EXPECT_EQ(a.abft.errors_injected_total(), b.abft.errors_injected_total());
  EXPECT_DOUBLE_EQ(a.residual, b.residual);
}

}  // namespace
}  // namespace bsr::core
