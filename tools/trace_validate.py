#!/usr/bin/env python3
"""Validate a trace written by --trace / bsr::write_chrome_trace.

Checks, in order (the first failure exits 1 with a message naming the event):

  1. Well-formedness — the file is one JSON object with a `traceEvents`
     array and the `otherData` provenance block the exporter stamps
     (tool, version, fingerprint, strategy, lanes, spans).
  2. Monotone timestamps — the exporter sorts events by start time, so the
     file order must be non-decreasing in `ts`. An out-of-order event means
     the writer (or a hand-edited file) broke the determinism contract.
  3. Span nesting — on every track (pid, tid), complete ("X") events must
     nest: a span opening inside another must close inside it too. Lanes
     and links are separate tracks precisely so this holds.
  4. Lane coverage — every lane the `otherData.lanes` count promises
     (tid 1 .. lanes) carries at least one span; a silent lane means an
     engine stopped emitting at its realization points.
  5. Accounting — the number of "X" events equals `otherData.spans`.

stdlib only; no third-party imports.

Usage:
    bench_fig12_overall --n 2048 --trace run.trace.json
    python3 tools/trace_validate.py run.trace.json
"""

import argparse
import json
import sys

# Track layout mirrored from src/obs/chrome_export.cpp.
ITERATION_TID = 0
LANE_TID_BASE = 1
LINK_TID_BASE = 64

REQUIRED_OTHER_DATA = ("tool", "version", "fingerprint", "strategy", "lanes",
                       "spans")

# Slop for fractional-microsecond comparisons: the exporter writes exact
# nanosecond values, so one picosecond absorbs shortest-round-trip formatting
# without masking real overlap.
EPS_US = 1e-6


def fail(msg: str) -> "NoReturn":
    print(f"trace_validate: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def validate(path: str) -> None:
    try:
        with open(path, "rb") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not readable as JSON: {e}")

    if not isinstance(doc, dict):
        fail("top level is not a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents missing, not an array, or empty")
    other = doc.get("otherData")
    if not isinstance(other, dict):
        fail("otherData provenance block missing")
    for key in REQUIRED_OTHER_DATA:
        if key not in other:
            fail(f"otherData.{key} missing")

    spans = 0
    last_ts = None
    stacks = {}  # (pid, tid) -> list of (start_us, end_us, name)
    lanes_seen = set()
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"event {i} is not an object")
        ph = ev.get("ph")
        if ph == "M":
            continue  # metadata carries no timestamp
        for key in ("ts", "pid", "tid"):
            if not isinstance(ev.get(key), (int, float)):
                fail(f"event {i} ({ev.get('name')!r}): missing numeric {key}")
        ts = ev["ts"]
        if ts < 0:
            fail(f"event {i} ({ev['name']!r}): negative ts {ts}")
        if last_ts is not None and ts < last_ts - EPS_US:
            fail(f"event {i} ({ev['name']!r}): ts {ts} before previous "
                 f"{last_ts} - timestamps must be non-decreasing")
        last_ts = ts

        if ph != "X":
            continue
        spans += 1
        dur = ev.get("dur")
        if not isinstance(dur, (int, float)) or dur < 0:
            fail(f"event {i} ({ev['name']!r}): bad dur {dur!r}")
        tid = ev["tid"]
        if LANE_TID_BASE <= tid < LINK_TID_BASE:
            lanes_seen.add(tid - LANE_TID_BASE)

        stack = stacks.setdefault((ev["pid"], tid), [])
        while stack and stack[-1][1] <= ts + EPS_US:
            stack.pop()  # the enclosing span already closed
        if stack:
            top_start, top_end, top_name = stack[-1]
            if ts + dur > top_end + EPS_US:
                fail(f"event {i} ({ev['name']!r}) on tid {tid}: "
                     f"[{ts}, {ts + dur}] overlaps the end of enclosing "
                     f"{top_name!r} [{top_start}, {top_end}] - spans on one "
                     f"track must nest")
        stack.append((ts, ts + dur, ev.get("name")))

    lanes = other["lanes"]
    if not isinstance(lanes, int) or lanes < 1:
        fail(f"otherData.lanes = {lanes!r} is not a positive integer")
    missing = sorted(set(range(lanes)) - lanes_seen)
    if missing:
        fail(f"lanes {missing} carry no spans (otherData.lanes promises "
             f"{lanes} lanes on tids {LANE_TID_BASE}.."
             f"{LANE_TID_BASE + lanes - 1})")

    if spans != other["spans"]:
        fail(f"{spans} X events but otherData.spans = {other['spans']}")

    print(f"trace_validate: ok: {path}: {spans} spans on "
          f"{len(stacks)} tracks, {lanes} lanes covered, "
          f"tool={other['tool']} version={other['version']} "
          f"strategy={other['strategy']}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", nargs="+",
                        help="Chrome trace-event JSON file(s) to validate")
    args = parser.parse_args()
    for path in args.trace:
        validate(path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
