#!/usr/bin/env bash
# End-to-end smoke test of the serving subsystem (docs/SERVING.md): starts a
# bsr_served daemon on a scratch Unix socket with a scratch durable store,
# drives it with bsr_servectl, and asserts the request-path contract —
# cold run "executed", repeat "memory", byte-identical reports, a clean
# shutdown, and no leaked socket file. Exits 0 on success, non-zero with the
# failing step on stderr otherwise.
#
# Usage: tools/serve_smoke.sh [build-dir]   (default: build)
set -u

BUILD_DIR="${1:-build}"
SERVED="$BUILD_DIR/src/bsr_served"
SERVECTL="$BUILD_DIR/src/bsr_servectl"
WORK_DIR="$(mktemp -d)"
SOCKET="$WORK_DIR/bsr.sock"
STORE="$WORK_DIR/store"
CONFIG='{"n":1024,"b":128}'
SERVED_PID=""

fail() {
    echo "serve_smoke: FAIL: $*" >&2
    [ -n "$SERVED_PID" ] && kill "$SERVED_PID" 2>/dev/null
    exit 1
}

cleanup() {
    [ -n "$SERVED_PID" ] && kill "$SERVED_PID" 2>/dev/null
    rm -rf "$WORK_DIR"
}
trap cleanup EXIT

[ -x "$SERVED" ] || fail "daemon binary not found: $SERVED"
[ -x "$SERVECTL" ] || fail "client binary not found: $SERVECTL"

"$SERVED" --socket "$SOCKET" --store "$STORE" --workers 2 &
SERVED_PID=$!

# The daemon binds before printing its listening line; poll for the socket.
for _ in $(seq 1 100); do
    [ -S "$SOCKET" ] && break
    kill -0 "$SERVED_PID" 2>/dev/null || fail "daemon exited during startup"
    sleep 0.05
done
[ -S "$SOCKET" ] || fail "socket never appeared: $SOCKET"

# Cold run: executed exactly once, report persisted to the store.
COLD=$("$SERVECTL" --socket "$SOCKET" --op run --config "$CONFIG") \
    || fail "cold run request failed"
echo "$COLD" | grep -q '"source":"executed"' \
    || fail "cold run not executed: $COLD"

# Repeat: a memory-cache hit with a byte-identical report payload (strip the
# envelope's source tag, the one legitimate difference).
WARM=$("$SERVECTL" --socket "$SOCKET" --op run --config "$CONFIG") \
    || fail "repeat run request failed"
echo "$WARM" | grep -q '"source":"memory"' \
    || fail "repeat was not a memory-cache hit: $WARM"
COLD_REPORT="${COLD#*\"report\":}"
WARM_REPORT="${WARM#*\"report\":}"
[ "$COLD_REPORT" = "$WARM_REPORT" ] \
    || fail "repeat report differs from cold report"

# Stats reflect the two runs and the store save.
STATS=$("$SERVECTL" --socket "$SOCKET" --op stats) \
    || fail "stats request failed"
echo "$STATS" | grep -q '"executed":1' || fail "expected executed:1: $STATS"
echo "$STATS" | grep -q '"memory_hits":1' \
    || fail "expected memory_hits:1: $STATS"
echo "$STATS" | grep -q '"saves":1' || fail "expected store saves:1: $STATS"

# Graceful shutdown: the daemon exits 0 and unlinks its socket.
"$SERVECTL" --socket "$SOCKET" --op shutdown >/dev/null \
    || fail "shutdown request failed"
wait "$SERVED_PID" || fail "daemon exited non-zero after shutdown"
SERVED_PID=""
[ ! -e "$SOCKET" ] || fail "socket file leaked after shutdown: $SOCKET"

# Restart over the same store: the warm daemon serves from disk, no re-run.
"$SERVED" --socket "$SOCKET" --store "$STORE" --workers 2 &
SERVED_PID=$!
for _ in $(seq 1 100); do
    [ -S "$SOCKET" ] && break
    sleep 0.05
done
RESTART=$("$SERVECTL" --socket "$SOCKET" --op run --config "$CONFIG") \
    || fail "post-restart run request failed"
echo "$RESTART" | grep -q '"source":"store"' \
    || fail "post-restart run not served from the store: $RESTART"
RESTART_REPORT="${RESTART#*\"report\":}"
[ "$RESTART_REPORT" = "$COLD_REPORT" ] \
    || fail "post-restart report differs from cold report"

"$SERVECTL" --socket "$SOCKET" --op shutdown >/dev/null \
    || fail "second shutdown request failed"
wait "$SERVED_PID" || fail "daemon exited non-zero after second shutdown"
SERVED_PID=""

echo "serve_smoke: OK (cold executed, repeat from memory, restart from store)"
