#!/usr/bin/env python3
"""Regenerate and gate the committed throughput records.

Three records, selected with --mode:

  kernels (default) — BENCH_kernels.json. Distills `bench_kernels
      --benchmark_format=json` down to the fields that are stable across
      machines and runs of the same binary: benchmark name, CPU time, and
      the throughput counters (GFLOP/s for the numeric kernels, cells/s and
      runs/s for the simulator hot loop). Timestamps, hostnames, and load
      averages are dropped so the committed file only changes when
      performance changes.

  serve — BENCH_serve.json. Distills `bench_serve --format=json` (the
      serving-subsystem load generator) to one entry per repeat-ratio
      scenario: the gated qps counter plus the client-observed latency
      percentiles, kept as informational trajectory but never gated —
      wall-clock tails move with the host, order-of-magnitude QPS collapses
      do not.

  scale — BENCH_scale.json. Distills `bench_fig14_scale --n 4096 --cluster
      rack_8x8 --devices 1,2,4,8,16,32,64 --format=json` (the rack-scale
      strong/weak scaling sweep) to one entry per (scaling, devices) cell:
      simulated makespan and total GFLOP/s as informational trajectory, plus
      a gated "speedup" counter — gflops_total(d) / gflops_total(1), which
      for strong scaling is the classic speedup and for weak scaling the
      scaled (Gustafson) speedup. Unlike the other two modes these numbers
      come out of the deterministic simulator, so they are bitwise
      reproducible across machines and the scale tolerance defaults to a
      tight 1.05x. Two hard floors apply on top of the per-entry tolerance
      (on --write as well as --check, so a regressed curve can never be
      committed): strong scaling at 8 devices must reach 6.0x, and the
      64-device weak-scaling point must exist.

Usage:
    # Refresh a committed snapshot (run from the repo root):
    python3 tools/perf_gate.py --bench build/bench/bench_kernels --write
    python3 tools/perf_gate.py --mode serve --bench build/bench/bench_serve --write

    # CI regression gate: re-run and fail if any throughput counter dropped
    # below committed/tolerance:
    python3 tools/perf_gate.py --bench build/bench/bench_kernels --check
    python3 tools/perf_gate.py --mode serve --bench build/bench/bench_serve --check

Only the *throughput counters* are gated, never raw times: absolute CPU time
shifts with the runner's hardware, but so do the counters, which is why the
default tolerance is a deliberately generous 3.0x — the gate exists to catch
order-of-magnitude regressions (an accidentally quadratic loop, a defeated
cache, a lost fast path), not single-digit-percent noise. Tighten with
--tolerance for local A/B runs on one machine.

Since the observability retrofit the hot loops carry trace emission sites
(guarded by a null TraceRecorder pointer) and the servers mirror their stats
onto the metrics registry, so this gate doubles as the disabled-tracing
contract: bench_kernels and bench_serve run with tracing OFF, and their
counters staying inside the tolerance bands is what "observability compiled
in costs nothing when idle" means in CI. --min-gated guards that contract
against vacuous passes — if a rename or a filter typo makes the comparison
loop match nothing, the gate fails instead of reporting an empty success.

stdlib only; no third-party imports.
"""

import argparse
import json
import re
import subprocess
import sys
from pathlib import Path

# Counters treated as higher-is-better throughput and therefore gated.
RATE_COUNTERS = ("GFLOP/s", "cells/s", "runs/s", "qps", "speedup")

REGEN_COMMANDS = {
    "kernels":
        "python3 tools/perf_gate.py --bench build/bench/bench_kernels --write",
    "serve":
        "python3 tools/perf_gate.py --mode serve "
        "--bench build/bench/bench_serve --write",
    "scale":
        "python3 tools/perf_gate.py --mode scale "
        "--bench build/bench/bench_fig14_scale --write",
}
DEFAULT_RECORDS = {
    "kernels": "BENCH_kernels.json",
    "serve": "BENCH_serve.json",
    "scale": "BENCH_scale.json",
}

# The canonical scale sweep: the committed record and every CI check run the
# same axes, so entries line up by name across refreshes.
SCALE_ARGS = ("--n", "4096", "--cluster", "rack_8x8",
              "--devices", "1,2,4,8,16,32,64", "--format=json")
# Simulator results are deterministic, so the scale gate can be tight.
SCALE_TOLERANCE = 1.05
# ISSUE 9's headline acceptance bar: the 8-GPU strong-scaling point must
# clear 6x (the pre-rack engine plateaued near 4x), and the weak-scaling
# curve must extend to the full 64-device rack.
SCALE_STRONG_FLOOR = ("scale/strong/devices=8", 6.0)
SCALE_WEAK_REQUIRED = "scale/weak/devices=64"

# Kept as the historical name: the kernels-mode regeneration command, still
# referenced by the CI warning annotations.
REGEN_COMMAND = REGEN_COMMANDS["kernels"]


def run_bench(bench: Path, bench_filter: str) -> dict:
    cmd = [str(bench), "--benchmark_format=json"]
    if bench_filter:
        cmd.append(f"--benchmark_filter={bench_filter}")
    proc = subprocess.run(cmd, stdout=subprocess.PIPE, check=True)
    return json.loads(proc.stdout)


def run_serve_bench(bench: Path) -> list:
    # bench_serve's own defaults ARE the gate scenario (requests, clients,
    # repeat ratios), so the record stays comparable across refreshes.
    proc = subprocess.run([str(bench), "--format=json"],
                          stdout=subprocess.PIPE, check=True)
    return json.loads(proc.stdout)


def run_scale_bench(bench: Path) -> list:
    proc = subprocess.run([str(bench), *SCALE_ARGS],
                          stdout=subprocess.PIPE, check=True)
    return json.loads(proc.stdout)


def sig4(x: float) -> float:
    """Round to 4 significant digits so last-ulp noise never dirties the file."""
    return float(f"{x:.4g}")


def distill(raw: dict) -> dict:
    benches = []
    for b in raw.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        entry = {"name": b["name"], "cpu_time_ms": sig4(b["cpu_time"] / 1e6
                                                        if b.get("time_unit") == "ns"
                                                        else b["cpu_time"])}
        counters = {k: sig4(b[k]) for k in RATE_COUNTERS if k in b}
        if counters:
            entry["counters"] = counters
        benches.append(entry)
    return {"command": REGEN_COMMANDS["kernels"], "benchmarks": benches}


def distill_serve(rows: list) -> dict:
    benches = []
    for row in rows:
        benches.append({
            "name": f"serve/repeat={row['repeat']:g}",
            "p50_ms": sig4(row["p50_ms"]),
            "p95_ms": sig4(row["p95_ms"]),
            "p99_ms": sig4(row["p99_ms"]),
            "counters": {"qps": sig4(row["qps"])},
        })
    return {"command": REGEN_COMMANDS["serve"], "benchmarks": benches}


def distill_scale(rows: list) -> dict:
    # Per-device rows are trajectory detail for humans reading the raw bench;
    # the record keeps only each cell's "total" row.
    totals = [r for r in rows if r["device"] == "total"]
    base = {r["scaling"]: r["gflops"] for r in totals if r["devices"] == 1}
    benches = []
    for row in totals:
        ref = base.get(row["scaling"])
        if not ref:
            raise SystemExit(f"error: scale sweep has no devices=1 baseline "
                             f"for {row['scaling']} scaling")
        benches.append({
            "name": f"scale/{row['scaling']}/devices={row['devices']}",
            "n": row["n"],
            "sim_time_s": sig4(row["time_s"]),
            "gflops": sig4(row["gflops"]),
            "counters": {"speedup": sig4(row["gflops"] / ref)},
        })
    return {"command": REGEN_COMMANDS["scale"], "benchmarks": benches}


def validate_scale(record: dict) -> int:
    """The two hard floors of the scale record; applied to every fresh sweep
    (so --write can never commit a curve that fails them) and to --check."""
    by_name = {b["name"]: b for b in record["benchmarks"]}
    failures = 0
    name, floor = SCALE_STRONG_FLOOR
    entry = by_name.get(name)
    if entry is None:
        print(f"FAIL {name}: missing from scale sweep")
        failures += 1
    elif entry["counters"]["speedup"] < floor:
        print(f"FAIL {name}: speedup {entry['counters']['speedup']:g} below "
              f"the hard floor {floor:g}x")
        failures += 1
    else:
        print(f"ok   {name}: speedup {entry['counters']['speedup']:g} "
              f">= hard floor {floor:g}x")
    if SCALE_WEAK_REQUIRED not in by_name:
        print(f"FAIL {SCALE_WEAK_REQUIRED}: the weak-scaling curve must "
              f"extend to the full 64-device rack")
        failures += 1
    else:
        print(f"ok   {SCALE_WEAK_REQUIRED}: present "
              f"(speedup {by_name[SCALE_WEAK_REQUIRED]['counters']['speedup']:g})")
    return failures


def check(committed: dict, fresh: dict, tolerance: float,
          bench_filter: str = "", regen: str = REGEN_COMMAND) -> "tuple[int, int]":
    by_name = {b["name"]: b for b in fresh["benchmarks"]}
    # A filter narrows the fresh run, so only gate the matching committed
    # entries (Google Benchmark treats the filter as a regex; so do we).
    pattern = re.compile(bench_filter) if bench_filter else None
    failures = 0
    gated = 0
    for ref in committed["benchmarks"]:
        name = ref["name"]
        if pattern and not pattern.search(name):
            continue
        cur = by_name.get(name)
        if cur is None:
            print(f"FAIL {name}: benchmark missing from fresh run")
            failures += 1
            continue
        for counter, ref_val in ref.get("counters", {}).items():
            cur_val = cur.get("counters", {}).get(counter)
            if cur_val is None:
                print(f"FAIL {name}: counter {counter} missing from fresh run")
                failures += 1
                continue
            floor = ref_val / tolerance
            verdict = "ok  " if cur_val >= floor else "FAIL"
            print(f"{verdict} {name} {counter}: {cur_val:g} "
                  f"(committed {ref_val:g}, floor {floor:g})")
            gated += 1
            if cur_val < floor:
                failures += 1
    extra = set(by_name) - {b["name"] for b in committed["benchmarks"]}
    for name in sorted(extra):
        print(f"note {name}: not in committed record "
              f"(refresh with: {regen})")
    return failures, gated


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--mode", choices=("kernels", "serve", "scale"),
                        default="kernels",
                        help="which bench/record pair to drive (default: "
                             "kernels)")
    parser.add_argument("--bench", required=True, type=Path,
                        help="path to the bench binary for the chosen mode")
    parser.add_argument("--record", type=Path, default=None,
                        help="committed record (default: the repo-root "
                             "BENCH_<mode>.json)")
    parser.add_argument("--filter", default="",
                        help="forwarded as --benchmark_filter")
    parser.add_argument("--tolerance", type=float, default=None,
                        help="allowed throughput drop factor for --check "
                             "(default 3.0: cross-machine headroom; mode "
                             "scale defaults to 1.05 because simulated "
                             "speedups are deterministic)")
    parser.add_argument("--min-gated", type=int, default=1,
                        help="fail --check unless at least this many "
                             "throughput counters were actually compared "
                             "(guards against a vacuous pass when a rename "
                             "or filter matches nothing; default 1)")
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--write", action="store_true",
                      help="regenerate the committed record")
    mode.add_argument("--check", action="store_true",
                      help="re-run and gate against the committed record")
    args = parser.parse_args()

    if args.record is None:
        args.record = (Path(__file__).resolve().parent.parent
                       / DEFAULT_RECORDS[args.mode])
    if args.tolerance is None:
        args.tolerance = SCALE_TOLERANCE if args.mode == "scale" else 3.0
    regen = REGEN_COMMANDS[args.mode]

    if not args.bench.exists():
        print(f"error: bench binary not found: {args.bench}", file=sys.stderr)
        return 2

    if args.mode != "kernels" and args.filter:
        print("error: --filter only applies to --mode kernels",
              file=sys.stderr)
        return 2
    if args.mode == "serve":
        fresh = distill_serve(run_serve_bench(args.bench))
    elif args.mode == "scale":
        fresh = distill_scale(run_scale_bench(args.bench))
        # The hard floors bind the fresh sweep in both directions: a --write
        # that would commit a sub-6x curve fails instead of moving the goal.
        if validate_scale(fresh):
            print("\nscale hard floor(s) violated; record not "
                  + ("written" if args.write else "accepted"))
            return 1
    else:
        fresh = distill(run_bench(args.bench, args.filter))

    if args.write:
        args.record.write_text(json.dumps(fresh, indent=1) + "\n")
        print(f"wrote {args.record} ({len(fresh['benchmarks'])} benchmarks)")
        return 0

    if not args.record.exists():
        print(f"error: no committed record at {args.record}; "
              f"create one with: {regen}", file=sys.stderr)
        return 2
    committed = json.loads(args.record.read_text())
    failures, gated = check(committed, fresh, args.tolerance, args.filter,
                            regen)
    if failures:
        print(f"\n{failures} throughput counter(s) below the committed floor "
              f"(tolerance {args.tolerance}x). If the regression is intended, "
              f"refresh with: {regen}")
        return 1
    if gated < args.min_gated:
        print(f"\nerror: only {gated} throughput counter(s) compared, "
              f"--min-gated {args.min_gated} required - the gate would pass "
              f"vacuously; fix the filter or refresh with: {regen}",
              file=sys.stderr)
        return 1
    print(f"\nall {gated} throughput counters within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
