#!/usr/bin/env python3
"""Regenerate and gate the committed kernel/throughput record BENCH_kernels.json.

The record distills `bench_kernels --benchmark_format=json` down to the fields
that are stable across machines and runs of the same binary: benchmark name,
CPU time, and the throughput counters (GFLOP/s for the numeric kernels,
cells/s and runs/s for the simulator hot loop). Timestamps, hostnames, and
load averages are dropped so the committed file only changes when performance
changes.

Usage:
    # Refresh the committed snapshot (run from the repo root):
    python3 tools/perf_gate.py --bench build/bench/bench_kernels --write

    # CI regression gate: re-run and fail if any throughput counter dropped
    # below committed/tolerance:
    python3 tools/perf_gate.py --bench build/bench/bench_kernels --check

Only the *throughput counters* are gated, never raw times: absolute CPU time
shifts with the runner's hardware, but so do the counters, which is why the
default tolerance is a deliberately generous 3.0x — the gate exists to catch
order-of-magnitude regressions (an accidentally quadratic loop, a defeated
cache, a lost fast path), not single-digit-percent noise. Tighten with
--tolerance for local A/B runs on one machine.

stdlib only; no third-party imports.
"""

import argparse
import json
import re
import subprocess
import sys
from pathlib import Path

# Counters treated as higher-is-better throughput and therefore gated.
RATE_COUNTERS = ("GFLOP/s", "cells/s", "runs/s")

REGEN_COMMAND = "python3 tools/perf_gate.py --bench build/bench/bench_kernels --write"


def run_bench(bench: Path, bench_filter: str) -> dict:
    cmd = [str(bench), "--benchmark_format=json"]
    if bench_filter:
        cmd.append(f"--benchmark_filter={bench_filter}")
    proc = subprocess.run(cmd, stdout=subprocess.PIPE, check=True)
    return json.loads(proc.stdout)


def sig4(x: float) -> float:
    """Round to 4 significant digits so last-ulp noise never dirties the file."""
    return float(f"{x:.4g}")


def distill(raw: dict) -> dict:
    benches = []
    for b in raw.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        entry = {"name": b["name"], "cpu_time_ms": sig4(b["cpu_time"] / 1e6
                                                        if b.get("time_unit") == "ns"
                                                        else b["cpu_time"])}
        counters = {k: sig4(b[k]) for k in RATE_COUNTERS if k in b}
        if counters:
            entry["counters"] = counters
        benches.append(entry)
    return {"command": REGEN_COMMAND, "benchmarks": benches}


def check(committed: dict, fresh: dict, tolerance: float,
          bench_filter: str = "") -> int:
    by_name = {b["name"]: b for b in fresh["benchmarks"]}
    # A filter narrows the fresh run, so only gate the matching committed
    # entries (Google Benchmark treats the filter as a regex; so do we).
    pattern = re.compile(bench_filter) if bench_filter else None
    failures = 0
    for ref in committed["benchmarks"]:
        name = ref["name"]
        if pattern and not pattern.search(name):
            continue
        cur = by_name.get(name)
        if cur is None:
            print(f"FAIL {name}: benchmark missing from fresh run")
            failures += 1
            continue
        for counter, ref_val in ref.get("counters", {}).items():
            cur_val = cur.get("counters", {}).get(counter)
            if cur_val is None:
                print(f"FAIL {name}: counter {counter} missing from fresh run")
                failures += 1
                continue
            floor = ref_val / tolerance
            verdict = "ok  " if cur_val >= floor else "FAIL"
            print(f"{verdict} {name} {counter}: {cur_val:g} "
                  f"(committed {ref_val:g}, floor {floor:g})")
            if cur_val < floor:
                failures += 1
    extra = set(by_name) - {b["name"] for b in committed["benchmarks"]}
    for name in sorted(extra):
        print(f"note {name}: not in committed record "
              f"(refresh with: {REGEN_COMMAND})")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench", required=True, type=Path,
                        help="path to the bench_kernels binary")
    parser.add_argument("--record", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_kernels.json",
                        help="committed record (default: repo BENCH_kernels.json)")
    parser.add_argument("--filter", default="",
                        help="forwarded as --benchmark_filter")
    parser.add_argument("--tolerance", type=float, default=3.0,
                        help="allowed throughput drop factor for --check "
                             "(default 3.0: cross-machine headroom)")
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--write", action="store_true",
                      help="regenerate the committed record")
    mode.add_argument("--check", action="store_true",
                      help="re-run and gate against the committed record")
    args = parser.parse_args()

    if not args.bench.exists():
        print(f"error: bench binary not found: {args.bench}", file=sys.stderr)
        return 2

    fresh = distill(run_bench(args.bench, args.filter))

    if args.write:
        args.record.write_text(json.dumps(fresh, indent=1) + "\n")
        print(f"wrote {args.record} ({len(fresh['benchmarks'])} benchmarks)")
        return 0

    if not args.record.exists():
        print(f"error: no committed record at {args.record}; "
              f"create one with: {REGEN_COMMAND}", file=sys.stderr)
        return 2
    committed = json.loads(args.record.read_text())
    failures = check(committed, fresh, args.tolerance, args.filter)
    if failures:
        print(f"\n{failures} throughput counter(s) below the committed floor "
              f"(tolerance {args.tolerance}x). If the regression is intended, "
              f"refresh with: {REGEN_COMMAND}")
        return 1
    print("\nall throughput counters within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
