// Strategy dashboard: one-screen comparison of all four energy-management
// strategies across the three factorizations — the library's "evaluation at a
// glance" (paper Figs. 11-12 condensed), and the shortest real Sweep demo:
// one grid declaration, cached Original baselines, parallel execution.
//
//   ./strategy_dashboard [--n=30720] [--format=table|csv|json]
#include <cstdio>

#include "bsr/bsr.hpp"

using namespace bsr;

int main(int argc, char** argv) {
  Cli cli;
  cli.arg_int("n", 30720, "matrix order")
      .arg_string("format", "table", "output: table, csv, or json");
  if (!cli.parse_or_exit(argc, argv)) return 0;
  const std::string format = cli.get("format");
  require_result_sink_or_exit(format);

  RunConfig base;
  base.n = cli.get_int("n");
  base.b = 0;  // auto-tune

  Axis configs = strategy_axis_labeled(
      {{"original", "Original"}, {"r2h", "R2H"}, {"sr", "SR"}});
  configs.points.push_back({"BSR (max saving)", [](RunConfig& c) {
                              c.strategy = "bsr";
                              c.reclamation_ratio = 0.0;
                            }});
  configs.points.push_back({"BSR (r=0.25)", [](RunConfig& c) {
                              c.strategy = "bsr";
                              c.reclamation_ratio = 0.25;
                            }});

  Sweep sweep(base);
  const SweepResult grid =
      sweep
          .over(factorization_axis({Factorization::Cholesky, Factorization::LU,
                                    Factorization::QR}))
          .over(configs)
          .baseline("original")
          .run();

  if (format != "table") {
    emit(grid, *make_result_sink(format, stdout_stream()));
    return 0;
  }

  const hw::PlatformProfile platform = make_platform(base.platform);
  std::printf("Energy-management dashboard, n=%lld, b=%lld, double precision\n",
              static_cast<long long>(base.n),
              static_cast<long long>(base.block()));
  std::printf("platform: %s + %s\n\n", platform.cpu.name.c_str(),
              platform.gpu.name.c_str());

  for (auto f : {predict::Factorization::Cholesky, predict::Factorization::LU,
                 predict::Factorization::QR}) {
    TablePrinter t({"Strategy", "time (s)", "GFLOP/s", "energy (J)",
                    "saving", "ED2P cut"});
    for (const SweepRow* row : grid.where("factorization", predict::to_string(f))) {
      const RunReport& r = *row->report;
      t.add_row({row->coords.at("strategy"), TablePrinter::fmt(r.seconds(), 2),
                 TablePrinter::fmt(r.gflops(), 0),
                 TablePrinter::fmt(r.total_energy_j(), 0),
                 TablePrinter::pct(row->energy_saving()),
                 TablePrinter::pct(row->ed2p_reduction())});
    }
    std::printf("-- %s --\n%s\n", predict::to_string(f), t.to_string().c_str());
  }
  std::printf("sweep: %zu unique runs for %zu requested (%zu cache hits)\n",
              grid.unique_runs, grid.requested_runs, grid.cache_hits);
  return 0;
}
