// Strategy dashboard: one-screen comparison of all four energy-management
// strategies across the three factorizations — the library's "evaluation at a
// glance" (paper Figs. 11-12 condensed).
//
//   ./strategy_dashboard [--n=30720]
#include <cstdio>

#include "common/cli.hpp"
#include "common/table_printer.hpp"
#include "core/decomposer.hpp"

using namespace bsr;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const std::int64_t n = cli.get_int("n", 30720);
  const std::int64_t b = core::tuned_block(n);
  const core::Decomposer dec;

  std::printf("Energy-management dashboard, n=%lld, b=%lld, double precision\n",
              static_cast<long long>(n), static_cast<long long>(b));
  std::printf("platform: %s + %s\n\n", dec.platform().cpu.name.c_str(),
              dec.platform().gpu.name.c_str());

  for (auto f : {predict::Factorization::Cholesky, predict::Factorization::LU,
                 predict::Factorization::QR}) {
    core::RunOptions o;
    o.factorization = f;
    o.n = n;
    o.b = b;
    o.strategy = core::StrategyKind::Original;
    const core::RunReport org = dec.run(o);

    TablePrinter t({"Strategy", "time (s)", "GFLOP/s", "energy (J)",
                    "saving", "ED2P cut"});
    auto add = [&](const char* name, const core::RunReport& r) {
      t.add_row({name, TablePrinter::fmt(r.seconds(), 2),
                 TablePrinter::fmt(r.gflops(), 0),
                 TablePrinter::fmt(r.total_energy_j(), 0),
                 TablePrinter::pct(r.energy_saving_vs(org)),
                 TablePrinter::pct(r.ed2p_reduction_vs(org))});
    };
    add("Original", org);
    for (auto s : {core::StrategyKind::R2H, core::StrategyKind::SR}) {
      o.strategy = s;
      add(core::to_string(s), dec.run(o));
    }
    o.strategy = core::StrategyKind::BSR;
    o.reclamation_ratio = 0.0;
    add("BSR (max saving)", dec.run(o));
    o.reclamation_ratio = 0.25;
    add("BSR (r=0.25)", dec.run(o));
    std::printf("-- %s --\n%s\n", predict::to_string(f), t.to_string().c_str());
  }
  return 0;
}
