// Quickstart: run one energy-optimized LU decomposition and read the report.
//
//   ./quickstart [--n=30720] [--b=0] [--fact=lu|cholesky|qr]
//                [--strategy=original|r2h|sr|bsr] [--r=0.0]
//
// The run executes on the simulated paper platform (i7-9700K + RTX 2080 Ti,
// see DESIGN.md); timing-only mode finishes in milliseconds at any size.
// Everything below uses only the stable facade: bsr::RunConfig + bsr::run
// (see example_energy_tuning / example_strategy_dashboard for the Sweep API).
#include <cstdio>

#include "bsr/bsr.hpp"

int main(int argc, char** argv) {
  bsr::Cli cli;
  cli.arg_int("n", 30720, "matrix order")
      .arg_int("b", 0, "block (panel) size (0 = auto-tune)")
      .arg_string("fact", "lu", "factorization: lu, cholesky, or qr")
      .arg_string("strategy", "bsr",
                  "energy strategy (bsr::strategies() registry key)")
      .arg_double("r", 0.0, "BSR reclamation ratio in [0, 1]");
  if (!cli.parse_or_exit(argc, argv)) return 0;

  bsr::RunConfig config;
  config.n = cli.get_int("n");
  config.b = cli.get_int("b");
  config.strategy = cli.get("strategy");
  config.reclamation_ratio = cli.get_double("r");
  try {
    config.factorization =
        bsr::core::factorization_from_string(cli.get("fact"));
    config.validate();  // rejects bad r, b > n, unknown strategy names, ...
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  const bsr::RunReport report = bsr::run(config);

  std::printf("%s\n\n", bsr::core::summarize(report).c_str());
  std::printf("  wall time        : %.2f s\n", report.seconds());
  std::printf("  throughput       : %.1f GFLOP/s\n", report.gflops());
  std::printf("  CPU energy       : %.0f J\n", report.cpu_energy_j());
  std::printf("  GPU energy       : %.0f J\n", report.gpu_energy_j());
  std::printf("  ED2P             : %.0f J*s^2\n", report.ed2p());
  std::printf("  ABFT-protected   : %d of %zu iterations (%d single, %d full)\n",
              report.abft.iterations_protected_single +
                  report.abft.iterations_protected_full,
              report.trace.iterations.size(),
              report.abft.iterations_protected_single,
              report.abft.iterations_protected_full);

  // Compare against the unmanaged baseline to see what the strategy bought.
  bsr::RunConfig baseline = config;
  baseline.strategy = "original";
  const bsr::RunReport original = bsr::run(baseline);
  std::printf("\n  vs Original      : %.1f%% energy saved, %.2fx speed\n",
              100.0 * report.energy_saving_vs(original),
              report.speedup_vs(original));
  return 0;
}
