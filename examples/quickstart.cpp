// Quickstart: run one energy-optimized LU decomposition and read the report.
//
//   ./quickstart [--n=30720] [--b=512] [--fact=lu|cholesky|qr]
//                [--strategy=original|r2h|sr|bsr] [--r=0.0]
//
// The run executes on the simulated paper platform (i7-9700K + RTX 2080 Ti,
// see DESIGN.md); timing-only mode finishes in milliseconds at any size.
#include <cstdio>

#include "common/cli.hpp"
#include "core/decomposer.hpp"

int main(int argc, char** argv) {
  const bsr::Cli cli(argc, argv);

  bsr::core::RunOptions options;
  options.n = cli.get_int("n", 30720);
  options.b = cli.get_int("b", bsr::core::tuned_block(options.n));
  options.factorization =
      bsr::core::factorization_from_string(cli.get("fact", "lu"));
  options.strategy = bsr::core::strategy_from_string(cli.get("strategy", "bsr"));
  options.reclamation_ratio = cli.get_double("r", 0.0);

  const bsr::core::Decomposer decomposer;  // paper-default platform
  const bsr::core::RunReport report = decomposer.run(options);

  std::printf("%s\n\n", bsr::core::summarize(report).c_str());
  std::printf("  wall time        : %.2f s\n", report.seconds());
  std::printf("  throughput       : %.1f GFLOP/s\n", report.gflops());
  std::printf("  CPU energy       : %.0f J\n", report.cpu_energy_j());
  std::printf("  GPU energy       : %.0f J\n", report.gpu_energy_j());
  std::printf("  ED2P             : %.0f J*s^2\n", report.ed2p());
  std::printf("  ABFT-protected   : %d of %zu iterations (%d single, %d full)\n",
              report.abft.iterations_protected_single +
                  report.abft.iterations_protected_full,
              report.trace.iterations.size(),
              report.abft.iterations_protected_single,
              report.abft.iterations_protected_full);

  // Compare against the unmanaged baseline to see what the strategy bought.
  bsr::core::RunOptions baseline = options;
  baseline.strategy = bsr::core::StrategyKind::Original;
  const bsr::core::RunReport original = decomposer.run(baseline);
  std::printf("\n  vs Original      : %.1f%% energy saved, %.2fx speed\n",
              100.0 * report.energy_saving_vs(original),
              report.speedup_vs(original));
  return 0;
}
