// Fault-tolerant solve: a linear system factorized under aggressive
// overclocking, with SDCs injected into the trailing updates and repaired by
// adaptive ABFT — the paper's ABFT-OC in action, end to end with real math.
//
// Scenario: a time-critical control application (the paper's intro motivates
// power-grid transient stability and adaptive optics) needs the fastest
// factorization the hardware can deliver, but silent corruption of the
// factors would be catastrophic.
//
//   ./fault_tolerant_solve [--n=768] [--b=32] [--rate_multiplier=150]
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "core/decomposer.hpp"

using namespace bsr;

namespace {

void report(const char* name, const core::RunReport& r) {
  std::printf("%-22s residual %.2e  injected %2d  corrected %2d  -> %s\n", name,
              r.residual, r.abft.errors_injected_total(),
              r.abft.corrected_0d + r.abft.corrected_1d,
              r.numeric_correct ? "factors intact" : "FACTORS CORRUPTED");
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  core::RunOptions options;
  options.factorization = predict::Factorization::LU;
  options.n = cli.get_int("n", 768);
  options.b = cli.get_int("b", 32);
  options.strategy = core::StrategyKind::BSR;
  options.reclamation_ratio = 0.25;  // overclock into SDC territory
  options.fc_desired = 0.999;
  options.mode = core::ExecutionMode::Numeric;
  options.error_rate_multiplier = cli.get_double("rate_multiplier", 150.0);
  options.seed = cli.get_int("seed", 11);

  // numeric_demo: paper-scale op durations at a numerically tractable size.
  const core::Decomposer dec(hw::PlatformProfile::numeric_demo());

  std::printf("LU factorization of a %lldx%lld system under BSR r=0.25\n"
              "(GPU overclocked past its fault-free limit in late iterations)\n\n",
              static_cast<long long>(options.n),
              static_cast<long long>(options.n));

  const core::RunReport unprotected =
      dec.run(options, core::ExtendedOptions{core::AbftPolicy::ForceNone});
  report("No fault tolerance:", unprotected);

  const core::RunReport adaptive = dec.run(options);
  report("Adaptive ABFT:", adaptive);

  const core::RunReport full =
      dec.run(options, core::ExtendedOptions{core::AbftPolicy::ForceFull});
  report("Always-on full ABFT:", full);

  std::printf(
      "\nAdaptive ABFT protected %d of %zu iterations (%d single-side, %d "
      "full)\nand spent %.1f%% less GPU time on checksums than always-on "
      "full.\n",
      adaptive.abft.iterations_protected_single +
          adaptive.abft.iterations_protected_full,
      adaptive.trace.iterations.size(),
      adaptive.abft.iterations_protected_single,
      adaptive.abft.iterations_protected_full,
      100.0 * (1.0 - [&] {
        double a = 0.0;
        double f = 0.0;
        for (const auto& it : adaptive.trace.iterations) {
          a += it.abft_time.seconds();
        }
        for (const auto& it : full.trace.iterations) f += it.abft_time.seconds();
        return f > 0.0 ? a / f : 1.0;
      }()));
  return 0;
}
