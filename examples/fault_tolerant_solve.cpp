// Fault-tolerant solve: a linear system factorized under aggressive
// overclocking, with SDCs injected into the trailing updates and repaired by
// adaptive ABFT — the paper's ABFT-OC in action, end to end with real math.
//
// Scenario: a time-critical control application (the paper's intro motivates
// power-grid transient stability and adaptive optics) needs the fastest
// factorization the hardware can deliver, but silent corruption of the
// factors would be catastrophic.
//
//   ./fault_tolerant_solve [--n=768] [--b=32] [--rate_multiplier=150]
//
// The three protection levels run as one bsr::Sweep over the ABFT-policy
// axis on the numeric_demo platform.
#include <cstdio>

#include "bsr/bsr.hpp"

using namespace bsr;

int main(int argc, char** argv) {
  Cli cli;
  cli.arg_int("n", 768, "matrix order")
      .arg_int("b", 32, "block (panel) size")
      .arg_double("rate_multiplier", 150.0,
                  "SDC exposure compression factor (see DESIGN.md)")
      .arg_int("seed", 11, "root seed");
  if (!cli.parse_or_exit(argc, argv)) return 0;

  RunConfig config;
  config.factorization = Factorization::LU;
  config.n = cli.get_int("n");
  config.b = cli.get_int("b");
  config.strategy = "bsr";
  config.reclamation_ratio = 0.25;  // overclock into SDC territory
  config.fc_desired = 0.999;
  config.mode = ExecutionMode::Numeric;
  config.error_rate_multiplier = cli.get_double("rate_multiplier");
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  // numeric_demo: paper-scale op durations at a numerically tractable size.
  config.platform = "numeric_demo";

  std::printf("LU factorization of a %lldx%lld system under BSR r=0.25\n"
              "(GPU overclocked past its fault-free limit in late iterations)\n\n",
              static_cast<long long>(config.n),
              static_cast<long long>(config.n));

  const SweepResult runs =
      Sweep(config).over(abft_axis({"none", "adaptive", "full"})).run();
  const auto report_row = [&](const char* name, const char* policy) {
    const RunReport& r = *runs.at({{"abft", policy}}).report;
    std::printf("%-22s residual %.2e  injected %2d  corrected %2d  -> %s\n",
                name, r.residual, r.abft.errors_injected_total(),
                r.abft.corrected_0d + r.abft.corrected_1d,
                r.numeric_correct ? "factors intact" : "FACTORS CORRUPTED");
  };
  report_row("No fault tolerance:", "none");
  report_row("Adaptive ABFT:", "adaptive");
  report_row("Always-on full ABFT:", "full");

  const RunReport& adaptive = *runs.at({{"abft", "adaptive"}}).report;
  const RunReport& full = *runs.at({{"abft", "full"}}).report;
  double adaptive_chk = 0.0;
  double full_chk = 0.0;
  for (const auto& it : adaptive.trace.iterations) {
    adaptive_chk += it.abft_time.seconds();
  }
  for (const auto& it : full.trace.iterations) full_chk += it.abft_time.seconds();
  std::printf(
      "\nAdaptive ABFT protected %d of %zu iterations (%d single-side, %d "
      "full)\nand spent %.1f%% less GPU time on checksums than always-on "
      "full.\n",
      adaptive.abft.iterations_protected_single +
          adaptive.abft.iterations_protected_full,
      adaptive.trace.iterations.size(),
      adaptive.abft.iterations_protected_single,
      adaptive.abft.iterations_protected_full,
      100.0 * (1.0 - (full_chk > 0.0 ? adaptive_chk / full_chk : 1.0)));
  return 0;
}
