// Energy tuning: pick a BSR operating point on the Pareto front.
//
// Scenario: a cluster operator runs nightly 30720^2 Cholesky factorizations
// (e.g. covariance solves) and wants the fastest configuration that does not
// exceed the Original design's energy bill — exactly the trade-off the
// paper's reclamation ratio controls.
//
//   ./energy_tuning [--n=30720] [--fact=cholesky] [--budget=1.0]
//
// --budget is the allowed energy relative to Original (1.0 = no extra energy).
// The r-scan is one bsr::Sweep: all twelve BSR points share a single cached
// Original baseline and run in parallel on the thread pool.
#include <cstdio>

#include "bsr/bsr.hpp"

using namespace bsr;

int main(int argc, char** argv) {
  Cli cli;
  cli.arg_int("n", 30720, "matrix order")
      .arg_string("fact", "cholesky", "factorization: lu, cholesky, or qr")
      .arg_double("budget", 1.0, "allowed energy relative to Original");
  if (!cli.parse_or_exit(argc, argv)) return 0;
  const double budget = cli.get_double("budget");

  RunConfig config;
  config.n = cli.get_int("n");
  config.b = 0;  // auto-tune
  config.factorization = core::factorization_from_string(cli.get("fact"));
  config.strategy = "bsr";

  std::vector<double> rs;
  for (double r = 0.0; r <= 0.55; r += 0.05) rs.push_back(r);
  const SweepResult scan =
      Sweep(config).over(ratio_axis(rs)).baseline("original").run();

  const RunReport& original = *scan.rows.front().baseline;
  std::printf("Baseline (Original): %.2f s, %.0f J\n\n", original.seconds(),
              original.total_energy_j());

  // The analytic starting point from the paper's closed forms...
  const double r_star = energy::average_energy_neutral_r(
      original.trace, make_platform(config.platform));
  std::printf("Analytic energy-neutral r* (paper §3.2.3): %.3f\n\n", r_star);

  // ...refined by the actual sweep of the simulator.
  TablePrinter t({"r", "time (s)", "energy (J)", "speedup", "energy vs budget"});
  double best_r = 0.0;
  double best_speedup = 0.0;
  for (const SweepRow& row : scan.rows) {
    const RunReport& rep = *row.report;
    const double rel = rep.total_energy_j() / original.total_energy_j();
    const bool ok = rel <= budget;
    if (ok && row.speedup() > best_speedup) {
      best_speedup = row.speedup();
      best_r = row.config.reclamation_ratio;
    }
    t.add_row({TablePrinter::fmt(row.config.reclamation_ratio, 2),
               TablePrinter::fmt(rep.seconds(), 2),
               TablePrinter::fmt(rep.total_energy_j(), 0),
               TablePrinter::fmt(row.speedup(), 2) + "x",
               TablePrinter::pct(rel / budget) + (ok ? " ok" : " over")});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("Recommended operating point: r = %.2f (%.2fx faster than the\n"
              "Original design at <= %.0f%% of its energy)\n",
              best_r, best_speedup, budget * 100.0);
  return 0;
}
