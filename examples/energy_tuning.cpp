// Energy tuning: pick a BSR operating point on the Pareto front.
//
// Scenario: a cluster operator runs nightly 30720^2 Cholesky factorizations
// (e.g. covariance solves) and wants the fastest configuration that does not
// exceed the Original design's energy bill — exactly the trade-off the
// paper's reclamation ratio controls.
//
//   ./energy_tuning [--n=30720] [--fact=cholesky] [--budget=1.0]
//
// --budget is the allowed energy relative to Original (1.0 = no extra energy).
#include <cstdio>

#include "common/cli.hpp"
#include "common/table_printer.hpp"
#include "core/decomposer.hpp"
#include "energy/pareto.hpp"

using namespace bsr;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  core::RunOptions options;
  options.n = cli.get_int("n", 30720);
  options.b = core::tuned_block(options.n);
  options.factorization =
      core::factorization_from_string(cli.get("fact", "cholesky"));
  const double budget = cli.get_double("budget", 1.0);

  const core::Decomposer dec;
  options.strategy = core::StrategyKind::Original;
  const core::RunReport original = dec.run(options);
  std::printf("Baseline (Original): %.2f s, %.0f J\n\n", original.seconds(),
              original.total_energy_j());

  // The analytic starting point from the paper's closed forms...
  const double r_star =
      energy::average_energy_neutral_r(original.trace, dec.platform());
  std::printf("Analytic energy-neutral r* (paper §3.2.3): %.3f\n\n", r_star);

  // ...refined by an actual sweep of the simulator.
  options.strategy = core::StrategyKind::BSR;
  TablePrinter t({"r", "time (s)", "energy (J)", "speedup", "energy vs budget"});
  double best_r = 0.0;
  double best_speedup = 0.0;
  for (double r = 0.0; r <= 0.55; r += 0.05) {
    options.reclamation_ratio = r;
    const core::RunReport rep = dec.run(options);
    const double rel = rep.total_energy_j() / original.total_energy_j();
    const bool ok = rel <= budget;
    if (ok && rep.speedup_vs(original) > best_speedup) {
      best_speedup = rep.speedup_vs(original);
      best_r = r;
    }
    t.add_row({TablePrinter::fmt(r, 2), TablePrinter::fmt(rep.seconds(), 2),
               TablePrinter::fmt(rep.total_energy_j(), 0),
               TablePrinter::fmt(rep.speedup_vs(original), 2) + "x",
               TablePrinter::pct(rel / budget) + (ok ? " ok" : " over")});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("Recommended operating point: r = %.2f (%.2fx faster than the\n"
              "Original design at <= %.0f%% of its energy)\n",
              best_r, best_speedup, budget * 100.0);
  return 0;
}
