// Scale-out quickstart: one factorization distributed over N simulated GPUs.
//
//   ./build/examples/example_cluster_solve --devices=4 --strategy=bsr
//
// Demonstrates the bsr::ClusterConfig facade: configure the base run exactly
// like a single-node bsr::RunConfig, pick a device count and a cluster
// profile, and read back the per-device energy/time breakdown. See the
// README's "Scale-out quickstart" and docs/ARCHITECTURE.md (src/cluster).
#include <cstdio>
#include <stdexcept>

#include "bsr/bsr.hpp"

using namespace bsr;

int main(int argc, char** argv) {
  Cli cli;
  cli.arg_int("n", 30720, "matrix order")
      .arg_int("devices", 4, "number of simulated GPUs (>= 1)")
      .arg_string("strategy", "bsr", "strategy registry key")
      .arg_double("r", 0.0, "BSR reclamation ratio in [0, 1]")
      .arg_string("profile", "paper_cluster",
                  "cluster profile registry key (try nvlink_pairs)");
  if (!cli.parse_or_exit(argc, argv)) return 0;

  ClusterConfig cc;
  cc.base.n = cli.get_int("n");
  cc.base.strategy = cli.get("strategy");
  cc.base.reclamation_ratio = cli.get_double("r");
  cc.devices = static_cast<int>(cli.get_int("devices"));
  cc.profile = cli.get("profile");

  ClusterReport report;
  try {
    report = run_cluster_detailed(cc);
  } catch (const std::invalid_argument& e) {
    // Out-of-range values (--devices=0, --r=2, unknown --profile) fail
    // loudly, in the same style as Cli::parse_or_exit.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  std::printf("== %s, n=%lld on %d x GPU (%s) ==\n\n", cc.base.strategy.c_str(),
              static_cast<long long>(cc.base.n), cc.devices,
              cc.profile.c_str());
  TablePrinter t({"Device", "Busy (s)", "Idle (s)", "DVFS (s)", "Energy (J)",
                  "GFLOP/s", "Final MHz"});
  const auto row = [&t](const DeviceUsage& d) {
    char busy[32], idle[32], dvfs[32], energy[32], gflops[32];
    std::snprintf(busy, sizeof(busy), "%.3f", d.busy_s);
    std::snprintf(idle, sizeof(idle), "%.3f", d.idle_s);
    std::snprintf(dvfs, sizeof(dvfs), "%.3f", d.dvfs_s);
    std::snprintf(energy, sizeof(energy), "%.0f", d.energy_j);
    std::snprintf(gflops, sizeof(gflops), "%.1f", d.gflops());
    t.add_row({d.name, busy, idle, dvfs, energy, gflops,
               std::to_string(d.final_mhz)});
  };
  row(report.host);
  for (const DeviceUsage& d : report.devices) row(d);
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "makespan %.3f s, total energy %.0f J, ED2P %.3g J*s^2, "
      "protected device-iterations %lld\n",
      report.seconds(), report.total_energy_j(), report.ed2p(),
      static_cast<long long>(report.iters_protected()));
  return 0;
}
