// Energy accounting over the simulated timeline.
//
// Substitutes for the paper's CPU-package / GPU-device energy instrumentation:
// strategies record (device, power, duration, tag) segments and the meter
// integrates joules, keeping busy/idle/overhead breakdowns for the
// per-iteration figures (paper Fig. 10).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/sim_time.hpp"

namespace bsr::hw {

enum class DeviceId { Cpu = 0, Gpu = 1 };

struct EnergySegment {
  DeviceId device = DeviceId::Cpu;
  SimTime start;
  SimTime duration;
  double power_w = 0.0;
  std::string tag;  ///< e.g. "PD", "TMU", "idle", "abft", "dvfs"
};

class EnergyMeter {
 public:
  void record(DeviceId dev, SimTime start, SimTime duration, double power_w,
              std::string tag);

  [[nodiscard]] double total_joules() const;
  [[nodiscard]] double joules(DeviceId dev) const;
  [[nodiscard]] double joules(DeviceId dev, const std::string& tag) const;
  [[nodiscard]] const std::vector<EnergySegment>& segments() const {
    return segments_;
  }
  void clear();

 private:
  std::vector<EnergySegment> segments_;
  double totals_[2] = {0.0, 0.0};
  std::map<std::pair<int, std::string>, double> by_tag_;
};

}  // namespace bsr::hw
