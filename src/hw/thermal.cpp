#include "hw/thermal.hpp"

namespace bsr::hw {

double ThermalModel::max_sustained_temp(Mhz f, Guardband g,
                                        const PowerModel& power,
                                        const GuardbandModel& gb,
                                        const FrequencyDomain& dom) const {
  return ambient_c + r_th_c_per_w * power.busy_power(f, g, gb, dom);
}

}  // namespace bsr::hw
