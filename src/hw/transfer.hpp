// Host<->device transfer model (PCIe-like link).
#pragma once

#include "common/sim_time.hpp"

namespace bsr::hw {

struct TransferModel {
  double bandwidth_gbs = 12.0;  ///< sustained PCIe 3.0 x16
  SimTime latency = SimTime::from_micros(10.0);

  [[nodiscard]] SimTime time_for_bytes(double bytes) const;
};

}  // namespace bsr::hw
