// Voltage-guardband model.
//
// The paper's guardband optimization (CPU Vcore offset -150 mV, GPU clock
// offset +200, Table 3) has two effects that the rest of the stack consumes:
//   1. a *power reduction factor* alpha(f) < 1 — the same clock runs at lower
//      voltage and therefore lower dynamic power (paper Fig. 5(a));
//   2. an *extended reliable-frequency range* — overclocked states become
//      reachable, at the price of SDCs above the fault-free limit (Fig. 5(b)).
// Effect (2) is expressed through FrequencyDomain::max_oc_mhz and the
// ErrorRateModel; this class models effect (1).
#pragma once

#include "hw/frequency.hpp"

namespace bsr::hw {

enum class Guardband { Default, Optimized };

struct GuardbandModel {
  /// alpha at the low end of the frequency range (deepest undervolt headroom).
  double alpha_floor = 0.78;
  /// alpha approached at max_oc_mhz, where voltage must be restored.
  double alpha_ceiling = 1.0;
  /// Shape exponent of the rise from floor to ceiling.
  double shape = 2.0;

  /// Power reduction factor at frequency f. Default guardband is 1 by
  /// definition; the optimized curve rises from alpha_floor toward
  /// alpha_ceiling as f approaches the overclocking limit.
  [[nodiscard]] double alpha(Mhz f, Guardband g, const FrequencyDomain& dom) const;
};

}  // namespace bsr::hw
