// SDC error-rate model R(f, ErrType) — paper §3.1.2.
//
// With the optimized guardband, frequencies above the fault-free limit run at
// insufficient core voltage and suffer silent data corruptions at a rate that
// grows with clock. Rates are classified by degree of error propagation:
// 0D (standalone element), 1D (row/column), 2D (beyond one row/column).
// The table is piecewise per 100 MHz grid point with linear interpolation in
// between, shaped like the paper's Fig. 5(b) measurements: fault-free through
// 1700 MHz, 0D errors from 1800 MHz, 1D from 2000 MHz, 2D trace-level at the
// very top.
#pragma once

#include <map>
#include <vector>

#include "hw/frequency.hpp"
#include "hw/guardband.hpp"

namespace bsr::hw {

enum class ErrType { D0 = 0, D1 = 1, D2 = 2 };

struct ErrorRates {
  double d0 = 0.0;  ///< events / second of busy execution
  double d1 = 0.0;
  double d2 = 0.0;

  [[nodiscard]] double of(ErrType t) const {
    switch (t) {
      case ErrType::D0: return d0;
      case ErrType::D1: return d1;
      case ErrType::D2: return d2;
    }
    return 0.0;
  }
  [[nodiscard]] double total() const { return d0 + d1 + d2; }
  [[nodiscard]] bool fault_free() const { return total() <= 0.0; }
};

class ErrorRateModel {
 public:
  ErrorRateModel() = default;

  /// `table` maps frequency (MHz) to rates; frequencies below the smallest key
  /// are fault-free. With the *default* guardband every reachable frequency is
  /// fault-free (the default guardband exists precisely to guarantee that).
  explicit ErrorRateModel(std::map<Mhz, ErrorRates> table);

  [[nodiscard]] ErrorRates rates(Mhz f, Guardband g) const;
  [[nodiscard]] double lambda(Mhz f, ErrType t, Guardband g) const;

  /// Highest frequency with zero error rate under the optimized guardband.
  [[nodiscard]] Mhz fault_free_max(const FrequencyDomain& dom) const;

  /// A copy with every rate multiplied by `factor` — used to compress
  /// paper-scale fault exposure into reduced-size numeric experiments while
  /// keeping coverage estimation, frequency policy, and injection consistent.
  [[nodiscard]] ErrorRateModel scaled(double factor) const;

 private:
  std::map<Mhz, ErrorRates> table_;
};

}  // namespace bsr::hw
