#include "hw/platform.hpp"

namespace bsr::hw {

PlatformProfile PlatformProfile::paper_default() {
  PlatformProfile p;

  // --- CPU: Intel Core i7-9700K (Table 3) -----------------------------------
  // Base 3.5 GHz, DVFS floor 0.8 GHz, overclocking 3.6-4.5 GHz in 0.1 steps.
  // The CPU overclocks even with the default guardband on the paper's testbed;
  // the optimized guardband (-150 mV) lowers power at the same clock. SDCs are
  // never observed on the CPU (paper §3.1.2), so its error table is empty.
  p.cpu.name = "i7-9700K (simulated)";
  p.cpu.freq = {.min_mhz = 800,
                .base_mhz = 3500,
                .max_default_mhz = 4500,
                .max_oc_mhz = 4500,
                .step_mhz = 100};
  p.cpu.guardband = {.alpha_floor = 0.80, .alpha_ceiling = 1.0, .shape = 2.4};
  // 110 W: an overclock-configured i7-9700K package under all-core MKL load.
  // Idle activity is high because the Original baseline pins the clock at
  // base with autoboost disabled: no deep C-states, clock tree + uncore keep
  // drawing a large share of dynamic power while the panel lane waits.
  p.cpu.power = {.total_power_base_w = 110.0,
                 .dynamic_fraction = 0.85,
                 .idle_activity = 0.50,
                 .exponent = 2.4};
  // The panel factorization (getf2/potf2/geqr2 on a tall panel) is latency-
  // and bandwidth-bound; ~21 GFLOP/s at base puts the slack crossover around
  // iteration ~50 of 60 at n=30720, b=512 (paper Fig. 2 / Fig. 10: CPU-side
  // slack at iteration 2, GPU-side at iteration 50+).
  p.cpu.perf = {.blas3_gflops_base = 120.0,
                .panel_gflops_base = 21.0,
                .checksum_gflops_base = 12.0,
                .mem_bandwidth_gbs = 40.0,
                .freq_exponent = 0.9};
  p.cpu.errors = ErrorRateModel{};  // fault-free at every reachable state
  p.cpu.thermal = {.ambient_c = 28.0, .r_th_c_per_w = 0.45};
  p.cpu.dvfs_latency = SimTime::from_micros(500.0);

  // --- GPU: NVIDIA RTX 2080 Ti (Table 3) -------------------------------------
  // Base 1.3 GHz; optimized guardband (clock offset +200) opens 1.4-2.2 GHz.
  // Fault-free through 1700 MHz; 0D SDCs from 1800 MHz, 1D from 2000 MHz, 2D
  // trace-level at the top (shape of Fig. 5(b), regime of Table 1 / Fig. 9).
  p.gpu.name = "RTX 2080 Ti (simulated)";
  p.gpu.freq = {.min_mhz = 300,
                .base_mhz = 1300,
                .max_default_mhz = 1300,
                .max_oc_mhz = 2200,
                .step_mhz = 100};
  // Fig. 5(a): the optimized guardband's power reduction factor dips to ~0.7
  // in the mid-frequency range and climbs back toward 1 at the overclocking
  // limit, where the voltage must be restored.
  p.gpu.guardband = {.alpha_floor = 0.70, .alpha_ceiling = 1.02, .shape = 2.6};
  // 160 W: a double-precision GEMM stream on a 2080 Ti is nowhere near the
  // card's 250 W board limit (the 1/32-rate FP64 units bottleneck the SMs).
  p.gpu.power = {.total_power_base_w = 160.0,
                 .dynamic_fraction = 0.72,
                 .idle_activity = 0.32,
                 .exponent = 2.4};
  p.gpu.perf = {.blas3_gflops_base = 420.0,
                .panel_gflops_base = 60.0,
                .checksum_gflops_base = 70.0,
                .mem_bandwidth_gbs = 616.0,
                .freq_exponent = 1.0};
  // Calibrated so that at the paper's exposure windows (fractions of a second
  // per detection interval at n = 30720) single-side checksums reach the
  // "Full Coverage" bar through 1900 MHz and full checksums hold it through
  // 2200 MHz, as in Table 1, while unprotected runs accumulate a substantial
  // corruption probability over a whole decomposition (Fig. 9).
  p.gpu.errors = ErrorRateModel(std::map<Mhz, ErrorRates>{
      {1700, {.d0 = 0.0, .d1 = 0.0, .d2 = 0.0}},
      {1800, {.d0 = 0.010, .d1 = 0.0, .d2 = 0.0}},
      {1900, {.d0 = 0.030, .d1 = 0.0, .d2 = 0.0}},
      {2000, {.d0 = 0.080, .d1 = 0.004, .d2 = 5e-8}},
      {2100, {.d0 = 0.180, .d1 = 0.012, .d2 = 1e-7}},
      {2200, {.d0 = 0.350, .d1 = 0.025, .d2 = 3e-7}},
  });
  p.gpu.thermal = {.ambient_c = 30.0, .r_th_c_per_w = 0.18};
  // Setting locked clocks through NVML takes tens of milliseconds; this is
  // the L^GPU the BSR algorithm compensates for, and what drives the clock
  // staircase once the late iterations shrink toward the latency scale.
  p.gpu.dvfs_latency = SimTime::from_millis(20.0);

  // PCIe 3.0 x16.
  p.link = {.bandwidth_gbs = 12.0, .latency = SimTime::from_micros(10.0)};
  return p;
}

PlatformProfile PlatformProfile::numeric_demo(double slowdown) {
  PlatformProfile p = paper_default();
  auto slow = [&](PerfModel& perf) {
    perf.blas3_gflops_base /= slowdown;
    perf.panel_gflops_base /= slowdown;
    perf.checksum_gflops_base /= slowdown;
    perf.mem_bandwidth_gbs /= slowdown;
  };
  slow(p.cpu.perf);
  slow(p.gpu.perf);
  p.link.bandwidth_gbs /= slowdown;
  return p;
}

PlatformProfile PlatformProfile::test_small() {
  PlatformProfile p = paper_default();
  // Exaggerate the CPU/GPU imbalance so small test matrices still produce
  // clearly signed slack on both sides of the crossover.
  p.cpu.perf.panel_gflops_base = 4.0;
  p.gpu.perf.blas3_gflops_base = 100.0;
  p.cpu.dvfs_latency = SimTime::from_micros(50.0);
  p.gpu.dvfs_latency = SimTime::from_micros(500.0);
  return p;
}

}  // namespace bsr::hw
