// Processor power model.
//
// The paper's energy analysis (§3.2.3) models total power as a static part
// plus a dynamic part with P_dynamic ∝ f^2.4 [Efraim et al.], scaled by the
// guardband power-reduction factor alpha. We implement exactly that:
//
//   P_busy(f, g) = P_static + alpha(f, g) * P_dyn_base * (f / f_base)^2.4
//   P_idle(f)    = P_static + idle_activity * P_dyn_base * (f / f_base)^2.4
//
// where d = P_dyn_base / P_total_base is the dynamic fraction the paper calls
// d^{CPU/GPU}. Idle retains a small clock-dependent activity factor (clock
// tree, caches), which is what makes Race-to-Halt's drop-to-minimum worthwhile.
#pragma once

#include "hw/frequency.hpp"
#include "hw/guardband.hpp"

namespace bsr::hw {

struct PowerModel {
  double total_power_base_w = 0.0;  ///< busy power at base clock, default guardband
  double dynamic_fraction = 0.7;    ///< d in the paper's equations
  double idle_activity = 0.15;      ///< fraction of dynamic power drawn when idle
  double exponent = 2.4;            ///< paper's frequency exponent

  [[nodiscard]] double static_power() const {
    return total_power_base_w * (1.0 - dynamic_fraction);
  }
  [[nodiscard]] double dynamic_power_base() const {
    return total_power_base_w * dynamic_fraction;
  }

  /// (f / f_base)^exponent — exposed for the analytical energy formulas.
  [[nodiscard]] double frequency_scale(Mhz f, Mhz base) const;

  [[nodiscard]] double busy_power(Mhz f, Guardband g, const GuardbandModel& gb,
                                  const FrequencyDomain& dom) const;
  [[nodiscard]] double idle_power(Mhz f, const FrequencyDomain& dom) const;
};

}  // namespace bsr::hw
