#include "hw/frequency.hpp"

#include <algorithm>
#include <cmath>

namespace bsr::hw {

Mhz FrequencyDomain::clamp(Mhz f, bool optimized_guardband) const {
  const Mhz hi = optimized_guardband ? max_oc_mhz : max_default_mhz;
  return std::clamp(f, min_mhz, hi);
}

Mhz FrequencyDomain::round_up_from_ratio(double ratio, bool optimized_guardband) const {
  const double target = static_cast<double>(base_mhz) * ratio;
  const auto stepped = static_cast<Mhz>(
      std::ceil(target / static_cast<double>(step_mhz)) * step_mhz);
  return clamp(stepped, optimized_guardband);
}

std::vector<Mhz> FrequencyDomain::levels(bool optimized_guardband) const {
  std::vector<Mhz> out;
  const Mhz hi = optimized_guardband ? max_oc_mhz : max_default_mhz;
  for (Mhz f = min_mhz; f <= hi; f += step_mhz) out.push_back(f);
  return out;
}

bool FrequencyDomain::valid(Mhz f, bool optimized_guardband) const {
  const Mhz hi = optimized_guardband ? max_oc_mhz : max_default_mhz;
  return f >= min_mhz && f <= hi && (f - min_mhz) % step_mhz == 0;
}

}  // namespace bsr::hw
