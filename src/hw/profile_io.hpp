// Platform profile (de)serialization: a simple `section.key = value` text
// format so users can model their own CPU-GPU systems without recompiling.
//
// Example (abridged):
//   cpu.name = i7-9700K
//   cpu.freq.min_mhz = 800
//   cpu.power.total_w = 110
//   gpu.errors.1800 = 0.01 0 0        # d0 d1 d2 at 1800 MHz
//   link.bandwidth_gbs = 12
//
// Unknown keys are rejected (typos should fail loudly); omitted keys keep the
// paper-default value, so a profile file only needs the deltas.
#pragma once

#include <iosfwd>
#include <string>

#include "hw/platform.hpp"

namespace bsr::hw {

/// Serializes every model parameter of `p`.
void save_profile(const PlatformProfile& p, std::ostream& os);
void save_profile(const PlatformProfile& p, const std::string& path);

/// Loads a profile, starting from paper_default() and applying the file's
/// overrides. Throws std::runtime_error on unknown keys or malformed lines.
PlatformProfile load_profile(std::istream& is);
PlatformProfile load_profile(const std::string& path);

}  // namespace bsr::hw
