#include "hw/dvfs.hpp"

namespace bsr::hw {

DvfsController::DvfsController(const FrequencyDomain& dom, SimTime latency)
    : dom_(dom), latency_(latency), current_(dom.base_mhz) {}

void DvfsController::set_guardband(Guardband g) {
  guardband_ = g;
  current_ = dom_.clamp(current_, g == Guardband::Optimized);
}

SimTime DvfsController::set_frequency(Mhz f) {
  const Mhz clamped = dom_.clamp(f, guardband_ == Guardband::Optimized);
  if (clamped == current_) return SimTime::zero();
  current_ = clamped;
  ++transitions_;
  return latency_;
}

}  // namespace bsr::hw
