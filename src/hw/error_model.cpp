#include "hw/error_model.hpp"

namespace bsr::hw {

ErrorRateModel::ErrorRateModel(std::map<Mhz, ErrorRates> table)
    : table_(std::move(table)) {}

ErrorRates ErrorRateModel::rates(Mhz f, Guardband g) const {
  if (g == Guardband::Default || table_.empty()) return {};
  const auto hi = table_.lower_bound(f);
  if (hi == table_.begin() && f < hi->first) return {};  // below first entry
  if (hi != table_.end() && hi->first == f) return hi->second;
  if (hi == table_.begin()) return {};
  const auto lo = std::prev(hi);
  if (hi == table_.end()) return lo->second;  // extrapolate flat above table
  // Linear interpolation between grid points.
  const double t = static_cast<double>(f - lo->first) /
                   static_cast<double>(hi->first - lo->first);
  ErrorRates out;
  out.d0 = lo->second.d0 + t * (hi->second.d0 - lo->second.d0);
  out.d1 = lo->second.d1 + t * (hi->second.d1 - lo->second.d1);
  out.d2 = lo->second.d2 + t * (hi->second.d2 - lo->second.d2);
  return out;
}

double ErrorRateModel::lambda(Mhz f, ErrType t, Guardband g) const {
  return rates(f, g).of(t);
}

ErrorRateModel ErrorRateModel::scaled(double factor) const {
  std::map<Mhz, ErrorRates> table;
  for (const auto& [f, r] : table_) {
    table[f] = {.d0 = r.d0 * factor, .d1 = r.d1 * factor, .d2 = r.d2 * factor};
  }
  return ErrorRateModel(std::move(table));
}

Mhz ErrorRateModel::fault_free_max(const FrequencyDomain& dom) const {
  Mhz best = dom.min_mhz;
  for (Mhz f = dom.min_mhz; f <= dom.max_oc_mhz; f += dom.step_mhz) {
    if (rates(f, Guardband::Optimized).fault_free()) best = f;
  }
  return best;
}

}  // namespace bsr::hw
