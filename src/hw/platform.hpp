// Platform profile: the full simulated CPU-GPU heterogeneous system.
//
// DeviceModel bundles one processor's frequency domain, guardband curve,
// power, throughput, error-rate, and thermal models. PlatformProfile pairs a
// CPU and a GPU with a transfer link and DVFS latencies. `paper_default()` is
// calibrated to the paper's testbed (Table 3: i7-9700K + RTX 2080 Ti) so the
// slack pattern, crossover iteration, and energy-saving ordering reproduce the
// published shapes; see DESIGN.md for the calibration rationale.
#pragma once

#include <string>

#include "hw/dvfs.hpp"
#include "hw/error_model.hpp"
#include "hw/perf_model.hpp"
#include "hw/power_model.hpp"
#include "hw/thermal.hpp"
#include "hw/transfer.hpp"

namespace bsr::hw {

struct DeviceModel {
  std::string name;
  FrequencyDomain freq;
  GuardbandModel guardband;
  PowerModel power;
  PerfModel perf;
  ErrorRateModel errors;
  ThermalModel thermal;
  SimTime dvfs_latency;

  [[nodiscard]] double busy_power(Mhz f, Guardband g) const {
    return power.busy_power(f, g, guardband, freq);
  }
  [[nodiscard]] double idle_power(Mhz f) const {
    return power.idle_power(f, freq);
  }
  [[nodiscard]] double efficiency_gflops_per_watt(Mhz f, Guardband g) const {
    return perf.gflops(KernelClass::Blas3, f, freq) / busy_power(f, g);
  }
  [[nodiscard]] Mhz fault_free_max() const { return errors.fault_free_max(freq); }
  [[nodiscard]] DvfsController make_dvfs() const {
    return DvfsController(freq, dvfs_latency);
  }
};

struct PlatformProfile {
  DeviceModel cpu;
  DeviceModel gpu;
  TransferModel link;

  /// Calibrated to the paper's i7-9700K + RTX 2080 Ti testbed.
  static PlatformProfile paper_default();

  /// A deliberately slack-heavy small platform used by a few unit tests.
  static PlatformProfile test_small();

  /// paper_default with all throughputs divided by `slowdown` (default 150):
  /// a reduced-size matrix then occupies the devices for paper-scale
  /// durations, so DVFS latencies, fault exposure windows, and the adaptive
  /// ABFT staircase behave as they do at n = 30720 while the *numerics* stay
  /// small enough to execute for real. Used by the numeric-mode experiments
  /// (Fig. 9) and their tests.
  static PlatformProfile numeric_demo(double slowdown = 150.0);
};

}  // namespace bsr::hw
