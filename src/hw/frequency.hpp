// Clock-frequency domains.
//
// Frequencies are integer MHz on a fixed step grid (100 MHz in the paper's
// testbed, Table 3). A domain distinguishes the *default-guardband* range from
// the extended range reachable only with the optimized guardband
// (overclocking), mirroring the paper's i7-9700K / RTX 2080 Ti configuration.
#pragma once

#include <vector>

#include "common/sim_time.hpp"

namespace bsr::hw {

using Mhz = int;

struct FrequencyDomain {
  Mhz min_mhz = 0;           ///< lowest DVFS state
  Mhz base_mhz = 0;          ///< default clock (autoboost disabled)
  Mhz max_default_mhz = 0;   ///< highest state with the default guardband
  Mhz max_oc_mhz = 0;        ///< highest state with the optimized guardband
  Mhz step_mhz = 100;

  /// Clamp to [min, max] where max depends on whether the optimized guardband
  /// (and therefore the overclocked range) is available.
  [[nodiscard]] Mhz clamp(Mhz f, bool optimized_guardband) const;

  /// Paper Algorithm 2 line 12-13: round *up* to the next step multiple, then
  /// clamp. `ratio` is T'/T_desired (>1 speeds up, <1 slows down).
  [[nodiscard]] Mhz round_up_from_ratio(double ratio, bool optimized_guardband) const;

  /// All selectable states in ascending order.
  [[nodiscard]] std::vector<Mhz> levels(bool optimized_guardband) const;

  [[nodiscard]] bool valid(Mhz f, bool optimized_guardband) const;
};

}  // namespace bsr::hw
