#include "hw/energy_meter.hpp"

namespace bsr::hw {

void EnergyMeter::record(DeviceId dev, SimTime start, SimTime duration,
                         double power_w, std::string tag) {
  if (duration <= SimTime::zero()) return;
  const double joules = power_w * duration.seconds();
  totals_[static_cast<int>(dev)] += joules;
  by_tag_[{static_cast<int>(dev), tag}] += joules;
  segments_.push_back({dev, start, duration, power_w, std::move(tag)});
}

double EnergyMeter::total_joules() const { return totals_[0] + totals_[1]; }

double EnergyMeter::joules(DeviceId dev) const {
  return totals_[static_cast<int>(dev)];
}

double EnergyMeter::joules(DeviceId dev, const std::string& tag) const {
  const auto it = by_tag_.find({static_cast<int>(dev), tag});
  return it == by_tag_.end() ? 0.0 : it->second;
}

void EnergyMeter::clear() {
  segments_.clear();
  totals_[0] = totals_[1] = 0.0;
  by_tag_.clear();
}

}  // namespace bsr::hw
