#include "hw/perf_model.hpp"

#include <cmath>

namespace bsr::hw {

namespace {
constexpr double kVerifyBandwidthFreqExponent = 0.2;
}

double PerfModel::gflops(KernelClass k, Mhz f, const FrequencyDomain& dom) const {
  double base = 0.0;
  switch (k) {
    case KernelClass::Blas3: base = blas3_gflops_base; break;
    case KernelClass::Panel: base = panel_gflops_base; break;
    case KernelClass::ChecksumUpdate: base = checksum_gflops_base; break;
  }
  const double ratio =
      static_cast<double>(f) / static_cast<double>(dom.base_mhz);
  return base * std::pow(ratio, freq_exponent);
}

SimTime PerfModel::time_for_flops(double flops, KernelClass k, Mhz f,
                                  const FrequencyDomain& dom) const {
  if (flops <= 0.0) return SimTime::zero();
  const double rate = gflops(k, f, dom) * 1e9;
  return SimTime::from_seconds(flops / rate);
}

SimTime PerfModel::time_for_bytes(double bytes, Mhz f,
                                  const FrequencyDomain& dom) const {
  if (bytes <= 0.0) return SimTime::zero();
  const double ratio =
      static_cast<double>(f) / static_cast<double>(dom.base_mhz);
  const double bw = mem_bandwidth_gbs * 1e9 *
                    std::pow(ratio, kVerifyBandwidthFreqExponent);
  return SimTime::from_seconds(bytes / bw);
}

}  // namespace bsr::hw
