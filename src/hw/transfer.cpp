#include "hw/transfer.hpp"

namespace bsr::hw {

SimTime TransferModel::time_for_bytes(double bytes) const {
  if (bytes <= 0.0) return SimTime::zero();
  return latency + SimTime::from_seconds(bytes / (bandwidth_gbs * 1e9));
}

}  // namespace bsr::hw
