// Steady-state thermal model — reproduces the shape of paper Fig. 5(d,e).
//
// The paper stabilizes core temperature with external cooling; temperature is
// reported, never fed back into the control loop. We model the maximum
// sustained core temperature as ambient plus thermal resistance times power.
#pragma once

#include "hw/power_model.hpp"

namespace bsr::hw {

struct ThermalModel {
  double ambient_c = 28.0;
  double r_th_c_per_w = 0.2;  ///< effective junction-to-ambient resistance

  [[nodiscard]] double max_sustained_temp(Mhz f, Guardband g,
                                          const PowerModel& power,
                                          const GuardbandModel& gb,
                                          const FrequencyDomain& dom) const;
};

}  // namespace bsr::hw
