// DVFS controller: tracks a device's current clock and guardband and charges
// the paper's per-adjustment latency (L^CPU / L^GPU in Algorithm 2).
#pragma once

#include "common/sim_time.hpp"
#include "hw/frequency.hpp"
#include "hw/guardband.hpp"

namespace bsr::hw {

class DvfsController {
 public:
  DvfsController() = default;
  DvfsController(const FrequencyDomain& dom, SimTime latency);

  [[nodiscard]] Mhz current() const { return current_; }
  [[nodiscard]] Guardband guardband() const { return guardband_; }
  [[nodiscard]] SimTime latency() const { return latency_; }

  /// Applies a guardband (a software installation step in the paper; no
  /// per-iteration cost).
  void set_guardband(Guardband g);

  /// Requests frequency f (clamped to the domain under the active guardband).
  /// Returns the transition latency actually incurred (zero when unchanged).
  SimTime set_frequency(Mhz f);

  /// Number of frequency transitions performed so far.
  [[nodiscard]] int transitions() const { return transitions_; }

  [[nodiscard]] const FrequencyDomain& domain() const { return dom_; }

 private:
  FrequencyDomain dom_;
  SimTime latency_;
  Mhz current_ = 0;
  Guardband guardband_ = Guardband::Default;
  int transitions_ = 0;
};

}  // namespace bsr::hw
