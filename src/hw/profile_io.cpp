#include "hw/profile_io.hpp"

#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace bsr::hw {

namespace {

void save_device(const DeviceModel& d, const char* prefix, std::ostream& os) {
  os << prefix << ".name = " << d.name << '\n';
  os << prefix << ".freq.min_mhz = " << d.freq.min_mhz << '\n';
  os << prefix << ".freq.base_mhz = " << d.freq.base_mhz << '\n';
  os << prefix << ".freq.max_default_mhz = " << d.freq.max_default_mhz << '\n';
  os << prefix << ".freq.max_oc_mhz = " << d.freq.max_oc_mhz << '\n';
  os << prefix << ".freq.step_mhz = " << d.freq.step_mhz << '\n';
  os << prefix << ".guardband.alpha_floor = " << d.guardband.alpha_floor << '\n';
  os << prefix << ".guardband.alpha_ceiling = " << d.guardband.alpha_ceiling
     << '\n';
  os << prefix << ".guardband.shape = " << d.guardband.shape << '\n';
  os << prefix << ".power.total_w = " << d.power.total_power_base_w << '\n';
  os << prefix << ".power.dynamic_fraction = " << d.power.dynamic_fraction
     << '\n';
  os << prefix << ".power.idle_activity = " << d.power.idle_activity << '\n';
  os << prefix << ".power.exponent = " << d.power.exponent << '\n';
  os << prefix << ".perf.blas3_gflops = " << d.perf.blas3_gflops_base << '\n';
  os << prefix << ".perf.panel_gflops = " << d.perf.panel_gflops_base << '\n';
  os << prefix << ".perf.checksum_gflops = " << d.perf.checksum_gflops_base
     << '\n';
  os << prefix << ".perf.mem_bandwidth_gbs = " << d.perf.mem_bandwidth_gbs
     << '\n';
  os << prefix << ".perf.freq_exponent = " << d.perf.freq_exponent << '\n';
  os << prefix << ".thermal.ambient_c = " << d.thermal.ambient_c << '\n';
  os << prefix << ".thermal.r_th_c_per_w = " << d.thermal.r_th_c_per_w << '\n';
  os << prefix << ".dvfs_latency_us = " << d.dvfs_latency.seconds() * 1e6
     << '\n';
  // Error table: one line per grid point.
  for (Mhz f = d.freq.min_mhz; f <= d.freq.max_oc_mhz; f += d.freq.step_mhz) {
    const ErrorRates r = d.errors.rates(f, Guardband::Optimized);
    if (!r.fault_free()) {
      os << prefix << ".errors." << f << " = " << r.d0 << ' ' << r.d1 << ' '
         << r.d2 << '\n';
    }
  }
}

/// Applies one key/value pair to the device; returns false on unknown key.
bool apply_device_key(DeviceModel& d, std::map<Mhz, ErrorRates>& errors,
                      const std::string& key, const std::string& value) {
  auto as_double = [&] { return std::stod(value); };
  auto as_int = [&] { return std::stoi(value); };
  if (key == "name") {
    d.name = value;
  } else if (key == "freq.min_mhz") {
    d.freq.min_mhz = as_int();
  } else if (key == "freq.base_mhz") {
    d.freq.base_mhz = as_int();
  } else if (key == "freq.max_default_mhz") {
    d.freq.max_default_mhz = as_int();
  } else if (key == "freq.max_oc_mhz") {
    d.freq.max_oc_mhz = as_int();
  } else if (key == "freq.step_mhz") {
    d.freq.step_mhz = as_int();
  } else if (key == "guardband.alpha_floor") {
    d.guardband.alpha_floor = as_double();
  } else if (key == "guardband.alpha_ceiling") {
    d.guardband.alpha_ceiling = as_double();
  } else if (key == "guardband.shape") {
    d.guardband.shape = as_double();
  } else if (key == "power.total_w") {
    d.power.total_power_base_w = as_double();
  } else if (key == "power.dynamic_fraction") {
    d.power.dynamic_fraction = as_double();
  } else if (key == "power.idle_activity") {
    d.power.idle_activity = as_double();
  } else if (key == "power.exponent") {
    d.power.exponent = as_double();
  } else if (key == "perf.blas3_gflops") {
    d.perf.blas3_gflops_base = as_double();
  } else if (key == "perf.panel_gflops") {
    d.perf.panel_gflops_base = as_double();
  } else if (key == "perf.checksum_gflops") {
    d.perf.checksum_gflops_base = as_double();
  } else if (key == "perf.mem_bandwidth_gbs") {
    d.perf.mem_bandwidth_gbs = as_double();
  } else if (key == "perf.freq_exponent") {
    d.perf.freq_exponent = as_double();
  } else if (key == "thermal.ambient_c") {
    d.thermal.ambient_c = as_double();
  } else if (key == "thermal.r_th_c_per_w") {
    d.thermal.r_th_c_per_w = as_double();
  } else if (key == "dvfs_latency_us") {
    d.dvfs_latency = SimTime::from_micros(as_double());
  } else if (key.rfind("errors.", 0) == 0) {
    const Mhz f = std::stoi(key.substr(7));
    std::istringstream vs(value);
    ErrorRates r;
    if (!(vs >> r.d0 >> r.d1 >> r.d2)) return false;
    errors[f] = r;
  } else {
    return false;
  }
  return true;
}

}  // namespace

void save_profile(const PlatformProfile& p, std::ostream& os) {
  os << "# bsr platform profile\n";
  save_device(p.cpu, "cpu", os);
  save_device(p.gpu, "gpu", os);
  os << "link.bandwidth_gbs = " << p.link.bandwidth_gbs << '\n';
  os << "link.latency_us = " << p.link.latency.seconds() * 1e6 << '\n';
}

void save_profile(const PlatformProfile& p, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_profile: cannot open " + path);
  save_profile(p, os);
}

PlatformProfile load_profile(std::istream& is) {
  PlatformProfile p = PlatformProfile::paper_default();
  std::map<Mhz, ErrorRates> cpu_errors;
  std::map<Mhz, ErrorRates> gpu_errors;
  bool cpu_errors_touched = false;
  bool gpu_errors_touched = false;

  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    // Trim.
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("load_profile: missing '=' at line " +
                               std::to_string(lineno));
    }
    auto trim = [](std::string s) {
      const auto b = s.find_first_not_of(" \t");
      const auto e = s.find_last_not_of(" \t");
      return b == std::string::npos ? std::string() : s.substr(b, e - b + 1);
    };
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));

    bool ok = false;
    if (key.rfind("cpu.", 0) == 0) {
      ok = apply_device_key(p.cpu, cpu_errors, key.substr(4), value);
      cpu_errors_touched |= key.rfind("cpu.errors.", 0) == 0;
    } else if (key.rfind("gpu.", 0) == 0) {
      ok = apply_device_key(p.gpu, gpu_errors, key.substr(4), value);
      gpu_errors_touched |= key.rfind("gpu.errors.", 0) == 0;
    } else if (key == "link.bandwidth_gbs") {
      p.link.bandwidth_gbs = std::stod(value);
      ok = true;
    } else if (key == "link.latency_us") {
      p.link.latency = SimTime::from_micros(std::stod(value));
      ok = true;
    }
    if (!ok) {
      throw std::runtime_error("load_profile: unknown key '" + key +
                               "' at line " + std::to_string(lineno));
    }
  }
  if (cpu_errors_touched) p.cpu.errors = ErrorRateModel(std::move(cpu_errors));
  if (gpu_errors_touched) p.gpu.errors = ErrorRateModel(std::move(gpu_errors));
  return p;
}

PlatformProfile load_profile(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_profile: cannot open " + path);
  return load_profile(is);
}

}  // namespace bsr::hw
