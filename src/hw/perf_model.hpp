// Throughput model: how long a kernel takes at a given clock.
//
// Each device advertises an effective GFLOP/s rate per kernel class at its
// base clock; rates scale as (f / f_base)^eta with eta ≈ 1 for compute-bound
// GPU BLAS-3 and slightly below 1 for the partially memory-bound CPU panel.
// Checksum maintenance runs as skinny GEMV-like kernels at a (much) lower
// rate, and checksum verification is a bandwidth-bound pass — this is what
// makes ABFT overhead non-trivial, as the paper measures (Fig. 9).
#pragma once

#include "common/sim_time.hpp"
#include "hw/frequency.hpp"

namespace bsr::hw {

enum class KernelClass {
  Blas3,           ///< TMU / PU: gemm, syrk, trsm on large blocks
  Panel,           ///< PD: getf2 / potf2 / geqr2 panel factorization
  ChecksumUpdate,  ///< skinny checksum-row GEMMs
};

struct PerfModel {
  double blas3_gflops_base = 0.0;
  double panel_gflops_base = 0.0;
  double checksum_gflops_base = 0.0;
  double mem_bandwidth_gbs = 0.0;  ///< for verification passes
  double freq_exponent = 1.0;      ///< eta: rate ∝ (f/f_base)^eta

  [[nodiscard]] double gflops(KernelClass k, Mhz f, const FrequencyDomain& dom) const;

  /// Duration of `flops` floating-point operations of class k at clock f.
  [[nodiscard]] SimTime time_for_flops(double flops, KernelClass k, Mhz f,
                                       const FrequencyDomain& dom) const;

  /// Duration of a bandwidth-bound pass over `bytes` (verification); bandwidth
  /// scales weakly with clock (memory system is mostly independent).
  [[nodiscard]] SimTime time_for_bytes(double bytes, Mhz f,
                                       const FrequencyDomain& dom) const;
};

}  // namespace bsr::hw
