#include "hw/power_model.hpp"

#include <cmath>

namespace bsr::hw {

double PowerModel::frequency_scale(Mhz f, Mhz base) const {
  return std::pow(static_cast<double>(f) / static_cast<double>(base), exponent);
}

double PowerModel::busy_power(Mhz f, Guardband g, const GuardbandModel& gb,
                              const FrequencyDomain& dom) const {
  return static_power() + gb.alpha(f, g, dom) * dynamic_power_base() *
                              frequency_scale(f, dom.base_mhz);
}

double PowerModel::idle_power(Mhz f, const FrequencyDomain& dom) const {
  return static_power() +
         idle_activity * dynamic_power_base() * frequency_scale(f, dom.base_mhz);
}

}  // namespace bsr::hw
