#include "hw/guardband.hpp"

#include <algorithm>
#include <cmath>

namespace bsr::hw {

double GuardbandModel::alpha(Mhz f, Guardband g, const FrequencyDomain& dom) const {
  if (g == Guardband::Default) return 1.0;
  const double span = static_cast<double>(dom.max_oc_mhz - dom.min_mhz);
  if (span <= 0.0) return alpha_floor;
  const double x =
      std::clamp(static_cast<double>(f - dom.min_mhz) / span, 0.0, 1.0);
  return alpha_floor + (alpha_ceiling - alpha_floor) * std::pow(x, shape);
}

}  // namespace bsr::hw
