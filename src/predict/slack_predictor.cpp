#include "predict/slack_predictor.hpp"

#include <cassert>

namespace bsr::predict {

void SlackPredictor::record(OpKind op, int k, double seconds) {
  assert(k >= 0 && k < model_.num_iterations());
  history_[static_cast<int>(op)][k] = seconds;
}

double FirstIterationPredictor::predict(OpKind op, int k) const {
  const double t0 = measured(op, 0);
  if (t0 < 0.0) return 0.0;
  if (k == 0) return t0;
  return model_.complexity_ratio(op, 0, k) * t0;
}

double EnhancedPredictor::predict(OpKind op, int k) const {
  if (k == 0) {
    const double t0 = measured(op, 0);
    return t0 < 0.0 ? 0.0 : t0;
  }
  double weight_sum = 0.0;
  double acc = 0.0;
  for (int i = 1; i <= p_ && k - i >= 0; ++i) {
    const double t = measured(op, k - i);
    if (t < 0.0) continue;
    const double w = weights_[i - 1];
    acc += w * model_.complexity_ratio(op, k - i, k) * t;
    weight_sum += w;
  }
  if (weight_sum <= 0.0) {
    // Nothing profiled in the window; fall back to the most recent known
    // point anywhere in the history.
    for (int j = k - 1; j >= 0; --j) {
      const double t = measured(op, j);
      if (t >= 0.0) return model_.complexity_ratio(op, j, k) * t;
    }
    return 0.0;
  }
  return acc / weight_sum;
}

}  // namespace bsr::predict
