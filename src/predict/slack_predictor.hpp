// Algorithmic slack prediction — paper §3.2.1.
//
// Both predictors combine *profiled* execution times of earlier iterations
// with the theoretical complexity ratios r^{OP}_{j,k} of Table 2:
//
//   * FirstIterationPredictor (GreenLA [7] baseline):
//       T'_k = r_{0,k} * T_0
//     — accurate early, but profiling error and efficiency drift accumulate.
//
//   * EnhancedPredictor (this paper):
//       T'_k = sum_{i=1..p} w_i * r_{k-i,k} * T_{k-i},  p = 4,
//       w = {1/2, 1/4, 1/8, 1/8}
//     — neighbor iterations have similar input sizes and efficiency, so the
//     weighted combination stays calibrated throughout the run.
#pragma once

#include <array>
#include <vector>

#include "predict/workload.hpp"

namespace bsr::predict {

/// Common interface: strategies record each op's measured duration after the
/// iteration completes and ask for the next iteration's prediction.
class SlackPredictor {
 public:
  explicit SlackPredictor(const WorkloadModel& model) : model_(model) {
    for (auto& h : history_) h.assign(model.num_iterations(), -1.0);
  }
  virtual ~SlackPredictor() = default;

  /// Records the profiled duration (seconds) of op at iteration k, normalized
  /// to the device's *base* frequency by the caller (predictions are made in
  /// base-clock terms; the strategy rescales to candidate frequencies).
  void record(OpKind op, int k, double seconds);

  /// Predicted base-clock duration of op at iteration k; falls back to pure
  /// ratio extrapolation from the most recent known iteration when the
  /// preferred profile points are missing. Returns 0 when nothing is known.
  [[nodiscard]] virtual double predict(OpKind op, int k) const = 0;

  [[nodiscard]] const WorkloadModel& model() const { return model_; }

 protected:
  [[nodiscard]] double measured(OpKind op, int k) const {
    return history_[static_cast<int>(op)][k];
  }

  WorkloadModel model_;
  std::array<std::vector<double>, kNumOpKinds> history_;
};

class FirstIterationPredictor final : public SlackPredictor {
 public:
  using SlackPredictor::SlackPredictor;
  [[nodiscard]] double predict(OpKind op, int k) const override;
};

class EnhancedPredictor final : public SlackPredictor {
 public:
  explicit EnhancedPredictor(const WorkloadModel& model,
                             int p = 4,
                             std::array<double, 4> weights = {0.5, 0.25, 0.125,
                                                              0.125})
      : SlackPredictor(model), p_(p), weights_(weights) {}

  [[nodiscard]] double predict(OpKind op, int k) const override;

 private:
  int p_;
  std::array<double, 4> weights_;
};

}  // namespace bsr::predict
