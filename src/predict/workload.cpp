#include "predict/workload.hpp"

#include <algorithm>
#include <cassert>

namespace bsr::predict {

const char* to_string(Factorization f) {
  switch (f) {
    case Factorization::Cholesky: return "Cholesky";
    case Factorization::LU: return "LU";
    case Factorization::QR: return "QR";
  }
  return "?";
}

const char* to_string(OpKind op) {
  switch (op) {
    case OpKind::PD: return "PD";
    case OpKind::PU: return "PU";
    case OpKind::TMU: return "TMU";
    case OpKind::Transfer: return "Transfer";
    case OpKind::ChecksumUpdate: return "ChecksumUpdate";
    case OpKind::ChecksumVerify: return "ChecksumVerify";
  }
  return "?";
}

IterationWork WorkloadModel::iteration(int k) const {
  assert(k >= 0 && k < num_iterations());
  IterationWork w;
  const double m = static_cast<double>(remaining(k));
  const double bb = std::min<double>(static_cast<double>(b), m);
  const double mt = std::max(0.0, m - bb);  // trailing dimension
  const double eb = elem_bytes;

  double area = 0.0;  // trailing region touched by the GPU update
  switch (fact) {
    case Factorization::Cholesky:
      // PD: potf2 on the b x b diagonal block (CPU). Constant per iteration,
      // which is why the paper's Table 2 lists the PD-Cho ratio as 1.
      w.pd_flops = bb * bb * bb / 3.0;
      // PU: L21 = A21 * L11^{-T} (trsm, GPU).
      w.pu_flops = mt * bb * bb;
      // TMU: A22 -= L21 L21^T (syrk over the lower triangle, GPU).
      w.tmu_flops = mt * mt * bb;
      // Only the diagonal block round-trips over the link.
      w.transfer_bytes = 2.0 * bb * bb * eb;
      area = mt * mt;
      break;
    case Factorization::LU:
      // PD: getf2 on the m x b panel (CPU).
      w.pd_flops = m * bb * bb - bb * bb * bb / 3.0;
      // PU: U12 = L11^{-1} A12 (trsm, GPU).
      w.pu_flops = bb * bb * mt;
      // TMU: A22 -= L21 U12 (gemm, GPU).
      w.tmu_flops = 2.0 * mt * mt * bb;
      // Full panel goes DtoH for pivoting + factorization and back.
      w.transfer_bytes = 2.0 * m * bb * eb;
      area = mt * mt;
      break;
    case Factorization::QR:
      // PD: geqr2 on the m x b panel (CPU).
      w.pd_flops = 2.0 * bb * bb * (m - bb / 3.0);
      // PU: form the block-reflector factor T (larft) + aux (GPU).
      w.pu_flops = bb * bb * m;
      // TMU: apply (I - V T V^T)^T to the trailing columns (larfb, GPU).
      w.tmu_flops = 4.0 * m * bb * mt;
      w.transfer_bytes = 2.0 * m * bb * eb;
      area = m * mt;
      break;
  }

  // ABFT maintenance on GPU-side ops: skinny checksum-row propagation through
  // the update (flops, two checksum rows per block) plus per-iteration
  // re-encoding of the trailing region; verification is a recompute-and-
  // compare pass over the result (bandwidth bound). Full checksum doubles
  // both because rows *and* columns are encoded.
  const double gpu_op_flops = w.pu_flops + w.tmu_flops;
  const double update_single = (2.0 / std::max(1.0, bb)) * gpu_op_flops + 2.0 * area;
  w.checksum_update_flops_single = update_single;
  w.checksum_update_flops_full = 2.0 * update_single;
  w.checksum_verify_bytes_single = area * eb;
  w.checksum_verify_bytes_full = 2.0 * area * eb;
  return w;
}

double WorkloadModel::total_flops() const {
  const double nn = static_cast<double>(n);
  switch (fact) {
    case Factorization::Cholesky: return nn * nn * nn / 3.0;
    case Factorization::LU: return 2.0 * nn * nn * nn / 3.0;
    case Factorization::QR: return 4.0 * nn * nn * nn / 3.0;
  }
  return 0.0;
}

double WorkloadModel::op_complexity(OpKind op, int k) const {
  const IterationWork w = iteration(k);
  switch (op) {
    case OpKind::PD: return w.pd_flops;
    case OpKind::PU: return w.pu_flops;
    case OpKind::TMU: return w.tmu_flops;
    case OpKind::Transfer: return w.transfer_bytes;
    case OpKind::ChecksumUpdate: return w.checksum_update_flops_single;
    case OpKind::ChecksumVerify: return w.checksum_verify_bytes_single;
  }
  return 0.0;
}

double WorkloadModel::complexity_ratio(OpKind op, int j, int k) const {
  const double cj = op_complexity(op, j);
  const double ck = op_complexity(op, k);
  if (cj <= 0.0) return 1.0;
  return ck / cj;
}

}  // namespace bsr::predict
