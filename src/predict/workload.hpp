// Per-iteration workload model for blocked one-sided factorizations.
//
// Encodes the exact flop / byte counts of the three operations the paper's
// pipeline schedules each iteration (Fig. 1): panel decomposition (PD, CPU),
// panel update (PU, GPU), trailing-matrix update (TMU, GPU), the panel
// transfers, and the ABFT checksum maintenance costs. These counts are the
// ground truth the simulator turns into durations and the source from which
// the Table-2 complexity ratios are derived.
#pragma once

#include <cstdint>

namespace bsr::predict {

enum class Factorization { Cholesky, LU, QR };

/// The operations whose execution time the slack predictor tracks.
enum class OpKind {
  PD = 0,
  PU = 1,
  TMU = 2,
  Transfer = 3,
  ChecksumUpdate = 4,
  ChecksumVerify = 5,
};
inline constexpr int kNumOpKinds = 6;

const char* to_string(Factorization f);
const char* to_string(OpKind op);

/// Exact costs of iteration k (0-based) of an n x n factorization with block
/// size b. Flops are floating-point operations; bytes are data moved.
struct IterationWork {
  double pd_flops = 0.0;        ///< CPU panel factorization
  double pu_flops = 0.0;        ///< GPU panel update (trsm / larft+apply)
  double tmu_flops = 0.0;       ///< GPU trailing-matrix update
  double transfer_bytes = 0.0;  ///< DtoH + HtoD panel traffic

  /// ABFT checksum maintenance on the GPU-side ops, per protection level.
  /// "update" covers encode + checksum-row propagation (flops); "verify" is
  /// the bandwidth-bound recompute-and-compare pass (bytes).
  double checksum_update_flops_single = 0.0;
  double checksum_update_flops_full = 0.0;
  double checksum_verify_bytes_single = 0.0;
  double checksum_verify_bytes_full = 0.0;

  [[nodiscard]] double gpu_flops() const { return pu_flops + tmu_flops; }
};

struct WorkloadModel {
  Factorization fact = Factorization::LU;
  std::int64_t n = 0;
  std::int64_t b = 0;
  int elem_bytes = 8;  ///< 8 for double, 4 for float

  [[nodiscard]] int num_iterations() const {
    return static_cast<int>((n + b - 1) / b);
  }
  /// Remaining (uneliminated) dimension at the start of iteration k.
  [[nodiscard]] std::int64_t remaining(int k) const { return n - static_cast<std::int64_t>(k) * b; }

  [[nodiscard]] IterationWork iteration(int k) const;

  /// Total factorization flops (for GFLOP/s reporting): n^3/3, 2n^3/3, 4n^3/3.
  [[nodiscard]] double total_flops() const;

  /// Closed-form complexity of one op at iteration k — the quantity whose
  /// between-iteration ratios the paper tabulates in Table 2.
  [[nodiscard]] double op_complexity(OpKind op, int k) const;

  /// r^{OP}_{j,k}: ratio of theoretical complexity between iterations j and k
  /// (paper §3.2.1). Returns 1 when the op has zero complexity at j.
  [[nodiscard]] double complexity_ratio(OpKind op, int j, int k) const;
};

}  // namespace bsr::predict
