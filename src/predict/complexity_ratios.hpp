// The paper's Table 2: closed-form ratios of time complexity between
// iteration k and k+1 for the key operations of Cholesky, LU, and QR.
//
// We reproduce the printed formulas verbatim so the bench can compare them
// against the exact flop-count ratios computed by WorkloadModel (which is what
// the predictor actually uses). Entries the paper marks N/A return nullopt.
#pragma once

#include <optional>

#include "predict/workload.hpp"

namespace bsr::predict {

/// Which Table 2 column.
enum class Table2Column { ComputationAndChecksumUpdate, DataTransfer, ChecksumVerification };

/// The Table 2 row is identified by (factorization, op); valid ops per the
/// paper are PD/TMU for Cholesky, PD/PU/TMU for LU, PD/TMU for QR.
std::optional<double> paper_table2_ratio(Factorization fact, OpKind op,
                                         Table2Column col, int k,
                                         std::int64_t n, std::int64_t b);

}  // namespace bsr::predict
