#include "predict/complexity_ratios.hpp"

namespace bsr::predict {

std::optional<double> paper_table2_ratio(Factorization fact, OpKind op,
                                         Table2Column col, int k,
                                         std::int64_t n, std::int64_t b) {
  const double nd = static_cast<double>(n);
  const double bd = static_cast<double>(b);
  const double kd = static_cast<double>(k);
  const double m = nd - kd * bd;  // n - kb

  switch (fact) {
    case Factorization::Cholesky:
      if (op == OpKind::PD) return 1.0;  // all three columns are 1
      if (op == OpKind::TMU) {
        if (col == Table2Column::DataTransfer) return std::nullopt;  // N/A
        const double base = 1.0 - bd / (m - bd);
        if (col == Table2Column::ChecksumVerification) return base;
        // Printed as (1+k)(1 - b/(n-kb-b)); we reproduce it verbatim even
        // though the exact syrk flop ratio differs (see bench_table2).
        return (1.0 + kd) * base;
      }
      return std::nullopt;
    case Factorization::LU:
      if (op == OpKind::PD) {
        if (col == Table2Column::ComputationAndChecksumUpdate) {
          return 1.0 - 6.0 * bd / (3.0 * nd - (3.0 * kd - 1.0) * bd);
        }
        return 1.0 - 1.0 / m;  // printed as 1 - 1/(n-kb) for both other cols
      }
      if (op == OpKind::PU) {
        if (col == Table2Column::DataTransfer) return std::nullopt;
        return 1.0 - bd / (m - bd);
      }
      if (op == OpKind::TMU) {
        if (col == Table2Column::DataTransfer) return std::nullopt;
        return 1.0 - 2.0 * bd / m;
      }
      return std::nullopt;
    case Factorization::QR:
      if (op == OpKind::PD) {
        if (col == Table2Column::ComputationAndChecksumUpdate) {
          return 1.0 - bd / (6.0 * nd - (6.0 * kd + 1.0) * bd);
        }
        return 1.0 - bd / (m - bd);
      }
      if (op == OpKind::TMU) {
        if (col == Table2Column::DataTransfer) return std::nullopt;
        return 1.0 - bd / (m - bd) - bd / (m + bd) +
               bd * bd / ((m - bd) * (m + bd));
      }
      return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace bsr::predict
