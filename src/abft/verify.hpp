// Verification conveniences and run-level ABFT statistics.
#pragma once

#include "abft/checksum.hpp"

namespace bsr::abft {

/// Accumulated over a whole decomposition run (reported in Fig. 9 / RunReport).
struct AbftStats {
  int iterations_protected_single = 0;
  int iterations_protected_full = 0;
  int iterations_unprotected = 0;
  int errors_injected_0d = 0;
  int errors_injected_1d = 0;
  int errors_injected_2d = 0;
  int corrected_0d = 0;
  int corrected_1d = 0;
  int uncorrectable = 0;
  int recoveries = 0;  ///< iterations redone after an uncorrectable detection

  void merge_verify(const VerifyResult& r) {
    corrected_0d += r.corrected_0d;
    corrected_1d += r.corrected_1d;
    uncorrectable += r.uncorrectable;
  }
  [[nodiscard]] int errors_injected_total() const {
    return errors_injected_0d + errors_injected_1d + errors_injected_2d;
  }
  [[nodiscard]] bool all_corrected() const { return uncorrectable == 0; }
};

/// Runs verify-and-correct with the suggested tolerance for the region.
template <typename T>
VerifyResult scrub(const BlockChecksums<T>& chk, la::MatrixView<T> a) {
  return chk.verify_and_correct(
      a, BlockChecksums<T>::suggested_tolerance(a.as_const(), chk.block()));
}

extern template VerifyResult scrub<float>(const BlockChecksums<float>&,
                                          la::MatrixView<float>);
extern template VerifyResult scrub<double>(const BlockChecksums<double>&,
                                           la::MatrixView<double>);

}  // namespace bsr::abft
