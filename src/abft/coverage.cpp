#include "abft/coverage.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/arena.hpp"

namespace bsr::abft {

namespace {

// fc_full is THE hot function of a fault campaign (a profile of the seeded
// campaign driver attributes >80% of run time here): the adaptive-checksum
// ladder evaluates it per frequency step, per iteration, per device. The
// optimizations below hoist loop-invariant subexpressions out of the k x j
// summation without changing any floating-point value:
//
//   * poisson_pmf(j, m1) does not depend on k, so the row is computed once
//     into a table instead of kmax times (identical calls, identical bits);
//   * distinct_block_factor(c, s) is a sequential prefix product, so the
//     table dbf[c] = dbf[c-1] * (s-c)/s reproduces the reference loop's
//     multiply order exactly — with the reference's early `return 0.0`
//     mirrored as a sticky zero (NOT a multiply, which could produce -0.0);
//   * std::log(i) for small integer i comes from a table of the very values
//     std::log returns (same libm, same input, same bits).
//
// The summation order (k outer, j inner, left-associated multiplies) is
// untouched, so results are bitwise identical to the reference — asserted by
// the coverage tests and the byte-identical fig09/fig11 outputs.

/// Upper summation bound for a Poisson tail: mean + 10 sqrt(mean) + 16 keeps
/// the truncation error far below the 1e-6 coverage resolution we report.
int poisson_cutoff(double mean) {
  return static_cast<int>(mean + 10.0 * std::sqrt(std::max(mean, 1.0)) + 16.0);
}

constexpr int kLogTableSize = 4096;

/// table[i] == std::log(static_cast<double>(i)) for i in [2, kLogTableSize).
const std::array<double, kLogTableSize>& log_int_table() {
  static const std::array<double, kLogTableSize> table = [] {
    std::array<double, kLogTableSize> t{};
    for (int i = 2; i < kLogTableSize; ++i) {
      t[static_cast<std::size_t>(i)] = std::log(static_cast<double>(i));
    }
    return t;
  }();
  return table;
}

double poisson_pmf(int k, double mean) {
  // exp(-m) m^k / k! computed in log space for robustness. The log-factorial
  // subtractions stay sequential (i ascending) so the rounding sequence
  // matches the reference exactly; the table only replaces where each
  // std::log(i) value comes from.
  const std::array<double, kLogTableSize>& lt = log_int_table();
  double log_p = -mean + k * std::log(std::max(mean, 1e-300));
  for (int i = 2; i <= k; ++i) {
    log_p -= i < kLogTableSize ? lt[static_cast<std::size_t>(i)]
                               : std::log(static_cast<double>(i));
  }
  return std::exp(log_p);
}

}  // namespace

double fc_single(const hw::ErrorRates& rates, double t_seconds,
                 std::int64_t blocks) {
  if (rates.fault_free()) return 1.0;
  const double m0 = rates.d0 * t_seconds;
  const double s = static_cast<double>(blocks);
  double sum = 0.0;
  const int kmax = std::min<int>(poisson_cutoff(m0), static_cast<int>(blocks));
  // Incremental distinct-block factor: after iteration k, `prod` equals
  // prod_{i=0}^{k} (S - i) / S — the reference function's value for count k.
  double prod = 1.0;
  bool zero = false;
  for (int k = 0; k <= kmax; ++k) {
    const double term = static_cast<double>(blocks - k) / s;
    if (!zero && term <= 0.0) zero = true;
    if (!zero) prod *= term;
    sum += poisson_pmf(k, m0) * (zero ? 0.0 : prod);
  }
  return sum * std::exp(-rates.d1 * t_seconds) * std::exp(-rates.d2 * t_seconds);
}

double fc_full(const hw::ErrorRates& rates, double t_seconds,
               std::int64_t blocks) {
  if (rates.fault_free()) return 1.0;
  const double m0 = rates.d0 * t_seconds;
  const double m1 = rates.d1 * t_seconds;
  const double s = static_cast<double>(blocks);
  const int kmax = std::min<int>(poisson_cutoff(m0), static_cast<int>(blocks));
  const int jmax = std::min<int>(poisson_cutoff(m1), static_cast<int>(blocks));
  const int cmax = static_cast<int>(
      std::min<std::int64_t>(static_cast<std::int64_t>(kmax) + jmax, blocks));

  ArenaScope scope(Arena::scratch());
  // Inner-loop-invariant row: poisson_pmf(j, m1) for every j.
  double* pj = scope.alloc<double>(static_cast<std::size_t>(jmax) + 1);
  for (int j = 0; j <= jmax; ++j) pj[j] = poisson_pmf(j, m1);
  // Prefix-product table of the distinct-block factor for every count the
  // double loop can reach (k + j <= min(kmax + jmax, blocks)).
  double* dbf = scope.alloc<double>(static_cast<std::size_t>(cmax) + 1);
  {
    double prod = 1.0;
    bool zero = false;
    for (int c = 0; c <= cmax; ++c) {
      const double term = static_cast<double>(blocks - c) / s;
      if (!zero && term <= 0.0) zero = true;
      if (!zero) prod *= term;
      dbf[c] = zero ? 0.0 : prod;
    }
  }

  double sum = 0.0;
  for (int k = 0; k <= kmax; ++k) {
    const double pk = poisson_pmf(k, m0);
    const int jlim = static_cast<int>(
        std::min<std::int64_t>(jmax, blocks - k));
    const double* dbfk = dbf + k;
    for (int j = 0; j <= jlim; ++j) {
      sum += pk * pj[j] * dbfk[j];
    }
  }
  return sum * std::exp(-rates.d2 * t_seconds);
}

const char* coverage_label_static(double fc, bool fault_free) {
  if (fault_free) return "Fault-free";
  if (fc > kFullCoverageThreshold) return "Full Coverage";
  return nullptr;  // caller formats the percentage
}

}  // namespace bsr::abft
