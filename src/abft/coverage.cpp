#include "abft/coverage.hpp"

#include <algorithm>
#include <cmath>

namespace bsr::abft {

namespace {

/// Upper summation bound for a Poisson tail: mean + 10 sqrt(mean) + 16 keeps
/// the truncation error far below the 1e-6 coverage resolution we report.
int poisson_cutoff(double mean) {
  return static_cast<int>(mean + 10.0 * std::sqrt(std::max(mean, 1.0)) + 16.0);
}

/// prod_{i=0}^{count} (S - i) / S — the paper's distinct-block factor.
double distinct_block_factor(int count, std::int64_t s) {
  double prod = 1.0;
  for (int i = 0; i <= count; ++i) {
    const double term = static_cast<double>(s - i) / static_cast<double>(s);
    if (term <= 0.0) return 0.0;
    prod *= term;
  }
  return prod;
}

double poisson_pmf(int k, double mean) {
  // exp(-m) m^k / k! computed in log space for robustness.
  double log_p = -mean + k * std::log(std::max(mean, 1e-300));
  for (int i = 2; i <= k; ++i) log_p -= std::log(static_cast<double>(i));
  return std::exp(log_p);
}

}  // namespace

double fc_single(const hw::ErrorRates& rates, double t_seconds,
                 std::int64_t blocks) {
  if (rates.fault_free()) return 1.0;
  const double m0 = rates.d0 * t_seconds;
  double sum = 0.0;
  const int kmax = std::min<int>(poisson_cutoff(m0), static_cast<int>(blocks));
  for (int k = 0; k <= kmax; ++k) {
    sum += poisson_pmf(k, m0) * distinct_block_factor(k, blocks);
  }
  return sum * std::exp(-rates.d1 * t_seconds) * std::exp(-rates.d2 * t_seconds);
}

double fc_full(const hw::ErrorRates& rates, double t_seconds,
               std::int64_t blocks) {
  if (rates.fault_free()) return 1.0;
  const double m0 = rates.d0 * t_seconds;
  const double m1 = rates.d1 * t_seconds;
  const int kmax = std::min<int>(poisson_cutoff(m0), static_cast<int>(blocks));
  const int jmax = std::min<int>(poisson_cutoff(m1), static_cast<int>(blocks));
  double sum = 0.0;
  for (int k = 0; k <= kmax; ++k) {
    const double pk = poisson_pmf(k, m0);
    for (int j = 0; j <= jmax && k + j <= blocks; ++j) {
      sum += pk * poisson_pmf(j, m1) * distinct_block_factor(k + j, blocks);
    }
  }
  return sum * std::exp(-rates.d2 * t_seconds);
}

const char* coverage_label_static(double fc, bool fault_free) {
  if (fault_free) return "Fault-free";
  if (fc > kFullCoverageThreshold) return "Full Coverage";
  return nullptr;  // caller formats the percentage
}

}  // namespace bsr::abft
