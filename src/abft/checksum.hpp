// Block checksum encoding for ABFT — paper §3.1.2, Fig. 6.
//
// A matrix region is tiled into b x b blocks, each encoded independently:
//   * single-side: two checksum *rows* per block-row — the plain column sums
//     (e^T A) and index-weighted column sums (w^T A, w_i = i+1). Detects and
//     corrects 0D errors (locate row via the weighted/plain ratio).
//   * full: additionally two checksum *columns* per block-column (A e, A w).
//     The extra dimension localizes and repairs 1D (whole/partial
//     row-or-column) corruption.
//
// Storage keeps the checksums of all block-rows stacked in one (2*nbr) x n
// matrix (and m x (2*nbc) for the row side) so checksum propagation through a
// GEMM-type update is itself a GEMM — exactly how GPU ABFT implementations
// lay this out.
#pragma once

#include "la/matrix.hpp"

namespace bsr::abft {

enum class ChecksumMode { None, SingleSide, Full };

const char* to_string(ChecksumMode m);

struct VerifyResult {
  int blocks_flagged = 0;     ///< blocks with any checksum mismatch
  int corrected_0d = 0;       ///< standalone elements repaired
  int corrected_1d = 0;       ///< column-shaped corruptions repaired
  int uncorrectable = 0;      ///< mismatched blocks we could not repair
  [[nodiscard]] bool clean() const { return blocks_flagged == 0; }
  [[nodiscard]] bool fully_corrected() const { return uncorrectable == 0; }
};

template <typename T>
class BlockChecksums {
 public:
  /// Prepares checksum storage for an m x n region tiled with b x b blocks.
  BlockChecksums(la::idx m, la::idx n, la::idx b, ChecksumMode mode);

  [[nodiscard]] ChecksumMode mode() const { return mode_; }
  [[nodiscard]] la::idx block() const { return b_; }
  [[nodiscard]] la::idx num_block_rows() const { return nbr_; }
  [[nodiscard]] la::idx num_block_cols() const { return nbc_; }

  /// (Re-)encodes the checksums from the current (assumed-correct) data.
  void encode(la::ConstMatrixView<T> a);

  /// Detects mismatches between the stored checksums and `a`, repairs what
  /// the active mode can repair (in place), and reports what happened.
  /// `tol` is the absolute comparison tolerance; use suggested_tolerance().
  VerifyResult verify_and_correct(la::MatrixView<T> a, T tol) const;

  /// Linear checksum propagation through a trailing-matrix GEMM update
  /// C := C - L * U, where this object holds the checksums of C, `l` is the
  /// m x b panel and `u` the b x n row panel: the column checksums obey
  /// colchk(C') = colchk(C) - colchk(L) * U, and symmetrically for rows.
  /// (Unit-tested against re-encoding; the identity is what makes ABFT cheap.)
  void update_gemm(la::ConstMatrixView<T> l, la::ConstMatrixView<T> u);

  /// Direct access for tests.
  [[nodiscard]] const la::Matrix<T>& col_checksums() const { return colchk_; }
  [[nodiscard]] const la::Matrix<T>& row_checksums() const { return rowchk_; }

  /// A robust absolute tolerance: scaled unit roundoff times the block size
  /// times the magnitude of the data.
  static T suggested_tolerance(la::ConstMatrixView<T> a, la::idx b);

 private:
  void encode_col_block_row(la::ConstMatrixView<T> a, la::idx bi);
  void encode_row_block_col(la::ConstMatrixView<T> a, la::idx bj);

  la::idx m_;
  la::idx n_;
  la::idx b_;
  la::idx nbr_;
  la::idx nbc_;
  ChecksumMode mode_;
  la::Matrix<T> colchk_;  ///< (2*nbr) x n; rows 2*bi (plain), 2*bi+1 (weighted)
  la::Matrix<T> rowchk_;  ///< m x (2*nbc); cols 2*bj (plain), 2*bj+1 (weighted)
};

extern template class BlockChecksums<float>;
extern template class BlockChecksums<double>;

}  // namespace bsr::abft
