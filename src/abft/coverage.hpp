// Fault-coverage estimation — paper §3.1.2 closed forms.
//
// Errors of each propagation degree arrive as independent Poisson processes
// with rates lambda(f, type). Per-block checksums tolerate at most one strike
// per block per detection interval (one decomposition iteration), so coverage
// is the probability that every strike lands in a distinct block and that no
// error class beyond the scheme's strength occurs:
//
//   FC_single(f,T) = [ sum_k P(k; l0 T) prod_{i=0..k} (S-i)/S ] e^{-l1 T} e^{-l2 T}
//   FC_full(f,T)   = [ sum_{k,j} P(k; l0 T) P(j; l1 T) prod_{i=0..k+j} (S-i)/S ] e^{-l2 T}
//
// with S = (n/b)^2 blocks. The paper calls FC > 99.9999% "Full Coverage".
#pragma once

#include <cstdint>

#include "hw/error_model.hpp"

namespace bsr::abft {

inline constexpr double kFullCoverageThreshold = 0.999999;

/// Probability single-side checksum ABFT detects and corrects everything in
/// one interval of length t_seconds with `blocks` = S protected blocks.
double fc_single(const hw::ErrorRates& rates, double t_seconds,
                 std::int64_t blocks);

/// Same for full-checksum ABFT (tolerates 0D and 1D).
double fc_full(const hw::ErrorRates& rates, double t_seconds,
               std::int64_t blocks);

/// Human-readable label used by the Table-1 bench ("Full Coverage",
/// "Fault-free", or a percentage).
const char* coverage_label_static(double fc, bool fault_free);

}  // namespace bsr::abft
