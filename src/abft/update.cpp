#include "abft/update.hpp"

namespace bsr::abft {

template <typename T>
void protected_gemm_update(la::MatrixView<T> c, la::ConstMatrixView<T> l,
                           la::ConstMatrixView<T> u, BlockChecksums<T>& chk) {
  la::gemm(la::Op::NoTrans, la::Op::NoTrans, T(-1), l, u, T(1), c);
  chk.update_gemm(l, u);
}

template void protected_gemm_update<float>(la::MatrixView<float>,
                                           la::ConstMatrixView<float>,
                                           la::ConstMatrixView<float>,
                                           BlockChecksums<float>&);
template void protected_gemm_update<double>(la::MatrixView<double>,
                                            la::ConstMatrixView<double>,
                                            la::ConstMatrixView<double>,
                                            BlockChecksums<double>&);

}  // namespace bsr::abft
