#include "abft/checksum.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "la/blas.hpp"
#include "la/verify.hpp"

namespace bsr::abft {

using la::ConstMatrixView;
using la::idx;
using la::Matrix;
using la::MatrixView;

const char* to_string(ChecksumMode m) {
  switch (m) {
    case ChecksumMode::None: return "None";
    case ChecksumMode::SingleSide: return "SingleSide";
    case ChecksumMode::Full: return "Full";
  }
  return "?";
}

template <typename T>
BlockChecksums<T>::BlockChecksums(idx m, idx n, idx b, ChecksumMode mode)
    : m_(m),
      n_(n),
      b_(b),
      nbr_((m + b - 1) / b),
      nbc_((n + b - 1) / b),
      mode_(mode) {
  if (mode_ != ChecksumMode::None) colchk_ = Matrix<T>(2 * nbr_, n_);
  if (mode_ == ChecksumMode::Full) rowchk_ = Matrix<T>(m_, 2 * nbc_);
}

template <typename T>
void BlockChecksums<T>::encode_col_block_row(ConstMatrixView<T> a, idx bi) {
  const idx r0 = bi * b_;
  const idx r1 = std::min(m_, r0 + b_);
  for (idx j = 0; j < n_; ++j) {
    T s0 = 0;
    T s1 = 0;
    for (idx i = r0; i < r1; ++i) {
      const T v = a(i, j);
      s0 += v;
      s1 += static_cast<T>(i - r0 + 1) * v;
    }
    colchk_(2 * bi, j) = s0;
    colchk_(2 * bi + 1, j) = s1;
  }
}

template <typename T>
void BlockChecksums<T>::encode_row_block_col(ConstMatrixView<T> a, idx bj) {
  const idx c0 = bj * b_;
  const idx c1 = std::min(n_, c0 + b_);
  for (idx i = 0; i < m_; ++i) {
    T s0 = 0;
    T s1 = 0;
    for (idx j = c0; j < c1; ++j) {
      const T v = a(i, j);
      s0 += v;
      s1 += static_cast<T>(j - c0 + 1) * v;
    }
    rowchk_(i, 2 * bj) = s0;
    rowchk_(i, 2 * bj + 1) = s1;
  }
}

template <typename T>
void BlockChecksums<T>::encode(ConstMatrixView<T> a) {
  if (mode_ == ChecksumMode::None) return;
  for (idx bi = 0; bi < nbr_; ++bi) encode_col_block_row(a, bi);
  if (mode_ == ChecksumMode::Full) {
    for (idx bj = 0; bj < nbc_; ++bj) encode_row_block_col(a, bj);
  }
}

template <typename T>
VerifyResult BlockChecksums<T>::verify_and_correct(MatrixView<T> a, T tol) const {
  VerifyResult result;
  if (mode_ == ChecksumMode::None) return result;

  std::vector<T> s0(b_);
  std::vector<T> s1(b_);
  for (idx bi = 0; bi < nbr_; ++bi) {
    const idx r0 = bi * b_;
    const idx r1 = std::min(m_, r0 + b_);
    const idx bh = r1 - r0;
    for (idx bj = 0; bj < nbc_; ++bj) {
      const idx c0 = bj * b_;
      const idx c1 = std::min(n_, c0 + b_);

      auto recompute_mismatches = [&](std::vector<idx>& bad_cols) {
        bad_cols.clear();
        for (idx j = c0; j < c1; ++j) {
          T p = 0;
          T w = 0;
          for (idx i = r0; i < r1; ++i) {
            const T v = a(i, j);
            p += v;
            w += static_cast<T>(i - r0 + 1) * v;
          }
          s0[j - c0] = colchk_(2 * bi, j) - p;
          s1[j - c0] = colchk_(2 * bi + 1, j) - w;
          if (std::abs(s0[j - c0]) > tol || std::abs(s1[j - c0]) > tol) {
            bad_cols.push_back(j);
          }
        }
      };

      std::vector<idx> bad_cols;
      recompute_mismatches(bad_cols);
      if (bad_cols.empty()) continue;
      ++result.blocks_flagged;

      // Pass 1: per-column 0D localization via the weighted/plain ratio.
      // Two errors in one column can alias to a *consistent* single error
      // (their deltas project onto the two-checksum space); single-side has
      // no way to tell, but full mode cross-checks the candidate row against
      // the row-side checksums before committing the fix.
      int fixed_here = 0;
      for (idx j : bad_cols) {
        const T d0 = s0[j - c0];
        const T d1 = s1[j - c0];
        if (std::abs(d0) <= tol) continue;  // plain sum cancels: not a 0D fix
        const double ratio = static_cast<double>(d1) / static_cast<double>(d0);
        const auto r = static_cast<idx>(std::llround(ratio)) - 1;
        if (r < 0 || r >= bh) continue;
        const T residual = d1 - static_cast<T>(r + 1) * d0;
        if (std::abs(residual) > tol * static_cast<T>(std::max<idx>(2, r + 1))) {
          continue;  // inconsistent: more than one error in this column
        }
        if (mode_ == ChecksumMode::Full) {
          T row_actual = 0;
          for (idx jj = c0; jj < c1; ++jj) row_actual += a(r0 + r, jj);
          const T rd = rowchk_(r0 + r, 2 * bj) - row_actual;
          if (std::abs(rd - d0) > tol * T(4)) {
            continue;  // row side disagrees: aliased multi-error, defer to 1D
          }
        }
        a(r0 + r, j) += d0;
        ++fixed_here;
      }
      if (fixed_here > 0) result.corrected_0d += fixed_here;

      recompute_mismatches(bad_cols);
      if (bad_cols.empty()) continue;

      // Pass 2: 1D repair with the row-side checksums (full mode only). A
      // column-shaped corruption leaves exactly one mismatched column whose
      // per-row deltas are recoverable from the row checksums.
      if (mode_ == ChecksumMode::Full && bad_cols.size() == 1) {
        const idx jbad = bad_cols.front();
        int fixed_rows = 0;
        for (idx i = r0; i < r1; ++i) {
          T p = 0;
          for (idx j = c0; j < c1; ++j) p += a(i, j);
          const T rd = rowchk_(i, 2 * bj) - p;
          if (std::abs(rd) > tol) {
            a(i, jbad) += rd;
            ++fixed_rows;
          }
        }
        if (fixed_rows > 0) {
          recompute_mismatches(bad_cols);
          if (bad_cols.empty()) {
            ++result.corrected_1d;
            continue;
          }
        }
      }
      ++result.uncorrectable;
    }
  }
  return result;
}

template <typename T>
void BlockChecksums<T>::update_gemm(ConstMatrixView<T> l, ConstMatrixView<T> u) {
  if (mode_ == ChecksumMode::None) return;
  // colchk(C - L U) = colchk(C) - colchk(L) * U.
  const idx kb = l.cols();
  Matrix<T> lc(2 * nbr_, kb);
  for (idx bi = 0; bi < nbr_; ++bi) {
    const idx r0 = bi * b_;
    const idx r1 = std::min(m_, r0 + b_);
    for (idx j = 0; j < kb; ++j) {
      T p = 0;
      T w = 0;
      for (idx i = r0; i < r1; ++i) {
        const T v = l(i, j);
        p += v;
        w += static_cast<T>(i - r0 + 1) * v;
      }
      lc(2 * bi, j) = p;
      lc(2 * bi + 1, j) = w;
    }
  }
  la::gemm(la::Op::NoTrans, la::Op::NoTrans, T(-1), lc.view().as_const(), u,
           T(1), colchk_.view());
  if (mode_ == ChecksumMode::Full) {
    // rowchk(C - L U) = rowchk(C) - L * rowchk(U).
    Matrix<T> uc(kb, 2 * nbc_);
    for (idx bj = 0; bj < nbc_; ++bj) {
      const idx c0 = bj * b_;
      const idx c1 = std::min(n_, c0 + b_);
      for (idx i = 0; i < kb; ++i) {
        T p = 0;
        T w = 0;
        for (idx j = c0; j < c1; ++j) {
          const T v = u(i, j);
          p += v;
          w += static_cast<T>(j - c0 + 1) * v;
        }
        uc(i, 2 * bj) = p;
        uc(i, 2 * bj + 1) = w;
      }
    }
    la::gemm(la::Op::NoTrans, la::Op::NoTrans, T(-1), l,
             uc.view().as_const(), T(1), rowchk_.view());
  }
}

template <typename T>
T BlockChecksums<T>::suggested_tolerance(ConstMatrixView<T> a, idx b) {
  const double scale = la::norm_max(a);
  const double eps = static_cast<double>(std::numeric_limits<T>::epsilon());
  return static_cast<T>(64.0 * eps * static_cast<double>(b) *
                        std::max(1.0, scale));
}

template class BlockChecksums<float>;
template class BlockChecksums<double>;

}  // namespace bsr::abft
