// Adaptive-ABFT strategy — paper Algorithm 1 (ABFT-OC).
//
// Given the desired GPU frequency BSR wants, the predicted operation time and
// a target fault coverage, pick the cheapest checksum scheme that still covers
// all expected errors, lowering the frequency step by step when even full
// checksums cannot reach the target. At fault-free frequencies ABFT is
// disabled entirely — the paper's key overhead saving over always-on ABFT.
#pragma once

#include <cstdint>

#include "abft/checksum.hpp"
#include "hw/platform.hpp"

namespace bsr::abft {

struct AbftDecision {
  hw::Mhz freq = 0;                          ///< possibly lowered frequency
  ChecksumMode mode = ChecksumMode::None;    ///< protection to enable
  double coverage = 1.0;                     ///< estimated FC at the decision
};

/// Paper Algorithm 1. `t_base_seconds` is the predicted GPU op time at the
/// base clock; the projected time at a candidate frequency scales inversely
/// with frequency. (The paper's listing prints the ratio upside down —
/// F_desired / F_BASE — which would make overclocked intervals *longer*; we
/// implement the physically meaningful direction and note the deviation.)
/// `blocks` is S = (n/b)^2.
AbftDecision abft_oc(double fc_desired, hw::Mhz f_desired,
                     const hw::DeviceModel& gpu, double t_base_seconds,
                     std::int64_t blocks);

}  // namespace bsr::abft
