#include "abft/verify.hpp"

namespace bsr::abft {

template VerifyResult scrub<float>(const BlockChecksums<float>&,
                                   la::MatrixView<float>);
template VerifyResult scrub<double>(const BlockChecksums<double>&,
                                    la::MatrixView<double>);

}  // namespace bsr::abft
