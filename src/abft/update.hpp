// ABFT-protected trailing-matrix operations.
//
// Thin compositions of a numeric kernel with the matching checksum
// propagation, so the pipeline performs "operation + checksum update" as one
// step (the cost the paper's Table 2 charges to the Computation & Checksum
// Update column).
#pragma once

#include "abft/checksum.hpp"
#include "la/blas.hpp"

namespace bsr::abft {

/// c := c - l * u, with the column/row checksums of c propagated through the
/// update (no re-encode needed afterwards).
template <typename T>
void protected_gemm_update(la::MatrixView<T> c, la::ConstMatrixView<T> l,
                           la::ConstMatrixView<T> u, BlockChecksums<T>& chk);

extern template void protected_gemm_update<float>(la::MatrixView<float>,
                                                  la::ConstMatrixView<float>,
                                                  la::ConstMatrixView<float>,
                                                  BlockChecksums<float>&);
extern template void protected_gemm_update<double>(la::MatrixView<double>,
                                                   la::ConstMatrixView<double>,
                                                   la::ConstMatrixView<double>,
                                                   BlockChecksums<double>&);

}  // namespace bsr::abft
