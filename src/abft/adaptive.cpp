#include "abft/adaptive.hpp"

#include "abft/coverage.hpp"

namespace bsr::abft {

AbftDecision abft_oc(double fc_desired, hw::Mhz f_desired,
                     const hw::DeviceModel& gpu, double t_base_seconds,
                     std::int64_t blocks) {
  AbftDecision d;
  d.freq = gpu.freq.clamp(f_desired, /*optimized_guardband=*/true);
  for (;;) {
    const hw::ErrorRates rates = gpu.errors.rates(d.freq, hw::Guardband::Optimized);
    if (rates.fault_free()) {
      d.mode = ChecksumMode::None;
      d.coverage = 1.0;
      return d;
    }
    const double t_projected =
        t_base_seconds * static_cast<double>(gpu.freq.base_mhz) /
        static_cast<double>(d.freq);
    const double single = fc_single(rates, t_projected, blocks);
    if (single >= fc_desired) {
      d.mode = ChecksumMode::SingleSide;
      d.coverage = single;
      return d;
    }
    const double full = fc_full(rates, t_projected, blocks);
    if (full >= fc_desired) {
      d.mode = ChecksumMode::Full;
      d.coverage = full;
      return d;
    }
    if (d.freq - gpu.freq.step_mhz < gpu.freq.min_mhz) {
      // Cannot go lower; settle for full checksums at the floor.
      d.mode = ChecksumMode::Full;
      d.coverage = full;
      return d;
    }
    d.freq -= gpu.freq.step_mhz;
  }
}

}  // namespace bsr::abft
