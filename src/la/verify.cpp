#include <cmath>

#include "la/blas.hpp"
#include "la/lapack.hpp"
#include "la/verify.hpp"

namespace bsr::la {

template <typename T>
double norm_fro(ConstMatrixView<T> a) {
  double s = 0.0;
  for (idx j = 0; j < a.cols(); ++j) {
    for (idx i = 0; i < a.rows(); ++i) {
      const double v = static_cast<double>(a(i, j));
      s += v * v;
    }
  }
  return std::sqrt(s);
}

template <typename T>
double norm_max(ConstMatrixView<T> a) {
  double m = 0.0;
  for (idx j = 0; j < a.cols(); ++j) {
    for (idx i = 0; i < a.rows(); ++i) {
      m = std::max(m, std::abs(static_cast<double>(a(i, j))));
    }
  }
  return m;
}

template <typename T>
double cholesky_residual(ConstMatrixView<T> original, ConstMatrixView<T> factored) {
  const idx n = original.rows();
  Matrix<T> l(n, n);
  for (idx j = 0; j < n; ++j) {
    for (idx i = j; i < n; ++i) l(i, j) = factored(i, j);
  }
  Matrix<T> rec(n, n);
  gemm(Op::NoTrans, Op::Trans, T(1), l.view().as_const(), l.view().as_const(),
       T(0), rec.view());
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i < n; ++i) rec(i, j) -= original(i, j);
  }
  const double denom = norm_fro(original);
  return denom == 0.0 ? norm_fro(rec.view().as_const())
                      : norm_fro(rec.view().as_const()) / denom;
}

template <typename T>
double lu_residual(ConstMatrixView<T> original, ConstMatrixView<T> factored,
                   const std::vector<idx>& ipiv) {
  const idx m = original.rows();
  const idx n = original.cols();
  const idx k = std::min(m, n);
  Matrix<T> l(m, k);
  Matrix<T> u(k, n);
  for (idx j = 0; j < k; ++j) {
    l(j, j) = T(1);
    for (idx i = j + 1; i < m; ++i) l(i, j) = factored(i, j);
  }
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i <= std::min(j, k - 1); ++i) u(i, j) = factored(i, j);
  }
  Matrix<T> rec(m, n);
  gemm(Op::NoTrans, Op::NoTrans, T(1), l.view().as_const(), u.view().as_const(),
       T(0), rec.view());
  // Compare against P*A: apply the same interchanges to a copy of A.
  Matrix<T> pa = to_matrix(original);
  laswp(pa.view(), ipiv, 0, static_cast<idx>(ipiv.size()));
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i < m; ++i) rec(i, j) -= pa(i, j);
  }
  const double denom = norm_fro(original);
  return denom == 0.0 ? norm_fro(rec.view().as_const())
                      : norm_fro(rec.view().as_const()) / denom;
}

template <typename T>
double qr_residual(ConstMatrixView<T> original, ConstMatrixView<T> factored,
                   const std::vector<T>& tau) {
  const idx m = original.rows();
  const idx n = original.cols();
  const idx k = std::min(m, n);
  Matrix<T> q = form_q(factored, tau);
  Matrix<T> r(m, n);
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i <= std::min(j, k - 1); ++i) r(i, j) = factored(i, j);
  }
  Matrix<T> rec(m, n);
  gemm(Op::NoTrans, Op::NoTrans, T(1), q.view().as_const(), r.view().as_const(),
       T(0), rec.view());
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i < m; ++i) rec(i, j) -= original(i, j);
  }
  const double denom = norm_fro(original);
  return denom == 0.0 ? norm_fro(rec.view().as_const())
                      : norm_fro(rec.view().as_const()) / denom;
}

template <typename T>
double orthogonality_error(ConstMatrixView<T> q) {
  const idx m = q.cols();
  Matrix<T> qtq(m, m);
  gemm(Op::Trans, Op::NoTrans, T(1), q, q, T(0), qtq.view());
  for (idx i = 0; i < m; ++i) qtq(i, i) -= T(1);
  return norm_fro(qtq.view().as_const());
}

#define BSR_LA_INSTANTIATE(T)                                              \
  template double norm_fro<T>(ConstMatrixView<T>);                         \
  template double norm_max<T>(ConstMatrixView<T>);                         \
  template double cholesky_residual<T>(ConstMatrixView<T>,                 \
                                       ConstMatrixView<T>);                \
  template double lu_residual<T>(ConstMatrixView<T>, ConstMatrixView<T>,   \
                                 const std::vector<idx>&);                 \
  template double qr_residual<T>(ConstMatrixView<T>, ConstMatrixView<T>,   \
                                 const std::vector<T>&);                   \
  template double orthogonality_error<T>(ConstMatrixView<T>);

BSR_LA_INSTANTIATE(float)
BSR_LA_INSTANTIATE(double)
#undef BSR_LA_INSTANTIATE

}  // namespace bsr::la
