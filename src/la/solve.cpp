#include "la/solve.hpp"

#include <vector>

#include "la/lapack.hpp"

namespace bsr::la {

template <typename T>
void potrs(ConstMatrixView<T> l, MatrixView<T> b) {
  // A = L L^T: forward then backward substitution.
  trsm(Side::Left, Uplo::Lower, Op::NoTrans, Diag::NonUnit, T(1), l, b);
  trsm(Side::Left, Uplo::Lower, Op::Trans, Diag::NonUnit, T(1), l, b);
}

template <typename T>
void getrs(ConstMatrixView<T> lu, const std::vector<idx>& ipiv, MatrixView<T> b) {
  // P A = L U: apply P to b, then L y = Pb (unit lower), then U x = y.
  laswp(b, ipiv, 0, static_cast<idx>(ipiv.size()));
  trsm(Side::Left, Uplo::Lower, Op::NoTrans, Diag::Unit, T(1), lu, b);
  trsm(Side::Left, Uplo::Upper, Op::NoTrans, Diag::NonUnit, T(1), lu, b);
}

template <typename T>
void apply_qt(ConstMatrixView<T> qr, const std::vector<T>& tau, MatrixView<T> b) {
  // Q = H_0 ... H_{k-1}; Q^T b applies H_{k-1} ... H_0? No: Q^T = H_{k-1}^T
  // ... H_0^T and each H is symmetric, so Q^T b = H_{k-1} ... H_0 b — apply in
  // forward order.
  const idx m = qr.rows();
  const idx k = static_cast<idx>(tau.size());
  std::vector<T> v(m);
  std::vector<T> work(b.cols());
  for (idx j = 0; j < k; ++j) {
    if (tau[j] == T(0)) continue;
    v[0] = T(1);
    for (idx i = 1; i < m - j; ++i) v[i] = qr(j + i, j);
    larf_left(v.data(), tau[j], b.block(j, 0, m - j, b.cols()), work.data());
  }
}

template <typename T>
void geqrs(ConstMatrixView<T> qr, const std::vector<T>& tau, MatrixView<T> b) {
  const idx n = qr.cols();
  apply_qt(qr, tau, b);
  // R x = (Q^T b)(0:n): back substitution on the upper triangle of qr.
  trsm(Side::Left, Uplo::Upper, Op::NoTrans, Diag::NonUnit, T(1),
       qr.block(0, 0, n, n), b.block(0, 0, n, b.cols()));
}

#define BSR_LA_INSTANTIATE(T)                                                 \
  template void potrs<T>(ConstMatrixView<T>, MatrixView<T>);                  \
  template void getrs<T>(ConstMatrixView<T>, const std::vector<idx>&,         \
                         MatrixView<T>);                                      \
  template void apply_qt<T>(ConstMatrixView<T>, const std::vector<T>&,        \
                            MatrixView<T>);                                   \
  template void geqrs<T>(ConstMatrixView<T>, const std::vector<T>&,           \
                         MatrixView<T>);

BSR_LA_INSTANTIATE(float)
BSR_LA_INSTANTIATE(double)
#undef BSR_LA_INSTANTIATE

}  // namespace bsr::la
