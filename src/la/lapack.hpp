// From-scratch one-sided factorization kernels (LAPACK-style).
//
// These are the numeric building blocks the heterogeneous pipeline schedules:
// panel factorizations (potf2 / getf2 / geqr2 and their blocked drivers) plus
// the block-reflector machinery for QR. Conventions follow LAPACK: column
// major, L has unit diagonal stored implicitly for LU, tau/V compact storage
// for QR, 0-based pivot indices.
#pragma once

#include <vector>

#include "la/blas.hpp"
#include "la/matrix.hpp"

namespace bsr::la {

// ---- Cholesky (lower) ------------------------------------------------------

/// Unblocked lower Cholesky of a square block in place.
/// Returns 0 on success, or 1-based index of the first non-positive pivot.
template <typename T>
idx potf2(MatrixView<T> a);

/// Blocked right-looking lower Cholesky in place with block size nb.
template <typename T>
idx potrf(MatrixView<T> a, idx nb);

// ---- LU with partial pivoting ----------------------------------------------

/// Unblocked LU of an m x n panel with partial pivoting. ipiv[k] is the
/// 0-based row swapped with row k. Returns 0 or 1-based index of a zero pivot.
template <typename T>
idx getf2(MatrixView<T> a, std::vector<idx>& ipiv);

/// Applies row interchanges ipiv[k0..k1) to all columns of a.
template <typename T>
void laswp(MatrixView<T> a, const std::vector<idx>& ipiv, idx k0, idx k1);

/// Blocked LU with partial pivoting in place; ipiv resized to min(m, n).
template <typename T>
idx getrf(MatrixView<T> a, idx nb, std::vector<idx>& ipiv);

// ---- QR (Householder, compact WY) -------------------------------------------

/// Generates an elementary reflector H = I - tau v v^T zeroing x below alpha.
/// On exit alpha holds beta, x holds v(1:), tau the scalar factor.
template <typename T>
void larfg(idx n, T& alpha, T* x, idx incx, T& tau);

/// Applies H = I - tau v v^T from the left to c (v has implicit leading 1).
template <typename T>
void larf_left(const T* v, T tau, MatrixView<T> c, T* work);

/// Unblocked QR of an m x n panel; tau resized to min(m, n).
template <typename T>
idx geqr2(MatrixView<T> a, std::vector<T>& tau);

/// Forms the upper-triangular block-reflector factor T (forward, columnwise)
/// from the k reflectors stored in v (m x k) and tau.
template <typename T>
void larft(ConstMatrixView<T> v, const T* tau, MatrixView<T> t);

/// Applies (I - V T V^T)^T from the left to c (trailing-matrix update for QR):
/// c := c - V T^T (V^T c). V is m x k unit-lower-trapezoidal.
template <typename T>
void larfb_left_trans(ConstMatrixView<T> v, ConstMatrixView<T> t, MatrixView<T> c);

/// Blocked Householder QR in place with block size nb; tau resized to min(m,n).
template <typename T>
idx geqrf(MatrixView<T> a, idx nb, std::vector<T>& tau);

/// Explicitly forms the m x m orthogonal Q from a geqrf-factored matrix.
template <typename T>
Matrix<T> form_q(ConstMatrixView<T> qr, const std::vector<T>& tau);

// Explicit instantiation declarations ----------------------------------------

#define BSR_LA_DECLARE_LAPACK(T)                                                     \
  extern template idx potf2<T>(MatrixView<T>);                                       \
  extern template idx potrf<T>(MatrixView<T>, idx);                                  \
  extern template idx getf2<T>(MatrixView<T>, std::vector<idx>&);                    \
  extern template void laswp<T>(MatrixView<T>, const std::vector<idx>&, idx, idx);   \
  extern template idx getrf<T>(MatrixView<T>, idx, std::vector<idx>&);               \
  extern template void larfg<T>(idx, T&, T*, idx, T&);                               \
  extern template void larf_left<T>(const T*, T, MatrixView<T>, T*);                 \
  extern template idx geqr2<T>(MatrixView<T>, std::vector<T>&);                      \
  extern template void larft<T>(ConstMatrixView<T>, const T*, MatrixView<T>);        \
  extern template void larfb_left_trans<T>(ConstMatrixView<T>, ConstMatrixView<T>,   \
                                           MatrixView<T>);                           \
  extern template idx geqrf<T>(MatrixView<T>, idx, std::vector<T>&);                 \
  extern template Matrix<T> form_q<T>(ConstMatrixView<T>, const std::vector<T>&);

BSR_LA_DECLARE_LAPACK(float)
BSR_LA_DECLARE_LAPACK(double)
#undef BSR_LA_DECLARE_LAPACK

}  // namespace bsr::la
