// Dense column-major matrix storage and views.
//
// The substrate mirrors LAPACK conventions: column-major layout with an
// explicit leading dimension so sub-matrix views (panels, trailing matrices,
// blocks) alias the parent storage without copies. Element type is a template
// parameter; the library instantiates float and double.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace bsr::la {

using idx = std::int64_t;

template <typename T>
class ConstMatrixView;

/// Non-owning mutable view of a column-major matrix block.
template <typename T>
class MatrixView {
 public:
  MatrixView() = default;
  MatrixView(T* data, idx rows, idx cols, idx ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    assert(ld >= rows || rows == 0);
  }

  [[nodiscard]] idx rows() const { return rows_; }
  [[nodiscard]] idx cols() const { return cols_; }
  [[nodiscard]] idx ld() const { return ld_; }
  [[nodiscard]] T* data() const { return data_; }
  [[nodiscard]] bool empty() const { return rows_ == 0 || cols_ == 0; }

  T& operator()(idx i, idx j) const {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[i + j * ld_];
  }

  /// Sub-block view rooted at (i, j) of size r x c.
  [[nodiscard]] MatrixView block(idx i, idx j, idx r, idx c) const {
    assert(i >= 0 && j >= 0 && i + r <= rows_ && j + c <= cols_);
    return MatrixView(data_ + i + j * ld_, r, c, ld_);
  }

  [[nodiscard]] T* col(idx j) const { return data_ + j * ld_; }

  /// Explicit const view; template argument deduction does not consider the
  /// implicit conversion, so call sites passing a mutable view to a
  /// ConstMatrixView parameter use this.
  [[nodiscard]] ConstMatrixView<T> as_const() const;

 private:
  T* data_ = nullptr;
  idx rows_ = 0;
  idx cols_ = 0;
  idx ld_ = 0;
};

/// Non-owning read-only view.
template <typename T>
class ConstMatrixView {
 public:
  ConstMatrixView() = default;
  ConstMatrixView(const T* data, idx rows, idx cols, idx ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {}
  ConstMatrixView(MatrixView<T> v)  // NOLINT: implicit by design
      : data_(v.data()), rows_(v.rows()), cols_(v.cols()), ld_(v.ld()) {}

  [[nodiscard]] idx rows() const { return rows_; }
  [[nodiscard]] idx cols() const { return cols_; }
  [[nodiscard]] idx ld() const { return ld_; }
  [[nodiscard]] const T* data() const { return data_; }
  [[nodiscard]] bool empty() const { return rows_ == 0 || cols_ == 0; }

  const T& operator()(idx i, idx j) const {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[i + j * ld_];
  }

  [[nodiscard]] ConstMatrixView block(idx i, idx j, idx r, idx c) const {
    assert(i >= 0 && j >= 0 && i + r <= rows_ && j + c <= cols_);
    return ConstMatrixView(data_ + i + j * ld_, r, c, ld_);
  }

  [[nodiscard]] const T* col(idx j) const { return data_ + j * ld_; }

  /// No-op, for symmetry with MatrixView::as_const() in generic code.
  [[nodiscard]] ConstMatrixView as_const() const { return *this; }

 private:
  const T* data_ = nullptr;
  idx rows_ = 0;
  idx cols_ = 0;
  idx ld_ = 0;
};

template <typename T>
ConstMatrixView<T> MatrixView<T>::as_const() const {
  return ConstMatrixView<T>(data_, rows_, cols_, ld_);
}

/// Owning column-major matrix.
template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(idx rows, idx cols) : rows_(rows), cols_(cols), store_(rows * cols, T(0)) {}

  [[nodiscard]] idx rows() const { return rows_; }
  [[nodiscard]] idx cols() const { return cols_; }
  [[nodiscard]] idx ld() const { return rows_; }
  [[nodiscard]] T* data() { return store_.data(); }
  [[nodiscard]] const T* data() const { return store_.data(); }

  T& operator()(idx i, idx j) {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return store_[i + j * rows_];
  }
  const T& operator()(idx i, idx j) const {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return store_[i + j * rows_];
  }

  [[nodiscard]] MatrixView<T> view() {
    return MatrixView<T>(store_.data(), rows_, cols_, rows_);
  }
  [[nodiscard]] ConstMatrixView<T> view() const {
    return ConstMatrixView<T>(store_.data(), rows_, cols_, rows_);
  }
  [[nodiscard]] MatrixView<T> block(idx i, idx j, idx r, idx c) {
    return view().block(i, j, r, c);
  }
  [[nodiscard]] ConstMatrixView<T> block(idx i, idx j, idx r, idx c) const {
    return view().block(i, j, r, c);
  }

  void fill(T value) { store_.assign(store_.size(), value); }

 private:
  idx rows_ = 0;
  idx cols_ = 0;
  std::vector<T> store_;
};

/// Deep-copies a (possibly strided) view into an owning matrix.
template <typename T>
Matrix<T> to_matrix(ConstMatrixView<T> v) {
  Matrix<T> out(v.rows(), v.cols());
  for (idx j = 0; j < v.cols(); ++j) {
    for (idx i = 0; i < v.rows(); ++i) out(i, j) = v(i, j);
  }
  return out;
}

template <typename T>
void copy_into(ConstMatrixView<T> src, MatrixView<T> dst) {
  assert(src.rows() == dst.rows() && src.cols() == dst.cols());
  for (idx j = 0; j < src.cols(); ++j) {
    for (idx i = 0; i < src.rows(); ++i) dst(i, j) = src(i, j);
  }
}

/// Fills with uniform [-1, 1) entries.
template <typename T>
void fill_random(MatrixView<T> a, Rng& rng) {
  for (idx j = 0; j < a.cols(); ++j) {
    for (idx i = 0; i < a.rows(); ++i) {
      a(i, j) = static_cast<T>(rng.uniform(-1.0, 1.0));
    }
  }
}

/// Fills a symmetric positive-definite matrix: random B, A = B*B^T + n*I.
template <typename T>
void fill_spd(MatrixView<T> a, Rng& rng);

/// Identity.
template <typename T>
void fill_identity(MatrixView<T> a) {
  for (idx j = 0; j < a.cols(); ++j) {
    for (idx i = 0; i < a.rows(); ++i) a(i, j) = (i == j) ? T(1) : T(0);
  }
}

extern template void fill_spd<float>(MatrixView<float>, Rng&);
extern template void fill_spd<double>(MatrixView<double>, Rng&);

}  // namespace bsr::la
