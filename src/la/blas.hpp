// From-scratch BLAS subset used by the factorization kernels.
//
// Level-3 kernels (gemm / trsm / syrk) are cache-blocked and parallelized on
// the shared thread pool; level-1/2 kernels are straightforward loops with
// `__restrict` unit-stride fast paths. The interfaces mirror standard BLAS
// semantics but take typed views instead of raw pointer + dimension tuples.
//
// Aliasing contract (standard BLAS): output operands must not overlap input
// operands — gemm's C must be disjoint from A and B, ger's A from x and y.
// The kernel cores annotate column pointers with `__restrict` under that
// contract; callers that alias invoke undefined behavior, exactly as with a
// vendor BLAS. In-place operands (trsm's B, trsv's x) are exempt.
//
// Determinism contract: every kernel performs the same floating-point
// operations in the same per-element order regardless of thread count or
// internal tiling, so results are bitwise reproducible across pool widths.
// See docs/PERFORMANCE.md for which loop transforms this licenses.
#pragma once

#include "la/matrix.hpp"

// Non-aliasing pointer annotation for kernel inner loops (all supported
// compilers spell it `__restrict`).
#define BSR_RESTRICT __restrict

namespace bsr::la {

enum class Op { NoTrans, Trans };
enum class Side { Left, Right };
enum class Uplo { Upper, Lower };
enum class Diag { Unit, NonUnit };

// ---- Level 1 --------------------------------------------------------------

template <typename T>
void axpy(idx n, T alpha, const T* x, idx incx, T* y, idx incy);

template <typename T>
void scal(idx n, T alpha, T* x, idx incx);

template <typename T>
T dot(idx n, const T* x, idx incx, const T* y, idx incy);

template <typename T>
T nrm2(idx n, const T* x, idx incx);

/// Index of the element with maximum |value| (0-based); -1 when n == 0.
template <typename T>
idx iamax(idx n, const T* x, idx incx);

template <typename T>
void swap(idx n, T* x, idx incx, T* y, idx incy);

// ---- Level 2 --------------------------------------------------------------

/// y = alpha * op(A) * x + beta * y
template <typename T>
void gemv(Op op, T alpha, ConstMatrixView<T> a, const T* x, T beta, T* y);

/// A += alpha * x * y^T (incx/incy are the element strides of x and y).
template <typename T>
void ger(T alpha, const T* x, idx incx, const T* y, idx incy, MatrixView<T> a);

/// Solve op(A) * x = b in place, A triangular.
template <typename T>
void trsv(Uplo uplo, Op op, Diag diag, ConstMatrixView<T> a, T* x);

// ---- Level 3 --------------------------------------------------------------

/// C = alpha * op(A) * op(B) + beta * C.
template <typename T>
void gemm(Op opa, Op opb, T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b,
          T beta, MatrixView<T> c);

/// Solve op(A) * X = alpha * B (Side::Left) or X * op(A) = alpha * B
/// (Side::Right) in place over B; A triangular.
template <typename T>
void trsm(Side side, Uplo uplo, Op op, Diag diag, T alpha, ConstMatrixView<T> a,
          MatrixView<T> b);

/// C = alpha * A * A^T + beta * C (Op::NoTrans) or alpha * A^T * A + beta * C
/// (Op::Trans); only the `uplo` triangle of C is referenced/updated.
template <typename T>
void syrk(Uplo uplo, Op op, T alpha, ConstMatrixView<T> a, T beta,
          MatrixView<T> c);

// Explicit instantiation declarations ---------------------------------------

#define BSR_LA_DECLARE_BLAS(T)                                                       \
  extern template void axpy<T>(idx, T, const T*, idx, T*, idx);                      \
  extern template void scal<T>(idx, T, T*, idx);                                     \
  extern template T dot<T>(idx, const T*, idx, const T*, idx);                       \
  extern template T nrm2<T>(idx, const T*, idx);                                     \
  extern template idx iamax<T>(idx, const T*, idx);                                  \
  extern template void swap<T>(idx, T*, idx, T*, idx);                               \
  extern template void gemv<T>(Op, T, ConstMatrixView<T>, const T*, T, T*);          \
  extern template void ger<T>(T, const T*, idx, const T*, idx, MatrixView<T>);       \
  extern template void trsv<T>(Uplo, Op, Diag, ConstMatrixView<T>, T*);              \
  extern template void gemm<T>(Op, Op, T, ConstMatrixView<T>, ConstMatrixView<T>, T, \
                               MatrixView<T>);                                       \
  extern template void trsm<T>(Side, Uplo, Op, Diag, T, ConstMatrixView<T>,          \
                               MatrixView<T>);                                       \
  extern template void syrk<T>(Uplo, Op, T, ConstMatrixView<T>, T, MatrixView<T>);

BSR_LA_DECLARE_BLAS(float)
BSR_LA_DECLARE_BLAS(double)
#undef BSR_LA_DECLARE_BLAS

}  // namespace bsr::la
