#include "la/matrix.hpp"

namespace bsr::la {

template <typename T>
void fill_spd(MatrixView<T> a, Rng& rng) {
  assert(a.rows() == a.cols());
  const idx n = a.rows();
  // A = B * B^T + n * I computed directly (O(n^3)); fine for test sizes.
  Matrix<T> b(n, n);
  fill_random(b.view(), rng);
  for (idx j = 0; j < n; ++j) {
    for (idx i = j; i < n; ++i) {
      T s = 0;
      for (idx k = 0; k < n; ++k) s += b(i, k) * b(j, k);
      if (i == j) s += static_cast<T>(n);
      a(i, j) = s;
      a(j, i) = s;
    }
  }
}

template void fill_spd<float>(MatrixView<float>, Rng&);
template void fill_spd<double>(MatrixView<double>, Rng&);

}  // namespace bsr::la
