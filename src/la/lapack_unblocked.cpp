#include <cmath>

#include "la/lapack.hpp"

namespace bsr::la {

template <typename T>
idx potf2(MatrixView<T> a) {
  const idx n = a.rows();
  for (idx j = 0; j < n; ++j) {
    T d = a(j, j) - dot(j, &a(j, 0), a.ld(), &a(j, 0), a.ld());
    if (d <= T(0) || !std::isfinite(static_cast<double>(d))) return j + 1;
    d = std::sqrt(d);
    a(j, j) = d;
    if (j + 1 < n) {
      // a(j+1:, j) = (a(j+1:, j) - A(j+1:, :j) * a(j, :j)^T) / d
      for (idx k = 0; k < j; ++k) {
        axpy(n - j - 1, -a(j, k), &a(j + 1, k), 1, &a(j + 1, j), 1);
      }
      scal(n - j - 1, T(1) / d, &a(j + 1, j), 1);
    }
  }
  return 0;
}

template <typename T>
idx getf2(MatrixView<T> a, std::vector<idx>& ipiv) {
  const idx m = a.rows();
  const idx n = a.cols();
  const idx k = std::min(m, n);
  ipiv.assign(k, 0);
  idx info = 0;
  for (idx j = 0; j < k; ++j) {
    const idx p = j + iamax(m - j, &a(j, j), 1);
    ipiv[j] = p;
    if (a(p, j) != T(0)) {
      if (p != j) swap(n, &a(j, 0), a.ld(), &a(p, 0), a.ld());
      if (j + 1 < m) scal(m - j - 1, T(1) / a(j, j), &a(j + 1, j), 1);
    } else if (info == 0) {
      info = j + 1;
    }
    if (j + 1 < m && j + 1 < n) {
      ger(T(-1), &a(j + 1, j), 1, &a(j, j + 1), a.ld(),
          a.block(j + 1, j + 1, m - j - 1, n - j - 1));
    }
  }
  return info;
}

template <typename T>
void laswp(MatrixView<T> a, const std::vector<idx>& ipiv, idx k0, idx k1) {
  for (idx kk = k0; kk < k1; ++kk) {
    const idx p = ipiv[kk];
    if (p != kk) swap(a.cols(), &a(kk, 0), a.ld(), &a(p, 0), a.ld());
  }
}

template <typename T>
void larfg(idx n, T& alpha, T* x, idx incx, T& tau) {
  if (n <= 1) {
    tau = T(0);
    return;
  }
  const T xnorm = nrm2(n - 1, x, incx);
  if (xnorm == T(0)) {
    tau = T(0);
    return;
  }
  T beta = std::sqrt(alpha * alpha + xnorm * xnorm);
  if (alpha >= T(0)) beta = -beta;
  tau = (beta - alpha) / beta;
  scal(n - 1, T(1) / (alpha - beta), x, incx);
  alpha = beta;
}

template <typename T>
void larf_left(const T* v, T tau, MatrixView<T> c, T* work) {
  // c := (I - tau v v^T) c; v(0) == 1 implicit, caller passes v with explicit 1.
  if (tau == T(0)) return;
  const idx m = c.rows();
  const idx n = c.cols();
  // work = c^T v
  for (idx j = 0; j < n; ++j) work[j] = dot(m, c.col(j), 1, v, 1);
  // c -= tau * v * work^T
  for (idx j = 0; j < n; ++j) {
    axpy(m, -tau * work[j], v, 1, c.col(j), 1);
  }
}

template <typename T>
idx geqr2(MatrixView<T> a, std::vector<T>& tau) {
  const idx m = a.rows();
  const idx n = a.cols();
  const idx k = std::min(m, n);
  tau.assign(k, T(0));
  std::vector<T> v(m);
  std::vector<T> work(n);
  for (idx j = 0; j < k; ++j) {
    larfg(m - j, a(j, j), (j + 1 < m) ? &a(j + 1, j) : nullptr, 1, tau[j]);
    if (j + 1 < n && tau[j] != T(0)) {
      // Apply H_j to the trailing columns using an explicit v with leading 1.
      v[0] = T(1);
      for (idx i = 1; i < m - j; ++i) v[i] = a(j + i, j);
      larf_left(v.data(), tau[j], a.block(j, j + 1, m - j, n - j - 1),
                work.data());
    }
  }
  return 0;
}

template <typename T>
void larft(ConstMatrixView<T> v, const T* tau, MatrixView<T> t) {
  const idx k = v.cols();
  const idx m = v.rows();
  // Forward, columnwise storage: T is k x k upper triangular.
  for (idx i = 0; i < k; ++i) {
    for (idx j = 0; j < k; ++j) t(i, j) = T(0);
  }
  for (idx i = 0; i < k; ++i) {
    t(i, i) = tau[i];
    if (i == 0 || tau[i] == T(0)) continue;
    // t(0:i, i) = -tau_i * T(0:i, 0:i) * (V(:, 0:i)^T v_i)
    std::vector<T> w(i, T(0));
    // v_i has implicit 1 at row i and entries below.
    for (idx j = 0; j < i; ++j) {
      // V(:, j)^T v_i — V(:, j) has implicit 1 at row j, explicit below.
      T s = v(i, j);  // row i of column j times the implicit 1 of v_i
      for (idx r = i + 1; r < m; ++r) s += v(r, j) * v(r, i);
      w[j] = -tau[i] * s;
    }
    // t(0:i, i) = T(0:i, 0:i) * w (upper triangular multiply)
    for (idx r = 0; r < i; ++r) {
      T s = 0;
      for (idx c = r; c < i; ++c) s += t(r, c) * w[c];
      t(r, i) = s;
    }
  }
}

#define BSR_LA_INSTANTIATE(T)                                                    \
  template idx potf2<T>(MatrixView<T>);                                          \
  template idx getf2<T>(MatrixView<T>, std::vector<idx>&);                       \
  template void laswp<T>(MatrixView<T>, const std::vector<idx>&, idx, idx);      \
  template void larfg<T>(idx, T&, T*, idx, T&);                                  \
  template void larf_left<T>(const T*, T, MatrixView<T>, T*);                    \
  template idx geqr2<T>(MatrixView<T>, std::vector<T>&);                         \
  template void larft<T>(ConstMatrixView<T>, const T*, MatrixView<T>);

BSR_LA_INSTANTIATE(float)
BSR_LA_INSTANTIATE(double)
#undef BSR_LA_INSTANTIATE

}  // namespace bsr::la
