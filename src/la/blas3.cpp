#include <algorithm>
#include <vector>

#include "common/thread_pool.hpp"
#include "la/blas.hpp"

namespace bsr::la {

namespace {

// Column-saxpy GEMM core computing C(:, j0:j1) = alpha * A * B(:, j0:j1)
// + beta * C over a contiguous column range, with A in NoTrans layout. Columns
// of A and C are contiguous, so the inner loop vectorizes.
template <typename T>
void gemm_nn_cols(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, Op opb,
                  T beta, MatrixView<T> c, idx j0, idx j1) {
  const idx m = c.rows();
  const idx kdim = a.cols();
  constexpr idx kKBlock = 256;
  for (idx j = j0; j < j1; ++j) {
    T* cj = c.col(j);
    if (beta == T(0)) {
      std::fill(cj, cj + m, T(0));
    } else if (beta != T(1)) {
      for (idx i = 0; i < m; ++i) cj[i] *= beta;
    }
    for (idx k0 = 0; k0 < kdim; k0 += kKBlock) {
      const idx k1 = std::min(k0 + kKBlock, kdim);
      for (idx k = k0; k < k1; ++k) {
        const T bkj = opb == Op::NoTrans ? b(k, j) : b(j, k);
        if (bkj == T(0)) continue;
        const T w = alpha * bkj;
        const T* ak = a.col(k);
        for (idx i = 0; i < m; ++i) cj[i] += w * ak[i];
      }
    }
  }
}

}  // namespace

template <typename T>
void gemm(Op opa, Op opb, T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b,
          T beta, MatrixView<T> c) {
  const idx m = c.rows();
  const idx n = c.cols();
  const idx kdim = opa == Op::NoTrans ? a.cols() : a.rows();
  if (m == 0 || n == 0) return;

  // Resolve a transposed A by packing A^T once; the core kernel then always
  // streams contiguous columns of A.
  Matrix<T> at_store;
  ConstMatrixView<T> a_nt = a;
  if (opa == Op::Trans) {
    at_store = Matrix<T>(m, kdim);
    for (idx j = 0; j < kdim; ++j) {
      for (idx i = 0; i < m; ++i) at_store(i, j) = a(j, i);
    }
    a_nt = at_store.view();
  }

  const double flops = 2.0 * static_cast<double>(m) * static_cast<double>(n) *
                       static_cast<double>(kdim);
  if (flops < 1e6 || n == 1) {
    gemm_nn_cols(alpha, a_nt, b, opb, beta, c, 0, n);
    return;
  }
  auto& pool = ThreadPool::shared();
  const idx chunk = std::max<idx>(1, n / static_cast<idx>(pool.size() * 4));
  const std::size_t nchunks = static_cast<std::size_t>((n + chunk - 1) / chunk);
  pool.parallel_for(nchunks, [&](std::size_t ci) {
    const idx j0 = static_cast<idx>(ci) * chunk;
    const idx j1 = std::min(j0 + chunk, n);
    gemm_nn_cols(alpha, a_nt, b, opb, beta, c, j0, j1);
  });
}

template <typename T>
void trsm(Side side, Uplo uplo, Op op, Diag diag, T alpha, ConstMatrixView<T> a,
          MatrixView<T> b) {
  const idx m = b.rows();
  const idx n = b.cols();
  const bool unit = diag == Diag::Unit;
  if (m == 0 || n == 0) return;

  if (alpha != T(1)) {
    for (idx j = 0; j < n; ++j) scal(m, alpha, b.col(j), 1);
  }

  if (side == Side::Left) {
    auto solve_cols = [&](idx j0, idx j1) {
      for (idx j = j0; j < j1; ++j) trsv(uplo, op, diag, a, b.col(j));
    };
    // Columns are independent for Side::Left; parallelize when worthwhile.
    const double flops = static_cast<double>(m) * m * n;
    if (flops > 1e6) {
      auto& pool = ThreadPool::shared();
      const idx chunk = std::max<idx>(1, n / static_cast<idx>(pool.size() * 4));
      const auto nchunks = static_cast<std::size_t>((n + chunk - 1) / chunk);
      pool.parallel_for(nchunks, [&](std::size_t ci) {
        const idx j0 = static_cast<idx>(ci) * chunk;
        solve_cols(j0, std::min(j0 + chunk, n));
      });
    } else {
      solve_cols(0, n);
    }
    return;
  }

  // Side::Right: X * op(A) = B, A is n x n. Column-oriented reference loops.
  if (op == Op::NoTrans) {
    if (uplo == Uplo::Upper) {
      // Forward over columns: X(:,j) = (B(:,j) - sum_{k<j} X(:,k) A(k,j)) / A(j,j)
      for (idx j = 0; j < n; ++j) {
        T* bj = b.col(j);
        for (idx k = 0; k < j; ++k) {
          const T akj = a(k, j);
          if (akj != T(0)) axpy(m, -akj, b.col(k), 1, bj, 1);
        }
        if (!unit) scal(m, T(1) / a(j, j), bj, 1);
      }
    } else {
      for (idx j = n - 1; j >= 0; --j) {
        T* bj = b.col(j);
        for (idx k = j + 1; k < n; ++k) {
          const T akj = a(k, j);
          if (akj != T(0)) axpy(m, -akj, b.col(k), 1, bj, 1);
        }
        if (!unit) scal(m, T(1) / a(j, j), bj, 1);
      }
    }
  } else {
    // X * A^T = B.
    if (uplo == Uplo::Upper) {
      for (idx j = n - 1; j >= 0; --j) {
        T* bj = b.col(j);
        if (!unit) scal(m, T(1) / a(j, j), bj, 1);
        for (idx k = 0; k < j; ++k) {
          const T ajk = a(k, j);
          if (ajk != T(0)) axpy(m, -ajk, bj, 1, b.col(k), 1);
        }
      }
    } else {
      for (idx j = 0; j < n; ++j) {
        T* bj = b.col(j);
        if (!unit) scal(m, T(1) / a(j, j), bj, 1);
        for (idx k = j + 1; k < n; ++k) {
          const T ajk = a(k, j);
          if (ajk != T(0)) axpy(m, -ajk, bj, 1, b.col(k), 1);
        }
      }
    }
  }
}

template <typename T>
void syrk(Uplo uplo, Op op, T alpha, ConstMatrixView<T> a, T beta,
          MatrixView<T> c) {
  const idx n = c.rows();
  const idx kdim = op == Op::NoTrans ? a.cols() : a.rows();
  if (n == 0) return;
  // Compute the full product into a scratch block via gemm (fast path), then
  // fold the requested triangle into C. The extra flops on the dead triangle
  // are cheaper than a strided dot-product loop at the sizes we use.
  Matrix<T> scratch(n, n);
  if (op == Op::NoTrans) {
    gemm(Op::NoTrans, Op::Trans, alpha, a, a, T(0), scratch.view());
  } else {
    gemm(Op::Trans, Op::NoTrans, alpha, a, a, T(0), scratch.view());
  }
  (void)kdim;
  if (uplo == Uplo::Lower) {
    for (idx j = 0; j < n; ++j) {
      for (idx i = j; i < n; ++i) c(i, j) = beta * c(i, j) + scratch(i, j);
    }
  } else {
    for (idx j = 0; j < n; ++j) {
      for (idx i = 0; i <= j; ++i) c(i, j) = beta * c(i, j) + scratch(i, j);
    }
  }
}

#define BSR_LA_INSTANTIATE(T)                                                     \
  template void gemm<T>(Op, Op, T, ConstMatrixView<T>, ConstMatrixView<T>, T,     \
                        MatrixView<T>);                                           \
  template void trsm<T>(Side, Uplo, Op, Diag, T, ConstMatrixView<T>,              \
                        MatrixView<T>);                                           \
  template void syrk<T>(Uplo, Op, T, ConstMatrixView<T>, T, MatrixView<T>);

BSR_LA_INSTANTIATE(float)
BSR_LA_INSTANTIATE(double)
#undef BSR_LA_INSTANTIATE

}  // namespace bsr::la
