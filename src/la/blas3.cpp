#include <algorithm>
#include <vector>

#include "common/arena.hpp"
#include "common/thread_pool.hpp"
#include "la/blas.hpp"

namespace bsr::la {

namespace {

// ---- GEMM core ------------------------------------------------------------
//
// C(:, j0:j1) = alpha * A * B(:, j0:j1) + beta * C over a contiguous column
// range, A in NoTrans layout. The reference semantics (which the tuned paths
// below reproduce bitwise) are, per column j:
//
//   1. scale cj by beta (fill with zero when beta == 0);
//   2. for k ascending: skip when b(k,j) == 0, else cj[i] += (alpha*b(k,j)) *
//      a(i,k) for all i, each k a separate rounded multiply-add pass.
//
// Every element of C sees the same FP ops in the same order under any of the
// tilings below, because the k updates for one (i,j) stay in ascending-k
// order and each `s += w * a[i]` statement rounds exactly like a standalone
// rank-1 pass (storing and reloading a double between passes is exact). The
// zero-skip must be preserved — adding a zero term is not a no-op for -0.0
// or non-finite operands.

// Four consecutive rank-1 updates of one column, A loads amortized over the
// unrolled body. `__restrict` holds: C does not alias A by the gemm contract.
template <typename T>
inline void rank4_col(idx m, T* BSR_RESTRICT cj, const T* BSR_RESTRICT a0,
                      const T* BSR_RESTRICT a1, const T* BSR_RESTRICT a2,
                      const T* BSR_RESTRICT a3, T w0, T w1, T w2, T w3) {
  for (idx i = 0; i < m; ++i) {
    T s = cj[i];
    s += w0 * a0[i];
    s += w1 * a1[i];
    s += w2 * a2[i];
    s += w3 * a3[i];
    cj[i] = s;
  }
}

// Four consecutive rank-1 updates applied to two columns sharing the same
// A panel: each a(i,k) load feeds both accumulators, halving A traffic.
template <typename T>
inline void rank4_pair(idx m, T* BSR_RESTRICT c0, T* BSR_RESTRICT c1,
                       const T* BSR_RESTRICT a0, const T* BSR_RESTRICT a1,
                       const T* BSR_RESTRICT a2, const T* BSR_RESTRICT a3,
                       const T* BSR_RESTRICT w0, const T* BSR_RESTRICT w1) {
  const T w00 = w0[0], w01 = w0[1], w02 = w0[2], w03 = w0[3];
  const T w10 = w1[0], w11 = w1[1], w12 = w1[2], w13 = w1[3];
  for (idx i = 0; i < m; ++i) {
    const T x0 = a0[i], x1 = a1[i], x2 = a2[i], x3 = a3[i];
    T s = c0[i];
    s += w00 * x0;
    s += w01 * x1;
    s += w02 * x2;
    s += w03 * x3;
    c0[i] = s;
    T t = c1[i];
    t += w10 * x0;
    t += w11 * x1;
    t += w12 * x2;
    t += w13 * x3;
    c1[i] = t;
  }
}

// Applies one k-panel to one column from a compacted nonzero list: acol/w
// hold the surviving (A column, alpha*b) pairs in ascending-k order.
template <typename T>
inline void apply_compacted(idx m, T* cj, const T* const* acol, const T* w,
                            idx nnz) {
  idx t = 0;
  for (; t + 4 <= nnz; t += 4) {
    rank4_col(m, cj, acol[t], acol[t + 1], acol[t + 2], acol[t + 3], w[t],
              w[t + 1], w[t + 2], w[t + 3]);
  }
  for (; t < nnz; ++t) {
    T* BSR_RESTRICT cr = cj;
    const T* BSR_RESTRICT ak = acol[t];
    const T wt = w[t];
    for (idx i = 0; i < m; ++i) cr[i] += wt * ak[i];
  }
}

template <typename T>
void gemm_nn_cols(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, Op opb,
                  T beta, MatrixView<T> c, idx j0, idx j1) {
  const idx m = c.rows();
  const idx kdim = a.cols();
  constexpr idx kKBlock = 256;

  for (idx j = j0; j < j1; ++j) {
    T* cj = c.col(j);
    if (beta == T(0)) {
      std::fill(cj, cj + m, T(0));
    } else if (beta != T(1)) {
      for (idx i = 0; i < m; ++i) cj[i] *= beta;
    }
  }
  if (m == 0 || kdim == 0) return;

  // Per-panel scratch (at most kKBlock entries, lives on this stack frame so
  // pool workers never contend).
  T wa[kKBlock];
  T wb[kKBlock];
  const T* acol[kKBlock];

  for (idx k0 = 0; k0 < kdim; k0 += kKBlock) {
    const idx k1 = std::min(k0 + kKBlock, kdim);
    const idx klen = k1 - k0;
    idx j = j0;
    // Column pairs: when every b entry in the panel is nonzero for both
    // columns (the dense common case), both columns touch the identical
    // ascending-k sequence and can share the A loads.
    for (; j + 2 <= j1; j += 2) {
      bool dense = true;
      for (idx k = k0; k < k1; ++k) {
        const T b0 = opb == Op::NoTrans ? b(k, j) : b(j, k);
        const T b1 = opb == Op::NoTrans ? b(k, j + 1) : b(j + 1, k);
        if (b0 == T(0) || b1 == T(0)) {
          dense = false;
          break;
        }
        wa[k - k0] = alpha * b0;
        wb[k - k0] = alpha * b1;
      }
      if (dense) {
        T* c0 = c.col(j);
        T* c1 = c.col(j + 1);
        idx t = 0;
        for (; t + 4 <= klen; t += 4) {
          const idx k = k0 + t;
          rank4_pair(m, c0, c1, a.col(k), a.col(k + 1), a.col(k + 2),
                     a.col(k + 3), wa + t, wb + t);
        }
        for (; t < klen; ++t) {
          acol[0] = a.col(k0 + t);
          apply_compacted(m, c0, acol, wa + t, 1);
          apply_compacted(m, c1, acol, wb + t, 1);
        }
        continue;
      }
      // Sparse panel: fall back to per-column compaction of the nonzeros.
      for (idx jj = j; jj < j + 2; ++jj) {
        idx nnz = 0;
        for (idx k = k0; k < k1; ++k) {
          const T bkj = opb == Op::NoTrans ? b(k, jj) : b(jj, k);
          if (bkj == T(0)) continue;
          wa[nnz] = alpha * bkj;
          acol[nnz] = a.col(k);
          ++nnz;
        }
        apply_compacted(m, c.col(jj), acol, wa, nnz);
      }
    }
    // Odd trailing column.
    for (; j < j1; ++j) {
      idx nnz = 0;
      for (idx k = k0; k < k1; ++k) {
        const T bkj = opb == Op::NoTrans ? b(k, j) : b(j, k);
        if (bkj == T(0)) continue;
        wa[nnz] = alpha * bkj;
        acol[nnz] = a.col(k);
        ++nnz;
      }
      apply_compacted(m, c.col(j), acol, wa, nnz);
    }
  }
}

}  // namespace

template <typename T>
void gemm(Op opa, Op opb, T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b,
          T beta, MatrixView<T> c) {
  const idx m = c.rows();
  const idx n = c.cols();
  const idx kdim = opa == Op::NoTrans ? a.cols() : a.rows();
  if (m == 0 || n == 0) return;

  // Resolve a transposed A by packing A^T once into arena scratch (no malloc
  // or zero-fill on the steady state); the core kernel then always streams
  // contiguous columns of A. Cache-blocked copy; copy order does not affect
  // values. The frame outlives the parallel_for below, and workers only read.
  ArenaScope scope(Arena::scratch());
  ConstMatrixView<T> a_nt = a;
  if (opa == Op::Trans) {
    T* at = scope.alloc<T>(static_cast<std::size_t>(m) *
                           static_cast<std::size_t>(kdim));
    constexpr idx kTile = 64;
    for (idx jj = 0; jj < kdim; jj += kTile) {
      const idx jend = std::min(jj + kTile, kdim);
      for (idx ii = 0; ii < m; ii += kTile) {
        const idx iend = std::min(ii + kTile, m);
        for (idx jt = jj; jt < jend; ++jt) {
          for (idx it = ii; it < iend; ++it) at[it + jt * m] = a(jt, it);
        }
      }
    }
    a_nt = ConstMatrixView<T>(at, m, kdim, m);
  }

  const double flops = 2.0 * static_cast<double>(m) * static_cast<double>(n) *
                       static_cast<double>(kdim);
  if (flops < 1e6 || n == 1) {
    gemm_nn_cols(alpha, a_nt, b, opb, beta, c, 0, n);
    return;
  }
  auto& pool = ThreadPool::shared();
  const idx chunk = std::max<idx>(1, n / static_cast<idx>(pool.size() * 4));
  const std::size_t nchunks = static_cast<std::size_t>((n + chunk - 1) / chunk);
  pool.parallel_for(nchunks, [&](std::size_t ci) {
    const idx j0 = static_cast<idx>(ci) * chunk;
    const idx j1 = std::min(j0 + chunk, n);
    gemm_nn_cols(alpha, a_nt, b, opb, beta, c, j0, j1);
  });
}

template <typename T>
void trsm(Side side, Uplo uplo, Op op, Diag diag, T alpha, ConstMatrixView<T> a,
          MatrixView<T> b) {
  const idx m = b.rows();
  const idx n = b.cols();
  const bool unit = diag == Diag::Unit;
  if (m == 0 || n == 0) return;

  if (alpha != T(1)) {
    for (idx j = 0; j < n; ++j) scal(m, alpha, b.col(j), 1);
  }

  if (side == Side::Left) {
    auto solve_cols = [&](idx j0, idx j1) {
      for (idx j = j0; j < j1; ++j) trsv(uplo, op, diag, a, b.col(j));
    };
    // Columns are independent for Side::Left; parallelize when worthwhile.
    const double flops = static_cast<double>(m) * m * n;
    if (flops > 1e6) {
      auto& pool = ThreadPool::shared();
      const idx chunk = std::max<idx>(1, n / static_cast<idx>(pool.size() * 4));
      const auto nchunks = static_cast<std::size_t>((n + chunk - 1) / chunk);
      pool.parallel_for(nchunks, [&](std::size_t ci) {
        const idx j0 = static_cast<idx>(ci) * chunk;
        solve_cols(j0, std::min(j0 + chunk, n));
      });
    } else {
      solve_cols(0, n);
    }
    return;
  }

  // Side::Right: X * op(A) = B, A is n x n. Column-oriented reference loops.
  if (op == Op::NoTrans) {
    if (uplo == Uplo::Upper) {
      // Forward over columns: X(:,j) = (B(:,j) - sum_{k<j} X(:,k) A(k,j)) / A(j,j)
      for (idx j = 0; j < n; ++j) {
        T* bj = b.col(j);
        for (idx k = 0; k < j; ++k) {
          const T akj = a(k, j);
          if (akj != T(0)) axpy(m, -akj, b.col(k), 1, bj, 1);
        }
        if (!unit) scal(m, T(1) / a(j, j), bj, 1);
      }
    } else {
      for (idx j = n - 1; j >= 0; --j) {
        T* bj = b.col(j);
        for (idx k = j + 1; k < n; ++k) {
          const T akj = a(k, j);
          if (akj != T(0)) axpy(m, -akj, b.col(k), 1, bj, 1);
        }
        if (!unit) scal(m, T(1) / a(j, j), bj, 1);
      }
    }
  } else {
    // X * A^T = B.
    if (uplo == Uplo::Upper) {
      for (idx j = n - 1; j >= 0; --j) {
        T* bj = b.col(j);
        if (!unit) scal(m, T(1) / a(j, j), bj, 1);
        for (idx k = 0; k < j; ++k) {
          const T ajk = a(k, j);
          if (ajk != T(0)) axpy(m, -ajk, bj, 1, b.col(k), 1);
        }
      }
    } else {
      for (idx j = 0; j < n; ++j) {
        T* bj = b.col(j);
        if (!unit) scal(m, T(1) / a(j, j), bj, 1);
        for (idx k = j + 1; k < n; ++k) {
          const T ajk = a(k, j);
          if (ajk != T(0)) axpy(m, -ajk, bj, 1, b.col(k), 1);
        }
      }
    }
  }
}

template <typename T>
void syrk(Uplo uplo, Op op, T alpha, ConstMatrixView<T> a, T beta,
          MatrixView<T> c) {
  const idx n = c.rows();
  const idx kdim = op == Op::NoTrans ? a.cols() : a.rows();
  if (n == 0) return;
  // Compute the full product into arena scratch via gemm (fast path), then
  // fold the requested triangle into C. The extra flops on the dead triangle
  // are cheaper than a strided dot-product loop at the sizes we use; gemm's
  // beta == 0 path overwrites every element, so the scratch needs no
  // initialization (this is where Matrix's zero-fill used to cost a full
  // n*n memset per blocked-potrf panel).
  ArenaScope scope(Arena::scratch());
  T* buf =
      scope.alloc<T>(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  MatrixView<T> scratch(buf, n, n, n);
  if (op == Op::NoTrans) {
    gemm(Op::NoTrans, Op::Trans, alpha, a, a, T(0), scratch);
  } else {
    gemm(Op::Trans, Op::NoTrans, alpha, a, a, T(0), scratch);
  }
  (void)kdim;
  if (uplo == Uplo::Lower) {
    for (idx j = 0; j < n; ++j) {
      T* BSR_RESTRICT cj = c.col(j) + j;
      const T* BSR_RESTRICT sj = scratch.col(j) + j;
      for (idx i = 0; i < n - j; ++i) cj[i] = beta * cj[i] + sj[i];
    }
  } else {
    for (idx j = 0; j < n; ++j) {
      T* BSR_RESTRICT cj = c.col(j);
      const T* BSR_RESTRICT sj = scratch.col(j);
      for (idx i = 0; i <= j; ++i) cj[i] = beta * cj[i] + sj[i];
    }
  }
}

#define BSR_LA_INSTANTIATE(T)                                                     \
  template void gemm<T>(Op, Op, T, ConstMatrixView<T>, ConstMatrixView<T>, T,     \
                        MatrixView<T>);                                           \
  template void trsm<T>(Side, Uplo, Op, Diag, T, ConstMatrixView<T>,              \
                        MatrixView<T>);                                           \
  template void syrk<T>(Uplo, Op, T, ConstMatrixView<T>, T, MatrixView<T>);

BSR_LA_INSTANTIATE(float)
BSR_LA_INSTANTIATE(double)
#undef BSR_LA_INSTANTIATE

}  // namespace bsr::la
