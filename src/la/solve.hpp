// Solvers on top of the factorizations: what a downstream application calls
// after potrf / getrf / geqrf to actually use the factors.
#pragma once

#include <vector>

#include "la/blas.hpp"
#include "la/matrix.hpp"

namespace bsr::la {

/// Solves A X = B from a potrf-factored lower Cholesky factor, in place on b.
template <typename T>
void potrs(ConstMatrixView<T> l, MatrixView<T> b);

/// Solves A X = B from a getrf-factored packed LU and its pivots, in place.
template <typename T>
void getrs(ConstMatrixView<T> lu, const std::vector<idx>& ipiv, MatrixView<T> b);

/// Applies Q^T (from a geqrf factorization) to b in place: b := Q^T b.
template <typename T>
void apply_qt(ConstMatrixView<T> qr, const std::vector<T>& tau, MatrixView<T> b);

/// Least-squares solve min ||A x - b|| from a geqrf factorization of the
/// m x n (m >= n) matrix: b(0:n, :) receives x on exit.
template <typename T>
void geqrs(ConstMatrixView<T> qr, const std::vector<T>& tau, MatrixView<T> b);

#define BSR_LA_DECLARE_SOLVE(T)                                                 \
  extern template void potrs<T>(ConstMatrixView<T>, MatrixView<T>);             \
  extern template void getrs<T>(ConstMatrixView<T>, const std::vector<idx>&,    \
                                MatrixView<T>);                                 \
  extern template void apply_qt<T>(ConstMatrixView<T>, const std::vector<T>&,   \
                                   MatrixView<T>);                              \
  extern template void geqrs<T>(ConstMatrixView<T>, const std::vector<T>&,      \
                                MatrixView<T>);

BSR_LA_DECLARE_SOLVE(float)
BSR_LA_DECLARE_SOLVE(double)
#undef BSR_LA_DECLARE_SOLVE

}  // namespace bsr::la
