// Residual-based verification of factorization results.
//
// Used by tests and by the numeric-mode decomposition driver to decide whether
// a fault-injected run produced a numerically correct factorization.
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace bsr::la {

template <typename T>
double norm_fro(ConstMatrixView<T> a);

template <typename T>
double norm_max(ConstMatrixView<T> a);

/// ||A - L L^T||_F / ||A||_F where `factored` holds L in its lower triangle.
template <typename T>
double cholesky_residual(ConstMatrixView<T> original, ConstMatrixView<T> factored);

/// ||P A - L U||_F / ||A||_F from the packed getrf output and pivots.
template <typename T>
double lu_residual(ConstMatrixView<T> original, ConstMatrixView<T> factored,
                   const std::vector<idx>& ipiv);

/// ||A - Q R||_F / ||A||_F from the packed geqrf output and tau.
template <typename T>
double qr_residual(ConstMatrixView<T> original, ConstMatrixView<T> factored,
                   const std::vector<T>& tau);

/// ||Q^T Q - I||_F for an explicitly formed Q.
template <typename T>
double orthogonality_error(ConstMatrixView<T> q);

#define BSR_LA_DECLARE_VERIFY(T)                                                  \
  extern template double norm_fro<T>(ConstMatrixView<T>);                         \
  extern template double norm_max<T>(ConstMatrixView<T>);                         \
  extern template double cholesky_residual<T>(ConstMatrixView<T>,                 \
                                              ConstMatrixView<T>);                \
  extern template double lu_residual<T>(ConstMatrixView<T>, ConstMatrixView<T>,   \
                                        const std::vector<idx>&);                 \
  extern template double qr_residual<T>(ConstMatrixView<T>, ConstMatrixView<T>,   \
                                        const std::vector<T>&);                   \
  extern template double orthogonality_error<T>(ConstMatrixView<T>);

BSR_LA_DECLARE_VERIFY(float)
BSR_LA_DECLARE_VERIFY(double)
#undef BSR_LA_DECLARE_VERIFY

}  // namespace bsr::la
