#include <algorithm>

#include "common/arena.hpp"
#include "la/lapack.hpp"

namespace bsr::la {

template <typename T>
idx potrf(MatrixView<T> a, idx nb) {
  const idx n = a.rows();
  if (nb <= 0) nb = 64;
  for (idx k = 0; k < n; k += nb) {
    const idx b = std::min(nb, n - k);
    auto akk = a.block(k, k, b, b);
    const idx info = potf2(akk);
    if (info != 0) return k + info;
    const idx rest = n - k - b;
    if (rest > 0) {
      // L21 = A21 * L11^{-T}
      trsm(Side::Right, Uplo::Lower, Op::Trans, Diag::NonUnit, T(1),
           akk.as_const(), a.block(k + b, k, rest, b));
      // A22 -= L21 * L21^T
      syrk(Uplo::Lower, Op::NoTrans, T(-1), a.block(k + b, k, rest, b).as_const(), T(1),
           a.block(k + b, k + b, rest, rest));
    }
  }
  return 0;
}

template <typename T>
idx getrf(MatrixView<T> a, idx nb, std::vector<idx>& ipiv) {
  const idx m = a.rows();
  const idx n = a.cols();
  const idx k = std::min(m, n);
  if (nb <= 0) nb = 64;
  ipiv.assign(k, 0);
  idx info = 0;
  for (idx j = 0; j < k; j += nb) {
    const idx b = std::min(nb, k - j);
    // Factor the panel A(j:m, j:j+b).
    std::vector<idx> piv;
    const idx pinfo = getf2(a.block(j, j, m - j, b), piv);
    if (pinfo != 0 && info == 0) info = j + pinfo;
    for (idx i = 0; i < b; ++i) ipiv[j + i] = piv[i] + j;
    // Apply the panel's interchanges to the columns left and right of it.
    if (j > 0) laswp(a.block(0, 0, m, j), ipiv, j, j + b);
    if (j + b < n) {
      laswp(a.block(0, j + b, m, n - j - b), ipiv, j, j + b);
      // U12 = L11^{-1} A12
      trsm(Side::Left, Uplo::Lower, Op::NoTrans, Diag::Unit, T(1),
           a.block(j, j, b, b).as_const(), a.block(j, j + b, b, n - j - b));
      // A22 -= L21 * U12
      if (j + b < m) {
        gemm(Op::NoTrans, Op::NoTrans, T(-1),
             a.block(j + b, j, m - j - b, b).as_const(),
             a.block(j, j + b, b, n - j - b).as_const(), T(1),
             a.block(j + b, j + b, m - j - b, n - j - b));
      }
    }
  }
  return info;
}

template <typename T>
void larfb_left_trans(ConstMatrixView<T> v, ConstMatrixView<T> t, MatrixView<T> c) {
  // c := (I - V T V^T)^T c = c - V T^T V^T c, V m x k unit lower trapezoidal.
  const idx m = c.rows();
  const idx n = c.cols();
  const idx k = v.cols();
  if (m == 0 || n == 0 || k == 0) return;

  // Panel scratch lives in the thread-local arena: every element of vexp is
  // written below, and w/tw are fully overwritten by their beta == 0 gemms,
  // so none of it needs the zero-fill a Matrix would pay per panel.
  ArenaScope scope(Arena::scratch());
  T* vbuf = scope.alloc<T>(static_cast<std::size_t>(m) *
                           static_cast<std::size_t>(k));
  MatrixView<T> vexp(vbuf, m, k, m);
  // W = V^T C (k x n) with the unit-lower-trapezoidal structure made explicit.
  for (idx j = 0; j < k; ++j) {
    for (idx i = 0; i < m; ++i) {
      if (i < j) {
        vexp(i, j) = T(0);
      } else if (i == j) {
        vexp(i, j) = T(1);
      } else {
        vexp(i, j) = v(i, j);
      }
    }
  }
  T* wbuf = scope.alloc<T>(static_cast<std::size_t>(k) *
                           static_cast<std::size_t>(n));
  MatrixView<T> w(wbuf, k, n, k);
  gemm(Op::Trans, Op::NoTrans, T(1), vexp.as_const(), c.as_const(), T(0), w);
  // W := T^T W
  T* twbuf = scope.alloc<T>(static_cast<std::size_t>(k) *
                            static_cast<std::size_t>(n));
  MatrixView<T> tw(twbuf, k, n, k);
  gemm(Op::Trans, Op::NoTrans, T(1), t, w.as_const(), T(0), tw);
  // C -= V * W
  gemm(Op::NoTrans, Op::NoTrans, T(-1), vexp.as_const(), tw.as_const(), T(1),
       c);
}

template <typename T>
idx geqrf(MatrixView<T> a, idx nb, std::vector<T>& tau) {
  const idx m = a.rows();
  const idx n = a.cols();
  const idx k = std::min(m, n);
  if (nb <= 0) nb = 64;
  tau.assign(k, T(0));
  Matrix<T> t(nb, nb);
  for (idx j = 0; j < k; j += nb) {
    const idx b = std::min(nb, k - j);
    std::vector<T> panel_tau;
    geqr2(a.block(j, j, m - j, b), panel_tau);
    std::copy(panel_tau.begin(), panel_tau.end(), tau.begin() + j);
    if (j + b < n) {
      auto vpanel = ConstMatrixView<T>(a.block(j, j, m - j, b));
      auto tview = t.block(0, 0, b, b);
      larft(vpanel, panel_tau.data(), tview);
      larfb_left_trans(vpanel, ConstMatrixView<T>(tview),
                       a.block(j, j + b, m - j, n - j - b));
    }
  }
  return 0;
}

template <typename T>
Matrix<T> form_q(ConstMatrixView<T> qr, const std::vector<T>& tau) {
  const idx m = qr.rows();
  const idx k = static_cast<idx>(tau.size());
  Matrix<T> q(m, m);
  fill_identity(q.view());
  // Q = H_0 H_1 ... H_{k-1}; apply in reverse to the identity from the left.
  std::vector<T> v(m);
  std::vector<T> work(m);
  for (idx j = k - 1; j >= 0; --j) {
    v[0] = T(1);
    for (idx i = 1; i < m - j; ++i) v[i] = qr(j + i, j);
    larf_left(v.data(), tau[j], q.block(j, 0, m - j, m), work.data());
  }
  return q;
}

#define BSR_LA_INSTANTIATE(T)                                                  \
  template idx potrf<T>(MatrixView<T>, idx);                                   \
  template idx getrf<T>(MatrixView<T>, idx, std::vector<idx>&);                \
  template void larfb_left_trans<T>(ConstMatrixView<T>, ConstMatrixView<T>,    \
                                    MatrixView<T>);                            \
  template idx geqrf<T>(MatrixView<T>, idx, std::vector<T>&);                  \
  template Matrix<T> form_q<T>(ConstMatrixView<T>, const std::vector<T>&);

BSR_LA_INSTANTIATE(float)
BSR_LA_INSTANTIATE(double)
#undef BSR_LA_INSTANTIATE

}  // namespace bsr::la
