#include <cmath>

#include "la/blas.hpp"

namespace bsr::la {

template <typename T>
void axpy(idx n, T alpha, const T* x, idx incx, T* y, idx incy) {
  if (incx == 1 && incy == 1) {
    // Unit-stride fast path: `__restrict` (x and y disjoint per the BLAS
    // aliasing contract) lets the compiler vectorize without runtime
    // overlap checks. Same multiply-add per element as the strided loop.
    const T* BSR_RESTRICT xr = x;
    T* BSR_RESTRICT yr = y;
    for (idx i = 0; i < n; ++i) yr[i] += alpha * xr[i];
    return;
  }
  for (idx i = 0; i < n; ++i) y[i * incy] += alpha * x[i * incx];
}

template <typename T>
void scal(idx n, T alpha, T* x, idx incx) {
  if (incx == 1) {
    T* BSR_RESTRICT xr = x;
    for (idx i = 0; i < n; ++i) xr[i] *= alpha;
    return;
  }
  for (idx i = 0; i < n; ++i) x[i * incx] *= alpha;
}

template <typename T>
T dot(idx n, const T* x, idx incx, const T* y, idx incy) {
  T s = 0;
  for (idx i = 0; i < n; ++i) s += x[i * incx] * y[i * incy];
  return s;
}

template <typename T>
T nrm2(idx n, const T* x, idx incx) {
  // Scaled accumulation for overflow safety (netlib-style).
  T scale = 0;
  T ssq = 1;
  for (idx i = 0; i < n; ++i) {
    const T v = std::abs(x[i * incx]);
    if (v == T(0)) continue;
    if (scale < v) {
      ssq = T(1) + ssq * (scale / v) * (scale / v);
      scale = v;
    } else {
      ssq += (v / scale) * (v / scale);
    }
  }
  return scale * std::sqrt(ssq);
}

template <typename T>
idx iamax(idx n, const T* x, idx incx) {
  if (n <= 0) return -1;
  idx best = 0;
  T best_abs = std::abs(x[0]);
  for (idx i = 1; i < n; ++i) {
    const T v = std::abs(x[i * incx]);
    if (v > best_abs) {
      best_abs = v;
      best = i;
    }
  }
  return best;
}

template <typename T>
void swap(idx n, T* x, idx incx, T* y, idx incy) {
  for (idx i = 0; i < n; ++i) std::swap(x[i * incx], y[i * incy]);
}

#define BSR_LA_INSTANTIATE(T)                                  \
  template void axpy<T>(idx, T, const T*, idx, T*, idx);       \
  template void scal<T>(idx, T, T*, idx);                      \
  template T dot<T>(idx, const T*, idx, const T*, idx);        \
  template T nrm2<T>(idx, const T*, idx);                      \
  template idx iamax<T>(idx, const T*, idx);                   \
  template void swap<T>(idx, T*, idx, T*, idx);

BSR_LA_INSTANTIATE(float)
BSR_LA_INSTANTIATE(double)
#undef BSR_LA_INSTANTIATE

}  // namespace bsr::la
