#include "la/blas.hpp"

namespace bsr::la {

template <typename T>
void gemv(Op op, T alpha, ConstMatrixView<T> a, const T* x, T beta, T* y) {
  const idx m = a.rows();
  const idx n = a.cols();
  if (op == Op::NoTrans) {
    for (idx i = 0; i < m; ++i) y[i] *= beta;
    for (idx j = 0; j < n; ++j) {
      const T xj = alpha * x[j];
      const T* BSR_RESTRICT col = a.col(j);
      T* BSR_RESTRICT yr = y;
      for (idx i = 0; i < m; ++i) yr[i] += xj * col[i];
    }
  } else {
    for (idx j = 0; j < n; ++j) {
      const T* col = a.col(j);
      T s = 0;
      for (idx i = 0; i < m; ++i) s += col[i] * x[i];
      y[j] = beta * y[j] + alpha * s;
    }
  }
}

template <typename T>
void ger(T alpha, const T* x, idx incx, const T* y, idx incy, MatrixView<T> a) {
  const idx m = a.rows();
  const idx n = a.cols();
  if (incx == 1) {
    // Unit-stride x (the getf2 panel case): `__restrict` holds because A is
    // disjoint from x and y per the ger contract.
    for (idx j = 0; j < n; ++j) {
      const T yj = alpha * y[j * incy];
      T* BSR_RESTRICT col = a.col(j);
      const T* BSR_RESTRICT xr = x;
      for (idx i = 0; i < m; ++i) col[i] += xr[i] * yj;
    }
    return;
  }
  for (idx j = 0; j < n; ++j) {
    const T yj = alpha * y[j * incy];
    T* col = a.col(j);
    for (idx i = 0; i < m; ++i) col[i] += x[i * incx] * yj;
  }
}

template <typename T>
void trsv(Uplo uplo, Op op, Diag diag, ConstMatrixView<T> a, T* x) {
  const idx n = a.rows();
  const bool unit = diag == Diag::Unit;
  if (op == Op::NoTrans) {
    if (uplo == Uplo::Lower) {
      for (idx i = 0; i < n; ++i) {
        T s = x[i];
        for (idx k = 0; k < i; ++k) s -= a(i, k) * x[k];
        x[i] = unit ? s : s / a(i, i);
      }
    } else {
      for (idx i = n - 1; i >= 0; --i) {
        T s = x[i];
        for (idx k = i + 1; k < n; ++k) s -= a(i, k) * x[k];
        x[i] = unit ? s : s / a(i, i);
      }
    }
  } else {
    // Solve A^T x = b.
    if (uplo == Uplo::Lower) {
      for (idx i = n - 1; i >= 0; --i) {
        T s = x[i];
        for (idx k = i + 1; k < n; ++k) s -= a(k, i) * x[k];
        x[i] = unit ? s : s / a(i, i);
      }
    } else {
      for (idx i = 0; i < n; ++i) {
        T s = x[i];
        for (idx k = 0; k < i; ++k) s -= a(k, i) * x[k];
        x[i] = unit ? s : s / a(i, i);
      }
    }
  }
}

#define BSR_LA_INSTANTIATE(T)                                          \
  template void gemv<T>(Op, T, ConstMatrixView<T>, const T*, T, T*);   \
  template void ger<T>(T, const T*, idx, const T*, idx, MatrixView<T>); \
  template void trsv<T>(Uplo, Op, Diag, ConstMatrixView<T>, T*);

BSR_LA_INSTANTIATE(float)
BSR_LA_INSTANTIATE(double)
#undef BSR_LA_INSTANTIATE

}  // namespace bsr::la
