#include "cluster/engine.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "abft/adaptive.hpp"
#include "cluster/distribution.hpp"
#include "cluster/event_engine.hpp"
#include "common/rng.hpp"
#include "predict/slack_predictor.hpp"

namespace bsr::cluster {

namespace {

using predict::OpKind;

/// What the strategy decided for one lane of one iteration. The checksum
/// mode is NOT part of the plan: protection must match the clock that
/// actually runs, and a lane's transition can be skipped (projection guard)
/// or clamped after the plan is made, so ABFT-OC is re-consulted at update
/// start against the live frequency. `core_t` carries the predicted
/// base-clock compute seconds that consultation needs.
struct LaneDecision {
  hw::Mhz freq = 0;  ///< 0 = keep current
  bool adjust = false;
  hw::Guardband gb = hw::Guardband::Default;
  bool halt_idle = false;
  double core_t = 0.0;  ///< predicted base-clock compute time (seconds)
};

/// POD event payload for the cluster graph: which transition fires, for which
/// iteration, on which device. A few words of trivially-copyable state in the
/// engine's flat preallocated heap — scheduling allocates nothing and firing
/// is a switch, where a std::function payload would pay type erasure per
/// event. Event *order* is untouched: the same schedule sites run in the same
/// sequence, so (time, seq) tie-breaks — and therefore results — are bitwise
/// identical to the closure-based engine.
struct ClusterEvent {
  enum class Kind : std::uint8_t { FinishPd, StartUpdate, FinishUpdate, StartPd };
  Kind kind = Kind::FinishPd;
  int k = 0;
  int d = 0;
};

/// One compute resource: lane 0 is the host, lanes 1..N the accelerators.
struct Lane {
  int index = 0;  ///< 0 = host, 1 + d = accelerator d (trace lane id)
  const hw::DeviceModel* dev = nullptr;
  hw::DvfsController dvfs;
  hw::Guardband gb = hw::Guardband::Default;
  bool halt_idle = false;
  SimTime busy_until;
  DeviceUsage use;
  std::vector<double> noise;  ///< per-iteration multiplicative factors
  std::unique_ptr<predict::EnhancedPredictor> enhanced;
  std::unique_ptr<predict::FirstIterationPredictor> first;
  // A retirement park (drop to the floor clock) in flight: the transition
  // window is settled against the makespan at the final barrier, because the
  // run may end mid-transition.
  bool parked = false;
  double park_power_w = 0.0;  ///< idle power at the pre-park clock
  SimTime park_start;
  SimTime park_lat;
  var::LaneVariability var;  ///< inert unless options.variability.enabled
  faultcamp::FaultProcess faults;  ///< inert unless options.faults.enabled
};

class ClusterRun {
 public:
  ClusterRun(const ClusterProfile& profile,
             const predict::WorkloadModel& workload,
             const ClusterOptions& options)
      : profile_(profile),
        wl_(workload),
        opt_(options),
        dist_{std::max(1, profile.num_devices()), options.grid_p,
              options.grid_q},
        iters_(workload.num_iterations()),
        blocks_total_((workload.n / workload.b) * (workload.n / workload.b)),
        // Panel-priority look-ahead (hierarchical relay only): the next
        // panel's owner updates that one column first and ships it home
        // mid-update, overlapping the host's factorization with the rest of
        // its trailing update. Fault campaigns disable it — a panel may only
        // leave the device after the whole update's checksum verification,
        // or a rollback would retract data already in flight.
        early_ship_(profile.links.hierarchical() && !options.faults.enabled &&
                    options.schedule == BroadcastSchedule::Relay),
        // Accelerator-resident panel pipeline (hierarchical ring/tree): from
        // iteration 1 on, panel k is factored on its owner device the moment
        // panel k-1 arrives there, and broadcast device-to-device from that
        // owner. The serial host panel — the 8-GPU scaling wall — leaves the
        // critical path entirely; the relay schedule keeps the legacy
        // host-staged pipeline as the comparison baseline.
        device_pd_(profile.links.hierarchical() &&
                   options.schedule != BroadcastSchedule::Relay) {
    lanes_.resize(1 + static_cast<std::size_t>(profile_.num_devices()));
    init_lane(lanes_[0], profile_.host, /*lane=*/0);
    for (int d = 0; d < profile_.num_devices(); ++d) {
      init_lane(lanes_[1 + static_cast<std::size_t>(d)],
                profile_.devices[static_cast<std::size_t>(d)], 1 + d);
    }
    link_free_.assign(lanes_.size(), SimTime::zero());
    node_bus_free_.assign(
        static_cast<std::size_t>(profile_.links.num_nodes()), SimTime::zero());
    send_free_.assign(static_cast<std::size_t>(profile_.num_devices()),
                      SimTime::zero());
    // Flat per-(iteration, lane) plan storage and reusable decide() scratch:
    // one allocation each for the whole run instead of per-iteration churn.
    plans_.resize(static_cast<std::size_t>(iters_) * lanes_.size());
    core_.resize(lanes_.size());
    over_.resize(lanes_.size());
    lane_t_.resize(lanes_.size());
    arrival_.resize(static_cast<std::size_t>(profile_.num_devices()));
    upd_scheduled_.assign(
        static_cast<std::size_t>(iters_) * lanes_.size(), false);
    if (opt_.rebalance) {
      eff_share_.assign(static_cast<std::size_t>(iters_) *
                            static_cast<std::size_t>(profile_.num_devices()),
                        0.0);
      weights_.resize(static_cast<std::size_t>(profile_.num_devices()));
    }
    recips_.reserve(static_cast<std::size_t>(profile_.num_devices()));
    leaders_.reserve(static_cast<std::size_t>(profile_.links.num_nodes()));
    group_.reserve(static_cast<std::size_t>(profile_.num_devices()));
    // Worst simultaneous backlog: one update per device plus the finish/pd
    // chain; reserved up front so scheduling never reallocates mid-run.
    engine_.reserve(2 * lanes_.size() + 8);
    trace_ = opt_.trace;
    if (trace_ != nullptr) {
      // ~4 spans per (iteration, lane) covers update + transfer + dvfs +
      // recovery; one reservation keeps recording allocation-free.
      trace_->reserve(trace_->size() +
                      4 * static_cast<std::size_t>(iters_) * lanes_.size());
    }
  }

  ClusterReport run() {
    // Devices owning no trailing columns at all (more devices than block
    // columns) never receive work: the reclaiming strategies park them
    // immediately, and under R2H the hardware governor halts them — neither
    // should idle at base-clock power for the whole run.
    for (int d = 0; d < profile_.num_devices(); ++d) {
      if (dist_.has_work(wl_, 0, d)) continue;
      Lane& lane = lanes_[static_cast<std::size_t>(1 + d)];
      if (opt_.strategy == ClusterStrategy::R2H) {
        lane.halt_idle = true;
      } else {
        park_lane(lane);  // no-op under Original (clocks stay pinned)
      }
    }
    // Panel 0 is resident on the host (the matrix is generated there and
    // distributed as the factorization proceeds), so PD(0) is ready at t=0.
    start_pd(0, SimTime::zero());
    const SimTime makespan =
        engine_.run([this](const ClusterEvent& ev) { dispatch(ev); });

    ClusterReport report;
    report.makespan = makespan;
    for (Lane& lane : lanes_) {
      // Settle an in-flight retirement park: its transition window burns
      // pre-park idle power and is clipped to the makespan (the run may end
      // while the clock is still stepping down).
      if (lane.parked) {
        const SimTime end = min(lane.park_start + lane.park_lat, makespan);
        if (end > lane.busy_until) {
          const double gap = (end - lane.busy_until).seconds();
          lane.use.energy_j += lane.park_power_w * gap;
          lane.use.dvfs_s += gap;
          lane.busy_until = end;
        }
      }
      // Final barrier: every lane idles (or stays halted) until the run ends.
      charge_idle(lane, makespan);
      lane.use.final_mhz = lane.dvfs.current();
      lane.use.dvfs_transitions = lane.dvfs.transitions();
    }
    report.host = lanes_[0].use;
    for (std::size_t d = 1; d < lanes_.size(); ++d) {
      report.devices.push_back(lanes_[d].use);
    }
    return report;
  }

 private:
  // -- lane helpers -----------------------------------------------------------

  void init_lane(Lane& lane, const hw::DeviceModel& dev, int index) {
    lane.index = index;
    lane.dev = &dev;
    lane.dvfs = dev.make_dvfs();
    lane.use.name = dev.name;
    lane.enhanced = std::make_unique<predict::EnhancedPredictor>(wl_);
    lane.first = std::make_unique<predict::FirstIterationPredictor>(wl_);
    lane.noise.assign(static_cast<std::size_t>(iters_), 1.0);
    if (opt_.noise.enabled && iters_ > 1) {
      const double drift = index == 0 ? opt_.noise.cpu_drift
                                      : opt_.noise.gpu_drift;
      Rng rng(opt_.seed +
              0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(index + 1));
      for (int k = 0; k < iters_; ++k) {
        const double progress =
            static_cast<double>(k) / static_cast<double>(iters_ - 1);
        lane.noise[static_cast<std::size_t>(k)] =
            (1.0 + drift * progress * progress) *
            std::exp(rng.normal(0.0, opt_.noise.sigma));
      }
    }
    if (opt_.variability.enabled) {
      lane.var = var::LaneVariability(opt_.variability, opt_.seed, index,
                                      iters_, dev.freq.base_mhz);
    }
    if (opt_.faults.enabled) {
      // Same per-lane stream derivation as the variability models: lanes
      // sample from decorrelated streams keyed by (seed, lane), never from
      // event interleaving across lanes, so runs stay bitwise reproducible.
      lane.faults = faultcamp::FaultProcess(opt_.faults, opt_.seed, index);
    }
  }

  /// Realizes a plan's clock through the lane's variability models
  /// (quantization + thermal admission) and rewrites the decision so
  /// run_compute transitions to exactly the granted clock. Returns the clock
  /// the lane's work will run at (the pre-variability behavior when the
  /// block is disabled).
  [[nodiscard]] hw::Mhz realize_clock(Lane& lane, LaneDecision& d) const {
    const hw::Mhz f_before = lane.dvfs.current();
    hw::Mhz f = d.adjust && d.freq > 0 ? d.freq : f_before;
    f = lane.dev->freq.clamp(f, d.gb == hw::Guardband::Optimized);
    if (opt_.variability.enabled) {
      f = lane.var.admit_clock(f, lane.dev->freq,
                               d.gb == hw::Guardband::Optimized);
      d.freq = f;
      d.adjust = f != f_before;
    }
    return f;
  }

  [[nodiscard]] double idle_power(const Lane& lane) const {
    const hw::Mhz f = lane.dvfs.current();
    return lane.halt_idle ? sched::halted_idle_power(*lane.dev, f)
                          : lane.dev->idle_power(f);
  }

  /// Integrates idle energy from the lane's last busy instant to `until`.
  void charge_idle(Lane& lane, SimTime until) {
    if (until <= lane.busy_until) return;
    const double gap = (until - lane.busy_until).seconds();
    lane.use.energy_j += idle_power(lane) * gap;
    lane.use.idle_s += gap;
    lane.busy_until = until;
  }

  /// Applies a decision and runs `busy` seconds of compute on the lane,
  /// starting no earlier than `ready`; returns the completion time.
  SimTime run_compute(Lane& lane, SimTime ready, const LaneDecision& d,
                      SimTime busy, double flops) {
    const SimTime start = max(ready, lane.busy_until);
    const double idle_gap = (start - lane.busy_until).seconds();
    charge_idle(lane, start);
    lane.halt_idle = d.halt_idle;
    lane.gb = d.gb;
    lane.dvfs.set_guardband(d.gb);
    const hw::Mhz f_before = lane.dvfs.current();
    SimTime lat;
    if (d.adjust && d.freq > 0) {
      lat = lane.dvfs.set_frequency(d.freq);
      if (opt_.variability.enabled) lat = lane.var.dvfs_latency(lat);
      if (lat > SimTime::zero()) {
        lane.use.energy_j += idle_power(lane) * lat.seconds();
        lane.use.dvfs_s += lat.seconds();
      }
    }
    if (trace_ != nullptr && lat > SimTime::zero()) {
      obs::TraceSpan tv;
      tv.kind = obs::SpanKind::Dvfs;
      tv.start_ns = start.ns();
      tv.dur_ns = lat.ns();
      tv.lane = lane.index;
      tv.from_mhz = static_cast<std::int32_t>(f_before);
      tv.freq_mhz = static_cast<std::int32_t>(lane.dvfs.current());
      trace_->record(tv);
    }
    last_dvfs_lat_ = lat;
    const double p = lane.dev->busy_power(lane.dvfs.current(), lane.gb);
    lane.use.energy_j += p * busy.seconds();
    lane.use.busy_s += busy.seconds();
    lane.use.flops += flops;
    lane.busy_until = start + lat + busy;
    if (opt_.variability.enabled) {
      // Thermal accounting: the busy window at the granted clock drains the
      // boost budget; the preceding idle gap and the transition recover it.
      lane.var.account(lane.dvfs.current(), busy.seconds(),
                       idle_gap + lat.seconds());
    }
    return lane.busy_until;
  }

  /// Occupies link `device` and the shared host bus; returns completion.
  /// The link is held for the whole transfer; the bus only for its *service
  /// time* (the transfer's share of the aggregate bus bandwidth), so a
  /// 2x-link bus genuinely carries two concurrent link-speed streams before
  /// later transfers start queueing. On a hierarchical topology a transfer
  /// to a remote node additionally occupies the inter-node network and the
  /// target node's bus, each for its own service time under the same rule;
  /// on a flat topology those segments do not exist and the arithmetic is
  /// bit-for-bit the pre-hierarchical one.
  SimTime run_transfer(int device, SimTime ready, double bytes, int k) {
    const LinkTopology& links = profile_.links;
    SimTime dur_link =
        links.host_links[static_cast<std::size_t>(device)].time_for_bytes(
            bytes);
    SimTime dur_bus = links.host_bus.time_for_bytes(bytes);
    const int node = links.node(device);
    SimTime dur_inter;
    SimTime dur_node_bus;
    if (node != 0) {
      dur_inter = links.internode.time_for_bytes(bytes);
      dur_node_bus = links.node_bus.time_for_bytes(bytes);
    }
    if (opt_.variability.enabled) {
      // One jitter draw per realized transfer, from the device lane's
      // stream, scaling the link and every shared-segment service time.
      const double j =
          lanes_[static_cast<std::size_t>(1 + device)].var.transfer_factor();
      dur_link = dur_link * j;
      dur_bus = dur_bus * j;
      dur_inter = dur_inter * j;
      dur_node_bus = dur_node_bus * j;
    }
    SimTime start =
        max(max(ready, link_free_[static_cast<std::size_t>(1 + device)]),
            bus_free_);
    if (node != 0) {
      start = max(start, internode_free_);
      start = max(start, node_bus_free_[static_cast<std::size_t>(node)]);
    }
    const SimTime done =
        start + max(max(dur_link, dur_bus), max(dur_inter, dur_node_bus));
    link_free_[static_cast<std::size_t>(1 + device)] = done;
    bus_free_ = start + dur_bus;
    if (node != 0) {
      internode_free_ = start + dur_inter;
      node_bus_free_[static_cast<std::size_t>(node)] = start + dur_node_bus;
    }
    record_transfer(1 + device, k, start, done);
    return done;
  }

  /// Emits one Transfer span on the target lane's link track (no-op when
  /// tracing is off).
  void record_transfer(int lane, int k, SimTime start, SimTime done) {
    if (trace_ == nullptr) return;
    obs::TraceSpan s;
    s.kind = obs::SpanKind::Transfer;
    s.start_ns = start.ns();
    s.dur_ns = (done - start).ns();
    s.k = k;
    s.lane = lane;
    trace_->record(s);
  }

  // -- workload shares --------------------------------------------------------

  [[nodiscard]] double one_way_bytes(int k) const {
    // The full factored panel region the trailing update consumes: m x b
    // elements (L / Householder vectors). For LU and QR this equals the
    // single-node transfer_bytes / 2; for Cholesky the single-node pipeline
    // only ships the b x b diagonal block (the GPU computes L21 in place),
    // but a *distributed* update needs the whole L21 panel at every device,
    // so the broadcast is modeled on the panel area for all three.
    const double m = static_cast<double>(wl_.remaining(k));
    const double b = static_cast<double>(
        std::min<std::int64_t>(wl_.b, wl_.remaining(k)));
    return m * b * static_cast<double>(wl_.elem_bytes);
  }

  /// Device d's effective share of iteration k's trailing-update work: the
  /// structural block-cyclic fraction, or the rebalanced one decide() stored
  /// for this iteration when straggler rebalancing is on. decide(k) always
  /// runs before any share consumer of iteration k (it fires when PD(k)
  /// starts), so the rebalanced row is never read unfilled.
  [[nodiscard]] double share_for(int k, int d) const {
    if (!opt_.rebalance) return dist_.share(wl_, k, d);
    return eff_share_[static_cast<std::size_t>(k) *
                          static_cast<std::size_t>(profile_.num_devices()) +
                      static_cast<std::size_t>(d)];
  }

  /// Noise-free compute duration of device d's local share of iteration k at
  /// clock f, split into the useful update and the checksum overhead.
  struct DeviceWork {
    SimTime update;
    SimTime abft;
    double flops = 0.0;
  };
  [[nodiscard]] DeviceWork device_work(int k, int d, hw::Mhz f,
                                       abft::ChecksumMode mode) const {
    const predict::IterationWork w = wl_.iteration(k);
    const double share = share_for(k, d);
    const hw::DeviceModel& dev = profile_.devices[static_cast<std::size_t>(d)];
    DeviceWork out;
    out.flops = w.gpu_flops() * share;
    out.update = dev.perf.time_for_flops(out.flops, hw::KernelClass::Blas3, f,
                                         dev.freq);
    double chk_flops = 0.0;
    double chk_bytes = 0.0;
    if (mode == abft::ChecksumMode::SingleSide) {
      chk_flops = w.checksum_update_flops_single * share;
      chk_bytes = w.checksum_verify_bytes_single * share;
    } else if (mode == abft::ChecksumMode::Full) {
      chk_flops = w.checksum_update_flops_full * share;
      chk_bytes = w.checksum_verify_bytes_full * share;
    }
    if (chk_flops > 0.0 || chk_bytes > 0.0) {
      // Checksum work costs time and energy but is deliberately NOT added to
      // `flops`: DeviceUsage reports *useful* factorization throughput, like
      // RunReport::gflops().
      out.abft = dev.perf.time_for_flops(chk_flops,
                                         hw::KernelClass::ChecksumUpdate, f,
                                         dev.freq) +
                 dev.perf.time_for_bytes(chk_bytes, f, dev.freq);
    }
    return out;
  }

  // -- strategy ---------------------------------------------------------------

  [[nodiscard]] const predict::SlackPredictor& predictor(
      const Lane& lane) const {
    const bool enhanced = opt_.strategy == ClusterStrategy::BSR &&
                          opt_.bsr.use_enhanced_predictor;
    if (enhanced) return *lane.enhanced;
    return *lane.first;
  }

  /// Device d's share of the (n/b)^2 protected blocks at iteration k — the S
  /// that per-device ABFT-OC covers (both for the frequency cap at plan time
  /// and the mode choice at update start, so the two cannot disagree).
  [[nodiscard]] std::int64_t local_blocks(int k, int d) const {
    const double share = share_for(k, d);
    return std::max<std::int64_t>(
        1, static_cast<std::int64_t>(
               std::llround(share * static_cast<double>(blocks_total_))));
  }

  [[nodiscard]] abft::ChecksumMode abft_mode_for(int d, hw::Mhz f,
                                                 double t_base, int k) const {
    if (opt_.forced_abft) return *opt_.forced_abft;
    const hw::DeviceModel& dev = profile_.devices[static_cast<std::size_t>(d)];
    return abft::abft_oc(opt_.bsr.fc_desired, f, dev, t_base, local_blocks(k, d))
        .mode;
  }

  /// Straggler rebalancing (generalized critical-lane selection): re-weight
  /// iteration k's work shares by each lane's predicted TMU throughput. The
  /// per-lane predictors absorb the realized durations — including the
  /// variability drift walks — so a lane that has drifted slow sheds trailing
  /// blocks to the fast lanes instead of pinning every iteration's critical
  /// path. Communication volumes keep the structural block-cyclic fractions:
  /// the re-assignment rides along the panel broadcast the devices receive
  /// anyway. Uses only per-lane state recorded before PD(k) starts, so runs
  /// stay bitwise deterministic at any sweep thread count.
  void rebalance_shares(int k) {
    const int nd = profile_.num_devices();
    double* row = eff_share_.data() +
                  static_cast<std::size_t>(k) * static_cast<std::size_t>(nd);
    for (int d = 0; d < nd; ++d) row[d] = dist_.share(wl_, k, d);
    if (k == 0) return;  // untrained predictors: no per-lane signal yet
    double wsum = 0.0;
    for (int d = 0; d < nd; ++d) {
      const double pred =
          predictor(lanes_[static_cast<std::size_t>(1 + d)])
              .predict(OpKind::TMU, k);
      if (!(pred > 0.0)) return;  // defensive: keep the structural shares
      weights_[static_cast<std::size_t>(d)] = row[d] / pred;
      wsum += weights_[static_cast<std::size_t>(d)];
    }
    if (!(wsum > 0.0)) return;  // final iterations: no trailing work at all
    for (int d = 0; d < nd; ++d) {
      row[d] = weights_[static_cast<std::size_t>(d)] / wsum;
    }
  }

  /// Computes the full per-lane plan for iteration k into `plan` (a row of
  /// plans_, n_lanes wide). Called once, when PD(k) starts (deterministic
  /// point in event order), using whatever the predictors have absorbed by
  /// then.
  void decide(int k, LaneDecision* plan) {
    if (opt_.rebalance) rebalance_shares(k);
    const std::size_t n_lanes = lanes_.size();
    std::fill(plan, plan + n_lanes, LaneDecision{});
    const bool bsr = opt_.strategy == ClusterStrategy::BSR;
    const hw::Guardband gb = bsr && opt_.bsr.use_optimized_guardband
                                 ? hw::Guardband::Optimized
                                 : hw::Guardband::Default;
    for (std::size_t i = 0; i < n_lanes; ++i) plan[i].gb = gb;

    if (opt_.strategy == ClusterStrategy::Original ||
        opt_.strategy == ClusterStrategy::R2H || k == 0) {
      const bool r2h = opt_.strategy == ClusterStrategy::R2H;
      for (std::size_t i = 0; i < n_lanes; ++i) {
        const hw::FrequencyDomain& dom = lanes_[i].dev->freq;
        plan[i].freq = r2h ? dom.max_default_mhz : dom.base_mhz;
        plan[i].adjust = plan[i].freq != lanes_[i].dvfs.current();
        plan[i].halt_idle = r2h;
        if (i > 0) {
          plan[i].core_t =
              predictor(lanes_[i]).predict(OpKind::TMU, k) *
              share_for(k, static_cast<int>(i) - 1);
        }
      }
      return;
    }

    // -- SR / BSR: lane time estimates at base clocks -------------------------
    // Host lane: panel factorization plus pulling the next panel home.
    // Device lane d: receiving the broadcast plus its local update share.
    // Member scratch, reused across iterations.
    std::vector<double>& core = core_;   // compute part (clock-scalable)
    std::vector<double>& over = over_;   // fixed transfer part
    std::fill(core.begin(), core.end(), 0.0);
    std::fill(over.begin(), over.end(), 0.0);
    if (device_pd_ && k > 0) {
      // Accelerator-resident panels: the host lane is idle from iteration 1
      // on; the panel cost lands on the owner device's estimate below.
      core[0] = 0.0;
      over[0] = 0.0;
    } else {
      core[0] = predictor(lanes_[0]).predict(OpKind::PD, k);
      if (k + 1 < iters_) {
        over[0] = profile_.links
                      .device_to_host(dist_.owner(k + 1), one_way_bytes(k + 1))
                      .seconds();
      }
    }
    for (std::size_t i = 1; i < n_lanes; ++i) {
      const int d = static_cast<int>(i) - 1;
      const double share = share_for(k, d);
      // The broadcast payload a device waits for is its row group's slice of
      // the panel (the whole panel on the 1-D layout, where row_slice is 1).
      const double bytes =
          one_way_bytes(k) * dist_.row_slice(wl_, k, dist_.row_group(d));
      core[i] = predictor(lanes_[i]).predict(OpKind::TMU, k) * share;
      over[i] = share > 0.0
                    ? profile_.links.host_to_device(d, bytes).seconds()
                    : 0.0;
      if (device_pd_ && k > 0 && d == dist_.owner(k)) {
        // The panel-owning lane additionally factors panel k this
        // iteration. Model-based estimate (the per-lane PD history is too
        // sparse under round-robin ownership to feed the predictors).
        core[i] += lanes_[i]
                       .dev->perf
                       .time_for_flops(wl_.iteration(k).pd_flops,
                                       hw::KernelClass::Panel,
                                       lanes_[i].dev->freq.base_mhz,
                                       lanes_[i].dev->freq)
                       .seconds();
      }
    }
    std::vector<double>& lane_t = lane_t_;
    for (std::size_t i = 0; i < n_lanes; ++i) lane_t[i] = core[i] + over[i];
    std::size_t crit = 0;
    for (std::size_t i = 1; i < n_lanes; ++i) {
      if (lane_t[i] > lane_t[crit]) crit = i;
    }
    double t_second = 0.0;
    for (std::size_t i = 0; i < n_lanes; ++i) {
      if (i != crit) t_second = std::max(t_second, lane_t[i]);
    }
    const double t_max = lane_t[crit];
    const bool oc = bsr && opt_.bsr.allow_overclocking;

    // Critical lane: BSR reclaims r of the gap to the second-longest lane by
    // speeding up (plus its own DVFS latency, paper Algorithm 2 lines 6/9);
    // SR leaves it at base.
    {
      const Lane& lane = lanes_[crit];
      const double l = lane.dev->dvfs_latency.seconds();
      double t_desired = core[crit];
      const double slack = t_max - t_second;
      if (bsr && opt_.bsr.reclamation_ratio > 0.0 && slack > 0.0) {
        t_desired = core[crit] - (opt_.bsr.reclamation_ratio * slack + l);
      }
      hw::Mhz f;
      if (bsr && crit == 0 && profile_.links.hierarchical()) {
        // Rack-scale generalization of the critical-lane rule: when the
        // host panel lane is the bottleneck of a hierarchical pipeline,
        // every trailing update on every node is gated on the next panel —
        // there is no second lane to reclaim against, so BSR runs the panel
        // at the domain's top clock instead of balancing toward t_second.
        f = oc ? lane.dev->freq.max_oc_mhz : lane.dev->freq.max_default_mhz;
      } else {
        f = energy::freq_for_time(core[crit], t_desired, *lane.dev, oc);
        if (!oc) f = std::min(f, lane.dev->freq.base_mhz);
      }
      if (crit > 0 && !opt_.forced_abft) {
        // ABFT-OC may cap the clock at the coverable frequency (the checksum
        // mode itself is chosen at update start, against the live clock).
        const abft::AbftDecision ad = abft::abft_oc(
            opt_.bsr.fc_desired, f, *lane.dev, core[crit],
            local_blocks(k, static_cast<int>(crit) - 1));
        f = oc ? ad.freq : std::min(ad.freq, lane.dev->freq.base_mhz);
      }
      plan[crit].freq = f;
    }
    const double t_crit_proj =
        energy::time_at_freq(core[crit], plan[crit].freq, *lanes_[crit].dev) +
        over[crit];
    const double t_new = std::max(t_crit_proj, t_second);

    // Non-critical lanes stretch into their own slack (never past base).
    // Lanes with no work left get no plan — they never run an update again;
    // finish_update() parks them at the floor clock when they retire.
    for (std::size_t i = 0; i < n_lanes; ++i) {
      if (i == crit) continue;
      const Lane& lane = lanes_[i];
      if (core[i] <= 0.0) continue;
      const double t_target =
          t_new - over[i] - lane.dev->dvfs_latency.seconds();
      hw::Mhz f = energy::freq_for_time(core[i], t_target, *lane.dev,
                                        gb == hw::Guardband::Optimized);
      plan[i].freq = std::min(f, lane.dev->freq.base_mhz);
    }

    // Projection guard (Algorithm 2 lines 16-22): skip any transition whose
    // projected lane time would push past the iteration's critical path.
    const double eps = 1e-3 * std::max(t_max, 1e-12);
    for (std::size_t i = 0; i < n_lanes; ++i) {
      plan[i].core_t = core[i];
      if (plan[i].freq <= 0) continue;
      const double proj =
          energy::time_at_freq(core[i], plan[i].freq, *lanes_[i].dev) +
          over[i];
      const double bound = (i == crit ? t_max : std::max(t_new, t_max)) + eps;
      plan[i].adjust = proj <= bound && plan[i].freq != lanes_[i].dvfs.current();
    }
  }

  // -- event graph ------------------------------------------------------------

  void dispatch(const ClusterEvent& ev) {
    switch (ev.kind) {
      case ClusterEvent::Kind::FinishPd: finish_pd(ev.k); break;
      case ClusterEvent::Kind::StartUpdate: start_update(ev.k, ev.d); break;
      case ClusterEvent::Kind::FinishUpdate: finish_update(ev.k, ev.d); break;
      case ClusterEvent::Kind::StartPd: start_pd(ev.k, engine_.now()); break;
    }
  }

  /// The plan row for iteration k (one LaneDecision per lane).
  [[nodiscard]] LaneDecision* plan_row(int k) {
    return plans_.data() + static_cast<std::size_t>(k) * lanes_.size();
  }

  void start_pd(int k, SimTime ready) {
    decide(k, plan_row(k));
    // Panel 0 is always factored on the host (the matrix is generated
    // there); from k = 1 the accelerator-resident pipeline factors panel k
    // on its owner device, queued behind whatever that lane is running —
    // the panel-k-1 arrival that fired this event gives it lane priority
    // over the same device's iteration-k trailing update.
    const bool on_device = device_pd_ && k > 0;
    Lane& lane = on_device
                     ? lanes_[static_cast<std::size_t>(1 + dist_.owner(k))]
                     : lanes_[0];
    LaneDecision d = plan_row(k)[static_cast<std::size_t>(lane.index)];
    const predict::IterationWork w = wl_.iteration(k);
    // Realize the clock first so the busy time reflects the new frequency
    // (variability may quantize or thermally clamp the plan's choice).
    const hw::Mhz f = realize_clock(lane, d);
    SimTime busy = lane.dev->perf.time_for_flops(
        w.pd_flops, hw::KernelClass::Panel, f, lane.dev->freq);
    busy = busy * lane_noise(lane.index, k);
    if (opt_.variability.enabled) busy = busy * lane.var.compute_factor(k);
    const SimTime done = run_compute(lane, ready, d, busy, w.pd_flops);
    if (trace_ != nullptr) {
      obs::TraceSpan s;
      s.kind = obs::SpanKind::Panel;
      s.start_ns = (done - busy).ns();
      s.dur_ns = busy.ns();
      s.k = k;
      s.lane = lane.index;
      s.freq_mhz = static_cast<std::int32_t>(lane.dvfs.current());
      s.dvfs_ns = last_dvfs_lat_.ns();
      trace_->record(s);
    }
    record(lane, OpKind::PD, k, busy.seconds(), 1.0);
    engine_.schedule_at(done, ClusterEvent{ClusterEvent::Kind::FinishPd, k, 0});
  }

  /// Occupies the direct peer link between src and dst (one registration
  /// covers both directions); peer traffic bypasses the host bus entirely.
  SimTime run_peer_transfer(int src, int dst, SimTime ready, double bytes,
                            const hw::TransferModel& link, int k) {
    const auto key = std::minmax(src, dst);
    SimTime& free = peer_free_[{key.first, key.second}];
    const SimTime start = max(ready, free);
    SimTime dur = link.time_for_bytes(bytes);
    if (opt_.variability.enabled) {
      dur = dur *
            lanes_[static_cast<std::size_t>(1 + dst)].var.transfer_factor();
    }
    free = start + dur;
    record_transfer(1 + dst, k, start, free);
    return free;
  }

  /// Direct cross-node device-to-device transfer (GPUDirect-RDMA-style): the
  /// payload crosses the shared inter-node fabric once, held for the full
  /// transfer, without touching the host bus or staging through host memory.
  /// Only the ring/tree collective schedules issue these; the relay schedule
  /// predates the hierarchy and always goes through the host.
  SimTime run_internode_transfer(int dst, SimTime ready, double bytes, int k) {
    SimTime dur = profile_.links.internode.time_for_bytes(bytes);
    if (opt_.variability.enabled) {
      dur = dur *
            lanes_[static_cast<std::size_t>(1 + dst)].var.transfer_factor();
    }
    const SimTime start = max(ready, internode_free_);
    internode_free_ = start + dur;
    record_transfer(1 + dst, k, start, internode_free_);
    return internode_free_;
  }

  /// Device-to-device hop with no direct peer link: d2h, pinned-buffer
  /// staging, h2d — each leg a full contended host transfer.
  SimTime run_staged_transfer(int src, int dst, SimTime ready, double bytes,
                              int k) {
    const SimTime up = run_transfer(src, ready, bytes, k);
    return run_transfer(dst, up + profile_.links.staging_latency, bytes, k);
  }

  /// One device-to-device broadcast hop under the collective schedules: peer
  /// link when registered, the inter-node fabric when the endpoints sit on
  /// different nodes, staged through host memory otherwise.
  SimTime run_hop(int src, int dst, SimTime ready, double bytes, int k) {
    if (const hw::TransferModel* link = profile_.links.peer(src, dst)) {
      return run_peer_transfer(src, dst, ready, bytes, *link, k);
    }
    if (profile_.links.node(src) != profile_.links.node(dst)) {
      return run_internode_transfer(dst, ready, bytes, k);
    }
    return run_staged_transfer(src, dst, ready, bytes, k);
  }

  void finish_pd(int k) {
    // Broadcast the factored panel to every device that owns trailing
    // blocks; each arrival fires that device's update. On the 1-D layout the
    // whole panel goes to every device; a p x q grid splits the broadcast
    // into one job per process-grid row group, carrying only that group's
    // row slice of the panel (the 2-D volume saving).
    std::fill(arrival_.begin(), arrival_.end(), SimTime());
    const double bytes = one_way_bytes(k);
    // The broadcast root: the host, or — in the accelerator-resident panel
    // pipeline — the device that just factored panel k and already holds it.
    const int source = device_pd_ && k > 0 ? dist_.owner(k) : -1;
    // Ring and tree hand the payload to the *next* panel's owner at the
    // earliest hop: its arrival gates the next panel factorization, so the
    // pipeline is only as deep as that first delivery. From a device root
    // the chain starts at the root itself (the next owner is its cyclic
    // successor, one hop away). Rotation is a hierarchical-only refinement —
    // on flat profiles the schedules keep the ascending legacy order.
    const int next_owner = k + 1 < iters_ ? dist_.owner(k + 1) : -1;
    const int lead = source >= 0
                         ? source
                         : profile_.links.hierarchical() ? next_owner : -1;
    for (int rg = 0; rg < dist_.q(); ++rg) {
      recips_.clear();
      for (int d = rg * dist_.p(); d < (rg + 1) * dist_.p(); ++d) {
        if (d < profile_.num_devices() && dist_.has_work(wl_, k, d)) {
          recips_.push_back(d);
        }
      }
      if (recips_.empty()) continue;
      const double job_bytes = bytes * dist_.row_slice(wl_, k, rg);
      switch (opt_.schedule) {
        case BroadcastSchedule::Relay: relay_job(k, job_bytes); break;
        case BroadcastSchedule::Ring:
          ring_job(k, job_bytes, lead, source);
          break;
        case BroadcastSchedule::Tree:
          tree_job(k, job_bytes, lead, source);
          break;
      }
      if (opt_.schedule != BroadcastSchedule::Relay) {
        // The next panel factorization fires at its owner's arrival and is
        // scheduled *before* the same-instant StartUpdate events, so it
        // gets the lane first — panel-priority, the panel column's own
        // update folded into the factorization window.
        if (device_pd_ && next_owner >= 0 && dist_.row_group(next_owner) == rg) {
          engine_.schedule_at(
              arrival_[static_cast<std::size_t>(next_owner)],
              ClusterEvent{ClusterEvent::Kind::StartPd, k + 1, 0});
        }
        schedule_job_updates(k);
      }
    }
  }

  /// The host-rooted star with opportunistic one-hop peer forwarding — the
  /// pre-collective broadcast, now restricted to one job's recipients
  /// (recips_). Every recipient either relays off the first earlier
  /// recipient it shares a peer link with, or takes its own host transfer.
  /// On a flat 1-D topology this loop is the pre-collective code path,
  /// bit-for-bit; on a hierarchical one the relay source's send port
  /// serializes (send_free_), so fanning eight peers out of one device costs
  /// eight sends, not one.
  void relay_job(int k, double bytes) {
    for (std::size_t i = 0; i < recips_.size(); ++i) {
      const int d = recips_[i];
      const hw::TransferModel* relay_link = nullptr;
      int relay_src = -1;
      for (std::size_t j = 0; j < i; ++j) {
        if (const hw::TransferModel* peer =
                profile_.links.peer(recips_[j], d)) {
          relay_link = peer;
          relay_src = recips_[j];
          break;
        }
      }
      SimTime at;
      if (relay_link != nullptr) {
        SimTime ready = arrival_[static_cast<std::size_t>(relay_src)];
        if (profile_.links.hierarchical()) {
          ready = max(ready, send_free_[static_cast<std::size_t>(relay_src)]);
        }
        at = run_peer_transfer(relay_src, d, ready, bytes, *relay_link, k);
        if (profile_.links.hierarchical()) {
          send_free_[static_cast<std::size_t>(relay_src)] = at;
        }
      } else {
        at = run_transfer(d, lanes_[0].busy_until, bytes, k);
      }
      arrival_[static_cast<std::size_t>(d)] = at;
      engine_.schedule_at(at,
                          ClusterEvent{ClusterEvent::Kind::StartUpdate, k, d});
    }
  }

  /// Seeds a job's first device with the payload: a no-op when it *is* the
  /// broadcast root, one device-to-device hop from a device root (the root's
  /// send port serializes across jobs and tree rounds), or the legacy host
  /// transfer when the root is the host (source < 0).
  SimTime seed_first(int first, int source, double bytes, int k) {
    if (first == source) return engine_.now();
    if (source >= 0) {
      const SimTime ready =
          max(engine_.now(), send_free_[static_cast<std::size_t>(source)]);
      const SimTime at = run_hop(source, first, ready, bytes, k);
      send_free_[static_cast<std::size_t>(source)] = at;
      return at;
    }
    return run_transfer(first, lanes_[0].busy_until, bytes, k);
  }

  /// Ring broadcast: root -> first recipient, then a node-contiguous chain
  /// of device-to-device hops (device ids are node-contiguous on the rack
  /// profiles), so the root pays for exactly one send per job. The chain is
  /// rotated to start at `lead` (the broadcast root when it is a recipient,
  /// else the next panel's owner) when that device is in this job.
  void ring_job(int k, double bytes, int lead, int source) {
    for (std::size_t i = 0; i < recips_.size(); ++i) {
      if (recips_[i] == lead) {
        std::rotate(recips_.begin(),
                    recips_.begin() + static_cast<std::ptrdiff_t>(i),
                    recips_.end());
        break;
      }
    }
    for (std::size_t i = 0; i < recips_.size(); ++i) {
      const int d = recips_[i];
      if (i == 0) {
        arrival_[static_cast<std::size_t>(d)] =
            seed_first(d, source, bytes, k);
      } else {
        const int src = recips_[i - 1];
        arrival_[static_cast<std::size_t>(d)] =
            run_hop(src, d, arrival_[static_cast<std::size_t>(src)], bytes, k);
      }
    }
  }

  /// Two-level binomial tree: the host seeds the first node's leader, the
  /// node leaders propagate binomially over the inter-node fabric, and each
  /// node's recipients double the holder set every round over intra-node
  /// peer links. Sends are issued in deterministic (round, rank) order and
  /// each sender's port serializes through send_free_.
  void tree_job(int k, double bytes, int lead, int source) {
    // Node leaders, in node order (recips_ is ascending and device ids are
    // node-contiguous): normally a node's first recipient, but `lead` (the
    // broadcast root when it is a recipient, else the next panel's owner)
    // is promoted to lead its node — and, by rotation, the whole tree — so
    // the pipeline-critical device holds the payload at the earliest hop.
    leaders_.clear();
    std::size_t lead_leader = recips_.size();  // index into leaders_
    for (std::size_t i = 0; i < recips_.size(); ++i) {
      if (i == 0 || profile_.links.node(recips_[i]) !=
                        profile_.links.node(recips_[i - 1])) {
        leaders_.push_back(recips_[i]);
      }
      if (recips_[i] == lead) {
        leaders_.back() = lead;
        lead_leader = leaders_.size() - 1;
      }
    }
    if (lead_leader < leaders_.size()) {
      std::rotate(leaders_.begin(),
                  leaders_.begin() + static_cast<std::ptrdiff_t>(lead_leader),
                  leaders_.end());
    }
    arrival_[static_cast<std::size_t>(leaders_[0])] =
        seed_first(leaders_[0], source, bytes, k);
    binomial_rounds(leaders_, k, bytes);
    // Intra-node fan-out over each node's contiguous slice of recips_, the
    // node's leader (the promoted lead, where it applies) at rank 0 —
    // binomial_rounds requires rank 0 to hold the payload already.
    std::size_t i = 0;
    while (i < recips_.size()) {
      const int node = profile_.links.node(recips_[i]);
      std::size_t j = i;
      group_.clear();
      while (j < recips_.size() && profile_.links.node(recips_[j]) == node) {
        group_.push_back(recips_[j]);
        ++j;
      }
      for (std::size_t u = 1; u < group_.size(); ++u) {
        if (group_[u] == lead) {
          std::swap(group_[0], group_[u]);
          break;
        }
      }
      binomial_rounds(group_, k, bytes);
      i = j;
    }
  }

  /// Standard binomial broadcast over `ranks` (rank 0 already holds the
  /// payload): in round r, every rank u < 2^r sends to rank u + 2^r.
  void binomial_rounds(const std::vector<int>& ranks, int k, double bytes) {
    for (std::size_t stride = 1; stride < ranks.size(); stride <<= 1) {
      for (std::size_t u = 0; u < stride && u + stride < ranks.size(); ++u) {
        const int src = ranks[u];
        const int dst = ranks[u + stride];
        const SimTime ready =
            max(arrival_[static_cast<std::size_t>(src)],
                send_free_[static_cast<std::size_t>(src)]);
        arrival_[static_cast<std::size_t>(dst)] =
            run_hop(src, dst, ready, bytes, k);
        send_free_[static_cast<std::size_t>(src)] =
            arrival_[static_cast<std::size_t>(dst)];
      }
    }
  }

  /// Fires StartUpdate for every recipient of the current job at its
  /// computed arrival, in ascending device order (deterministic tie-breaks).
  void schedule_job_updates(int k) {
    for (const int d : recips_) {
      engine_.schedule_at(arrival_[static_cast<std::size_t>(d)],
                          ClusterEvent{ClusterEvent::Kind::StartUpdate, k, d});
    }
  }

  void start_update(int k, int d) {
    // Purely defensive: today each (k, d) update has exactly one scheduling
    // site (finish_pd's broadcast/relay loop runs once per k), so this guard
    // never fires. It exists so a future second arrival path — e.g. a
    // multi-hop relay or a re-broadcast on failure — degrades to a no-op
    // instead of double-charging the lane.
    const std::size_t slot =
        static_cast<std::size_t>(k) * lanes_.size() +
        static_cast<std::size_t>(1 + d);
    if (upd_scheduled_[slot]) return;
    upd_scheduled_[slot] = true;

    Lane& lane = lanes_[static_cast<std::size_t>(1 + d)];
    LaneDecision dec = plan_row(k)[static_cast<std::size_t>(1 + d)];
    // Protection matches the clock that actually runs: by now the lane's
    // plan may have been guarded off, overtaken by a skipped transition, or
    // thermally clamped, so ABFT-OC is consulted here, against the realized
    // `f`, not at plan time.
    const hw::Mhz f = realize_clock(lane, dec);
    const abft::ChecksumMode mode = abft_mode_for(d, f, dec.core_t, k);
    const DeviceWork work = device_work(k, d, f, mode);
    const double noise =
        lane_noise(1 + d, k) *
        (opt_.variability.enabled ? lane.var.compute_factor(k) : 1.0);
    const SimTime busy = (work.update + work.abft) * noise;
    SimTime done = run_compute(lane, engine_.now(), dec, busy, work.flops);
    if (trace_ != nullptr) {
      obs::TraceSpan s;
      s.kind = obs::SpanKind::Update;
      s.start_ns = (done - busy).ns();
      s.dur_ns = busy.ns();
      s.k = k;
      s.lane = 1 + d;
      s.freq_mhz = static_cast<std::int32_t>(f);
      s.abft_mode = static_cast<std::uint8_t>(mode);
      s.dvfs_ns = last_dvfs_lat_.ns();
      trace_->record(s);
    }
    switch (mode) {
      case abft::ChecksumMode::None: ++lane.use.iters_unprotected; break;
      case abft::ChecksumMode::SingleSide: ++lane.use.iters_single; break;
      case abft::ChecksumMode::Full: ++lane.use.iters_full; break;
    }
    const double share = share_for(k, d);
    if (share > 0.0) {
      // Measured profiles exclude recovery time below: a fault is an
      // anomaly, not an efficiency change the predictors should learn.
      record(lane, OpKind::TMU, k, (work.update * noise).seconds(), share);
    }
    if (early_ship_ && k + 1 < iters_ && d == dist_.owner(k + 1)) {
      // Panel-priority look-ahead: the owner reorders its local update to
      // finish panel column k+1 first (one of its local_cols columns) and
      // DMAs it home at that instant, so the host factors PD(k+1) while the
      // rest of this device's trailing update is still running. The lane
      // itself stays busy until `done` — only the transfer departs early.
      const std::int64_t cols =
          std::max<std::int64_t>(1, dist_.local_cols(wl_, k, d));
      const SimTime slice_done =
          done - busy + busy * (1.0 / static_cast<double>(cols));
      const SimTime arrived =
          run_transfer(d, slice_done, one_way_bytes(k + 1), k + 1);
      engine_.schedule_at(
          arrived, ClusterEvent{ClusterEvent::Kind::StartPd, k + 1, 0});
    }
    if (opt_.faults.enabled) {
      done = expose_update(lane, dec, k, d, f, mode, work.update * noise);
    }
    engine_.schedule_at(done,
                        ClusterEvent{ClusterEvent::Kind::FinishUpdate, k, d});
  }

  /// Samples the fault process over one update window and charges the
  /// recovery cost in-lane: checksum corrections at the window's clock,
  /// rollback recomputes at the device's base clock (the safe state, like
  /// the numeric recovery model). Extends the lane's busy time — recovery
  /// genuinely delays its next panel/update — and returns the new completion
  /// time. recovery_s stays a sub-bucket of busy_s, so per-lane
  /// busy + idle + dvfs still reconciles with the makespan.
  SimTime expose_update(Lane& lane, const LaneDecision& dec, int k, int d,
                        hw::Mhz f, abft::ChecksumMode mode, SimTime exposed) {
    const hw::ErrorRates rates = lane.dev->errors.rates(f, dec.gb);
    const faultcamp::FaultCounts counts = lane.faults.sample(rates, exposed);
    const faultcamp::Resolution res =
        faultcamp::resolve(counts, mode, opt_.faults.rollback);
    lane.use.faults_injected += res.injected.total();
    lane.use.faults_corrected += res.corrected();
    lane.use.faults_recovered += res.recovered;
    lane.use.faults_unrecovered += res.unrecovered;
    lane.use.faults_uncorrectable += res.uncorrectable;
    lane.use.rollbacks += res.rollbacks;
    SimTime extra;
    if (res.corrected() > 0) {
      const SimTime corr = SimTime::from_seconds(
          opt_.faults.correction_s * static_cast<double>(res.corrected()));
      lane.use.energy_j += lane.dev->busy_power(f, dec.gb) * corr.seconds();
      extra += corr;
    }
    if (res.rollbacks > 0) {
      const DeviceWork redo =
          device_work(k, d, lane.dev->freq.base_mhz, mode);
      const SimTime rb = redo.update + redo.abft;
      lane.use.energy_j +=
          lane.dev->busy_power(lane.dev->freq.base_mhz,
                               hw::Guardband::Default) *
          rb.seconds();
      extra += rb;
    }
    if (trace_ != nullptr &&
        (res.injected.total() > 0 || extra > SimTime::zero())) {
      obs::TraceSpan s;
      s.kind = obs::SpanKind::Recovery;
      s.start_ns = lane.busy_until.ns();
      s.dur_ns = extra.ns();
      s.k = k;
      s.lane = lane.index;
      s.freq_mhz = static_cast<std::int32_t>(f);
      s.abft_mode = static_cast<std::uint8_t>(mode);
      s.recovery_ns = extra.ns();
      s.faults_injected = res.injected.total();
      s.faults_corrected = res.corrected();
      s.rollbacks = res.rollbacks;
      trace_->record(s);
    }
    lane.use.busy_s += extra.seconds();
    lane.use.recovery_s += extra.seconds();
    lane.busy_until += extra;
    return lane.busy_until;
  }

  void finish_update(int k, int d) {
    // Look-ahead: the owner of panel k+1 ships it home the moment its own
    // update is done; the host can then factor it while the other devices
    // are still updating iteration k. (The hierarchical relay ships it
    // mid-update from start_update() instead, and the accelerator-resident
    // pipeline never ships panels home at all.)
    if (!early_ship_ && !device_pd_ && k + 1 < iters_ &&
        d == dist_.owner(k + 1)) {
      const SimTime arrived = run_transfer(
          d, lanes_[static_cast<std::size_t>(1 + d)].busy_until,
          one_way_bytes(k + 1), k + 1);
      engine_.schedule_at(
          arrived, ClusterEvent{ClusterEvent::Kind::StartPd, k + 1, 0});
    }
    // Once a device owns no trailing blocks it never works again
    // (block-cyclic ownership only shrinks): park the retired lane so it
    // does not burn last-clock idle power until the makespan barrier.
    if (k + 1 >= iters_ || !dist_.has_work(wl_, k + 1, d)) {
      park_lane(lanes_[static_cast<std::size_t>(1 + d)]);
    }
  }

  /// Drops a lane that will never work again to its floor clock (SR/BSR
  /// only; Original pins clocks and R2H's halt model already covers idling).
  /// The transition window is settled against the makespan at the barrier.
  void park_lane(Lane& lane) {
    if (opt_.strategy != ClusterStrategy::SR &&
        opt_.strategy != ClusterStrategy::BSR) {
      return;
    }
    lane.park_power_w = idle_power(lane);  // at the pre-park clock
    lane.park_start = lane.busy_until;
    lane.park_lat = lane.dvfs.set_frequency(lane.dev->freq.min_mhz);
    lane.parked = lane.park_lat > SimTime::zero();
  }

  /// Records a measured duration, normalized to the device's base clock and
  /// (for devices) scaled from the local share back to the global task, so
  /// the Table-2 complexity ratios stay applicable.
  void record(Lane& lane, OpKind op, int k, double seconds, double share) {
    const hw::Mhz f = lane.dvfs.current();
    const double scale =
        std::pow(static_cast<double>(f) /
                     static_cast<double>(lane.dev->freq.base_mhz),
                 lane.dev->perf.freq_exponent);
    const double base_global = seconds * scale / share;
    lane.enhanced->record(op, k, base_global);
    lane.first->record(op, k, base_global);
  }

  [[nodiscard]] double lane_noise(int lane, int k) const {
    return lanes_[static_cast<std::size_t>(lane)]
        .noise[static_cast<std::size_t>(k)];
  }

  const ClusterProfile& profile_;
  const predict::WorkloadModel& wl_;
  const ClusterOptions& opt_;
  obs::TraceRecorder* trace_ = nullptr;  ///< opt_.trace; null = tracing off
  SimTime last_dvfs_lat_;  ///< transition latency of the latest run_compute
  BlockCyclic dist_;
  int iters_ = 0;
  std::int64_t blocks_total_ = 0;
  bool early_ship_ = false;  ///< panel-priority look-ahead (see ctor)
  bool device_pd_ = false;   ///< accelerator-resident panels (see ctor)

  BasicEventEngine<ClusterEvent> engine_;
  std::vector<Lane> lanes_;
  std::vector<SimTime> link_free_;  ///< indexed like lanes_ (slot 0 unused)
  SimTime bus_free_;
  SimTime internode_free_;            ///< shared inter-node fabric
  std::vector<SimTime> node_bus_free_;  ///< per-node bus (slot 0 unused)
  std::vector<SimTime> send_free_;    ///< per-device send port (collectives)
  std::map<std::pair<int, int>, SimTime> peer_free_;  ///< key (min, max)
  std::vector<LaneDecision> plans_;  ///< flat (iteration, lane) plan grid
  std::vector<double> core_, over_, lane_t_;  ///< decide() scratch
  std::vector<double> eff_share_;  ///< flat (iteration, device) shares
  std::vector<double> weights_;    ///< rebalance_shares() scratch
  std::vector<SimTime> arrival_;              ///< finish_pd() scratch
  std::vector<int> recips_, leaders_, group_;  ///< broadcast-job scratch
  std::vector<char> upd_scheduled_;
};

}  // namespace

ClusterReport run_cluster(const ClusterProfile& profile,
                          const predict::WorkloadModel& workload,
                          const ClusterOptions& options) {
  if (profile.num_devices() < 1) {
    throw std::invalid_argument("run_cluster: profile has no devices");
  }
  if (profile.links.num_devices() !=
      static_cast<std::size_t>(profile.num_devices())) {
    throw std::invalid_argument(
        "run_cluster: link topology covers " +
        std::to_string(profile.links.num_devices()) + " devices, profile has " +
        std::to_string(profile.num_devices()));
  }
  if ((options.grid_p > 0) != (options.grid_q > 0)) {
    throw std::invalid_argument(
        "run_cluster: set both grid_p and grid_q (or neither for the 1-D "
        "layout)");
  }
  if (options.grid_p > 0 &&
      options.grid_p * options.grid_q != profile.num_devices()) {
    throw std::invalid_argument(
        "run_cluster: process grid " + std::to_string(options.grid_p) + "x" +
        std::to_string(options.grid_q) + " must cover exactly " +
        std::to_string(profile.num_devices()) + " devices");
  }
  ClusterRun run(profile, workload, options);
  return run.run();
}

}  // namespace bsr::cluster
