// Per-device usage and the aggregated result of one cluster run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_time.hpp"
#include "hw/frequency.hpp"

namespace bsr::cluster {

/// One device's (or the host's) aggregate over a cluster run. Flows into
/// core::RunReport::device_usage so per-device energy/time reaches the
/// ResultSink backends unchanged.
struct DeviceUsage {
  std::string name;
  double busy_s = 0.0;     ///< compute (incl. checksum work)
  double idle_s = 0.0;     ///< waiting for panels / peers / the final barrier
  double dvfs_s = 0.0;     ///< transition latency charged to this device
  double energy_j = 0.0;
  double flops = 0.0;      ///< useful factorization flops executed here
  int dvfs_transitions = 0;
  hw::Mhz final_mhz = 0;
  // ABFT coverage accounting, per device (iterations where this device ran
  // its local update under the given protection level).
  std::int64_t iters_unprotected = 0;
  std::int64_t iters_single = 0;
  std::int64_t iters_full = 0;
  // Fault-campaign accounting (all zero unless the run's faults block is
  // enabled): counts of faults striking this device's update windows and
  // what became of them, plus the recovery time charged in-lane.
  // `recovery_s` (correction latency + rollback recomputes) is a sub-bucket
  // of busy_s, so busy + idle + dvfs still reconciles with the makespan.
  std::int64_t faults_injected = 0;
  std::int64_t faults_corrected = 0;      ///< repaired in place by checksums
  std::int64_t faults_recovered = 0;      ///< uncorrectable, redone via rollback
  std::int64_t faults_unrecovered = 0;    ///< silent, or rollback disabled
  std::int64_t faults_uncorrectable = 0;  ///< detected beyond in-place repair
  int rollbacks = 0;                      ///< update redos triggered here
  double recovery_s = 0.0;

  [[nodiscard]] double gflops() const {
    const double t = busy_s + dvfs_s + idle_s;
    return t <= 0.0 ? 0.0 : flops / t / 1e9;
  }
  [[nodiscard]] double ed2p() const {
    const double t = busy_s + dvfs_s + idle_s;
    return energy_j * t * t;
  }
};

struct ClusterReport {
  SimTime makespan;
  DeviceUsage host;
  std::vector<DeviceUsage> devices;

  [[nodiscard]] double total_energy_j() const {
    double e = host.energy_j;
    for (const DeviceUsage& d : devices) e += d.energy_j;
    return e;
  }
  [[nodiscard]] double device_energy_j() const {
    double e = 0.0;
    for (const DeviceUsage& d : devices) e += d.energy_j;
    return e;
  }
  [[nodiscard]] double seconds() const { return makespan.seconds(); }
  [[nodiscard]] double ed2p() const {
    return total_energy_j() * seconds() * seconds();
  }
  [[nodiscard]] std::int64_t iters_protected() const {
    std::int64_t n = 0;
    for (const DeviceUsage& d : devices) n += d.iters_single + d.iters_full;
    return n;
  }
};

}  // namespace bsr::cluster
