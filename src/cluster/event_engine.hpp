// Discrete-event engine on the simulated integer-nanosecond clock.
//
// The single-node pipeline advances in lockstep — one iteration at a time,
// both lanes barriered at the iteration boundary. At cluster scale that
// barrier would serialize devices that have no data dependency on each other,
// so the cluster engine schedules *events*: task completions fire handlers
// that check successor readiness and enqueue the next completions. Events at
// equal simulated times fire in schedule order (a monotone sequence number
// breaks ties), which makes every run bitwise deterministic regardless of how
// the surrounding sweep is threaded.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/sim_time.hpp"

namespace bsr::cluster {

class EventEngine {
 public:
  using Handler = std::function<void()>;

  /// Schedules `fn` at absolute simulated time `t`. Scheduling in the past
  /// (t < now()) is clamped to now(): the event fires next, after already
  /// queued events of the same time.
  void schedule_at(SimTime t, Handler fn);
  void schedule_after(SimTime delay, Handler fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }
  [[nodiscard]] std::uint64_t processed() const { return processed_; }

  /// Drains the queue, advancing now() monotonically; returns the time of the
  /// last processed event (the makespan when the graph ran to completion).
  SimTime run();

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq = 0;  ///< tie-break: equal-time events fire in order
    Handler fn;
  };
  /// Min-heap ordering over (time, seq).
  static bool later(const Event& a, const Event& b) {
    if (a.time != b.time) return b.time < a.time;
    return b.seq < a.seq;
  }

  std::vector<Event> heap_;
  SimTime now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace bsr::cluster
