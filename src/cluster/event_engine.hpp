// Discrete-event engine on the simulated integer-nanosecond clock.
//
// The single-node pipeline advances in lockstep — one iteration at a time,
// both lanes barriered at the iteration boundary. At cluster scale that
// barrier would serialize devices that have no data dependency on each other,
// so the cluster engine schedules *events*: task completions fire handlers
// that check successor readiness and enqueue the next completions. Events at
// equal simulated times fire in schedule order (a monotone sequence number
// breaks ties), which makes every run bitwise deterministic regardless of how
// the surrounding sweep is threaded.
//
// BasicEventEngine<Payload> stores events in one flat vector arranged as a
// binary min-heap over (time, seq). With a trivially-copyable Payload (the
// cluster engine's {kind, k, d} record) an event is a few words in
// preallocated storage — scheduling never allocates once reserve() has been
// called, where the former std::function-per-event design paid type-erasure
// dispatch on every fire. EventEngine keeps the std::function interface on
// top for tests and callers that want ad-hoc handlers.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/sim_time.hpp"

namespace bsr::cluster {

template <typename Payload>
class BasicEventEngine {
 public:
  /// Schedules `payload` at absolute simulated time `t`. Scheduling in the
  /// past (t < now()) is clamped to now(): the event fires next, after
  /// already queued events of the same time.
  void schedule_at(SimTime t, Payload payload) {
    heap_.push_back(Event{max(t, now_), next_seq_++, std::move(payload)});
    std::push_heap(heap_.begin(), heap_.end(), later);
  }
  void schedule_after(SimTime delay, Payload payload) {
    schedule_at(now_ + delay, std::move(payload));
  }

  /// Preallocates flat storage for `n` simultaneously pending events, so the
  /// steady-state schedule/fire cycle never touches the allocator.
  void reserve(std::size_t n) { heap_.reserve(n); }

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }
  [[nodiscard]] std::uint64_t processed() const { return processed_; }

  /// Drains the queue, invoking `fire(payload)` for each event in (time, seq)
  /// order and advancing now() monotonically; returns the time of the last
  /// processed event (the makespan when the graph ran to completion). `fire`
  /// may schedule further events.
  template <typename Fire>
  SimTime run(Fire&& fire) {
    while (!heap_.empty()) {
      std::pop_heap(heap_.begin(), heap_.end(), later);
      Event ev = std::move(heap_.back());
      heap_.pop_back();
      now_ = ev.time;
      ++processed_;
      fire(ev.payload);
    }
    return now_;
  }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq = 0;  ///< tie-break: equal-time events fire in order
    Payload payload;
  };
  /// Min-heap ordering over (time, seq).
  static bool later(const Event& a, const Event& b) {
    if (a.time != b.time) return b.time < a.time;
    return b.seq < a.seq;
  }

  std::vector<Event> heap_;
  SimTime now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

/// The type-erased convenience engine: each event carries an arbitrary
/// callable. Ad-hoc graphs and the engine tests use this; the cluster
/// engine's hot loop uses BasicEventEngine with a POD payload instead.
class EventEngine : public BasicEventEngine<std::function<void()>> {
 public:
  using Handler = std::function<void()>;

  /// Drains the queue, calling each handler in (time, seq) order.
  SimTime run();
};

}  // namespace bsr::cluster
