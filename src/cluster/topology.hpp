// Cluster platform: N accelerator devices behind one host, with a link
// topology generalizing the single PCIe link of hw::PlatformProfile.
//
// Every accelerator hangs off the host on its own hw::TransferModel link
// (dedicated lanes), but all host<->device traffic additionally crosses the
// shared host bus (root complex / host memory system): a transfer occupies
// both its link and the bus, so broadcasting a panel to eight devices is
// bus-bound even though the eight links are independent. Device-to-device
// traffic is staged through host memory (d2h + staging + h2d) unless an
// explicit peer link (NVLink-style) is registered for the pair.
#pragma once

#include <cstddef>
#include <map>
#include <utility>
#include <vector>

#include "hw/platform.hpp"
#include "hw/transfer.hpp"

namespace bsr::cluster {

struct LinkTopology {
  /// host_links[d] carries all traffic between the host and accelerator d.
  std::vector<hw::TransferModel> host_links;
  /// The shared root-complex / host-memory bus every host<->device transfer
  /// also crosses. A transfer's duration is the slower of its link and the
  /// bus; concurrent transfers on different links still serialize on the bus.
  hw::TransferModel host_bus;
  /// Fixed software cost of staging one device-to-device hop through host
  /// memory (pinned-buffer bounce).
  SimTime staging_latency;
  /// Optional direct device<->device links, keyed by (src, dst); lookups fall
  /// back to the (dst, src) entry, so one registration covers both directions.
  std::map<std::pair<int, int>, hw::TransferModel> peer_links;

  [[nodiscard]] std::size_t num_devices() const { return host_links.size(); }

  /// Uncontended transfer times (the engine adds queueing on top).
  [[nodiscard]] SimTime host_to_device(int device, double bytes) const;
  [[nodiscard]] SimTime device_to_host(int device, double bytes) const;
  /// Peer link when registered, else d2h + staging + h2d through the host.
  [[nodiscard]] SimTime device_to_device(int src, int dst, double bytes) const;
  /// The registered peer link for (src, dst) in either orientation, if any.
  [[nodiscard]] const hw::TransferModel* peer(int src, int dst) const;
};

/// The full simulated cluster: one host (panel factorization, staging) plus
/// `devices.size()` accelerators sharing the trailing-matrix work.
struct ClusterProfile {
  hw::DeviceModel host;
  std::vector<hw::DeviceModel> devices;
  LinkTopology links;

  [[nodiscard]] int num_devices() const {
    return static_cast<int>(devices.size());
  }

  /// The paper's i7-9700K host with `num_gpus` replicated RTX 2080 Ti
  /// devices: per-device PCIe 3.0 x16 links behind a shared 24 GB/s host bus.
  /// At num_gpus = 1 the device and link match hw::PlatformProfile::
  /// paper_default() exactly.
  static ClusterProfile paper_scaleout(int num_gpus);

  /// paper_scaleout with NVLink-style 40 GB/s peer links between adjacent
  /// device pairs (0-1, 2-3, ...), for topologies where peer traffic should
  /// not stage through the host.
  static ClusterProfile nvlink_pairs(int num_gpus);
};

}  // namespace bsr::cluster
