// Cluster platform: N accelerator devices behind one host, with a link
// topology generalizing the single PCIe link of hw::PlatformProfile.
//
// Every accelerator hangs off the host on its own hw::TransferModel link
// (dedicated lanes), but all host<->device traffic additionally crosses the
// shared host bus (root complex / host memory system): a transfer occupies
// both its link and the bus, so broadcasting a panel to eight devices is
// bus-bound even though the eight links are independent. Device-to-device
// traffic is staged through host memory (d2h + staging + h2d) unless an
// explicit peer link (NVLink-style) is registered for the pair.
//
// A topology may additionally be *hierarchical*: devices group into nodes
// (node_of), each node has its own local bus, and traffic leaving the host's
// node (node 0, where the host lives) crosses the shared inter-node network
// on top of the host bus. A flat topology (node_of empty) is bit-for-bit the
// pre-hierarchical model: only the link and the host bus are consulted.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "hw/platform.hpp"
#include "hw/transfer.hpp"

namespace bsr::cluster {

struct LinkTopology {
  /// host_links[d] carries all traffic between the host and accelerator d.
  std::vector<hw::TransferModel> host_links;
  /// The shared root-complex / host-memory bus every host<->device transfer
  /// also crosses. A transfer's duration is the slower of its link and the
  /// bus; concurrent transfers on different links still serialize on the bus.
  hw::TransferModel host_bus;
  /// Fixed software cost of staging one device-to-device hop through host
  /// memory (pinned-buffer bounce).
  SimTime staging_latency;
  /// Optional direct device<->device links, keyed by (src, dst); lookups fall
  /// back to the (dst, src) entry, so one registration covers both directions.
  std::map<std::pair<int, int>, hw::TransferModel> peer_links;

  // -- hierarchy (rack profiles) ----------------------------------------------
  /// node_of[d] is the node (chassis) device d sits in; empty = flat topology
  /// (every device on the host's node). The host lives on node 0.
  std::vector<int> node_of;
  /// Local bus of each non-host node: host<->device traffic to node j > 0
  /// additionally crosses node j's bus. Node 0's bus IS host_bus.
  hw::TransferModel node_bus;
  /// The shared inter-node network (switch fabric). Every transfer whose
  /// endpoints sit on different nodes crosses it exactly once.
  hw::TransferModel internode;

  [[nodiscard]] std::size_t num_devices() const { return host_links.size(); }

  /// Node of device d: node_of[d], or 0 for a flat topology.
  [[nodiscard]] int node(int device) const {
    return node_of.empty() ? 0 : node_of[static_cast<std::size_t>(device)];
  }
  /// 1 + max(node_of) (1 for a flat topology).
  [[nodiscard]] int num_nodes() const;
  /// True for rack-style topologies (node_of populated), even when every
  /// populated device happens to sit in node 0: the hierarchical scheduling
  /// rules (send-port serialization, panel-priority look-ahead, critical-
  /// lane boost) key off the profile's *shape*, not the device count, so a
  /// rack's scaling curve is one consistent model from 1 device up. Flat
  /// profiles (empty node_of) keep the pre-hierarchical engine bit-for-bit.
  [[nodiscard]] bool hierarchical() const { return !node_of.empty(); }

  /// Uncontended transfer times (the engine adds queueing on top).
  [[nodiscard]] SimTime host_to_device(int device, double bytes) const;
  [[nodiscard]] SimTime device_to_host(int device, double bytes) const;
  /// Peer link when registered, else d2h + staging + h2d through the host.
  [[nodiscard]] SimTime device_to_device(int src, int dst, double bytes) const;
  /// The registered peer link for (src, dst) in either orientation, if any.
  [[nodiscard]] const hw::TransferModel* peer(int src, int dst) const;
};

/// The full simulated cluster: one host (panel factorization, staging) plus
/// `devices.size()` accelerators sharing the trailing-matrix work.
struct ClusterProfile {
  hw::DeviceModel host;
  std::vector<hw::DeviceModel> devices;
  LinkTopology links;
  /// Devices per node for rack-style profiles; 0 = flat single-node profile.
  /// Drives the node geometry of `--nodes` axes and the auto process-grid /
  /// auto collective resolution (flat profiles keep the 1-D relay behavior).
  int devices_per_node = 0;

  [[nodiscard]] int num_devices() const {
    return static_cast<int>(devices.size());
  }

  /// The paper's i7-9700K host with `num_gpus` replicated RTX 2080 Ti
  /// devices: per-device PCIe 3.0 x16 links behind a shared 24 GB/s host bus.
  /// At num_gpus = 1 the device and link match hw::PlatformProfile::
  /// paper_default() exactly.
  static ClusterProfile paper_scaleout(int num_gpus);

  /// paper_scaleout with NVLink-style 40 GB/s peer links between adjacent
  /// device pairs (0-1, 2-3, ...), for topologies where peer traffic should
  /// not stage through the host.
  static ClusterProfile nvlink_pairs(int num_gpus);

  /// A rack of `max_nodes` DGX-style nodes, each holding `per_node` paper
  /// GPUs behind its own node bus, with all-to-all 40 GB/s NVLink peer links
  /// inside every node and a shared 25 GB/s inter-node network. Devices fill
  /// nodes in order (device d sits on node d / per_node); the host lives on
  /// node 0. Throws std::invalid_argument naming `profile_name` and the rack
  /// capacity when num_gpus exceeds max_nodes * per_node.
  static ClusterProfile rack(int num_gpus, int per_node, int max_nodes,
                             const std::string& profile_name);
};

/// Throws std::invalid_argument naming the profile and its capacity when
/// `num_gpus` exceeds it — the shared loud-failure path for every profile
/// factory and for RunConfig/--devices validation.
void check_profile_capacity(const std::string& profile_name, int num_gpus,
                            int capacity);

}  // namespace bsr::cluster
