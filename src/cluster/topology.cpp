#include "cluster/topology.hpp"

#include <stdexcept>
#include <string>

namespace bsr::cluster {

namespace {

const hw::TransferModel& link_or_throw(
    const std::vector<hw::TransferModel>& links, int device) {
  if (device < 0 || static_cast<std::size_t>(device) >= links.size()) {
    throw std::out_of_range("LinkTopology: no link for device " +
                            std::to_string(device) + " (have " +
                            std::to_string(links.size()) + ")");
  }
  return links[static_cast<std::size_t>(device)];
}

}  // namespace

SimTime LinkTopology::host_to_device(int device, double bytes) const {
  const hw::TransferModel& link = link_or_throw(host_links, device);
  return max(link.time_for_bytes(bytes), host_bus.time_for_bytes(bytes));
}

SimTime LinkTopology::device_to_host(int device, double bytes) const {
  // Links are symmetric; the distinction exists for callers' readability.
  return host_to_device(device, bytes);
}

const hw::TransferModel* LinkTopology::peer(int src, int dst) const {
  if (auto it = peer_links.find({src, dst}); it != peer_links.end()) {
    return &it->second;
  }
  if (auto it = peer_links.find({dst, src}); it != peer_links.end()) {
    return &it->second;
  }
  return nullptr;
}

SimTime LinkTopology::device_to_device(int src, int dst, double bytes) const {
  if (src == dst) return SimTime::zero();
  if (const hw::TransferModel* direct = peer(src, dst)) {
    return direct->time_for_bytes(bytes);
  }
  return device_to_host(src, bytes) + staging_latency +
         host_to_device(dst, bytes);
}

ClusterProfile ClusterProfile::paper_scaleout(int num_gpus) {
  if (num_gpus < 1) {
    throw std::invalid_argument("ClusterProfile: need num_gpus >= 1 (got " +
                                std::to_string(num_gpus) + ")");
  }
  const hw::PlatformProfile single = hw::PlatformProfile::paper_default();
  ClusterProfile c;
  c.host = single.cpu;
  c.devices.assign(static_cast<std::size_t>(num_gpus), single.gpu);
  for (int d = 0; d < num_gpus; ++d) {
    c.devices[static_cast<std::size_t>(d)].name =
        single.gpu.name + " #" + std::to_string(d);
  }
  // Every device keeps the paper's x16 link; the shared root complex sustains
  // roughly two concurrent x16 streams before transfers start queueing.
  c.links.host_links.assign(static_cast<std::size_t>(num_gpus), single.link);
  c.links.host_bus = {.bandwidth_gbs = 2.0 * single.link.bandwidth_gbs,
                      .latency = single.link.latency};
  c.links.staging_latency = SimTime::from_micros(25.0);
  return c;
}

ClusterProfile ClusterProfile::nvlink_pairs(int num_gpus) {
  ClusterProfile c = paper_scaleout(num_gpus);
  const hw::TransferModel nvlink{.bandwidth_gbs = 40.0,
                                 .latency = SimTime::from_micros(3.0)};
  for (int d = 0; d + 1 < num_gpus; d += 2) {
    c.links.peer_links.emplace(std::make_pair(d, d + 1), nvlink);
  }
  return c;
}

}  // namespace bsr::cluster
