#include "cluster/topology.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace bsr::cluster {

namespace {

const hw::TransferModel& link_or_throw(
    const std::vector<hw::TransferModel>& links, int device) {
  if (device < 0 || static_cast<std::size_t>(device) >= links.size()) {
    throw std::out_of_range("LinkTopology: no link for device " +
                            std::to_string(device) + " (have " +
                            std::to_string(links.size()) + ")");
  }
  return links[static_cast<std::size_t>(device)];
}

}  // namespace

int LinkTopology::num_nodes() const {
  int last = 0;
  for (const int n : node_of) last = std::max(last, n);
  return last + 1;
}

SimTime LinkTopology::host_to_device(int device, double bytes) const {
  const hw::TransferModel& link = link_or_throw(host_links, device);
  SimTime t = max(link.time_for_bytes(bytes), host_bus.time_for_bytes(bytes));
  if (node(device) != 0) {
    // Remote node: the transfer additionally crosses the inter-node network
    // and the target node's local bus. Segments are pipelined (store-and-
    // forward at wire speed), so the uncontended duration is the slowest
    // segment, exactly like the link-vs-bus rule above.
    t = max(t, internode.time_for_bytes(bytes));
    t = max(t, node_bus.time_for_bytes(bytes));
  }
  return t;
}

SimTime LinkTopology::device_to_host(int device, double bytes) const {
  // Links are symmetric; the distinction exists for callers' readability.
  return host_to_device(device, bytes);
}

const hw::TransferModel* LinkTopology::peer(int src, int dst) const {
  if (auto it = peer_links.find({src, dst}); it != peer_links.end()) {
    return &it->second;
  }
  if (auto it = peer_links.find({dst, src}); it != peer_links.end()) {
    return &it->second;
  }
  return nullptr;
}

SimTime LinkTopology::device_to_device(int src, int dst, double bytes) const {
  if (src == dst) return SimTime::zero();
  if (const hw::TransferModel* direct = peer(src, dst)) {
    return direct->time_for_bytes(bytes);
  }
  return device_to_host(src, bytes) + staging_latency +
         host_to_device(dst, bytes);
}

ClusterProfile ClusterProfile::paper_scaleout(int num_gpus) {
  if (num_gpus < 1) {
    throw std::invalid_argument("ClusterProfile: need num_gpus >= 1 (got " +
                                std::to_string(num_gpus) + ")");
  }
  const hw::PlatformProfile single = hw::PlatformProfile::paper_default();
  ClusterProfile c;
  c.host = single.cpu;
  c.devices.assign(static_cast<std::size_t>(num_gpus), single.gpu);
  for (int d = 0; d < num_gpus; ++d) {
    c.devices[static_cast<std::size_t>(d)].name =
        single.gpu.name + " #" + std::to_string(d);
  }
  // Every device keeps the paper's x16 link; the shared root complex sustains
  // roughly two concurrent x16 streams before transfers start queueing.
  c.links.host_links.assign(static_cast<std::size_t>(num_gpus), single.link);
  c.links.host_bus = {.bandwidth_gbs = 2.0 * single.link.bandwidth_gbs,
                      .latency = single.link.latency};
  c.links.staging_latency = SimTime::from_micros(25.0);
  return c;
}

ClusterProfile ClusterProfile::nvlink_pairs(int num_gpus) {
  ClusterProfile c = paper_scaleout(num_gpus);
  const hw::TransferModel nvlink{.bandwidth_gbs = 40.0,
                                 .latency = SimTime::from_micros(3.0)};
  for (int d = 0; d + 1 < num_gpus; d += 2) {
    c.links.peer_links.emplace(std::make_pair(d, d + 1), nvlink);
  }
  return c;
}

void check_profile_capacity(const std::string& profile_name, int num_gpus,
                            int capacity) {
  if (num_gpus <= capacity) return;
  throw std::invalid_argument("cluster profile \"" + profile_name +
                              "\" holds at most " + std::to_string(capacity) +
                              " devices; got " + std::to_string(num_gpus));
}

ClusterProfile ClusterProfile::rack(int num_gpus, int per_node, int max_nodes,
                                    const std::string& profile_name) {
  check_profile_capacity(profile_name, num_gpus, per_node * max_nodes);
  ClusterProfile c = paper_scaleout(num_gpus);
  c.devices_per_node = per_node;
  c.links.node_of.resize(static_cast<std::size_t>(num_gpus));
  for (int d = 0; d < num_gpus; ++d) {
    c.links.node_of[static_cast<std::size_t>(d)] = d / per_node;
  }
  // The rack chassis are a hardware generation ahead of the paper's testbed:
  // PCIe 4.0 x16 per device behind a root complex that sustains two
  // concurrent gen4 streams (DGX-class dual-socket I/O).
  const hw::TransferModel gen4{.bandwidth_gbs = 25.0,
                               .latency = SimTime::from_micros(5.0)};
  c.links.host_links.assign(static_cast<std::size_t>(num_gpus), gen4);
  c.links.host_bus = {.bandwidth_gbs = 2.0 * gen4.bandwidth_gbs,
                      .latency = gen4.latency};
  // Each non-host node mirrors the host's root complex; the inter-node
  // fabric sustains one HDR-class stream between any two chassis.
  c.links.node_bus = c.links.host_bus;
  c.links.internode = {.bandwidth_gbs = 25.0,
                       .latency = SimTime::from_micros(5.0)};
  // DGX-style all-to-all NVLink inside every node: peer traffic between
  // chassis still stages through the hosts.
  const hw::TransferModel nvlink{.bandwidth_gbs = 40.0,
                                 .latency = SimTime::from_micros(3.0)};
  for (int a = 0; a < num_gpus; ++a) {
    for (int b = a + 1; b < num_gpus; ++b) {
      if (a / per_node != b / per_node) continue;
      c.links.peer_links.emplace(std::make_pair(a, b), nvlink);
    }
  }
  return c;
}

}  // namespace bsr::cluster
