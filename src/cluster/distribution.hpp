// Block-cyclic distribution of the factorization's per-iteration tasks.
//
// Block column j of the matrix is owned by device j mod D (ScaLAPACK-style
// 1-D block-cyclic layout). At iteration k the trailing block columns
// k+1 .. K-1 are updated in place by their owners, so a device's share of the
// iteration's PU/TMU/checksum work is the fraction of trailing columns it
// owns — balanced early, and degrading gracefully to a single owner in the
// last iterations when fewer trailing columns remain than devices.
#pragma once

#include <cstdint>

#include "predict/workload.hpp"

namespace bsr::cluster {

struct BlockCyclic {
  int devices = 1;

  /// Owner of block column j.
  [[nodiscard]] int owner(std::int64_t block_col) const {
    return static_cast<int>(block_col % devices);
  }

  /// Number of trailing block columns (k+1 .. K-1) device d updates at
  /// iteration k. Zero once the trailing matrix has fewer columns than
  /// devices and d owns none of them.
  [[nodiscard]] std::int64_t local_cols(const predict::WorkloadModel& wl,
                                        int k, int d) const;

  /// d's fraction of iteration k's trailing-update work, in [0, 1]; the
  /// shares over all devices sum to 1 while trailing columns remain, and to 0
  /// at the final iteration (no trailing matrix left).
  [[nodiscard]] double share(const predict::WorkloadModel& wl, int k,
                             int d) const;
};

}  // namespace bsr::cluster
