// Block-cyclic distribution of the factorization's per-iteration tasks.
//
// The default layout is 1-D: block column j of the matrix is owned by device
// j mod D (ScaLAPACK-style 1-D block-cyclic). At iteration k the trailing
// block columns k+1 .. K-1 are updated in place by their owners, so a
// device's share of the iteration's PU/TMU/checksum work is the fraction of
// trailing columns it owns — balanced early, and degrading gracefully to a
// single owner in the last iterations when fewer trailing columns remain
// than devices.
//
// A p x q process grid generalizes this to the 2-D block-cyclic layout:
// trailing block (i, j) is owned by device (j mod p) + p * (i mod q), so a
// device's share is its fraction of the (K-k-1)^2 trailing blocks. q = 1
// with p = D recovers the 1-D layout exactly — same owners, same counts,
// and share() computes through the 1-D arithmetic bit-for-bit.
#pragma once

#include <cstdint>

#include "predict/workload.hpp"

namespace bsr::cluster {

struct BlockCyclic {
  int devices = 1;
  /// Process grid: grid_p owners across block columns, grid_q across block
  /// rows (grid_p * grid_q == devices). 0/0 = the 1-D layout (devices x 1).
  int grid_p = 0;
  int grid_q = 0;

  [[nodiscard]] int p() const { return grid_p > 0 ? grid_p : devices; }
  [[nodiscard]] int q() const { return grid_q > 0 ? grid_q : 1; }

  /// Owner of trailing block (block_row, block_col) on the process grid.
  [[nodiscard]] int owner_block(std::int64_t block_row,
                                std::int64_t block_col) const {
    return static_cast<int>(block_col % p()) +
           p() * static_cast<int>(block_row % q());
  }

  /// Owner of diagonal block (and thus panel) j: the device that ships panel
  /// j home for the look-ahead. Equals j mod devices on the 1-D layout.
  [[nodiscard]] int owner(std::int64_t block_col) const {
    return owner_block(block_col, block_col);
  }

  /// Device d's row group (0 .. q-1) — which slice of the broadcast panel it
  /// consumes — and column group (0 .. p-1).
  [[nodiscard]] int row_group(int d) const { return d / p(); }
  [[nodiscard]] int col_group(int d) const { return d % p(); }

  /// Number of trailing block columns (k+1 .. K-1) in device d's column
  /// group at iteration k. On the 1-D layout this is exactly the number of
  /// trailing columns d owns; on a 2-D grid it is the column extent of d's
  /// local block set.
  [[nodiscard]] std::int64_t local_cols(const predict::WorkloadModel& wl,
                                        int k, int d) const;

  /// Number of trailing blocks (i, j) in [k+1, K)^2 owned by device d.
  [[nodiscard]] std::int64_t local_blocks(const predict::WorkloadModel& wl,
                                          int k, int d) const;

  /// True when d owns at least one trailing block at iteration k.
  [[nodiscard]] bool has_work(const predict::WorkloadModel& wl, int k,
                              int d) const;

  /// d's fraction of iteration k's trailing-update work, in [0, 1]; the
  /// shares over all devices sum to 1 while trailing blocks remain, and to 0
  /// at the final iteration (no trailing matrix left).
  [[nodiscard]] double share(const predict::WorkloadModel& wl, int k,
                             int d) const;

  /// Fraction of the broadcast panel consumed by row group rg at iteration
  /// k: the trailing block rows owned by rg over all trailing block rows
  /// (exactly 1 on the 1-D layout).
  [[nodiscard]] double row_slice(const predict::WorkloadModel& wl, int k,
                                 int rg) const;
};

}  // namespace bsr::cluster
