// Event-driven cluster factorization engine.
//
// Generalizes the two-lane sched::HybridPipeline to one host plus N
// accelerators: per iteration k the host factors panel k (PD), the panel is
// broadcast over the per-device links (queueing on the shared host bus), and
// every device applies the update to the trailing block columns it owns
// (block-cyclic). The owner of panel k+1 ships it back to the host as soon as
// *its own* update finishes — the look-ahead that lets PD(k+1) overlap the
// other devices' Upd(k, .) work. There is no per-iteration barrier: tasks are
// ordered only by their true dependencies on a discrete-event queue
// (cluster/event_engine.hpp), so slack is a per-device quantity.
//
// Energy-management strategies generalize per device: the slowest lane
// (host or any device) is the critical path; BSR overclocks it to reclaim the
// r fraction of its gap to the second-longest lane and down-clocks every
// other lane into its own slack, with ABFT-OC (Algorithm 1) consulted per
// device at that device's clock, covering that device's local block count.
#pragma once

#include <cstdint>
#include <optional>

#include "abft/checksum.hpp"
#include "cluster/report.hpp"
#include "cluster/topology.hpp"
#include "energy/bsr_strategy.hpp"
#include "obs/trace.hpp"
#include "predict/workload.hpp"
#include "sched/pipeline.hpp"

namespace bsr::cluster {

/// The four built-in policies, generalized to N devices. (Registry-only
/// strategies implement the two-lane energy::Strategy interface and cannot
/// drive the cluster engine; core rejects them with a clear message.)
enum class ClusterStrategy { Original, R2H, SR, BSR };

/// How the factored panel reaches the devices each iteration.
///
///   Relay — the pre-collective behavior: a host-rooted star over the
///       per-device links (queueing on the host bus), with a one-hop
///       opportunistic forward over a direct peer link when a lower-indexed
///       recipient already holds the panel.
///   Ring — a node-contiguous chain host -> d0 -> d1 -> ...: each recipient
///       forwards over its peer link (staging through the host only when no
///       peer link exists), so the host pays for one send however many
///       devices listen.
///   Tree — a two-level binomial broadcast: the host sends once per node
///       (crossing the inter-node network), then each node's recipients
///       double the holder set every round over intra-node peer links —
///       O(log per_node) rounds instead of a per-device host send.
enum class BroadcastSchedule { Relay, Ring, Tree };

struct ClusterOptions {
  ClusterStrategy strategy = ClusterStrategy::BSR;
  /// r / fc_desired / ablation switches, shared by every device pair.
  energy::BsrConfig bsr;
  /// Force one checksum mode on every device-iteration; nullopt = adaptive
  /// (ABFT-OC per device at its chosen clock).
  std::optional<abft::ChecksumMode> forced_abft;
  std::uint64_t seed = 42;
  /// Same efficiency-drift + lognormal-jitter model as the single-node
  /// pipeline; every lane gets an independent per-iteration stream derived
  /// from `seed`, so runs are bitwise reproducible.
  sched::NoiseModel noise;
  /// Seeded stochastic execution models (bsr/variability.hpp) on top of the
  /// calibrated noise: per-lane drift walks diverge the devices into genuine
  /// stragglers, transfers jitter per realized leg, DVFS transitions jitter
  /// and quantize, and boost budgets throttle long-overclocked lanes.
  /// Disabled by default — the engine is then bit-for-bit the deterministic
  /// one. Streams derive from `seed` (or variability.seed) per lane, so runs
  /// stay bitwise reproducible at any sweep thread count.
  var::Spec variability;
  /// Seeded statistical fault processes + recovery-cost model
  /// (bsr/faults.hpp): each device samples faults over its local update
  /// windows at the SDC-table rates of its *realized* clock, pays the
  /// correction latency in-lane, and redoes the window at its base clock on
  /// an uncorrectable detection. Per-lane streams derive from `seed` (or
  /// faults.seed), so campaigns stay bitwise reproducible at any sweep
  /// thread count. Disabled by default — the engine is then bit-for-bit the
  /// no-fault one.
  faultcamp::Spec faults;
  /// Optional span recorder (bsr/observability.hpp): per-event busy windows
  /// (PD / update / transfer / recovery / DVFS transitions) are emitted at
  /// the points where durations are realized. Null (the default) skips every
  /// emission; tracing observes the timeline without perturbing it, so the
  /// ClusterReport is bit-for-bit identical either way.
  obs::TraceRecorder* trace = nullptr;
  /// Process grid for the trailing-update distribution: grid_p owners across
  /// block columns, grid_q across block rows (grid_p * grid_q must equal the
  /// device count). 0/0 (default) keeps the 1-D column-cyclic layout —
  /// bit-for-bit the pre-grid engine.
  int grid_p = 0;
  int grid_q = 0;
  /// Panel-broadcast schedule. Relay (default) is bit-for-bit the
  /// pre-collective engine on the 1-D layout.
  BroadcastSchedule schedule = BroadcastSchedule::Relay;
  /// Straggler rebalancing: re-weight per-device work shares each iteration
  /// by the lanes' predicted throughput (per-lane TMU predictions absorb the
  /// variability drift walks), so a drifting-slow device sheds trailing
  /// blocks instead of pinning the critical path. Off (default) keeps the
  /// static block-cyclic shares — bit-for-bit the pre-rebalancing engine.
  bool rebalance = false;
};

/// Runs the whole factorization on the cluster; bitwise deterministic in
/// (profile, workload, options).
ClusterReport run_cluster(const ClusterProfile& profile,
                          const predict::WorkloadModel& workload,
                          const ClusterOptions& options);

}  // namespace bsr::cluster
