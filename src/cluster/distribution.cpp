#include "cluster/distribution.hpp"

namespace bsr::cluster {

std::int64_t BlockCyclic::local_cols(const predict::WorkloadModel& wl, int k,
                                     int d) const {
  const std::int64_t first = static_cast<std::int64_t>(k) + 1;
  const std::int64_t last = wl.num_iterations();  // exclusive
  if (first >= last) return 0;
  // Count j in [first, last) with j mod devices == d.
  const std::int64_t dd = devices;
  const std::int64_t lo = first + ((d - first) % dd + dd) % dd;
  if (lo >= last) return 0;
  return (last - 1 - lo) / dd + 1;
}

double BlockCyclic::share(const predict::WorkloadModel& wl, int k,
                          int d) const {
  const std::int64_t total =
      static_cast<std::int64_t>(wl.num_iterations()) - k - 1;
  if (total <= 0) return 0.0;
  return static_cast<double>(local_cols(wl, k, d)) /
         static_cast<double>(total);
}

}  // namespace bsr::cluster
