#include "cluster/distribution.hpp"

namespace bsr::cluster {

namespace {

/// Count of j in [first, last) with j mod m == r.
std::int64_t cyclic_count(std::int64_t first, std::int64_t last,
                          std::int64_t m, std::int64_t r) {
  if (first >= last) return 0;
  const std::int64_t lo = first + ((r - first) % m + m) % m;
  if (lo >= last) return 0;
  return (last - 1 - lo) / m + 1;
}

}  // namespace

std::int64_t BlockCyclic::local_cols(const predict::WorkloadModel& wl, int k,
                                     int d) const {
  const std::int64_t first = static_cast<std::int64_t>(k) + 1;
  const std::int64_t last = wl.num_iterations();  // exclusive
  return cyclic_count(first, last, p(), col_group(d));
}

std::int64_t BlockCyclic::local_blocks(const predict::WorkloadModel& wl,
                                       int k, int d) const {
  const std::int64_t first = static_cast<std::int64_t>(k) + 1;
  const std::int64_t last = wl.num_iterations();
  return local_cols(wl, k, d) *
         cyclic_count(first, last, q(), row_group(d));
}

bool BlockCyclic::has_work(const predict::WorkloadModel& wl, int k,
                           int d) const {
  return local_blocks(wl, k, d) > 0;
}

double BlockCyclic::share(const predict::WorkloadModel& wl, int k,
                          int d) const {
  const std::int64_t total =
      static_cast<std::int64_t>(wl.num_iterations()) - k - 1;
  if (total <= 0) return 0.0;
  if (q() == 1) {
    // 1-D layout: the share is the trailing-column fraction, computed with
    // the pre-grid arithmetic so existing runs stay bit-for-bit identical.
    return static_cast<double>(local_cols(wl, k, d)) /
           static_cast<double>(total);
  }
  return static_cast<double>(local_blocks(wl, k, d)) /
         static_cast<double>(total * total);
}

double BlockCyclic::row_slice(const predict::WorkloadModel& wl, int k,
                              int rg) const {
  const std::int64_t total =
      static_cast<std::int64_t>(wl.num_iterations()) - k - 1;
  if (total <= 0) return 0.0;
  if (q() == 1) return 1.0;
  return static_cast<double>(cyclic_count(static_cast<std::int64_t>(k) + 1,
                                          wl.num_iterations(), q(), rg)) /
         static_cast<double>(total);
}

}  // namespace bsr::cluster
