#include "cluster/event_engine.hpp"

#include <algorithm>
#include <utility>

namespace bsr::cluster {

void EventEngine::schedule_at(SimTime t, Handler fn) {
  heap_.push_back(Event{max(t, now_), next_seq_++, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), later);
}

SimTime EventEngine::run() {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), later);
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    now_ = ev.time;
    ++processed_;
    ev.fn();  // may schedule further events
  }
  return now_;
}

}  // namespace bsr::cluster
