#include "cluster/event_engine.hpp"

namespace bsr::cluster {

SimTime EventEngine::run() {
  return BasicEventEngine<Handler>::run([](Handler& fn) { fn(); });
}

}  // namespace bsr::cluster
