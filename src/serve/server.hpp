// The bsr_served server loop: accept thread + bounded connection queue +
// worker threads on common/thread_pool, serving the protocol.hpp ops with
// three result tiers (in-memory cache, single-flight coalescing, durable
// DiskResultStore).
//
// Request path for one run fingerprint fp:
//
//   memory cache hit ──────────────────────────► "memory"   (no work)
//   miss, flight for fp in progress ───────────► "coalesced" (wait, share)
//   miss, leader: durable store hit ───────────► "store"    (no execution)
//   miss, leader: store miss ──────────────────► "executed" (one run)
//
// Executed and store-served reports are promoted into the memory cache as
// their SERIALIZED text, so a repeat — same process or after a daemon
// restart — answers with bytes identical to the cold response (the
// serialize/deserialize fixpoint in serve/report_json.hpp).
//
// Admission control: the accept thread never blocks on workers. When
// queue_depth connections are already waiting, a new connection receives
// one {"ok":false,"error":"overloaded","retry":true} line and is closed —
// explicit backpressure, never unbounded queue growth.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "bsr/run_config.hpp"
#include "common/json.hpp"
#include "common/metrics.hpp"
#include "common/socket.hpp"
#include "core/report.hpp"
#include "serve/single_flight.hpp"
#include "serve/store.hpp"

namespace bsr::serve {

/// Everything configurable about one Server.
struct ServerConfig {
  /// Unix-socket path to listen on; empty = listen on localhost TCP instead.
  std::string socket_path;
  /// TCP port when socket_path is empty (0 = pick an ephemeral port).
  std::uint16_t tcp_port = 0;
  /// Concurrent connection-serving workers (run on a common/thread_pool).
  int workers = 4;
  /// Connections allowed to wait for a worker before new ones are refused
  /// with an "overloaded" response.
  int queue_depth = 64;
  /// Directory of the durable result store; empty = memory-only (results
  /// die with the process).
  std::string store_dir;
  /// The execution function for cache-miss runs. Defaults to bsr::run.
  /// Injectable so tests can gate, count, or fail executions
  /// deterministically.
  std::function<core::RunReport(const RunConfig&)> runner;
};

/// Monotone counters of one Server's lifetime (see stats()).
struct ServeStats {
  std::uint64_t connections = 0;  ///< accepted and served
  std::uint64_t overloaded = 0;   ///< refused by admission control
  std::uint64_t requests = 0;     ///< request lines parsed (any op)
  std::uint64_t bad_requests = 0; ///< lines answered with ok:false
  std::uint64_t runs = 0;         ///< run-op configs + sweep-op cells
  std::uint64_t memory_hits = 0;  ///< tier 1: in-memory serialized cache
  std::uint64_t coalesced = 0;    ///< tier 2: joined an in-flight execution
  std::uint64_t store_hits = 0;   ///< tier 3: durable store
  std::uint64_t executed = 0;     ///< tier 4: simulator executions
};

/// One cached result: the serialized report (shared, immutable) plus the
/// scalar metrics the sweep op reports without re-deserializing.
struct CachedResult {
  std::shared_ptr<const std::string> json;
  double seconds = 0.0;
  double energy_j = 0.0;
  double ed2p = 0.0;
  double gflops = 0.0;
  /// Whether the leading lookup was served from the durable store (tier 3)
  /// rather than executed (tier 4). Meaningful only on the flight leader's
  /// copy — followers report "coalesced" regardless.
  bool from_store = false;
};

/// One daemon instance. start() spawns the accept thread and the worker
/// pool; stop() (or a client's shutdown op) drains and joins everything.
/// Construct -> start() -> wait() is the daemon main loop; tests drive
/// start()/stop() directly.
class Server {
 public:
  explicit Server(ServerConfig config);
  /// Joins all threads (calls stop() if still running).
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket and launches the accept thread + workers. Throws
  /// std::runtime_error when the socket cannot be bound.
  void start();

  /// Graceful shutdown: stop accepting, serve the already-queued
  /// connections, join all threads, unlink the Unix socket file.
  /// Idempotent.
  void stop();

  /// Blocks until a client's shutdown op, a request_stop(), or a concurrent
  /// stop() fires, then completes the shutdown (joins everything).
  void wait();

  /// Flags the daemon down without blocking or locking — the only Server
  /// call that is async-signal-safe (one atomic store), so bsr_served's
  /// SIGINT/SIGTERM handler can use it. wait() notices within ~100 ms.
  void request_stop() { shutdown_requested_.store(true); }

  /// True between start() and the completion of stop().
  [[nodiscard]] bool running() const { return running_.load(); }

  /// The bound TCP port (0 when serving a Unix socket).
  [[nodiscard]] std::uint16_t port() const { return port_; }
  /// The Unix socket path ("" when serving TCP).
  [[nodiscard]] const std::string& socket_path() const {
    return config_.socket_path;
  }

  /// Lifetime counters (copied under the stats lock).
  [[nodiscard]] ServeStats stats() const;
  /// Durable-store counters (all zero when no store is mounted).
  [[nodiscard]] StoreStats store_stats() const;
  /// Entries in the in-memory serialized-report cache.
  [[nodiscard]] std::size_t cache_entries() const;

  /// The in-flight coalescing group (exposed for deterministic tests:
  /// waiters(fp) lets a gated runner block until N-1 followers joined).
  [[nodiscard]] SingleFlight<CachedResult>& flights() { return flights_; }

 private:
  void accept_loop();
  void worker_loop();
  void serve_connection(Socket conn);
  /// Dispatches one request line; returns false when the connection should
  /// close (shutdown op).
  bool handle_line(const std::string& line, const Socket& conn);
  std::string handle_run(const JsonValue& body);
  std::string handle_sweep(const JsonValue& body);
  std::string handle_stats();
  std::string handle_metrics();

  /// The tiered lookup for one config. Returns the cached result plus the
  /// source tag ("memory" / "coalesced" / "store" / "executed").
  std::pair<CachedResult, const char*> resolve(const RunConfig& cfg,
                                               const std::string& fingerprint);

  ServerConfig config_;
  std::uint16_t port_ = 0;
  Socket listener_;
  std::unique_ptr<DiskResultStore> store_;

  std::thread accept_thread_;
  std::thread pool_thread_;  // runs ThreadPool::parallel_for over the workers

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Socket> queue_;
  bool stopping_ = false;  // guarded by queue_mutex_

  // Connections currently being served, so stop() can shutdown(2) their
  // descriptors: a worker blocked reading an idle connection wakes with EOF
  // instead of stalling the join forever.
  std::mutex conns_mutex_;
  std::set<int> active_fds_;

  std::atomic<bool> running_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::mutex shutdown_mutex_;
  std::condition_variable shutdown_cv_;

  mutable std::mutex cache_mutex_;
  std::map<std::string, CachedResult> cache_;

  SingleFlight<CachedResult> flights_;

  mutable std::mutex stats_mutex_;
  ServeStats stats_;

  /// ServeStats mirrored onto the process-wide metrics registry
  /// (bsr/observability.hpp): the struct keeps its copy-out API, the
  /// registry gets the same monotone counts plus request-latency
  /// histograms, all sharing one `metrics`-op exposition. References are
  /// resolved once in the constructor; re-registration of the same names
  /// by a second Server in the same process returns the same instruments
  /// (the counts are process-cumulative, as Prometheus counters must be).
  struct Instruments {
    common::Counter& connections;
    common::Counter& overloaded;
    common::Counter& requests;
    common::Counter& bad_requests;
    common::Counter& runs;
    common::Counter& memory_hits;
    common::Counter& coalesced;
    common::Counter& store_hits;
    common::Counter& executed;
    common::Histogram& request_latency;  ///< all ops, seconds
    common::Histogram& run_latency;      ///< run-op resolve path, seconds
    common::Histogram& sweep_latency;    ///< sweep-op full grids, seconds
  };
  Instruments metrics_;
};

}  // namespace bsr::serve
