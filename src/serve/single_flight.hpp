// Single-flight request coalescing: N concurrent callers asking for the same
// key share ONE execution of the work function; the other N-1 block until
// the leader publishes and then return the same value.
//
// This is the serving subsystem's concurrency-dedup layer (bsr/serve.hpp):
// the daemon keys flights by RunConfig::fingerprint(), so a thundering herd
// of identical sweep requests costs one simulator run, not N. The group is
// generic over the published value type (the daemon publishes the serialized
// response body, tests publish ints).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

namespace bsr::serve {

/// One key-space of coalesced flights. Thread-safe.
template <typename Value>
class SingleFlight {
 public:
  /// Outcome of one do_call: the shared value plus whether this caller was
  /// the leader (executed `fn`) or a follower (waited for the leader).
  struct Result {
    Value value;
    bool leader = false;
  };

  /// If no flight for `key` is in progress, runs fn() as the leader and
  /// publishes its value to every follower that arrived meanwhile; otherwise
  /// blocks until the in-progress leader publishes. A leader whose fn()
  /// throws propagates the exception to itself AND rethrows it in every
  /// follower (nobody hangs on a failed flight). The flight is forgotten
  /// afterwards — remembering completed values is the cache tiers'
  /// business, not this class's.
  template <typename Fn>
  Result do_call(const std::string& key, Fn&& fn) {
    std::shared_ptr<Flight> flight;
    bool leader = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      const auto it = flights_.find(key);
      if (it == flights_.end()) {
        flight = std::make_shared<Flight>();
        flights_.emplace(key, flight);
        leader = true;
      } else {
        flight = it->second;
        ++flight->waiters;
      }
    }
    if (!leader) {
      std::unique_lock<std::mutex> lock(flight->m);
      flight->cv.wait(lock, [&] { return flight->done; });
      if (flight->error) std::rethrow_exception(flight->error);
      return Result{flight->value, false};
    }
    Result result;
    result.leader = true;
    try {
      result.value = fn();
    } catch (...) {
      publish(key, flight, nullptr, std::current_exception());
      throw;
    }
    publish(key, flight, &result.value, nullptr);
    return result;
  }

  /// Number of followers currently blocked on `key`'s flight (0 when no
  /// flight is in progress). Exposed so tests can gate a leader's fn until
  /// all concurrent requesters have provably joined the flight — making
  /// "N identical in-flight requests, exactly one execution" deterministic.
  [[nodiscard]] std::uint64_t waiters(const std::string& key) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = flights_.find(key);
    return it == flights_.end() ? 0 : it->second->waiters;
  }

  /// Flights led (executions) over this group's lifetime.
  [[nodiscard]] std::uint64_t led() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return led_;
  }
  /// Follower joins (executions saved) over this group's lifetime.
  [[nodiscard]] std::uint64_t coalesced() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return coalesced_;
  }

 private:
  struct Flight {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    Value value{};
    std::exception_ptr error;
    std::uint64_t waiters = 0;  // guarded by the group mutex, not m
  };

  void publish(const std::string& key, const std::shared_ptr<Flight>& flight,
               const Value* value, std::exception_ptr error) {
    {
      std::lock_guard<std::mutex> lock(flight->m);
      if (value != nullptr) flight->value = *value;
      flight->error = std::move(error);
      flight->done = true;
    }
    flight->cv.notify_all();
    std::lock_guard<std::mutex> lock(mutex_);
    ++led_;
    coalesced_ += flight->waiters;
    flights_.erase(key);
  }

  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<Flight>> flights_;
  std::uint64_t led_ = 0;
  std::uint64_t coalesced_ = 0;
};

}  // namespace bsr::serve
