#include "serve/client.hpp"

#include <stdexcept>
#include <utility>

namespace bsr::serve {

Client Client::connect_unix_socket(const std::string& path) {
  return Client(connect_unix(path));
}

Client Client::connect_tcp(std::uint16_t port) {
  return Client(connect_tcp_localhost(port));
}

std::string Client::call_raw(const std::string& request_json) {
  socket_.send_all(request_json + "\n");
  std::optional<std::string> line = reader_.read_line();
  if (!line.has_value()) {
    throw std::runtime_error("serve: daemon closed the connection");
  }
  return *std::move(line);
}

JsonValue Client::call(const std::string& request_json) {
  return JsonValue::parse(call_raw(request_json));
}

JsonValue Client::run(const std::string& config_json) {
  if (config_json.empty()) return call(R"({"op":"run"})");
  JsonWriter w;
  w.obj_open();
  w.key("op").value("run");
  w.key("config").raw(config_json);
  w.obj_close();
  return call(w.take());
}

JsonValue Client::stats() { return call(R"({"op":"stats"})"); }

JsonValue Client::shutdown() { return call(R"({"op":"shutdown"})"); }

}  // namespace bsr::serve
