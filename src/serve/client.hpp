// A blocking client for the bsr_served wire protocol (serve/protocol.hpp):
// one connection, request lines out, parsed response objects back. This is
// what bsr_servectl, bench_serve's load threads, and the server tests speak
// through — and the reference implementation for clients in other languages
// (the protocol is just newline-delimited JSON; see docs/SERVING.md).
#pragma once

#include <cstdint>
#include <string>

#include "common/json.hpp"
#include "common/socket.hpp"

namespace bsr::serve {

/// One connected protocol client. Move-only (it owns the socket).
class Client {
 public:
  /// Connects to the daemon's Unix socket. Throws std::runtime_error when
  /// nothing is listening at `path`.
  static Client connect_unix_socket(const std::string& path);
  /// Connects to a daemon serving localhost TCP.
  static Client connect_tcp(std::uint16_t port);

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// Sends one already-serialized request line (the trailing '\n' is added
  /// here) and returns the raw response line. Throws std::runtime_error on
  /// a dropped connection (the daemon closes after a shutdown response, or
  /// drops overloaded connections after one rejection line).
  std::string call_raw(const std::string& request_json);

  /// call_raw + JsonValue::parse. The response always carries "ok"; callers
  /// check it (this function does not throw on ok:false — backpressure and
  /// request errors are data, not exceptions).
  JsonValue call(const std::string& request_json);

  /// Convenience: {"op":"run","config":<config_json>} (or a bare
  /// {"op":"run"} when `config_json` is empty — the daemon's defaults).
  JsonValue run(const std::string& config_json = "");
  /// Convenience: {"op":"stats"}.
  JsonValue stats();
  /// Convenience: {"op":"shutdown"}; the daemon answers, then stops.
  JsonValue shutdown();

 private:
  explicit Client(Socket socket)
      : socket_(std::move(socket)), reader_(socket_) {}

  Socket socket_;
  LineReader reader_;
};

}  // namespace bsr::serve
