#include "serve/report_json.hpp"

#include <stdexcept>
#include <utility>

namespace bsr::serve {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("report_json: " + what);
}

// ---- enum spellings ---------------------------------------------------------
// Serialized with the repo's to_string() spellings; the parsers here accept
// exactly those spellings (registry-key case-insensitivity is a CLI nicety,
// not a wire-format one — this module only reads its own output).

core::StrategyKind strategy_kind_from(const std::string& s) {
  if (s == "Original") return core::StrategyKind::Original;
  if (s == "R2H") return core::StrategyKind::R2H;
  if (s == "SR") return core::StrategyKind::SR;
  if (s == "BSR") return core::StrategyKind::BSR;
  fail("unknown StrategyKind \"" + s + "\"");
}

core::ExecutionMode mode_from(const std::string& s) {
  if (s == "TimingOnly") return core::ExecutionMode::TimingOnly;
  if (s == "Numeric") return core::ExecutionMode::Numeric;
  fail("unknown ExecutionMode \"" + s + "\"");
}

faultcamp::ProcessKind process_from(const std::string& s) {
  if (s == "Poisson") return faultcamp::ProcessKind::Poisson;
  if (s == "Fixed") return faultcamp::ProcessKind::Fixed;
  fail("unknown ProcessKind \"" + s + "\"");
}

const char* to_string(faultcamp::ProcessKind k) {
  return k == faultcamp::ProcessKind::Poisson ? "Poisson" : "Fixed";
}

abft::ChecksumMode checksum_mode_from(std::int64_t v) {
  switch (v) {
    case 0: return abft::ChecksumMode::None;
    case 1: return abft::ChecksumMode::SingleSide;
    case 2: return abft::ChecksumMode::Full;
    default: fail("ChecksumMode out of range: " + std::to_string(v));
  }
}

// ---- field helpers ----------------------------------------------------------

int as_int(const JsonValue& v) { return static_cast<int>(v.to_int64()); }

SimTime as_time(const JsonValue& v) { return SimTime(v.to_int64()); }

// ---- var::Spec --------------------------------------------------------------

void write_var(JsonWriter& w, const var::Spec& s) {
  w.obj_open();
  w.key("enabled").value(s.enabled);
  w.key("drift").value(s.drift);
  w.key("drift_cap").value(s.drift_cap);
  w.key("transfer_jitter").value(s.transfer_jitter);
  w.key("dvfs_jitter").value(s.dvfs_jitter);
  w.key("freq_quantum_mhz").value(s.freq_quantum_mhz);
  w.key("boost_budget_s").value(s.boost_budget_s);
  w.key("boost_recovery").value(s.boost_recovery);
  w.key("seed").value_u64(s.seed);
  w.obj_close();
}

var::Spec read_var(const JsonValue& v) {
  var::Spec s;
  s.enabled = v.at("enabled").as_bool();
  s.drift = v.at("drift").to_double();
  s.drift_cap = v.at("drift_cap").to_double();
  s.transfer_jitter = v.at("transfer_jitter").to_double();
  s.dvfs_jitter = v.at("dvfs_jitter").to_double();
  s.freq_quantum_mhz = as_int(v.at("freq_quantum_mhz"));
  s.boost_budget_s = v.at("boost_budget_s").to_double();
  s.boost_recovery = v.at("boost_recovery").to_double();
  s.seed = v.at("seed").to_uint64();
  return s;
}

// ---- faultcamp::Spec --------------------------------------------------------

void write_faults(JsonWriter& w, const faultcamp::Spec& s) {
  w.obj_open();
  w.key("enabled").value(s.enabled);
  w.key("process").value(to_string(s.process));
  w.key("rate_multiplier").value(s.rate_multiplier);
  w.key("background_rate_per_s").value(s.background_rate_per_s);
  w.key("burst_mean").value(s.burst_mean);
  w.key("hazard_sigma").value(s.hazard_sigma);
  w.key("fixed_d0").value(s.fixed_d0);
  w.key("fixed_d1").value(s.fixed_d1);
  w.key("fixed_d2").value(s.fixed_d2);
  w.key("correction_s").value(s.correction_s);
  w.key("rollback").value(s.rollback);
  w.key("seed").value_u64(s.seed);
  w.obj_close();
}

faultcamp::Spec read_faults(const JsonValue& v) {
  faultcamp::Spec s;
  s.enabled = v.at("enabled").as_bool();
  s.process = process_from(v.at("process").as_string());
  s.rate_multiplier = v.at("rate_multiplier").to_double();
  s.background_rate_per_s = v.at("background_rate_per_s").to_double();
  s.burst_mean = v.at("burst_mean").to_double();
  s.hazard_sigma = v.at("hazard_sigma").to_double();
  s.fixed_d0 = as_int(v.at("fixed_d0"));
  s.fixed_d1 = as_int(v.at("fixed_d1"));
  s.fixed_d2 = as_int(v.at("fixed_d2"));
  s.correction_s = v.at("correction_s").to_double();
  s.rollback = v.at("rollback").as_bool();
  s.seed = v.at("seed").to_uint64();
  return s;
}

// ---- core::RunOptions -------------------------------------------------------

void write_options(JsonWriter& w, const core::RunOptions& o) {
  w.obj_open();
  w.key("factorization").value(predict::to_string(o.factorization));
  w.key("n").value(o.n);
  w.key("b").value(o.b);
  w.key("strategy").value(core::to_string(o.strategy));
  w.key("reclamation_ratio").value(o.reclamation_ratio);
  w.key("fc_desired").value(o.fc_desired);
  w.key("mode").value(core::to_string(o.mode));
  w.key("seed").value_u64(o.seed);
  w.key("error_rate_multiplier").value(o.error_rate_multiplier);
  w.key("noise_enabled").value(o.noise_enabled);
  w.key("elem_bytes").value(o.elem_bytes);
  w.key("recover_uncorrectable").value(o.recover_uncorrectable);
  w.key("variability");
  write_var(w, o.variability);
  w.key("faults");
  write_faults(w, o.faults);
  w.obj_close();
}

core::RunOptions read_options(const JsonValue& v) {
  core::RunOptions o;
  o.factorization =
      core::factorization_from_string(v.at("factorization").as_string());
  o.n = v.at("n").to_int64();
  o.b = v.at("b").to_int64();
  o.strategy = strategy_kind_from(v.at("strategy").as_string());
  o.reclamation_ratio = v.at("reclamation_ratio").to_double();
  o.fc_desired = v.at("fc_desired").to_double();
  o.mode = mode_from(v.at("mode").as_string());
  o.seed = v.at("seed").to_uint64();
  o.error_rate_multiplier = v.at("error_rate_multiplier").to_double();
  o.noise_enabled = v.at("noise_enabled").as_bool();
  o.elem_bytes = as_int(v.at("elem_bytes"));
  o.recover_uncorrectable = v.at("recover_uncorrectable").as_bool();
  o.variability = read_var(v.at("variability"));
  o.faults = read_faults(v.at("faults"));
  return o;
}

// ---- sched::IterationOutcome / RunTrace -------------------------------------

void write_iteration(JsonWriter& w, const sched::IterationOutcome& it) {
  w.obj_open();
  w.key("k").value(it.k);
  w.key("cpu_freq").value(it.cpu_freq);
  w.key("gpu_freq").value(it.gpu_freq);
  w.key("abft_mode").value(static_cast<int>(it.abft_mode));
  w.key("pd_ns").value(it.pd.ns());
  w.key("pu_tmu_ns").value(it.pu_tmu.ns());
  w.key("transfer_ns").value(it.transfer.ns());
  w.key("abft_ns").value(it.abft_time.ns());
  w.key("cpu_dvfs_ns").value(it.cpu_dvfs.ns());
  w.key("gpu_dvfs_ns").value(it.gpu_dvfs.ns());
  w.key("cpu_lane_ns").value(it.cpu_lane.ns());
  w.key("gpu_lane_ns").value(it.gpu_lane.ns());
  w.key("span_ns").value(it.span.ns());
  w.key("slack_ns").value(it.slack.ns());
  w.key("cpu_energy_j").value(it.cpu_energy_j);
  w.key("gpu_energy_j").value(it.gpu_energy_j);
  w.key("pd_base_s").value(it.pd_base_s);
  w.key("pu_tmu_base_s").value(it.pu_tmu_base_s);
  w.key("transfer_s").value(it.transfer_s);
  w.key("injected_d0").value(it.faults.injected.d0);
  w.key("injected_d1").value(it.faults.injected.d1);
  w.key("injected_d2").value(it.faults.injected.d2);
  w.key("corrected_d0").value(it.faults.corrected_d0);
  w.key("corrected_d1").value(it.faults.corrected_d1);
  w.key("recovered").value(it.faults.recovered);
  w.key("unrecovered").value(it.faults.unrecovered);
  w.key("uncorrectable").value(it.faults.uncorrectable);
  w.key("rollbacks").value(it.faults.rollbacks);
  w.key("recovery_ns").value(it.recovery.ns());
  w.obj_close();
}

sched::IterationOutcome read_iteration(const JsonValue& v) {
  sched::IterationOutcome it;
  it.k = as_int(v.at("k"));
  it.cpu_freq = as_int(v.at("cpu_freq"));
  it.gpu_freq = as_int(v.at("gpu_freq"));
  it.abft_mode = checksum_mode_from(v.at("abft_mode").to_int64());
  it.pd = as_time(v.at("pd_ns"));
  it.pu_tmu = as_time(v.at("pu_tmu_ns"));
  it.transfer = as_time(v.at("transfer_ns"));
  it.abft_time = as_time(v.at("abft_ns"));
  it.cpu_dvfs = as_time(v.at("cpu_dvfs_ns"));
  it.gpu_dvfs = as_time(v.at("gpu_dvfs_ns"));
  it.cpu_lane = as_time(v.at("cpu_lane_ns"));
  it.gpu_lane = as_time(v.at("gpu_lane_ns"));
  it.span = as_time(v.at("span_ns"));
  it.slack = as_time(v.at("slack_ns"));
  it.cpu_energy_j = v.at("cpu_energy_j").to_double();
  it.gpu_energy_j = v.at("gpu_energy_j").to_double();
  it.pd_base_s = v.at("pd_base_s").to_double();
  it.pu_tmu_base_s = v.at("pu_tmu_base_s").to_double();
  it.transfer_s = v.at("transfer_s").to_double();
  it.faults.injected.d0 = v.at("injected_d0").to_int64();
  it.faults.injected.d1 = v.at("injected_d1").to_int64();
  it.faults.injected.d2 = v.at("injected_d2").to_int64();
  it.faults.corrected_d0 = v.at("corrected_d0").to_int64();
  it.faults.corrected_d1 = v.at("corrected_d1").to_int64();
  it.faults.recovered = v.at("recovered").to_int64();
  it.faults.unrecovered = v.at("unrecovered").to_int64();
  it.faults.uncorrectable = v.at("uncorrectable").to_int64();
  it.faults.rollbacks = as_int(v.at("rollbacks"));
  it.recovery = as_time(v.at("recovery_ns"));
  return it;
}

void write_trace(JsonWriter& w, const sched::RunTrace& t) {
  w.obj_open();
  w.key("total_time_ns").value(t.total_time.ns());
  w.key("cpu_energy_j").value(t.cpu_energy_j);
  w.key("gpu_energy_j").value(t.gpu_energy_j);
  w.key("iterations").arr_open();
  for (const sched::IterationOutcome& it : t.iterations) write_iteration(w, it);
  w.arr_close();
  w.obj_close();
}

sched::RunTrace read_trace(const JsonValue& v) {
  sched::RunTrace t;
  // Fields are assigned directly (not via RunTrace::add, which accumulates
  // aggregates) so the stored aggregates round-trip exactly.
  t.total_time = as_time(v.at("total_time_ns"));
  t.cpu_energy_j = v.at("cpu_energy_j").to_double();
  t.gpu_energy_j = v.at("gpu_energy_j").to_double();
  for (const JsonValue& it : v.at("iterations").items()) {
    t.iterations.push_back(read_iteration(it));
  }
  return t;
}

// ---- abft::AbftStats --------------------------------------------------------

void write_abft(JsonWriter& w, const abft::AbftStats& a) {
  w.obj_open();
  w.key("iterations_protected_single").value(a.iterations_protected_single);
  w.key("iterations_protected_full").value(a.iterations_protected_full);
  w.key("iterations_unprotected").value(a.iterations_unprotected);
  w.key("errors_injected_0d").value(a.errors_injected_0d);
  w.key("errors_injected_1d").value(a.errors_injected_1d);
  w.key("errors_injected_2d").value(a.errors_injected_2d);
  w.key("corrected_0d").value(a.corrected_0d);
  w.key("corrected_1d").value(a.corrected_1d);
  w.key("uncorrectable").value(a.uncorrectable);
  w.key("recoveries").value(a.recoveries);
  w.obj_close();
}

abft::AbftStats read_abft(const JsonValue& v) {
  abft::AbftStats a;
  a.iterations_protected_single = as_int(v.at("iterations_protected_single"));
  a.iterations_protected_full = as_int(v.at("iterations_protected_full"));
  a.iterations_unprotected = as_int(v.at("iterations_unprotected"));
  a.errors_injected_0d = as_int(v.at("errors_injected_0d"));
  a.errors_injected_1d = as_int(v.at("errors_injected_1d"));
  a.errors_injected_2d = as_int(v.at("errors_injected_2d"));
  a.corrected_0d = as_int(v.at("corrected_0d"));
  a.corrected_1d = as_int(v.at("corrected_1d"));
  a.uncorrectable = as_int(v.at("uncorrectable"));
  a.recoveries = as_int(v.at("recoveries"));
  return a;
}

// ---- cluster::DeviceUsage ---------------------------------------------------

void write_device(JsonWriter& w, const cluster::DeviceUsage& d) {
  w.obj_open();
  w.key("name").value(d.name);
  w.key("busy_s").value(d.busy_s);
  w.key("idle_s").value(d.idle_s);
  w.key("dvfs_s").value(d.dvfs_s);
  w.key("energy_j").value(d.energy_j);
  w.key("flops").value(d.flops);
  w.key("dvfs_transitions").value(d.dvfs_transitions);
  w.key("final_mhz").value(d.final_mhz);
  w.key("iters_unprotected").value(d.iters_unprotected);
  w.key("iters_single").value(d.iters_single);
  w.key("iters_full").value(d.iters_full);
  w.key("faults_injected").value(d.faults_injected);
  w.key("faults_corrected").value(d.faults_corrected);
  w.key("faults_recovered").value(d.faults_recovered);
  w.key("faults_unrecovered").value(d.faults_unrecovered);
  w.key("faults_uncorrectable").value(d.faults_uncorrectable);
  w.key("rollbacks").value(d.rollbacks);
  w.key("recovery_s").value(d.recovery_s);
  w.obj_close();
}

cluster::DeviceUsage read_device(const JsonValue& v) {
  cluster::DeviceUsage d;
  d.name = v.at("name").as_string();
  d.busy_s = v.at("busy_s").to_double();
  d.idle_s = v.at("idle_s").to_double();
  d.dvfs_s = v.at("dvfs_s").to_double();
  d.energy_j = v.at("energy_j").to_double();
  d.flops = v.at("flops").to_double();
  d.dvfs_transitions = as_int(v.at("dvfs_transitions"));
  d.final_mhz = as_int(v.at("final_mhz"));
  d.iters_unprotected = v.at("iters_unprotected").to_int64();
  d.iters_single = v.at("iters_single").to_int64();
  d.iters_full = v.at("iters_full").to_int64();
  d.faults_injected = v.at("faults_injected").to_int64();
  d.faults_corrected = v.at("faults_corrected").to_int64();
  d.faults_recovered = v.at("faults_recovered").to_int64();
  d.faults_unrecovered = v.at("faults_unrecovered").to_int64();
  d.faults_uncorrectable = v.at("faults_uncorrectable").to_int64();
  d.rollbacks = as_int(v.at("rollbacks"));
  d.recovery_s = v.at("recovery_s").to_double();
  return d;
}

// ---- core::LaneFaults -------------------------------------------------------

void write_lane(JsonWriter& w, const core::LaneFaults& l) {
  w.obj_open();
  w.key("lane").value(l.lane);
  w.key("injected").value(l.injected);
  w.key("corrected").value(l.corrected);
  w.key("recovered").value(l.recovered);
  w.key("unrecovered").value(l.unrecovered);
  w.key("rollbacks").value(l.rollbacks);
  w.key("recovery_s").value(l.recovery_s);
  w.obj_close();
}

core::LaneFaults read_lane(const JsonValue& v) {
  core::LaneFaults l;
  l.lane = v.at("lane").as_string();
  l.injected = v.at("injected").to_int64();
  l.corrected = v.at("corrected").to_int64();
  l.recovered = v.at("recovered").to_int64();
  l.unrecovered = v.at("unrecovered").to_int64();
  l.rollbacks = as_int(v.at("rollbacks"));
  l.recovery_s = v.at("recovery_s").to_double();
  return l;
}

// ---- lenient spec readers for request configs -------------------------------
// Reports round-trip strictly (every field present, read with at()); request
// configs are hand-written, so their sub-objects follow the same
// absent-means-default rule as the top level — but unknown keys still throw.

var::Spec var_from_config(const JsonValue& value) {
  var::Spec s;
  for (const auto& [key, v] : value.members()) {
    if (key == "enabled") s.enabled = v.as_bool();
    else if (key == "drift") s.drift = v.to_double();
    else if (key == "drift_cap") s.drift_cap = v.to_double();
    else if (key == "transfer_jitter") s.transfer_jitter = v.to_double();
    else if (key == "dvfs_jitter") s.dvfs_jitter = v.to_double();
    else if (key == "freq_quantum_mhz") s.freq_quantum_mhz = as_int(v);
    else if (key == "boost_budget_s") s.boost_budget_s = v.to_double();
    else if (key == "boost_recovery") s.boost_recovery = v.to_double();
    else if (key == "seed") s.seed = v.to_uint64();
    else fail("unknown variability field \"" + key + "\"");
  }
  return s;
}

faultcamp::Spec faults_from_config(const JsonValue& value) {
  faultcamp::Spec s;
  for (const auto& [key, v] : value.members()) {
    if (key == "enabled") s.enabled = v.as_bool();
    else if (key == "process") s.process = process_from(v.as_string());
    else if (key == "rate_multiplier") s.rate_multiplier = v.to_double();
    else if (key == "background_rate_per_s") s.background_rate_per_s = v.to_double();
    else if (key == "burst_mean") s.burst_mean = v.to_double();
    else if (key == "hazard_sigma") s.hazard_sigma = v.to_double();
    else if (key == "fixed_d0") s.fixed_d0 = as_int(v);
    else if (key == "fixed_d1") s.fixed_d1 = as_int(v);
    else if (key == "fixed_d2") s.fixed_d2 = as_int(v);
    else if (key == "correction_s") s.correction_s = v.to_double();
    else if (key == "rollback") s.rollback = v.as_bool();
    else if (key == "seed") s.seed = v.to_uint64();
    else fail("unknown faults field \"" + key + "\"");
  }
  return s;
}

}  // namespace

// ---- RunReport --------------------------------------------------------------

std::string serialize_report(const core::RunReport& report) {
  JsonWriter w;
  w.obj_open();
  w.key("options");
  write_options(w, report.options);
  w.key("strategy_name").value(report.strategy_name);
  w.key("trace");
  write_trace(w, report.trace);
  w.key("abft");
  write_abft(w, report.abft);
  w.key("numeric_executed").value(report.numeric_executed);
  w.key("residual").value(report.residual);
  w.key("numeric_correct").value(report.numeric_correct);
  w.key("recovery_time_ns").value(report.recovery_time.ns());
  w.key("recovery_energy_j").value(report.recovery_energy_j);
  w.key("device_usage").arr_open();
  for (const cluster::DeviceUsage& d : report.device_usage) write_device(w, d);
  w.arr_close();
  w.key("lane_faults").arr_open();
  for (const core::LaneFaults& l : report.lane_faults) write_lane(w, l);
  w.arr_close();
  w.obj_close();
  return w.take();
}

core::RunReport deserialize_report(const JsonValue& value) {
  core::RunReport r;
  r.options = read_options(value.at("options"));
  r.strategy_name = value.at("strategy_name").as_string();
  r.trace = read_trace(value.at("trace"));
  r.abft = read_abft(value.at("abft"));
  r.numeric_executed = value.at("numeric_executed").as_bool();
  r.residual = value.at("residual").to_double();
  r.numeric_correct = value.at("numeric_correct").as_bool();
  r.recovery_time = as_time(value.at("recovery_time_ns"));
  r.recovery_energy_j = value.at("recovery_energy_j").to_double();
  for (const JsonValue& d : value.at("device_usage").items()) {
    r.device_usage.push_back(read_device(d));
  }
  for (const JsonValue& l : value.at("lane_faults").items()) {
    r.lane_faults.push_back(read_lane(l));
  }
  return r;
}

core::RunReport deserialize_report(const std::string& json) {
  return deserialize_report(JsonValue::parse(json));
}

// ---- RunConfig --------------------------------------------------------------

std::string serialize_config(const RunConfig& c) {
  JsonWriter w;
  w.obj_open();
  w.key("factorization").value(predict::to_string(c.factorization));
  w.key("n").value(c.n);
  w.key("b").value(c.b);
  w.key("elem_bytes").value(c.elem_bytes);
  w.key("strategy").value(c.strategy);
  w.key("reclamation_ratio").value(c.reclamation_ratio);
  w.key("fc_desired").value(c.fc_desired);
  w.key("bsr_use_optimized_guardband").value(c.bsr_use_optimized_guardband);
  w.key("bsr_allow_overclocking").value(c.bsr_allow_overclocking);
  w.key("bsr_use_enhanced_predictor").value(c.bsr_use_enhanced_predictor);
  w.key("abft_policy").value(c.abft_policy);
  w.key("recover_uncorrectable").value(c.recover_uncorrectable);
  w.key("mode").value(core::to_string(c.mode));
  w.key("seed").value_u64(c.seed);
  w.key("error_rate_multiplier").value(c.error_rate_multiplier);
  w.key("noise_enabled").value(c.noise_enabled);
  w.key("platform").value(c.platform);
  w.key("variability");
  write_var(w, c.variability);
  w.key("faults");
  write_faults(w, c.faults);
  w.key("devices").value(c.devices);
  w.key("cluster").value(c.cluster);
  w.obj_close();
  return w.take();
}

RunConfig config_from_json(const JsonValue& value) {
  RunConfig c;
  for (const auto& [key, v] : value.members()) {
    if (key == "factorization") {
      c.factorization = core::factorization_from_string(v.as_string());
    } else if (key == "n") {
      c.n = v.to_int64();
    } else if (key == "b") {
      c.b = v.to_int64();
    } else if (key == "elem_bytes") {
      c.elem_bytes = as_int(v);
    } else if (key == "strategy") {
      c.strategy = v.as_string();
    } else if (key == "reclamation_ratio") {
      c.reclamation_ratio = v.to_double();
    } else if (key == "fc_desired") {
      c.fc_desired = v.to_double();
    } else if (key == "bsr_use_optimized_guardband") {
      c.bsr_use_optimized_guardband = v.as_bool();
    } else if (key == "bsr_allow_overclocking") {
      c.bsr_allow_overclocking = v.as_bool();
    } else if (key == "bsr_use_enhanced_predictor") {
      c.bsr_use_enhanced_predictor = v.as_bool();
    } else if (key == "abft_policy") {
      c.abft_policy = v.as_string();
    } else if (key == "recover_uncorrectable") {
      c.recover_uncorrectable = v.as_bool();
    } else if (key == "mode") {
      c.mode = mode_from(v.as_string());
    } else if (key == "seed") {
      c.seed = v.to_uint64();
    } else if (key == "error_rate_multiplier") {
      c.error_rate_multiplier = v.to_double();
    } else if (key == "noise_enabled") {
      c.noise_enabled = v.as_bool();
    } else if (key == "platform") {
      c.platform = v.as_string();
    } else if (key == "variability") {
      c.variability = var_from_config(v);
    } else if (key == "faults") {
      c.faults = faults_from_config(v);
    } else if (key == "devices") {
      c.devices = as_int(v);
    } else if (key == "cluster") {
      c.cluster = v.as_string();
    } else {
      fail("unknown config field \"" + key + "\"");
    }
  }
  return c;
}

}  // namespace bsr::serve
