// RunReport and RunConfig <-> JSON, the serialization layer of the serving
// subsystem (bsr/serve.hpp): the durable result store persists reports as
// JSON records, and the wire protocol carries configs in and reports out.
//
// The contract the store and the daemon build on: serialize_report() is
// deterministic, and deserialize_report() restores every field exactly, so
//
//   serialize_report(deserialize_report(s)) == s
//
// for any s this module wrote — byte-identity of a warm (store-served)
// response with the cold run that produced it reduces to this fixpoint,
// which tests/serve/report_json_test.cpp asserts on fully populated
// reports. Doubles are written in shortest-exact form (common/json.hpp),
// SimTime as integer nanoseconds, and uint64 seeds as quoted decimal
// strings (they can exceed the int64 range JSON numbers round-trip safely).
#pragma once

#include <string>

#include "bsr/run_config.hpp"
#include "common/json.hpp"
#include "core/report.hpp"

namespace bsr::serve {

/// Deterministic compact JSON for one report (every field, including the
/// full iteration trace, device_usage, and lane_faults).
std::string serialize_report(const core::RunReport& report);

/// Rebuilds a report from serialize_report() output. Throws
/// std::runtime_error ("json: ..." or "report_json: ...") on malformed or
/// schema-incompatible input — callers at the store boundary catch and
/// treat it as a miss.
core::RunReport deserialize_report(const JsonValue& value);
core::RunReport deserialize_report(const std::string& json);

/// Deterministic compact JSON for one RunConfig, inverse of
/// config_from_json (field names match the RunConfig members).
std::string serialize_config(const RunConfig& config);

/// Builds a RunConfig from a request's "config" object. Every member is
/// optional — absent fields keep their RunConfig defaults — but unknown
/// keys throw (a typo'd knob must not silently run the default experiment).
/// The result is NOT validated; callers run cfg.validate() so registry-key
/// errors surface with RunConfig's own messages.
RunConfig config_from_json(const JsonValue& value);

}  // namespace bsr::serve
