// DiskResultStore — the durable fingerprint -> RunReport tier of the serving
// subsystem, and the bsr::ResultStore implementation bsr::Sweep can mount.
//
// Layout: one record file per fingerprint inside the store directory,
//
//   <dir>/<hash16(fp)><hash16'(fp)>.json
//   record = {"schema":1,"fingerprint":"<fp>","report":{...}}
//
// written to a ".tmp" sibling and atomically renamed into place, so readers
// (including concurrent daemons sharing the directory) never observe a
// half-written record. The filename is a hash, not the fingerprint itself
// (fingerprints contain '/' and are unbounded in length); the fingerprint
// inside the record is authoritative, and a mismatch — a hash collision or
// a copied-in foreign record — is rejected like corruption. Rejections are
// LOUD misses: a warning on stderr, a bump of stats().rejected, and nullptr
// back to the caller, never a crash and never a silently-served wrong
// result. Bumping the schema version invalidates old records the same way.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "bsr/sweep.hpp"

namespace bsr::serve {

/// Counters of one DiskResultStore's lifetime (monotone, thread-safe reads
/// under the store's own lock via stats()).
struct StoreStats {
  std::uint64_t hits = 0;      ///< load() found a valid record
  std::uint64_t misses = 0;    ///< load() found nothing
  std::uint64_t rejected = 0;  ///< corrupt / old-schema / mismatched records
  std::uint64_t saves = 0;     ///< records written
};

/// The on-disk store (see file comment). Thread-safe: load/save serialize on
/// an internal mutex (records are small; the simulator run dominates).
class DiskResultStore final : public ResultStore {
 public:
  /// Records are written under `dir`, created (one level) if absent. Throws
  /// std::runtime_error when the directory cannot be created.
  explicit DiskResultStore(std::string dir);

  /// Reads the record for `fingerprint`; nullptr on miss or loud reject.
  [[nodiscard]] std::shared_ptr<const core::RunReport> load(
      const std::string& fingerprint) override;

  /// load() returning the record's serialized report text instead of the
  /// deserialized struct — the daemon serves warm responses from this so a
  /// store hit is byte-identical to the cold response by construction.
  [[nodiscard]] std::shared_ptr<const std::string> load_serialized(
      const std::string& fingerprint);

  /// Writes (or atomically overwrites) the record for `fingerprint`.
  void save(const std::string& fingerprint,
            const core::RunReport& report) override;

  /// save() taking the report already serialized (the daemon has it in hand).
  void save_serialized(const std::string& fingerprint,
                       const std::string& report_json);

  /// Lifetime counters (copied under the lock).
  [[nodiscard]] StoreStats stats() const;

  /// The store directory as given.
  [[nodiscard]] const std::string& dir() const { return dir_; }

  /// The record path for `fingerprint` (exposed for tests and tooling).
  [[nodiscard]] std::string record_path(const std::string& fingerprint) const;

  /// The on-disk schema version this build reads and writes.
  static constexpr int kSchemaVersion = 1;

 private:
  std::string dir_;
  mutable std::mutex mutex_;
  StoreStats stats_;
};

}  // namespace bsr::serve
