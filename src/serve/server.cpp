#include "serve/server.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/build_info.hpp"
#include "common/thread_pool.hpp"
#include "serve/protocol.hpp"
#include "serve/report_json.hpp"

namespace bsr::serve {

namespace {

/// Builds the cached-result record for a freshly available report.
CachedResult make_cached(const core::RunReport& report, std::string json) {
  CachedResult e;
  e.json = std::make_shared<const std::string>(std::move(json));
  e.seconds = report.seconds();
  e.energy_j = report.total_energy_j();
  e.ed2p = report.ed2p();
  e.gflops = report.gflops();
  return e;
}

/// Seconds elapsed on the operational (steady) clock — never the simulated
/// SimTime axis; request latency is a property of the daemon, not the run.
double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      metrics_{[] {
        auto& r = common::MetricsRegistry::global();
        const auto buckets = common::Histogram::default_latency_buckets_s();
        return Instruments{
            r.counter("bsr_serve_connections_total",
                      "connections accepted and served"),
            r.counter("bsr_serve_overloaded_total",
                      "connections refused by admission control"),
            r.counter("bsr_serve_requests_total",
                      "request lines parsed (any op)"),
            r.counter("bsr_serve_bad_requests_total",
                      "request lines answered with ok:false"),
            r.counter("bsr_serve_runs_total",
                      "run-op configs plus sweep-op cells resolved"),
            r.counter("bsr_serve_memory_hits_total",
                      "lookups served from the in-memory cache (tier 1)"),
            r.counter("bsr_serve_coalesced_total",
                      "lookups that joined an in-flight execution (tier 2)"),
            r.counter("bsr_serve_store_hits_total",
                      "lookups served from the durable store (tier 3)"),
            r.counter("bsr_serve_executed_total",
                      "lookups that executed the simulator (tier 4)"),
            r.histogram("bsr_serve_request_latency_seconds",
                        "wall time to serve one request line, any op",
                        buckets),
            r.histogram("bsr_serve_run_latency_seconds",
                        "wall time to serve one run op", buckets),
            r.histogram("bsr_serve_sweep_latency_seconds",
                        "wall time to serve one sweep op (whole grid)",
                        buckets),
        };
      }()} {
  if (config_.workers < 1) {
    throw std::invalid_argument("serve: need workers >= 1");
  }
  if (config_.queue_depth < 1) {
    throw std::invalid_argument("serve: need queue_depth >= 1");
  }
  if (!config_.runner) {
    config_.runner = [](const RunConfig& cfg) { return bsr::run(cfg); };
  }
  if (!config_.store_dir.empty()) {
    store_ = std::make_unique<DiskResultStore>(config_.store_dir);
  }
}

Server::~Server() { stop(); }

void Server::start() {
  if (running_.load()) throw std::logic_error("serve: already started");
  if (config_.socket_path.empty()) {
    listener_ = listen_tcp_localhost(config_.tcp_port, /*backlog=*/128, &port_);
  } else {
    listener_ = listen_unix(config_.socket_path, /*backlog=*/128);
  }
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = false;
  }
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  // The connection workers run as one long parallel_for on the repo's
  // work-sharing pool: count == workers and grain 1, so each claimed index
  // becomes one persistent worker loop. The launcher thread just hosts the
  // blocking parallel_for call.
  pool_thread_ = std::thread([this] {
    ThreadPool pool(static_cast<std::size_t>(config_.workers));
    pool.parallel_for(static_cast<std::size_t>(config_.workers),
                      [this](std::size_t) { worker_loop(); });
  });
}

void Server::stop() {
  if (!running_.exchange(false)) return;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  // Wake the accept thread with a throwaway connection (closing the fd from
  // another thread does not reliably unblock accept()).
  try {
    if (config_.socket_path.empty()) {
      (void)connect_tcp_localhost(port_);
    } else {
      (void)connect_unix(config_.socket_path);
    }
  } catch (const std::exception&) {
    // Listener already gone; accept has already returned.
  }
  // Unblock workers parked in recv on idle connections: half-close their
  // descriptors so read_line() sees EOF and the worker drains out.
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (const int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (pool_thread_.joinable()) pool_thread_.join();
  listener_.close();
  if (!config_.socket_path.empty()) {
    ::unlink(config_.socket_path.c_str());
  }
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    shutdown_requested_.store(true);
  }
  shutdown_cv_.notify_all();
}

void Server::wait() {
  {
    std::unique_lock<std::mutex> lock(shutdown_mutex_);
    // Bounded waits, not a pure cv.wait: request_stop() is async-signal-safe
    // and therefore cannot notify the condition variable.
    while (!shutdown_requested_.load()) {
      shutdown_cv_.wait_for(lock, std::chrono::milliseconds(100));
    }
  }
  stop();
}

void Server::accept_loop() {
  for (;;) {
    Socket conn = accept_one(listener_);
    std::unique_lock<std::mutex> lock(queue_mutex_);
    if (stopping_) return;  // conn (possibly the wake-up dummy) just closes
    if (!conn.valid()) return;
    if (queue_.size() >= static_cast<std::size_t>(config_.queue_depth)) {
      lock.unlock();
      {
        std::lock_guard<std::mutex> slock(stats_mutex_);
        ++stats_.overloaded;
      }
      metrics_.overloaded.inc();
      // Refused by admission control: one explicit backpressure line, then
      // close. Never enqueue beyond queue_depth.
      try {
        conn.send_all(overloaded_response() + "\n");
      } catch (const std::exception&) {
        // Peer vanished before reading the rejection; nothing to do.
      }
      continue;
    }
    queue_.push_back(std::move(conn));
    lock.unlock();
    queue_cv_.notify_one();
  }
}

void Server::worker_loop() {
  for (;;) {
    Socket conn;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      conn = std::move(queue_.front());
      queue_.pop_front();
    }
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.connections;
    }
    metrics_.connections.inc();
    const int fd = conn.fd();
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      active_fds_.insert(fd);
    }
    serve_connection(std::move(conn));
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      active_fds_.erase(fd);
    }
  }
}

void Server::serve_connection(Socket conn) {
  try {
    LineReader reader(conn);
    while (std::optional<std::string> line = reader.read_line()) {
      if (line->empty()) continue;
      if (!handle_line(*line, conn)) break;
    }
  } catch (const std::exception& e) {
    // A read/write error mid-connection only kills this connection.
    std::fprintf(stderr, "serve: connection dropped: %s\n", e.what());
  }
}

bool Server::handle_line(const std::string& line, const Socket& conn) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.requests;
  }
  metrics_.requests.inc();
  const auto t0 = std::chrono::steady_clock::now();
  std::string op;
  std::string response;
  bool keep_open = true;
  bool shutdown = false;
  try {
    const Request req = parse_request(line);
    op = req.op;
    if (req.op == "run") {
      response = handle_run(req.body);
    } else if (req.op == "sweep") {
      response = handle_sweep(req.body);
    } else if (req.op == "stats") {
      response = handle_stats();
    } else if (req.op == "metrics") {
      response = handle_metrics();
    } else {  // "shutdown" (parse_request rejects everything else)
      JsonWriter w;
      w.obj_open();
      w.key("ok").value(true);
      w.key("op").value("shutdown");
      w.obj_close();
      response = w.take();
      keep_open = false;
      shutdown = true;
    }
  } catch (const std::exception& e) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.bad_requests;
    }
    metrics_.bad_requests.inc();
    response = error_response(e.what(), /*retry=*/false);
  }
  const double elapsed = seconds_since(t0);
  metrics_.request_latency.observe(elapsed);
  if (op == "run") {
    metrics_.run_latency.observe(elapsed);
  } else if (op == "sweep") {
    metrics_.sweep_latency.observe(elapsed);
  }
  conn.send_all(response + "\n");
  if (shutdown) {
    // Flag the daemon down; the actual joins happen in wait()/stop() on a
    // non-worker thread. Mark stopping first so idle workers drain out.
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      stopping_ = true;
    }
    queue_cv_.notify_all();
    {
      std::lock_guard<std::mutex> lock(shutdown_mutex_);
      shutdown_requested_.store(true);
    }
    shutdown_cv_.notify_all();
  }
  return keep_open;
}

std::pair<CachedResult, const char*> Server::resolve(
    const RunConfig& cfg, const std::string& fingerprint) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.runs;
  }
  metrics_.runs.inc();
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    const auto it = cache_.find(fingerprint);
    if (it != cache_.end()) {
      {
        std::lock_guard<std::mutex> slock(stats_mutex_);
        ++stats_.memory_hits;
      }
      metrics_.memory_hits.inc();
      return {it->second, "memory"};
    }
  }
  const SingleFlight<CachedResult>::Result result =
      flights_.do_call(fingerprint, [&]() -> CachedResult {
        if (store_ != nullptr) {
          if (std::shared_ptr<const std::string> text =
                  store_->load_serialized(fingerprint)) {
            // Metrics come from one deserialization; the response bytes stay
            // the stored text verbatim.
            CachedResult e = make_cached(deserialize_report(*text), *text);
            e.from_store = true;
            return e;
          }
        }
        const core::RunReport report = config_.runner(cfg);
        CachedResult e = make_cached(report, serialize_report(report));
        if (store_ != nullptr) store_->save_serialized(fingerprint, *e.json);
        return e;
      });
  const char* source = "coalesced";
  if (result.leader) source = result.value.from_store ? "store" : "executed";
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (result.leader) {
      ++(result.value.from_store ? stats_.store_hits : stats_.executed);
    } else {
      ++stats_.coalesced;
    }
  }
  if (result.leader) {
    (result.value.from_store ? metrics_.store_hits : metrics_.executed).inc();
  } else {
    metrics_.coalesced.inc();
  }
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    cache_.emplace(fingerprint, result.value);
  }
  return {result.value, source};
}

std::string Server::handle_run(const JsonValue& body) {
  const JsonValue* cfg_json = body.find("config");
  const RunConfig cfg =
      cfg_json != nullptr ? config_from_json(*cfg_json) : RunConfig{};
  cfg.validate();
  const std::string fingerprint = cfg.fingerprint();
  const auto [entry, source] = resolve(cfg, fingerprint);

  JsonWriter w;
  w.obj_open();
  w.key("ok").value(true);
  w.key("op").value("run");
  w.key("source").value(source);
  w.key("fingerprint").value(fingerprint);
  w.key("report").raw(*entry.json);
  w.obj_close();
  return w.take();
}

std::string Server::handle_sweep(const JsonValue& body) {
  const JsonValue* cfg_json = body.find("config");
  const RunConfig base =
      cfg_json != nullptr ? config_from_json(*cfg_json) : RunConfig{};

  // Axes expand outermost-first in the order the request lists them (the
  // parser preserves member order). Each axis point is (label, mutator).
  struct Point {
    std::string label;
    std::function<void(RunConfig&)> apply;
  };
  struct SweepAxis {
    std::string name;
    std::vector<Point> points;
  };
  std::vector<SweepAxis> axes;
  const JsonValue* axes_json = body.find("axes");
  if (axes_json != nullptr) {
    for (const auto& [name, values] : axes_json->members()) {
      SweepAxis axis;
      axis.name = name;
      for (const JsonValue& v : values.items()) {
        if (name == "strategy") {
          const std::string key = v.as_string();
          axis.points.push_back(
              {key, [key](RunConfig& c) { c.strategy = key; }});
        } else if (name == "n") {
          const std::int64_t n = v.to_int64();
          axis.points.push_back({std::to_string(n), [n](RunConfig& c) {
                                   c.n = n;
                                   c.b = 0;  // re-tune the block per size
                                 }});
        } else if (name == "r") {
          const double r = v.to_double();
          axis.points.push_back({v.number_token(), [r](RunConfig& c) {
                                   c.reclamation_ratio = r;
                                 }});
        } else if (name == "abft") {
          const std::string key = v.as_string();
          axis.points.push_back(
              {key, [key](RunConfig& c) { c.abft_policy = key; }});
        } else {
          throw std::runtime_error(
              "unknown sweep axis \"" + name +
              "\" (known axes: strategy, n, r, abft)");
        }
      }
      if (axis.points.empty()) {
        throw std::runtime_error("sweep axis \"" + name + "\" has no values");
      }
      axes.push_back(std::move(axis));
    }
  }

  std::size_t cells = 1;
  for (const SweepAxis& axis : axes) cells *= axis.points.size();
  constexpr std::size_t kMaxCells = 4096;
  if (cells > kMaxCells) {
    throw std::runtime_error("sweep expands to " + std::to_string(cells) +
                             " cells (limit " + std::to_string(kMaxCells) +
                             ")");
  }

  JsonWriter w;
  w.obj_open();
  w.key("ok").value(true);
  w.key("op").value("sweep");
  w.key("cells").value(static_cast<std::int64_t>(cells));
  w.key("rows").arr_open();
  for (std::size_t index = 0; index < cells; ++index) {
    RunConfig cfg = base;
    std::vector<std::pair<std::string, std::string>> coords;
    std::size_t stride = cells;
    for (const SweepAxis& axis : axes) {
      stride /= axis.points.size();
      const Point& point = axis.points[(index / stride) % axis.points.size()];
      coords.emplace_back(axis.name, point.label);
      point.apply(cfg);
    }
    cfg.validate();
    const std::string fingerprint = cfg.fingerprint();
    const auto [entry, source] = resolve(cfg, fingerprint);
    w.obj_open();
    w.key("coords").obj_open();
    for (const auto& [axis, label] : coords) w.key(axis).value(label);
    w.obj_close();
    w.key("fingerprint").value(fingerprint);
    w.key("source").value(source);
    w.key("time_s").value(entry.seconds);
    w.key("energy_j").value(entry.energy_j);
    w.key("ed2p").value(entry.ed2p);
    w.key("gflops").value(entry.gflops);
    w.obj_close();
  }
  w.arr_close();
  w.obj_close();
  return w.take();
}

std::string Server::handle_stats() {
  ServeStats s;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    s = stats_;
  }
  JsonWriter w;
  w.obj_open();
  w.key("ok").value(true);
  w.key("op").value("stats");
  w.key("connections").value(static_cast<std::int64_t>(s.connections));
  w.key("overloaded").value(static_cast<std::int64_t>(s.overloaded));
  w.key("requests").value(static_cast<std::int64_t>(s.requests));
  w.key("bad_requests").value(static_cast<std::int64_t>(s.bad_requests));
  w.key("runs").value(static_cast<std::int64_t>(s.runs));
  w.key("memory_hits").value(static_cast<std::int64_t>(s.memory_hits));
  w.key("coalesced").value(static_cast<std::int64_t>(s.coalesced));
  w.key("store_hits").value(static_cast<std::int64_t>(s.store_hits));
  w.key("executed").value(static_cast<std::int64_t>(s.executed));
  w.key("cache_entries").value(static_cast<std::int64_t>(cache_entries()));
  w.key("workers").value(config_.workers);
  w.key("queue_depth").value(config_.queue_depth);
  if (store_ != nullptr) {
    const StoreStats st = store_->stats();
    w.key("store").obj_open();
    w.key("hits").value(static_cast<std::int64_t>(st.hits));
    w.key("misses").value(static_cast<std::int64_t>(st.misses));
    w.key("rejected").value(static_cast<std::int64_t>(st.rejected));
    w.key("saves").value(static_cast<std::int64_t>(st.saves));
    w.obj_close();
  }
  w.obj_close();
  return w.take();
}

std::string Server::handle_metrics() {
  // Point-in-time values are refreshed at sampling time — gauges set here,
  // not callbacks registered at construction, so a destroyed Server never
  // leaves a dangling probe behind in the process-wide registry.
  auto& reg = common::MetricsRegistry::global();
  reg.gauge("bsr_build_info",
            "constant 1; the build stamp is this help line: " +
                common::build_info_line("bsr"))
      .set(1.0);
  reg.gauge("bsr_serve_cache_entries",
            "entries in the in-memory serialized-report cache")
      .set(static_cast<double>(cache_entries()));
  reg.gauge("bsr_serve_workers", "configured connection-serving workers")
      .set(static_cast<double>(config_.workers));
  reg.gauge("bsr_serve_queue_depth",
            "connections allowed to wait before admission control refuses")
      .set(static_cast<double>(config_.queue_depth));
  if (store_ != nullptr) {
    const StoreStats st = store_->stats();
    reg.gauge("bsr_serve_store_record_hits", "this store's valid-record loads")
        .set(static_cast<double>(st.hits));
    reg.gauge("bsr_serve_store_record_misses", "this store's load misses")
        .set(static_cast<double>(st.misses));
    reg.gauge("bsr_serve_store_record_rejected",
              "this store's loud rejects (corrupt/stale/mismatched records)")
        .set(static_cast<double>(st.rejected));
    reg.gauge("bsr_serve_store_record_saves", "this store's records written")
        .set(static_cast<double>(st.saves));
  }

  JsonWriter w;
  w.obj_open();
  w.key("ok").value(true);
  w.key("op").value("metrics");
  w.key("version").value(common::build_info().version);
  w.key("exposition").value(reg.exposition());
  w.obj_close();
  return w.take();
}

ServeStats Server::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

StoreStats Server::store_stats() const {
  return store_ != nullptr ? store_->stats() : StoreStats{};
}

std::size_t Server::cache_entries() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return cache_.size();
}

}  // namespace bsr::serve
