#include "serve/store.hpp"

#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/metrics.hpp"
#include "serve/report_json.hpp"

namespace bsr::serve {

namespace {

/// Process-wide corruption counter (bsr/observability.hpp): every loud
/// reject — truncated record, garbage JSON, schema drift, fingerprint
/// mismatch, report-schema drift — counts here as well as in the store's
/// own stats(), so daemons surface corruption without polling stderr.
common::Counter& rejected_records_counter() {
  static common::Counter& c = common::MetricsRegistry::global().counter(
      "bsr_store_rejected_records_total",
      "durable-store records rejected as corrupt, stale-schema, or "
      "mismatched (each one is a loud miss, never a served answer)");
  return c;
}

/// FNV-1a over `s`, folded with a per-call basis so two independent 64-bit
/// digests make one 32-hex-digit filename (collisions are additionally
/// caught by the fingerprint check inside the record).
std::uint64_t fnv1a(const std::string& s, std::uint64_t basis) {
  std::uint64_t h = basis;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

DiskResultStore::DiskResultStore(std::string dir) : dir_(std::move(dir)) {
  if (::mkdir(dir_.c_str(), 0777) != 0 && errno != EEXIST) {
    throw std::runtime_error("store: cannot create directory " + dir_ + ": " +
                             std::strerror(errno));
  }
}

std::string DiskResultStore::record_path(const std::string& fingerprint) const {
  return dir_ + "/" + hex16(fnv1a(fingerprint, 14695981039346656037ULL)) +
         hex16(fnv1a(fingerprint, 0x9e3779b97f4a7c15ULL)) + ".json";
}

std::shared_ptr<const std::string> DiskResultStore::load_serialized(
    const std::string& fingerprint) {
  const std::string path = record_path(fingerprint);
  std::ifstream in(path, std::ios::binary);
  std::lock_guard<std::mutex> lock(mutex_);
  if (!in) {
    ++stats_.misses;
    return nullptr;
  }
  std::ostringstream text;
  text << in.rdbuf();

  // Parse and vet the record envelope; anything unexpected is a loud reject.
  const auto reject = [&](const std::string& why)
      -> std::shared_ptr<const std::string> {
    ++stats_.rejected;
    rejected_records_counter().inc();
    std::fprintf(stderr,
                 "store: rejecting record %s (%s); treating as a miss\n",
                 path.c_str(), why.c_str());
    return nullptr;
  };
  try {
    const JsonValue record = JsonValue::parse(text.str());
    const std::int64_t schema = record.at("schema").to_int64();
    if (schema != kSchemaVersion) {
      return reject("schema version " + std::to_string(schema) +
                    ", this build reads " + std::to_string(kSchemaVersion));
    }
    if (record.at("fingerprint").as_string() != fingerprint) {
      return reject("fingerprint mismatch");
    }
    ++stats_.hits;
    return std::make_shared<const std::string>(record.at("report").dump());
  } catch (const std::exception& e) {
    return reject(e.what());
  }
}

std::shared_ptr<const core::RunReport> DiskResultStore::load(
    const std::string& fingerprint) {
  const std::shared_ptr<const std::string> text = load_serialized(fingerprint);
  if (text == nullptr) return nullptr;
  // The record parsed above, so this only throws on a report schema drift —
  // which must also read as a loud miss, not abort the sweep.
  try {
    return std::make_shared<const core::RunReport>(deserialize_report(*text));
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.rejected;
    rejected_records_counter().inc();
    --stats_.hits;
    std::fprintf(stderr,
                 "store: rejecting record for %s (%s); treating as a miss\n",
                 fingerprint.c_str(), e.what());
    return nullptr;
  }
}

void DiskResultStore::save_serialized(const std::string& fingerprint,
                                      const std::string& report_json) {
  JsonWriter w;
  w.obj_open();
  w.key("schema").value(kSchemaVersion);
  w.key("fingerprint").value(fingerprint);
  w.key("report").raw(report_json);
  w.obj_close();

  const std::string path = record_path(fingerprint);
  const std::string tmp = path + ".tmp";
  std::lock_guard<std::mutex> lock(mutex_);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("store: cannot write " + tmp);
    }
    out << w.str() << '\n';
    if (!out.flush()) {
      throw std::runtime_error("store: short write to " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("store: rename " + tmp + " -> " + path + ": " +
                             std::strerror(errno));
  }
  ++stats_.saves;
}

void DiskResultStore::save(const std::string& fingerprint,
                           const core::RunReport& report) {
  save_serialized(fingerprint, serialize_report(report));
}

StoreStats DiskResultStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace bsr::serve
