// The bsr_served wire protocol: newline-delimited JSON, one request object
// per line, one response object per line (docs/SERVING.md is the spec).
//
// Requests:   {"op":"run","config":{...}}
//             {"op":"sweep","config":{...},"axes":{...}}
//             {"op":"stats"}
//             {"op":"metrics"}
//             {"op":"shutdown"}
// Responses:  {"ok":true,"op":...,...}        (op-specific payload)
//             {"ok":false,"error":"...","retry":bool}
//
// This header owns request parsing and the error/overload response shapes;
// success responses are assembled by the server (they splice cached report
// JSON verbatim).
#pragma once

#include <string>

#include "common/json.hpp"

namespace bsr::serve {

/// One parsed request line.
struct Request {
  std::string op;  ///< "run", "sweep", "stats", "metrics", or "shutdown"
  JsonValue body;  ///< the whole request object (op-specific fields inside)
};

/// Parses one request line. Throws std::runtime_error on malformed JSON, a
/// missing/non-string "op", or an op outside the five known ones.
Request parse_request(const std::string& line);

/// {"ok":false,"error":<message>,"retry":<retry>} — `retry` tells clients
/// whether the same request can succeed later (true for backpressure,
/// false for malformed requests).
std::string error_response(const std::string& message, bool retry);

/// The admission-control rejection: error_response("overloaded", true).
std::string overloaded_response();

}  // namespace bsr::serve
