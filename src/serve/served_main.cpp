// bsr_served — the sweep-as-a-service daemon (docs/SERVING.md).
//
//   bsr_served --socket /tmp/bsr.sock --store /var/tmp/bsr-store
//   bsr_served --port 7411 --workers 8 --queue-depth 128
//
// Serves run/sweep/stats/metrics/shutdown requests (newline-delimited JSON)
// until a client sends {"op":"shutdown"} or the process receives
// SIGINT/SIGTERM.
#include <csignal>
#include <cstdio>
#include <exception>
#include <string>

#include "bsr/observability.hpp"
#include "common/cli.hpp"
#include "serve/server.hpp"

namespace {

bsr::serve::Server* g_server = nullptr;

extern "C" void handle_signal(int) {
  // stop() is not async-signal-safe; just flag the wait() loop down the same
  // way a shutdown op does. The write is a best effort — a second signal
  // still terminates the process the default way.
  if (g_server != nullptr) g_server->request_stop();
}

}  // namespace

int main(int argc, char** argv) {
  bsr::Cli cli;
  cli.arg_string("socket", "", "Unix socket path to listen on")
      .arg_int("port", 0,
               "localhost TCP port when --socket is empty (0 = ephemeral)")
      .arg_int("workers", 4, "concurrent connection-serving workers")
      .arg_int("queue-depth", 64,
               "connections allowed to wait before \"overloaded\" rejections")
      .arg_string("store", "",
                  "durable result-store directory (empty = memory-only)");
  bsr::add_version_flag(cli);
  if (!cli.parse_or_exit(argc, argv)) return 0;
  if (bsr::handled_version_flag(cli, "bsr_served")) return 0;

  bsr::serve::ServerConfig config;
  config.socket_path = cli.get("socket");
  config.tcp_port = static_cast<std::uint16_t>(
      bsr::int_flag_in_range_or_exit(cli, "port", 0, 65535));
  config.workers =
      static_cast<int>(bsr::positive_int_or_exit(cli, "workers", 256));
  config.queue_depth =
      static_cast<int>(bsr::positive_int_or_exit(cli, "queue-depth", 1 << 20));
  config.store_dir = cli.get("store");

  try {
    bsr::serve::Server server(std::move(config));
    server.start();
    g_server = &server;
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    if (server.socket_path().empty()) {
      std::printf("bsr_served: listening on 127.0.0.1:%u\n",
                  static_cast<unsigned>(server.port()));
    } else {
      std::printf("bsr_served: listening on %s\n",
                  server.socket_path().c_str());
    }
    std::fflush(stdout);
    server.wait();
    g_server = nullptr;
    const bsr::serve::ServeStats stats = server.stats();
    std::printf(
        "bsr_served: served %llu connections, %llu requests "
        "(%llu executed, %llu memory, %llu coalesced, %llu store)\n",
        static_cast<unsigned long long>(stats.connections),
        static_cast<unsigned long long>(stats.requests),
        static_cast<unsigned long long>(stats.executed),
        static_cast<unsigned long long>(stats.memory_hits),
        static_cast<unsigned long long>(stats.coalesced),
        static_cast<unsigned long long>(stats.store_hits));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
