// bsr_servectl — one-shot client for a running bsr_served (docs/SERVING.md).
//
//   bsr_servectl --socket /tmp/bsr.sock --op stats
//   bsr_servectl --socket /tmp/bsr.sock --op run
//       --config '{"n":4096,"strategy":"bsr"}'   (one line)
//   bsr_servectl --port 7411 --op shutdown
//
// Sends one request, prints the daemon's response line to stdout, and exits
// 0 on ok:true, 3 on ok:false (the response is still printed — the error
// payload is the diagnostic). --op metrics is decoded: the Prometheus-style
// exposition text prints directly instead of one JSON-escaped line.
#include <cstdio>
#include <exception>
#include <string>

#include "bsr/observability.hpp"
#include "common/cli.hpp"
#include "common/json.hpp"
#include "serve/client.hpp"

int main(int argc, char** argv) {
  bsr::Cli cli;
  cli.arg_string("socket", "", "daemon Unix socket path")
      .arg_int("port", 0, "daemon localhost TCP port when --socket is empty")
      .arg_string("op", "stats",
                  "request op: run, sweep, stats, metrics, shutdown")
      .arg_string("config", "",
                  "JSON RunConfig overrides for --op run/sweep (optional)")
      .arg_string("axes", "",
                  "JSON sweep axes for --op sweep, e.g. "
                  "'{\"strategy\":[\"sr\",\"bsr\"],\"n\":[2048,4096]}'");
  bsr::add_version_flag(cli);
  if (!cli.parse_or_exit(argc, argv)) return 0;
  if (bsr::handled_version_flag(cli, "bsr_servectl")) return 0;

  const std::string socket_path = cli.get("socket");
  const long long port = bsr::int_flag_in_range_or_exit(cli, "port", 0, 65535);
  if (socket_path.empty() && port == 0) {
    std::fprintf(stderr, "error: need --socket <path> or --port <port>\n");
    return 2;
  }

  bsr::JsonWriter w;
  w.obj_open();
  w.key("op").value(cli.get("op"));
  if (!cli.get("config").empty()) w.key("config").raw(cli.get("config"));
  if (!cli.get("axes").empty()) w.key("axes").raw(cli.get("axes"));
  w.obj_close();

  try {
    bsr::serve::Client client =
        socket_path.empty()
            ? bsr::serve::Client::connect_tcp(static_cast<std::uint16_t>(port))
            : bsr::serve::Client::connect_unix_socket(socket_path);
    const std::string response = client.call_raw(w.take());
    const bsr::JsonValue parsed = bsr::JsonValue::parse(response);
    const bsr::JsonValue* ok = parsed.find("ok");
    const bool success = ok != nullptr && ok->is_bool() && ok->as_bool();
    const bsr::JsonValue* exposition =
        success && cli.get("op") == "metrics" ? parsed.find("exposition")
                                              : nullptr;
    if (exposition != nullptr && exposition->is_string()) {
      std::fputs(exposition->as_string().c_str(), stdout);
    } else {
      std::printf("%s\n", response.c_str());
    }
    return success ? 0 : 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
