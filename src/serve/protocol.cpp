#include "serve/protocol.hpp"

#include <stdexcept>
#include <utility>

namespace bsr::serve {

Request parse_request(const std::string& line) {
  Request req;
  req.body = JsonValue::parse(line);
  if (!req.body.is_object()) {
    throw std::runtime_error("request must be a JSON object");
  }
  const JsonValue* op = req.body.find("op");
  if (op == nullptr || !op->is_string()) {
    throw std::runtime_error("request needs a string \"op\" field");
  }
  req.op = op->as_string();
  if (req.op != "run" && req.op != "sweep" && req.op != "stats" &&
      req.op != "metrics" && req.op != "shutdown") {
    throw std::runtime_error(
        "unknown op \"" + req.op +
        "\" (known ops: run, sweep, stats, metrics, shutdown)");
  }
  return req;
}

std::string error_response(const std::string& message, bool retry) {
  JsonWriter w;
  w.obj_open();
  w.key("ok").value(false);
  w.key("error").value(message);
  w.key("retry").value(retry);
  w.obj_close();
  return w.take();
}

std::string overloaded_response() { return error_response("overloaded", true); }

}  // namespace bsr::serve
