// A std::ostream over C stdout that avoids <iostream>.
//
// Linking any TU that includes <iostream> injects ios_base::Init, whose
// static construction of the eight standard streams plus locale machinery
// costs ~0.5 ms of process startup — real money for millisecond bench
// drivers. This stream is built lazily on first use instead, so binaries
// that only ever print through std::printf/ResultSink pay nothing.
#pragma once

#include <iosfwd>

namespace bsr {

/// Lazily-constructed ostream writing to stdout via std::fwrite. Safe to mix
/// with std::printf (both go through the same stdio buffer).
std::ostream& stdout_stream();

}  // namespace bsr
