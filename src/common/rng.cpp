#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace bsr {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  if (n == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

double Rng::normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::exponential(double rate) {
  double u = 0.0;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

std::uint64_t Rng::poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 64.0) {
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= next_double();
    } while (p > limit);
    return k - 1;
  }
  const double draw = normal(mean, std::sqrt(mean));
  return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
}

Rng Rng::split() {
  return Rng(next_u64() ^ 0xa5a5a5a5deadbeefull);
}

}  // namespace bsr
