#include "common/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace bsr {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw std::runtime_error("socket: " + what + ": " +
                           std::strerror(errno));
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::send_all(std::string_view data) const {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

void Socket::shutdown_write() const { ::shutdown(fd_, SHUT_WR); }

Socket listen_unix(const std::string& path, int backlog) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket: unix path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) fail_errno("socket(AF_UNIX)");
  Socket sock(fd);

  ::unlink(path.c_str());  // drop a stale socket file from a crashed daemon
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    fail_errno("bind " + path);
  }
  if (::listen(fd, backlog) < 0) fail_errno("listen " + path);
  return sock;
}

Socket connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket: unix path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) fail_errno("socket(AF_UNIX)");
  Socket sock(fd);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    fail_errno("connect " + path);
  }
  return sock;
}

Socket listen_tcp_localhost(std::uint16_t port, int backlog,
                            std::uint16_t* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail_errno("socket(AF_INET)");
  Socket sock(fd);

  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    fail_errno("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd, backlog) < 0) fail_errno("listen");

  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) < 0) {
      fail_errno("getsockname");
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return sock;
}

Socket connect_tcp_localhost(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail_errno("socket(AF_INET)");
  Socket sock(fd);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    fail_errno("connect 127.0.0.1:" + std::to_string(port));
  }
  return sock;
}

Socket accept_one(const Socket& listener) {
  for (;;) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    // EBADF / EINVAL: the listener was closed out from under us by the
    // shutdown path — report "no more connections" rather than an error.
    if (errno == EBADF || errno == EINVAL || errno == ECONNABORTED) {
      return Socket();
    }
    fail_errno("accept");
  }
}

std::optional<std::string> LineReader::read_line() {
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return line;
    }
    if (eof_) return std::nullopt;

    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("recv");
    }
    if (n == 0) {
      eof_ = true;
      // Unterminated trailing bytes are dropped (protocol violation).
      buffer_.clear();
      return std::nullopt;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace bsr
