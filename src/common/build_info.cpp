#include "common/build_info.hpp"

namespace bsr::common {

namespace {

#ifndef BSR_GIT_DESCRIBE
#define BSR_GIT_DESCRIBE "unknown"
#endif
#ifndef BSR_BUILD_COMPILER
#define BSR_BUILD_COMPILER "unknown"
#endif
#ifndef BSR_BUILD_TYPE
#define BSR_BUILD_TYPE "unknown"
#endif
#ifndef BSR_BUILD_FLAGS
#define BSR_BUILD_FLAGS ""
#endif

std::string or_unknown(const char* s) {
  return (s != nullptr && s[0] != '\0') ? std::string(s)
                                        : std::string("unknown");
}

}  // namespace

const BuildInfo& build_info() {
  static const BuildInfo info{
      or_unknown(BSR_GIT_DESCRIBE),
      or_unknown(BSR_BUILD_COMPILER),
      or_unknown(BSR_BUILD_TYPE),
      std::string(BSR_BUILD_FLAGS),
  };
  return info;
}

std::string build_info_line(const std::string& tool) {
  const BuildInfo& b = build_info();
  std::string line = tool + " " + b.version + " (" + b.compiler + ", " +
                     b.build_type;
  if (!b.flags.empty()) line += ", " + b.flags;
  line += ")";
  return line;
}

}  // namespace bsr::common
