// Minimal JSON support for the serving subsystem (bsr/serve.hpp): a strict
// RFC 8259 parser into an order-preserving value tree, and a deterministic
// compact writer.
//
// Two properties the serve wire protocol and the durable result store lean
// on:
//
//  * Verbatim numbers. JsonValue stores a number as its source token, and
//    dump() re-emits that token unchanged, so parse() + dump() is the
//    identity on any document this library wrote — the byte-identity
//    contract of the result store ("a warm response equals the cold one")
//    reduces to the writers being deterministic, which JsonWriter is.
//  * Order preservation. Object members keep insertion/parse order (no
//    map-induced resorting), for the same reason.
//
// The writer formats doubles with std::to_chars (shortest form that parses
// back to exactly the same value) so serialize -> deserialize -> serialize is
// byte-stable; integers are emitted as plain decimal. Seeds and other uint64
// values that can exceed int64 range are the caller's concern — the report
// serializers write them as strings.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace bsr {

/// One parsed JSON value: null, bool, number (verbatim token), string,
/// array, or object (order-preserving). Parse errors and type-mismatched
/// accessors throw std::runtime_error with a "json:"-prefixed message.
class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;

  /// Parses exactly one JSON document (leading/trailing whitespace allowed;
  /// anything else after the value is an error). Throws std::runtime_error
  /// with the byte offset on malformed input.
  static JsonValue parse(std::string_view text);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::Object; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::Array; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::String; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::Number; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::Bool; }

  /// The boolean payload; throws unless kind() == Bool.
  [[nodiscard]] bool as_bool() const;
  /// The decoded string payload; throws unless kind() == String.
  [[nodiscard]] const std::string& as_string() const;
  /// The raw source token of a number ("-3.25e2"); throws unless Number.
  [[nodiscard]] const std::string& number_token() const;
  /// Number converted to double; throws unless Number.
  [[nodiscard]] double to_double() const;
  /// Number converted to int64; throws unless it is an integer token in
  /// int64 range (no '.', no exponent, no overflow).
  [[nodiscard]] std::int64_t to_int64() const;
  /// String or integer-number token converted to uint64 (the report
  /// serializers write uint64 seeds as strings); throws on anything else.
  [[nodiscard]] std::uint64_t to_uint64() const;

  /// Array elements; throws unless kind() == Array.
  [[nodiscard]] const std::vector<JsonValue>& items() const;
  /// Object members in insertion order; throws unless kind() == Object.
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& members()
      const;
  /// Pointer to the member named `key`, or nullptr; throws unless Object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;
  /// The member named `key`; throws (naming the key) when absent.
  [[nodiscard]] const JsonValue& at(const std::string& key) const;

  /// Compact re-serialization: no whitespace, object order preserved,
  /// number tokens verbatim — the identity transform on writer output.
  [[nodiscard]] std::string dump() const;

  // -- construction (used by tests; the serializers use JsonWriter) -----------
  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(std::string token);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  std::string scalar_;  // number token or decoded string
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// JSON-escapes `s` and wraps it in double quotes.
std::string json_quote(std::string_view s);

/// Shortest decimal form of `v` that parses back to exactly the same double
/// (std::to_chars). Non-finite values, which JSON cannot represent, are
/// clamped to "0" — the simulator never produces them in reports.
std::string json_double(double v);

/// Deterministic compact JSON builder. Commas are managed automatically;
/// the caller supplies structure:
///
///   JsonWriter w;
///   w.obj_open();
///   w.key("n"); w.value(std::int64_t{4096});
///   w.key("xs"); w.arr_open(); w.value(1.5); w.arr_close();
///   w.obj_close();
///   w.str();  // {"n":4096,"xs":[1.5]}
class JsonWriter {
 public:
  JsonWriter& obj_open();
  JsonWriter& obj_close();
  JsonWriter& arr_open();
  JsonWriter& arr_close();
  /// Emits the member key (inside an object, before each value).
  JsonWriter& key(std::string_view k);
  JsonWriter& value(std::string_view s);  ///< string value (escaped)
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(bool b);
  JsonWriter& value(double v);  ///< shortest exact round-trip form
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  /// uint64 written as a quoted decimal string (see file comment).
  JsonWriter& value_u64(std::uint64_t v);
  /// Splices pre-serialized JSON verbatim (e.g. a stored report payload).
  JsonWriter& raw(std::string_view json);

  /// The document built so far.
  [[nodiscard]] const std::string& str() const { return out_; }
  /// Moves the document out (the writer is spent afterwards).
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  void comma();

  std::string out_;
  std::vector<bool> needs_comma_;  // one nesting level per open container
};

}  // namespace bsr
