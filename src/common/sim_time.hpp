// Simulated-time primitives.
//
// The whole platform simulator advances an integer nanosecond clock instead of
// reading wall time, so every experiment is deterministic and independent of
// container noise. Durations are produced by the performance model
// (hw::PerfModel) and consumed by the scheduler timelines and energy meter.
#pragma once

#include <cstdint>
#include <compare>

namespace bsr {

/// Simulated duration / timestamp in integer nanoseconds.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}

  /// Construct from seconds, rounding to the nearest nanosecond.
  static constexpr SimTime from_seconds(double s) {
    return SimTime(static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5)));
  }
  static constexpr SimTime from_millis(double ms) { return from_seconds(ms * 1e-3); }
  static constexpr SimTime from_micros(double us) { return from_seconds(us * 1e-6); }
  static constexpr SimTime zero() { return SimTime(0); }

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double seconds() const { return static_cast<double>(ns_) * 1e-9; }
  [[nodiscard]] constexpr double millis() const { return static_cast<double>(ns_) * 1e-6; }

  constexpr SimTime& operator+=(SimTime o) { ns_ += o.ns_; return *this; }
  constexpr SimTime& operator-=(SimTime o) { ns_ -= o.ns_; return *this; }

  friend constexpr SimTime operator+(SimTime a, SimTime b) { return SimTime(a.ns_ + b.ns_); }
  friend constexpr SimTime operator-(SimTime a, SimTime b) { return SimTime(a.ns_ - b.ns_); }
  friend constexpr SimTime operator*(SimTime a, double k) {
    return from_seconds(a.seconds() * k);
  }
  friend constexpr SimTime operator*(double k, SimTime a) { return a * k; }
  friend constexpr auto operator<=>(SimTime a, SimTime b) = default;

 private:
  std::int64_t ns_ = 0;
};

inline constexpr SimTime max(SimTime a, SimTime b) { return a < b ? b : a; }
inline constexpr SimTime min(SimTime a, SimTime b) { return a < b ? a : b; }

}  // namespace bsr
