#include "common/table_printer.hpp"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace bsr {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::fmt(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

std::string TablePrinter::pct(double fraction, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << fraction * 100.0 << "%";
  return ss.str();
}

std::string TablePrinter::num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << cell;
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::to_string() const {
  std::ostringstream ss;
  print(ss);
  return ss.str();
}

}  // namespace bsr
