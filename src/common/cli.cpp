#include "common/cli.hpp"

#include <stdexcept>
#include <string_view>

namespace bsr {

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // Google Benchmark flags pass through untouched.
    if (arg.rfind("--benchmark", 0) == 0) continue;
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    const std::string_view body = std::string_view(arg).substr(2);
    const auto eq = body.find('=');
    if (eq == std::string_view::npos) {
      flags_[std::string(body)] = "1";
    } else {
      flags_[std::string(body.substr(0, eq))] =
          std::string(body.substr(eq + 1));
    }
  }
}

bool Cli::has(const std::string& name) const { return flags_.count(name) > 0; }

std::string Cli::get(const std::string& name, const std::string& def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : std::stoll(it->second);
}

double Cli::get_double(const std::string& name, double def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : std::stod(it->second);
}

bool Cli::get_bool(const std::string& name, bool def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return it->second == "1" || it->second == "true" || it->second == "yes";
}

}  // namespace bsr
