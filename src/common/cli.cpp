#include "common/cli.hpp"

// <iostream> is deliberately avoided library-wide: its ios_base::Init adds
// ~0.5 ms of static-initialization startup to every linking binary (see
// common/stdio_stream.hpp).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "common/stdio_stream.hpp"

namespace bsr {

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // Google Benchmark flags pass through untouched.
    if (arg.rfind("--benchmark", 0) == 0) continue;
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    const std::string_view body = std::string_view(arg).substr(2);
    const auto eq = body.find('=');
    if (eq == std::string_view::npos) {
      flags_[std::string(body)] = "1";
    } else {
      flags_[std::string(body.substr(0, eq))] =
          std::string(body.substr(eq + 1));
    }
  }
}

Cli& Cli::add_spec(const std::string& name, Spec spec) {
  for (const auto& [existing, unused] : specs_) {
    (void)unused;
    if (existing == name) {
      throw std::logic_error("Cli: flag --" + name + " registered twice");
    }
  }
  specs_.emplace_back(name, std::move(spec));
  return *this;
}

Cli& Cli::arg_int(const std::string& name, std::int64_t def,
                  const std::string& help) {
  return add_spec(name, Spec{"<int>", std::to_string(def), help, true});
}

Cli& Cli::arg_double(const std::string& name, double def,
                     const std::string& help) {
  // Shortest string that round-trips exactly, so the help text stays
  // readable ("0.25") while get() and get_double() both see the true value.
  char buf[32];
  for (int precision = 6; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, def);
    if (std::stod(buf) == def) break;
  }
  return add_spec(name, Spec{"<float>", buf, help, true, def});
}

Cli& Cli::arg_string(const std::string& name, const std::string& def,
                     const std::string& help) {
  return add_spec(name, Spec{"<string>", def, help, true});
}

Cli& Cli::arg_flag(const std::string& name, const std::string& help) {
  return add_spec(name, Spec{"", "0", help, false});
}

bool Cli::parse(int argc, char** argv) {
  return parse(argc, argv, stdout_stream());
}

bool Cli::parse_or_exit(int argc, char** argv) {
  try {
    return parse(argc, argv);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    std::exit(2);
  }
}

bool Cli::parse(int argc, char** argv, std::ostream& out) {
  const std::string program = argc > 0 ? argv[0] : "program";
  const auto known = [&](const std::string& name) -> const Spec* {
    for (const auto& [n, spec] : specs_) {
      if (n == name) return &spec;
    }
    return nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--benchmark", 0) == 0) continue;
    if (arg == "--help" || arg == "-h") {
      out << help_text(program);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected positional argument \"" + arg +
                                  "\"; try --help");
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    const std::string name = eq == std::string::npos ? body : body.substr(0, eq);
    const Spec* spec = known(name);
    if (spec == nullptr) {
      std::string all;
      for (const auto& [n, s] : specs_) {
        (void)s;
        all += all.empty() ? "--" : ", --";
        all += n;
      }
      throw std::invalid_argument(
          "unknown flag --" + name + " (known flags: " +
          (all.empty() ? "none" : all) + "); try --help");
    }
    if (eq != std::string::npos) {
      flags_[name] = body.substr(eq + 1);
    } else if (spec->takes_value) {
      if (i + 1 >= argc ||
          std::string_view(argv[i + 1]).rfind("--", 0) == 0) {
        throw std::invalid_argument("flag --" + name + " expects a " +
                                    spec->value_name + " value; try --help");
      }
      flags_[name] = argv[++i];  // --name value
    } else {
      flags_[name] = "1";  // bare switch
    }
    check_value(name, *spec, flags_[name]);
  }
  return true;
}

void Cli::check_value(const std::string& name, const Spec& spec,
                      const std::string& value) {
  // Typo'd values fail as loudly as typo'd flags: the whole token must
  // parse ("--n 2048O" is an error, not a silently truncated 2048).
  bool ok = true;
  try {
    std::size_t consumed = 0;
    if (spec.value_name == "<int>") {
      (void)std::stoll(value, &consumed);
      ok = consumed == value.size();
    } else if (spec.value_name == "<float>") {
      (void)std::stod(value, &consumed);
      ok = consumed == value.size();
    } else if (!spec.takes_value) {
      // Switches: only recognized boolean spellings ("--verbose=ture" must
      // not silently mean false).
      ok = value == "1" || value == "0" || value == "true" ||
           value == "false" || value == "yes" || value == "no";
    }
  } catch (const std::exception&) {
    ok = false;
  }
  if (!ok) {
    throw std::invalid_argument(
        "flag --" + name + ": \"" + value + "\" is not a valid " +
        (spec.takes_value ? spec.value_name : "boolean") + " value");
  }
}

std::string Cli::help_text(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [--flag[=value] ...]\n\n";
  std::size_t width = 4;  // "help"
  for (const auto& [name, spec] : specs_) {
    width = std::max(width, name.size() + 1 + spec.value_name.size());
  }
  for (const auto& [name, spec] : specs_) {
    const std::string head =
        name + (spec.value_name.empty() ? "" : "=" + spec.value_name);
    os << "  --" << head << std::string(width - head.size() + 2, ' ')
       << spec.help;
    if (spec.takes_value) os << " [default: " << spec.default_value << "]";
    os << "\n";
  }
  os << "  --help" << std::string(width - 4 + 2, ' ')
     << "show this message and exit\n";
  return os.str();
}

const Cli::Spec& Cli::spec_or_throw(const std::string& name) const {
  for (const auto& [n, spec] : specs_) {
    if (n == name) return spec;
  }
  throw std::logic_error("Cli: flag --" + name +
                         " was never registered; use the (name, default) "
                         "getter or register it first");
}

const Cli::Spec& Cli::spec_of_type(const std::string& name,
                                   const std::string& value_name) const {
  const Spec& spec = spec_or_throw(name);
  if (spec.value_name != value_name) {
    throw std::logic_error(
        "Cli: flag --" + name + " is registered as " +
        (spec.value_name.empty() ? "a switch" : spec.value_name) +
        "; the " + (value_name.empty() ? "switch" : value_name) +
        " getter does not apply");
  }
  return spec;
}

bool Cli::has(const std::string& name) const { return flags_.count(name) > 0; }

std::string Cli::get(const std::string& name) const {
  return get(name, spec_or_throw(name).default_value);
}

std::int64_t Cli::get_int(const std::string& name) const {
  return get_int(name, std::stoll(spec_of_type(name, "<int>").default_value));
}

double Cli::get_double(const std::string& name) const {
  return get_double(name, spec_of_type(name, "<float>").double_default);
}

bool Cli::get_bool(const std::string& name) const {
  const Spec& spec = spec_of_type(name, "");
  return get_bool(name, spec.default_value == "1");
}

std::string Cli::get(const std::string& name, const std::string& def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : std::stoll(it->second);
}

double Cli::get_double(const std::string& name, double def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : std::stod(it->second);
}

bool Cli::get_bool(const std::string& name, bool def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return it->second == "1" || it->second == "true" || it->second == "yes";
}

namespace {

/// One loud exit shared by both list parsers.
[[noreturn]] void bad_list_token(const std::string& flag,
                                 const std::string& token,
                                 const std::string& what,
                                 const std::string& example) {
  std::fprintf(stderr, "error: --%s: \"%s\" is not %s (expected e.g. --%s %s)\n",
               flag.c_str(), token.c_str(), what.c_str(), flag.c_str(),
               example.c_str());
  std::exit(2);
}

/// Splits on commas and converts each token with `convert` (which returns
/// false on a malformed or out-of-range token). Empty lists are rejected.
template <typename T, typename Convert>
std::vector<T> parse_list_or_exit(const std::string& flag,
                                  const std::string& csv,
                                  const std::string& what,
                                  const std::string& example,
                                  Convert convert) {
  std::vector<T> out;
  std::string cur;
  for (const char ch : csv + ",") {
    if (ch != ',') {
      cur += ch;
      continue;
    }
    if (cur.empty()) continue;
    T value{};
    if (!convert(cur, value)) bad_list_token(flag, cur, what, example);
    out.push_back(value);
    cur.clear();
  }
  if (out.empty()) bad_list_token(flag, csv, what, example);
  return out;
}

}  // namespace

std::vector<double> parse_double_list_or_exit(const std::string& flag,
                                              const std::string& csv,
                                              double min_value,
                                              const std::string& what,
                                              const std::string& example) {
  return parse_list_or_exit<double>(
      flag, csv, what, example,
      [min_value](const std::string& token, double& value) {
        try {
          std::size_t used = 0;
          value = std::stod(token, &used);
          if (used != token.size()) return false;
        } catch (const std::exception&) {
          return false;
        }
        // NaN compares false against everything, so reject non-finite
        // explicitly rather than letting it slip past the bound check.
        return std::isfinite(value) && value >= min_value;
      });
}

std::vector<long long> parse_int_list_or_exit(const std::string& flag,
                                              const std::string& csv,
                                              long long min_value,
                                              long long max_value,
                                              const std::string& what,
                                              const std::string& example) {
  return parse_list_or_exit<long long>(
      flag, csv, what, example,
      [min_value, max_value](const std::string& token, long long& value) {
        try {
          std::size_t used = 0;
          value = std::stoll(token, &used);
          if (used != token.size()) return false;
        } catch (const std::exception&) {
          return false;
        }
        return value >= min_value && value <= max_value;
      });
}

std::vector<std::string> parse_string_list_or_exit(const std::string& flag,
                                                   const std::string& csv,
                                                   const std::string& what,
                                                   const std::string& example) {
  return parse_list_or_exit<std::string>(
      flag, csv, what, example,
      [](const std::string& token, std::string& value) {
        value = token;
        return true;  // the splitter already skips empty tokens
      });
}

long long int_flag_in_range_or_exit(const Cli& cli, const std::string& flag,
                                    long long min_value, long long max_value) {
  const long long value = cli.get_int(flag);
  if (value < min_value || value > max_value) {
    std::fprintf(stderr,
                 "error: --%s: %lld is out of range (expected %lld..%lld)\n",
                 flag.c_str(), value, min_value, max_value);
    std::exit(2);
  }
  return value;
}

long long positive_int_or_exit(const Cli& cli, const std::string& flag,
                               long long max_value) {
  return int_flag_in_range_or_exit(cli, flag, 1, max_value);
}

}  // namespace bsr
