#include "common/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <system_error>

namespace bsr {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("json: " + what);
}

[[noreturn]] void fail_at(const std::string& what, std::size_t offset) {
  fail(what + " at offset " + std::to_string(offset));
}

/// Recursive-descent parser over a string_view with an explicit cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue run() {
    skip_ws();
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail_at("trailing characters", pos_);
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail_at("unexpected end of input", pos_);
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail_at(std::string("expected '") + c + "', got '" + text_[pos_] + "'",
              pos_);
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::make_string(parse_string());
      case 't':
        if (!consume_literal("true")) fail_at("bad literal", pos_);
        return JsonValue::make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail_at("bad literal", pos_);
        return JsonValue::make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail_at("bad literal", pos_);
        return JsonValue::make_null();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    std::vector<std::pair<std::string, JsonValue>> members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      members.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') fail_at("expected ',' or '}' in object", pos_ - 1);
    }
    return JsonValue::make_object(std::move(members));
  }

  JsonValue parse_array() {
    expect('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    for (;;) {
      skip_ws();
      items.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') break;
      if (c != ',') fail_at("expected ',' or ']' in array", pos_ - 1);
    }
    return JsonValue::make_array(std::move(items));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail_at("unterminated string", pos_);
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail_at("raw control character in string", pos_ - 1);
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail_at("unterminated escape", pos_);
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default: fail_at("bad escape character", pos_ - 1);
      }
    }
  }

  /// Decodes \uXXXX (and a low surrogate when XXXX is a high surrogate) to
  /// UTF-8 bytes.
  std::string parse_unicode_escape() {
    const auto hex4 = [&]() -> unsigned {
      if (pos_ + 4 > text_.size()) fail_at("truncated \\u escape", pos_);
      unsigned v = 0;
      for (int i = 0; i < 4; ++i) {
        const char c = text_[pos_++];
        v <<= 4;
        if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
        else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
        else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
        else fail_at("bad hex digit in \\u escape", pos_ - 1);
      }
      return v;
    };
    unsigned cp = hex4();
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      if (!consume_literal("\\u")) fail_at("unpaired high surrogate", pos_);
      const unsigned lo = hex4();
      if (lo < 0xDC00 || lo > 0xDFFF) fail_at("bad low surrogate", pos_);
      cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail_at("unpaired low surrogate", pos_);
    }
    std::string out;
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    const auto digit = [&]() {
      return pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9';
    };
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (!digit()) fail_at("bad number", start);
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (digit()) ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digit()) fail_at("bad number (no digits after '.')", start);
      while (digit()) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!digit()) fail_at("bad number (empty exponent)", start);
      while (digit()) ++pos_;
    }
    return JsonValue::make_number(std::string(text_.substr(start, pos_ - start)));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

// ---- JsonValue --------------------------------------------------------------

JsonValue JsonValue::parse(std::string_view text) { return Parser(text).run(); }

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::Bool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(std::string token) {
  JsonValue v;
  v.kind_ = Kind::Number;
  v.scalar_ = std::move(token);
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::String;
  v.scalar_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::Array;
  v.items_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::Object;
  v.members_ = std::move(members);
  return v;
}

namespace {
const char* kind_name(JsonValue::Kind k) {
  switch (k) {
    case JsonValue::Kind::Null: return "null";
    case JsonValue::Kind::Bool: return "bool";
    case JsonValue::Kind::Number: return "number";
    case JsonValue::Kind::String: return "string";
    case JsonValue::Kind::Array: return "array";
    case JsonValue::Kind::Object: return "object";
  }
  return "?";
}

void require_kind(JsonValue::Kind got, JsonValue::Kind want) {
  if (got != want) {
    fail(std::string("expected ") + kind_name(want) + ", got " +
         kind_name(got));
  }
}
}  // namespace

bool JsonValue::as_bool() const {
  require_kind(kind_, Kind::Bool);
  return bool_;
}

const std::string& JsonValue::as_string() const {
  require_kind(kind_, Kind::String);
  return scalar_;
}

const std::string& JsonValue::number_token() const {
  require_kind(kind_, Kind::Number);
  return scalar_;
}

double JsonValue::to_double() const {
  require_kind(kind_, Kind::Number);
  double out = 0.0;
  const auto [ptr, ec] =
      std::from_chars(scalar_.data(), scalar_.data() + scalar_.size(), out);
  if (ec != std::errc() || ptr != scalar_.data() + scalar_.size()) {
    fail("number token \"" + scalar_ + "\" does not parse as double");
  }
  return out;
}

std::int64_t JsonValue::to_int64() const {
  require_kind(kind_, Kind::Number);
  std::int64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(scalar_.data(), scalar_.data() + scalar_.size(), out);
  if (ec != std::errc() || ptr != scalar_.data() + scalar_.size()) {
    fail("number token \"" + scalar_ + "\" is not an int64");
  }
  return out;
}

std::uint64_t JsonValue::to_uint64() const {
  const std::string& token =
      kind_ == Kind::String ? scalar_ : number_token();
  std::uint64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), out);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    fail("token \"" + token + "\" is not a uint64");
  }
  return out;
}

const std::vector<JsonValue>& JsonValue::items() const {
  require_kind(kind_, Kind::Array);
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  require_kind(kind_, Kind::Object);
  return members_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  require_kind(kind_, Kind::Object);
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) fail("missing member \"" + key + "\"");
  return *v;
}

std::string JsonValue::dump() const {
  switch (kind_) {
    case Kind::Null: return "null";
    case Kind::Bool: return bool_ ? "true" : "false";
    case Kind::Number: return scalar_;
    case Kind::String: return json_quote(scalar_);
    case Kind::Array: {
      std::string out = "[";
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ',';
        out += items_[i].dump();
      }
      out += ']';
      return out;
    }
    case Kind::Object: {
      std::string out = "{";
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += ',';
        out += json_quote(members_[i].first);
        out += ':';
        out += members_[i].second.dump();
      }
      out += '}';
      return out;
    }
  }
  return "null";
}

// ---- writer helpers ---------------------------------------------------------

std::string json_quote(std::string_view s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string json_double(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc()) return "0";
  return std::string(buf, ptr);
}

// ---- JsonWriter -------------------------------------------------------------

void JsonWriter::comma() {
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::obj_open() {
  comma();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::obj_close() {
  out_ += '}';
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::arr_open() {
  comma();
  out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::arr_close() {
  out_ += ']';
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  comma();
  out_ += json_quote(k);
  out_ += ':';
  // The value that follows must not emit another comma.
  if (!needs_comma_.empty()) needs_comma_.back() = false;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  comma();
  out_ += json_quote(s);
  if (!needs_comma_.empty()) needs_comma_.back() = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  comma();
  out_ += b ? "true" : "false";
  if (!needs_comma_.empty()) needs_comma_.back() = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  out_ += json_double(v);
  if (!needs_comma_.empty()) needs_comma_.back() = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
  if (!needs_comma_.empty()) needs_comma_.back() = true;
  return *this;
}

JsonWriter& JsonWriter::value_u64(std::uint64_t v) {
  comma();
  out_ += '"';
  out_ += std::to_string(v);
  out_ += '"';
  if (!needs_comma_.empty()) needs_comma_.back() = true;
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  comma();
  out_ += json;
  if (!needs_comma_.empty()) needs_comma_.back() = true;
  return *this;
}

}  // namespace bsr
