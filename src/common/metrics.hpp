// Unified metrics registry: named counters, gauges, and histograms with a
// Prometheus-style text exposition writer.
//
// Every long-lived stat in the repo used to live in its own ad-hoc struct
// (`ServeStats`, the Sweep cache counters, `StoreStats`); this registry gives
// them one home with one naming scheme (`bsr_<subsystem>_<what>[_<unit>]`,
// see docs/OBSERVABILITY.md) and one machine-readable output format, so the
// serve daemon's `metrics` endpoint and any future scraper see a single
// coherent surface.
//
// Design constraints, in order:
//
//   * **Never on the simulation axis.** Metrics measure the *machinery*
//     (request latency, cache traffic, store corruption) on the operational
//     wall clock. Nothing here touches SimTime, RNG streams, or RunConfig —
//     registering or updating a metric cannot perturb a run's bytes.
//   * **Cheap, lock-free updates.** Counter/Gauge updates are single relaxed
//     atomics; Histogram::observe is a bucket scan plus two atomics. Safe to
//     call from every server worker concurrently.
//   * **Deterministic exposition.** Metrics render in registration order and
//     values format through the same shortest-round-trip double writer as
//     the JSON layer, so two snapshots of identical state are byte-identical
//     (tests diff them directly).
//
// Probes cover stats that already live elsewhere (an existing struct behind
// a mutex, a container size): `register_probe` takes a callable sampled at
// exposition time instead of forcing the owner to maintain a shadow copy.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace bsr::common {

/// Monotonically increasing counter (events, requests, faults, bytes).
/// Updates are relaxed atomics: totals are exact, cross-counter snapshots
/// are only as consistent as the caller's own synchronization.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value (queue depth, cache entries, config).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram (request latency, run cost). Buckets are upper
/// bounds in ascending order; an implicit +Inf bucket catches the rest.
/// Observation is lock-free: one linear bucket scan, one CAS loop for the
/// running sum.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  const std::vector<double>& upper_bounds() const { return bounds_; }
  /// Non-cumulative count of observations in bucket `i`
  /// (`i == upper_bounds().size()` is the +Inf bucket).
  std::uint64_t bucket(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }

  /// Default latency buckets: 100us .. ~100s in half-decade steps. Wide on
  /// purpose — covers both microsecond cache hits and multi-second cluster
  /// executions with one shared shape.
  static std::vector<double> default_latency_buckets_s();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};  // bit_cast'd double, CAS-accumulated
};

/// Get-or-create registry of named metrics. Instances are owned by the
/// registry and live until it is destroyed, so call sites can cache the
/// returned reference once and update it lock-free forever after.
///
/// Names must match `[a-zA-Z_][a-zA-Z0-9_]*`; re-requesting an existing name
/// with the same kind returns the same instance, with a different kind
/// throws `std::logic_error` (a name collision is a bug, not a runtime
/// condition).
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name, const std::string& help);
  Gauge& gauge(const std::string& name, const std::string& help);
  Histogram& histogram(const std::string& name, const std::string& help,
                       std::vector<double> upper_bounds);

  /// Register a metric whose value lives elsewhere (a struct behind the
  /// owner's mutex, a container size). `sample` is called at exposition
  /// time; `kind` must be "counter" or "gauge" and only affects the TYPE
  /// annotation. Re-registering a name replaces the previous probe (owners
  /// with shorter lifetimes than the registry re-register on construction).
  void register_probe(const std::string& name, const std::string& help,
                      const std::string& kind, std::function<double()> sample);

  /// Render every registered metric as Prometheus text exposition format
  /// (`# HELP` / `# TYPE` comments, `_bucket`/`_sum`/`_count` histogram
  /// series), in registration order.
  std::string exposition() const;

  /// Process-wide registry: the serve daemon, sweep caches, and store all
  /// meet here. Tests build private instances instead.
  static MetricsRegistry& global();

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kProbe };
  struct Entry {
    std::string name;
    std::string help;
    Kind kind = Kind::kCounter;
    std::string probe_kind;  // "counter" | "gauge", Kind::kProbe only
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<double()> sample;
  };

  Entry& find_or_create(const std::string& name, Kind kind,
                        const std::string& help);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;  // registration order
};

}  // namespace bsr::common
