// A small work-sharing thread pool used by the numeric kernels.
//
// The heterogeneous *scheduling* in this library is simulated (see sched/),
// but the linear-algebra substrate does real math, and GEMM-class kernels are
// parallelized across host cores through this pool. One pool is shared
// process-wide (ThreadPool::shared()) so nested kernels do not oversubscribe.
#pragma once

#include <condition_variable>
#include <memory>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bsr {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Run fn(i) for i in [0, count), distributing contiguous chunks across the
  /// pool; blocks until all iterations complete. Reentrant calls from inside a
  /// worker fall back to serial execution to avoid deadlock.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// Like parallel_for but hands each worker a [begin, end) range.
  void parallel_ranges(std::size_t count,
                       const std::function<void(std::size_t begin, std::size_t end)>& fn);

  /// Process-wide pool sized to the hardware concurrency (capped at 16).
  static ThreadPool& shared();

 private:
  struct Batch;

  void worker_loop();
  void drain(const std::shared_ptr<Batch>& batch);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<Batch> batch_;  // guarded by mu_
  bool stop_ = false;
};

}  // namespace bsr
