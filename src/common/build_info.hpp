// Build provenance: which source revision, compiler, and flags produced this
// binary. Stamped into `--version` output, trace metadata, and the metrics
// exposition so every artifact a run emits is attributable to an exact build
// — "which binary wrote this trace?" must never be a guess.
//
// The values arrive as compile definitions on bsr_common (BSR_GIT_DESCRIBE
// from `git describe` at configure time, BSR_BUILD_COMPILER /
// BSR_BUILD_TYPE / BSR_BUILD_FLAGS from the CMake toolchain variables); a
// source export or a non-git checkout degrades to "unknown" rather than
// failing the build.
#pragma once

#include <string>

namespace bsr::common {

/// Immutable per-binary build provenance (see file comment for the source of
/// each field).
struct BuildInfo {
  std::string version;     ///< `git describe --always --dirty` at configure
  std::string compiler;    ///< compiler id + version, e.g. "GNU 12.2.0"
  std::string build_type;  ///< CMAKE_BUILD_TYPE, e.g. "Release"
  std::string flags;       ///< CXX flags the build type implied
};

/// The provenance baked into this binary. Never throws; fields the build
/// system could not determine read "unknown".
const BuildInfo& build_info();

/// One-line human-readable report, e.g.
/// `bsr_served 0.1.0-12-gabc1234 (GNU 12.2.0, Release, -O3 -DNDEBUG)` —
/// what `--version` prints.
std::string build_info_line(const std::string& tool);

}  // namespace bsr::common
