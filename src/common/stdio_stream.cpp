#include "common/stdio_stream.hpp"

#include <cstdio>
#include <ostream>
#include <streambuf>

namespace bsr {

namespace {

class StdoutBuf final : public std::streambuf {
 protected:
  int overflow(int c) override {
    if (c != traits_type::eof()) {
      if (std::fputc(c, stdout) == EOF) return traits_type::eof();
    }
    return c;
  }
  std::streamsize xsputn(const char* s, std::streamsize n) override {
    return static_cast<std::streamsize>(
        std::fwrite(s, 1, static_cast<std::size_t>(n), stdout));
  }
  int sync() override { return std::fflush(stdout); }
};

}  // namespace

std::ostream& stdout_stream() {
  static StdoutBuf buf;
  static std::ostream os(&buf);
  return os;
}

}  // namespace bsr
