// Deterministic random number generation.
//
// All stochastic behaviour in the library (matrix fills, fault arrival times,
// profiling noise) flows through Rng so experiments are reproducible from a
// single seed. The generator is xoshiro256** seeded via splitmix64, which is
// fast, has no measurable bias for our use, and needs no external dependency.
#pragma once

#include <cstdint>
#include <vector>

namespace bsr {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform in [0, 2^64).
  std::uint64_t next_u64();

  /// Uniform in [0, n). Unbiased via rejection.
  std::uint64_t next_below(std::uint64_t n);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (cached second value).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Exponential with given rate (events per unit time).
  double exponential(double rate);

  /// Poisson-distributed count with the given mean. Uses Knuth for small
  /// means and a normal approximation above 64 (adequate for fault counts).
  std::uint64_t poisson(double mean);

  /// Derive an independent child stream (for per-trial seeding).
  Rng split();

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace bsr
