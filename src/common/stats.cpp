#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bsr::stats {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double median(std::span<const double> xs) { return percentile(xs, 0.5); }

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  p = std::clamp(p, 0.0, 1.0);
  const double pos = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double min(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    throw std::invalid_argument("linear_fit: need two equal-length series");
  }
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxx += (xs[i] - mx) * (xs[i] - mx);
    sxy += (xs[i] - mx) * (ys[i] - my);
  }
  LinearFit fit;
  fit.slope = sxx == 0.0 ? 0.0 : sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  return fit;
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) {
    if (x <= 0.0) throw std::invalid_argument("geomean: inputs must be positive");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

Proportion wilson_interval(int successes, int trials, double z) {
  Proportion p;
  if (trials <= 0) return p;
  const double n = trials;
  const double phat = successes / n;
  p.estimate = phat;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (phat + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n)) / denom;
  p.lo = std::max(0.0, center - half);
  p.hi = std::min(1.0, center + half);
  return p;
}

void Accumulator::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

}  // namespace bsr::stats
