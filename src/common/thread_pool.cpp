#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

namespace bsr {

namespace {
thread_local bool t_inside_pool_worker = false;
}  // namespace

// Shared-ownership batch descriptor: every participant (workers + caller)
// holds a shared_ptr, so no one can observe a destroyed batch even while the
// caller's stack frame unwinds.
struct ThreadPool::Batch {
  std::size_t count = 0;
  std::size_t grain = 1;
  const std::function<void(std::size_t, std::size_t)>* range_fn = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
};

ThreadPool::ThreadPool(std::size_t num_threads) {
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  done_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::drain(const std::shared_ptr<Batch>& b) {
  for (;;) {
    const std::size_t begin = b->next.fetch_add(b->grain);
    if (begin >= b->count) return;
    const std::size_t end = std::min(begin + b->grain, b->count);
    (*b->range_fn)(begin, end);
    if (b->completed.fetch_add(end - begin) + (end - begin) == b->count) {
      // Last chunk done: retire the batch and wake everyone parked on it.
      std::lock_guard lk(mu_);
      if (batch_ == b) batch_ = nullptr;
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::worker_loop() {
  t_inside_pool_worker = true;
  for (;;) {
    std::shared_ptr<Batch> b;
    {
      std::unique_lock lk(mu_);
      work_cv_.wait(lk, [&] { return stop_ || batch_ != nullptr; });
      if (stop_) return;
      b = batch_;
    }
    drain(b);
    // The claim counter is exhausted, but other participants may still be
    // executing chunks; park until the batch retires so we cannot re-grab it.
    {
      std::unique_lock lk(mu_);
      done_cv_.wait(lk, [&] { return stop_ || batch_ != b; });
      if (stop_) return;
    }
  }
}

void ThreadPool::parallel_ranges(
    std::size_t count, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  if (workers_.empty() || t_inside_pool_worker || count == 1) {
    fn(0, count);
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->count = count;
  batch->grain = std::max<std::size_t>(1, count / (workers_.size() * 4));
  batch->range_fn = &fn;
  {
    std::lock_guard lk(mu_);
    batch_ = batch;
  }
  work_cv_.notify_all();
  drain(batch);  // the calling thread participates
  std::unique_lock lk(mu_);
  done_cv_.wait(lk, [&] { return batch_ != batch; });
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  parallel_ranges(count, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(std::min<std::size_t>(
      16, std::max<std::size_t>(1, std::thread::hardware_concurrency())));
  return pool;
}

}  // namespace bsr
