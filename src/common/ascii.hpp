// Locale-independent ASCII case folding, shared by registry key
// normalization and the legacy string parsers so they can never drift.
#pragma once

#include <string>

namespace bsr {

inline std::string ascii_lower(std::string s) {
  for (char& c : s) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return s;
}

}  // namespace bsr
