// Small statistics helpers used by benches and the slack predictor tests.
//
// Degenerate-input contract (audited; tests/common/stats_test.cpp pins it):
// the summary helpers never throw on short series. An empty span returns 0
// from mean/variance/stddev/median/percentile/min/max; a single-sample span
// returns that sample from every percentile (p99 of one trial is the trial)
// and 0 from the n-1 variance. percentile() clamps p into [0, 1] and
// linearly interpolates between order statistics, so p=0 is min and p=1 is
// max exactly. Helpers with no meaningful degenerate value (linear_fit,
// geomean on non-positive inputs) throw std::invalid_argument instead.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace bsr::stats {

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);  // sample variance (n-1)
double stddev(std::span<const double> xs);
double median(std::span<const double> xs);

/// p in [0,1]; linear interpolation between order statistics.
double percentile(std::span<const double> xs, double p);

double min(std::span<const double> xs);
double max(std::span<const double> xs);

/// Least-squares fit y = a + b*x; returns {a, b}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
};
LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys);

/// Geometric mean (all inputs must be > 0).
double geomean(std::span<const double> xs);

/// Wilson score interval for a binomial proportion (successes out of trials)
/// at ~95% confidence — used by the correctness-percentage benches to show
/// how much the reduced trial counts widen the estimate vs the paper's 1e5.
struct Proportion {
  double estimate = 0.0;
  double lo = 0.0;
  double hi = 1.0;
};
Proportion wilson_interval(int successes, int trials, double z = 1.96);

/// Running mean/variance accumulator (Welford).
class Accumulator {
 public:
  void add(double x);
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace bsr::stats
