// Monotonic arena allocator for hot-loop scratch storage.
//
// The simulator's hot loops — the blocked kernels' packing/scratch panels,
// the cluster engine's per-iteration plans, the campaign aggregation buffers —
// all want the same thing: many short-lived allocations whose lifetimes nest
// like a stack, freed wholesale when the enclosing computation finishes.
// malloc/free (and std::vector's zero-fill) are pure overhead there. An Arena
// hands out aligned pointers by bumping a cursor through preallocated chunks:
//
//   * alloc<T>(n) is a pointer bump (amortized); memory is NOT zeroed —
//     callers own initialization, exactly like malloc;
//   * every allocation is aligned to at least alignof(std::max_align_t)
//     (kernel code may request wider, e.g. 64-byte cache-line alignment);
//   * when the current chunk is exhausted the arena falls back to a new
//     heap chunk (geometric growth), so it never fails before the heap does;
//   * reset() makes the whole capacity reusable without returning it to the
//     OS — the steady state of a sweep is zero mallocs per cell;
//   * ArenaScope unwinds to a high-water mark on destruction, so nested
//     scratch users (gemm inside syrk inside potrf) stack like frames.
//
// Arenas are NOT thread-safe; use one per thread. Kernel code uses
// Arena::scratch(), a thread-local instance, so pool workers never contend.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace bsr {

class Arena {
 public:
  /// Creates an arena whose first chunk holds `initial_bytes` (rounded up to
  /// the minimum chunk size). The chunk is allocated lazily on first use.
  explicit Arena(std::size_t initial_bytes = kDefaultChunkBytes)
      : next_chunk_bytes_(initial_bytes < kMinChunkBytes ? kMinChunkBytes
                                                         : initial_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Uninitialized storage for `count` objects of type T, aligned to
  /// max(alignof(T), alignof(std::max_align_t)). count == 0 returns a valid,
  /// unique non-null pointer (like operator new).
  template <typename T>
  [[nodiscard]] T* alloc(std::size_t count) {
    return static_cast<T*>(alloc_bytes(count * sizeof(T), alignof(T)));
  }

  /// Uninitialized storage of `bytes` bytes aligned to `align` (power of
  /// two; widened to alignof(std::max_align_t) when smaller).
  [[nodiscard]] void* alloc_bytes(std::size_t bytes, std::size_t align);

  /// Rewinds the arena: all prior allocations are invalidated and the full
  /// capacity becomes reusable. Chunks are retained (no free/realloc), so a
  /// reset arena serves the next round without touching malloc — except that
  /// multiple overflow chunks coalesce into one bigger chunk on the next
  /// allocation, so a workload that overflowed once stops overflowing.
  void reset();

  /// Bytes handed out since construction or the last reset().
  [[nodiscard]] std::size_t used() const { return used_; }
  /// Total bytes owned across all chunks.
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Number of chunks allocated from the heap over the arena's lifetime —
  /// a steady-state hot loop should hold this constant at 1.
  [[nodiscard]] std::size_t chunks() const { return chunks_.size(); }

  /// Thread-local scratch arena for kernel internals. Use through ArenaScope
  /// so nested users unwind correctly.
  static Arena& scratch();

 private:
  friend class ArenaScope;

  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  /// Opaque rewind point: (chunk index, offset within it).
  struct Mark {
    std::size_t chunk = 0;
    std::size_t offset = 0;
    std::size_t used = 0;
  };

  [[nodiscard]] Mark mark() const { return {active_, offset_, used_}; }
  void rewind(const Mark& m);

  void add_chunk(std::size_t min_bytes);

  static constexpr std::size_t kMinChunkBytes = 4 * 1024;
  static constexpr std::size_t kDefaultChunkBytes = 256 * 1024;

  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;       ///< index of the chunk the cursor is in
  std::size_t offset_ = 0;       ///< cursor within chunks_[active_]
  std::size_t used_ = 0;
  std::size_t capacity_ = 0;
  std::size_t next_chunk_bytes_;  ///< size of the next chunk to allocate
};

/// RAII frame over an arena: remembers the cursor at construction and rewinds
/// to it at destruction, freeing (for reuse) everything the frame allocated.
/// Frames must nest — destroy in reverse order of construction, which scoped
/// locals guarantee.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena) : arena_(arena), mark_(arena.mark()) {}
  ~ArenaScope() { arena_.rewind(mark_); }

  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

  /// Allocation through the scope reads as "scratch tied to this frame".
  template <typename T>
  [[nodiscard]] T* alloc(std::size_t count) {
    return arena_.alloc<T>(count);
  }

 private:
  Arena& arena_;
  Arena::Mark mark_;
};

}  // namespace bsr
