// Fixed-width table output used by the benchmark harnesses so every
// table/figure reproduction prints paper-style rows.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace bsr {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Append a row of already-formatted cells; missing cells print empty.
  void add_row(std::vector<std::string> cells);

  /// Format helpers.
  static std::string fmt(double v, int precision = 3);
  static std::string pct(double fraction, int precision = 1);  // 0.283 -> "28.3%"
  /// Shortest-form %.6g rendering — the benches' machine-readable number
  /// format (matches the sweep engine's standard_columns()).
  static std::string num(double v);

  /// Render with a header rule and column alignment.
  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bsr
