#include "common/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cctype>
#include <stdexcept>

#include "common/json.hpp"

namespace bsr::common {

namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(name[0])) || name[0] == '_'))
    return false;
  return std::all_of(name.begin(), name.end(), [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  });
}

// One exposition number: integers render without a fraction part, everything
// else through the shortest-round-trip writer shared with the JSON layer.
std::string format_value(double v) { return json_double(v); }

}  // namespace

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end()))
    throw std::logic_error("Histogram: bucket bounds must be ascending");
  if (std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end())
    throw std::logic_error("Histogram: duplicate bucket bound");
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    counts_[i].store(0, std::memory_order_relaxed);
}

void Histogram::observe(double v) {
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  counts_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t bits = sum_bits_.load(std::memory_order_relaxed);
  for (;;) {
    const double next = std::bit_cast<double>(bits) + v;
    if (sum_bits_.compare_exchange_weak(bits, std::bit_cast<std::uint64_t>(next),
                                        std::memory_order_relaxed))
      return;
  }
}

double Histogram::sum() const {
  return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
}

std::vector<double> Histogram::default_latency_buckets_s() {
  return {1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0,
          100.0};
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricsRegistry::Entry& MetricsRegistry::find_or_create(
    const std::string& name, Kind kind, const std::string& help) {
  if (!valid_metric_name(name))
    throw std::logic_error("MetricsRegistry: invalid metric name '" + name +
                           "'");
  for (auto& e : entries_) {
    if (e->name != name) continue;
    if (e->kind != kind)
      throw std::logic_error("MetricsRegistry: '" + name +
                             "' re-registered with a different kind");
    return *e;
  }
  auto e = std::make_unique<Entry>();
  e->name = name;
  e->help = help;
  e->kind = kind;
  entries_.push_back(std::move(e));
  return *entries_.back();
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = find_or_create(name, Kind::kCounter, help);
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = find_or_create(name, Kind::kGauge, help);
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = find_or_create(name, Kind::kHistogram, help);
  if (!e.histogram)
    e.histogram = std::make_unique<Histogram>(std::move(upper_bounds));
  return *e.histogram;
}

void MetricsRegistry::register_probe(const std::string& name,
                                     const std::string& help,
                                     const std::string& kind,
                                     std::function<double()> sample) {
  if (kind != "counter" && kind != "gauge")
    throw std::logic_error("MetricsRegistry: probe kind must be counter|gauge");
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = find_or_create(name, Kind::kProbe, help);
  e.help = help;
  e.probe_kind = kind;
  e.sample = std::move(sample);
}

std::string MetricsRegistry::exposition() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& e : entries_) {
    out += "# HELP " + e->name + " " + e->help + "\n";
    switch (e->kind) {
      case Kind::kCounter:
        out += "# TYPE " + e->name + " counter\n";
        out += e->name + " " + std::to_string(e->counter->value()) + "\n";
        break;
      case Kind::kGauge:
        out += "# TYPE " + e->name + " gauge\n";
        out += e->name + " " + format_value(e->gauge->value()) + "\n";
        break;
      case Kind::kProbe:
        out += "# TYPE " + e->name + " " + e->probe_kind + "\n";
        out += e->name + " " + format_value(e->sample ? e->sample() : 0.0) +
               "\n";
        break;
      case Kind::kHistogram: {
        const Histogram& h = *e->histogram;
        out += "# TYPE " + e->name + " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.upper_bounds().size(); ++i) {
          cumulative += h.bucket(i);
          out += e->name + "_bucket{le=\"" +
                 format_value(h.upper_bounds()[i]) + "\"} " +
                 std::to_string(cumulative) + "\n";
        }
        cumulative += h.bucket(h.upper_bounds().size());
        out += e->name + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) +
               "\n";
        out += e->name + "_sum " + format_value(h.sum()) + "\n";
        out += e->name + "_count " + std::to_string(h.count()) + "\n";
        break;
      }
    }
  }
  return out;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace bsr::common
