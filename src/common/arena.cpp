#include "common/arena.hpp"

#include <algorithm>

namespace bsr {

namespace {

/// First multiple of `align` (power of two) at or above `addr`.
std::uintptr_t align_up(std::uintptr_t addr, std::size_t align) {
  return (addr + align - 1) & ~static_cast<std::uintptr_t>(align - 1);
}

}  // namespace

void* Arena::alloc_bytes(std::size_t bytes, std::size_t align) {
  align = std::max(align, alignof(std::max_align_t));
  if (bytes == 0) bytes = 1;  // keep returned pointers unique
  for (;;) {
    if (active_ < chunks_.size()) {
      Chunk& c = chunks_[active_];
      const auto base = reinterpret_cast<std::uintptr_t>(c.data.get());
      const std::uintptr_t aligned = align_up(base + offset_, align);
      const std::size_t new_offset = (aligned - base) + bytes;
      if (new_offset <= c.size) {
        offset_ = new_offset;
        used_ += bytes;
        return reinterpret_cast<void*>(aligned);
      }
      // Exhausted: try the next retained chunk (present after a rewind past
      // an overflow) before growing.
      if (active_ + 1 < chunks_.size()) {
        ++active_;
        offset_ = 0;
        continue;
      }
    }
    add_chunk(bytes + align);
  }
}

void Arena::add_chunk(std::size_t min_bytes) {
  const std::size_t size = std::max(min_bytes, next_chunk_bytes_);
  chunks_.push_back(Chunk{std::make_unique<std::byte[]>(size), size});
  capacity_ += size;
  active_ = chunks_.size() - 1;
  offset_ = 0;
  // Geometric growth keeps the number of overflow chunks logarithmic in the
  // peak footprint.
  next_chunk_bytes_ = std::min<std::size_t>(size * 2, std::size_t{1} << 30);
}

void Arena::reset() {
  if (chunks_.size() > 1) {
    // Coalesce: drop every chunk and size the next one to the whole peak
    // footprint, so the workload that overflowed fits in one chunk from now
    // on. The actual allocation is deferred to the next alloc_bytes().
    next_chunk_bytes_ = std::max(next_chunk_bytes_, capacity_);
    chunks_.clear();
    capacity_ = 0;
  }
  active_ = 0;
  offset_ = 0;
  used_ = 0;
}

void Arena::rewind(const Mark& m) {
  // Rewinding past a reset() that freed chunks would dangle; ArenaScope
  // frames must not straddle a reset. After a plain rewind the later chunks
  // stay allocated and are reused by the retry loop in alloc_bytes.
  if (m.chunk < chunks_.size()) {
    active_ = m.chunk;
    offset_ = m.offset;
    used_ = m.used;
  }
}

Arena& Arena::scratch() {
  thread_local Arena arena;
  return arena;
}

}  // namespace bsr
