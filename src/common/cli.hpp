// Registered-flag command-line parsing shared by benches and examples.
//
// Drivers declare their flags up front (name, default, help text), then
// parse(): unknown flags fail loudly with the known-flag list instead of
// silently falling back to defaults on a typo, and --help prints usage
// auto-generated from the registrations.
//
//   bsr::Cli cli;
//   cli.arg_int("n", 30720, "matrix order")
//      .arg_double("r", 0.0, "reclamation ratio in [0, 1]");
//   if (!cli.parse_or_exit(argc, argv)) return 0;  // false: --help printed
//   const std::int64_t n = cli.get_int("n");
//
// Both --name=value and --name value are accepted; a bare --name is "1"
// (useful for booleans). The flagless constructor-parsing mode
// (Cli(argc, argv)) is DEPRECATED: it accepts any flag unchecked and is kept
// for one release only.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace bsr {

class Cli {
 public:
  /// Registration mode: declare flags with arg_*(), then call parse().
  Cli() = default;

  /// DEPRECATED legacy mode: parses argv of the form --name=value (or bare
  /// --name, treated as "1") immediately, accepting unknown flags silently.
  /// Unrecognized positional arguments throw.
  Cli(int argc, char** argv);

  // -- registration (chainable) -----------------------------------------------
  Cli& arg_int(const std::string& name, std::int64_t def,
               const std::string& help);
  Cli& arg_double(const std::string& name, double def, const std::string& help);
  Cli& arg_string(const std::string& name, const std::string& def,
                  const std::string& help);
  /// A boolean switch, default false; set with --name or --name=true /
  /// --name=false (switches never consume a following bare token).
  Cli& arg_flag(const std::string& name, const std::string& help);

  /// Parses argv against the registered flags. Returns false when --help (or
  /// -h) was requested — usage has been printed to `out` and the caller
  /// should exit successfully. Throws std::invalid_argument on an unknown
  /// flag (message lists the known flags) or a positional argument.
  /// --benchmark* flags pass through untouched for Google Benchmark binaries.
  bool parse(int argc, char** argv, std::ostream& out);
  bool parse(int argc, char** argv);  // `out` = bsr::stdout_stream()

  /// parse() for driver main()s: user input errors (unknown flag, bad
  /// value, positional) print "error: ..." to stderr and exit(2) instead of
  /// escaping as an exception (which would std::terminate and look like a
  /// crash). Returns false when --help was printed — return 0 from main.
  bool parse_or_exit(int argc, char** argv);

  /// The auto-generated usage text.
  [[nodiscard]] std::string help_text(const std::string& program) const;

  // -- lookup -----------------------------------------------------------------
  [[nodiscard]] bool has(const std::string& name) const;

  /// Registered-flag getters: the default comes from the registration.
  /// Throw std::logic_error when `name` was never registered.
  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  /// Explicit-default getters (the only lookups available in legacy mode).
  [[nodiscard]] std::string get(const std::string& name, const std::string& def) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name, std::int64_t def) const;
  [[nodiscard]] double get_double(const std::string& name, double def) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool def) const;

 private:
  struct Spec {
    std::string value_name;  // "<int>", "<float>", "<string>", "" for switches
    std::string default_value;  // display form (help text) and string getter
    std::string help;
    bool takes_value = true;
    double double_default = 0.0;  // exact value for get_double (the display
                                  // string is rounded for readability)
  };

  Cli& add_spec(const std::string& name, Spec spec);
  [[nodiscard]] const Spec& spec_or_throw(const std::string& name) const;
  [[nodiscard]] const Spec& spec_of_type(const std::string& name,
                                         const std::string& value_name) const;
  static void check_value(const std::string& name, const Spec& spec,
                          const std::string& value);

  std::vector<std::pair<std::string, Spec>> specs_;  // registration order
  std::map<std::string, std::string> flags_;
};

// Shared fail-fast parsers for the benches' comma-separated list flags
// (--devices 1,2,4,8 / --drift 0,0.01,... / --rates 25,75,225). Any empty
// list, malformed token, non-finite value, or value below `min_value`
// prints `error: --<flag>: "<token>" is not <what> (expected e.g. --<flag>
// <example>)` to stderr and exits 2, in Cli::parse_or_exit style.

/// Parses a comma-separated list of doubles for --`flag` (see above).
std::vector<double> parse_double_list_or_exit(const std::string& flag,
                                              const std::string& csv,
                                              double min_value,
                                              const std::string& what,
                                              const std::string& example);
/// Parses a comma-separated list of integers in [min_value, max_value] for
/// --`flag`; tokens must parse fully as base-10 integers, and values beyond
/// the bounds fail loudly rather than truncating later (see above).
std::vector<long long> parse_int_list_or_exit(const std::string& flag,
                                              const std::string& csv,
                                              long long min_value,
                                              long long max_value,
                                              const std::string& what,
                                              const std::string& example);
/// Splits a comma-separated list of non-empty string tokens for --`flag`
/// (no conversion); an empty list exits like the numeric parsers.
std::vector<std::string> parse_string_list_or_exit(const std::string& flag,
                                                   const std::string& csv,
                                                   const std::string& what,
                                                   const std::string& example);

// Bounds-checked scalar flag readers, the single-value counterpart of the
// list parsers above. Benches and daemons read counted flags (--trials,
// --workers, --queue-depth, --port) through these instead of hand-rolled
// `if (x < 1)` checks, so every driver rejects bad input the same way:
// `error: --<flag>: <value> is out of range (expected <min>..<max>)` to
// stderr, exit 2.

/// Reads the registered <int> flag --`flag` from `cli` and checks
/// min_value <= value <= max_value; out-of-range exits loudly (see above).
long long int_flag_in_range_or_exit(const Cli& cli, const std::string& flag,
                                    long long min_value, long long max_value);

/// int_flag_in_range_or_exit with min_value 1 — the common shape for count
/// flags that must be strictly positive.
long long positive_int_or_exit(const Cli& cli, const std::string& flag,
                               long long max_value = 1000000000);

}  // namespace bsr
