// Minimal --key=value flag parsing shared by benches and examples.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace bsr {

class Cli {
 public:
  /// Parses argv of the form --name=value (or bare --name, treated as "1").
  /// Unrecognized positional arguments throw.
  Cli(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name, const std::string& def) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name, std::int64_t def) const;
  [[nodiscard]] double get_double(const std::string& name, double def) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool def) const;

 private:
  std::map<std::string, std::string> flags_;
};

}  // namespace bsr
