// Thin RAII wrappers over local stream sockets for the serving subsystem:
// Unix-domain listeners/connections (the default transport in
// docs/SERVING.md) and localhost TCP as the fallback for environments
// without a writable socket path.
//
// Scope is deliberately narrow — blocking sockets, full-message send, and a
// buffered line reader for the newline-delimited JSON protocol. Failures
// throw std::runtime_error with errno text; callers at the daemon boundary
// convert them to loud stderr exits.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace bsr {

/// Owns one socket file descriptor; closes it on destruction. Move-only.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }

  /// Closes the descriptor now (idempotent).
  void close();

  /// Writes all of `data`, looping over partial writes; throws on error or
  /// peer reset.
  void send_all(std::string_view data) const;

  /// Half-closes the write side so the peer sees EOF after our last byte.
  void shutdown_write() const;

 private:
  int fd_ = -1;
};

/// Creates, binds, and listens on a Unix-domain stream socket at `path`.
/// A stale file at `path` is unlinked first (daemon restart after a crash).
/// Throws on bind/listen failure or a path longer than sockaddr_un allows.
Socket listen_unix(const std::string& path, int backlog);

/// Connects to the Unix-domain socket at `path`; throws when no daemon is
/// listening there.
Socket connect_unix(const std::string& path);

/// Listens on 127.0.0.1:`port` (port 0 picks a free ephemeral port).
/// `bound_port`, when non-null, receives the actual port after bind.
Socket listen_tcp_localhost(std::uint16_t port, int backlog,
                            std::uint16_t* bound_port);

/// Connects to 127.0.0.1:`port`.
Socket connect_tcp_localhost(std::uint16_t port);

/// Accepts one connection on a listening socket; blocks. Returns an invalid
/// Socket when the listener has been closed from another thread (the
/// server's shutdown path) instead of throwing.
Socket accept_one(const Socket& listener);

/// Buffered reader yielding one '\n'-terminated line at a time from a
/// connected socket (the newline is stripped). Returns std::nullopt at EOF;
/// throws on read errors. Bytes after the last newline are discarded at EOF
/// — the protocol requires every request/response line to be terminated.
class LineReader {
 public:
  explicit LineReader(const Socket& socket) : fd_(socket.fd()) {}

  std::optional<std::string> read_line();

 private:
  int fd_ = -1;
  std::string buffer_;
  bool eof_ = false;
};

}  // namespace bsr
