#include "fault/injector.hpp"

#include <algorithm>

namespace bsr::fault {

using la::idx;

InjectionCounts Injector::sample(const hw::ErrorRates& rates, SimTime busy) {
  InjectionCounts c;
  const double t = busy.seconds();
  if (t <= 0.0 || rates.fault_free()) return c;
  c.d0 = static_cast<int>(rng_.poisson(rates.d0 * t));
  c.d1 = static_cast<int>(rng_.poisson(rates.d1 * t));
  c.d2 = static_cast<int>(rng_.poisson(rates.d2 * t));
  return c;
}

template <typename T>
T Injector::corrupt_value(T old) {
  // Large multiplicative + additive perturbation: the magnitude regime of a
  // high-order mantissa/exponent bit flip, always detectable above checksum
  // tolerance and never an accidental no-op.
  const double scale = rng_.uniform(16.0, 4096.0);
  const double sign = rng_.next_double() < 0.5 ? -1.0 : 1.0;
  return static_cast<T>(static_cast<double>(old) * scale * sign +
                        sign * rng_.uniform(1.0, 64.0));
}

template <typename T>
void Injector::inject_0d(la::MatrixView<T> a) {
  if (a.empty()) return;
  const idx i = static_cast<idx>(rng_.next_below(static_cast<std::uint64_t>(a.rows())));
  const idx j = static_cast<idx>(rng_.next_below(static_cast<std::uint64_t>(a.cols())));
  a(i, j) = corrupt_value(a(i, j));
}

template <typename T>
void Injector::inject_1d(la::MatrixView<T> a) {
  if (a.empty()) return;
  const idx j = static_cast<idx>(rng_.next_below(static_cast<std::uint64_t>(a.cols())));
  // Corrupt a contiguous run covering at least a quarter of the column.
  const idx len = std::max<idx>(2, a.rows() / 4 +
                                       static_cast<idx>(rng_.next_below(
                                           static_cast<std::uint64_t>(
                                               std::max<idx>(1, a.rows() / 2)))));
  const idx start = static_cast<idx>(rng_.next_below(static_cast<std::uint64_t>(
      std::max<idx>(1, a.rows() - len + 1))));
  for (idx i = start; i < std::min(a.rows(), start + len); ++i) {
    a(i, j) = corrupt_value(a(i, j));
  }
}

template <typename T>
void Injector::inject_2d(la::MatrixView<T> a) {
  if (a.empty()) return;
  // A patch covering multiple columns (propagation beyond one row/column).
  const idx pc = std::min<idx>(a.cols(), 2 + static_cast<idx>(rng_.next_below(6)));
  const idx pr = std::min<idx>(a.rows(), 2 + static_cast<idx>(rng_.next_below(6)));
  const idx j0 = static_cast<idx>(rng_.next_below(
      static_cast<std::uint64_t>(std::max<idx>(1, a.cols() - pc + 1))));
  const idx i0 = static_cast<idx>(rng_.next_below(
      static_cast<std::uint64_t>(std::max<idx>(1, a.rows() - pr + 1))));
  for (idx j = j0; j < j0 + pc; ++j) {
    for (idx i = i0; i < i0 + pr; ++i) a(i, j) = corrupt_value(a(i, j));
  }
}

template <typename T>
InjectionCounts Injector::inject_impl(la::MatrixView<T> a,
                                      const hw::ErrorRates& rates, SimTime busy) {
  const InjectionCounts c = sample(rates, busy);
  for (int i = 0; i < c.d0; ++i) inject_0d(a);
  for (int i = 0; i < c.d1; ++i) inject_1d(a);
  for (int i = 0; i < c.d2; ++i) inject_2d(a);
  return c;
}

InjectionCounts Injector::inject(la::MatrixView<double> a,
                                 const hw::ErrorRates& rates, SimTime busy) {
  return inject_impl(a, rates, busy);
}

InjectionCounts Injector::inject(la::MatrixView<float> a,
                                 const hw::ErrorRates& rates, SimTime busy) {
  return inject_impl(a, rates, busy);
}

template void Injector::inject_0d<float>(la::MatrixView<float>);
template void Injector::inject_0d<double>(la::MatrixView<double>);
template void Injector::inject_1d<float>(la::MatrixView<float>);
template void Injector::inject_1d<double>(la::MatrixView<double>);
template void Injector::inject_2d<float>(la::MatrixView<float>);
template void Injector::inject_2d<double>(la::MatrixView<double>);

}  // namespace bsr::fault
