// SDC fault injection — the simulator's stand-in for physically induced
// silent data corruption at overclocked frequencies.
//
// Fault counts are sampled from the Poisson processes of the device's
// ErrorRateModel over the (simulated) busy interval of a GPU operation, then
// materialized as real corruption of the output matrix:
//   0D — one element perturbed;
//   1D — a (partial) column perturbed (the natural propagation shape of a
//        faulty column-major GEMM output);
//   2D — a rectangular patch spanning multiple block rows/columns.
// Injected magnitudes are large (bit-flip-like), so detection is about
// checksum mechanics, not numerical-noise discrimination.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "hw/error_model.hpp"
#include "la/matrix.hpp"

namespace bsr::fault {

struct InjectionCounts {
  int d0 = 0;
  int d1 = 0;
  int d2 = 0;
  [[nodiscard]] int total() const { return d0 + d1 + d2; }
};

class Injector {
 public:
  explicit Injector(Rng rng) : rng_(rng) {}

  /// Samples how many errors of each class strike during `busy` at rates
  /// `rates` (no matrix touched — used by timing-only mode).
  InjectionCounts sample(const hw::ErrorRates& rates, SimTime busy);

  /// Samples and physically corrupts `a` (numeric mode). Returns the counts.
  InjectionCounts inject(la::MatrixView<double> a, const hw::ErrorRates& rates,
                         SimTime busy);
  InjectionCounts inject(la::MatrixView<float> a, const hw::ErrorRates& rates,
                         SimTime busy);

  /// Deterministic primitives (also used directly by tests).
  template <typename T>
  void inject_0d(la::MatrixView<T> a);
  template <typename T>
  void inject_1d(la::MatrixView<T> a);
  template <typename T>
  void inject_2d(la::MatrixView<T> a);

  [[nodiscard]] Rng& rng() { return rng_; }

 private:
  template <typename T>
  InjectionCounts inject_impl(la::MatrixView<T> a, const hw::ErrorRates& rates,
                              SimTime busy);
  template <typename T>
  T corrupt_value(T old);

  Rng rng_;
};

}  // namespace bsr::fault
