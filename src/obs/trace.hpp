// Deterministic run tracing: flat POD span records collected at the
// realization points of both engines (sched::HybridPipeline's per-iteration
// lanes, the cluster engine's per-event busy windows) on the integer-ns
// SimTime axis.
//
// The contract that makes tracing safe to ship in every build:
//
//   * **Inert when absent.** Engines hold a `TraceRecorder*` that defaults to
//     nullptr; every emission site is guarded by that pointer, records only
//     values the engine already computed, and draws no random numbers. A run
//     with tracing off is bit-for-bit a run of a build without this module,
//     and a run with tracing ON produces a byte-identical RunReport — the
//     recorder observes the timeline, it never participates in it.
//   * **Never fingerprinted.** The recorder rides alongside RunConfig as a
//     raw pointer excluded from fingerprint() and serialization, so tracing
//     can never split the result caches or perturb sweep reuse.
//   * **Flat and arena-friendly.** A span is a few words of trivially
//     copyable state in one contiguous vector — recording is a bounds check
//     and a memcpy, no per-span allocation once reserve() has sized the
//     buffer.
//
// Spans export as Chrome trace-event JSON (obs/chrome_export.hpp) loadable
// directly in Perfetto / chrome://tracing; docs/OBSERVABILITY.md documents
// the span taxonomy and the determinism contract in full.
#pragma once

#include <cstdint>
#include <vector>

namespace bsr::obs {

/// What a span's busy window was doing (the span taxonomy of
/// docs/OBSERVABILITY.md). Single-node runs emit the first three kinds;
/// cluster runs emit the rest; both emit Dvfs and Recovery.
enum class SpanKind : std::uint8_t {
  Iteration,  ///< sched: one whole pipeline iteration (slack annotated)
  CpuLane,    ///< sched: the CPU lane's window of one iteration (dvfs + transfer + PD)
  GpuLane,    ///< sched: the GPU lane's window (dvfs + update + ABFT + recovery)
  Panel,      ///< cluster: host panel factorization PD(k)
  Update,     ///< cluster: one device's local trailing update (incl. checksum)
  Transfer,   ///< cluster: link occupation of a panel broadcast / return leg
  Recovery,   ///< fault recovery (corrections + rollback recompute) in-lane
  Dvfs,       ///< a realized DVFS transition window
};

/// Sentinel for TraceSpan::abft_mode on spans where no checksum mode applies.
inline constexpr std::uint8_t kNoAbftMode = 0xff;

/// One flat POD span on the simulated timeline. All times are integer
/// nanoseconds of the run's SimTime axis; annotation fields not meaningful
/// for a kind keep their zero/sentinel defaults (see the per-field notes).
struct TraceSpan {
  std::int64_t start_ns = 0;  ///< SimTime at which the window opens
  std::int64_t dur_ns = 0;    ///< window length (>= 0)
  SpanKind kind = SpanKind::Iteration;
  /// abft::ChecksumMode of the protected window as an integer
  /// (0 none / 1 single / 2 full); kNoAbftMode where not applicable.
  std::uint8_t abft_mode = kNoAbftMode;
  std::int32_t k = -1;     ///< iteration index; -1 where not applicable
  std::int32_t lane = -1;  ///< 0 = host/CPU, 1.. = devices/GPU; -1 = whole run
  std::int32_t freq_mhz = 0;   ///< live clock of the window (0 = n/a)
  std::int32_t from_mhz = 0;   ///< Dvfs only: clock the transition left
  std::int64_t slack_ns = 0;   ///< Iteration only: gpu_lane - cpu_lane
  std::int64_t dvfs_ns = 0;    ///< transition latency charged inside the window
  std::int64_t recovery_ns = 0;      ///< recovery time charged inside the window
  std::int64_t faults_injected = 0;  ///< faults sampled into the window
  std::int64_t faults_corrected = 0; ///< repaired in place by checksums
  std::int64_t rollbacks = 0;        ///< rollback recomputes triggered
};

/// Append-only span buffer handed to the engines. Not thread-safe: one
/// recorder observes one run (sweep cells wanting traces each get their own).
class TraceRecorder {
 public:
  /// Pre-sizes the buffer (the facade reserves ~4 spans per iteration-lane
  /// so steady-state recording never reallocates).
  void reserve(std::size_t spans) { spans_.reserve(spans); }

  void record(const TraceSpan& span) { spans_.push_back(span); }

  [[nodiscard]] const std::vector<TraceSpan>& spans() const { return spans_; }
  [[nodiscard]] std::size_t size() const { return spans_.size(); }
  [[nodiscard]] bool empty() const { return spans_.empty(); }
  void clear() { spans_.clear(); }

 private:
  std::vector<TraceSpan> spans_;
};

}  // namespace bsr::obs
