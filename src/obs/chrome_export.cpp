#include "obs/chrome_export.hpp"

#include <algorithm>
#include <numeric>
#include <ostream>
#include <set>
#include <vector>

#include "common/build_info.hpp"
#include "common/json.hpp"

namespace bsr::obs {

namespace {

// Track layout: tid 0 carries whole-iteration spans, tid 1 + lane the lane
// busy windows, and tid kLinkTidBase + lane the link occupation windows
// (transfers overlap compute on their device, so they need their own track
// to keep every track properly nested).
constexpr int kIterationTid = 0;
constexpr int kLaneTidBase = 1;
constexpr int kLinkTidBase = 64;
constexpr int kPid = 1;

int tid_for(const TraceSpan& s) {
  switch (s.kind) {
    case SpanKind::Iteration: return kIterationTid;
    case SpanKind::Transfer: return kLinkTidBase + s.lane;
    default: return kLaneTidBase + s.lane;
  }
}

const char* category(const TraceSpan& s) {
  switch (s.kind) {
    case SpanKind::Transfer: return "xfer";
    case SpanKind::Recovery: return "fault";
    case SpanKind::Dvfs: return "dvfs";
    default: return "sim";
  }
}

std::string span_name(const TraceSpan& s) {
  switch (s.kind) {
    case SpanKind::Iteration: return "iter " + std::to_string(s.k);
    case SpanKind::CpuLane: return "cpu " + std::to_string(s.k);
    case SpanKind::GpuLane: return "gpu " + std::to_string(s.k);
    case SpanKind::Panel: return "PD " + std::to_string(s.k);
    case SpanKind::Update: return "upd " + std::to_string(s.k);
    case SpanKind::Transfer: return "xfer " + std::to_string(s.k);
    case SpanKind::Recovery: return "recovery " + std::to_string(s.k);
    case SpanKind::Dvfs:
      return "dvfs " + std::to_string(s.from_mhz) + "->" +
             std::to_string(s.freq_mhz);
  }
  return "span";
}

const char* abft_name(std::uint8_t mode) {
  switch (mode) {
    case 0: return "none";
    case 1: return "single";
    case 2: return "full";
    default: return "n/a";
  }
}

double us(std::int64_t ns) { return static_cast<double>(ns) / 1000.0; }
double ms(std::int64_t ns) { return static_cast<double>(ns) / 1e6; }

void event_header(JsonWriter& w, const char* name, const char* ph,
                  const char* cat, double ts, int tid) {
  w.obj_open();
  w.key("name").value(name);
  w.key("ph").value(ph);
  w.key("cat").value(cat);
  w.key("ts").value(ts);
  w.key("pid").value(kPid);
  w.key("tid").value(tid);
}

void metadata_event(JsonWriter& w, const char* what, int tid,
                    const std::string& label) {
  w.obj_open();
  w.key("name").value(what);
  w.key("ph").value("M");
  w.key("pid").value(kPid);
  w.key("tid").value(tid);
  w.key("args").obj_open().key("name").value(label).obj_close();
  w.obj_close();
}

void span_args(JsonWriter& w, const TraceSpan& s) {
  w.key("args").obj_open();
  if (s.k >= 0) w.key("k").value(s.k);
  if (s.lane >= 0) w.key("lane").value(s.lane);
  if (s.freq_mhz > 0) w.key("freq_mhz").value(s.freq_mhz);
  if (s.kind == SpanKind::Dvfs) w.key("from_mhz").value(s.from_mhz);
  if (s.abft_mode != kNoAbftMode) w.key("abft").value(abft_name(s.abft_mode));
  if (s.kind == SpanKind::Iteration) w.key("slack_ms").value(ms(s.slack_ns));
  if (s.dvfs_ns > 0) w.key("dvfs_ms").value(ms(s.dvfs_ns));
  if (s.recovery_ns > 0) w.key("recovery_ms").value(ms(s.recovery_ns));
  if (s.faults_injected > 0) {
    w.key("faults_injected").value(s.faults_injected);
    w.key("faults_corrected").value(s.faults_corrected);
    w.key("rollbacks").value(s.rollbacks);
  }
  w.obj_close();
}

}  // namespace

std::string chrome_trace_json(const TraceRecorder& rec, const TraceMeta& meta) {
  const std::vector<TraceSpan>& spans = rec.spans();

  // Deterministic event order: by start time, longest span first at equal
  // starts (outer-before-inner keeps stack-based nesting checks simple),
  // record order as the final tie-break.
  std::vector<std::size_t> order(spans.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (spans[a].start_ns != spans[b].start_ns)
                       return spans[a].start_ns < spans[b].start_ns;
                     return spans[a].dur_ns > spans[b].dur_ns;
                   });

  std::set<int> tids;
  for (const TraceSpan& s : spans) tids.insert(tid_for(s));

  JsonWriter w;
  w.obj_open();
  w.key("traceEvents").arr_open();

  metadata_event(w, "process_name", kIterationTid, "bsr-sim");
  for (const int tid : tids) {
    std::string label;
    if (tid == kIterationTid) {
      label = "iterations";
    } else if (tid >= kLinkTidBase) {
      label = "link " + std::to_string(tid - kLinkTidBase);
    } else {
      label = "lane " + std::to_string(tid - kLaneTidBase);
    }
    metadata_event(w, "thread_name", tid, label);
  }

  for (const std::size_t i : order) {
    const TraceSpan& s = spans[i];
    const std::string name = span_name(s);
    event_header(w, name.c_str(), "X", category(s), us(s.start_ns),
                 tid_for(s));
    w.key("dur").value(us(s.dur_ns));
    span_args(w, s);
    w.obj_close();

    if (s.kind == SpanKind::Iteration) {
      // Slack as a counter track: the reclaimable gap the strategies feed on,
      // plotted over the run.
      event_header(w, "slack_ms", "C", "sim", us(s.start_ns), kIterationTid);
      w.key("args").obj_open().key("slack_ms").value(ms(s.slack_ns)).obj_close();
      w.obj_close();
    }
    if (s.faults_injected > 0) {
      // Fault strikes as thread-scoped instants so they stay visible at any
      // zoom level.
      event_header(w, "fault", "i", "fault", us(s.start_ns), tid_for(s));
      w.key("s").value("t");
      w.key("args").obj_open();
      w.key("injected").value(s.faults_injected);
      w.key("corrected").value(s.faults_corrected);
      w.key("rollbacks").value(s.rollbacks);
      w.obj_close();
      w.obj_close();
    }
  }

  w.arr_close();

  const common::BuildInfo& b = common::build_info();
  w.key("displayTimeUnit").value("ms");
  w.key("otherData").obj_open();
  w.key("tool").value(meta.tool);
  w.key("version").value(b.version);
  w.key("compiler").value(b.compiler);
  w.key("build_type").value(b.build_type);
  w.key("fingerprint").value(meta.fingerprint);
  w.key("strategy").value(meta.strategy);
  w.key("lanes").value(meta.lanes);
  w.key("spans").value(static_cast<std::int64_t>(spans.size()));
  w.obj_close();
  w.obj_close();
  return w.take();
}

void write_chrome_trace(std::ostream& out, const TraceRecorder& rec,
                        const TraceMeta& meta) {
  out << chrome_trace_json(rec, meta) << "\n";
}

}  // namespace bsr::obs
