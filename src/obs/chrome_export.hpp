// Chrome trace-event JSON export for TraceRecorder buffers.
//
// Writes the "JSON Object Format" flavor of the trace-event spec
// ({"traceEvents":[...], "otherData":{...}}) that Perfetto and
// chrome://tracing load directly: one complete ("X") event per span on a
// per-lane track, counter ("C") events for per-iteration slack, and instant
// ("i") events where faults strike. Timestamps are the run's integer-ns
// SimTime axis expressed in the spec's microseconds (fractional, exact to
// the nanosecond).
//
// The writer is deterministic: events sort by (start, longest-first, record
// order) and all numbers go through the shortest-round-trip double writer,
// so the same recorder contents always produce byte-identical files —
// tools/trace_validate.py and the tests rely on that.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/trace.hpp"

namespace bsr::obs {

/// Provenance stamped into the trace's `otherData` block (plus the build
/// info baked into the binary), so a trace file is attributable to the exact
/// tool, configuration, and build that produced it.
struct TraceMeta {
  std::string tool;         ///< producing binary, e.g. "bench_fig12_overall"
  std::string fingerprint;  ///< RunConfig::fingerprint() of the traced run
  std::string strategy;     ///< strategy registry key
  int lanes = 2;            ///< lane tracks: 2 single-node, 1 + devices cluster
};

/// Writes `rec` as Chrome trace-event JSON to `out` (see file comment).
void write_chrome_trace(std::ostream& out, const TraceRecorder& rec,
                        const TraceMeta& meta);

/// write_chrome_trace into a string (tests and the servectl path).
std::string chrome_trace_json(const TraceRecorder& rec, const TraceMeta& meta);

}  // namespace bsr::obs
