// Seeded statistical fault processes and the recovery-cost model — the
// timing-side generalization of fig09's numeric fault injection.
//
// The paper's headline safety claim is that BSR's overclocked critical lane
// stays *safe*: ABFT-OC catches the SDCs the reduced guardband induces, and
// recovering from them costs less than the reclaimed slack is worth. The
// numeric path (fault/injector.hpp) demonstrates that with real corruption on
// bounded matrices; this module supplies the *statistical* counterpart that
// works at paper scale and on the N-device cluster engine:
//
//   * Poisson arrivals whose rate follows the device's SDC table
//     R(f, guardband) (hw/error_model.hpp) — clock/voltage-dependent by
//     construction, so overclocked lanes fault more and lanes at safe
//     clocks do not fault at all;
//   * a clock-independent background rate (cosmic-ray-like 0D upsets that
//     strike even fault-free states);
//   * burst arrivals (one event carries a group of faults) and a per-device
//     hazard factor (some devices are flakier than others), both seeded;
//   * a deterministic fixed-count process replaying the fig09 regime
//     (exactly the configured counts on every exposed iteration).
//
// Each fault is classed 0D/1D/2D like the error model; what happens to it
// depends on the checksum mode active when it strikes (resolve()): corrected
// in place, detected-but-uncorrectable (optionally recovered by rolling the
// panel's trailing update back and recomputing at the base clock), or silent.
// Corrected faults pay Spec::correction_s in-lane; rollbacks pay the
// base-clock recompute of the affected update — both are charged by the
// engines where durations are realized (sched/pipeline.cpp,
// cluster/engine.cpp), so recovery genuinely delays the lane and shifts
// subsequent slack decisions.
//
// Streams derive from (seed, lane, purpose) with the same splitmix64 mixing
// as bsr::derive_cell_seed (var::derive_stream_seed), never from execution
// order across sweep cells, so campaigns are bitwise reproducible at any
// sweep thread count. A default (disabled) Spec is inert: no faults, no
// recovery time, and no random numbers drawn.
#pragma once

#include <cstdint>
#include <string>

#include "abft/checksum.hpp"
#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "hw/error_model.hpp"
#include "var/models.hpp"

namespace bsr::faultcamp {

/// How arrival counts are generated per exposed busy window.
enum class ProcessKind {
  Poisson,  ///< seeded Poisson arrivals at the scaled SDC-table rates
  Fixed,    ///< exactly fixed_d0/d1/d2 faults on every exposed iteration
};

/// All knobs of the fault-campaign subsystem — the `RunConfig::faults` block.
/// The default is fully inert: `enabled = false` produces bit-for-bit the
/// behavior of a build without this module. Timing-only: numeric runs perform
/// real injection (fault/injector.hpp) and reject an enabled block.
struct Spec {
  /// Master switch. False = no faults, no recovery cost, no RNG draws.
  bool enabled = false;

  /// Arrival model: seeded Poisson (the statistical campaign default) or the
  /// deterministic fixed-count replay of the fig09 regime.
  ProcessKind process = ProcessKind::Poisson;

  /// Multiplies the device's SDC-table rates R(f, guardband) for the arrival
  /// process only (exposure compression for reduced-size campaigns, like
  /// fig09's --rate_multiplier — but without re-shaping the world ABFT-OC
  /// and the coverage math observe, which RunConfig::error_rate_multiplier
  /// does). Under ProcessKind::Fixed it scales the fixed per-window counts
  /// (rounded) instead, so a campaign's rate axis means the same thing for
  /// both processes. 0 makes the clock-dependent process inert.
  double rate_multiplier = 1.0;

  /// Clock-independent 0D arrival rate (events per busy second) striking
  /// even fault-free states — upsets ABFT-OC does not anticipate, so
  /// adaptive protection can genuinely miss them.
  double background_rate_per_s = 0.0;

  /// Mean faults carried by one arrival event (>= 1). 1 = plain Poisson;
  /// above 1 each arrival brings 1 + Poisson(burst_mean - 1) faults of its
  /// class (correlated multi-bit upsets).
  double burst_mean = 1.0;

  /// Lognormal sigma of the per-device hazard factor (0 = all devices
  /// equally reliable). Each lane draws one multiplicative factor from its
  /// own stream at construction — some devices are flakier than others.
  double hazard_sigma = 0.0;

  /// ProcessKind::Fixed: 0D faults injected on every iteration whose clock
  /// exposes that class (nonzero 0D table rate at the running frequency —
  /// each class gates on its own rate, so the deterministic replay stays
  /// inside the world ABFT-OC reasons about).
  int fixed_d0 = 1;
  /// 1D faults per 1D-exposed iteration under ProcessKind::Fixed.
  int fixed_d1 = 0;
  /// 2D faults per 2D-exposed iteration under ProcessKind::Fixed.
  int fixed_d2 = 0;

  /// In-lane latency (seconds) per checksum-corrected fault: locating the
  /// mismatched block and re-solving the affected element/line from the
  /// checksum relation, charged at the lane's current clock.
  double correction_s = 0.0;

  /// Recover detected-but-uncorrectable faults by rolling the panel's
  /// trailing update back and recomputing it (with its checksum work) at the
  /// device's base clock — the statistical counterpart of
  /// RunConfig::recover_uncorrectable. False leaves them unrecovered
  /// (detected, but the corruption stands).
  bool rollback = true;

  /// Root seed of all fault streams; 0 = derive from the run's seed
  /// (RunConfig::seed). FaultCampaign varies exactly this per trial so the
  /// no-fault timing world stays fixed while fault realizations differ.
  std::uint64_t seed = 0;
};

/// Throws std::invalid_argument (message prefixed "faults:") when any field
/// is out of range: negative rates/sigma/correction latency, burst_mean < 1,
/// or negative fixed counts.
void validate(const Spec& spec);

/// Canonical "key=value;"-style fragment of every field, for
/// RunConfig::fingerprint(). A disabled spec collapses to "flt=0" regardless
/// of the other fields (they have no effect), so enabling-and-disabling
/// round-trips to the same cache key.
std::string fingerprint_fragment(const Spec& spec);

/// Fault counts by propagation class (mirrors hw::ErrType).
struct FaultCounts {
  std::int64_t d0 = 0;  ///< standalone-element faults
  std::int64_t d1 = 0;  ///< row/column faults
  std::int64_t d2 = 0;  ///< multi-row/column faults
  [[nodiscard]] std::int64_t total() const { return d0 + d1 + d2; }
};

/// What became of one busy window's faults under the active checksum mode.
struct Resolution {
  FaultCounts injected;             ///< the sampled counts, by class
  std::int64_t corrected_d0 = 0;    ///< repaired in place (0D)
  std::int64_t corrected_d1 = 0;    ///< repaired in place (1D, full mode)
  std::int64_t recovered = 0;       ///< uncorrectable, recovered by rollback
  std::int64_t unrecovered = 0;     ///< silent, or rollback disabled
  std::int64_t uncorrectable = 0;   ///< detected beyond in-place repair
  int rollbacks = 0;                ///< update redos triggered (0 or 1)

  [[nodiscard]] std::int64_t corrected() const {
    return corrected_d0 + corrected_d1;
  }
};

/// Classifies sampled counts under the checksum mode that protected the
/// window: None leaves everything silent; SingleSide corrects 0D and detects
/// 1D/2D without repair; Full corrects 0D+1D and detects 2D. Detected
/// uncorrectable faults become one rollback (when `rollback`) — the redo
/// covers every one of them — or stay unrecovered.
Resolution resolve(const FaultCounts& counts, abft::ChecksumMode mode,
                   bool rollback);

/// One lane's seeded fault process. Default-constructed (or built from a
/// disabled Spec) it is inert: sample() returns zero counts and draws
/// nothing.
class FaultProcess {
 public:
  FaultProcess() = default;

  /// `run_seed` is the fallback root when spec.seed == 0; `lane` indexes the
  /// device (matching var::LaneVariability's lane numbering) so lanes get
  /// decorrelated streams and their own hazard draw.
  FaultProcess(const Spec& spec, std::uint64_t run_seed, int lane);

  /// True when the process can produce faults at all.
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// The lane's fixed hazard multiplier (1.0 unless hazard_sigma > 0).
  [[nodiscard]] double hazard() const { return hazard_; }

  /// Samples the fault counts striking a busy window of length `busy` run at
  /// table rates `rates` (advances the lane's streams — call exactly once
  /// per exposed window, in event order).
  FaultCounts sample(const hw::ErrorRates& rates, SimTime busy);

 private:
  [[nodiscard]] std::int64_t arrivals(double mean);

  bool enabled_ = false;
  ProcessKind kind_ = ProcessKind::Poisson;
  double mult_ = 1.0;
  double background_ = 0.0;
  double burst_mean_ = 1.0;
  double hazard_ = 1.0;
  std::int64_t fixed_d0_ = 0;
  std::int64_t fixed_d1_ = 0;
  std::int64_t fixed_d2_ = 0;
  Rng arrival_rng_;
  Rng burst_rng_;
};

}  // namespace bsr::faultcamp
