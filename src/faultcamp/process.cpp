#include "faultcamp/process.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace bsr::faultcamp {

void validate(const Spec& spec) {
  const auto fail = [](const std::string& what) {
    throw std::invalid_argument("faults: " + what);
  };
  if (!(spec.rate_multiplier >= 0.0)) {
    fail("rate_multiplier must be >= 0 (got " +
         std::to_string(spec.rate_multiplier) + ")");
  }
  if (!(spec.background_rate_per_s >= 0.0)) {
    fail("background_rate_per_s must be >= 0 (got " +
         std::to_string(spec.background_rate_per_s) + ")");
  }
  if (!(spec.burst_mean >= 1.0)) {
    fail("burst_mean must be >= 1 (got " + std::to_string(spec.burst_mean) +
         ")");
  }
  if (!(spec.hazard_sigma >= 0.0)) {
    fail("hazard_sigma must be >= 0 (got " + std::to_string(spec.hazard_sigma) +
         ")");
  }
  if (spec.fixed_d0 < 0 || spec.fixed_d1 < 0 || spec.fixed_d2 < 0) {
    fail("fixed_d0/d1/d2 must be >= 0");
  }
  if (!(spec.correction_s >= 0.0)) {
    fail("correction_s must be >= 0 (got " + std::to_string(spec.correction_s) +
         ")");
  }
}

std::string fingerprint_fragment(const Spec& spec) {
  if (!spec.enabled) return "flt=0";
  const auto num = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return std::string(buf);
  };
  std::string fp = "flt=1";
  fp += ";fproc=";
  fp += spec.process == ProcessKind::Poisson ? "poisson" : "fixed";
  fp += ";frate=" + num(spec.rate_multiplier);
  fp += ";fbg=" + num(spec.background_rate_per_s);
  fp += ";fburst=" + num(spec.burst_mean);
  fp += ";fhaz=" + num(spec.hazard_sigma);
  fp += ";ffix=" + std::to_string(spec.fixed_d0) + "," +
        std::to_string(spec.fixed_d1) + "," + std::to_string(spec.fixed_d2);
  fp += ";fcorr=" + num(spec.correction_s);
  fp += ";frb=" + std::to_string(spec.rollback);
  fp += ";fseed=" + std::to_string(spec.seed);
  return fp;
}

Resolution resolve(const FaultCounts& counts, abft::ChecksumMode mode,
                   bool rollback) {
  Resolution r;
  r.injected = counts;
  switch (mode) {
    case abft::ChecksumMode::None:
      // Nothing watches the window: every fault survives silently.
      r.unrecovered = counts.total();
      return r;
    case abft::ChecksumMode::SingleSide:
      r.corrected_d0 = counts.d0;
      r.uncorrectable = counts.d1 + counts.d2;
      break;
    case abft::ChecksumMode::Full:
      r.corrected_d0 = counts.d0;
      r.corrected_d1 = counts.d1;
      r.uncorrectable = counts.d2;
      break;
  }
  if (r.uncorrectable > 0) {
    // One redo of the affected update covers every uncorrectable detection
    // in the window (mirrors the numeric path: a single rollback per
    // iteration, however many blocks failed to repair).
    if (rollback) {
      r.rollbacks = 1;
      r.recovered = r.uncorrectable;
    } else {
      r.unrecovered = r.uncorrectable;
    }
  }
  return r;
}

namespace {
/// Stream-domain salt separating fault streams from var/'s variability
/// streams (which salt with 0x5eedab1ef0c0ffee) and from sweep cell seeds.
constexpr std::uint64_t kFaultStreamSalt = 0xfa17ca3f00d5eedULL;
}  // namespace

FaultProcess::FaultProcess(const Spec& spec, std::uint64_t run_seed, int lane)
    : enabled_(spec.enabled),
      kind_(spec.process),
      mult_(spec.rate_multiplier),
      background_(spec.background_rate_per_s),
      burst_mean_(spec.burst_mean),
      fixed_d0_(spec.fixed_d0),
      fixed_d1_(spec.fixed_d1),
      fixed_d2_(spec.fixed_d2) {
  if (!enabled_) return;
  const std::uint64_t root = spec.seed != 0 ? spec.seed : run_seed;
  const std::uint64_t lane_root = var::derive_stream_seed(
      root ^ kFaultStreamSalt, static_cast<std::uint64_t>(lane));
  arrival_rng_ = Rng(var::derive_stream_seed(lane_root, 0));
  burst_rng_ = Rng(var::derive_stream_seed(lane_root, 1));
  if (spec.hazard_sigma > 0.0) {
    Rng hazard_rng(var::derive_stream_seed(lane_root, 2));
    hazard_ = std::exp(hazard_rng.normal(0.0, spec.hazard_sigma));
  }
}

std::int64_t FaultProcess::arrivals(double mean) {
  if (mean <= 0.0) return 0;
  const auto events =
      static_cast<std::int64_t>(arrival_rng_.poisson(mean));
  if (burst_mean_ <= 1.0 || events == 0) return events;
  std::int64_t faults = events;
  for (std::int64_t e = 0; e < events; ++e) {
    faults += static_cast<std::int64_t>(burst_rng_.poisson(burst_mean_ - 1.0));
  }
  return faults;
}

FaultCounts FaultProcess::sample(const hw::ErrorRates& rates, SimTime busy) {
  FaultCounts c;
  if (!enabled_) return c;
  const double t = busy.seconds();
  if (t <= 0.0) return c;
  if (kind_ == ProcessKind::Fixed) {
    // Deterministic fig09-style replay: each class's configured count
    // strikes every window whose clock exposes *that class* (nonzero table
    // rate), so the replay stays inside the world ABFT-OC reasons about —
    // fault-free states stay fault-free, and 1D faults only land where the
    // model says 1D faults exist. rate_multiplier scales the counts
    // (rounded), so a campaign's rate axis means the same thing under both
    // processes. No RNG involved.
    const auto scaled = [this](std::int64_t fixed) {
      return static_cast<std::int64_t>(
          std::llround(static_cast<double>(fixed) * mult_));
    };
    if (rates.d0 > 0.0) c.d0 = scaled(fixed_d0_);
    if (rates.d1 > 0.0) c.d1 = scaled(fixed_d1_);
    if (rates.d2 > 0.0) c.d2 = scaled(fixed_d2_);
    return c;
  }
  c.d0 = arrivals((rates.d0 * mult_ + background_) * hazard_ * t);
  c.d1 = arrivals(rates.d1 * mult_ * hazard_ * t);
  c.d2 = arrivals(rates.d2 * mult_ * hazard_ * t);
  return c;
}

}  // namespace bsr::faultcamp
