#include "var/models.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace bsr::var {

void validate(const Spec& spec) {
  const auto fail = [](const std::string& what) {
    throw std::invalid_argument("variability: " + what);
  };
  if (!(spec.drift >= 0.0)) {
    fail("drift must be >= 0 (got " + std::to_string(spec.drift) + ")");
  }
  if (!(spec.drift_cap > 0.0)) {
    fail("drift_cap must be > 0 (got " + std::to_string(spec.drift_cap) + ")");
  }
  if (!(spec.transfer_jitter >= 0.0)) {
    fail("transfer_jitter must be >= 0 (got " +
         std::to_string(spec.transfer_jitter) + ")");
  }
  if (!(spec.dvfs_jitter >= 0.0)) {
    fail("dvfs_jitter must be >= 0 (got " + std::to_string(spec.dvfs_jitter) +
         ")");
  }
  if (spec.freq_quantum_mhz < 0) {
    fail("freq_quantum_mhz must be >= 0 (got " +
         std::to_string(spec.freq_quantum_mhz) + ")");
  }
  if (!(spec.boost_budget_s >= 0.0)) {
    fail("boost_budget_s must be >= 0 (got " +
         std::to_string(spec.boost_budget_s) + ")");
  }
  if (!(spec.boost_recovery > 0.0)) {
    fail("boost_recovery must be > 0 (got " +
         std::to_string(spec.boost_recovery) + ")");
  }
}

std::string fingerprint_fragment(const Spec& spec) {
  if (!spec.enabled) return "var=0";
  const auto num = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return std::string(buf);
  };
  std::string fp = "var=1";
  fp += ";vdrift=" + num(spec.drift);
  fp += ";vcap=" + num(spec.drift_cap);
  fp += ";vtj=" + num(spec.transfer_jitter);
  fp += ";vdvfs=" + num(spec.dvfs_jitter);
  fp += ";vq=" + std::to_string(spec.freq_quantum_mhz);
  fp += ";vboost=" + num(spec.boost_budget_s);
  fp += ";vrec=" + num(spec.boost_recovery);
  fp += ";vseed=" + std::to_string(spec.seed);
  return fp;
}

std::uint64_t derive_stream_seed(std::uint64_t root, std::uint64_t stream) {
  // splitmix64 over root + (stream + 1) * golden gamma — identical mixing to
  // bsr::derive_cell_seed, so stream seeds never collide with the root.
  std::uint64_t z = root + (stream + 1) * 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::vector<double> drift_walk(std::uint64_t seed, int steps, double sigma,
                               double cap) {
  std::vector<double> walk(static_cast<std::size_t>(std::max(steps, 0)), 1.0);
  if (sigma <= 0.0 || steps <= 1) return walk;
  Rng rng(seed);
  double log_factor = 0.0;
  for (int k = 1; k < steps; ++k) {
    log_factor += rng.normal(0.0, sigma);
    // Reflect into [-cap, cap]; one reflection suffices for any step smaller
    // than 2*cap, and the clamp backstops pathological sigma >= cap inputs.
    if (log_factor > cap) log_factor = 2.0 * cap - log_factor;
    if (log_factor < -cap) log_factor = -2.0 * cap - log_factor;
    log_factor = std::clamp(log_factor, -cap, cap);
    walk[static_cast<std::size_t>(k)] = std::exp(log_factor);
  }
  return walk;
}

hw::Mhz ThermalThrottle::admit(hw::Mhz requested, hw::Mhz base_mhz) {
  if (!active() || requested <= base_mhz) return requested;
  if (throttled_ || budget_s_ <= 0.0) {
    throttled_ = true;
    return base_mhz;
  }
  return requested;
}

void ThermalThrottle::account(hw::Mhz granted, hw::Mhz base_mhz, double busy_s,
                              double idle_s) {
  if (!active()) return;
  if (granted > base_mhz) {
    // A long boost may overdraw the budget; the debt is bounded at one
    // capacity so a single marathon iteration cannot starve the lane forever.
    budget_s_ = std::max(budget_s_ - busy_s, -capacity_s_);
  } else {
    budget_s_ += recovery_ * busy_s;
  }
  budget_s_ = std::min(budget_s_ + recovery_ * idle_s, capacity_s_);
  if (throttled_ && budget_s_ >= 0.5 * capacity_s_) throttled_ = false;
}

LaneVariability::LaneVariability(const Spec& spec, std::uint64_t run_seed,
                                 int lane, int iters, hw::Mhz base_mhz)
    : enabled_(spec.enabled),
      base_mhz_(base_mhz),
      quantum_(spec.freq_quantum_mhz),
      transfer_sigma_(spec.transfer_jitter),
      dvfs_sigma_(spec.dvfs_jitter) {
  if (!enabled_) return;
  const std::uint64_t root = spec.seed != 0 ? spec.seed : run_seed;
  const std::uint64_t lane_root =
      derive_stream_seed(root ^ 0x5eedab1ef0c0ffeeULL,
                         static_cast<std::uint64_t>(lane));
  drift_ = drift_walk(derive_stream_seed(lane_root, 0), iters, spec.drift,
                      spec.drift_cap);
  transfer_rng_ = Rng(derive_stream_seed(lane_root, 1));
  dvfs_rng_ = Rng(derive_stream_seed(lane_root, 2));
  throttle_ = ThermalThrottle(spec.boost_budget_s, spec.boost_recovery);
}

double LaneVariability::compute_factor(int k) const {
  if (!enabled_ || drift_.empty()) return 1.0;
  return drift_[static_cast<std::size_t>(
      std::clamp(k, 0, static_cast<int>(drift_.size()) - 1))];
}

double LaneVariability::transfer_factor() {
  if (!enabled_ || transfer_sigma_ <= 0.0) return 1.0;
  return std::exp(transfer_rng_.normal(0.0, transfer_sigma_));
}

SimTime LaneVariability::dvfs_latency(SimTime nominal) {
  if (!enabled_ || dvfs_sigma_ <= 0.0 || nominal <= SimTime::zero()) {
    return nominal;
  }
  return nominal * std::exp(dvfs_rng_.normal(0.0, dvfs_sigma_));
}

hw::Mhz LaneVariability::admit_clock(hw::Mhz requested,
                                     const hw::FrequencyDomain& dom,
                                     bool optimized_guardband) {
  if (!enabled_) return requested;
  hw::Mhz f = requested;
  if (quantum_ > 0) {
    // The P-state grid is anchored at the base clock (always grantable — a
    // lane that never requests a change must keep running at base) and
    // truncates toward it: boost requests get less boost, down-clock
    // requests keep more clock. Integer division truncates toward zero in
    // both directions, which is exactly "toward base" here.
    f = base_mhz_ + ((f - base_mhz_) / quantum_) * quantum_;
  }
  f = throttle_.admit(f, base_mhz_);
  return dom.clamp(f, optimized_guardband);
}

void LaneVariability::account(hw::Mhz granted, double busy_s, double idle_s) {
  if (!enabled_) return;
  throttle_.account(granted, base_mhz_, busy_s, idle_s);
}

}  // namespace bsr::var
