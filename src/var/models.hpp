// Seeded execution-variability models — the stochastic regime the paper's
// predictors are built to survive (§3.2.1, Fig. 8).
//
// The simulator is otherwise exactly repeatable, which puts every predictor in
// a world the paper explicitly argues is unrealistic: on real machines kernel
// efficiency drifts as the trailing matrix shrinks, transfers jitter, DVFS
// transitions take variable time and land on coarse P-state grids, and
// sustained boosts hit thermal limits. This module supplies those effects as
// composable, splitmix64-seeded models:
//
//   * drift_walk()       — per-device multiplicative efficiency random walk
//                          (reflected at a cap so it cannot diverge);
//   * transfer jitter    — lognormal factor on every realized transfer;
//   * DVFS variability   — lognormal factor on transition latency, plus
//                          quantization of requested clocks to a coarse grid;
//   * ThermalThrottle    — a sustained-boost budget per device: long boosts
//                          drain it, running at/below base refills it, and an
//                          exhausted budget pins the device to its base clock
//                          until half the budget has recovered.
//
// Everything is *sampled* from streams derived with the same splitmix64
// mixing as bsr::derive_cell_seed (per lane, per purpose) and *applied* where
// durations are realized — sched/pipeline.cpp on the single node,
// cluster/engine.cpp at scale — so a run is bitwise reproducible from
// (config, seed) at any sweep thread count. A default (disabled) Spec makes
// every model inert: factors are exactly 1.0, clocks pass through untouched,
// and no random numbers are drawn.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "hw/frequency.hpp"

namespace bsr::var {

/// All knobs of the variability subsystem. The default is fully inert:
/// `enabled = false` produces bit-for-bit the behavior of a build without
/// this module. With `enabled = true`, each field turns on one model; a field
/// left at 0 keeps that model inert, so effects compose a la carte.
struct Spec {
  /// Master switch. False = no perturbation of any kind (and no RNG draws).
  bool enabled = false;

  /// Per-iteration sigma of the per-device multiplicative efficiency random
  /// walk applied to compute durations (0 = no drift). This is the knob
  /// bench_fig08 sweeps: GreenLA's first-iteration predictor accumulates
  /// error linearly in the walk's excursion while the enhanced predictor
  /// tracks it.
  double drift = 0.0;
  /// Reflective bound on the walk's |log factor|: the drift factor stays
  /// within [exp(-cap), exp(+cap)].
  double drift_cap = 0.35;

  /// Lognormal sigma applied to every realized transfer duration
  /// (host<->device panel traffic, cluster broadcast legs, peer hops).
  double transfer_jitter = 0.0;

  /// Lognormal sigma applied to every realized DVFS transition latency.
  double dvfs_jitter = 0.0;
  /// When > 0, requested clocks snap to a grid of this pitch *anchored at
  /// the device's base clock*, truncating toward base (real devices expose
  /// coarse P-states; the strategy's fine-grained request is not always
  /// grantable). Base itself is always on the grid, so a lane that never
  /// requests a change keeps running at exactly base.
  hw::Mhz freq_quantum_mhz = 0;

  /// Sustained-boost budget per device, in seconds of above-base busy time
  /// (0 = unlimited boost). BSR's overclocked critical lane pays for long
  /// boosts: an exhausted budget pins the lane to base until it recovers.
  double boost_budget_s = 0.0;
  /// Budget seconds regained per second of at/below-base (busy or idle) time.
  double boost_recovery = 0.5;

  /// Root seed of all variability streams; 0 = derive from the run's seed
  /// (RunConfig::seed), which is what sweeps want — per-cell seeds then vary
  /// exactly like Sweep's trial_axis cells do.
  std::uint64_t seed = 0;
};

/// Throws std::invalid_argument (message prefixed "variability:") when any
/// field is out of range: negative sigmas/budget/quantum, drift_cap <= 0, or
/// boost_recovery <= 0.
void validate(const Spec& spec);

/// Canonical "key=value;"-style fragment of every field, for
/// RunConfig::fingerprint(). A disabled spec collapses to "var=0" regardless
/// of the other fields (they have no effect), so enabling-and-disabling
/// round-trips to the same cache key.
std::string fingerprint_fragment(const Spec& spec);

/// splitmix64 stream derivation — the same mixing as bsr::derive_cell_seed,
/// so variability streams are decorrelated from each other and from sweep
/// cell seeds by construction. Depends only on (root, stream).
std::uint64_t derive_stream_seed(std::uint64_t root, std::uint64_t stream);

/// A reflected multiplicative random walk of `steps` factors: entry 0 is 1.0
/// (the profiling reference iteration is clean), entry k multiplies entry
/// k-1 by exp(normal(0, sigma)) with the log factor reflected into
/// [-cap, +cap]. sigma <= 0 returns all-ones.
std::vector<double> drift_walk(std::uint64_t seed, int steps, double sigma,
                               double cap);

/// Deterministic sustained-boost budget (no RNG): above-base busy seconds
/// drain the budget, at/below-base time refills it at `recovery` seconds per
/// second, and once drained the device is pinned to base until the budget
/// recovers to half its capacity (hysteresis, so the lane does not flap).
class ThermalThrottle {
 public:
  ThermalThrottle() = default;
  ThermalThrottle(double budget_s, double recovery)
      : capacity_s_(budget_s), recovery_(recovery), budget_s_(budget_s) {}

  /// True when the model is engaged at all (budget_s > 0 at construction).
  [[nodiscard]] bool active() const { return capacity_s_ > 0.0; }
  [[nodiscard]] bool throttled() const { return throttled_; }
  [[nodiscard]] double budget_s() const { return budget_s_; }

  /// The clock actually granted for a request: `requested` while budget
  /// remains, `base_mhz` while throttled.
  [[nodiscard]] hw::Mhz admit(hw::Mhz requested, hw::Mhz base_mhz);

  /// Settles one scheduling window: `busy_s` seconds run at `granted`
  /// (draining when above base), plus `idle_s` seconds of recovery time.
  void account(hw::Mhz granted, hw::Mhz base_mhz, double busy_s,
               double idle_s);

 private:
  double capacity_s_ = 0.0;
  double recovery_ = 0.5;
  double budget_s_ = 0.0;
  bool throttled_ = false;
};

/// One lane's composed variability state: the drift walk over its iterations,
/// its jitter streams, and its thermal budget. Default-constructed (or built
/// from a disabled Spec) it is inert: every factor is exactly 1.0, clocks
/// pass through unchanged, and nothing is sampled.
class LaneVariability {
 public:
  LaneVariability() = default;

  /// `run_seed` is the fallback root when spec.seed == 0; `lane` indexes the
  /// device (0 = host/CPU) so lanes get decorrelated streams; `iters` sizes
  /// the drift walk; `base_mhz` anchors the thermal throttle.
  LaneVariability(const Spec& spec, std::uint64_t run_seed, int lane,
                  int iters, hw::Mhz base_mhz);

  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Multiplicative efficiency factor on compute durations at iteration k.
  [[nodiscard]] double compute_factor(int k) const;

  /// Multiplicative factor on the next realized transfer (advances the
  /// lane's jitter stream — call exactly once per transfer).
  double transfer_factor();

  /// The realized latency of one DVFS transition whose nominal cost is
  /// `nominal` (advances the lane's DVFS jitter stream). Zero stays zero.
  SimTime dvfs_latency(SimTime nominal);

  /// The clock actually granted for `requested`: quantized to the Spec's
  /// P-state grid, then admitted through the thermal throttle, then clamped
  /// to the domain.
  [[nodiscard]] hw::Mhz admit_clock(hw::Mhz requested,
                                    const hw::FrequencyDomain& dom,
                                    bool optimized_guardband);

  /// Thermal accounting for one scheduling window (see ThermalThrottle).
  void account(hw::Mhz granted, double busy_s, double idle_s);

  [[nodiscard]] const ThermalThrottle& throttle() const { return throttle_; }

 private:
  bool enabled_ = false;
  hw::Mhz base_mhz_ = 0;
  hw::Mhz quantum_ = 0;
  double transfer_sigma_ = 0.0;
  double dvfs_sigma_ = 0.0;
  std::vector<double> drift_;
  Rng transfer_rng_;
  Rng dvfs_rng_;
  ThermalThrottle throttle_;
};

}  // namespace bsr::var
